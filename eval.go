package sxnm

import "repro/internal/eval"

// Evaluation utilities for measuring detection quality against a gold
// standard: documents whose candidate elements carry an `x-gold`
// attribute naming their real-world object (two elements with the same
// value are duplicates). The bundled data generators plant these
// identities; users evaluating their own configurations can annotate a
// labelled sample the same way.

type (
	// GoldIndex maps element IDs to gold object identities.
	GoldIndex = eval.GoldIndex
	// Metrics holds pairwise precision, recall, and f-measure.
	Metrics = eval.Metrics
	// ClusterMetrics holds purity / inverse purity / exact-match
	// cluster-level measures.
	ClusterMetrics = eval.ClusterMetrics
)

// BuildGold collects the gold identities of the elements selected by
// the candidate path expression.
func BuildGold(doc *Document, candidateXPath string) (*GoldIndex, error) {
	return eval.BuildGold(doc, candidateXPath)
}

// PairwiseMetrics scores a detected cluster set against the gold
// index: a true positive is a detected pair sharing a gold identity.
func PairwiseMetrics(g *GoldIndex, cs *ClusterSet) Metrics {
	return eval.PairwiseMetrics(g, cs)
}

// ClusterLevelMetrics scores the detected partition at cluster level
// (purity, inverse purity, exact matches).
func ClusterLevelMetrics(g *GoldIndex, cs *ClusterSet) ClusterMetrics {
	return eval.ClusterLevelMetrics(g, cs)
}
