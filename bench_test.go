package sxnm

// One benchmark per paper artifact (Tables 1–3, Figs. 4–6), each
// exercising the code path that regenerates it at a reduced size, plus
// ablation benches for the design choices DESIGN.md calls out (key
// generation, window sweep cost, transitive closure, all-pairs versus
// windowed, DE-SNM elimination).
//
// Run with: go test -bench=. -benchmem

import (
	"context"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/gen/toxgene"
	"repro/internal/similarity"
	"repro/internal/xmltree"
)

// benchMovies memoizes the dirty movie document used across benches.
var benchMovies *xmltree.Document

func movieDoc(b *testing.B) *xmltree.Document {
	b.Helper()
	if benchMovies == nil {
		doc, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: 500, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		benchMovies = doc
	}
	return benchMovies
}

var benchCDs *xmltree.Document

func cdDoc(b *testing.B) *xmltree.Document {
	b.Helper()
	if benchCDs == nil {
		doc, err := dataset.DataSet2(dataset.CDs2Options{Discs: 150, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		benchCDs = doc
	}
	return benchCDs
}

var benchLargeCDs *xmltree.Document

func largeCDDoc(b *testing.B) *xmltree.Document {
	b.Helper()
	if benchLargeCDs == nil {
		benchLargeCDs = dataset.DataSet3(1500, 1)
	}
	return benchLargeCDs
}

func validated(b *testing.B, cfg *config.Config) *config.Config {
	b.Helper()
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	return cfg
}

// BenchmarkTable1KeyGeneration measures phase 1 (key generation +
// object description extraction) under the Table 1 movie configuration.
func BenchmarkTable1KeyGeneration(b *testing.B) {
	doc := toxgene.Movies(500, 1)
	cfg := validated(b, config.Table1Movie())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GenerateKeys(doc, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Temporaries regenerates the Table 2 worked example
// (GK relation of the Fig. 2(a) movie).
func BenchmarkTable2Temporaries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Configs validates (compiles) the three data-set
// configurations of Table 3.
func BenchmarkTable3Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cfg := range []*config.Config{
			config.DataSet1(5), config.DataSet2(5), config.DataSet3(5),
		} {
			if err := cfg.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchRunMovies runs one full SXNM pass over the movie data with the
// given single key (or all keys when key < 0) and reports recall as a
// bench metric.
func benchRunMovies(b *testing.B, window, key int, metric string) {
	doc := movieDoc(b)
	gold, err := eval.BuildGold(doc, dataset.MoviePath)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last eval.Metrics
	for i := 0; i < b.N; i++ {
		cfg := config.DataSet1(window)
		if key >= 0 {
			cfg.KeepKeys("movie", key)
		}
		validated(b, cfg)
		res, err := core.Run(doc, cfg, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = eval.PairwiseMetrics(gold, res.Clusters["movie"])
	}
	switch metric {
	case "recall":
		b.ReportMetric(last.Recall, "recall")
	case "precision":
		b.ReportMetric(last.Precision, "precision")
	}
}

// BenchmarkFig4aMoviesRecall exercises the Fig. 4(a) measurement: a
// single-pass run (key 1) on Data set 1 at window 8, reporting recall.
func BenchmarkFig4aMoviesRecall(b *testing.B) {
	benchRunMovies(b, 8, 0, "recall")
}

// BenchmarkFig4bMoviesPrecision exercises the Fig. 4(b) measurement:
// a multi-pass run on Data set 1 at window 8, reporting precision.
func BenchmarkFig4bMoviesPrecision(b *testing.B) {
	benchRunMovies(b, 8, -1, "precision")
}

// BenchmarkFig4cCDsFMeasure exercises the Fig. 4(c) measurement: the
// multi-pass disc run on Data set 2 at window 4, reporting f-measure.
func BenchmarkFig4cCDsFMeasure(b *testing.B) {
	doc := cdDoc(b)
	gold, err := eval.BuildGold(doc, dataset.DiscPath)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last eval.Metrics
	for i := 0; i < b.N; i++ {
		cfg := validated(b, config.DataSet2(4))
		res, err := core.Run(doc, cfg, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = eval.PairwiseMetrics(gold, res.Clusters["disc"])
	}
	b.ReportMetric(last.F1, "f-measure")
}

// BenchmarkFig4dLargePrecision exercises the Fig. 4(d) measurement:
// the did-prefix key on the large corpus at window 5, reporting
// precision.
func BenchmarkFig4dLargePrecision(b *testing.B) {
	doc := largeCDDoc(b)
	gold, err := eval.BuildGold(doc, dataset.DiscPath)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last eval.Metrics
	for i := 0; i < b.N; i++ {
		cfg := config.DataSet3(5)
		cfg.KeepKeys("disc", 1)
		validated(b, cfg)
		res, err := core.Run(doc, cfg, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = eval.PairwiseMetrics(gold, res.Clusters["disc"])
	}
	b.ReportMetric(last.Precision, "precision")
}

// benchScale runs the Experiment set 2 pipeline for one variant.
func benchScale(b *testing.B, variant dataset.ScaleVariant) {
	doc, err := dataset.ScalabilityData(400, variant, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := validated(b, dataset.ScalabilityConfig(3))
		if _, err := core.Run(doc, cfg, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5aScalabilityClean measures SXNM over clean movie data
// (Fig. 5(a)).
func BenchmarkFig5aScalabilityClean(b *testing.B) { benchScale(b, dataset.Clean) }

// BenchmarkFig5bScalabilityFew measures SXNM over data with few
// duplicates (Fig. 5(b)).
func BenchmarkFig5bScalabilityFew(b *testing.B) { benchScale(b, dataset.FewDuplicates) }

// BenchmarkFig5cScalabilityMany measures SXNM over data with many
// duplicates (Fig. 5(c)).
func BenchmarkFig5cScalabilityMany(b *testing.B) { benchScale(b, dataset.ManyDuplicates) }

// BenchmarkFig5dOverhead measures the KG+SW overhead computation of
// Fig. 5(d): clean and dirty runs back to back.
func BenchmarkFig5dOverhead(b *testing.B) {
	clean, err := dataset.ScalabilityData(300, dataset.Clean, 1)
	if err != nil {
		b.Fatal(err)
	}
	dirty, err := dataset.ScalabilityData(300, dataset.FewDuplicates, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var overhead float64
	for i := 0; i < b.N; i++ {
		cfg := validated(b, dataset.ScalabilityConfig(3))
		rc, err := core.Run(clean, cfg, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		cfg2 := validated(b, dataset.ScalabilityConfig(3))
		rd, err := core.Run(dirty, cfg2, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		base := rc.Stats.KeyGen + rc.Stats.SlidingWindow
		if base > 0 {
			overhead = float64(rd.Stats.KeyGen+rd.Stats.SlidingWindow)/float64(base) - 1
		}
	}
	b.ReportMetric(overhead*100, "overhead%")
}

// BenchmarkFig6aODThreshold exercises the Fig. 6(a) measurement: an
// OD-only disc run at the paper's optimal threshold 0.65.
func BenchmarkFig6aODThreshold(b *testing.B) {
	doc := cdDoc(b)
	gold, err := eval.BuildGold(doc, dataset.DiscPath)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last eval.Metrics
	for i := 0; i < b.N; i++ {
		cfg := config.DataSet2(4)
		disc := cfg.Candidate("disc")
		disc.Rule = config.RuleEither
		disc.ODThreshold = 0.65
		disc.DescThreshold = 0
		validated(b, cfg)
		res, err := core.Run(doc, cfg, core.Options{DisableDescendants: true})
		if err != nil {
			b.Fatal(err)
		}
		last = eval.PairwiseMetrics(gold, res.Clusters["disc"])
	}
	b.ReportMetric(last.F1, "f-measure")
}

// BenchmarkFig6bDescThreshold exercises the Fig. 6(b) measurement: the
// descendant-aware disc run at descendants threshold 0.3.
func BenchmarkFig6bDescThreshold(b *testing.B) {
	doc := cdDoc(b)
	gold, err := eval.BuildGold(doc, dataset.DiscPath)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last eval.Metrics
	for i := 0; i < b.N; i++ {
		cfg := config.DataSet2(4)
		disc := cfg.Candidate("disc")
		disc.Rule = config.RuleEither
		disc.ODThreshold = 0.65
		disc.DescThreshold = 0.3
		validated(b, cfg)
		res, err := core.Run(doc, cfg, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = eval.PairwiseMetrics(gold, res.Clusters["disc"])
	}
	b.ReportMetric(last.F1, "f-measure")
}

// --- Ablation benches -------------------------------------------------

// BenchmarkAblationWindowedVsAllPairs contrasts SXNM's windowed
// comparisons against the exhaustive baseline on the same data.
func BenchmarkAblationWindowedVsAllPairs(b *testing.B) {
	doc := movieDoc(b)
	b.Run("windowed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := validated(b, config.DataSet1(5))
			if _, err := core.Run(doc, cfg, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("allpairs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := validated(b, config.DataSet1(5))
			if _, err := baseline.AllPairs(doc, cfg, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationDESNM measures the DE-SNM variant on data with many
// exact duplicates, where elimination pays off.
func BenchmarkAblationDESNM(b *testing.B) {
	doc := movieDoc(b)
	for i := 0; i < b.N; i++ {
		cfg := validated(b, config.DataSet1(5))
		if _, err := baseline.DESNM(doc, cfg, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWindowSize shows the comparison cost growing with
// the window (the knob of Sec. 2.2 step 3).
func BenchmarkAblationWindowSize(b *testing.B) {
	doc := movieDoc(b)
	for _, w := range []int{2, 5, 10, 20} {
		b.Run(windowName(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := validated(b, config.DataSet1(w))
				cfg.KeepKeys("movie", 0)
				if err := cfg.Validate(); err != nil {
					b.Fatal(err)
				}
				if _, err := core.Run(doc, cfg, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func windowName(w int) string {
	return "w=" + string(rune('0'+w/10)) + string(rune('0'+w%10))
}

// BenchmarkAblationLevenshtein measures the plain and banded edit
// distance on typical title-length strings.
func BenchmarkAblationLevenshtein(b *testing.B) {
	a, s := "The Fortune of the Golden River", "The Fortune of the Broken Ocean"
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			similarity.Levenshtein(a, s)
		}
	})
	b.Run("bounded3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			similarity.LevenshteinBounded(a, s, 3)
		}
	})
}

// BenchmarkAblationTransitiveClosure measures union-find closure over
// a chain of duplicate pairs.
func BenchmarkAblationTransitiveClosure(b *testing.B) {
	const n = 10000
	for i := 0; i < b.N; i++ {
		uf := cluster.NewUnionFind()
		for j := 0; j < n; j++ {
			uf.Add(j)
		}
		for j := 1; j < n; j++ {
			uf.Union(j-1, j)
		}
		if uf.Len() != n {
			b.Fatal("bad chain")
		}
	}
}

// BenchmarkAblationKeyGenDOMvsStream contrasts DOM-building key
// generation against the bounded-memory streaming variant.
func BenchmarkAblationKeyGenDOMvsStream(b *testing.B) {
	doc := movieDoc(b)
	xmlText := doc.String()
	cfg := validated(b, dataset.ScalabilityConfig(3))
	b.Run("dom", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parsed, err := xmltree.ParseString(xmlText)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.GenerateKeys(parsed, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.GenerateKeysStream(strings.NewReader(xmlText), cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// windowSweepCases is the flag matrix of the deterministic hot-path
// speedups: the sequential baseline, the sharded pair pool at 4
// workers, the similarity memo, and both combined. Every case computes
// the exact same clusters (see internal/core's differential suite);
// only ns/op may differ. Shared with the bench-regression guard in
// bench_guard_test.go.
var windowSweepCases = []struct {
	name string
	opts core.Options
}{
	{"seq", core.Options{}},
	{"workers4", core.Options{PairWorkers: 4}},
	{"cached", core.Options{SimCache: true}},
	{"workers4+cached", core.Options{PairWorkers: 4, SimCache: true}},
	{"filtered", core.Options{UseFilter: true}},
	{"filtered+workers4", core.Options{UseFilter: true, PairWorkers: 4}},
}

// benchWindowSweep measures Detect only — keys are generated once, so
// ns/op isolates the sliding-window sweep plus transitive closure.
func benchWindowSweep(b *testing.B, opts core.Options) {
	doc := movieDoc(b)
	cfg := validated(b, config.DataSet1(5))
	kg, err := core.GenerateKeys(doc, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Detect(kg, cfg, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowSweep sweeps the 500-movie document through each
// speedup combination.
func BenchmarkWindowSweep(b *testing.B) {
	for _, c := range windowSweepCases {
		b.Run(c.name, func(b *testing.B) { benchWindowSweep(b, c.opts) })
	}
}

// shardSweepCases is the sharded-sweep matrix shared with the
// bench-regression guard: shards=1 runs the full shard machinery —
// planner, worker goroutine, batch channel, verdict replay — over a
// single range, so its gap from the plain sequential sweep IS the
// coordination overhead (guarded to ≤15% in bench_guard_test.go);
// shards=4 is the scale-out shape, alone, with the in-shard pair pool,
// and over the external-sort range readers. Every case computes the
// exact same clusters (see TestDifferentialSharded); only ns/op may
// differ.
var shardSweepCases = []struct {
	name string
	opts core.Options
}{
	{"shards1", core.Options{Shards: 1}},
	{"shards4", core.Options{Shards: 4}},
	{"shards4+workers4", core.Options{Shards: 4, PairWorkers: 4}},
	{"shards4+spill-256", core.Options{Shards: 4, SpillThresholdRows: 256}},
}

// BenchmarkWindowSweepSharded sweeps the 500-movie document through the
// shard matrix.
func BenchmarkWindowSweepSharded(b *testing.B) {
	for _, c := range shardSweepCases {
		b.Run(c.name, func(b *testing.B) { benchWindowSweep(b, c.opts) })
	}
}

// spillSweepCases is the external-sort matrix shared with the
// bench-regression guard: spill disabled (must cost the same as the
// plain sequential sweep — the gate is one nil check per candidate),
// and two run sizes of the on-disk path. ns/op for the spilled cases
// includes run-file writes, the k-way merge, and checksum verification,
// so they bound the I/O tax, not just CPU.
var spillSweepCases = []struct {
	name string
	opts core.Options
}{
	{"spill-off", core.Options{}},
	{"spill-256", core.Options{SpillThresholdRows: 256}},
	{"spill-32", core.Options{SpillThresholdRows: 32}},
}

// BenchmarkGKSortSpill measures the memory-bounded GK sort across the
// corpus × threshold matrix: the 500-movie document (single candidate,
// three passes) and the 150-disc CD document (four nested candidates).
func BenchmarkGKSortSpill(b *testing.B) {
	type corpus struct {
		name string
		doc  *xmltree.Document
		cfg  *config.Config
	}
	corpora := []corpus{
		{"movies500", movieDoc(b), validated(b, config.DataSet1(5))},
		{"cds150", cdDoc(b), validated(b, config.DataSet2(5))},
	}
	for _, co := range corpora {
		kg, err := core.GenerateKeys(co.doc, co.cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range spillSweepCases {
			b.Run(co.name+"/"+c.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Detect(kg, co.cfg, c.opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCancellationOverhead contrasts a plain Run (nil Done
// channel: every cancellation check short-circuits) against the same
// run under a cancelable context (checks active, polled every 1024
// window pairs). The delta is the price of the robustness layer on the
// sliding-window hot loop — it must stay in the noise (<2%).
func BenchmarkCancellationOverhead(b *testing.B) {
	doc := largeCDDoc(b)
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := validated(b, config.DataSet3(5))
			if _, err := core.Run(doc, cfg, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cancelable", func(b *testing.B) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		for i := 0; i < b.N; i++ {
			cfg := validated(b, config.DataSet3(5))
			if _, err := core.RunContext(ctx, doc, cfg, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationGKPersistence measures the write/read cycle of the
// temporary GK relations.
func BenchmarkAblationGKPersistence(b *testing.B) {
	doc := movieDoc(b)
	cfg := validated(b, dataset.ScalabilityConfig(3))
	kg, err := core.GenerateKeys(doc, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf strings.Builder
		if err := core.WriteGK(&buf, kg); err != nil {
			b.Fatal(err)
		}
		if _, err := core.ReadGK(strings.NewReader(buf.String()), cfg); err != nil {
			b.Fatal(err)
		}
	}
}
