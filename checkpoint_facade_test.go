package sxnm

// Facade-level checkpoint tests: interrupted checkpointed runs resume
// to results byte-identical to an uninterrupted run, finished
// checkpoints make reruns free, and Resume is strict about missing,
// mismatched, and corrupt state.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/config"
	"repro/internal/dataset"
)

func checkpointCorpus(t *testing.T) (*Config, *Document) {
	t.Helper()
	cfg := config.DataSet3(5)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg, dataset.DataSet3(120, 7)
}

func clustersEqual(t *testing.T, got, want *Result) {
	t.Helper()
	if len(got.Clusters) != len(want.Clusters) {
		t.Fatalf("cluster set count %d, want %d", len(got.Clusters), len(want.Clusters))
	}
	for name, cs := range want.Clusters {
		if g := got.Clusters[name]; g == nil || g.String() != cs.String() {
			t.Errorf("candidate %q: clusters diverge from reference", name)
		}
	}
}

func TestRunCheckpointedResumesInterruptedRun(t *testing.T) {
	cfg, doc := checkpointCorpus(t)
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := ref.Run(doc)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	limited, err := NewWithOptions(cfg, Options{Limits: Limits{MaxComparisons: full.Stats.Comparisons / 3, CheckEvery: 1}})
	if err != nil {
		t.Fatal(err)
	}
	part, runErr := limited.RunCheckpointed(doc, dir)
	if !errors.Is(runErr, ErrLimitExceeded) {
		t.Fatalf("want ErrLimitExceeded, got %v", runErr)
	}
	if part == nil || part.Incomplete == nil {
		t.Fatal("interrupted run must return a partial result")
	}

	// The same detector without limits resumes to the full result.
	res, err := ref.RunCheckpointed(doc, dir)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	clustersEqual(t, res, full)
	if res.Stats.Comparisons >= full.Stats.Comparisons {
		t.Errorf("resumed run redid all %d comparisons (full run: %d); checkpoint state unused",
			res.Stats.Comparisons, full.Stats.Comparisons)
	}

	// Rerunning a finished checkpoint is free: everything resumes.
	again, err := ref.RunCheckpointed(doc, dir)
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	clustersEqual(t, again, full)
	if again.Stats.Comparisons != 0 {
		t.Errorf("rerun of a finished checkpoint performed %d comparisons, want 0", again.Stats.Comparisons)
	}
}

func TestResumeIsStrict(t *testing.T) {
	cfg, doc := checkpointCorpus(t)
	det, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := det.Resume(doc, t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("empty dir: want ErrNoCheckpoint, got %v", err)
	}

	dir := t.TempDir()
	if _, err := det.RunCheckpointed(doc, dir); err != nil {
		t.Fatal(err)
	}

	// A different window is a different config fingerprint.
	otherCfg := config.DataSet3(9)
	other, err := New(otherCfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = other.Resume(doc, dir)
	var me *CheckpointMismatchError
	if !errors.As(err, &me) || me.Field != "config" {
		t.Errorf("config mismatch: got %v", err)
	}
	if _, err := other.RunCheckpointed(doc, dir); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("RunCheckpointed must also refuse a mismatched checkpoint, got %v", err)
	}

	// A different document is a different document fingerprint.
	otherDoc := dataset.DataSet3(120, 8)
	if _, err := det.Resume(otherDoc, dir); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("document mismatch: got %v", err)
	}

	// Corruption: Resume refuses, RunCheckpointed restarts clean.
	if err := os.WriteFile(filepath.Join(dir, "manifest.tsv"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := det.Resume(doc, dir); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("corrupt manifest: want ErrCheckpointCorrupt, got %v", err)
	}
	res, err := det.RunCheckpointedContext(context.Background(), doc, dir)
	if err != nil {
		t.Fatalf("clean restart over corrupt checkpoint: %v", err)
	}
	full, err := det.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	clustersEqual(t, res, full)
}
