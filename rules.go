package sxnm

import "repro/internal/rules"

// Equational theory support (the paper's Sec. 5 outlook): boolean
// expressions over per-field similarities replace the single-threshold
// classification. See internal/rules for the expression language:
//
//	sim(1) >= 0.9 and (sim(3) >= 0.8 or desc >= 0.5)

type (
	// Rule is a compiled equational-theory expression bound to one
	// candidate.
	Rule = rules.Rule
	// RuleSet maps candidates to rules and adapts them to run Options.
	RuleSet = rules.RuleSet
)

// CompileRule parses an equational-theory expression for a candidate
// of a validated configuration.
func CompileRule(expr string, cand *Candidate) (*Rule, error) {
	return rules.Compile(expr, cand)
}

// NewRuleSet compiles one expression per candidate name; candidates
// without an expression keep their configured threshold rules. Use
// RuleSet.Options as (or merged into) the Detector options:
//
//	rs, _ := sxnm.NewRuleSet(cfg, map[string]string{"movie": "sim(1) >= 0.9"})
//	det, _ := sxnm.NewWithOptions(cfg, rs.Options())
func NewRuleSet(cfg *Config, exprs map[string]string) (*RuleSet, error) {
	return rules.NewRuleSet(cfg, exprs)
}
