package sxnm

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteClustersCSV(t *testing.T) {
	det := demoDetector(t)
	doc, err := ParseXMLString(demoXML)
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteClustersCSV(&b, doc, res); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(records) < 2 {
		t.Fatalf("csv rows = %d", len(records))
	}
	if got := strings.Join(records[0], ","); got != "candidate,cluster,element,text" {
		t.Errorf("header = %q", got)
	}
	// Movie duplicate group: 2 rows; person groups: 4 rows. All rows
	// have 4 columns and a non-empty candidate.
	movieRows := 0
	for _, r := range records[1:] {
		if len(r) != 4 {
			t.Fatalf("row width = %d", len(r))
		}
		if r[0] == "movie" {
			movieRows++
		}
	}
	if movieRows != 2 {
		t.Errorf("movie rows = %d, want 2", movieRows)
	}
}

func TestClustersDocument(t *testing.T) {
	det := demoDetector(t)
	doc, err := ParseXMLString(demoXML)
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	out := ClustersDocument(res)
	if out.Root.Name != "sxnm-clusters" {
		t.Fatalf("root = %q", out.Root.Name)
	}
	cands := out.Root.ChildElements("candidate")
	if len(cands) != 2 {
		t.Fatalf("candidates = %d", len(cands))
	}
	// Candidates sorted by name: movie, person.
	if n, _ := cands[0].Attr("name"); n != "movie" {
		t.Errorf("first candidate = %q", n)
	}
	// Every element of the partition appears exactly once.
	movieElems := 0
	dupClusters := 0
	for _, cl := range cands[0].ChildElements("cluster") {
		movieElems += len(cl.ChildElements("element"))
		if v, ok := cl.Attr("duplicates"); ok && v == "true" {
			dupClusters++
		}
	}
	if movieElems != 3 {
		t.Errorf("movie elements = %d, want 3", movieElems)
	}
	if dupClusters != 1 {
		t.Errorf("duplicate clusters = %d, want 1", dupClusters)
	}
	// The document serializes and reparses.
	if _, err := ParseXMLString(out.String()); err != nil {
		t.Fatalf("clusters document does not round-trip: %v", err)
	}
}

func TestWriteStats(t *testing.T) {
	det := demoDetector(t)
	res, err := det.RunReader(strings.NewReader(demoXML))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteStats(&b, res); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"KG=", "SW=", "TC=", "DD=", "comparisons="} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("stats output missing %q: %s", want, b.String())
		}
	}
}

func TestTuneThroughFacade(t *testing.T) {
	// Reuse the demo config/data: plant gold ids so tuning has truth.
	xmlStr := `<movie_database><movies>
	  <movie x-gold="a"><title>Silent River</title>
	    <people><person>Keanu Reeves</person></people></movie>
	  <movie x-gold="a"><title>Silnt River</title>
	    <people><person>Keanu Reeves</person></people></movie>
	  <movie x-gold="b"><title>Broken Storm</title>
	    <people><person>Uma Thurman</person></people></movie>
	</movies></movie_database>`
	cfg, err := LoadConfig(strings.NewReader(demoConfig))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseXMLString(xmlStr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Tune(doc, cfg, TuneOptions{
		Candidate:  "movie",
		Thresholds: []float64{0.6, 0.8, 0.99},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Score != 1 {
		t.Errorf("best score = %v, want 1 on this trivial sample", res.Best.Score)
	}
	if res.Best.Threshold == 0.99 {
		t.Error("threshold 0.99 cannot detect the typo pair")
	}
	if err := ApplyTuned(cfg, "movie", res.Best); err != nil {
		t.Fatal(err)
	}
	if cfg.Candidate("movie").Threshold != res.Best.Threshold {
		t.Error("ApplyTuned did not update the config")
	}
}

func TestEvalFacade(t *testing.T) {
	xmlStr := `<movie_database><movies>
	  <movie x-gold="a"><title>Silent River</title>
	    <people><person>K</person></people></movie>
	  <movie x-gold="a"><title>Silnt River</title>
	    <people><person>K</person></people></movie>
	  <movie x-gold="b"><title>Broken Storm</title>
	    <people><person>U</person></people></movie>
	</movies></movie_database>`
	det := demoDetector(t)
	doc, err := ParseXMLString(xmlStr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	gold, err := BuildGold(doc, "movie_database/movies/movie")
	if err != nil {
		t.Fatal(err)
	}
	m := PairwiseMetrics(gold, res.Clusters["movie"])
	if m.F1 != 1 {
		t.Errorf("pairwise F = %v, want 1 (%s)", m.F1, m)
	}
	cm := ClusterLevelMetrics(gold, res.Clusters["movie"])
	if cm.F != 1 {
		t.Errorf("cluster-level F = %v, want 1", cm.F)
	}
	if _, err := BuildGold(doc, "[["); err == nil {
		t.Error("bad path should fail")
	}
}
