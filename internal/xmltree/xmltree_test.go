package xmltree

import (
	"strings"
	"testing"
)

const sampleXML = `<?xml version="1.0"?>
<movie_database>
  <movies>
    <movie year="1999" length="136">
      <title>Matrix</title>
      <people>
        <person>Keanu Reeves</person>
        <person>Carrie-Anne Moss</person>
      </people>
    </movie>
    <movie year="1998">
      <title>Mask of Zorro</title>
    </movie>
  </movies>
</movie_database>`

func mustParse(t *testing.T, s string) *Document {
	t.Helper()
	d, err := ParseString(s)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return d
}

func TestParseBasicStructure(t *testing.T) {
	d := mustParse(t, sampleXML)
	if d.Root.Name != "movie_database" {
		t.Fatalf("root = %q, want movie_database", d.Root.Name)
	}
	movies := d.ElementsByPath("movie_database/movies/movie")
	if len(movies) != 2 {
		t.Fatalf("got %d movies, want 2", len(movies))
	}
	m := movies[0]
	if y, ok := m.Attr("year"); !ok || y != "1999" {
		t.Errorf("year attr = %q,%v want 1999,true", y, ok)
	}
	if title := m.FirstChildElement("title"); title == nil || title.Text() != "Matrix" {
		t.Errorf("title = %v", title)
	}
	people := m.FirstChildElement("people").ChildElements("person")
	if len(people) != 2 {
		t.Fatalf("got %d persons, want 2", len(people))
	}
	if people[1].Text() != "Carrie-Anne Moss" {
		t.Errorf("person[1] = %q", people[1].Text())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"whitespace only", "   \n "},
		{"unclosed", "<a><b></a>"},
		{"truncated", "<a><b>"},
		{"two roots", "<a/><b/>"},
		{"garbage", "not xml at all <"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseString(c.in); err == nil {
				t.Errorf("ParseString(%q) succeeded, want error", c.in)
			}
		})
	}
}

func TestParseEntitiesAndCDATA(t *testing.T) {
	d := mustParse(t, `<a t="x&amp;y">AC&#47;DC &lt;live&gt;<![CDATA[ & raw < ]]></a>`)
	if v, _ := d.Root.Attr("t"); v != "x&y" {
		t.Errorf("attr = %q, want x&y", v)
	}
	want := "AC/DC <live> & raw <"
	if got := d.Root.Text(); got != want {
		t.Errorf("text = %q, want %q", got, want)
	}
}

func TestDocumentOrderIDs(t *testing.T) {
	d := mustParse(t, sampleXML)
	seen := map[int]bool{}
	prev := 0
	d.Root.Walk(func(n *Node) bool {
		if n.ID <= prev {
			t.Errorf("node %q id %d not increasing after %d", n.Name, n.ID, prev)
		}
		if seen[n.ID] {
			t.Errorf("duplicate id %d", n.ID)
		}
		seen[n.ID] = true
		prev = n.ID
		return true
	})
	if d.Root.ID != 1 {
		t.Errorf("root id = %d, want 1", d.Root.ID)
	}
}

func TestNodeByIDAndIndex(t *testing.T) {
	d := mustParse(t, sampleXML)
	idx := d.IndexByID()
	movies := d.ElementsByPath("movie_database/movies/movie")
	for _, m := range movies {
		if d.NodeByID(m.ID) != m {
			t.Errorf("NodeByID(%d) mismatch", m.ID)
		}
		if idx[m.ID] != m {
			t.Errorf("IndexByID[%d] mismatch", m.ID)
		}
	}
	if d.NodeByID(-1) != nil || d.NodeByID(1<<30) != nil {
		t.Error("NodeByID on absent ids should return nil")
	}
}

func TestAbsolutePathAndDepth(t *testing.T) {
	d := mustParse(t, sampleXML)
	p := d.ElementsByPath("movie_database/movies/movie")[0].FirstChildElement("people").ChildElements("person")[0]
	if got := p.AbsolutePath(); got != "movie_database/movies/movie/people/person" {
		t.Errorf("AbsolutePath = %q", got)
	}
	if p.Depth() != 4 {
		t.Errorf("Depth = %d, want 4", p.Depth())
	}
	if d.Root.Depth() != 0 {
		t.Errorf("root depth = %d, want 0", d.Root.Depth())
	}
	// Text node path equals its parent's.
	txt := p.Children[0]
	if txt.Kind != TextNode {
		t.Fatal("expected text child")
	}
	if txt.AbsolutePath() != p.AbsolutePath() {
		t.Errorf("text path %q != parent path %q", txt.AbsolutePath(), p.AbsolutePath())
	}
}

func TestIsAncestorOf(t *testing.T) {
	d := mustParse(t, sampleXML)
	movie := d.ElementsByPath("movie_database/movies/movie")[0]
	person := movie.FirstChildElement("people").ChildElements("person")[0]
	if !d.Root.IsAncestorOf(person) {
		t.Error("root should be ancestor of person")
	}
	if !movie.IsAncestorOf(person) {
		t.Error("movie should be ancestor of person")
	}
	if person.IsAncestorOf(movie) {
		t.Error("person must not be ancestor of movie")
	}
	if movie.IsAncestorOf(movie) {
		t.Error("IsAncestorOf must be strict")
	}
}

func TestMutation(t *testing.T) {
	root := NewElement("root")
	a := NewElement("a")
	b := NewElement("b")
	root.AppendChild(a)
	root.InsertChildAt(0, b)
	if root.Children[0] != b || root.Children[1] != a {
		t.Fatal("InsertChildAt(0) order wrong")
	}
	if a.Parent != root || b.Parent != root {
		t.Fatal("parent links wrong")
	}
	if !root.RemoveChild(b) {
		t.Fatal("RemoveChild failed")
	}
	if b.Parent != nil {
		t.Error("removed child keeps parent")
	}
	if root.RemoveChild(b) {
		t.Error("double remove should report false")
	}
}

func TestAttrOps(t *testing.T) {
	e := NewElement("e")
	e.SetAttr("k", "v1")
	e.SetAttr("k", "v2")
	if len(e.Attrs) != 1 {
		t.Fatalf("SetAttr duplicated: %v", e.Attrs)
	}
	if v, ok := e.Attr("k"); !ok || v != "v2" {
		t.Errorf("Attr = %q,%v", v, ok)
	}
	if _, ok := e.Attr("absent"); ok {
		t.Error("absent attr reported present")
	}
	if !e.RemoveAttr("k") || e.RemoveAttr("k") {
		t.Error("RemoveAttr semantics wrong")
	}
}

func TestSetText(t *testing.T) {
	e := NewElement("e")
	e.AppendChild(NewText("old"))
	e.AppendChild(NewElement("child"))
	e.SetText("new")
	if e.Text() != "new" {
		t.Errorf("Text = %q, want new", e.Text())
	}
	if e.FirstChildElement("child") == nil {
		t.Error("SetText must keep element children")
	}
	e.SetText("")
	if e.Text() != "" {
		t.Errorf("Text after clear = %q", e.Text())
	}
}

func TestCloneIsDeepAndDetached(t *testing.T) {
	d := mustParse(t, sampleXML)
	movie := d.ElementsByPath("movie_database/movies/movie")[0]
	c := movie.Clone()
	if c.Parent != nil {
		t.Error("clone must be parentless")
	}
	c.FirstChildElement("title").SetText("Changed")
	if movie.FirstChildElement("title").Text() != "Matrix" {
		t.Error("mutating clone affected original")
	}
	if got := c.FirstChildElement("people").ChildElements("person")[0].Text(); got != "Keanu Reeves" {
		t.Errorf("clone lost descendant text: %q", got)
	}
}

func TestRenumberAfterMutation(t *testing.T) {
	d := mustParse(t, sampleXML)
	movies := d.Root.FirstChildElement("movies")
	movies.AppendChild(movies.ChildElements("movie")[0].Clone())
	d.Renumber()
	seen := map[int]bool{}
	d.Root.Walk(func(n *Node) bool {
		if seen[n.ID] {
			t.Fatalf("duplicate id %d after renumber", n.ID)
		}
		seen[n.ID] = true
		return true
	})
}

func TestDeepText(t *testing.T) {
	d := mustParse(t, `<a>x<b>y</b>z</a>`)
	if got := d.Root.DeepText(); got != "xyz" {
		t.Errorf("DeepText = %q, want xyz", got)
	}
}

func TestStats(t *testing.T) {
	d := mustParse(t, sampleXML)
	s := d.Stats()
	if s.Elements != 9 {
		t.Errorf("Elements = %d, want 9", s.Elements)
	}
	if s.Attrs != 3 {
		t.Errorf("Attrs = %d, want 3", s.Attrs)
	}
	if s.MaxDepth < 4 {
		t.Errorf("MaxDepth = %d, want >= 4", s.MaxDepth)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	d := mustParse(t, sampleXML)
	var b strings.Builder
	if err := d.Write(&b, WriteOptions{Indent: "  ", Header: true}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	d2, err := ParseString(b.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !structurallyEqual(d.Root, d2.Root) {
		t.Errorf("round trip changed structure:\n%s\nvs\n%s", d.String(), d2.String())
	}
}

func TestWriteEscaping(t *testing.T) {
	root := NewElement("r")
	root.SetAttr("a", `<&">`)
	root.AppendChild(NewText("a<b & c>d"))
	d := NewDocument(root)
	var b strings.Builder
	if err := d.Write(&b, WriteOptions{}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out := b.String()
	for _, bad := range []string{"<&", `"<`} {
		if strings.Contains(out, bad) {
			t.Errorf("output contains unescaped %q: %s", bad, out)
		}
	}
	d2, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if d2.Root.Text() != "a<b & c>d" {
		t.Errorf("text round trip = %q", d2.Root.Text())
	}
	if v, _ := d2.Root.Attr("a"); v != `<&">` {
		t.Errorf("attr round trip = %q", v)
	}
}

func TestWriteSelfClosing(t *testing.T) {
	d := NewDocument(NewElement("empty"))
	var b strings.Builder
	if err := d.Write(&b, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "<empty/>" {
		t.Errorf("output = %q, want <empty/>", got)
	}
}

// structurallyEqual compares trees ignoring node IDs and whitespace-only
// differences in text.
func structurallyEqual(a, b *Node) bool {
	if a.Kind != b.Kind || a.Name != b.Name {
		return false
	}
	if a.Kind == TextNode && strings.TrimSpace(a.Data) != strings.TrimSpace(b.Data) {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Children {
		if !structurallyEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

func TestSortChildrenBy(t *testing.T) {
	root := NewElement("r")
	for _, name := range []string{"c", "a", "b"} {
		e := NewElement("x")
		e.SetText(name)
		root.AppendChild(e)
	}
	root.SortChildrenBy(func(a, b *Node) bool { return a.Text() < b.Text() })
	got := ""
	for _, c := range root.Children {
		got += c.Text()
	}
	if got != "abc" {
		t.Errorf("sorted order = %q, want abc", got)
	}
}

func TestAppendChildPanicsOnText(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewText("t").AppendChild(NewElement("e"))
}
