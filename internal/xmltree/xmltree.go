// Package xmltree implements the XML document model SXNM operates on:
// an ordered tree of element and text nodes with parent links,
// attributes, document-order identifiers, parsing (on top of
// encoding/xml) and serialization.
//
// The model is deliberately small — namespaces are flattened to local
// names, comments and processing instructions are dropped — because the
// paper's algorithm only needs element structure, attributes, and text.
package xmltree

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates node types in the tree.
type Kind int

const (
	// ElementNode is an XML element; Name holds the local tag name.
	ElementNode Kind = iota
	// TextNode is a run of character data; Data holds the text.
	TextNode
)

// Attr is a single attribute of an element node.
type Attr struct {
	Name  string
	Value string
}

// Node is an element or text node in the document tree.
//
// ID is the node's position in document order, assigned by Parse or
// Document.Renumber. SXNM uses it as the element ID (eid) stored in GK
// relations, so it must be unique per document.
type Node struct {
	Kind     Kind
	Name     string // element name; empty for text nodes
	Data     string // text content; empty for element nodes
	Attrs    []Attr
	Parent   *Node
	Children []*Node
	ID       int
}

// Document wraps the root element of a parsed or constructed document.
type Document struct {
	Root *Node
}

// NewElement returns a parentless element node with the given name.
func NewElement(name string) *Node {
	return &Node{Kind: ElementNode, Name: name}
}

// NewText returns a parentless text node with the given content.
func NewText(data string) *Node {
	return &Node{Kind: TextNode, Data: data}
}

// AppendChild appends c to n's children and sets c's parent.
// It panics if n is not an element node.
func (n *Node) AppendChild(c *Node) {
	if n.Kind != ElementNode {
		panic("xmltree: AppendChild on non-element node")
	}
	c.Parent = n
	n.Children = append(n.Children, c)
}

// InsertChildAt inserts c at index i among n's children.
// Index len(n.Children) appends.
func (n *Node) InsertChildAt(i int, c *Node) {
	if n.Kind != ElementNode {
		panic("xmltree: InsertChildAt on non-element node")
	}
	if i < 0 || i > len(n.Children) {
		panic(fmt.Sprintf("xmltree: InsertChildAt index %d out of range [0,%d]", i, len(n.Children)))
	}
	c.Parent = n
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = c
}

// RemoveChild removes c from n's children and clears c's parent.
// It reports whether c was found.
func (n *Node) RemoveChild(c *Node) bool {
	for i, ch := range n.Children {
		if ch == c {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			c.Parent = nil
			return true
		}
	}
	return false
}

// SetAttr sets attribute name to value, replacing an existing value.
func (n *Node) SetAttr(name, value string) {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// RemoveAttr deletes the named attribute, reporting whether it existed.
func (n *Node) RemoveAttr(name string) bool {
	for i, a := range n.Attrs {
		if a.Name == name {
			n.Attrs = append(n.Attrs[:i], n.Attrs[i+1:]...)
			return true
		}
	}
	return false
}

// ChildElements returns the element children of n, or only those with
// the given name if name is non-empty.
func (n *Node) ChildElements(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == ElementNode && (name == "" || c.Name == name) {
			out = append(out, c)
		}
	}
	return out
}

// FirstChildElement returns the first element child with the given
// name, or nil.
func (n *Node) FirstChildElement(name string) *Node {
	for _, c := range n.Children {
		if c.Kind == ElementNode && c.Name == name {
			return c
		}
	}
	return nil
}

// Text returns the concatenation of the direct text children of n,
// with surrounding whitespace trimmed. It does not descend into child
// elements; use DeepText for that.
func (n *Node) Text() string {
	var b strings.Builder
	for _, c := range n.Children {
		if c.Kind == TextNode {
			b.WriteString(c.Data)
		}
	}
	return strings.TrimSpace(b.String())
}

// SetText replaces all direct text children of n with a single text
// node holding data (or removes them all if data is empty).
func (n *Node) SetText(data string) {
	kept := n.Children[:0]
	for _, c := range n.Children {
		if c.Kind != TextNode {
			kept = append(kept, c)
		}
	}
	n.Children = kept
	if data != "" {
		n.AppendChild(NewText(data))
	}
}

// DeepText returns the concatenation of all descendant text, in
// document order, whitespace-trimmed at the ends.
func (n *Node) DeepText() string {
	var b strings.Builder
	n.Walk(func(d *Node) bool {
		if d.Kind == TextNode {
			b.WriteString(d.Data)
		}
		return true
	})
	return strings.TrimSpace(b.String())
}

// Walk visits n and its descendants in document order. If fn returns
// false for a node, that node's children are skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// AbsolutePath returns the slash-separated element names from the root
// to n (e.g. "movie_database/movies/movie"). Text nodes return the
// path of their parent element.
func (n *Node) AbsolutePath() string {
	if n.Kind == TextNode {
		if n.Parent == nil {
			return ""
		}
		return n.Parent.AbsolutePath()
	}
	var parts []string
	for e := n; e != nil; e = e.Parent {
		parts = append(parts, e.Name)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "/")
}

// Depth returns the number of ancestors of n (root has depth 0).
func (n *Node) Depth() int {
	d := 0
	for e := n.Parent; e != nil; e = e.Parent {
		d++
	}
	return d
}

// IsAncestorOf reports whether n is a strict ancestor of d.
func (n *Node) IsAncestorOf(d *Node) bool {
	for e := d.Parent; e != nil; e = e.Parent {
		if e == n {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of n's subtree. The copy has no parent and
// node IDs equal to the originals'; call Document.Renumber after
// grafting clones into a document.
func (n *Node) Clone() *Node {
	c := &Node{Kind: n.Kind, Name: n.Name, Data: n.Data, ID: n.ID}
	if len(n.Attrs) > 0 {
		c.Attrs = make([]Attr, len(n.Attrs))
		copy(c.Attrs, n.Attrs)
	}
	for _, ch := range n.Children {
		c.AppendChild(ch.Clone())
	}
	return c
}

// CountElements returns the number of element nodes in n's subtree,
// including n itself.
func (n *Node) CountElements() int {
	count := 0
	n.Walk(func(d *Node) bool {
		if d.Kind == ElementNode {
			count++
		}
		return true
	})
	return count
}

// NewDocument creates a document around the given root element.
// Node IDs are assigned immediately.
func NewDocument(root *Node) *Document {
	d := &Document{Root: root}
	d.Renumber()
	return d
}

// Renumber assigns fresh document-order IDs to every node, starting at
// 1 for the root. Call after structural mutation (e.g. by the dirty
// data generator).
func (d *Document) Renumber() {
	id := 0
	d.Root.Walk(func(n *Node) bool {
		id++
		n.ID = id
		return true
	})
}

// NodeByID returns the node with the given document-order ID, or nil.
// It is O(n); callers that need many lookups should build an index
// with IndexByID.
func (d *Document) NodeByID(id int) *Node {
	var found *Node
	d.Root.Walk(func(n *Node) bool {
		if found != nil {
			return false
		}
		if n.ID == id {
			found = n
			return false
		}
		return true
	})
	return found
}

// IndexByID returns a map from node ID to node over the whole document.
func (d *Document) IndexByID() map[int]*Node {
	idx := make(map[int]*Node)
	d.Root.Walk(func(n *Node) bool {
		idx[n.ID] = n
		return true
	})
	return idx
}

// ElementsByPath returns all elements whose AbsolutePath equals path,
// in document order.
func (d *Document) ElementsByPath(path string) []*Node {
	var out []*Node
	d.Root.Walk(func(n *Node) bool {
		if n.Kind == ElementNode && n.AbsolutePath() == path {
			out = append(out, n)
		}
		return true
	})
	return out
}

// Stats summarizes a document; useful for logging and tests.
type Stats struct {
	Elements  int
	TextNodes int
	Attrs     int
	MaxDepth  int
}

// Stats computes summary statistics for the document.
func (d *Document) Stats() Stats {
	var s Stats
	d.Root.Walk(func(n *Node) bool {
		switch n.Kind {
		case ElementNode:
			s.Elements++
			s.Attrs += len(n.Attrs)
		case TextNode:
			s.TextNodes++
		}
		if dep := n.Depth(); dep > s.MaxDepth {
			s.MaxDepth = dep
		}
		return true
	})
	return s
}

// SortChildrenBy reorders n's element children according to less,
// keeping text children in place relative to each other is not
// meaningful for SXNM data, so all children are sorted together with
// text nodes ordered before elements when compared by less on elements
// only. In practice the generators call this on element-only parents.
func (n *Node) SortChildrenBy(less func(a, b *Node) bool) {
	sort.SliceStable(n.Children, func(i, j int) bool {
		return less(n.Children[i], n.Children[j])
	})
}
