package xmltree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/runlimit"
)

// Parse reads an XML document from r into a Document. Namespaces are
// flattened to local names; comments, processing instructions, and
// directives are dropped; pure-whitespace text between elements is
// discarded. Non-whitespace content after the root element closes is
// rejected. Node IDs are assigned in document order starting at 1.
func Parse(r io.Reader) (*Document, error) {
	return ParseWithLimits(r, runlimit.Limits{})
}

// ParseWithLimits is Parse with resource ceilings enforced during the
// token scan: lim.MaxDepth caps element nesting (root = depth 1) and
// lim.MaxNodes caps the document-order node count (elements plus
// significant text nodes). A breach aborts the parse with a
// *runlimit.LimitError, so hostile or runaway documents fail fast
// instead of exhausting memory. Zero limits parse unbounded.
func ParseWithLimits(r io.Reader, lim runlimit.Limits) (*Document, error) {
	dec := xml.NewDecoder(r)
	dec.Strict = true

	var root *Node
	var cur *Node
	depth := 0
	nodes := 0
	countNode := func() error {
		nodes++
		if lim.MaxNodes > 0 && nodes > lim.MaxNodes {
			return fmt.Errorf("xmltree: parse: %w",
				&runlimit.LimitError{Limit: "max-nodes", Max: lim.MaxNodes, Observed: nodes})
		}
		return nil
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			if lim.MaxDepth > 0 && depth > lim.MaxDepth {
				return nil, fmt.Errorf("xmltree: parse: %w",
					&runlimit.LimitError{Limit: "max-depth", Max: lim.MaxDepth, Observed: depth})
			}
			if err := countNode(); err != nil {
				return nil, err
			}
			e := NewElement(t.Name.Local)
			for _, a := range t.Attr {
				// Drop namespace declarations; keep everything else by
				// local name, which matches the paper's assumption of a
				// common schema without namespace games.
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				e.Attrs = append(e.Attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			if cur == nil {
				if root != nil {
					return nil, errors.New("xmltree: parse: multiple root elements")
				}
				root = e
			} else {
				cur.AppendChild(e)
			}
			cur = e
		case xml.EndElement:
			if cur == nil {
				return nil, errors.New("xmltree: parse: unbalanced end element")
			}
			cur = cur.Parent
			depth--
		case xml.CharData:
			s := string(t)
			if cur == nil {
				// Whitespace around the root is insignificant, but any
				// other content outside the root element means the input
				// is not a well-formed single document.
				if root != nil && strings.TrimSpace(s) != "" {
					return nil, errors.New("xmltree: parse: non-whitespace content after root element")
				}
				continue
			}
			if strings.TrimSpace(s) == "" {
				continue
			}
			// Merge adjacent character data (the decoder may split
			// around entity references).
			if k := len(cur.Children); k > 0 && cur.Children[k-1].Kind == TextNode {
				cur.Children[k-1].Data += s
				continue
			}
			if err := countNode(); err != nil {
				return nil, err
			}
			cur.AppendChild(NewText(s))
		}
	}
	if root == nil {
		return nil, errors.New("xmltree: parse: empty document")
	}
	if cur != nil {
		return nil, errors.New("xmltree: parse: unexpected EOF inside element")
	}
	return NewDocument(root), nil
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// ParseFile parses the XML document stored at path.
func ParseFile(path string) (*Document, error) {
	return ParseFileWithLimits(path, runlimit.Limits{})
}

// ParseFileWithLimits parses the XML document stored at path with the
// resource ceilings of ParseWithLimits.
func ParseFileWithLimits(path string, lim runlimit.Limits) (*Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("xmltree: %w", err)
	}
	defer f.Close()
	return ParseWithLimits(f, lim)
}
