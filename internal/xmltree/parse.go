package xmltree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// Parse reads an XML document from r into a Document. Namespaces are
// flattened to local names; comments, processing instructions, and
// directives are dropped; pure-whitespace text between elements is
// discarded. Node IDs are assigned in document order starting at 1.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	dec.Strict = true

	var root *Node
	var cur *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			e := NewElement(t.Name.Local)
			for _, a := range t.Attr {
				// Drop namespace declarations; keep everything else by
				// local name, which matches the paper's assumption of a
				// common schema without namespace games.
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				e.Attrs = append(e.Attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			if cur == nil {
				if root != nil {
					return nil, errors.New("xmltree: parse: multiple root elements")
				}
				root = e
			} else {
				cur.AppendChild(e)
			}
			cur = e
		case xml.EndElement:
			if cur == nil {
				return nil, errors.New("xmltree: parse: unbalanced end element")
			}
			cur = cur.Parent
		case xml.CharData:
			if cur == nil {
				continue // whitespace or stray text outside root
			}
			s := string(t)
			if strings.TrimSpace(s) == "" {
				continue
			}
			// Merge adjacent character data (the decoder may split
			// around entity references).
			if k := len(cur.Children); k > 0 && cur.Children[k-1].Kind == TextNode {
				cur.Children[k-1].Data += s
				continue
			}
			cur.AppendChild(NewText(s))
		}
	}
	if root == nil {
		return nil, errors.New("xmltree: parse: empty document")
	}
	if cur != nil {
		return nil, errors.New("xmltree: parse: unexpected EOF inside element")
	}
	return NewDocument(root), nil
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// ParseFile parses the XML document stored at path.
func ParseFile(path string) (*Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("xmltree: %w", err)
	}
	defer f.Close()
	return Parse(f)
}
