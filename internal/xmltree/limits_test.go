package xmltree

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/runlimit"
)

// Regression (alongside hardening_test.go): content after the root
// element used to be silently ignored; it must now be rejected.
func TestTrailingContentRejected(t *testing.T) {
	cases := []struct {
		name, xml string
		ok        bool
	}{
		{"trailing text", "<r><e>x</e></r>trailing junk", false},
		{"trailing entity", "<r/>&#65;", false},
		{"trailing cdata", "<r/><![CDATA[junk]]>", false},
		{"trailing whitespace", "<r><e>x</e></r>\n\t  ", true},
		{"trailing comment", "<r/><!-- fine -->", true},
		{"leading whitespace", "\n  <r/>", true},
	}
	for _, c := range cases {
		_, err := ParseString(c.xml)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", c.name, err)
		}
		if !c.ok {
			if err == nil {
				t.Errorf("%s: trailing content accepted", c.name)
			} else if !strings.Contains(err.Error(), "after root element") {
				t.Errorf("%s: unclear error: %v", c.name, err)
			}
		}
	}
}

func TestParseWithLimitsDepth(t *testing.T) {
	deep := strings.Repeat("<d>", 10) + "x" + strings.Repeat("</d>", 10)

	if _, err := ParseWithLimits(strings.NewReader(deep), runlimit.Limits{MaxDepth: 10}); err != nil {
		t.Fatalf("depth exactly at the cap must parse: %v", err)
	}
	_, err := ParseWithLimits(strings.NewReader(deep), runlimit.Limits{MaxDepth: 5})
	if !errors.Is(err, runlimit.ErrLimitExceeded) {
		t.Fatalf("want ErrLimitExceeded, got %v", err)
	}
	var le *runlimit.LimitError
	if !errors.As(err, &le) || le.Limit != "max-depth" || le.Max != 5 || le.Observed != 6 {
		t.Errorf("limit details = %+v", le)
	}
}

func TestParseWithLimitsNodes(t *testing.T) {
	// <r> + 5 <e>text</e> children = 1 + 5*2 = 11 nodes.
	xml := "<r>" + strings.Repeat("<e>text</e>", 5) + "</r>"
	if _, err := ParseWithLimits(strings.NewReader(xml), runlimit.Limits{MaxNodes: 11}); err != nil {
		t.Fatalf("node count at the cap must parse: %v", err)
	}
	_, err := ParseWithLimits(strings.NewReader(xml), runlimit.Limits{MaxNodes: 4})
	var le *runlimit.LimitError
	if !errors.As(err, &le) || le.Limit != "max-nodes" {
		t.Fatalf("want max-nodes LimitError, got %v", err)
	}
}

// Node numbering with limits enabled must match unlimited parsing.
func TestParseWithLimitsNumberingUnchanged(t *testing.T) {
	xml := `<r><a>one</a><b x="1">two<c/></b></r>`
	plain, err := ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	limited, err := ParseWithLimits(strings.NewReader(xml), runlimit.Limits{MaxDepth: 100, MaxNodes: 100})
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != limited.String() {
		t.Error("limited parse changed the document")
	}
	if plain.Stats() != limited.Stats() {
		t.Errorf("stats differ: %+v vs %+v", plain.Stats(), limited.Stats())
	}
}

func TestParseFileWithLimits(t *testing.T) {
	if _, err := ParseFileWithLimits("/nonexistent/x.xml", runlimit.Limits{}); err == nil {
		t.Error("missing file should fail")
	}
}
