package xmltree

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics and that anything it
// accepts survives a serialize→reparse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"<a/>",
		"<a><b>text</b></a>",
		`<a x="1" y="&amp;"><!-- c --><b/>tail</a>`,
		"<a>&#9731;</a>",
		"<movie_database><movies><movie year=\"1999\"><title>Matrix</title></movie></movies></movie_database>",
		"<a><![CDATA[raw <stuff> here]]></a>",
		"",
		"<",
		"<a><b></a></b>",
		strings.Repeat("<d>", 50) + "x" + strings.Repeat("</d>", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		doc, err := ParseString(input)
		if err != nil {
			return
		}
		out := doc.String()
		doc2, err := ParseString(out)
		if err != nil {
			t.Fatalf("reparse of serialized output failed: %v\ninput: %q\nout: %q", err, input, out)
		}
		if doc.Stats().Elements != doc2.Stats().Elements {
			t.Fatalf("element count changed in round trip: %d vs %d",
				doc.Stats().Elements, doc2.Stats().Elements)
		}
	})
}
