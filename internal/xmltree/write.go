package xmltree

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// WriteOptions control serialization.
type WriteOptions struct {
	// Indent, when non-empty, pretty-prints with the given unit of
	// indentation. Elements with only text children stay on one line so
	// round-tripping does not introduce significant whitespace.
	Indent string
	// Header, when true, emits an XML declaration first.
	Header bool
}

// Write serializes the document to w.
func (d *Document) Write(w io.Writer, opts WriteOptions) error {
	bw := bufio.NewWriter(w)
	if opts.Header {
		if _, err := bw.WriteString("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"); err != nil {
			return err
		}
	}
	if err := writeNode(bw, d.Root, opts.Indent, 0); err != nil {
		return err
	}
	if opts.Indent != "" {
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// String serializes the document with pretty-printing; intended for
// tests and debugging.
func (d *Document) String() string {
	var b strings.Builder
	_ = d.Write(&b, WriteOptions{Indent: "  "})
	return b.String()
}

// WriteFile serializes the document to the file at path.
func (d *Document) WriteFile(path string, opts WriteOptions) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("xmltree: %w", err)
	}
	if err := d.Write(f, opts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// onlyTextChildren reports whether n has no element children.
func onlyTextChildren(n *Node) bool {
	for _, c := range n.Children {
		if c.Kind == ElementNode {
			return false
		}
	}
	return true
}

func writeNode(w *bufio.Writer, n *Node, indent string, depth int) error {
	pad := ""
	if indent != "" {
		pad = strings.Repeat(indent, depth)
	}
	if n.Kind == TextNode {
		return escapeText(w, n.Data)
	}
	if _, err := w.WriteString(pad); err != nil {
		return err
	}
	if err := w.WriteByte('<'); err != nil {
		return err
	}
	if _, err := w.WriteString(n.Name); err != nil {
		return err
	}
	for _, a := range n.Attrs {
		if err := w.WriteByte(' '); err != nil {
			return err
		}
		if _, err := w.WriteString(a.Name); err != nil {
			return err
		}
		if _, err := w.WriteString(`="`); err != nil {
			return err
		}
		if err := escapeAttr(w, a.Value); err != nil {
			return err
		}
		if err := w.WriteByte('"'); err != nil {
			return err
		}
	}
	if len(n.Children) == 0 {
		_, err := w.WriteString("/>")
		return err
	}
	if err := w.WriteByte('>'); err != nil {
		return err
	}
	inline := indent == "" || onlyTextChildren(n)
	for _, c := range n.Children {
		if !inline {
			if err := w.WriteByte('\n'); err != nil {
				return err
			}
		}
		childIndent := indent
		if inline {
			childIndent = ""
		}
		if err := writeNode(w, c, childIndent, depth+1); err != nil {
			return err
		}
	}
	if !inline {
		if err := w.WriteByte('\n'); err != nil {
			return err
		}
		if _, err := w.WriteString(pad); err != nil {
			return err
		}
	}
	if _, err := w.WriteString("</"); err != nil {
		return err
	}
	if _, err := w.WriteString(n.Name); err != nil {
		return err
	}
	return w.WriteByte('>')
}

func escapeText(w *bufio.Writer, s string) error {
	for _, r := range s {
		var rep string
		switch r {
		case '&':
			rep = "&amp;"
		case '<':
			rep = "&lt;"
		case '>':
			rep = "&gt;"
		default:
			if _, err := w.WriteRune(r); err != nil {
				return err
			}
			continue
		}
		if _, err := w.WriteString(rep); err != nil {
			return err
		}
	}
	return nil
}

func escapeAttr(w *bufio.Writer, s string) error {
	for _, r := range s {
		var rep string
		switch r {
		case '&':
			rep = "&amp;"
		case '<':
			rep = "&lt;"
		case '>':
			rep = "&gt;"
		case '"':
			rep = "&quot;"
		case '\n':
			rep = "&#10;"
		case '\t':
			rep = "&#9;"
		default:
			if _, err := w.WriteRune(r); err != nil {
				return err
			}
			continue
		}
		if _, err := w.WriteString(rep); err != nil {
			return err
		}
	}
	return nil
}
