package xmltree

import (
	"strings"
	"testing"
	"testing/quick"
)

// Hardening tests: deep nesting, unicode, large tokens, pathological
// inputs.

func TestDeepNesting(t *testing.T) {
	const depth = 2000
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("<d>")
	}
	b.WriteString("x")
	for i := 0; i < depth; i++ {
		b.WriteString("</d>")
	}
	doc, err := ParseString(b.String())
	if err != nil {
		t.Fatalf("deep parse: %v", err)
	}
	n := doc.Root
	levels := 1
	for len(n.ChildElements("")) > 0 {
		n = n.ChildElements("")[0]
		levels++
	}
	if levels != depth {
		t.Errorf("depth = %d, want %d", levels, depth)
	}
	if doc.Stats().MaxDepth < depth-1 {
		t.Errorf("MaxDepth = %d", doc.Stats().MaxDepth)
	}
}

func TestUnicodeContent(t *testing.T) {
	xml := `<r a="日本語"><e>Ñandú 🎬 кино</e><e>ασδφ</e></r>`
	doc, err := ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := doc.Root.Attr("a"); v != "日本語" {
		t.Errorf("attr = %q", v)
	}
	if got := doc.Root.ChildElements("e")[0].Text(); got != "Ñandú 🎬 кино" {
		t.Errorf("text = %q", got)
	}
	// Round trip preserves unicode.
	doc2, err := ParseString(doc.String())
	if err != nil {
		t.Fatal(err)
	}
	if doc2.Root.ChildElements("e")[0].Text() != "Ñandú 🎬 кино" {
		t.Error("unicode lost in round trip")
	}
}

func TestLargeTextToken(t *testing.T) {
	big := strings.Repeat("lorem ipsum ", 20000) // ~240 KB
	doc, err := ParseString("<r>" + big + "</r>")
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Root.Text()) < 200000 {
		t.Errorf("large text truncated to %d bytes", len(doc.Root.Text()))
	}
}

func TestManySiblings(t *testing.T) {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 50000; i++ {
		b.WriteString("<e/>")
	}
	b.WriteString("</r>")
	doc, err := ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(doc.Root.ChildElements("e")); got != 50000 {
		t.Errorf("siblings = %d", got)
	}
	// IDs are assigned to all of them.
	last := doc.Root.Children[49999]
	if last.ID != 50001 {
		t.Errorf("last id = %d, want 50001", last.ID)
	}
}

func TestAttributeEdgeCases(t *testing.T) {
	doc, err := ParseString(`<r empty="" spaces="  a  b  " tab="a&#9;b"/>`)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := doc.Root.Attr("empty"); !ok || v != "" {
		t.Errorf("empty attr = %q, %v", v, ok)
	}
	if v, _ := doc.Root.Attr("spaces"); v != "  a  b  " {
		t.Errorf("spaces attr = %q (attribute whitespace must be preserved)", v)
	}
	if v, _ := doc.Root.Attr("tab"); v != "a\tb" {
		t.Errorf("tab attr = %q", v)
	}
	// Round trip.
	doc2, err := ParseString(doc.String())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := doc2.Root.Attr("spaces"); v != "  a  b  " {
		t.Errorf("spaces attr after round trip = %q", v)
	}
	if v, _ := doc2.Root.Attr("tab"); v != "a\tb" {
		t.Errorf("tab attr after round trip = %q", v)
	}
}

func TestMixedContentOrder(t *testing.T) {
	doc, err := ParseString(`<p>one<b>two</b>three<b>four</b>five</p>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Root.DeepText(); got != "onetwothreefourfive" {
		t.Errorf("DeepText = %q", got)
	}
	if got := doc.Root.Text(); got != "onethreefive" {
		t.Errorf("direct Text = %q", got)
	}
}

// Property: serializing any tree built from sanitized random text
// round-trips structurally.
func TestWriteParseRoundTripProperty(t *testing.T) {
	f := func(texts []string) bool {
		root := NewElement("root")
		for i, txt := range texts {
			if i > 8 {
				break
			}
			e := NewElement("item")
			clean := sanitize(txt)
			if clean != "" {
				e.SetText(clean)
				e.SetAttr("v", clean)
			}
			root.AppendChild(e)
		}
		doc := NewDocument(root)
		out := doc.String()
		doc2, err := ParseString(out)
		if err != nil {
			return false
		}
		items := doc2.Root.ChildElements("item")
		if len(items) != len(root.ChildElements("item")) {
			return false
		}
		for i, e := range root.ChildElements("item") {
			want := strings.TrimSpace(e.Text())
			if items[i].Text() != want {
				return false
			}
			va, _ := e.Attr("v")
			vb, _ := items[i].Attr("v")
			if va != vb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// sanitize keeps printable non-control runes (XML cannot carry most
// control characters) and trims space to sidestep whitespace-trim
// semantics, which are tested separately.
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 0x20 && r != 0x7f && r != 0xFFFE && r != 0xFFFF && !(r >= 0xD800 && r <= 0xDFFF) {
			b.WriteRune(r)
		}
	}
	return strings.TrimSpace(b.String())
}

func TestCloneVeryWideTree(t *testing.T) {
	root := NewElement("r")
	for i := 0; i < 10000; i++ {
		c := NewElement("c")
		c.SetText("x")
		root.AppendChild(c)
	}
	clone := root.Clone()
	if len(clone.Children) != 10000 {
		t.Errorf("clone children = %d", len(clone.Children))
	}
	clone.Children[0].SetText("y")
	if root.Children[0].Text() != "x" {
		t.Error("clone aliases original")
	}
}

// failWriter errors after n bytes, exercising the writer error paths.
type failWriter struct{ remaining int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.remaining <= 0 {
		return 0, errWriteFailed
	}
	n := len(p)
	if n > w.remaining {
		n = w.remaining
	}
	w.remaining -= n
	if n < len(p) {
		return n, errWriteFailed
	}
	return n, nil
}

var errWriteFailed = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "synthetic write failure" }

func TestWriteErrorPaths(t *testing.T) {
	doc, err := ParseString(`<r a="v&quot;"><e>text &amp; more</e><f/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	full := doc.String()
	// Fail at every prefix length: Write must report the error, never
	// panic, and never succeed spuriously.
	for n := 0; n < len(full)+2; n++ {
		w := &failWriter{remaining: n}
		err := doc.Write(w, WriteOptions{Indent: "  ", Header: true})
		// Small n must fail; n beyond the serialized length + header
		// may succeed.
		if n < 10 && err == nil {
			t.Fatalf("Write with %d-byte budget succeeded", n)
		}
	}
}

func TestWriteFileErrors(t *testing.T) {
	doc, err := ParseString(`<r/>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.WriteFile("/nonexistent-dir/out.xml", WriteOptions{}); err == nil {
		t.Error("unwritable path should fail")
	}
}
