package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind()
	if u.Same(1, 2) {
		t.Error("fresh ids should be distinct sets")
	}
	if !u.Union(1, 2) {
		t.Error("first union should merge")
	}
	if u.Union(1, 2) {
		t.Error("second union should be a no-op")
	}
	if !u.Same(1, 2) {
		t.Error("1 and 2 should be same after union")
	}
	u.Union(2, 3)
	if !u.Same(1, 3) {
		t.Error("transitivity violated")
	}
	if u.Len() != 3 {
		t.Errorf("Len = %d, want 3", u.Len())
	}
	if u.Unions() != 2 {
		t.Errorf("Unions = %d, want 2", u.Unions())
	}
}

func TestUnionFindSelfUnion(t *testing.T) {
	u := NewUnionFind()
	if u.Union(7, 7) {
		t.Error("self union should be a no-op")
	}
	if !u.Same(7, 7) {
		t.Error("element should equal itself")
	}
}

func TestSetsDeterministic(t *testing.T) {
	u := NewUnionFind()
	for _, p := range [][2]int{{5, 3}, {9, 1}, {3, 9}, {10, 10}} {
		u.Union(p[0], p[1])
	}
	u.Add(7)
	sets := u.Sets()
	// Expect {1,3,5,9}, {7}, {10} ordered by smallest member.
	if len(sets) != 3 {
		t.Fatalf("got %d sets: %v", len(sets), sets)
	}
	want := [][]int{{1, 3, 5, 9}, {7}, {10}}
	for i := range want {
		if len(sets[i]) != len(want[i]) {
			t.Fatalf("set %d = %v, want %v", i, sets[i], want[i])
		}
		for j := range want[i] {
			if sets[i][j] != want[i][j] {
				t.Errorf("set %d = %v, want %v", i, sets[i], want[i])
			}
		}
	}
}

// Property: union is commutative and order-independent — any
// permutation of the same pair list yields the same partition.
func TestUnionOrderIndependent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30
		var pairs [][2]int
		for i := 0; i < 25; i++ {
			pairs = append(pairs, [2]int{rng.Intn(n), rng.Intn(n)})
		}
		u1 := NewUnionFind()
		for i := 0; i < n; i++ {
			u1.Add(i)
		}
		for _, p := range pairs {
			u1.Union(p[0], p[1])
		}
		u2 := NewUnionFind()
		for i := 0; i < n; i++ {
			u2.Add(i)
		}
		perm := rng.Perm(len(pairs))
		for _, i := range perm {
			u2.Union(pairs[i][0], pairs[i][1])
		}
		s1, s2 := u1.Sets(), u2.Sets()
		if len(s1) != len(s2) {
			return false
		}
		for i := range s1 {
			if len(s1[i]) != len(s2[i]) {
				return false
			}
			for j := range s1[i] {
				if s1[i][j] != s2[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMakePair(t *testing.T) {
	if p := MakePair(5, 2); p.A != 2 || p.B != 5 {
		t.Errorf("MakePair(5,2) = %v", p)
	}
	if p := MakePair(2, 5); p.A != 2 || p.B != 5 {
		t.Errorf("MakePair(2,5) = %v", p)
	}
}

func TestBuildClusterSet(t *testing.T) {
	u := NewUnionFind()
	for i := 1; i <= 6; i++ {
		u.Add(i)
	}
	u.Union(1, 3)
	u.Union(4, 5)
	cs := Build(u)
	if cs.Len() != 4 {
		t.Fatalf("Len = %d, want 4", cs.Len())
	}
	if cs.Elements() != 6 {
		t.Errorf("Elements = %d, want 6", cs.Elements())
	}
	// Every element in exactly one cluster (Def. 1).
	seen := map[int]bool{}
	for _, c := range cs.Clusters {
		for _, m := range c.Members {
			if seen[m] {
				t.Errorf("element %d in two clusters", m)
			}
			seen[m] = true
			if id, ok := cs.CID(m); !ok || id != c.ID {
				t.Errorf("CID(%d) = %d,%v want %d", m, id, ok, c.ID)
			}
		}
	}
	if _, ok := cs.CID(99); ok {
		t.Error("CID of unknown element should report false")
	}
}

func TestClusterLookup(t *testing.T) {
	cs := FromPairs([]int{1, 2, 3}, []Pair{{A: 1, B: 2}})
	if c := cs.Cluster(1); c == nil || len(c.Members) != 2 {
		t.Errorf("Cluster(1) = %v", c)
	}
	if cs.Cluster(0) != nil || cs.Cluster(99) != nil {
		t.Error("out-of-range cluster IDs should return nil")
	}
}

func TestFromPairsSingletons(t *testing.T) {
	cs := FromPairs([]int{10, 20, 30}, nil)
	if cs.Len() != 3 {
		t.Errorf("Len = %d, want 3 singletons", cs.Len())
	}
	if len(cs.NonSingletons()) != 0 {
		t.Error("no duplicates expected")
	}
}

func TestDuplicatePairsTransitiveClosure(t *testing.T) {
	// Pairs (1,2) and (2,3) must close to (1,2),(1,3),(2,3).
	cs := FromPairs([]int{1, 2, 3, 4}, []Pair{{A: 1, B: 2}, {A: 2, B: 3}})
	pairs := cs.DuplicatePairs()
	want := []Pair{{1, 2}, {1, 3}, {2, 3}}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v, want %v", pairs, want)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Errorf("pairs[%d] = %v, want %v", i, pairs[i], want[i])
		}
	}
}

func TestNonSingletons(t *testing.T) {
	cs := FromPairs([]int{1, 2, 3, 4, 5}, []Pair{{A: 1, B: 2}, {A: 4, B: 5}})
	ns := cs.NonSingletons()
	if len(ns) != 2 {
		t.Fatalf("NonSingletons = %v", ns)
	}
}

// Property: Build assigns cluster IDs 1..m and DuplicatePairs count
// matches sum over clusters of k·(k−1)/2.
func TestClusterSetInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		universe := make([]int, n)
		for i := range universe {
			universe[i] = i + 100
		}
		var pairs []Pair
		for i := 0; i < 10; i++ {
			pairs = append(pairs, MakePair(universe[rng.Intn(n)], universe[rng.Intn(n)]))
		}
		// Filter self-pairs.
		var clean []Pair
		for _, p := range pairs {
			if p.A != p.B {
				clean = append(clean, p)
			}
		}
		cs := FromPairs(universe, clean)
		wantPairs := 0
		for i, c := range cs.Clusters {
			if c.ID != i+1 {
				return false
			}
			k := len(c.Members)
			wantPairs += k * (k - 1) / 2
		}
		return len(cs.DuplicatePairs()) == wantPairs && cs.Elements() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	cs := FromPairs([]int{1, 2}, []Pair{{A: 1, B: 2}})
	if got := cs.String(); got != "1: [1 2]\n" {
		t.Errorf("String = %q", got)
	}
}
