// Package cluster implements the transitive-closure machinery of SXNM:
// a union-find structure over element IDs and the cluster sets of
// Definition 1, which assign every element instance to exactly one
// cluster representing one real-world object.
package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// UnionFind is a disjoint-set forest over arbitrary int element IDs
// with path compression and union by size. Elements are registered
// lazily: an ID that was never seen is its own singleton set.
type UnionFind struct {
	parent map[int]int
	size   map[int]int
	unions int
}

// NewUnionFind returns an empty union-find.
func NewUnionFind() *UnionFind {
	return &UnionFind{parent: make(map[int]int), size: make(map[int]int)}
}

// Add registers id as a singleton if it is not yet known.
func (u *UnionFind) Add(id int) {
	if _, ok := u.parent[id]; !ok {
		u.parent[id] = id
		u.size[id] = 1
	}
}

// Find returns the representative of id's set, registering id if new.
func (u *UnionFind) Find(id int) int {
	u.Add(id)
	root := id
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[id] != root { // path compression
		u.parent[id], id = root, u.parent[id]
	}
	return root
}

// Union merges the sets containing a and b and reports whether a merge
// happened (false if they were already in the same set).
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	u.unions++
	return true
}

// Same reports whether a and b are currently in the same set.
func (u *UnionFind) Same(a, b int) bool { return u.Find(a) == u.Find(b) }

// Len returns the number of registered elements.
func (u *UnionFind) Len() int { return len(u.parent) }

// Unions returns the number of successful merges performed.
func (u *UnionFind) Unions() int { return u.unions }

// Sets returns the current partition as a slice of ID slices, each
// sorted ascending, with the slice of sets sorted by smallest member.
func (u *UnionFind) Sets() [][]int {
	groups := make(map[int][]int)
	for id := range u.parent {
		root := u.Find(id)
		groups[root] = append(groups[root], id)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Pair is an unordered duplicate pair of element IDs with A < B.
type Pair struct {
	A, B int
}

// MakePair normalizes (a, b) into a Pair with A < B.
func MakePair(a, b int) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// Set is one duplicate cluster: the IDs of all element instances that
// represent the same real-world object.
type Set struct {
	ID      int
	Members []int // sorted ascending
}

// ClusterSet is the CS relation of Definition 1 for one candidate: a
// partition of element IDs into clusters, with a lookup from element
// ID to cluster ID.
type ClusterSet struct {
	Clusters []Set
	byMember map[int]int // element ID -> cluster ID
}

// Build materializes a ClusterSet from a union-find: every registered
// element lands in exactly one cluster. Cluster IDs are assigned in
// order of each cluster's smallest member, starting at 1, which makes
// results deterministic across runs.
func Build(u *UnionFind) *ClusterSet {
	sets := u.Sets()
	cs := &ClusterSet{
		Clusters: make([]Set, len(sets)),
		byMember: make(map[int]int, u.Len()),
	}
	for i, members := range sets {
		id := i + 1
		cs.Clusters[i] = Set{ID: id, Members: members}
		for _, m := range members {
			cs.byMember[m] = id
		}
	}
	return cs
}

// FromPairs is a convenience that builds a ClusterSet directly from
// duplicate pairs plus the universe of all element IDs (so unmatched
// elements become singleton clusters).
func FromPairs(universe []int, pairs []Pair) *ClusterSet {
	u := NewUnionFind()
	for _, id := range universe {
		u.Add(id)
	}
	for _, p := range pairs {
		u.Union(p.A, p.B)
	}
	return Build(u)
}

// CID returns the cluster ID of the given element — the paper's cid()
// function — and whether the element is known to this cluster set.
func (cs *ClusterSet) CID(elementID int) (int, bool) {
	id, ok := cs.byMember[elementID]
	return id, ok
}

// Cluster returns the cluster with the given ID, or nil.
func (cs *ClusterSet) Cluster(clusterID int) *Set {
	if clusterID < 1 || clusterID > len(cs.Clusters) {
		return nil
	}
	return &cs.Clusters[clusterID-1]
}

// Len returns the number of clusters.
func (cs *ClusterSet) Len() int { return len(cs.Clusters) }

// Elements returns the total number of elements across all clusters.
func (cs *ClusterSet) Elements() int { return len(cs.byMember) }

// DuplicatePairs enumerates all intra-cluster pairs — the transitive
// closure of the detected duplicate relation. The result is sorted.
func (cs *ClusterSet) DuplicatePairs() []Pair {
	var out []Pair
	for _, c := range cs.Clusters {
		for i := 0; i < len(c.Members); i++ {
			for j := i + 1; j < len(c.Members); j++ {
				out = append(out, Pair{A: c.Members[i], B: c.Members[j]})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// NonSingletons returns the clusters with at least two members — the
// detected duplicate groups.
func (cs *ClusterSet) NonSingletons() []Set {
	var out []Set
	for _, c := range cs.Clusters {
		if len(c.Members) > 1 {
			out = append(out, c)
		}
	}
	return out
}

// String renders the cluster set in the style of Table 2(b).
func (cs *ClusterSet) String() string {
	var b strings.Builder
	for _, c := range cs.Clusters {
		fmt.Fprintf(&b, "%d: %v\n", c.ID, c.Members)
	}
	return b.String()
}
