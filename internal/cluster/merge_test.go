package cluster

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomParts builds k union-finds over a shared id space by dealing a
// random pair list across them — the shape of per-shard closures.
func randomParts(rng *rand.Rand, ids, pairs, k int) ([]*UnionFind, []int, []Pair) {
	universe := make([]int, ids)
	for i := range universe {
		universe[i] = i*3 + 1 // non-contiguous IDs, like real EIDs
	}
	all := make([]Pair, 0, pairs)
	parts := make([]*UnionFind, k)
	for i := range parts {
		parts[i] = NewUnionFind()
	}
	for i := 0; i < pairs; i++ {
		a := universe[rng.Intn(ids)]
		b := universe[rng.Intn(ids)]
		if a == b {
			continue
		}
		all = append(all, MakePair(a, b))
		parts[rng.Intn(k)].Union(a, b)
	}
	return parts, universe, all
}

func TestMergeOrderIndependence(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		parts, _, _ := randomParts(rng, 2+rng.Intn(30), rng.Intn(40), 2)
		ab := Merge(parts[0], parts[1])
		ba := Merge(parts[1], parts[0])
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("seed %d: Merge(A,B) != Merge(B,A):\n%v\nvs\n%v", seed, ab.Sets(), ba.Sets())
		}
		// Root election is stable: every element's representative is the
		// set's smallest member.
		for _, set := range ab.Sets() {
			for _, id := range set {
				if got := ab.Find(id); got != set[0] {
					t.Fatalf("seed %d: Find(%d) = %d, want smallest member %d", seed, id, got, set[0])
				}
			}
		}
	}
}

func TestMergeAssociativity(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		k := 3 + rng.Intn(3)
		parts, _, _ := randomParts(rng, 2+rng.Intn(30), rng.Intn(60), k)
		// Left fold.
		left := parts[0]
		for _, p := range parts[1:] {
			left = Merge(left, p)
		}
		// Right fold.
		right := parts[k-1]
		for i := k - 2; i >= 0; i-- {
			right = Merge(parts[i], right)
		}
		// Shuffled fold.
		order := rng.Perm(k)
		shuffled := parts[order[0]]
		for _, i := range order[1:] {
			shuffled = Merge(shuffled, parts[i])
		}
		if !reflect.DeepEqual(left, right) || !reflect.DeepEqual(left, shuffled) {
			t.Fatalf("seed %d: fold shape changed the merge result", seed)
		}
	}
}

// TestMergeAllPairsOracle checks the shard fold against the one-shot
// closure: dealing a pair list across shards, folding with Merge, and
// adding the universe must build the exact ClusterSet that FromPairs
// builds from the undivided list.
func TestMergeAllPairsOracle(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed + 500))
		k := 1 + rng.Intn(6)
		parts, universe, all := randomParts(rng, 1+rng.Intn(25), rng.Intn(50), k)
		merged := parts[0]
		for _, p := range parts[1:] {
			merged = Merge(merged, p)
		}
		for _, id := range universe {
			merged.Add(id)
		}
		got := Build(merged)
		want := FromPairs(universe, all)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d (k=%d): sharded closure diverged:\n%swant:\n%s", seed, k, got, want)
		}
	}
}

func TestMergeNilAndEmpty(t *testing.T) {
	if got := Merge(nil, nil); got.Len() != 0 {
		t.Fatalf("Merge(nil, nil).Len() = %d", got.Len())
	}
	a := NewUnionFind()
	a.Union(1, 2)
	got := Merge(a, nil)
	if !got.Same(1, 2) || got.Len() != 2 || got.Unions() != 1 {
		t.Fatalf("Merge(a, nil) lost the partition: %v", got.Sets())
	}
	if got := Merge(nil, a); !reflect.DeepEqual(got, Merge(a, nil)) {
		t.Fatal("nil side changed the result")
	}
}

// Merge must not change set membership in its inputs (path compression
// aside, which is invisible through the public API).
func TestMergeLeavesInputsIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	parts, _, _ := randomParts(rng, 20, 30, 2)
	before0, before1 := parts[0].Sets(), parts[1].Sets()
	Merge(parts[0], parts[1])
	if !reflect.DeepEqual(parts[0].Sets(), before0) || !reflect.DeepEqual(parts[1].Sets(), before1) {
		t.Fatal("Merge mutated an input partition")
	}
}

func TestMergeUnionsCount(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed + 900))
		parts, _, _ := randomParts(rng, 2+rng.Intn(20), rng.Intn(40), 2)
		m := Merge(parts[0], parts[1])
		if want := m.Len() - len(m.Sets()); m.Unions() != want {
			t.Fatalf("seed %d: Unions() = %d, want elements-sets = %d", seed, m.Unions(), want)
		}
	}
}
