package cluster

// Merge combines two union-finds into a fresh one whose partition is
// the join of the inputs: elements in the same set in either input are
// in the same set in the result, and sets sharing an element fuse.
// Shards of one detection pass build their closures independently and
// fold them with Merge; because the result is canonicalized, the fold
// is order-independent and associative — Merge(a, b) and Merge(b, a)
// produce identical structures, and any fold tree over the same shards
// lands on the same result.
//
// The inputs are not modified beyond path compression (which changes
// internal tree shape, never set membership). nil inputs are treated
// as empty.
func Merge(a, b *UnionFind) *UnionFind {
	u := NewUnionFind()
	absorb := func(in *UnionFind) {
		if in == nil {
			return
		}
		// Union each element with its representative. Map iteration
		// order varies run to run, but union is commutative and
		// associative over the final partition, and canonicalize below
		// erases every order-dependent artifact (tree shape, which
		// element happens to be root) from the output.
		for id := range in.parent {
			u.Union(id, in.Find(id))
		}
	}
	absorb(a)
	absorb(b)
	return canonicalize(u)
}

// canonicalize rebuilds a union-find in canonical form: every set's
// representative is its smallest member and every element points at
// its representative directly (depth-1 trees). Two union-finds over
// the same partition canonicalize to identical structures regardless
// of the union order that built them — the "stable root election"
// that makes shard merges deterministic.
func canonicalize(u *UnionFind) *UnionFind {
	min := make(map[int]int, len(u.parent))  // transient root -> smallest member
	card := make(map[int]int, len(u.parent)) // transient root -> set size
	for id := range u.parent {
		r := u.Find(id)
		if m, ok := min[r]; !ok || id < m {
			min[r] = id
		}
		card[r]++
	}
	out := &UnionFind{
		parent: make(map[int]int, len(u.parent)),
		size:   make(map[int]int, len(u.parent)),
	}
	for id := range u.parent {
		r := u.Find(id)
		root := min[r]
		out.parent[id] = root
		if id == root {
			out.size[id] = card[r]
		} else {
			// Non-root sizes are never consulted by union by size; 1 is
			// what a freshly absorbed singleton would carry.
			out.size[id] = 1
		}
	}
	// Every element beyond the first of each set implies exactly one
	// successful union, however the partition was actually built.
	out.unions = len(out.parent) - len(min)
	return out
}
