package keygen

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCompileValid(t *testing.T) {
	valid := []string{
		"K1-K5",
		"D3,D4",
		"C1,C2",
		"K1,K2",
		"D1",
		"K1-5",
		"C1-C4",
		" K1 , K2 ",
		"K1-K2,D3,D4",
	}
	for _, expr := range valid {
		if _, err := Compile(expr); err != nil {
			t.Errorf("Compile(%q): %v", expr, err)
		}
	}
}

func TestCompileInvalid(t *testing.T) {
	invalid := []string{
		"",
		"   ",
		"X1",
		"K0",
		"K-1",
		"K",
		"K1-",
		"K5-K1",
		"K1,,K2",
		"K1-D5",
		"1K",
		"Ka",
	}
	for _, expr := range invalid {
		if _, err := Compile(expr); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", expr)
		}
	}
}

// The paper's running example (Sec. 2.2): first four consonants of
// "Mask of Zorro" + digits 3,4 of "1998" = MSKF98.
func TestPaperExampleMaskOfZorro(t *testing.T) {
	title := MustCompile("K1-K4").Apply("Mask of Zorro")
	year := MustCompile("D3,D4").Apply("1998")
	if got := title + year; got != "MSKF98" {
		t.Errorf("key = %q, want MSKF98", got)
	}
}

// The paper's Sec. 3.1 example: key definitions of Table 1 applied to
// the Matrix movie of Fig. 2(a) give MT99 and 5MA.
func TestPaperExampleMatrix(t *testing.T) {
	// Key 1: K1,K2 of title "Matrix" + D3,D4 of year "1999".
	k1 := Key{Parts: []Part{
		{PathID: 1, Order: 1, Pattern: MustCompile("K1,K2")},
		{PathID: 3, Order: 2, Pattern: MustCompile("D3,D4")},
	}}
	// Key 2: D1 of @ID "5632" + C1,C2 of title.
	k2 := Key{Parts: []Part{
		{PathID: 2, Order: 1, Pattern: MustCompile("D1")},
		{PathID: 1, Order: 2, Pattern: MustCompile("C1,C2")},
	}}
	lookup := func(pid int) string {
		switch pid {
		case 1:
			return "Matrix"
		case 2:
			return "5632"
		case 3:
			return "1999"
		}
		return ""
	}
	if got := k1.Generate(lookup); got != "MT99" {
		t.Errorf("key1 = %q, want MT99", got)
	}
	if got := k2.Generate(lookup); got != "5MA" {
		t.Errorf("key2 = %q, want 5MA", got)
	}
}

func TestApplyClasses(t *testing.T) {
	cases := []struct {
		pattern, value, want string
	}{
		{"K1-K5", "The Matrix", "THMTR"},
		{"C1-C4", "Mask of Zorro", "MASK"},
		{"D1,D2", "136", "13"},
		{"D3,D4", "19", ""},          // positions beyond data skipped
		{"K1-K5", "AEIOU", ""},       // no consonants at all
		{"C1,C2", "  a  b ", "AB"},   // whitespace ignored by C class
		{"K1,K2", "amélie", "ML"},    // folded + uppercased
		{"D1", "no digits here", ""}, // missing class members
		{"C1-C6", "ab", "AB"},        // short value
	}
	for _, c := range cases {
		if got := MustCompile(c.pattern).Apply(c.value); got != c.want {
			t.Errorf("Apply(%q, %q) = %q, want %q", c.pattern, c.value, got, c.want)
		}
	}
}

func TestApplyOrderAcrossTokens(t *testing.T) {
	// Tokens are emitted in pattern order even when positions overlap.
	if got := MustCompile("D3,D4,D1,D2").Apply("1998"); got != "9819" {
		t.Errorf("Apply = %q, want 9819", got)
	}
}

func TestMaxLen(t *testing.T) {
	if got := MustCompile("K1-K5,D3,D4").MaxLen(); got != 7 {
		t.Errorf("MaxLen = %d, want 7", got)
	}
}

func TestKeyPartsSortedByOrder(t *testing.T) {
	k := Key{Parts: []Part{
		{PathID: 1, Order: 2, Pattern: MustCompile("C1")},
		{PathID: 2, Order: 1, Pattern: MustCompile("D1")},
	}}
	got := k.Generate(func(pid int) string {
		if pid == 1 {
			return "X"
		}
		return "7"
	})
	if got != "7X" {
		t.Errorf("Generate = %q, want 7X (order must win over slice position)", got)
	}
	// Sorted must not mutate the receiver.
	if k.Parts[0].Order != 2 {
		t.Error("Sorted mutated the key definition")
	}
}

func TestGenerateMissingPath(t *testing.T) {
	k := Key{Parts: []Part{
		{PathID: 1, Order: 1, Pattern: MustCompile("K1,K2")},
		{PathID: 9, Order: 2, Pattern: MustCompile("D1,D2")},
	}}
	got := k.Generate(func(pid int) string {
		if pid == 1 {
			return "Zorro"
		}
		return "" // path 9 missing
	})
	if got != "ZR" {
		t.Errorf("Generate with missing path = %q, want ZR", got)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustCompile("bogus")
}

// Property: Apply output length never exceeds MaxLen and contains only
// upper-case letters and digits.
func TestApplyBounds(t *testing.T) {
	pats := []Pattern{
		MustCompile("K1-K5"),
		MustCompile("C1-C4"),
		MustCompile("D1,D2,D3"),
		MustCompile("K1,D1,C1"),
	}
	f := func(value string) bool {
		for _, p := range pats {
			out := p.Apply(value)
			if len([]rune(out)) > p.MaxLen() {
				return false
			}
			if out != strings.ToUpper(out) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Apply is insensitive to case and leading/trailing space.
func TestApplyNormalizationInvariance(t *testing.T) {
	p := MustCompile("K1-K4,D1,D2")
	f := func(value string) bool {
		return p.Apply(value) == p.Apply("  "+strings.ToLower(value)+" ")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClassString(t *testing.T) {
	if Consonant.String() != "K" || Char.String() != "C" || Digit.String() != "D" {
		t.Error("class names wrong")
	}
}

func TestPatternString(t *testing.T) {
	if got := MustCompile("K1-K5").String(); got != "K1-K5" {
		t.Errorf("String = %q", got)
	}
}

func TestSoundexClass(t *testing.T) {
	if got := MustCompile("S").Apply("Robert"); got != "R163" {
		t.Errorf("S on Robert = %q, want R163", got)
	}
	// Phonetic equivalence: Robert and Rupert share the key.
	if MustCompile("S").Apply("Robert") != MustCompile("S").Apply("Rupert") {
		t.Error("soundex keys should match for Robert/Rupert")
	}
	// Composes with other tokens.
	if got := MustCompile("S,D3,D4").Apply("Robert 1998"); got != "R16398" {
		t.Errorf("S,D3,D4 = %q, want R16398", got)
	}
	if got := MustCompile("S").MaxLen(); got != 4 {
		t.Errorf("MaxLen(S) = %d, want 4", got)
	}
	if got := MustCompile("S").Apply("12345"); got != "" {
		t.Errorf("S on letterless value = %q, want empty", got)
	}
	// "S1" is not the soundex token; it must fail like other bad input.
	if _, err := Compile("S1"); err == nil {
		t.Error("S1 should not compile")
	}
}
