package keygen

import "testing"

// FuzzCompilePattern checks the key pattern compiler never panics and
// that accepted patterns apply safely to arbitrary values.
func FuzzCompilePattern(f *testing.F) {
	f.Add("K1-K5", "The Matrix")
	f.Add("D3,D4", "1998")
	f.Add("C1,C2", "")
	f.Add("S", "Robert")
	f.Add("K1-5,S,D1", "mixed 123 value")
	f.Add("", "x")
	f.Add("Z9", "x")
	f.Add("K1-", "x")
	f.Fuzz(func(t *testing.T, pattern, value string) {
		p, err := Compile(pattern)
		if err != nil {
			return
		}
		out := p.Apply(value)
		if len([]rune(out)) > p.MaxLen() {
			t.Fatalf("Apply(%q, %q) = %q longer than MaxLen %d", pattern, value, out, p.MaxLen())
		}
	})
}
