// Package keygen implements SXNM's key pattern language and key
// construction.
//
// A pattern is a comma-separated list of tokens; each token names a
// character class and a 1-based position or inclusive position range
// within that class:
//
//	K1-K5    the first five consonants
//	D3,D4    the third and fourth digits
//	C1,C2    the first and second characters (letters or digits)
//	S        the Soundex code of the whole value (4 characters)
//
// Classes follow the paper: K = consonants, C = characters, D = digits.
// S is an extension in the spirit of the original merge/purge work,
// whose key definitions included phonetic codes.
// Positions address the sequence of class members extracted from the
// normalized (upper-cased, diacritic-folded) value; positions beyond
// the available characters contribute nothing, so values with missing
// data yield shorter keys — exactly the behaviour the paper relies on
// when it discusses badly sorted keys for missing years.
package keygen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/similarity"
	"repro/internal/strutil"
)

// Class is a key pattern character class.
type Class byte

const (
	// Consonant is the K class: letters that are not vowels.
	Consonant Class = 'K'
	// Char is the C class: letters and digits.
	Char Class = 'C'
	// Digit is the D class: decimal digits.
	Digit Class = 'D'
	// SoundexCode is the S class: the American Soundex code of the
	// whole value. It takes no positions.
	SoundexCode Class = 'S'
)

func (c Class) String() string { return string(byte(c)) }

// extract returns the members of the class found in s, in order.
func (c Class) extract(s string) []rune {
	switch c {
	case Consonant:
		return strutil.Consonants(s)
	case Char:
		return strutil.Chars(s)
	case Digit:
		return strutil.Digits(s)
	}
	return nil
}

// Token selects positions From..To (1-based, inclusive) from one class.
type Token struct {
	Class    Class
	From, To int
}

// Pattern is a compiled key pattern.
type Pattern struct {
	Tokens []Token
	src    string
}

// String returns the pattern source, e.g. "K1-K5".
func (p Pattern) String() string { return p.src }

// MaxLen returns the maximum number of characters this pattern can
// contribute to a key.
func (p Pattern) MaxLen() int {
	n := 0
	for _, t := range p.Tokens {
		if t.Class == SoundexCode {
			n += 4
			continue
		}
		n += t.To - t.From + 1
	}
	return n
}

// Compile parses a pattern expression such as "K1-K5" or "D3,D4".
func Compile(expr string) (Pattern, error) {
	src := expr
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return Pattern{}, fmt.Errorf("keygen: empty pattern")
	}
	var tokens []Token
	for _, raw := range strings.Split(expr, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			return Pattern{}, fmt.Errorf("keygen: %q: empty token", src)
		}
		tok, err := parseToken(raw)
		if err != nil {
			return Pattern{}, fmt.Errorf("keygen: %q: %w", src, err)
		}
		tokens = append(tokens, tok)
	}
	return Pattern{Tokens: tokens, src: src}, nil
}

// MustCompile is Compile for statically known patterns; panics on error.
func MustCompile(expr string) Pattern {
	p, err := Compile(expr)
	if err != nil {
		panic(err)
	}
	return p
}

// parseToken parses "K3" or "K1-K5" (the range form repeats the class
// letter on both ends, as the paper's tables write it; a bare "K1-5"
// is accepted too).
func parseToken(raw string) (Token, error) {
	if raw == "S" || raw == "s" {
		return Token{Class: SoundexCode, From: 1, To: 1}, nil
	}
	class, rest, err := splitClass(raw)
	if err != nil {
		return Token{}, err
	}
	if i := strings.IndexByte(rest, '-'); i >= 0 {
		fromStr, toRaw := rest[:i], rest[i+1:]
		from, err := parsePos(fromStr)
		if err != nil {
			return Token{}, fmt.Errorf("token %q: %w", raw, err)
		}
		// The end may repeat the class letter ("K1-K5") or not ("K1-5").
		if len(toRaw) > 0 && Class(toRaw[0]) == class {
			toRaw = toRaw[1:]
		}
		to, err := parsePos(toRaw)
		if err != nil {
			return Token{}, fmt.Errorf("token %q: %w", raw, err)
		}
		if to < from {
			return Token{}, fmt.Errorf("token %q: descending range", raw)
		}
		return Token{Class: class, From: from, To: to}, nil
	}
	pos, err := parsePos(rest)
	if err != nil {
		return Token{}, fmt.Errorf("token %q: %w", raw, err)
	}
	return Token{Class: class, From: pos, To: pos}, nil
}

func splitClass(raw string) (Class, string, error) {
	if raw == "" {
		return 0, "", fmt.Errorf("empty token")
	}
	c := Class(raw[0])
	switch c {
	case Consonant, Char, Digit:
		return c, raw[1:], nil
	}
	return 0, "", fmt.Errorf("unknown class %q (want K, C, D, or S)", raw[0])
}

func parsePos(s string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || n < 1 {
		return 0, fmt.Errorf("position must be a positive integer, got %q", s)
	}
	return n, nil
}

// Apply extracts the pattern's characters from value. The value is
// normalized first; positions with no corresponding character are
// skipped silently.
func (p Pattern) Apply(value string) string {
	norm := strutil.Normalize(value)
	var b strings.Builder
	b.Grow(p.MaxLen())
	// Cache per-class extraction: patterns like "K1,K3" share one scan.
	var cache [3][]rune
	classIdx := func(c Class) int {
		switch c {
		case Consonant:
			return 0
		case Char:
			return 1
		default:
			return 2
		}
	}
	extracted := [3]bool{}
	for _, t := range p.Tokens {
		if t.Class == SoundexCode {
			b.WriteString(similarity.Soundex(norm))
			continue
		}
		i := classIdx(t.Class)
		if !extracted[i] {
			cache[i] = t.Class.extract(norm)
			extracted[i] = true
		}
		chars := cache[i]
		for pos := t.From; pos <= t.To; pos++ {
			if pos-1 < len(chars) {
				b.WriteRune(chars[pos-1])
			}
		}
	}
	return b.String()
}

// Part is one component of a key definition: a pattern applied to the
// value found at one configured relative path, placed at a position
// (Order) in the concatenated key. PathID references the PATH relation
// of the configuration (the paper's pid attribute).
type Part struct {
	PathID  int
	Order   int
	Pattern Pattern
}

// Key is a full key definition — the KEY_{s,i} relation of Sec. 3.2 —
// as an ordered list of parts.
type Key struct {
	Name  string // optional display name, e.g. "key1"
	Parts []Part
}

// Sorted returns the parts in Order; the receiver is not modified.
func (k Key) Sorted() []Part {
	parts := make([]Part, len(k.Parts))
	copy(parts, k.Parts)
	sort.SliceStable(parts, func(i, j int) bool { return parts[i].Order < parts[j].Order })
	return parts
}

// Generate builds the key string for an element whose path values are
// provided by lookup (mapping PathID to the raw extracted value; a
// missing path yields the empty string).
func (k Key) Generate(lookup func(pathID int) string) string {
	var b strings.Builder
	for _, part := range k.Sorted() {
		b.WriteString(part.Pattern.Apply(lookup(part.PathID)))
	}
	return b.String()
}
