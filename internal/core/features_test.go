package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/similarity"
)

// Tests for the Sec. 5 extensions: the comparison filter, the adaptive
// window, and per-field decision rules.

func TestFilterPreservesResults(t *testing.T) {
	doc := mustDoc(t, typoMoviesXML)
	cfg := mustValidate(t, movieConfig(config.RuleCombined))
	plain, err := Run(doc, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := mustValidate(t, movieConfig(config.RuleCombined))
	filtered, err := Run(doc, cfg2, Options{UseFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Clusters["movie"].String() != filtered.Clusters["movie"].String() {
		t.Errorf("filter changed results:\n%s\nvs\n%s",
			plain.Clusters["movie"], filtered.Clusters["movie"])
	}
	ps := plain.Stats.Candidates["movie"]
	fs := filtered.Stats.Candidates["movie"]
	if fs.Comparisons+fs.FilteredOut != ps.Comparisons {
		t.Errorf("filter accounting: %d compared + %d filtered != %d total",
			fs.Comparisons, fs.FilteredOut, ps.Comparisons)
	}
}

func TestFilterSkipsHopelessPairs(t *testing.T) {
	// Titles of very different lengths: the length bound alone proves
	// non-duplication, so the filter must skip the full comparison.
	xml := `<movie_database><movies>
	  <movie><title>A</title></movie>
	  <movie><title>An Extremely Long And Winding Movie Title Indeed</title></movie>
	</movies></movie_database>`
	doc := mustDoc(t, xml)
	cfg := &config.Config{Candidates: []config.Candidate{{
		Name:  "movie",
		XPath: "movie_database/movies/movie",
		Paths: []config.PathDef{{ID: 1, RelPath: "title/text()"}},
		OD:    []config.ODEntry{{PathID: 1, Relevance: 1}},
		Keys: []config.KeyDef{
			{Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "C1-C4"}}},
		},
		Threshold: 0.8,
		Window:    5,
	}}}
	mustValidate(t, cfg)
	res, err := Run(doc, cfg, Options{UseFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats.Candidates["movie"]
	if st.FilteredOut != 1 {
		t.Errorf("filtered = %d, want 1", st.FilteredOut)
	}
	if st.Comparisons != 0 {
		t.Errorf("comparisons = %d, want 0", st.Comparisons)
	}
}

func TestFilterDisabledUnderCustomRule(t *testing.T) {
	doc := mustDoc(t, typoMoviesXML)
	cfg := mustValidate(t, movieConfig(config.RuleCombined))
	calls := 0
	res, err := Run(doc, cfg, Options{
		UseFilter: true,
		DecisionRule: func(_ *config.Candidate, od, _ float64, _ bool) bool {
			calls++
			return od >= 0.8
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Candidates["movie"].FilteredOut != 0 {
		t.Error("filter must be inert when a custom rule decides")
	}
	if calls == 0 {
		t.Error("custom rule never called")
	}
}

func TestFieldRule(t *testing.T) {
	// Equational-theory style: duplicate iff the title field alone is
	// nearly identical, ignoring the length attribute entirely.
	xml := `<movie_database><movies>
	  <movie length="90"><title>Silent River</title></movie>
	  <movie length="240"><title>Silent Rivr</title></movie>
	  <movie length="90"><title>Broken Storm</title></movie>
	</movies></movie_database>`
	doc := mustDoc(t, xml)
	cfg := &config.Config{Candidates: []config.Candidate{{
		Name:  "movie",
		XPath: "movie_database/movies/movie",
		Paths: []config.PathDef{
			{ID: 1, RelPath: "title/text()"},
			{ID: 2, RelPath: "@length"},
		},
		OD: []config.ODEntry{
			{PathID: 1, Relevance: 0.5},
			{PathID: 2, Relevance: 0.5, SimFunc: "numeric"},
		},
		Keys: []config.KeyDef{
			{Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "K1-K4"}}},
		},
		Threshold: 0.95, // the built-in rule would reject (length differs)
		Window:    5,
	}}}
	mustValidate(t, cfg)
	res, err := Run(doc, cfg, Options{
		FieldRule: func(_ *config.Candidate, fieldSims []float64, _ float64, _ bool) bool {
			return fieldSims[0] >= 0.9 // title similarity only
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dups := res.Clusters["movie"].NonSingletons()
	if len(dups) != 1 || len(dups[0].Members) != 2 {
		t.Fatalf("field rule failed:\n%s", res.Clusters["movie"])
	}
}

func TestFieldRuleAbsentMarker(t *testing.T) {
	xml := `<movie_database><movies>
	  <movie><title>Silent River</title></movie>
	  <movie><title>Silent River</title></movie>
	</movies></movie_database>`
	doc := mustDoc(t, xml)
	cfg := &config.Config{Candidates: []config.Candidate{{
		Name:  "movie",
		XPath: "movie_database/movies/movie",
		Paths: []config.PathDef{
			{ID: 1, RelPath: "title/text()"},
			{ID: 2, RelPath: "@year"}, // missing on both movies
		},
		OD: []config.ODEntry{
			{PathID: 1, Relevance: 0.8},
			{PathID: 2, Relevance: 0.2},
		},
		Keys: []config.KeyDef{
			{Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "K1-K4"}}},
		},
		Threshold: 0.8,
		Window:    5,
	}}}
	mustValidate(t, cfg)
	sawAbsent := false
	_, err := Run(doc, cfg, Options{
		FieldRule: func(_ *config.Candidate, fieldSims []float64, _ float64, _ bool) bool {
			if fieldSims[1] == similarity.FieldAbsent {
				sawAbsent = true
			}
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawAbsent {
		t.Error("missing-on-both field should be marked FieldAbsent")
	}
}

func TestAdaptiveWindowExtends(t *testing.T) {
	// Five movies with identical keys but a tiny base window: the
	// adaptive extension must reach back past the fixed bound.
	xml := `<movie_database><movies>
	  <movie><title>Silent River One</title></movie>
	  <movie><title>Silent River Two</title></movie>
	  <movie><title>Silent River Three</title></movie>
	  <movie><title>Silent River Four</title></movie>
	  <movie><title>Silent Raver One</title></movie>
	</movies></movie_database>`
	doc := mustDoc(t, xml)
	base := func(adaptive bool) *config.Config {
		c := config.Candidate{
			Name:  "movie",
			XPath: "movie_database/movies/movie",
			Paths: []config.PathDef{{ID: 1, RelPath: "title/text()"}},
			OD:    []config.ODEntry{{PathID: 1, Relevance: 1}},
			Keys: []config.KeyDef{
				{Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "K1-K4"}}},
			},
			Threshold: 0.99, // nothing is a duplicate; we only count comparisons
			Window:    2,
		}
		if adaptive {
			c.AdaptiveKeySim = 0.9
			c.AdaptiveMaxWindow = 10
		}
		return &config.Config{Candidates: []config.Candidate{c}}
	}
	fixed, err := Run(doc, mustValidate(t, base(false)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Run(doc, mustValidate(t, base(true)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	fc := fixed.Stats.Candidates["movie"].Comparisons
	ac := adaptive.Stats.Candidates["movie"].Comparisons
	if fc != 4 { // w=2: each row compared with its predecessor
		t.Errorf("fixed comparisons = %d, want 4", fc)
	}
	// All five keys are "SLNT"-class equal, so the adaptive window
	// expands to all pairs: C(5,2) = 10.
	if ac != 10 {
		t.Errorf("adaptive comparisons = %d, want 10", ac)
	}
}

func TestAdaptiveWindowCap(t *testing.T) {
	xml := `<movie_database><movies>
	  <movie><title>Silent River One</title></movie>
	  <movie><title>Silent River Two</title></movie>
	  <movie><title>Silent River Three</title></movie>
	  <movie><title>Silent River Four</title></movie>
	  <movie><title>Silent River Five</title></movie>
	</movies></movie_database>`
	doc := mustDoc(t, xml)
	cfg := &config.Config{Candidates: []config.Candidate{{
		Name:  "movie",
		XPath: "movie_database/movies/movie",
		Paths: []config.PathDef{{ID: 1, RelPath: "title/text()"}},
		OD:    []config.ODEntry{{PathID: 1, Relevance: 1}},
		Keys: []config.KeyDef{
			{Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "K1-K4"}}},
		},
		Threshold:         0.99,
		Window:            2,
		AdaptiveKeySim:    0.9,
		AdaptiveMaxWindow: 3, // at most 2 predecessors per row
	}}}
	mustValidate(t, cfg)
	res, err := Run(doc, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Rows 2..5: min(i, maxW-1) predecessors = 1+2+2+2 = 7.
	if got := res.Stats.Candidates["movie"].Comparisons; got != 7 {
		t.Errorf("capped adaptive comparisons = %d, want 7", got)
	}
}

func TestAdaptiveConfigValidation(t *testing.T) {
	cfg := mustValidate(t, movieConfig(config.RuleCombined))
	_ = cfg
	bad := movieConfig(config.RuleCombined)
	bad.Candidates[0].AdaptiveKeySim = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("adaptive key sim > 1 should fail")
	}
	bad2 := movieConfig(config.RuleCombined)
	bad2.Candidates[0].AdaptiveMaxWindow = 2 // below window 5
	if err := bad2.Validate(); err == nil {
		t.Error("adaptive max window below window should fail")
	}
}
