//go:build !smallspill

package core

// forcedSpillThreshold is 0 in normal builds: spilling happens only
// when Options.SpillThresholdRows asks for it. The smallspill build
// tag (see spill_small.go) forces a tiny threshold instead, running
// every test in the tree through the external-sort path.
const forcedSpillThreshold = 0
