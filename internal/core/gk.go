// Package core implements the SXNM algorithm of Sec. 3: single-pass
// key generation into GK relations, bottom-up multi-pass sliding-window
// duplicate detection, and transitive closure into cluster sets.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/runlimit"
	"repro/internal/similarity"
	"repro/internal/xmltree"
)

// GKRow is one row of a GK_s relation (Sec. 3.3): the element ID, the
// generated keys (one per key definition), the extracted object
// description values (aligned with the candidate's OD entries), and —
// for the bottom-up phase — the element IDs of descendant candidate
// instances grouped by descendant candidate name.
type GKRow struct {
	EID  int
	Keys []string
	OD   [][]string
	Desc map[string][]int

	// descClusters caches, per descendant candidate name, the cluster
	// IDs corresponding to Desc once the descendant's cluster set is
	// known; filled in by the engine before the candidate's own passes.
	descClusters map[string][]int

	// descSets holds the interned SetID of each descClusters list when
	// the run uses a similarity cache (Options.SimCache); absence of a
	// name means the empty multiset (SetID 0).
	descSets map[string]similarity.SetID

	// odSketch holds, per OD field with the edit measure, one
	// ValueSketch per value (nil entries for other fields); prepared by
	// GKTable.sketchRow for the threshold-aware fast path. sketched
	// distinguishes a prepared row with no edit fields from an
	// unprepared one. Derived data: never serialized, recomputed when a
	// spilled row is decoded.
	odSketch [][]similarity.ValueSketch
	sketched bool
}

// GKTable is the GK_s relation for one candidate plus the resolved OD
// similarity fields.
type GKTable struct {
	Candidate *config.Candidate
	Rows      []GKRow

	fields []similarity.ODField
	bounds []bool      // per OD field: does the length upper bound apply?
	byEID  map[int]int // EID -> row index
}

// Row returns the row for the given element ID, or nil.
func (t *GKTable) Row(eid int) *GKRow {
	i, ok := t.byEID[eid]
	if !ok {
		return nil
	}
	return &t.Rows[i]
}

// KeyGenResult is the outcome of the key generation phase: one GK
// table per candidate (keyed by candidate name) and the phase duration.
type KeyGenResult struct {
	Tables   map[string]*GKTable
	Duration time.Duration
}

// GenerateKeys performs the key generation phase (Sec. 3.3): a single
// walk over the document that, for every candidate instance, generates
// all defined keys, extracts the object description values, and records
// which candidate instances are nested under which (via the nearest
// candidate ancestor, mirroring the extracted candidate trees of
// Fig. 3(b)).
//
// The configuration must be validated.
func GenerateKeys(doc *xmltree.Document, cfg *config.Config) (*KeyGenResult, error) {
	return GenerateKeysContext(context.Background(), doc, cfg, Limits{})
}

// GenerateKeysContext is GenerateKeys under a context and limits: the
// document walk checks for cancellation periodically, lim.MaxRows caps
// the rows recorded per candidate, and lim.MaxDepth/MaxNodes are
// verified up front (mirroring the parse-time checks for documents
// built in memory). On interruption the partial KeyGenResult built so
// far is returned together with the typed cause.
func GenerateKeysContext(ctx context.Context, doc *xmltree.Document, cfg *config.Config, lim Limits) (*KeyGenResult, error) {
	return GenerateKeysObserved(ctx, doc, cfg, lim, nil)
}

// GenerateKeysObserved is GenerateKeysContext with the key generation
// phase traced: one SpanKeyGen span carrying the candidate count and
// total rows extracted, plus the GKRows metric. A nil or disabled
// observer reduces to GenerateKeysContext exactly.
func GenerateKeysObserved(ctx context.Context, doc *xmltree.Document, cfg *config.Config, lim Limits, ob *obs.Observer) (kgOut *KeyGenResult, errOut error) {
	start := time.Now()
	if !ob.Enabled() {
		ob = nil
	}
	if ob != nil {
		sp := ob.StartSpan(obs.SpanKeyGen, obs.Int("candidates", len(cfg.Candidates)))
		defer func() { finishKeyGenSpan(sp, ob, kgOut, errOut) }()
	}
	ctx, stop := runlimit.WithTimeout(ctx, lim)
	defer stop()
	bud := newBudget(ctx, lim)
	if err := checkDocLimits(doc, lim); err != nil {
		return &KeyGenResult{Tables: map[string]*GKTable{}, Duration: time.Since(start)}, err
	}

	tables := make(map[string]*GKTable, len(cfg.Candidates))
	for i := range cfg.Candidates {
		c := &cfg.Candidates[i]
		fields, err := c.ODFields()
		if err != nil {
			return nil, fmt.Errorf("core: candidate %q: %w", c.Name, err)
		}
		simNames := make([]string, len(c.OD))
		for j, od := range c.OD {
			simNames[j] = od.SimFunc
		}
		tables[c.Name] = &GKTable{
			Candidate: c,
			fields:    fields,
			bounds:    similarity.FieldBounds(simNames),
			byEID:     make(map[int]int),
		}
	}

	// Match elements to candidates by absolute path. Candidate paths
	// that use the descendant axis or wildcards are resolved up front
	// into an element-pointer set; plain paths match by string, which
	// avoids materializing node sets for the common case.
	byAbsPath := make(map[string]*config.Candidate, len(cfg.Candidates))
	special := make(map[*xmltree.Node]*config.Candidate)
	for i := range cfg.Candidates {
		c := &cfg.Candidates[i]
		if isPlainPath(c.XPath) {
			byAbsPath[c.XPath] = c
			continue
		}
		for _, n := range c.AbsPath().SelectDocument(doc) {
			special[n] = c
		}
	}
	candidateOf := func(n *xmltree.Node) *config.Candidate {
		if c, ok := special[n]; ok {
			return c
		}
		return byAbsPath[n.AbsolutePath()]
	}

	// Depth-first walk with an explicit stack of open candidate
	// instances so each candidate element registers with its nearest
	// candidate ancestor.
	type open struct {
		cand *config.Candidate
		row  int // index into tables[cand.Name].Rows
	}
	var stack []open
	visited := 0
	var walk func(n *xmltree.Node) error
	walk = func(n *xmltree.Node) error {
		if n.Kind != xmltree.ElementNode {
			return nil
		}
		visited++
		if err := bud.poll(visited); err != nil {
			return err
		}
		pushed := false
		if c := candidateOf(n); c != nil {
			t := tables[c.Name]
			if err := lim.CheckRows(len(t.Rows) + 1); err != nil {
				return err
			}
			row, err := buildRow(n, c)
			if err != nil {
				return err
			}
			t.byEID[row.EID] = len(t.Rows)
			t.Rows = append(t.Rows, row)
			if len(stack) > 0 {
				parent := stack[len(stack)-1]
				pt := tables[parent.cand.Name]
				pr := &pt.Rows[parent.row]
				if pr.Desc == nil {
					pr.Desc = make(map[string][]int, 2)
				}
				pr.Desc[c.Name] = append(pr.Desc[c.Name], row.EID)
			}
			stack = append(stack, open{cand: c, row: len(t.Rows) - 1})
			pushed = true
		}
		for _, ch := range n.Children {
			if err := walk(ch); err != nil {
				return err
			}
		}
		if pushed {
			stack = stack[:len(stack)-1]
		}
		return nil
	}
	if err := walk(doc.Root); err != nil {
		if isInterruption(err) {
			// Keep the rows extracted so far: the caller may still
			// inspect or persist the partial tables.
			return &KeyGenResult{Tables: tables, Duration: time.Since(start)}, err
		}
		return nil, err
	}

	return &KeyGenResult{Tables: tables, Duration: time.Since(start)}, nil
}

// finishKeyGenSpan closes a key generation span with the rows
// extracted (even on an interruption, where partial tables remain
// inspectable) and seeds the GKRows gauge and a heap sample.
func finishKeyGenSpan(sp *obs.Span, ob *obs.Observer, kg *KeyGenResult, err error) {
	rows := 0
	if kg != nil {
		for _, t := range kg.Tables {
			rows += len(t.Rows)
		}
	}
	sp.SetAttr(obs.Int(obs.AttrRows, rows))
	if err != nil {
		sp.SetAttr(obs.Bool(obs.AttrInterrupted, true), obs.String(obs.AttrCause, err.Error()))
	}
	sp.End()
	if m := ob.Metrics(); m != nil {
		m.GKRows.Store(int64(rows))
		m.SampleHeap()
	}
}

// buildRow extracts keys and OD values for one candidate instance.
func buildRow(n *xmltree.Node, c *config.Candidate) (GKRow, error) {
	row := GKRow{EID: n.ID}

	// Raw value per referenced path, extracted once and shared between
	// key generation and the OD (the paper's "save an extra pass").
	values := make(map[int][]string, len(c.Paths))
	for _, pd := range c.Paths {
		values[pd.ID] = pd.Path().SelectValues(n)
	}
	first := func(pid int) string {
		v := values[pid]
		if len(v) == 0 {
			return ""
		}
		return v[0]
	}

	keys := c.CompiledKeys()
	row.Keys = make([]string, len(keys))
	for i, k := range keys {
		row.Keys[i] = k.Generate(first)
	}

	row.OD = make([][]string, len(c.OD))
	for i, od := range c.OD {
		row.OD[i] = values[od.PathID]
	}
	return row, nil
}

// isPlainPath reports whether an xpath string is a simple slash-joined
// element-name path (no predicates, wildcards, or descendant axis), so
// instance matching can use AbsolutePath string comparison.
func isPlainPath(p string) bool {
	for i := 0; i < len(p); i++ {
		switch p[i] {
		case '[', ']', '*', '@', '(':
			return false
		case '/':
			if i+1 < len(p) && p[i+1] == '/' {
				return false
			}
		}
	}
	return true
}
