package core
