package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/config"
	"repro/internal/extsort"
	"repro/internal/extsort/faultfs"
	"repro/internal/gen/freedb"
)

// These tests are the crash-safety half of the spill proof: an I/O
// fault at ANY point of the spill path must surface as a typed error or
// leave the result byte-identical to a clean run — never a silently
// wrong answer. faultfs arms a single deterministic fault; sweeping the
// armed step over every counted operation covers every I/O boundary.

// spillFaultFixture is one small corpus the sweeps run over; kept small
// because the sweep runs a full Detect per counted I/O operation.
func spillFaultFixture(t *testing.T) (*KeyGenResult, *config.Config, Options) {
	t.Helper()
	doc := freedb.Generate(freedb.DefaultOptions(8, 5))
	cfg := mustValidate(t, cdConfig())
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return kg, cfg, Options{SpillThresholdRows: 3}
}

// faultSnapshot is the comparison surface for faulted runs: final
// clusters and normalized Stats.
func faultSnapshot(t *testing.T, res *Result) map[string]string {
	t.Helper()
	out := map[string]string{"": normalizeStats(res.Stats)}
	for name, cs := range res.Clusters {
		out[name] = cs.String()
	}
	return out
}

// TestSpillFaultSweep arms a fault at every counted I/O step in both
// modes. FailWrite is a torn write plus persistent write failure;
// TruncateRead is a silent short read followed by EOF — the case only
// checksums and footers can catch.
func TestSpillFaultSweep(t *testing.T) {
	kg, cfg, base := spillFaultFixture(t)

	clean, err := Detect(kg, cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	want := faultSnapshot(t, clean)

	for _, tc := range []struct {
		name string
		mode faultfs.Mode
	}{
		{"fail-write", faultfs.FailWrite},
		{"truncate-read", faultfs.TruncateRead},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// An unarmed pass through the counting FS sizes the sweep and
			// doubles as a transparency check.
			counter := faultfs.New(extsort.OSFS(), tc.mode, 0)
			opts := base
			opts.SpillFS = counter
			res, err := Detect(kg, cfg, opts)
			if err != nil {
				t.Fatalf("unarmed faultfs changed behaviour: %v", err)
			}
			diffFaultSnapshots(t, "unarmed", want, faultSnapshot(t, res))
			steps := counter.Steps()
			if steps == 0 {
				t.Fatalf("no %s operations counted; the sweep would be empty", tc.name)
			}

			errored, matched := 0, 0
			for k := int64(1); k <= steps; k++ {
				ffs := faultfs.New(extsort.OSFS(), tc.mode, k)
				opts := base
				opts.SpillFS = ffs
				res, err := Detect(kg, cfg, opts)
				if err != nil {
					if !errors.Is(err, faultfs.ErrInjected) && !errors.Is(err, extsort.ErrCorrupt) {
						t.Fatalf("step %d: fault surfaced as an untyped error: %v", k, err)
					}
					errored++
					continue
				}
				// The fault was absorbed (best-effort manifest write, a read
				// already at EOF, ...): the answer must still be exact.
				diffFaultSnapshots(t, fmt.Sprintf("step %d", k), want, faultSnapshot(t, res))
				matched++
			}
			t.Logf("%s: %d steps, %d typed errors, %d byte-identical results",
				tc.name, steps, errored, matched)
			if errored == 0 {
				t.Errorf("%s: no armed step produced an error; the fault never bit", tc.name)
			}
		})
	}
}

func diffFaultSnapshots(t *testing.T, label string, want, got map[string]string) {
	t.Helper()
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s: candidate %q diverged from the clean run\nwant %s\ngot  %s",
				label, name, w, got[name])
		}
	}
	if len(got) != len(want) {
		t.Errorf("%s: candidate sets differ: want %d entries, got %d", label, len(want), len(got))
	}
}

// TestSpillReusedRunCorruption attacks the persistence seam directly:
// run files recorded in a SpillDir manifest are damaged on disk between
// runs. Open-time damage (bad magic) forces a silent re-sort with the
// exact same answer; damage past the first record is only reachable
// while streaming and must be a hard typed error.
func TestSpillReusedRunCorruption(t *testing.T) {
	kg, cfg, base := spillFaultFixture(t)

	setup := func(t *testing.T) (Options, []string, map[string]string) {
		dir := t.TempDir()
		opts := base
		opts.SpillDir = dir
		res, err := Detect(kg, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		runs, err := filepath.Glob(filepath.Join(dir, "*.run"))
		if err != nil || len(runs) == 0 {
			t.Fatalf("no run files recorded in %s (%v)", dir, err)
		}
		return opts, runs, faultSnapshot(t, res)
	}

	t.Run("streaming-corruption-is-typed", func(t *testing.T) {
		opts, runs, _ := setup(t)
		// The last byte is in the footer checksum: past the first record,
		// so reuse opens cleanly and the damage is met mid-stream.
		for _, path := range runs {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0xFF
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		_, err := Detect(kg, cfg, opts)
		if !errors.Is(err, extsort.ErrCorrupt) {
			t.Fatalf("corrupted reused runs: want ErrCorrupt, got %v", err)
		}
	})

	t.Run("open-time-corruption-resorts", func(t *testing.T) {
		opts, runs, want := setup(t)
		// Damaging the magic header is caught when reuse opens the run,
		// which falls back to a fresh sort — same answer, no error.
		for _, path := range runs {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[0] ^= 0xFF
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		res, err := Detect(kg, cfg, opts)
		if err != nil {
			t.Fatalf("open-time corruption should fall back to a fresh sort, got %v", err)
		}
		diffFaultSnapshots(t, "re-sorted", want, faultSnapshot(t, res))
	})

	t.Run("deleted-runs-resort", func(t *testing.T) {
		opts, runs, want := setup(t)
		for _, path := range runs {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}
		res, err := Detect(kg, cfg, opts)
		if err != nil {
			t.Fatalf("deleted run files should fall back to a fresh sort, got %v", err)
		}
		diffFaultSnapshots(t, "re-sorted", want, faultSnapshot(t, res))
	})
}
