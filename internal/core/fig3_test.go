package core

import (
	"testing"

	"repro/internal/config"
)

// Fig. 3 of the paper: a movie database where <movie> nests <title>,
// <actor>, and <screenplay>, and <screenplay> nests <person>. The
// extracted candidate tree must preserve ancestor-descendant
// relationships with each instance attached to its NEAREST candidate
// ancestor: persons belong to screenplays, not directly to movies.
const fig3XML = `
<movie_database>
  <movies>
    <movie>
      <title>Silent River</title>
      <actor>Keanu Reeves</actor>
      <actor>Don Davis</actor>
      <screenplay>
        <author><person>Lilly W.</person></author>
        <person>Lana W.</person>
      </screenplay>
    </movie>
    <movie>
      <title>Broken Storm</title>
      <actor>Uma Thurman</actor>
      <screenplay>
        <person>Quentin T.</person>
      </screenplay>
    </movie>
  </movies>
</movie_database>`

func fig3Config() *config.Config {
	leaf := func(name, xp string) config.Candidate {
		return config.Candidate{
			Name:  name,
			XPath: xp,
			Paths: []config.PathDef{{ID: 1, RelPath: "text()"}},
			OD:    []config.ODEntry{{PathID: 1, Relevance: 1}},
			Keys: []config.KeyDef{
				{Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "C1-C6"}}},
			},
			Threshold: 0.9,
			Window:    4,
		}
	}
	return &config.Config{Candidates: []config.Candidate{
		{
			Name:  "movie",
			XPath: "movie_database/movies/movie",
			Paths: []config.PathDef{{ID: 1, RelPath: "title/text()"}},
			OD:    []config.ODEntry{{PathID: 1, Relevance: 1}},
			Keys: []config.KeyDef{
				{Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "K1-K5"}}},
			},
			Threshold: 0.8,
			Window:    4,
		},
		{
			Name:  "screenplay",
			XPath: "movie_database/movies/movie/screenplay",
			Paths: []config.PathDef{{ID: 1, RelPath: "person[1]/text()"}},
			OD:    []config.ODEntry{{PathID: 1, Relevance: 1}},
			Keys: []config.KeyDef{
				{Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "C1-C4"}}},
			},
			Threshold: 0.85,
			Window:    4,
		},
		leaf("actor", "movie_database/movies/movie/actor"),
		leaf("title", "movie_database/movies/movie/title"),
		// Persons anywhere below screenplay (including inside
		// <author>), via the descendant axis.
		leaf("person", "//person"),
	}}
}

func TestFig3ExtractedTree(t *testing.T) {
	doc := mustDoc(t, fig3XML)
	cfg := mustValidate(t, fig3Config())
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}

	movies := kg.Tables["movie"]
	if len(movies.Rows) != 2 {
		t.Fatalf("movie rows = %d", len(movies.Rows))
	}
	first := movies.Rows[0]
	// Movie 1's extracted-tree children: 1 title, 2 actors, 1
	// screenplay — and NO persons (they belong to the screenplay).
	if got := len(first.Desc["title"]); got != 1 {
		t.Errorf("movie title descendants = %d, want 1", got)
	}
	if got := len(first.Desc["actor"]); got != 2 {
		t.Errorf("movie actor descendants = %d, want 2", got)
	}
	if got := len(first.Desc["screenplay"]); got != 1 {
		t.Errorf("movie screenplay descendants = %d, want 1", got)
	}
	if got := len(first.Desc["person"]); got != 0 {
		t.Errorf("movie person descendants = %d, want 0 (nearest ancestor is screenplay)", got)
	}
	// The screenplay owns both persons, including the one nested in
	// <author> (a non-candidate intermediate element).
	sp := kg.Tables["screenplay"]
	if len(sp.Rows) != 2 {
		t.Fatalf("screenplay rows = %d", len(sp.Rows))
	}
	if got := len(sp.Rows[0].Desc["person"]); got != 2 {
		t.Errorf("screenplay person descendants = %d, want 2", got)
	}
}

func TestFig3ProcessingOrder(t *testing.T) {
	cfg := mustValidate(t, fig3Config())
	order := ProcessingOrder(cfg)
	pos := map[string]int{}
	for i, c := range order {
		pos[c.Name] = i
	}
	// Leaves before screenplay before movie (Fig. 3(b)'s numbering).
	if !(pos["screenplay"] < pos["movie"]) {
		t.Errorf("screenplay must be processed before movie: %v", pos)
	}
	for _, leafName := range []string{"actor", "title"} {
		if !(pos[leafName] < pos["movie"]) {
			t.Errorf("%s must be processed before movie: %v", leafName, pos)
		}
	}
}

func TestFig3EndToEnd(t *testing.T) {
	doc := mustDoc(t, fig3XML)
	cfg := mustValidate(t, fig3Config())
	res, err := Run(doc, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"movie", "screenplay", "actor", "title", "person"} {
		if res.Clusters[name] == nil {
			t.Errorf("missing cluster set for %q", name)
		}
	}
	if res.Clusters["person"].Elements() != 3 {
		t.Errorf("person elements = %d, want 3", res.Clusters["person"].Elements())
	}
}
