package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/extsort"
	"repro/internal/obs"
	"repro/internal/runlimit"
	"repro/internal/similarity"
	"repro/internal/xmltree"
)

// PairObservation describes one window comparison; experiments use it
// for false-positive analysis and comparison counting.
type PairObservation struct {
	Candidate string
	KeyIndex  int // pass (key) during which the pair was first compared
	A, B      int // element IDs, A < B
	// ODSim is the exact Def. 2 aggregate for fully compared pairs.
	// For pairs decided early by the Sec. 5 filter (Filtered, or a
	// duplicate short-circuited by the pessimistic bound) it is a
	// deterministic bound on the exact value instead: an upper bound
	// when Filtered, a lower bound for a short-circuited duplicate.
	ODSim     float64
	DescSim   float64
	HasDesc   bool
	Duplicate bool
	// Filtered marks pairs the Sec. 5 comparison filter skipped
	// (counted in Stats.FilteredOut rather than Stats.Comparisons);
	// such pairs are never duplicates.
	Filtered bool
}

// Options tune a detection run.
type Options struct {
	// PairObserver, when non-nil, is invoked for every distinct pair
	// comparison performed inside sliding windows.
	PairObserver func(PairObservation)
	// DisableDescendants globally ignores descendant information, as
	// in the OD-only runs of Experiment set 3. Per-candidate
	// UseDescendants still applies when this is false.
	DisableDescendants bool
	// DecisionRule, when non-nil, replaces the built-in threshold
	// rules — the "equational theory" hook the paper's relational SNM
	// uses and SXNM is "ready for" (Sec. 5). It receives the candidate
	// and the two similarities and decides duplicate-ness.
	DecisionRule func(c *config.Candidate, odSim, descSim float64, hasDesc bool) bool
	// FieldRule, when non-nil, replaces the built-in rules with a
	// per-field equational theory: it receives the per-OD-field
	// similarities (similarity.FieldAbsent marks fields missing on
	// both sides) instead of the aggregate. Takes precedence over
	// DecisionRule.
	FieldRule func(c *config.Candidate, fieldSims []float64, descSim float64, hasDesc bool) bool
	// UseFilter enables the threshold-aware comparison fast path of
	// Sec. 5 (see fastpath.go): precomputed per-row sketches, a
	// frequency-histogram bound that prunes whole pairs, banded
	// edit distance with a threshold-derived cut-off, and early
	// termination of the weighted sum in both directions. Duplicate
	// verdicts, clusters, Stats, and checkpoint streams are
	// byte-identical to the unfiltered run; skipped pairs count in
	// Stats.FilteredOut and report a deterministic upper bound as
	// their ODSim. Disabled automatically when a custom DecisionRule
	// or FieldRule is set (the bounds only understand the built-in
	// rules).
	UseFilter bool
	// Parallel runs candidates of the same nesting depth concurrently;
	// bottom-up dependencies only point to strictly deeper candidates,
	// so same-depth candidates never read each other's cluster sets.
	// Results are identical to sequential runs. Phase durations then
	// overlap in wall-clock terms, so keep this off for Fig. 5 style
	// measurements. A panic inside a worker is recovered into a
	// *PanicError naming the candidate and cancels its siblings.
	// Orthogonal to PairWorkers, which parallelizes inside one
	// candidate's key passes; the two compose.
	Parallel bool
	// PairWorkers parallelizes the window sweep inside each key pass:
	// the pair stream is batched and compared on this many goroutines,
	// with verdicts merged back in window order. Every observable —
	// clusters, Stats, spans, checkpoints, PairObserver calls — is
	// byte-identical to the sequential run (the differential suite in
	// internal/core proves it). 0 (the zero value) runs the plain
	// sequential loop; 1 runs the batching machinery on one worker;
	// negative means one worker per available CPU.
	PairWorkers int
	// Shards splits each key pass's sorted GK order into that many
	// contiguous ranges swept concurrently. Each shard reads its owned
	// range plus a halo of the preceding window-1 rows (widened to the
	// adaptive cap) so boundary windows see full context; halo rows are
	// never swept by the reading shard — every window pair is owned by
	// exactly one shard, keyed by its current (right-hand) row. Shard
	// event streams are replayed on the coordinating goroutine in
	// global window order, so every observable — clusters, Stats,
	// checkpoints, PairObserver calls, interrupted partial results — is
	// byte-identical to the unsharded run (the differential suite in
	// internal/core proves it). 0 (the zero value) disables sharding;
	// 1 runs the full shard machinery over a single range (the
	// differential anchor); negative means one shard per available CPU.
	// Composes with PairWorkers (each shard runs its own pair-worker
	// pool) and with spilling (shards range-read one shared external
	// sort).
	Shards int
	// SimCache memoizes similarity computations per candidate, shared
	// across that candidate's key passes: value-pair scores for the
	// Def. 2 OD fields (LRU-bounded) and interned descendant cluster-ID
	// sets so the Def. 3 overlap becomes a set-ID comparison. Every
	// similarity function is pure, so results are byte-identical with
	// the cache on or off; hit/miss/eviction counters surface through
	// the Observer's metrics and report, never through Stats.
	SimCache bool
	// SimCacheSize bounds the value-pair entries held per candidate;
	// 0 means DefaultSimCacheSize. Ignored unless SimCache is set.
	SimCacheSize int
	// SimCacheFor, when non-nil and SimCache is set, supplies the memo
	// cache for a candidate instead of constructing a fresh one — the
	// hook long-lived services use to share a warm cache across runs of
	// the same configuration. The caller must only ever hand back a
	// cache previously used for the same (configuration, candidate)
	// pair: value-pair entries are keyed by OD field index, so caches
	// must never cross configurations. Similarity functions are pure,
	// so a warm cache changes CPU time and the obs counters only, never
	// results. Returning nil falls back to a fresh per-run cache.
	SimCacheFor func(candidate string) *similarity.Cache
	// SpillThresholdRows bounds detection memory: candidates whose GK
	// table exceeds this many rows sort each key pass with an external
	// merge sort — bounded in-memory runs spilled to checksummed files
	// under SpillDir, k-way merged back — and the sliding window
	// consumes the merged stream, holding only the window extent plus
	// merge buffers in RAM. Every observable (clusters, Stats,
	// checkpoints, PairObserver calls, interrupted partial results) is
	// byte-identical to the in-memory path; the differential suite in
	// internal/core proves it. 0 (the zero value) keeps every pass
	// fully in memory — the paper's behavior, unchanged. When set, the
	// MaxRows limit degrades from a hard cap to an advisory (the run
	// spills instead of failing; see Limits.SpillRows).
	SpillThresholdRows int
	// SpillDir receives the run files and their manifest. Runs written
	// there are fingerprinted against the GK table content and reused
	// by later runs over the same data (e.g. a checkpoint resume) — the
	// sort and write are skipped, the checksummed files re-verified
	// while streaming. Empty means a private temp directory, removed
	// when the run ends.
	SpillDir string
	// SpillFS, when non-nil, replaces the real filesystem under the
	// spill layer — the fault-injection hook for torn-write/short-read
	// testing. Requires SpillDir to be set when non-nil.
	SpillFS extsort.FS
	// spill is the run-level spill state DetectContext derives from the
	// three fields above; nil when spilling is off.
	spill *spillState
	// Limits bounds the run's wall-clock time and resource use; the
	// zero value is unlimited. On a breach the run stops gracefully,
	// returning the partial Result (with Result.Incomplete describing
	// how far it got) alongside the typed cause.
	Limits Limits
	// Checkpointer, when non-nil, receives durable-progress callbacks:
	// the GK tables after key generation, per-candidate pass progress,
	// and each finished candidate's cluster set. An error from a
	// callback aborts the run (except the best-effort flush during an
	// interruption, whose error is dropped).
	Checkpointer Checkpointer
	// Resume, when non-nil, seeds detection with a prior run's
	// completed candidates and mid-candidate pass progress. Resumed
	// cluster sets must stem from the same GK tables and configuration.
	Resume *ResumeState
	// Observer, when non-nil and enabled, receives tracing spans
	// (key generation, each candidate, each key pass, sliding window,
	// transitive closure) and live metrics from every phase. A nil or
	// disabled observer costs one pointer test per run — the hot loops
	// are untouched — so leaving it unset reproduces the paper's
	// performance exactly.
	Observer *obs.Observer
}

// CandidateStats holds per-candidate phase measurements.
type CandidateStats struct {
	Rows              int
	Comparisons       int // distinct similarity computations
	WindowPairs       int // window pair slots, including repeats across passes
	FilteredOut       int // comparisons skipped by the upper-bound filter
	DuplicatePairs    int // distinct pairs classified duplicate (pre-closure)
	Clusters          int
	NonSingleton      int
	SlidingWindow     time.Duration
	TransitiveClosure time.Duration
}

// Stats aggregates the phase measurements the paper reports in
// Experiment set 2: key generation (KG), sliding window (SW),
// transitive closure (TC), and duplicate detection (DD = SW + TC).
//
// SlidingWindow and TransitiveClosure are sums of per-candidate
// durations. Under Options.Parallel candidates overlap in wall-clock
// time, so these sums measure CPU time spent, not elapsed time — they
// can exceed the run's wall clock. DetectionWall is the wall-clock
// duration of the whole detection phase and is the number to quote
// for "how long did it take"; the CPU sums are the numbers to quote
// for "how much work was done".
type Stats struct {
	KeyGen            time.Duration
	SlidingWindow     time.Duration // CPU-summed across candidates/workers
	TransitiveClosure time.Duration // CPU-summed across candidates/workers
	DetectionWall     time.Duration // wall clock of the detection phase
	Comparisons       int
	FilteredOut       int
	DuplicatePairs    int
	Candidates        map[string]*CandidateStats
}

// DuplicateDetection returns SW + TC, the paper's DD measure. This is
// the CPU-summed variant: under Options.Parallel the per-candidate
// phases overlap and the sum exceeds elapsed time. Use
// DuplicateDetectionWall for the elapsed-time view.
func (s *Stats) DuplicateDetection() time.Duration {
	return s.SlidingWindow + s.TransitiveClosure
}

// DuplicateDetectionWall returns the wall-clock duration of the
// detection phase (sequential runs: ≈ DuplicateDetection plus
// scheduling overhead; parallel runs: the real elapsed time).
func (s *Stats) DuplicateDetectionWall() time.Duration {
	return s.DetectionWall
}

// Result is the outcome of a full SXNM run: one cluster set per
// candidate (Def. 1), the GK tables, and the phase statistics.
// Incomplete is nil for a run that finished; an interrupted run
// (cancellation, deadline, or resource limit) returns the work
// completed so far with Incomplete describing the interruption.
type Result struct {
	Clusters   map[string]*cluster.ClusterSet
	Tables     map[string]*GKTable
	Stats      Stats
	Incomplete *Incomplete
}

// Run executes SXNM over the document: key generation, then bottom-up
// multi-pass sliding-window duplicate detection with transitive
// closure per candidate. The configuration must be validated.
func Run(doc *xmltree.Document, cfg *config.Config, opts Options) (*Result, error) {
	return RunContext(context.Background(), doc, cfg, opts)
}

// RunContext is Run under a context and opts.Limits: the run stops
// cooperatively on cancellation, deadline expiry, or a limit breach.
// It then returns the partial Result (never nil on interruption, with
// Result.Incomplete set) together with the typed cause — ErrCanceled,
// ErrDeadlineExceeded, or a *LimitError, matchable via errors.Is/As.
// An uninterrupted run returns results identical to Run.
func RunContext(ctx context.Context, doc *xmltree.Document, cfg *config.Config, opts Options) (*Result, error) {
	ctx, stop := runlimit.WithTimeout(ctx, opts.Limits)
	defer stop()
	kg, err := GenerateKeysObserved(ctx, doc, cfg, opts.KeyGenLimits(), opts.Observer)
	if err != nil {
		if isInterruption(err) {
			return PartialFromKeyGen(kg, err), err
		}
		return nil, err
	}
	if opts.Checkpointer != nil {
		if cerr := opts.Checkpointer.KeysGenerated(kg); cerr != nil {
			return nil, fmt.Errorf("core: checkpoint key generation: %w", cerr)
		}
	}
	return DetectContext(ctx, kg, cfg, opts)
}

// KeyGenLimits returns opts.Limits adjusted for the spill path: with
// an explicit spill threshold configured, MaxRows stops being a hard
// cap during key generation — detection memory is bounded by spilling,
// so the run carries on past the limit instead of failing. Callers
// that run key generation themselves (the streaming facade) should
// pass this instead of Options.Limits.
func (o Options) KeyGenLimits() Limits {
	l := o.Limits
	if o.SpillThresholdRows > 0 {
		l.SpillRows = true
	}
	return l
}

// Detect executes the duplicate detection phase over previously
// generated keys; splitting it from Run lets benchmarks time the
// phases separately.
func Detect(kg *KeyGenResult, cfg *config.Config, opts Options) (*Result, error) {
	return DetectContext(context.Background(), kg, cfg, opts)
}

// DetectContext is Detect with the cooperative cancellation and
// resource budget of RunContext applied to the detection phase.
func DetectContext(ctx context.Context, kg *KeyGenResult, cfg *config.Config, opts Options) (*Result, error) {
	ctx, stop := runlimit.WithTimeout(ctx, opts.Limits)
	defer stop()
	// Parallel workers share a cancelable context so a panic in one
	// worker stops its siblings promptly.
	cancelSiblings := context.CancelFunc(func() {})
	if opts.Parallel {
		ctx, cancelSiblings = context.WithCancel(ctx)
	}
	defer cancelSiblings()
	bud := newBudget(ctx, opts.Limits)

	// Normalize the observer once: a disabled observer is treated like
	// a nil one everywhere downstream, so the atomic enabled flag is
	// tested exactly once per run.
	if !opts.Observer.Enabled() {
		opts.Observer = nil
	}
	ob := opts.Observer
	m := ob.Metrics()

	// The smallspill build tag forces a tiny threshold so the whole
	// test suite exercises the spill path; an explicit caller choice
	// always wins. Detection-only: key generation limits are not
	// retroactively waived by the forced value.
	if opts.SpillThresholdRows == 0 && forcedSpillThreshold > 0 {
		opts.SpillThresholdRows = forcedSpillThreshold
	}
	// The smallshard build tag likewise forces sharded sweeps (the
	// planner clamps the huge forced count to one row per shard); an
	// explicit caller choice always wins.
	if opts.Shards == 0 && forcedShardCount != 0 {
		opts.Shards = forcedShardCount
	}
	if n := opts.shardCount(); n > 0 && m != nil {
		m.ShardCount.Store(int64(n))
	}
	if opts.SpillThresholdRows > 0 {
		st := newSpillState(opts, m)
		opts.spill = st
		defer st.cleanup()
	}

	res := &Result{
		Clusters: make(map[string]*cluster.ClusterSet, len(cfg.Candidates)),
		Tables:   kg.Tables,
		Stats: Stats{
			KeyGen:     kg.Duration,
			Candidates: make(map[string]*CandidateStats, len(cfg.Candidates)),
		},
	}
	var resumedClusters map[string]*cluster.ClusterSet
	var resumedProgress map[string]*CandidateProgress
	if opts.Resume != nil {
		resumedClusters = opts.Resume.Clusters
		resumedProgress = opts.Resume.Progress
	}

	detStart := time.Now()
	detSpan := ob.StartSpan(obs.SpanDetect)
	defer detSpan.End()
	defer func() { res.Stats.DetectionWall = time.Since(detStart) }()
	if m != nil {
		m.MarkStart()
		m.CandidatesTotal.Store(int64(len(cfg.Candidates)))
		var rows, expected int64
		for i := range cfg.Candidates {
			c := &cfg.Candidates[i]
			t := kg.Tables[c.Name]
			if t == nil {
				continue
			}
			rows += int64(len(t.Rows))
			if _, done := resumedClusters[c.Name]; done {
				continue
			}
			passes := len(c.CompiledKeys())
			if prog := resumedProgress[c.Name]; prog != nil {
				passes -= prog.NextPass
			}
			if passes > 0 {
				expected += int64(passes) * estWindowPairs(len(t.Rows), c.Window)
			}
		}
		m.GKRows.Store(rows)
		m.ExpectedWindowPairs.Store(expected)
	}
	if ob != nil && opts.Resume != nil {
		var seeded int64
		for _, prog := range resumedProgress {
			seeded += int64(len(prog.Pairs))
		}
		if m != nil {
			m.ResumedCandidates.Store(int64(len(resumedClusters)))
			m.ResumedPairs.Store(seeded)
		}
		ob.Event(obs.EventResume,
			obs.Int(obs.AttrCompleted, len(resumedClusters)),
			obs.Int64(obs.AttrResumedPairs, seeded))
	}

	var completed []string
	for _, group := range DetectionOrder(kg, cfg) {
		type outcome struct {
			name    string
			ran     bool
			resumed bool
			cs      *cluster.ClusterSet
			cstats  *CandidateStats
			err     error
		}
		outcomes := make([]outcome, len(group))
		runOne := func(i int) {
			cand := group[i]
			defer func() {
				if r := recover(); r != nil {
					outcomes[i] = outcome{name: cand.Name, ran: true, err: &PanicError{
						Candidate: cand.Name, Value: r, Stack: debug.Stack(),
					}}
					cancelSiblings()
				}
			}()
			t := kg.Tables[cand.Name]
			if t == nil {
				outcomes[i] = outcome{name: cand.Name, ran: true,
					err: fmt.Errorf("core: no GK table for candidate %q", cand.Name)}
				return
			}
			if cs, ok := resumedClusters[cand.Name]; ok {
				// Completed by the checkpointed run being resumed: adopt
				// the cluster set without re-detecting. Comparison stats
				// stay zero — that work happened in the earlier process.
				outcomes[i] = outcome{name: cand.Name, ran: true, resumed: true, cs: cs,
					cstats: &CandidateStats{
						Rows:         len(t.Rows),
						Clusters:     cs.Len(),
						NonSingleton: len(cs.NonSingletons()),
					}}
				if sp := detSpan.Child(obs.SpanCandidate,
					obs.String(obs.AttrCandidate, cand.Name),
					obs.Int(obs.AttrRows, len(t.Rows)),
					obs.Bool(obs.AttrResumed, true),
					obs.Int(obs.AttrClusters, cs.Len()),
					obs.Int(obs.AttrNonSingleton, len(cs.NonSingletons())),
				); sp != nil {
					sp.End()
				}
				return
			}
			candSpan := detSpan.Child(obs.SpanCandidate,
				obs.String(obs.AttrCandidate, cand.Name),
				obs.Int(obs.AttrRows, len(t.Rows)),
				obs.Int(obs.AttrWindow, cand.Window),
				obs.Int(obs.AttrKeys, len(cand.CompiledKeys())))
			if prog := resumedProgress[cand.Name]; prog != nil {
				candSpan.SetAttr(obs.Int(obs.AttrNextPass, prog.NextPass))
			}
			cs, cstats, err := detectCandidate(bud, t, res.Clusters, resumedProgress[cand.Name], opts, candSpan)
			if cstats != nil {
				candSpan.SetAttr(
					obs.Int(obs.AttrWindowPairs, cstats.WindowPairs),
					obs.Int(obs.AttrComparisons, cstats.Comparisons),
					obs.Int(obs.AttrFilteredOut, cstats.FilteredOut),
					obs.Int(obs.AttrDuplicatePairs, cstats.DuplicatePairs),
					obs.Int(obs.AttrClusters, cstats.Clusters),
					obs.Int(obs.AttrNonSingleton, cstats.NonSingleton),
					obs.Int64(obs.AttrSWNanos, int64(cstats.SlidingWindow)),
					obs.Int64(obs.AttrTCNanos, int64(cstats.TransitiveClosure)))
			}
			if err != nil && isInterruption(err) {
				candSpan.SetAttr(obs.Bool(obs.AttrInterrupted, true))
			}
			candSpan.End()
			outcomes[i] = outcome{name: cand.Name, ran: true, cs: cs, cstats: cstats, err: err}
		}
		if opts.Parallel && len(group) > 1 {
			var wg sync.WaitGroup
			for i := range group {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					runOne(i)
				}(i)
			}
			wg.Wait()
		} else {
			for i := range group {
				runOne(i)
				// Sequentially there is no point starting the next
				// candidate once this one was cut short or failed.
				if outcomes[i].err != nil {
					break
				}
			}
		}

		// Classify the group's outcomes: panics and hard errors abort
		// the run; interruptions keep the completed work.
		var intr *interruptError
		var interrupted []string
		for _, o := range outcomes {
			if !o.ran || o.err == nil {
				continue
			}
			var pe *PanicError
			if errors.As(o.err, &pe) {
				return nil, o.err
			}
			if !isInterruption(o.err) {
				return nil, o.err
			}
			var ie *interruptError
			if !errors.As(o.err, &ie) {
				ie = &interruptError{cause: o.err, phase: PhaseSlidingWindow, pass: -1}
			}
			if intr == nil {
				intr = ie
			}
			interrupted = append(interrupted, o.name)
		}
		for _, o := range outcomes {
			if !o.ran || o.err != nil {
				continue
			}
			res.Clusters[o.name] = o.cs
			res.Stats.Candidates[o.name] = o.cstats
			res.Stats.SlidingWindow += o.cstats.SlidingWindow
			res.Stats.TransitiveClosure += o.cstats.TransitiveClosure
			res.Stats.Comparisons += o.cstats.Comparisons
			res.Stats.FilteredOut += o.cstats.FilteredOut
			res.Stats.DuplicatePairs += o.cstats.DuplicatePairs
			completed = append(completed, o.name)
			if m != nil {
				m.CandidatesDone.Add(1)
			}
			if opts.Checkpointer != nil && !o.resumed {
				if cerr := opts.Checkpointer.CandidateDone(o.name, o.cs); cerr != nil {
					return nil, fmt.Errorf("core: checkpoint candidate %q: %w", o.name, cerr)
				}
			}
		}
		if intr != nil {
			res.Incomplete = &Incomplete{
				Cause:       intr.cause,
				Phase:       intr.phase,
				Completed:   completed,
				Interrupted: interrupted,
				KeyPass:     intr.pass,
			}
			if ob != nil {
				ob.Event(obs.EventInterrupted,
					obs.String(obs.AttrPhase, intr.phase),
					obs.String(obs.AttrCause, intr.cause.Error()))
			}
			return res, intr.cause
		}
	}
	return res, nil
}

// detectCandidate runs the multi-pass sliding window (Sec. 3.4,
// "general duplicate detection process") for one candidate and closes
// the detected pairs into a cluster set. The budget's cancellation and
// comparison caps are polled every few iterations of the hot loops; an
// interruption surfaces as an *interruptError naming the phase.
//
// A non-nil prog resumes mid-candidate: passes before prog.NextPass
// are skipped and prog.Pairs seed both the duplicate pair list and the
// compared-pair set. Pairs compared but not classified duplicates by
// the earlier run are re-compared when windows revisit them; the
// classification is deterministic, so the resulting cluster set is
// identical to an uninterrupted run (only comparison counts differ).
func detectCandidate(bud *budget, t *GKTable, clusters map[string]*cluster.ClusterSet, prog *CandidateProgress, opts Options, candSpan *obs.Span) (*cluster.ClusterSet, *CandidateStats, error) {
	cand := t.Candidate
	cstats := &CandidateStats{Rows: len(t.Rows)}
	m := opts.Observer.Metrics() // nil when no (enabled) observer

	// The similarity memo is per candidate and shared across its key
	// passes — multi-pass windows revisit pairs, and dirty corpora
	// repeat values. Purity of the similarity functions makes memoized
	// results bit-identical to direct computation, so nothing observable
	// changes; only the obs cache counters do.
	var cache *similarity.Cache
	if opts.SimCache {
		if opts.SimCacheFor != nil {
			cache = opts.SimCacheFor(cand.Name)
		}
		if cache == nil {
			cache = similarity.NewCache(opts.SimCacheSize)
		}
	}
	// A provider-supplied cache arrives warm: baseline its counters so
	// this run's metrics and spans report deltas, not history.
	baseCache := cache.Stats()

	swStart := time.Now()
	useDesc := cand.DescendantsEnabled() && !opts.DisableDescendants

	// Memory-bounded path: a table larger than the spill threshold
	// sorts each pass externally and streams the rows in; descendant
	// resolution then happens per decoded row instead of across the
	// resident table (same function, same results).
	// The threshold-aware fast path only serves the built-in decision
	// rules; custom rules consume exact similarities, never bounds.
	fastFilter := opts.UseFilter && opts.DecisionRule == nil && opts.FieldRule == nil

	var spiller *candSpiller
	if st := opts.spill; st != nil && len(t.Rows) > st.threshold {
		spiller = newCandSpiller(st, t, useDesc, clusters, cache)
		spiller.sketch = fastFilter
	}
	if useDesc && spiller == nil {
		resolveDescClusters(t, clusters)
		if cache != nil {
			internDescSets(t, cache)
		}
	}
	if fastFilter && spiller == nil {
		// Precompute the per-row value sketches once, before the sweep:
		// window comparisons then never re-normalize or re-decode a
		// value. Spilled runs sketch per decoded row instead.
		ensureSketches(t)
	}

	keys := cand.CompiledKeys()
	w := cand.Window
	compared := make(map[uint64]struct{})
	var pairs []cluster.Pair
	startPass := 0
	if prog != nil {
		startPass = prog.NextPass
		if startPass > len(keys) {
			return nil, nil, fmt.Errorf("core: candidate %q: resume pass %d beyond %d keys",
				cand.Name, startPass, len(keys))
		}
		pairs = append(pairs, prog.Pairs...)
		for _, p := range prog.Pairs {
			compared[packPair(p.A, p.B)] = struct{}{}
		}
	}
	// flush persists the pairs found so far, so a later resume can
	// restart at key pass next. Best-effort on the interruption path:
	// the typed cause wins over a checkpoint write failure.
	flush := func(next int) {
		if opts.Checkpointer != nil {
			_ = opts.Checkpointer.Progress(cand.Name, next, pairs)
		}
	}

	// Observability: deltas since the last flush, pushed to the shared
	// metric set at pass boundaries and every few thousand window pairs
	// so a mid-pass Snapshot stays fresh without touching an atomic per
	// pair. flushed* hold the values already accounted for.
	var odCalls, descCalls int
	var flushed CandidateStats
	var flushedDups, flushedOD, flushedDesc int
	flushedCache := baseCache
	flushObs := func() {
		if m == nil {
			return
		}
		m.WindowPairs.Add(int64(cstats.WindowPairs - flushed.WindowPairs))
		m.Comparisons.Add(int64(cstats.Comparisons - flushed.Comparisons))
		m.FilteredOut.Add(int64(cstats.FilteredOut - flushed.FilteredOut))
		m.DuplicatePairs.Add(int64(len(pairs) - flushedDups))
		m.ODSimCalls.Add(int64(odCalls - flushedOD))
		m.DescSimCalls.Add(int64(descCalls - flushedDesc))
		flushed = *cstats
		flushedDups, flushedOD, flushedDesc = len(pairs), odCalls, descCalls
		if cache != nil {
			st := cache.Stats()
			m.SimCacheHits.Add(st.Hits - flushedCache.Hits)
			m.SimCacheMisses.Add(st.Misses - flushedCache.Misses)
			m.SimCacheEvictions.Add(st.Evictions - flushedCache.Evictions)
			m.DescSetsInterned.Add(st.DescSets - flushedCache.DescSets)
			flushedCache = st
		}
	}
	swSpan := candSpan.Child(obs.SpanSlidingWindow, obs.String(obs.AttrCandidate, cand.Name))
	// endPass closes one key pass: heap sample, per-pass span with the
	// pass's own deltas, and a metrics flush.
	passBase := *cstats
	passBaseDups := len(pairs)
	endPass := func(passSpan *obs.Span, interrupted bool) {
		if m != nil {
			m.SampleHeap()
			if !interrupted {
				m.PassesDone.Add(1)
			}
		}
		if passSpan != nil {
			passSpan.SetAttr(
				obs.Int(obs.AttrWindowPairs, cstats.WindowPairs-passBase.WindowPairs),
				obs.Int(obs.AttrComparisons, cstats.Comparisons-passBase.Comparisons),
				obs.Int(obs.AttrFilteredOut, cstats.FilteredOut-passBase.FilteredOut),
				obs.Int(obs.AttrDuplicatePairs, len(pairs)-passBaseDups))
			if m != nil {
				passSpan.SetAttr(obs.Int64(obs.AttrHeapBytes, m.HeapInUse.Load()))
			}
			if interrupted {
				passSpan.SetAttr(obs.Bool(obs.AttrInterrupted, true))
			}
			passSpan.End()
		}
		passBase = *cstats
		passBaseDups = len(pairs)
		flushObs()
	}

	// The sweeper splits each pair into an ordered enumeration half
	// (dedup, budget, counters, observer, pairs — everything below that
	// reads or writes shared state, kept on this goroutine) and a pure
	// comparison half that may run on PairWorkers goroutines. curPass
	// tracks the pass being merged: the sweeper is always drained before
	// a pass ends, so buffered verdicts never cross a pass boundary.
	curPass := startPass
	// mergeVerdict is the ordered half of one pair comparison: counters,
	// observer callback, and the duplicate pair list. The sequential
	// sweeper merges through it directly; the sharded sweep replays
	// shard events through the same function in the same global order.
	mergeVerdict := func(v *pairVerdict) error {
		if v.err != nil {
			return v.err
		}
		if v.filtered {
			cstats.FilteredOut++
		} else {
			cstats.Comparisons++
			odCalls++
		}
		if useDesc {
			descCalls++
		}
		if opts.PairObserver != nil {
			opts.PairObserver(PairObservation{
				Candidate: cand.Name,
				KeyIndex:  curPass,
				A:         minInt(v.a.EID, v.b.EID),
				B:         maxInt(v.a.EID, v.b.EID),
				ODSim:     v.odSim,
				DescSim:   v.descSim,
				HasDesc:   v.hasDesc,
				Duplicate: v.dup,
				Filtered:  v.filtered,
			})
		}
		if v.dup {
			pairs = append(pairs, cluster.MakePair(v.a.EID, v.b.EID))
		}
		return nil
	}
	sw := newSweeper(opts.pairWorkerCount(),
		func(v *pairVerdict) {
			v.odSim, v.descSim, v.hasDesc, v.dup, v.filtered, v.err =
				comparePair(t, v.a, v.b, useDesc, opts, cache)
		},
		mergeVerdict)

	// The ring keeps exactly the trailing rows a window can revisit:
	// the base window, widened to the adaptive cap when adaptive
	// windows are on, clamped to the table size. For the in-memory
	// source the ring holds pointers into the resident table; for the
	// spill source it is the only live copy of the streamed rows — the
	// memory bound the spill path exists for.
	keep := w
	if cand.AdaptiveKeySim > 0 {
		maxW := cand.AdaptiveMaxWindow
		if maxW <= 0 {
			maxW = 3 * cand.Window
		}
		if maxW > keep {
			keep = maxW
		}
	}
	if keep > len(t.Rows) {
		keep = len(t.Rows)
	}
	ring := newRowRing(keep)
	var order []int
	if spiller == nil {
		order = make([]int, len(t.Rows))
	}
	nShards := opts.shardCount()
	var env *shardEnv
	if nShards > 0 {
		env = &shardEnv{
			t: t, cand: cand, opts: opts, cache: cache, useDesc: useDesc,
			w: w, keep: keep, spiller: spiller, order: order,
			bud: bud, m: m, cstats: cstats, compared: compared,
			flushObs: flushObs, merge: mergeVerdict,
		}
	}
	for pass := startPass; pass < len(keys); pass++ {
		curPass = pass
		k := pass
		passSpan := swSpan.Child(obs.SpanPass,
			obs.String(obs.AttrCandidate, cand.Name), obs.Int(obs.AttrPass, pass))
		// interruptPass funnels every budget seam through the one drain
		// sequence: pairs enumerated before the interruption precede it
		// in window order, so the sequential run would have compared
		// them already — drain them, and let a hard comparison error in
		// the drain win over the interruption for the same reason. It is
		// reached before src exists when the spill sort itself is
		// interrupted, hence the nil checks.
		var src rowSource
		interruptPass := func(cause error) (*cluster.ClusterSet, *CandidateStats, error) {
			if ferr := sw.finish(); ferr != nil {
				if src != nil {
					src.close()
				}
				return nil, nil, ferr
			}
			if src != nil {
				src.close()
			}
			cstats.SlidingWindow = time.Since(swStart)
			endPass(passSpan, true)
			swSpan.End()
			flush(pass)
			return nil, cstats, &interruptError{cause: cause, phase: PhaseSlidingWindow, pass: pass}
		}
		if nShards > 0 {
			// Sharded sweep: workers enumerate and compare their ranges,
			// the coordinator replays the concatenated event streams in
			// global window order. On any error the coordinator sweeper is
			// empty and src is nil, so interruptPass degrades to the plain
			// drain-free accounting sequence.
			if err := runShardedPass(env, k, nShards, swSpan, passSpan); err != nil {
				if isInterruption(err) {
					return interruptPass(err)
				}
				return nil, nil, err
			}
		} else if spiller != nil {
			// The external sort does real I/O before the first pair is
			// enumerated; check the budget around it so deadlines and
			// cancellation interrupt a spilling pass about as fast as an
			// in-memory one.
			if bud.active {
				if err := bud.check(); err != nil {
					return interruptPass(err)
				}
			}
			s, err := spiller.source(k, swSpan, bud)
			if err != nil {
				if isInterruption(err) {
					return interruptPass(err)
				}
				return nil, nil, err
			}
			src = s
		} else {
			for i := range order {
				order[i] = i
			}
			sort.SliceStable(order, func(a, b int) bool {
				return gkRowLess(&t.Rows[order[a]], &t.Rows[order[b]], k)
			})
			src = &memSource{t: t, order: order}
		}
		if nShards == 0 {
			i := -1
			for {
				row, err := src.next()
				if err != nil {
					src.close()
					return nil, nil, err
				}
				if row == nil {
					break
				}
				i++
				ring.push(i, row)
				if i == 0 {
					continue
				}
				lo := i - (w - 1)
				if lo < 0 {
					lo = 0
				}
				if cand.AdaptiveKeySim > 0 {
					lo = adaptiveLow(ring, row, i, lo, k, cand)
				}
				for j := lo; j < i; j++ {
					a, b := ring.at(j), row
					cstats.WindowPairs++
					if m != nil && cstats.WindowPairs&0xFFF == 0 {
						flushObs()
					}
					if err := bud.poll(cstats.WindowPairs); err != nil {
						return interruptPass(err)
					}
					key := packPair(a.EID, b.EID)
					if _, seen := compared[key]; seen {
						continue
					}
					compared[key] = struct{}{}
					if err := bud.addComparison(); err != nil {
						return interruptPass(err)
					}
					if err := sw.add(a, b); err != nil {
						src.close()
						return nil, nil, err
					}
				}
			}
			if err := src.close(); err != nil {
				return nil, nil, err
			}
			// Drain before the pass is accounted: verdicts of buffered pairs
			// belong to this pass's span, checkpoint, and counters.
			if err := sw.finish(); err != nil {
				return nil, nil, err
			}
		}
		endPass(passSpan, false)
		// A completed pass is a durable resume point; the final pass is
		// covered moments later by the candidate's own completion.
		if pass+1 < len(keys) && opts.Checkpointer != nil {
			if err := opts.Checkpointer.Progress(cand.Name, pass+1, pairs); err != nil {
				return nil, nil, fmt.Errorf("core: checkpoint candidate %q after pass %d: %w", cand.Name, pass, err)
			}
		}
	}
	cstats.DuplicatePairs = len(pairs)
	cstats.SlidingWindow = time.Since(swStart)
	swSpan.End()
	flushObs()

	tcStart := time.Now()
	tcSpan := candSpan.Child(obs.SpanTransitiveClosure, obs.String(obs.AttrCandidate, cand.Name))
	tcInterrupt := func(err error) (*cluster.ClusterSet, *CandidateStats, error) {
		cstats.TransitiveClosure = time.Since(tcStart)
		if tcSpan != nil {
			tcSpan.SetAttr(obs.Bool(obs.AttrInterrupted, true))
			tcSpan.End()
		}
		// Every window pass is complete: a resume re-enters directly at
		// the transitive closure.
		flush(len(keys))
		return nil, cstats, &interruptError{cause: err, phase: PhaseTransitiveClosure, pass: -1}
	}
	// Phase-entry check so a cancellation arriving at the tail of the
	// sliding window is attributed to the closure it would interrupt.
	if bud.active {
		if err := bud.check(); err != nil {
			return tcInterrupt(err)
		}
	}
	uf := cluster.NewUnionFind()
	tcIter := 0
	for i := range t.Rows {
		tcIter++
		if err := bud.poll(tcIter); err != nil {
			return tcInterrupt(err)
		}
		uf.Add(t.Rows[i].EID)
	}
	if nShards > 1 && len(pairs) > 1 {
		// Sharded closure: contiguous pair chunks union in parallel and
		// fold through the order-independent cluster.Merge; Build's
		// canonical CID assignment makes the folded result identical to
		// the sequential union loop.
		s := nShards
		if s > len(pairs) {
			s = len(pairs)
		}
		parts := make([]*cluster.UnionFind, s)
		panics := make([]any, s)
		var wg sync.WaitGroup
		for ci := 0; ci < s; ci++ {
			lo, hi := len(pairs)*ci/s, len(pairs)*(ci+1)/s
			wg.Add(1)
			go func(ci, lo, hi int) {
				defer wg.Done()
				defer func() { panics[ci] = recover() }()
				p := cluster.NewUnionFind()
				for _, pr := range pairs[lo:hi] {
					p.Add(pr.A)
					p.Add(pr.B)
					p.Union(pr.A, pr.B)
				}
				parts[ci] = p
			}(ci, lo, hi)
		}
		wg.Wait()
		for _, r := range panics {
			if r != nil {
				panic(r)
			}
		}
		for _, p := range parts {
			uf = cluster.Merge(uf, p)
		}
	} else {
		for _, p := range pairs {
			tcIter++
			if err := bud.poll(tcIter); err != nil {
				return tcInterrupt(err)
			}
			uf.Union(p.A, p.B)
		}
	}
	cs := cluster.Build(uf)
	cstats.TransitiveClosure = time.Since(tcStart)
	cstats.Clusters = cs.Len()
	cstats.NonSingleton = len(cs.NonSingletons())
	tcSpan.SetAttr(
		obs.Int(obs.AttrClusters, cs.Len()),
		obs.Int(obs.AttrNonSingleton, len(cs.NonSingletons())))
	tcSpan.End()
	if cache != nil {
		st := cache.Stats()
		candSpan.SetAttr(
			obs.Int64(obs.AttrSimCacheHits, st.Hits-baseCache.Hits),
			obs.Int64(obs.AttrSimCacheMisses, st.Misses-baseCache.Misses),
			obs.Int64(obs.AttrSimCacheEvictions, st.Evictions-baseCache.Evictions))
	}
	return cs, cstats, nil
}

// DefaultSimCacheSize is the per-candidate value-pair capacity used
// when Options.SimCacheSize is zero.
const DefaultSimCacheSize = similarity.DefaultCacheSize

// estWindowPairs estimates the window pair slots one key pass visits
// for n rows and window w: sum over positions i of min(i, w-1) — the
// ramp-up at the start of the sorted order, then a full window per
// step. Adaptive window extension can exceed the estimate; repeated
// pairs across passes are included (each pass slides independently).
func estWindowPairs(n, w int) int64 {
	m := int64(w - 1)
	if m <= 0 || n <= 1 {
		return 0
	}
	N := int64(n)
	if N-1 <= m {
		return N * (N - 1) / 2
	}
	return m*(N-1) - m*(m-1)/2
}

// adaptiveLow extends the window start below the fixed bound while the
// sort keys stay within the candidate's adaptive key similarity — the
// dynamic window sizing the paper's outlook attributes to Lehti &
// Fankhauser's precise blocking. The extension is capped by
// AdaptiveMaxWindow (0 means 3x the base window).
func adaptiveLow(ring *rowRing, cur *GKRow, i, lo, key int, cand *config.Candidate) int {
	maxW := cand.AdaptiveMaxWindow
	if maxW <= 0 {
		maxW = 3 * cand.Window
	}
	ki := cur.Keys[key]
	for lo > 0 && i-(lo-1) <= maxW-1 {
		kj := ring.at(lo - 1).Keys[key]
		if similarity.NormalizedEditRaw(ki, kj) < cand.AdaptiveKeySim {
			break
		}
		lo--
	}
	return lo
}

// ComparePair exposes the pair comparison (Defs. 2 and 3 plus the
// classification rule) for baselines and tools built on the GK tables.
func (t *GKTable) ComparePair(a, b *GKRow, useDesc bool) (odSim, descSim float64, hasDesc, dup bool, err error) {
	odSim, descSim, hasDesc, dup, _, err = comparePair(t, a, b, useDesc, Options{}, nil)
	return odSim, descSim, hasDesc, dup, err
}

// ResolveDescendantClusters prepares the rows' descendant cluster-ID
// lists from already-computed descendant cluster sets; callers that
// bypass Detect (e.g. the all-pairs baseline) must invoke it before
// ComparePair with useDesc=true.
func ResolveDescendantClusters(t *GKTable, clusters map[string]*cluster.ClusterSet) {
	resolveDescClusters(t, clusters)
}

// resolveDescClusters maps each row's descendant element IDs to the
// cluster IDs assigned by the (already processed) descendant
// candidates — the l_e lists feeding Definition 3.
func resolveDescClusters(t *GKTable, clusters map[string]*cluster.ClusterSet) {
	for i := range t.Rows {
		resolveRowDescClusters(&t.Rows[i], clusters)
	}
}

// resolveRowDescClusters is resolveDescClusters for a single row; the
// spill path calls it as each row is decoded from a run file, so
// streamed rows carry the same l_e lists as resident ones.
func resolveRowDescClusters(row *GKRow, clusters map[string]*cluster.ClusterSet) {
	row.descClusters = nil
	if len(row.Desc) == 0 {
		return
	}
	row.descClusters = make(map[string][]int, len(row.Desc))
	for name, eids := range row.Desc {
		cs, ok := clusters[name]
		if !ok {
			continue // descendant candidate was not processed (should not happen bottom-up)
		}
		cids := make([]int, 0, len(eids))
		for _, eid := range eids {
			if cid, ok := cs.CID(eid); ok {
				cids = append(cids, cid)
			}
		}
		row.descClusters[name] = cids
	}
}

// comparePair computes OD similarity (Def. 2), descendant similarity
// (Def. 3), and the duplicate classification for one pair. It reads
// only the table, the two rows, and the (immutable) options plus the
// concurrency-safe cache, so pair workers may run it in parallel. A
// nil cache computes everything directly.
func comparePair(t *GKTable, a, b *GKRow, useDesc bool, opts Options, cache *similarity.Cache) (odSim, descSim float64, hasDesc, dup, filtered bool, err error) {
	if useDesc {
		if cache != nil {
			descSim, hasDesc = descendantSimilarityCached(cache, a, b)
		} else {
			descSim, hasDesc = descendantSimilarity(a, b)
		}
	}
	if opts.FieldRule != nil {
		fieldSims, ferr := cache.ODFieldSims(t.fields, a.OD, b.OD)
		if ferr != nil {
			return 0, 0, false, false, false, fmt.Errorf("core: candidate %q: %w", t.Candidate.Name, ferr)
		}
		odSim = aggregateFieldSims(t.fields, fieldSims)
		dup = opts.FieldRule(t.Candidate, fieldSims, descSim, hasDesc)
		return odSim, descSim, hasDesc, dup, false, nil
	}
	if opts.UseFilter && opts.DecisionRule == nil {
		// Threshold-aware fast path (fastpath.go): sketch bounds,
		// banded edit distance, and early termination of the weighted
		// sum, with escalation to exact values whenever the bounds
		// leave the verdict open.
		odSim, dup, filtered, err = comparePairFiltered(t, a, b, descSim, hasDesc, cache)
		if err != nil {
			return 0, 0, false, false, false, fmt.Errorf("core: candidate %q: %w", t.Candidate.Name, err)
		}
		return odSim, descSim, hasDesc, dup, filtered, nil
	}
	odSim, err = cache.ODSimilarity(t.fields, a.OD, b.OD)
	if err != nil {
		return 0, 0, false, false, false, fmt.Errorf("core: candidate %q: %w", t.Candidate.Name, err)
	}
	if opts.DecisionRule != nil {
		dup = opts.DecisionRule(t.Candidate, odSim, descSim, hasDesc)
	} else {
		dup = decide(t.Candidate, odSim, descSim, hasDesc)
	}
	return odSim, descSim, hasDesc, dup, false, nil
}

// aggregateFieldSims folds per-field similarities into the Def. 2
// weighted sum so observers still see an OD similarity under a
// FieldRule. Absent fields renormalize exactly as ODSimilarity does.
func aggregateFieldSims(fields []similarity.ODField, sims []float64) float64 {
	var sum, weight float64
	for i, f := range fields {
		if sims[i] == similarity.FieldAbsent {
			continue
		}
		weight += f.Relevance
		sum += f.Relevance * sims[i]
	}
	if weight == 0 {
		return 0
	}
	return sum / weight
}

// descendantSimilarity implements Def. 3 with the paper's choices:
// φ^desc is the multiset overlap of cluster-ID lists and agg() is the
// unweighted average over descendant types. Types where both elements
// lack descendants are uninformative and skipped; if every type is
// uninformative the pair has no usable descendant signal (hasDesc is
// false) and classification falls back to the OD alone, matching the
// paper's leaf-node rule.
func descendantSimilarity(a, b *GKRow) (float64, bool) {
	if a.descClusters == nil && b.descClusters == nil {
		return 0, false
	}
	types := make(map[string]struct{}, len(a.descClusters)+len(b.descClusters))
	for name := range a.descClusters {
		types[name] = struct{}{}
	}
	for name := range b.descClusters {
		types[name] = struct{}{}
	}
	names := make([]string, 0, len(types))
	for name := range types {
		names = append(names, name)
	}
	sort.Strings(names)
	var sims []float64
	for _, name := range names {
		la, lb := a.descClusters[name], b.descClusters[name]
		if len(la) == 0 && len(lb) == 0 {
			continue
		}
		sims = append(sims, similarity.Overlap(la, lb))
	}
	if len(sims) == 0 {
		return 0, false
	}
	return similarity.Average(sims), true
}

// internDescSets interns every row's descendant cluster-ID lists so
// pair comparisons work on SetIDs; runs once per candidate, after
// resolveDescClusters.
func internDescSets(t *GKTable, c *similarity.Cache) {
	for i := range t.Rows {
		internRowDescSets(&t.Rows[i], c)
	}
}

// internRowDescSets interns one row's descendant lists. SetIDs are
// content-keyed in the cache, so the assignment order (table sweep vs
// spill decode order) never changes a similarity result.
func internRowDescSets(row *GKRow, c *similarity.Cache) {
	row.descSets = nil
	if row.descClusters == nil {
		return
	}
	row.descSets = make(map[string]similarity.SetID, len(row.descClusters))
	for name, list := range row.descClusters {
		row.descSets[name] = c.InternDesc(list)
	}
}

// descendantSimilarityCached is descendantSimilarity over interned
// SetIDs: same type union, same ordering, same both-empty skip, with
// each per-type overlap served by the cache. A missing descSets entry
// is the empty multiset (SetID 0), matching the nil-list semantics of
// the uncached path, so the aggregated float is bit-identical.
func descendantSimilarityCached(c *similarity.Cache, a, b *GKRow) (float64, bool) {
	if a.descClusters == nil && b.descClusters == nil {
		return 0, false
	}
	types := make(map[string]struct{}, len(a.descClusters)+len(b.descClusters))
	for name := range a.descClusters {
		types[name] = struct{}{}
	}
	for name := range b.descClusters {
		types[name] = struct{}{}
	}
	names := make([]string, 0, len(types))
	for name := range types {
		names = append(names, name)
	}
	sort.Strings(names)
	var sims []float64
	for _, name := range names {
		la, lb := a.descClusters[name], b.descClusters[name]
		if len(la) == 0 && len(lb) == 0 {
			continue
		}
		sims = append(sims, c.OverlapIDs(a.descSets[name], b.descSets[name]))
	}
	if len(sims) == 0 {
		return 0, false
	}
	return similarity.Average(sims), true
}

// decide applies the candidate's classification rule.
func decide(c *config.Candidate, odSim, descSim float64, hasDesc bool) bool {
	switch c.Rule {
	case config.RuleEither:
		return odSim >= c.ODThreshold || (hasDesc && descSim >= c.DescThreshold)
	case config.RuleBoth:
		if odSim < c.ODThreshold {
			return false
		}
		return !hasDesc || descSim >= c.DescThreshold
	default: // RuleCombined
		return similarity.Combine(odSim, descSim, c.ODWeight, hasDesc) >= c.Threshold
	}
}

func packPair(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
