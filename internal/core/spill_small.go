//go:build smallspill

package core

// forcedSpillThreshold under the smallspill tag makes every candidate
// with more than one row take the external-sort spill path, so the
// entire existing test suite — engine, integration, differential —
// doubles as a spill equivalence suite: `go test -tags=smallspill ./...`
// (the CI smallspill leg) must stay as green as the untagged run.
const forcedSpillThreshold = 1
