package core

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/dataset"
)

func TestGKRoundTrip(t *testing.T) {
	doc, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: 120, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mustValidate(t, dataset.ScalabilityConfig(3))
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteGK(&b, kg); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGK(strings.NewReader(b.String()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, kg, back, cfg)
}

func TestGKRoundTripDetectionEquivalence(t *testing.T) {
	doc := mustDoc(t, typoMoviesXML)
	cfg := mustValidate(t, movieConfig(config.RuleCombined))
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteGK(&b, kg); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGK(strings.NewReader(b.String()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Detect(kg, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Detect(back, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name := range direct.Clusters {
		if direct.Clusters[name].String() != loaded.Clusters[name].String() {
			t.Errorf("%s: clusters differ after GK round trip", name)
		}
	}
}

func TestGKEscaping(t *testing.T) {
	// Values containing every structural character must survive.
	nasty := "a\tb|c;d=e,f%g\nh"
	xmlDoc := `<movie_database><movies><movie><title>` +
		"a&#9;b|c;d=e,f%g&#10;h" + `</title></movie></movies></movie_database>`
	doc := mustDoc(t, xmlDoc)
	cfg := mustValidate(t, movieConfig(config.RuleCombined))
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := kg.Tables["movie"].Rows[0].OD[0][0]; got != nasty {
		t.Fatalf("setup: OD value = %q, want %q", got, nasty)
	}
	var b strings.Builder
	if err := WriteGK(&b, kg); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGK(strings.NewReader(b.String()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Tables["movie"].Rows[0].OD[0][0]; got != nasty {
		t.Errorf("round-tripped value = %q, want %q", got, nasty)
	}
}

func TestEscapeGKProperty(t *testing.T) {
	f := func(s string) bool {
		return unescapeGK(escapeGK(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Escaped output never contains structural characters except the
	// escape marker itself.
	g := func(s string) bool {
		return !strings.ContainsAny(escapeGK(s), "\t\n\r|;=,")
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReadGKErrors(t *testing.T) {
	cfg := mustValidate(t, movieConfig(config.RuleCombined))
	cases := []struct{ name, in string }{
		{"row before header", "1\tX\tY\t\n"},
		{"unknown candidate", "#gk\tnosuch\tkeys=1\tod=1\n"},
		{"bad header", "#gk\tmovie\n"},
		{"bad counts", "#gk\tmovie\tkeys=x\tod=1\n"},
		{"count mismatch", "#gk\tmovie\tkeys=5\tod=1\n"},
		{"bad eid", "#gk\tmovie\tkeys=1\tod=1\nxx\tK\tV\t\n"},
		{"wrong width", "#gk\tmovie\tkeys=1\tod=1\n1\tK\n"},
		{"bad desc", "#gk\tmovie\tkeys=1\tod=1\n1\tK\tV\tjunk\n"},
		{"bad desc eid", "#gk\tmovie\tkeys=1\tod=1\n1\tK\tV\tperson=zz\n"},
		{"bad rows count", "#gk\tmovie\tkeys=1\tod=1\trows=x\n"},
		{"negative rows count", "#gk\tmovie\tkeys=1\tod=1\trows=-1\n"},
		{"truncated at eof", "#gk\tmovie\tkeys=1\tod=1\trows=2\n1\tK\tV\t\n"},
		{"truncated before next section", "#gk\tmovie\tkeys=1\tod=1\trows=2\n1\tK\tV\t\n#gk\tmovie\tkeys=1\tod=1\trows=0\n"},
		{"extra rows", "#gk\tmovie\tkeys=1\tod=1\trows=1\n1\tK\tV\t\n2\tK\tV\t\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadGK(strings.NewReader(c.in), cfg); err == nil {
				t.Errorf("ReadGK(%q) succeeded", c.in)
			}
		})
	}
}

// TestReadGKErrorDiagnostics pins the diagnostic contract: row-level
// errors name the candidate and the 1-based line, truncation names the
// candidate with both counts.
func TestReadGKErrorDiagnostics(t *testing.T) {
	cfg := mustValidate(t, movieConfig(config.RuleCombined))
	cases := []struct {
		name, in string
		want     []string
	}{
		{"truncated section", "#gk\tmovie\tkeys=1\tod=1\trows=3\n1\tK\tV\t\n",
			[]string{`"movie"`, "truncated", "3 rows", "got 1"}},
		{"header count mismatch", "#gk\tmovie\tkeys=5\tod=1\trows=0\n",
			[]string{`"movie"`, "line 1", "5 keys"}},
		{"bad desc encoding", "#gk\tmovie\tkeys=1\tod=1\trows=1\n1\tK\tV\tjunk\n",
			[]string{`"movie"`, "line 2", "desc"}},
		{"bad row width", "#gk\tmovie\tkeys=1\tod=1\trows=1\n1\tK\n",
			[]string{`"movie"`, "line 2", "fields"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadGK(strings.NewReader(c.in), cfg)
			if err == nil {
				t.Fatalf("ReadGK(%q) succeeded", c.in)
			}
			for _, frag := range c.want {
				if !strings.Contains(err.Error(), frag) {
					t.Errorf("error %q does not mention %q", err, frag)
				}
			}
		})
	}
}

// A v1 dump without rows= still loads (forward compatibility with
// pre-rows checkpoints and saved GK files).
func TestReadGKAcceptsHeaderWithoutRows(t *testing.T) {
	cfg := mustValidate(t, movieConfig(config.RuleCombined))
	kg, err := ReadGK(strings.NewReader("#gk\tmovie\tkeys=1\tod=1\n1\tK\tV\t\n"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(kg.Tables["movie"].Rows) != 1 {
		t.Errorf("rows = %d, want 1", len(kg.Tables["movie"].Rows))
	}
}
