//go:build !smallshard

package core

// forcedShardCount is 0 in normal builds: sharding happens only when
// Options.Shards asks for it. The smallshard build tag (see
// shard_small.go) forces the minimum legal shard size instead, running
// every test in the tree through the sharded sweep.
const forcedShardCount = 0
