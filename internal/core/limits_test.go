package core

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/gen/freedb"
	"repro/internal/similarity"
)

// interruptedMatchesUninterrupted asserts that every candidate the
// interrupted run reports as completed carries exactly the cluster set
// an uninterrupted run produces.
func interruptedMatchesUninterrupted(t *testing.T, full, part *Result) {
	t.Helper()
	if part.Incomplete == nil {
		t.Fatal("partial result has no Incomplete record")
	}
	if len(part.Incomplete.Completed) == 0 {
		t.Fatal("no candidate completed before the interruption")
	}
	for _, name := range part.Incomplete.Completed {
		got, want := part.Clusters[name], full.Clusters[name]
		if got == nil || want == nil {
			t.Fatalf("candidate %q: missing cluster set (got %v, want %v)", name, got, want)
		}
		if got.String() != want.String() {
			t.Errorf("candidate %q: completed clusters differ from uninterrupted run", name)
		}
	}
	for _, name := range part.Incomplete.Interrupted {
		if _, ok := part.Clusters[name]; ok {
			t.Errorf("interrupted candidate %q should not expose clusters", name)
		}
	}
}

func TestCancelMidSlidingWindow(t *testing.T) {
	doc := freedb.Generate(freedb.DefaultOptions(200, 5))
	full, err := Run(doc, mustValidate(t, cdConfig()), Options{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := Options{Limits: Limits{CheckEvery: 1}}
	// Cancel a few comparisons into the final candidate ("disc" runs
	// last in bottom-up order), so the leaf candidates are complete.
	seen := 0
	opts.PairObserver = func(p PairObservation) {
		if p.Candidate == "disc" {
			seen++
			if seen == 3 {
				cancel()
			}
		}
	}
	part, err := RunContext(ctx, doc, mustValidate(t, cdConfig()), opts)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if part == nil {
		t.Fatal("interruption must return the partial result")
	}
	inc := part.Incomplete
	if inc == nil || inc.Phase != PhaseSlidingWindow {
		t.Fatalf("Incomplete = %+v, want sliding-window phase", inc)
	}
	if len(inc.Interrupted) != 1 || inc.Interrupted[0] != "disc" {
		t.Errorf("Interrupted = %v, want [disc]", inc.Interrupted)
	}
	if inc.KeyPass < 0 {
		t.Errorf("KeyPass = %d, want the in-progress pass", inc.KeyPass)
	}
	if !errors.Is(inc.Cause, ErrCanceled) {
		t.Errorf("Cause = %v, want ErrCanceled", inc.Cause)
	}
	interruptedMatchesUninterrupted(t, full, part)
}

func TestCancelMidTransitiveClosure(t *testing.T) {
	doc := freedb.Generate(freedb.DefaultOptions(100, 5))
	cfg := mustValidate(t, cdConfig())
	// Count the window pairs of the final candidate so the second run
	// can cancel exactly on the last one: the sliding window then ends
	// without another poll and the transitive-closure entry check trips.
	total := 0
	if _, err := Run(doc, cfg, Options{PairObserver: func(p PairObservation) {
		if p.Candidate == "disc" {
			total++
		}
	}}); err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("no disc pairs observed")
	}
	full, err := Run(doc, mustValidate(t, cdConfig()), Options{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	part, err := RunContext(ctx, doc, mustValidate(t, cdConfig()), Options{
		PairObserver: func(p PairObservation) {
			if p.Candidate == "disc" {
				seen++
				if seen == total {
					cancel()
				}
			}
		},
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	inc := part.Incomplete
	if inc == nil || inc.Phase != PhaseTransitiveClosure {
		t.Fatalf("Incomplete = %+v, want transitive-closure phase", inc)
	}
	if inc.KeyPass != -1 {
		t.Errorf("KeyPass = %d, want -1 outside the sliding window", inc.KeyPass)
	}
	interruptedMatchesUninterrupted(t, full, part)
}

// cancelAfterReader cancels ctx once n bytes have been delivered,
// interrupting a streaming parse mid-document.
type cancelAfterReader struct {
	r      io.Reader
	n      int
	read   int
	cancel context.CancelFunc
}

func (c *cancelAfterReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.read += n
	if c.read >= c.n && c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
	return n, err
}

func TestCancelMidStreamKeyGen(t *testing.T) {
	doc := freedb.Generate(freedb.DefaultOptions(300, 5))
	xmlText := doc.String()
	cfg := mustValidate(t, cdConfig())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := &cancelAfterReader{r: strings.NewReader(xmlText), n: len(xmlText) / 2, cancel: cancel}
	kg, err := GenerateKeysStreamContext(ctx, r, cfg, Limits{CheckEvery: 1})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if kg == nil || kg.Tables["disc"] == nil {
		t.Fatal("interruption must return the partial tables")
	}
	rows := len(kg.Tables["disc"].Rows)
	if rows == 0 {
		t.Error("no rows extracted before cancellation")
	}
	fullKG, err := GenerateKeysStream(strings.NewReader(xmlText), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows >= len(fullKG.Tables["disc"].Rows) {
		t.Errorf("partial rows = %d, want fewer than the full %d", rows, len(fullKG.Tables["disc"].Rows))
	}
	// The rows that were extracted match the uninterrupted run.
	for i := 0; i < rows; i++ {
		if kg.Tables["disc"].Rows[i].EID != fullKG.Tables["disc"].Rows[i].EID {
			t.Fatalf("row %d: EID %d != %d", i, kg.Tables["disc"].Rows[i].EID, fullKG.Tables["disc"].Rows[i].EID)
		}
	}
}

func TestCancelMidDOMKeyGen(t *testing.T) {
	doc := freedb.Generate(freedb.DefaultOptions(50, 3))
	cfg := mustValidate(t, cdConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	kg, err := GenerateKeysContext(ctx, doc, cfg, Limits{CheckEvery: 1})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if kg == nil {
		t.Fatal("interruption must return the partial tables")
	}
	// Through Run the interruption is reported as an incomplete keygen.
	res, err := RunContext(ctx, doc, cfg, Options{Limits: Limits{CheckEvery: 1}})
	if !errors.Is(err, ErrCanceled) || res == nil || res.Incomplete == nil {
		t.Fatalf("RunContext = (%v, %v), want partial result + ErrCanceled", res, err)
	}
	if res.Incomplete.Phase != PhaseKeyGen || res.Incomplete.KeyPass != -1 {
		t.Errorf("Incomplete = %+v, want key-generation phase", res.Incomplete)
	}
}

func TestMaxComparisonsLimit(t *testing.T) {
	doc := freedb.Generate(freedb.DefaultOptions(200, 5))
	full, err := Run(doc, mustValidate(t, cdConfig()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.Comparisons < 100 {
		t.Skipf("corpus too small: %d comparisons", full.Stats.Comparisons)
	}
	// One short of the full budget: the breach lands in the last
	// candidate ("disc"), so every leaf candidate completes first.
	max := full.Stats.Comparisons - 1
	part, err := Run(doc, mustValidate(t, cdConfig()), Options{
		Limits: Limits{MaxComparisons: max},
	})
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("want ErrLimitExceeded, got %v", err)
	}
	var le *LimitError
	if !errors.As(err, &le) || le.Limit != "max-comparisons" || le.Max != max {
		t.Fatalf("limit details = %+v", le)
	}
	if le.Observed <= le.Max {
		t.Errorf("observed %d should exceed max %d", le.Observed, le.Max)
	}
	if part == nil || part.Incomplete == nil {
		t.Fatal("limit breach must return the partial result")
	}
	interruptedMatchesUninterrupted(t, full, part)
}

func TestMaxRowsLimit(t *testing.T) {
	doc := freedb.Generate(freedb.DefaultOptions(50, 3))
	cfg := mustValidate(t, cdConfig())
	_, err := GenerateKeysContext(context.Background(), doc, cfg, Limits{MaxRows: 10})
	var le *LimitError
	if !errors.As(err, &le) || le.Limit != "max-rows" || le.Max != 10 {
		t.Fatalf("want max-rows LimitError, got %v", err)
	}
	// Streaming path enforces the same cap.
	_, err = GenerateKeysStreamContext(context.Background(),
		strings.NewReader(doc.String()), cfg, Limits{MaxRows: 10})
	le = nil
	if !errors.As(err, &le) || le.Limit != "max-rows" {
		t.Fatalf("stream: want max-rows LimitError, got %v", err)
	}
}

func TestDocLimitsOnMaterializedDocument(t *testing.T) {
	doc := freedb.Generate(freedb.DefaultOptions(20, 2))
	cfg := mustValidate(t, cdConfig())
	res, err := RunContext(context.Background(), doc, cfg, Options{Limits: Limits{MaxNodes: 5}})
	var le *LimitError
	if !errors.As(err, &le) || le.Limit != "max-nodes" {
		t.Fatalf("want max-nodes LimitError, got %v", err)
	}
	if res == nil || res.Incomplete == nil || res.Incomplete.Phase != PhaseKeyGen {
		t.Fatalf("want keygen-phase partial result, got %+v", res)
	}
	if _, err := RunContext(context.Background(), doc, cfg, Options{Limits: Limits{MaxDepth: 2}}); !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("want depth breach, got %v", err)
	}
	// Generous caps leave the run untouched.
	ok, err := RunContext(context.Background(), doc, cfg, Options{Limits: Limits{MaxDepth: 100, MaxNodes: 1 << 20}})
	if err != nil || ok.Incomplete != nil {
		t.Fatalf("generous limits should pass: %v", err)
	}
}

func TestStreamDepthAndNodeLimits(t *testing.T) {
	doc := freedb.Generate(freedb.DefaultOptions(20, 2))
	cfg := mustValidate(t, cdConfig())
	_, err := GenerateKeysStreamContext(context.Background(),
		strings.NewReader(doc.String()), cfg, Limits{MaxDepth: 2})
	var le *LimitError
	if !errors.As(err, &le) || le.Limit != "max-depth" {
		t.Fatalf("want max-depth LimitError, got %v", err)
	}
	_, err = GenerateKeysStreamContext(context.Background(),
		strings.NewReader(doc.String()), cfg, Limits{MaxNodes: 10})
	le = nil
	if !errors.As(err, &le) || le.Limit != "max-nodes" {
		t.Fatalf("want max-nodes LimitError, got %v", err)
	}
}

func TestParallelPanicContainment(t *testing.T) {
	doc := freedb.Generate(freedb.DefaultOptions(100, 5))
	cfg := mustValidate(t, cdConfig())
	opts := Options{
		Parallel: true,
		FieldRule: func(c *config.Candidate, fieldSims []float64, descSim float64, hasDesc bool) bool {
			if c.Name == "artist" {
				panic("injected rule failure")
			}
			for _, s := range fieldSims {
				if s != similarity.FieldAbsent && s >= 0.9 {
					return true
				}
			}
			return false
		},
	}
	res, err := Run(doc, cfg, opts)
	if err == nil {
		t.Fatal("panicking rule must surface as an error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %T: %v", err, err)
	}
	if pe.Candidate != "artist" {
		t.Errorf("panic attributed to %q, want artist", pe.Candidate)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
		t.Error("panic error should carry the worker stack")
	}
	if !strings.Contains(err.Error(), "artist") || !strings.Contains(err.Error(), "injected rule failure") {
		t.Errorf("error message should name candidate and panic value: %v", err)
	}
	if res != nil {
		t.Error("panic aborts the run without a partial result")
	}
}

func TestSequentialPanicContainment(t *testing.T) {
	doc := freedb.Generate(freedb.DefaultOptions(50, 3))
	cfg := mustValidate(t, cdConfig())
	_, err := Run(doc, cfg, Options{
		FieldRule: func(c *config.Candidate, _ []float64, _ float64, _ bool) bool {
			panic("sequential boom")
		},
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
}

// A canceled parallel run must not lose the completed leaf candidates
// and must pass the race detector (go test -race covers this).
func TestParallelCancellation(t *testing.T) {
	doc := freedb.Generate(freedb.DefaultOptions(200, 5))
	full, err := Run(doc, mustValidate(t, cdConfig()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen int
	opts := Options{
		Parallel: true,
		Limits:   Limits{CheckEvery: 1},
		PairObserver: func(p PairObservation) {
			if p.Candidate == "disc" {
				seen++
				if seen == 2 {
					cancel()
				}
			}
		},
	}
	part, err := RunContext(ctx, doc, mustValidate(t, cdConfig()), opts)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	interruptedMatchesUninterrupted(t, full, part)
}

func TestDeterminismUnderCancelableContext(t *testing.T) {
	doc := freedb.Generate(freedb.DefaultOptions(150, 5))
	plain, err := Run(doc, mustValidate(t, cdConfig()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctxRun, err := RunContext(ctx, doc, mustValidate(t, cdConfig()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ctxRun.Incomplete != nil {
		t.Fatal("uncancelled run must be complete")
	}
	for name := range plain.Clusters {
		if plain.Clusters[name].String() != ctxRun.Clusters[name].String() {
			t.Errorf("candidate %q: cancelable context changed the outcome", name)
		}
	}
	if plain.Stats.Comparisons != ctxRun.Stats.Comparisons {
		t.Errorf("comparisons differ: %d vs %d", plain.Stats.Comparisons, ctxRun.Stats.Comparisons)
	}
}
