package core

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/config"
	"repro/internal/gen/freedb"
	"repro/internal/obs"
)

// checkReportMatchesStats asserts the acceptance criterion of the
// observability layer: the report assembled from spans must reproduce
// Result.Stats exactly — same comparisons, filter hits, duplicate
// pairs, and window pairs, overall and per candidate.
func checkReportMatchesStats(t *testing.T, rep *obs.Report, res *Result) {
	t.Helper()
	st := res.Stats
	if rep.Totals.Comparisons != int64(st.Comparisons) {
		t.Errorf("report comparisons = %d, stats = %d", rep.Totals.Comparisons, st.Comparisons)
	}
	if rep.Totals.FilteredOut != int64(st.FilteredOut) {
		t.Errorf("report filtered = %d, stats = %d", rep.Totals.FilteredOut, st.FilteredOut)
	}
	if rep.Totals.DuplicatePairs != int64(st.DuplicatePairs) {
		t.Errorf("report dups = %d, stats = %d", rep.Totals.DuplicatePairs, st.DuplicatePairs)
	}
	var wantPairs int64
	for _, cs := range st.Candidates {
		wantPairs += int64(cs.WindowPairs)
	}
	if rep.Totals.WindowPairs != wantPairs {
		t.Errorf("report window pairs = %d, stats sum = %d", rep.Totals.WindowPairs, wantPairs)
	}
	if len(rep.Candidates) != len(st.Candidates) {
		t.Fatalf("report candidates = %d, stats = %d", len(rep.Candidates), len(st.Candidates))
	}
	for _, cr := range rep.Candidates {
		cs := st.Candidates[cr.Name]
		if cs == nil {
			t.Errorf("report candidate %q not in stats", cr.Name)
			continue
		}
		if cr.Rows != cs.Rows || cr.Comparisons != int64(cs.Comparisons) ||
			cr.WindowPairs != int64(cs.WindowPairs) ||
			cr.FilteredOut != int64(cs.FilteredOut) ||
			cr.DuplicatePairs != int64(cs.DuplicatePairs) ||
			cr.Clusters != int64(cs.Clusters) ||
			cr.NonSingleton != int64(cs.NonSingleton) {
			t.Errorf("candidate %q: report %+v vs stats %+v", cr.Name, cr, cs)
		}
		// Pass deltas must sum to the candidate totals.
		var pp, pc int64
		for _, p := range cr.Passes {
			pp += p.WindowPairs
			pc += p.Comparisons
		}
		if pp != cr.WindowPairs || pc != cr.Comparisons {
			t.Errorf("candidate %q: pass sums %d/%d vs totals %d/%d",
				cr.Name, pp, pc, cr.WindowPairs, cr.Comparisons)
		}
	}
}

func runObserved(t *testing.T, opts Options) (*obs.Report, *Result, []obs.Record) {
	t.Helper()
	ring := obs.NewRing(1 << 16)
	col := obs.NewCollector()
	var buf bytes.Buffer
	jl := obs.NewJSONL(&buf)
	ob := obs.New(ring, col, jl)
	opts.Observer = ob
	opts.UseFilter = true

	cfg := mustValidate(t, cdConfig())
	doc := freedb.Generate(freedb.DefaultOptions(60, 4))
	res, err := RunContext(context.Background(), doc, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ParseJSONL(&buf)
	if err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	return col.Report(ob.Metrics()), res, recs
}

func TestObserverReportMatchesStats(t *testing.T) {
	rep, res, recs := runObserved(t, Options{})
	checkReportMatchesStats(t, rep, res)

	// The trace must contain each phase's span exactly where expected.
	counts := map[string]int{}
	for _, r := range recs {
		counts[r.Name]++
	}
	if counts[obs.SpanKeyGen] != 1 || counts[obs.SpanDetect] != 1 {
		t.Errorf("phase spans = %v", counts)
	}
	if counts[obs.SpanCandidate] != len(res.Stats.Candidates) {
		t.Errorf("candidate spans = %d, want %d", counts[obs.SpanCandidate], len(res.Stats.Candidates))
	}
	if counts[obs.SpanSlidingWindow] != len(res.Stats.Candidates) ||
		counts[obs.SpanTransitiveClosure] != len(res.Stats.Candidates) {
		t.Errorf("per-candidate phase spans = %v", counts)
	}
	if counts[obs.SpanPass] == 0 {
		t.Error("no pass spans emitted")
	}
	if rep.DetectWallMS <= 0 || rep.KeyGenMS <= 0 {
		t.Errorf("phase wall times = %v / %v", rep.KeyGenMS, rep.DetectWallMS)
	}
}

func TestObserverParallelMatchesStats(t *testing.T) {
	rep, res, _ := runObserved(t, Options{Parallel: true})
	checkReportMatchesStats(t, rep, res)
	if res.Stats.DetectionWall <= 0 {
		t.Error("detection wall clock not measured")
	}
}

// The live metrics must agree with the final stats once the run ends:
// every batched delta has been flushed.
func TestObserverMetricsMatchStats(t *testing.T) {
	ring := obs.NewRing(4)
	ob := obs.New(ring)
	cfg := mustValidate(t, cdConfig())
	doc := freedb.Generate(freedb.DefaultOptions(60, 4))
	res, err := Run(doc, cfg, Options{Observer: ob, UseFilter: true, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	m := ob.Metrics()
	if got := m.Comparisons.Load(); got != int64(res.Stats.Comparisons) {
		t.Errorf("metric comparisons = %d, stats = %d", got, res.Stats.Comparisons)
	}
	if got := m.FilteredOut.Load(); got != int64(res.Stats.FilteredOut) {
		t.Errorf("metric filtered = %d, stats = %d", got, res.Stats.FilteredOut)
	}
	if got := m.DuplicatePairs.Load(); got != int64(res.Stats.DuplicatePairs) {
		t.Errorf("metric dups = %d, stats = %d", got, res.Stats.DuplicatePairs)
	}
	if m.CandidatesDone.Load() != int64(len(res.Stats.Candidates)) {
		t.Errorf("candidates done = %d", m.CandidatesDone.Load())
	}
	if m.ODSimCalls.Load() == 0 {
		t.Error("OD similarity invocations not counted")
	}
	var rows int64
	for _, tbl := range res.Tables {
		rows += int64(len(tbl.Rows))
	}
	if m.GKRows.Load() != rows {
		t.Errorf("gk rows = %d, want %d", m.GKRows.Load(), rows)
	}
	if m.PeakHeap.Load() <= 0 {
		t.Error("heap never sampled")
	}
}

// A disabled observer must behave exactly like a nil one: no spans, no
// metric updates, identical results.
func TestObserverDisabled(t *testing.T) {
	ring := obs.NewRing(8)
	ob := obs.New(ring)
	ob.SetEnabled(false)
	cfg := mustValidate(t, cdConfig())
	doc := freedb.Generate(freedb.DefaultOptions(20, 2))
	res, err := Run(doc, cfg, Options{Observer: ob})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Comparisons == 0 {
		t.Fatal("run did no work")
	}
	if got := len(ring.Records()); got != 0 {
		t.Errorf("disabled observer emitted %d records", got)
	}
	if ob.Metrics().Comparisons.Load() != 0 {
		t.Error("disabled observer counted comparisons")
	}
}

func TestEstWindowPairs(t *testing.T) {
	cases := []struct {
		n, w int
		want int64
	}{
		{0, 3, 0},
		{1, 3, 0},
		{5, 1, 0},  // window 1 compares nothing
		{3, 3, 3},  // full triangle: window covers everything
		{5, 3, 7},  // 2*(4) - 1 = 7
		{4, 10, 6}, // window larger than n: triangle
		{10, 2, 9}, // adjacent pairs only
		{100, 5, 4*99 - 4*3/2},
	}
	for _, c := range cases {
		if got := estWindowPairs(c.n, c.w); got != c.want {
			t.Errorf("estWindowPairs(%d, %d) = %d, want %d", c.n, c.w, got, c.want)
		}
	}
	// The estimate must equal the actual fixed-window pair count on a
	// real run (single pass, fixed window, no adaptivity).
	cfg := mustValidate(t, movieConfig(config.RuleEither))
	doc := mustDoc(t, typoMoviesXML)
	res, err := Run(doc, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, cs := range res.Stats.Candidates {
		var cand *config.Candidate
		for i := range cfg.Candidates {
			if cfg.Candidates[i].Name == name {
				cand = &cfg.Candidates[i]
			}
		}
		want := estWindowPairs(cs.Rows, cand.Window) * int64(len(cand.Keys))
		if int64(cs.WindowPairs) != want {
			t.Errorf("%s: window pairs = %d, estimate = %d", name, cs.WindowPairs, want)
		}
	}
}

// BenchmarkObserverOverhead quantifies the acceptance criterion that a
// run without an observer pays nothing for the instrumentation: the
// nil-observer case must stay within noise (≤2%) of the pre-obs
// baseline, which the "nil" sub-benchmark measures directly since all
// instrumentation collapses to a single pointer test per phase.
// "metrics" runs with counters but no trace sink; "traced" adds a ring.
func BenchmarkObserverOverhead(b *testing.B) {
	cfg := cdConfig()
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	doc := freedb.Generate(freedb.DefaultOptions(100, 6))
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, mk func() *obs.Observer) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Detect(kg, cfg, Options{UseFilter: true, Observer: mk()}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("nil", func(b *testing.B) { run(b, func() *obs.Observer { return nil }) })
	b.Run("metrics", func(b *testing.B) { run(b, func() *obs.Observer { return obs.New() }) })
	b.Run("traced", func(b *testing.B) {
		run(b, func() *obs.Observer { return obs.New(obs.NewRing(1 << 14)) })
	})
}
