package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/xmltree"
)

// Edge cases of the sharded window sweep: shard arithmetic must stay
// correct when the window swallows the whole table, when there is
// nothing (or only one row) to sweep, and when runs of identical sort
// keys straddle worker-shard and batch boundaries.

// sweepCombos is the worker × cache grid the edge tests exercise; 16
// workers over a handful of rows forces empty and single-pair shards.
func sweepCombos() []Options {
	var combos []Options
	for _, w := range pairWorkerMatrix {
		for _, cache := range []bool{false, true} {
			combos = append(combos, Options{PairWorkers: w, SimCache: cache})
		}
	}
	return combos
}

func comboName(o Options) string {
	return fmt.Sprintf("workers=%d/cache=%v", o.PairWorkers, o.SimCache)
}

// Window ≥ table size degenerates to all-pairs: every combo must
// perform exactly C(n,2) comparisons and agree on the clusters.
func TestSweepWindowExceedsTable(t *testing.T) {
	const n, window = 8, 50
	doc := uniqueKeyDoc(t, n)
	cfg := mustValidate(t, singleKeyConfig(window))
	allPairs := n * (n - 1) / 2
	var baseline string
	for _, opts := range sweepCombos() {
		res, err := Run(doc, cfg, opts)
		if err != nil {
			t.Fatalf("%s: %v", comboName(opts), err)
		}
		if got := res.Stats.Candidates["movie"].Comparisons; got != allPairs {
			t.Errorf("%s: comparisons = %d, want all-pairs %d", comboName(opts), got, allPairs)
		}
		cs := res.Clusters["movie"].String()
		if baseline == "" {
			baseline = cs
		} else if cs != baseline {
			t.Errorf("%s: clusters diverged from first combo", comboName(opts))
		}
	}
}

// Single-row and empty tables have no pairs at all; the sweeper must
// not deadlock, panic, or invent comparisons.
func TestSweepDegenerateTables(t *testing.T) {
	cases := []struct {
		name string
		rows int
	}{{"single-row", 1}, {"two-rows", 2}}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc := uniqueKeyDoc(t, tc.rows)
			cfg := mustValidate(t, singleKeyConfig(5))
			for _, opts := range sweepCombos() {
				res, err := Run(doc, cfg, opts)
				if err != nil {
					t.Fatalf("%s: %v", comboName(opts), err)
				}
				want := windowPairCount(tc.rows, 5)
				if got := res.Stats.Candidates["movie"].Comparisons; got != want {
					t.Errorf("%s: comparisons = %d, want %d", comboName(opts), got, want)
				}
			}
		})
	}
}

func TestSweepEmptyTable(t *testing.T) {
	doc := mustDoc(t, "<movie_database><movies></movies></movie_database>")
	cfg := mustValidate(t, singleKeyConfig(5))
	for _, opts := range sweepCombos() {
		res, err := Run(doc, cfg, opts)
		if err != nil {
			t.Fatalf("%s: %v", comboName(opts), err)
		}
		if got := res.Stats.Candidates["movie"].Comparisons; got != 0 {
			t.Errorf("%s: comparisons = %d on an empty table", comboName(opts), got)
		}
	}
}

// duplicateKeyDoc builds a corpus whose sort keys form two long runs
// of identical values (hundreds of rows each, well past pairBatchSize
// shard fractions), so equal-key neighbors straddle every worker-shard
// boundary. sort.SliceStable plus the EID tiebreak must keep the pair
// stream — and therefore the verdict merge — identical regardless of
// sharding.
func duplicateKeyDoc(t *testing.T, perGroup int) *xmltree.Document {
	t.Helper()
	var b strings.Builder
	b.WriteString("<movie_database><movies>")
	for g, title := range []string{"BRRRKKKAAAA", "ZLLLTTTAAAA"} {
		for i := 0; i < perGroup; i++ {
			// A distinct year keeps rows distinguishable without
			// touching the (title-derived) sort key.
			fmt.Fprintf(&b, "<movie><title>%s</title><year>%d</year></movie>", title, 1900+g*200+i%100)
		}
	}
	b.WriteString("</movies></movie_database>")
	return mustDoc(t, b.String())
}

func TestSweepDuplicateKeysAcrossShards(t *testing.T) {
	doc := duplicateKeyDoc(t, 300)
	cfg := singleKeyConfig(6)
	cfg.Candidates[0].Paths = append(cfg.Candidates[0].Paths,
		config.PathDef{ID: 2, RelPath: "year/text()"})
	cfg.Candidates[0].OD = []config.ODEntry{
		{PathID: 1, Relevance: 0.7},
		{PathID: 2, Relevance: 0.3},
	}
	cfg.Candidates[0].Threshold = 0.9
	cfg = mustValidate(t, cfg)
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseline := snapshotRun(t, kg, cfg, Options{})
	for _, opts := range sweepCombos() {
		if opts.PairWorkers == 0 && !opts.SimCache {
			continue
		}
		diffSnapshots(t, comboName(opts), baseline, snapshotRun(t, kg, cfg, opts))
	}
}
