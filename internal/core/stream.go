package core

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/runlimit"
	"repro/internal/similarity"
	"repro/internal/xmltree"
)

// GenerateKeysStream is the streaming variant of GenerateKeys: it
// reads the document token by token and only materializes the subtree
// of the candidate instance currently open, so memory stays bounded by
// the largest candidate subtree instead of the whole document — the
// paper positions SXNM for "large amounts of data", and phase 1 is a
// single pass by design (Sec. 3.3).
//
// Element IDs assigned to candidate instances match GenerateKeys
// exactly (document-order numbering over elements and significant text
// nodes), so the two key generators are interchangeable; a property
// test asserts table equality.
//
// Restriction: candidate paths must be plain element paths (no //, *,
// or predicates), because match decisions must be made on the open-tag
// stack before the subtree is read. Configurations violating this are
// rejected with an error; use GenerateKeys for them.
func GenerateKeysStream(r io.Reader, cfg *config.Config) (*KeyGenResult, error) {
	return GenerateKeysStreamContext(context.Background(), r, cfg, Limits{})
}

// GenerateKeysStreamContext is GenerateKeysStream under a context and
// limits. Because the stream *is* the parse, lim.MaxDepth and
// lim.MaxNodes are enforced on the fly (same semantics as
// xmltree.ParseWithLimits), lim.MaxRows caps rows per candidate, and
// cancellation is polled every few tokens. On interruption the partial
// KeyGenResult is returned together with the typed cause.
func GenerateKeysStreamContext(ctx context.Context, r io.Reader, cfg *config.Config, lim Limits) (*KeyGenResult, error) {
	return GenerateKeysStreamObserved(ctx, r, cfg, lim, nil)
}

// GenerateKeysStreamObserved is GenerateKeysStreamContext with the
// phase traced like GenerateKeysObserved; the span carries an
// additional stream=true attribute.
func GenerateKeysStreamObserved(ctx context.Context, r io.Reader, cfg *config.Config, lim Limits, ob *obs.Observer) (kgOut *KeyGenResult, errOut error) {
	start := time.Now()
	if !ob.Enabled() {
		ob = nil
	}
	if ob != nil {
		sp := ob.StartSpan(obs.SpanKeyGen,
			obs.Int("candidates", len(cfg.Candidates)), obs.Bool(obs.AttrStream, true))
		defer func() { finishKeyGenSpan(sp, ob, kgOut, errOut) }()
	}
	ctx, stop := runlimit.WithTimeout(ctx, lim)
	defer stop()
	bud := newBudget(ctx, lim)

	tables := make(map[string]*GKTable, len(cfg.Candidates))
	byAbsPath := make(map[string]*config.Candidate, len(cfg.Candidates))
	for i := range cfg.Candidates {
		c := &cfg.Candidates[i]
		if !isPlainPath(c.XPath) {
			return nil, fmt.Errorf("core: streaming key generation requires plain candidate paths; %q uses predicates, wildcards, or //", c.XPath)
		}
		fields, err := c.ODFields()
		if err != nil {
			return nil, fmt.Errorf("core: candidate %q: %w", c.Name, err)
		}
		simNames := make([]string, len(c.OD))
		for j, od := range c.OD {
			simNames[j] = od.SimFunc
		}
		byAbsPath[c.XPath] = c
		tables[c.Name] = &GKTable{
			Candidate: c,
			fields:    fields,
			bounds:    similarity.FieldBounds(simNames),
			byEID:     make(map[int]int),
		}
	}

	dec := xml.NewDecoder(r)
	dec.Strict = true

	// Document-order node numbering replicating xmltree.Parse: the
	// root starts at 1; every element and every significant
	// (non-whitespace, non-merged) text node takes the next ID.
	nextID := 0

	// path tracks open element names outside any buffered subtree.
	var path []string
	// openCand tracks open candidate instances (outermost first) for
	// nearest-ancestor registration.
	type openInstance struct {
		cand *config.Candidate
		row  int // row index in its table once registered
	}
	var openCands []openInstance

	// While inside a candidate subtree, build xmltree nodes so the
	// relative-path machinery applies unchanged. cur is the node being
	// filled; candRoots parallels openCands with the buffered roots.
	var cur *xmltree.Node
	var candRoots []*xmltree.Node

	sawRoot := false
	depthOutside := 0 // elements opened outside buffering

	// pendingDesc accumulates, per open candidate instance (by stack
	// depth), the descendant EIDs observed so far, keyed by candidate
	// name. They are attached to the row when the instance closes.
	var pendingDesc []map[string][]int

	// partial returns the tables filled so far together with the typed
	// interruption cause, preserving completed work.
	partial := func(cause error) (*KeyGenResult, error) {
		return &KeyGenResult{Tables: tables, Duration: time.Since(start)}, cause
	}
	checkNodes := func() error {
		if lim.MaxNodes > 0 && nextID > lim.MaxNodes {
			return &runlimit.LimitError{Limit: "max-nodes", Max: lim.MaxNodes, Observed: nextID}
		}
		return nil
	}

	tokens := 0
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("core: stream: %w", err)
		}
		tokens++
		if err := bud.poll(tokens); err != nil {
			return partial(err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			if lim.MaxDepth > 0 && depth > lim.MaxDepth {
				return partial(&runlimit.LimitError{Limit: "max-depth", Max: lim.MaxDepth, Observed: depth})
			}
			nextID++
			if err := checkNodes(); err != nil {
				return partial(err)
			}
			id := nextID
			if cur != nil {
				// Inside a buffered candidate subtree.
				e := xmltree.NewElement(t.Name.Local)
				e.ID = id
				copyAttrs(e, t.Attr)
				cur.AppendChild(e)
				cur = e
			} else {
				if !sawRoot {
					sawRoot = true
				}
				path = append(path, t.Name.Local)
				depthOutside++
			}
			// Candidate match: by joined path when outside, or by
			// extending the outer candidate's path when inside.
			abs := currentAbsPath(path, candRoots, cur)
			if cand, ok := byAbsPath[abs]; ok {
				root := cur
				if root == nil {
					root = xmltree.NewElement(t.Name.Local)
					root.ID = id
					copyAttrs(root, t.Attr)
					cur = root
				}
				openCands = append(openCands, openInstance{cand: cand, row: -1})
				candRoots = append(candRoots, root)
				pendingDesc = append(pendingDesc, nil)
			}
		case xml.EndElement:
			depth--
			if cur != nil {
				// Does this end tag close the innermost candidate?
				if len(candRoots) > 0 && cur == candRoots[len(candRoots)-1] {
					inst := openCands[len(openCands)-1]
					root := candRoots[len(candRoots)-1]
					desc := pendingDesc[len(pendingDesc)-1]
					openCands = openCands[:len(openCands)-1]
					candRoots = candRoots[:len(candRoots)-1]
					pendingDesc = pendingDesc[:len(pendingDesc)-1]

					tbl := tables[inst.cand.Name]
					if err := lim.CheckRows(len(tbl.Rows) + 1); err != nil {
						return partial(err)
					}
					row, err := buildRow(root, inst.cand)
					if err != nil {
						return nil, err
					}
					row.Desc = desc
					tbl.byEID[row.EID] = len(tbl.Rows)
					tbl.Rows = append(tbl.Rows, row)

					// Register with the nearest open candidate.
					if len(pendingDesc) > 0 {
						if pendingDesc[len(pendingDesc)-1] == nil {
							pendingDesc[len(pendingDesc)-1] = make(map[string][]int, 2)
						}
						m := pendingDesc[len(pendingDesc)-1]
						m[inst.cand.Name] = append(m[inst.cand.Name], row.EID)
					}
					// Detach: if this candidate was nested in another
					// buffered subtree, keep the subtree (the parent's
					// relative paths may reach into it); cur moves up.
					cur = root.Parent
					if cur == nil {
						// The outermost buffered candidate also sits on
						// the open-tag stack: close it there too.
						path = path[:len(path)-1]
						depthOutside--
					}
					continue
				}
				cur = cur.Parent
				continue
			}
			if len(path) == 0 {
				return nil, errors.New("core: stream: unbalanced end element")
			}
			path = path[:len(path)-1]
			depthOutside--
		case xml.CharData:
			s := string(t)
			if strings.TrimSpace(s) == "" {
				continue
			}
			if cur != nil {
				// Merge adjacent text as xmltree.Parse does.
				if k := len(cur.Children); k > 0 && cur.Children[k-1].Kind == xmltree.TextNode {
					cur.Children[k-1].Data += s
					continue
				}
				nextID++
				if err := checkNodes(); err != nil {
					return partial(err)
				}
				txt := xmltree.NewText(s)
				txt.ID = nextID
				cur.AppendChild(txt)
			} else {
				if sawRoot && depthOutside > 0 {
					nextID++
					if err := checkNodes(); err != nil {
						return partial(err)
					}
				}
			}
		}
	}
	if !sawRoot {
		return nil, errors.New("core: stream: empty document")
	}
	if len(path) != 0 || cur != nil {
		return nil, errors.New("core: stream: unexpected EOF inside element")
	}
	return &KeyGenResult{Tables: tables, Duration: time.Since(start)}, nil
}

// currentAbsPath computes the absolute path of the element just
// opened: outside buffering it is the joined open-tag stack; inside a
// buffered subtree it is the buffering candidate's path extended by
// the buffered ancestor names.
func currentAbsPath(path []string, candRoots []*xmltree.Node, cur *xmltree.Node) string {
	if cur == nil {
		return strings.Join(path, "/")
	}
	outer := candRoots[0]
	var rel []string
	for e := cur; e != nil && e != outer; e = e.Parent {
		rel = append(rel, e.Name)
	}
	var b strings.Builder
	b.WriteString(strings.Join(path, "/"))
	for i := len(rel) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(rel[i])
	}
	return b.String()
}

func copyAttrs(e *xmltree.Node, attrs []xml.Attr) {
	for _, a := range attrs {
		if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
			continue
		}
		e.Attrs = append(e.Attrs, xmltree.Attr{Name: a.Name.Local, Value: a.Value})
	}
}
