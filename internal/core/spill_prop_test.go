// Property-based equivalence for the spill path, from outside the
// package (the all-pairs baseline imports core, so this must be an
// external test). Randomized corpora from every generator are run
// through the in-memory and spilled paths and must agree exactly; on
// small corpora with the window opened wider than the table, both must
// also agree with the exhaustive all-pairs baseline — the paper's
// convergence claim doubling as an oracle.
package core_test

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gen/freedb"
	"repro/internal/xmltree"
)

// propCorpus is one randomized (document, config) instance; gen
// rebuilds it from (n, seed) so a failure can be shrunk.
type propCorpus struct {
	kind string
	n    int
	seed int64
	gen  func(n int, seed int64) (*xmltree.Document, *config.Config, error)
}

func (c propCorpus) label() string { return fmt.Sprintf("%s/n=%d/seed=%d", c.kind, c.n, c.seed) }

func propGenerators() map[string]func(n int, seed int64) (*xmltree.Document, *config.Config, error) {
	return map[string]func(n int, seed int64) (*xmltree.Document, *config.Config, error){
		"movies": func(n int, seed int64) (*xmltree.Document, *config.Config, error) {
			doc, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: n, Seed: seed})
			if err != nil {
				return nil, nil, err
			}
			cfg := config.DataSet1(4)
			return doc, cfg, cfg.Validate()
		},
		"cds": func(n int, seed int64) (*xmltree.Document, *config.Config, error) {
			doc, err := dataset.DataSet2(dataset.CDs2Options{Discs: n, Seed: seed})
			if err != nil {
				return nil, nil, err
			}
			cfg := config.DataSet2(4)
			return doc, cfg, cfg.Validate()
		},
		"freedb": func(n int, seed int64) (*xmltree.Document, *config.Config, error) {
			cfg := propCDConfig()
			return freedb.Generate(freedb.DefaultOptions(n, seed)), cfg, cfg.Validate()
		},
	}
}

// propCDConfig mirrors the package-internal cdConfig: a nested disc
// candidate over three leaf candidates.
func propCDConfig() *config.Config {
	leaf := func(name, xp string) config.Candidate {
		return config.Candidate{
			Name:  name,
			XPath: xp,
			Paths: []config.PathDef{{ID: 1, RelPath: "text()"}},
			OD:    []config.ODEntry{{PathID: 1, Relevance: 1}},
			Keys: []config.KeyDef{
				{Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "C1-C6"}}},
			},
			Threshold: 0.9,
			Window:    4,
		}
	}
	return &config.Config{Candidates: []config.Candidate{
		{
			Name:  "disc",
			XPath: "cds/disc",
			Paths: []config.PathDef{
				{ID: 1, RelPath: "artist[1]/text()"},
				{ID: 2, RelPath: "dtitle[1]/text()"},
			},
			OD: []config.ODEntry{
				{PathID: 1, Relevance: 0.5},
				{PathID: 2, Relevance: 0.5},
			},
			Keys: []config.KeyDef{
				{Parts: []config.KeyPart{{PathID: 2, Order: 1, Pattern: "K1-K5"}}},
			},
			Rule:          config.RuleEither,
			ODThreshold:   0.85,
			DescThreshold: 0.5,
			Window:        4,
		},
		leaf("dtitle", "cds/disc/dtitle"),
		leaf("artist", "cds/disc/artist"),
		leaf("track", "cds/disc/tracks/title"),
	}}
}

// propClusters runs detection and flattens the result to a comparable
// candidate → cluster-string map plus a stats line.
func propClusters(t *testing.T, doc *xmltree.Document, cfg *config.Config, opts core.Options) map[string]string {
	t.Helper()
	res, err := core.Run(doc, cfg, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := map[string]string{
		"": fmt.Sprintf("cmp=%d dup=%d", res.Stats.Comparisons, res.Stats.DuplicatePairs),
	}
	for name, cs := range res.Clusters {
		out[name] = cs.String()
	}
	return out
}

// spillDisagrees reports whether the spilled and in-memory paths
// disagree on a corpus — the property under test, factored out so the
// shrink loop can re-ask it for smaller corpora.
func spillDisagrees(t *testing.T, c propCorpus, threshold int) (string, bool) {
	t.Helper()
	doc, cfg, err := c.gen(c.n, c.seed)
	if err != nil {
		t.Fatalf("%s: generate: %v", c.label(), err)
	}
	mem := propClusters(t, doc, cfg, core.Options{})
	spl := propClusters(t, doc, cfg, core.Options{SpillThresholdRows: threshold})
	for name, want := range mem {
		if spl[name] != want {
			return fmt.Sprintf("candidate %q: in-memory %s, spilled %s", name, want, spl[name]), true
		}
	}
	if len(spl) != len(mem) {
		return fmt.Sprintf("candidate sets differ: %d vs %d", len(mem), len(spl)), true
	}
	return "", false
}

// TestSpillPropertyRandomCorpora is the randomized half of the
// equivalence proof: ~50 (generator, size, seed) corpora, each checked
// with a seed-derived spill threshold. A failure is shrunk to the
// smallest reproducing size before reporting, so the log always names a
// minimal (kind, n, seed, threshold) repro.
func TestSpillPropertyRandomCorpora(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized corpus sweep skipped in -short mode")
	}
	gens := propGenerators()
	var corpora []propCorpus
	for kind := range gens {
		for i := 0; i < 17; i++ {
			corpora = append(corpora, propCorpus{
				kind: kind,
				n:    3 + (i*7+11)%28, // 3..30, scattered
				seed: int64(i*13 + 5), // deterministic, distinct
				gen:  gens[kind],
			})
		}
	}
	if len(corpora) < 50 {
		t.Fatalf("only %d corpora generated", len(corpora))
	}
	for _, c := range corpora {
		threshold := 1 + int(c.seed)%7
		msg, bad := spillDisagrees(t, c, threshold)
		if !bad {
			continue
		}
		// Shrink: smallest n of the same kind/seed that still disagrees.
		min := c
		minMsg := msg
		for n := 1; n < c.n; n++ {
			small := c
			small.n = n
			if m, b := spillDisagrees(t, small, threshold); b {
				min, minMsg = small, m
				break
			}
		}
		t.Fatalf("spilled path diverged; minimal repro %s threshold=%d:\n%s",
			min.label(), threshold, minMsg)
	}
}

// TestSpillPropertyAllPairsOracle cross-checks both paths against the
// exhaustive baseline on corpora small enough to open the window past
// the table: with w ≥ rows, SNM compares every pair, so all three
// answers must coincide (Sec. 4's convergence claim used as an oracle).
func TestSpillPropertyAllPairsOracle(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		doc, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: 10, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		cfg := config.DataSet1(512) // window far beyond any table size
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		ap, err := baseline.AllPairs(doc, cfg, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, threshold := range []int{0, 1, 5} {
			res, err := core.Run(doc, cfg, core.Options{SpillThresholdRows: threshold})
			if err != nil {
				t.Fatal(err)
			}
			for name, cs := range ap.Clusters {
				if got := res.Clusters[name].String(); got != cs.String() {
					t.Errorf("seed %d threshold %d candidate %q: SNM %s, all-pairs %s",
						seed, threshold, name, got, cs.String())
				}
			}
		}
	}
}
