package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/dataset"
	"repro/internal/obs"
)

// shardMatrix is the shard axis from the issue: 1 = the full shard
// machinery over a single range (the coordinator/replay anchor), 2/4 =
// even splits, 7 = uneven ranges that do not divide the row counts of
// any test corpus.
var shardMatrix = []int{1, 2, 4, 7}

func TestPlanShards(t *testing.T) {
	cases := []struct {
		n, keep, want int
		ranges        []shardRange
	}{
		{n: 0, keep: 4, want: 3, ranges: nil},
		{n: -1, keep: 4, want: 3, ranges: nil},
		{n: 1, keep: 4, want: 8, ranges: []shardRange{{0, 0, 0, 1}}},
		{n: 5, keep: 1, want: 1, ranges: []shardRange{{0, 0, 0, 5}}},
		{n: 5, keep: 1, want: 0, ranges: []shardRange{{0, 0, 0, 5}}},
		// keep=3: halo reaches two rows back, clamped at 0.
		{n: 6, keep: 3, want: 2, ranges: []shardRange{{0, 0, 0, 3}, {1, 1, 3, 6}}},
		// More shards than rows clamps to one owned row per shard.
		{n: 3, keep: 4, want: 100, ranges: []shardRange{{0, 0, 0, 1}, {1, 0, 1, 2}, {2, 0, 2, 3}}},
		// Uneven split: 7 rows over 3 shards → 2/3/2.
		{n: 7, keep: 2, want: 3, ranges: []shardRange{{0, 0, 0, 2}, {1, 1, 2, 4}, {2, 3, 4, 7}}},
	}
	for _, tc := range cases {
		got := planShards(tc.n, tc.keep, tc.want)
		if !reflect.DeepEqual(got, tc.ranges) {
			t.Errorf("planShards(%d, %d, %d) = %v, want %v", tc.n, tc.keep, tc.want, got, tc.ranges)
		}
	}
}

// checkShardPlan asserts the planner invariants for one plan: the
// owned ranges partition [0, n) exactly (every row owned exactly once,
// no halo double-ownership), every shard owns at least one row, and
// each halo reaches back exactly keep-1 rows clamped at the table
// start.
func checkShardPlan(t *testing.T, n, keep, want int, shards []shardRange) {
	t.Helper()
	if n <= 0 {
		if shards != nil {
			t.Fatalf("planShards(%d, %d, %d): want nil, got %v", n, keep, want, shards)
		}
		return
	}
	maxShards := want
	if maxShards > n {
		maxShards = n
	}
	if maxShards < 1 {
		maxShards = 1
	}
	if len(shards) < 1 || len(shards) > maxShards {
		t.Fatalf("planShards(%d, %d, %d): %d shards outside [1, %d]", n, keep, want, len(shards), maxShards)
	}
	if shards[0].start != 0 || shards[len(shards)-1].end != n {
		t.Fatalf("plan does not span [0, %d): %v", n, shards)
	}
	for i, sr := range shards {
		if sr.index != i {
			t.Fatalf("shard %d has index %d", i, sr.index)
		}
		if sr.start >= sr.end {
			t.Fatalf("shard %d owns no rows: %v", i, sr)
		}
		if i > 0 && sr.start != shards[i-1].end {
			t.Fatalf("shard %d not contiguous with predecessor: %v", i, shards)
		}
		wantHalo := sr.start - (keep - 1)
		if wantHalo < 0 {
			wantHalo = 0
		}
		if sr.haloStart != wantHalo {
			t.Fatalf("shard %d haloStart = %d, want %d (keep=%d)", i, sr.haloStart, wantHalo, keep)
		}
	}
}

// FuzzShardPlan fuzzes the planner invariants: deterministic plans
// whose owned ranges cover every row exactly once outside halos, with
// halo width exactly the window lookback (keep-1) clamped at zero.
func FuzzShardPlan(f *testing.F) {
	f.Add(10, 4, 3)
	f.Add(0, 1, 1)
	f.Add(1, 8, 100)
	f.Add(7, 2, 3)
	f.Add(4096, 64, 16)
	f.Fuzz(func(t *testing.T, n, keep, want int) {
		// Bound the domain: planners only ever see keep >= 1 (window >=
		// 2, clamped to the table) and any row count the engine admits.
		n %= 1 << 14
		keep = 1 + abs(keep)%256
		want %= 1 << 20
		shards := planShards(n, keep, want)
		checkShardPlan(t, n, keep, want, shards)
		if again := planShards(n, keep, want); !reflect.DeepEqual(again, shards) {
			t.Fatalf("planShards(%d, %d, %d) is not deterministic: %v vs %v", n, keep, want, shards, again)
		}
	})
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// TestDifferentialSharded is the sharded-sweep equivalence proof:
// shards {1,2,4,7} × PairWorkers {0,4} × spill {off,on} over every
// differential corpus must reproduce the unsharded sequential run
// observable-for-observable — clusters, normalized Stats, the full
// pair observation stream, and the checkpoint callback sequence.
func TestDifferentialSharded(t *testing.T) {
	for _, sc := range differentialScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			kg, err := GenerateKeys(sc.doc, sc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			baseline := snapshotRun(t, kg, sc.cfg, sc.base)
			for _, shards := range shardMatrix {
				for _, workers := range []int{0, 4} {
					for _, spill := range []int{0, 8} {
						opts := sc.base
						opts.Shards = shards
						opts.PairWorkers = workers
						opts.SpillThresholdRows = spill
						label := fmt.Sprintf("shards=%d workers=%d spill=%d", shards, workers, spill)
						diffSnapshots(t, label, baseline, snapshotRun(t, kg, sc.cfg, opts))
					}
				}
			}
			// CPU-derived shard count composed with the cache and the
			// batching sweeper inside each shard.
			opts := sc.base
			opts.Shards = -1
			opts.PairWorkers = 4
			opts.SimCache = true
			opts.SimCacheSize = 64
			diffSnapshots(t, "shards=-1+workers=4+tiny-cache", baseline, snapshotRun(t, kg, sc.cfg, opts))
		})
	}
}

// TestDifferentialShardedInterrupted pins the interruption seam of the
// sharded sweep: a MaxComparisons budget trips at a deterministic
// replay position, so the partial result — completed clusters,
// Incomplete bookkeeping, and the best-effort checkpoint flush — must
// be identical to the sequential engine's across shard counts and the
// spill axis.
func TestDifferentialShardedInterrupted(t *testing.T) {
	doc, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: 120, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mustValidate(t, config.DataSet1(5))
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	type partial struct {
		incomplete Incomplete
		ckpt       map[string][]string
		clusters   map[string]string
	}
	run := func(shards, workers, spill int) partial {
		rec := newRecordingCkpt()
		opts := Options{
			Shards:             shards,
			PairWorkers:        workers,
			SpillThresholdRows: spill,
			Checkpointer:       rec,
			Limits:             Limits{MaxComparisons: 700},
		}
		res, err := Detect(kg, cfg, opts)
		if err == nil {
			t.Fatalf("shards=%d: expected an interrupted run", shards)
		}
		if res == nil || res.Incomplete == nil {
			t.Fatalf("shards=%d: interrupted run returned no partial result", shards)
		}
		p := partial{incomplete: *res.Incomplete, ckpt: rec.perCand,
			clusters: make(map[string]string)}
		p.incomplete.Cause = nil // same typed cause, compared via the error above
		for name, cs := range res.Clusters {
			p.clusters[name] = cs.String()
		}
		return p
	}
	want := run(0, 0, 0)
	for _, shards := range shardMatrix {
		for _, workers := range []int{0, 4} {
			for _, spill := range []int{0, 8} {
				got := run(shards, workers, spill)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("shards=%d workers=%d spill=%d: interrupted snapshot differs\nwant %+v\ngot  %+v",
						shards, workers, spill, want, got)
				}
			}
		}
	}
}

// TestShardObservability checks the obs layering of the sharded sweep:
// shard counters surface through metrics, per-shard spans, and the
// report's Sharding section — and never through Stats, which must stay
// byte-identical to the unsharded run.
func TestShardObservability(t *testing.T) {
	doc, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: 60, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mustValidate(t, config.DataSet1(5))
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Detect(kg, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRing(1 << 16)
	col := obs.NewCollector()
	ob := obs.New(ring, col)
	res, err := Detect(kg, cfg, Options{Shards: 3, Observer: ob})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := normalizeStats(res.Stats), normalizeStats(plain.Stats); got != want {
		t.Errorf("sharding leaked into Stats:\nplain:\n%s\nsharded:\n%s", want, got)
	}
	snap := ob.Metrics().Snapshot()
	if snap.ShardCount != 3 {
		t.Errorf("ShardCount = %d, want 3", snap.ShardCount)
	}
	if snap.ShardSweeps == 0 {
		t.Errorf("ShardSweeps = 0, want > 0")
	}
	rep := col.Report(ob.Metrics())
	if rep.Sharding == nil {
		t.Fatalf("report has no Sharding section")
	}
	if rep.Sharding.ShardCount != 3 || rep.Sharding.ShardSweeps != snap.ShardSweeps ||
		rep.Sharding.HaloPairsDeduped != snap.HaloPairsDeduped {
		t.Errorf("Sharding section %+v disagrees with snapshot %+v", rep.Sharding, snap)
	}
	shardSpans := 0
	for _, r := range ring.Records() {
		if r.Kind == "span" && r.Name == obs.SpanShard {
			shardSpans++
		}
	}
	// 60 movies → one candidate with 3 key passes, 3 shards per pass.
	if shardSpans == 0 {
		t.Errorf("no %q spans recorded", obs.SpanShard)
	}

	// An unsharded run reports no shard state at all.
	col2 := obs.NewCollector()
	ob2 := obs.New(col2)
	if _, err := Detect(kg, cfg, Options{Observer: ob2}); err != nil {
		t.Fatal(err)
	}
	if forcedShardCount == 0 {
		if s := ob2.Metrics().Snapshot(); s.ShardCount != 0 || s.ShardSweeps != 0 {
			t.Errorf("unsharded run reported shard metrics: %+v", s)
		}
		if rep2 := col2.Report(ob2.Metrics()); rep2.Sharding != nil {
			t.Errorf("unsharded run reported a Sharding section: %+v", rep2.Sharding)
		}
	}
}
