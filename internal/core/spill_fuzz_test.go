package core

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzRow deterministically builds a canonical GK row from fuzz bytes:
// strings are drawn from the input, counts stay small, and descendant
// names are made strictly increasing (the canonical map shape the
// encoder always produces).
func fuzzRow(data []byte) *GKRow {
	d := data
	take := func() string {
		if len(d) == 0 {
			return ""
		}
		n := int(d[0]) % 8
		d = d[1:]
		if n > len(d) {
			n = len(d)
		}
		s := string(d[:n])
		d = d[n:]
		return s
	}
	takeN := func(mod int) int {
		if len(d) == 0 {
			return 0
		}
		n := int(d[0]) % mod
		d = d[1:]
		return n
	}
	r := &GKRow{EID: takeN(1 << 10)}
	if nk := takeN(4); nk > 0 {
		r.Keys = make([]string, nk)
		for i := range r.Keys {
			r.Keys[i] = take()
		}
	}
	if no := takeN(3); no > 0 {
		r.OD = make([][]string, no)
		for i := range r.OD {
			if nv := takeN(3); nv > 0 {
				r.OD[i] = make([]string, nv)
				for j := range r.OD[i] {
					r.OD[i][j] = take()
				}
			}
		}
	}
	if nd := takeN(3); nd > 0 {
		r.Desc = make(map[string][]int, nd)
		prev := ""
		for i := 0; i < nd; i++ {
			name := prev + "x" + take() // strictly longer than prev: increasing
			var eids []int
			if ne := takeN(3); ne > 0 {
				eids = make([]int, ne)
				for j := range eids {
					eids[j] = takeN(1<<9) - 128 // negatives too
				}
			}
			r.Desc[name] = eids
			prev = name
		}
	}
	return r
}

// FuzzSpillRowCodec drives the spill row codec with arbitrary bytes,
// checking the three properties the fingerprint-and-reuse design rests
// on: encode∘decode is the identity on canonical rows, the encoding is
// injective (split the input in two — distinct rows must encode to
// distinct bytes), and decode never panics or over-reads on arbitrary
// input.
func FuzzSpillRowCodec(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 2, 'a', 'b', 0, 1}, []byte{9})
	f.Add([]byte{200, 3, 2, 'k', '1', 0, 1, 1, 2, 'v', '!'}, []byte{200, 3, 2, 'k', '1', 0, 1, 1, 2, 'v', '?'})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		ra, rb := fuzzRow(a), fuzzRow(b)

		// Round trip: decode is the exact inverse of encode.
		enc := appendGKRow(nil, ra)
		back, err := decodeGKRow(enc)
		if err != nil {
			t.Fatalf("decode of a canonical encoding failed: %v\nrow %+v", err, ra)
		}
		if !reflect.DeepEqual(back, ra) {
			t.Fatalf("round trip changed the row:\nin  %+v\nout %+v", ra, back)
		}

		// Injectivity: distinct rows never collide — this is what lets a
		// fingerprint match stand in for byte-identical table content.
		encB := appendGKRow(nil, rb)
		if bytes.Equal(enc, encB) && !reflect.DeepEqual(ra, rb) {
			t.Fatalf("distinct rows encode identically:\n%+v\n%+v", ra, rb)
		}

		// Robustness: arbitrary bytes must decode or error, never panic.
		// (Go's varint reader accepts non-minimal forms, so an accepted
		// decode of arbitrary bytes need not re-encode byte-identically;
		// fingerprints only ever hash encoder-produced bytes.)
		if r, err := decodeGKRow(a); err == nil {
			if re := appendGKRow(nil, r); len(re) > len(a) {
				t.Fatalf("re-encoding %x of accepted input %x grew", re, a)
			}
		}
	})
}
