package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/similarity"
)

// GK persistence: the paper stores the generated keys in "a temporary
// relation GK for every candidate" (Sec. 3.1). WriteGK/ReadGK mirror
// that with a line-oriented TSV dump, so the two SXNM phases can run
// as separate processes (generate keys once, experiment with windows
// and thresholds many times without re-reading the XML).
//
// Format (UTF-8, one section per candidate):
//
//	#gk	<candidate>	keys=<n>	od=<m>	rows=<r>
//	<eid>	<key1>	…	<keyn>	<od1>	…	<odm>	<desc>
//
// OD cells hold the |-joined values of one OD entry; the desc cell
// holds `name=eid,eid;name2=…`. Tabs, newlines, percent signs, pipes,
// and the desc separators are percent-escaped inside values. The
// rows count lets the reader detect a truncated section; dumps from
// older versions without it are still accepted.

// WriteGK serializes the key generation result.
func WriteGK(w io.Writer, kg *KeyGenResult) error {
	bw := bufio.NewWriter(w)
	names := make([]string, 0, len(kg.Tables))
	for name := range kg.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := kg.Tables[name]
		nKeys := len(t.Candidate.CompiledKeys())
		nOD := len(t.Candidate.OD)
		fmt.Fprintf(bw, "#gk\t%s\tkeys=%d\tod=%d\trows=%d\n", escapeGK(name), nKeys, nOD, len(t.Rows))
		for i := range t.Rows {
			row := &t.Rows[i]
			bw.WriteString(strconv.Itoa(row.EID))
			for _, k := range row.Keys {
				bw.WriteByte('\t')
				bw.WriteString(escapeGK(k))
			}
			for _, vals := range row.OD {
				bw.WriteByte('\t')
				for j, v := range vals {
					if j > 0 {
						bw.WriteByte('|')
					}
					bw.WriteString(escapeGK(v))
				}
			}
			bw.WriteByte('\t')
			bw.WriteString(encodeDesc(row.Desc))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// ReadGK deserializes a dump produced by WriteGK against the same
// (validated) configuration; candidate names, key counts, and OD
// widths must match.
func ReadGK(r io.Reader, cfg *config.Config) (*KeyGenResult, error) {
	tables := make(map[string]*GKTable, len(cfg.Candidates))
	for i := range cfg.Candidates {
		c := &cfg.Candidates[i]
		fields, err := c.ODFields()
		if err != nil {
			return nil, fmt.Errorf("core: candidate %q: %w", c.Name, err)
		}
		simNames := make([]string, len(c.OD))
		for j, od := range c.OD {
			simNames[j] = od.SimFunc
		}
		tables[c.Name] = &GKTable{
			Candidate: c,
			fields:    fields,
			bounds:    similarity.FieldBounds(simNames),
			byEID:     make(map[int]int),
		}
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var cur *GKTable
	nKeys, nOD := 0, 0
	wantRows, gotRows := -1, 0 // -1: header without rows= (older dump)
	lineNo := 0
	// checkRows verifies a finished section against its declared row
	// count, catching dumps truncated at a line boundary (which no
	// per-line check can see).
	checkRows := func() error {
		if cur != nil && wantRows >= 0 && gotRows != wantRows {
			return fmt.Errorf("core: gk: candidate %q truncated: header declares %d rows, got %d",
				cur.Candidate.Name, wantRows, gotRows)
		}
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#gk\t") {
			if err := checkRows(); err != nil {
				return nil, err
			}
			parts := strings.Split(line, "\t")
			if len(parts) != 4 && len(parts) != 5 {
				return nil, fmt.Errorf("core: gk line %d: malformed header", lineNo)
			}
			name := unescapeGK(parts[1])
			t, ok := tables[name]
			if !ok {
				return nil, fmt.Errorf("core: gk line %d: unknown candidate %q", lineNo, name)
			}
			var err1, err2 error
			nKeys, err1 = headerCount(parts[2], "keys")
			nOD, err2 = headerCount(parts[3], "od")
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("core: gk line %d: malformed header counts", lineNo)
			}
			wantRows, gotRows = -1, 0
			if len(parts) == 5 {
				if wantRows, err1 = headerCount(parts[4], "rows"); err1 != nil || wantRows < 0 {
					return nil, fmt.Errorf("core: gk line %d: malformed header counts", lineNo)
				}
			}
			if nKeys != len(t.Candidate.CompiledKeys()) || nOD != len(t.Candidate.OD) {
				return nil, fmt.Errorf("core: gk line %d: candidate %q has %d keys/%d od in dump but %d/%d in config",
					lineNo, name, nKeys, nOD, len(t.Candidate.CompiledKeys()), len(t.Candidate.OD))
			}
			cur = t
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("core: gk line %d: row before header", lineNo)
		}
		cand := cur.Candidate.Name
		parts := strings.Split(line, "\t")
		if len(parts) != 1+nKeys+nOD+1 {
			return nil, fmt.Errorf("core: gk line %d: candidate %q: want %d fields, got %d",
				lineNo, cand, 1+nKeys+nOD+1, len(parts))
		}
		eid, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("core: gk line %d: candidate %q: bad eid %q", lineNo, cand, parts[0])
		}
		row := GKRow{EID: eid, Keys: make([]string, nKeys), OD: make([][]string, nOD)}
		for i := 0; i < nKeys; i++ {
			row.Keys[i] = unescapeGK(parts[1+i])
		}
		for i := 0; i < nOD; i++ {
			cell := parts[1+nKeys+i]
			if cell != "" {
				for _, v := range strings.Split(cell, "|") {
					row.OD[i] = append(row.OD[i], unescapeGK(v))
				}
			}
		}
		desc, err := decodeDesc(parts[len(parts)-1])
		if err != nil {
			return nil, fmt.Errorf("core: gk line %d: candidate %q: %w", lineNo, cand, err)
		}
		row.Desc = desc
		cur.byEID[row.EID] = len(cur.Rows)
		cur.Rows = append(cur.Rows, row)
		gotRows++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: gk: %w", err)
	}
	if err := checkRows(); err != nil {
		return nil, err
	}
	return &KeyGenResult{Tables: tables}, nil
}

func headerCount(s, key string) (int, error) {
	rest, ok := strings.CutPrefix(s, key+"=")
	if !ok {
		return 0, fmt.Errorf("missing %s=", key)
	}
	return strconv.Atoi(rest)
}

func encodeDesc(desc map[string][]int) string {
	if len(desc) == 0 {
		return ""
	}
	names := make([]string, 0, len(desc))
	for name := range desc {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(escapeGK(name))
		b.WriteByte('=')
		for j, eid := range desc[name] {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(eid))
		}
	}
	return b.String()
}

func decodeDesc(s string) (map[string][]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string][]int)
	for _, group := range strings.Split(s, ";") {
		name, list, ok := strings.Cut(group, "=")
		if !ok {
			return nil, fmt.Errorf("malformed desc group %q", group)
		}
		var eids []int
		if list != "" {
			for _, part := range strings.Split(list, ",") {
				eid, err := strconv.Atoi(part)
				if err != nil {
					return nil, fmt.Errorf("malformed desc eid %q", part)
				}
				eids = append(eids, eid)
			}
		}
		out[unescapeGK(name)] = eids
	}
	return out, nil
}

// escapeGK percent-escapes the characters that carry structure in the
// dump format. It works on bytes (all structural characters are
// ASCII), so even invalid UTF-8 survives the round trip unchanged.
func escapeGK(s string) string {
	if !strings.ContainsAny(s, "\t\n\r%|;=,") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\t', '\n', '\r', '%', '|', ';', '=', ',':
			fmt.Fprintf(&b, "%%%02X", s[i])
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func unescapeGK(s string) string {
	if !strings.ContainsRune(s, '%') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '%' && i+2 < len(s) {
			if v, err := strconv.ParseUint(s[i+1:i+3], 16, 8); err == nil {
				b.WriteByte(byte(v))
				i += 2
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
