package core

import "repro/internal/cluster"

// Checkpointer receives durable-progress callbacks from a run so a
// crash or eviction loses at most the work since the last callback.
// The engine invokes the methods at well-defined points:
//
//   - KeysGenerated once, after the key generation phase completes,
//     with the full GK tables (the phase boundary of Sec. 3.1).
//   - Progress whenever a candidate's detection reaches a durable
//     intermediate state: after each completed key pass, and
//     best-effort when an interruption cuts a candidate short. The
//     pairs are every duplicate pair found so far; detection can
//     later continue at nextPass with those pairs known (re-running
//     an interrupted pass re-derives its missing comparisons
//     deterministically).
//   - CandidateDone after a candidate's cluster set is final, in
//     bottom-up completion order.
//
// A non-nil error from KeysGenerated, Progress, or CandidateDone on
// the normal path aborts the run — the caller asked for durability,
// so continuing without it would be silent data loss. The one
// exception is the best-effort Progress flush performed while an
// interruption is already unwinding: its error is dropped, because
// the typed interruption cause must win and the checkpoint merely
// stays one step staler.
//
// Under Options.Parallel the Progress and CandidateDone methods may
// be called from concurrent workers and must be safe for concurrent
// use. internal/checkpoint.Dir implements this interface.
type Checkpointer interface {
	KeysGenerated(kg *KeyGenResult) error
	Progress(candidate string, nextPass int, pairs []cluster.Pair) error
	CandidateDone(candidate string, cs *cluster.ClusterSet) error
}

// CandidateProgress is the durable mid-candidate state persisted by a
// Checkpointer and replayed through ResumeState: detection restarts at
// key pass NextPass with Pairs as the duplicate pairs already found.
// NextPass equal to the candidate's key count means every sliding
// window completed and only the transitive closure remains.
type CandidateProgress struct {
	NextPass int
	Pairs    []cluster.Pair
}

// ResumeState seeds a detection run with work completed by an earlier
// (checkpointed) run over the same GK tables and configuration.
// Candidates in Clusters are not re-detected: their cluster sets are
// adopted verbatim and feed ancestors' descendant similarity exactly
// as if they had just been computed. Candidates in Progress restart
// at the recorded key pass with the recorded pairs pre-seeded.
//
// The caller is responsible for only resuming state that matches the
// document and configuration (internal/checkpoint enforces this with
// fingerprints); mixing state across inputs produces silently wrong
// clusters.
type ResumeState struct {
	Clusters map[string]*cluster.ClusterSet
	Progress map[string]*CandidateProgress
}
