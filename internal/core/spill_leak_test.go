package core

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/dataset"
	"repro/internal/extsort"
)

// Satellite invariant: an interrupted spilled run must not leak run
// files. Run files are only kept when the manifest references them
// (pinned SpillDir reuse); everything else — partial sorts abandoned
// by a budget breach or cancellation, leftovers of a killed process —
// must be gone after the run (Sorter.Discard on the abandon paths)
// or after the next run over the directory (ensure-time orphan sweep).

// orphanRuns returns the .run files in dir that no manifest entry
// references — the definition of a leak.
func orphanRuns(t *testing.T, dir string) []string {
	t.Helper()
	referenced := make(map[string]struct{})
	if data, err := os.ReadFile(filepath.Join(dir, spillManifestName)); err == nil {
		var man spillManifest
		if err := json.Unmarshal(data, &man); err != nil {
			t.Fatalf("manifest does not parse: %v", err)
		}
		for _, ent := range man.Entries {
			for _, rf := range ent.Runs {
				referenced[rf.Name] = struct{}{}
			}
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		t.Fatal(err)
	}
	var orphans []string
	for _, ent := range ents {
		name := ent.Name()
		if strings.HasSuffix(name, ".run") {
			if _, ok := referenced[name]; !ok {
				orphans = append(orphans, name)
			}
		}
	}
	return orphans
}

func spillLeakFixture(t *testing.T) (*KeyGenResult, *config.Config) {
	t.Helper()
	doc, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: 120, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mustValidate(t, config.DataSet1(5))
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return kg, cfg
}

// failAfterFS is an extsort.FS whose nth Create fails — the
// deterministic stand-in for a sort abandoned mid-way (I/O fault,
// budget poll, cancellation: all three take the same abandon path)
// with some run files already on disk.
type failAfterFS struct {
	extsort.FS
	failAt  int
	created int
}

var errInjectedCreate = errors.New("injected create failure")

func (f *failAfterFS) Create(name string) (io.WriteCloser, error) {
	f.created++
	if f.created >= f.failAt && strings.HasSuffix(name, ".run") {
		return nil, errInjectedCreate
	}
	return f.FS.Create(name)
}

// A sort abandoned after writing some of its run files must discard
// them: they were never recorded in the manifest, so leaving them
// behind would leak disk on every interrupted job.
func TestSpillNoLeakOnAbandonedSort(t *testing.T) {
	kg, cfg := spillLeakFixture(t)
	dir := t.TempDir()
	fs := &failAfterFS{FS: extsort.OSFS(), failAt: 4}
	_, err := DetectContext(context.Background(), kg, cfg, Options{
		SpillThresholdRows: 1,
		SpillDir:           dir,
		SpillFS:            fs,
	})
	if !errors.Is(err, errInjectedCreate) {
		t.Fatalf("err = %v, want the injected create failure", err)
	}
	if fs.created < 4 {
		t.Fatalf("fixture too small: only %d creates before the injected failure", fs.created)
	}
	if orphans := orphanRuns(t, dir); len(orphans) > 0 {
		t.Errorf("abandoned sort leaked %d run file(s): %v", len(orphans), orphans)
	}
}

// A run interrupted by its comparison budget mid-stream — after some
// sorts completed and were recorded — keeps exactly the recorded runs
// (they are the resume currency) and nothing else.
func TestSpillNoLeakOnBudgetInterrupt(t *testing.T) {
	kg, cfg := spillLeakFixture(t)
	dir := t.TempDir()
	res, err := DetectContext(context.Background(), kg, cfg, Options{
		SpillThresholdRows: 1,
		SpillDir:           dir,
		Limits:             Limits{MaxComparisons: 200},
	})
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("err = %v, want ErrLimitExceeded", err)
	}
	if res == nil || res.Incomplete == nil {
		t.Fatal("interrupted run returned no partial result")
	}
	if orphans := orphanRuns(t, dir); len(orphans) > 0 {
		t.Errorf("budget-interrupted run leaked %d run file(s): %v", len(orphans), orphans)
	}
}

// Leftovers of a process killed mid-sort — run files present on disk
// but absent from the manifest — are swept when the next run touches
// the directory. Non-run files are never touched.
func TestSpillSweepsCrashOrphans(t *testing.T) {
	kg, cfg := spillLeakFixture(t)
	dir := t.TempDir()
	stray := filepath.Join(dir, "deadbeef-0007.run")
	if err := os.WriteFile(stray, []byte("SXNMRUN1 partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	bystander := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(bystander, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := DetectContext(context.Background(), kg, cfg, Options{
		SpillThresholdRows: 1,
		SpillDir:           dir,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("orphaned run file survived the sweep (stat err = %v)", err)
	}
	if _, err := os.Stat(bystander); err != nil {
		t.Errorf("sweep touched a non-run file: %v", err)
	}
	if orphans := orphanRuns(t, dir); len(orphans) > 0 {
		t.Errorf("completed run left %d orphan(s): %v", len(orphans), orphans)
	}
}
