package core

import (
	"sort"
	"strings"

	"repro/internal/config"
)

// ProcessingOrder returns the candidates in bottom-up order: every
// candidate is preceded by all candidates nested below it in the
// extracted candidate forest, so descendant cluster sets exist before
// an ancestor's own detection runs (Sec. 3.4, "Bottom-up duplicate
// detection").
//
// The schema-level nesting is derived from the candidates' absolute
// paths: B is below A when A's path is a proper prefix of B's. Within
// one nesting level the order is by path depth descending and then by
// name, which makes runs deterministic.
func ProcessingOrder(cfg *config.Config) []*config.Candidate {
	cands := make([]*config.Candidate, len(cfg.Candidates))
	for i := range cfg.Candidates {
		cands[i] = &cfg.Candidates[i]
	}
	depth := func(c *config.Candidate) int {
		return strings.Count(c.XPath, "/")
	}
	sort.SliceStable(cands, func(i, j int) bool {
		di, dj := depth(cands[i]), depth(cands[j])
		if di != dj {
			return di > dj
		}
		return cands[i].Name < cands[j].Name
	})
	return cands
}

// DetectionOrder partitions the candidates into bottom-up processing
// groups using the nesting actually observed during key generation:
// a candidate is ready once every candidate type occurring among its
// instances' descendants has been processed. This handles candidates
// addressed with the descendant axis, whose static path depth says
// nothing about where their instances sit. Candidates within a group
// are mutually independent and may run concurrently.
//
// Self-nesting (a candidate type occurring inside itself) is ignored —
// like the paper, SXNM does not feed a candidate's own clusters into
// its own similarity. Should the observed nesting be cyclic across
// types, the cycle is broken at the candidate with the shallowest
// configured path, which degrades that candidate to OD-only signals
// for the cycle edge rather than failing.
func DetectionOrder(kg *KeyGenResult, cfg *config.Config) [][]*config.Candidate {
	children := make(map[string]map[string]bool, len(cfg.Candidates))
	for name, t := range kg.Tables {
		for i := range t.Rows {
			for ch := range t.Rows[i].Desc {
				if ch == name {
					continue
				}
				if children[name] == nil {
					children[name] = make(map[string]bool)
				}
				children[name][ch] = true
			}
		}
	}

	remaining := make(map[string]*config.Candidate, len(cfg.Candidates))
	for i := range cfg.Candidates {
		remaining[cfg.Candidates[i].Name] = &cfg.Candidates[i]
	}
	done := make(map[string]bool, len(remaining))
	var groups [][]*config.Candidate
	for len(remaining) > 0 {
		var ready []*config.Candidate
		for name, c := range remaining {
			ok := true
			for ch := range children[name] {
				if !done[ch] && remaining[ch] != nil {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, c)
			}
		}
		if len(ready) == 0 {
			// Cycle across candidate types: break it at the candidate
			// with the shallowest configured path (ties by name).
			var pick *config.Candidate
			for _, c := range remaining {
				if pick == nil || depthOf(c) < depthOf(pick) ||
					(depthOf(c) == depthOf(pick) && c.Name < pick.Name) {
					pick = c
				}
			}
			ready = []*config.Candidate{pick}
		}
		sort.Slice(ready, func(i, j int) bool {
			di, dj := depthOf(ready[i]), depthOf(ready[j])
			if di != dj {
				return di > dj
			}
			return ready[i].Name < ready[j].Name
		})
		for _, c := range ready {
			done[c.Name] = true
			delete(remaining, c.Name)
		}
		groups = append(groups, ready)
	}
	return groups
}

func depthOf(c *config.Candidate) int {
	return strings.Count(c.XPath, "/")
}

// SchemaParent returns the candidate that is the nearest extracted-tree
// ancestor of c (the candidate with the longest path that strictly
// prefixes c's path), or nil if c is a root of its extracted tree.
func SchemaParent(cfg *config.Config, c *config.Candidate) *config.Candidate {
	var best *config.Candidate
	for i := range cfg.Candidates {
		p := &cfg.Candidates[i]
		if p == c {
			continue
		}
		if strings.HasPrefix(c.XPath, p.XPath+"/") {
			if best == nil || len(p.XPath) > len(best.XPath) {
				best = p
			}
		}
	}
	return best
}

// SchemaChildren returns the candidates whose nearest extracted-tree
// ancestor is c, sorted by name.
func SchemaChildren(cfg *config.Config, c *config.Candidate) []*config.Candidate {
	var out []*config.Candidate
	for i := range cfg.Candidates {
		ch := &cfg.Candidates[i]
		if ch != c && SchemaParent(cfg, ch) == c {
			out = append(out, ch)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
