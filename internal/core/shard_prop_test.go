// Property-based equivalence for the sharded sweep, mirroring the
// spill property suite: randomized corpora from every generator are
// run unsharded and with a corpus-derived shard count — including
// counts far beyond the row count, which the planner clamps to
// one-row shards smaller than any window — and must agree exactly.
// Failures shrink to the smallest reproducing corpus size.
package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// shardPropOptions derives the sharded run's options for one corpus:
// the shard count cycles through small counts, a CPU-derived count,
// and a count far beyond any table size; every third corpus also
// spills, exercising the range-reader path over shared run files.
func shardPropOptions(c propCorpus) core.Options {
	opts := core.Options{}
	switch c.seed % 4 {
	case 0:
		opts.Shards = 1000 // far beyond rows: one-row shards, shard < window
	case 1:
		opts.Shards = -1 // one shard per CPU
	default:
		opts.Shards = 2 + int(c.seed)%6
	}
	if c.seed%3 == 0 {
		opts.SpillThresholdRows = 1 + int(c.seed)%7
	}
	if c.seed%5 == 0 {
		opts.PairWorkers = 1 + int(c.seed)%4
	}
	return opts
}

// shardDisagrees reports whether the sharded and sequential engines
// disagree on a corpus — the property under test, factored out so the
// shrink loop can re-ask it for smaller corpora.
func shardDisagrees(t *testing.T, c propCorpus, opts core.Options) (string, bool) {
	t.Helper()
	doc, cfg, err := c.gen(c.n, c.seed)
	if err != nil {
		t.Fatalf("%s: generate: %v", c.label(), err)
	}
	seq := propClusters(t, doc, cfg, core.Options{})
	shd := propClusters(t, doc, cfg, opts)
	for name, want := range seq {
		if shd[name] != want {
			return fmt.Sprintf("candidate %q: sequential %s, sharded %s", name, want, shd[name]), true
		}
	}
	if len(shd) != len(seq) {
		return fmt.Sprintf("candidate sets differ: %d vs %d", len(seq), len(shd)), true
	}
	return "", false
}

// TestShardPropertyRandomCorpora is the randomized half of the shard
// equivalence proof: ~50 (generator, size, seed) corpora, each checked
// with seed-derived shard/spill/worker options. A failure is shrunk to
// the smallest reproducing size before reporting, so the log always
// names a minimal (kind, n, seed, options) repro.
func TestShardPropertyRandomCorpora(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized corpus sweep skipped in -short mode")
	}
	gens := propGenerators()
	var corpora []propCorpus
	for kind := range gens {
		for i := 0; i < 17; i++ {
			corpora = append(corpora, propCorpus{
				kind: kind,
				n:    3 + (i*7+11)%28, // 3..30, scattered
				seed: int64(i*13 + 5), // deterministic, distinct
				gen:  gens[kind],
			})
		}
	}
	if len(corpora) < 50 {
		t.Fatalf("only %d corpora generated", len(corpora))
	}
	for _, c := range corpora {
		opts := shardPropOptions(c)
		msg, bad := shardDisagrees(t, c, opts)
		if !bad {
			continue
		}
		// Shrink: smallest n of the same kind/seed that still disagrees.
		min := c
		minMsg := msg
		for n := 0; n < c.n; n++ {
			small := c
			small.n = n
			if m, b := shardDisagrees(t, small, opts); b {
				min, minMsg = small, m
				break
			}
		}
		t.Fatalf("sharded sweep diverged; minimal repro %s shards=%d spill=%d workers=%d:\n%s",
			min.label(), opts.Shards, opts.SpillThresholdRows, opts.PairWorkers, minMsg)
	}
}

// TestShardPropertyTinyTables pins the degenerate end of the planner
// domain on every generator: empty, single-row, and two-row tables
// under shard counts from 1 to far beyond the rows must all match the
// sequential engine (an empty table plans no shards at all; a one-row
// table owns its row in a single shard with no pairs).
func TestShardPropertyTinyTables(t *testing.T) {
	gens := propGenerators()
	for kind, gen := range gens {
		for n := 0; n <= 2; n++ {
			for _, shards := range []int{1, 2, 5, 100} {
				c := propCorpus{kind: kind, n: n, seed: 42, gen: gen}
				if msg, bad := shardDisagrees(t, c, core.Options{Shards: shards}); bad {
					t.Errorf("%s shards=%d: %s", c.label(), shards, msg)
				}
			}
		}
	}
}
