package core

import (
	"fmt"
	"runtime"
	"sync"
)

// This file parallelizes the inside of one key pass. The sliding
// window enumerates pairs in a fixed order (the sorted GK order), and
// everything order-sensitive — dedup against the compared set, budget
// polling, stat counters, PairObserver callbacks, the duplicate pair
// list that feeds checkpoints and transitive closure — stays on the
// enumerating goroutine. Only the pure pair comparison (Defs. 2 and 3
// plus classification, a function of the two rows alone) fans out:
// pairs are buffered into batches, a batch is sharded across workers,
// and the verdicts are merged back in enumeration order. The merge
// order makes every observable — clusters, Stats, spans, checkpoints,
// pair observations — byte-identical to the sequential run.

// pairBatchSize is how many window pairs are buffered before the
// worker pool runs them. Large enough to amortize goroutine wake-ups,
// small enough that budget interruptions stay responsive (a batch is
// at most one flush behind the enumeration).
const pairBatchSize = 2048

// pairVerdict carries one window pair through the compare stage: the
// rows going in, the comparison outcome coming out. skip marks a pair
// the producer already knows was compared (a sharded sweep checking
// its compared-set snapshot): the compare stage leaves it untouched
// and the consumer replays only its enumeration bookkeeping.
type pairVerdict struct {
	a, b     *GKRow
	skip     bool
	odSim    float64
	descSim  float64
	hasDesc  bool
	dup      bool
	filtered bool
	err      error
	panicked *pairPanic
}

// pairPanic preserves a panic raised inside a worker goroutine so the
// merge loop can re-raise it on the enumerating goroutine, where the
// candidate-level recover turns it into a *PanicError. The worker's
// stack rides along — the re-raised panic's own stack only shows the
// merge loop.
type pairPanic struct {
	val   any
	stack []byte
}

func (p *pairPanic) String() string {
	return fmt.Sprintf("%v\n\nworker stack:\n%s", p.val, p.stack)
}

// sweeper batches window pairs and applies compare/merge with the
// ordering contract above. workers == 0 bypasses batching entirely:
// add() compares and merges inline, reproducing the sequential loop
// with no buffering or goroutines. workers >= 1 runs compare on that
// many goroutines per batch (1 exercises the full batching machinery
// on a single worker — same answers, useful for differential tests).
type sweeper struct {
	workers int
	compare func(*pairVerdict)
	merge   func(*pairVerdict) error
	batch   []pairVerdict
	// shipPanics delivers a worker panic to merge as verdict data
	// (v.panicked set) instead of re-raising it here. Shard workers set
	// it: their enumerating goroutine has no candidate-level recover, so
	// the panic must travel to the coordinator as an event and re-raise
	// at its replay position. The inline workers==0 path then also runs
	// compare through compareSafe, for the same reason.
	shipPanics bool
}

func newSweeper(workers int, compare func(*pairVerdict), merge func(*pairVerdict) error) *sweeper {
	s := &sweeper{workers: workers, compare: compare, merge: merge}
	if workers > 0 {
		s.batch = make([]pairVerdict, 0, pairBatchSize)
	}
	return s
}

// add enqueues one pair in enumeration order, flushing when the batch
// fills. An error is a hard comparison error already merged in order;
// the caller aborts exactly as the sequential loop would.
func (s *sweeper) add(a, b *GKRow) error {
	return s.addVerdict(pairVerdict{a: a, b: b})
}

// addVerdict is add for a caller-constructed verdict — the sharded
// sweep uses it to feed pre-marked skip pairs through the same
// batching machinery.
func (s *sweeper) addVerdict(v pairVerdict) error {
	if s.workers == 0 {
		if s.shipPanics {
			s.compareSafe(&v)
		} else {
			s.compare(&v)
		}
		return s.merge(&v)
	}
	s.batch = append(s.batch, v)
	if len(s.batch) >= pairBatchSize {
		return s.flush()
	}
	return nil
}

// finish drains any buffered pairs. It must run before the pass (or an
// interruption of it) is accounted: buffered pairs were already
// counted by the enumeration, so their verdicts belong to this pass.
func (s *sweeper) finish() error {
	if len(s.batch) == 0 {
		return nil
	}
	return s.flush()
}

func (s *sweeper) flush() error {
	n := len(s.batch)
	workers := s.workers
	if workers > n {
		workers = n
	}
	if workers > 1 {
		// Contiguous shards, one per worker: pair comparison cost is
		// roughly uniform, so equal-size ranges balance well without the
		// contention of a shared index.
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := n*w/workers, n*(w+1)/workers
			wg.Add(1)
			go func(chunk []pairVerdict) {
				defer wg.Done()
				for i := range chunk {
					s.compareSafe(&chunk[i])
				}
			}(s.batch[lo:hi])
		}
		wg.Wait()
	} else {
		for i := range s.batch {
			s.compareSafe(&s.batch[i])
		}
	}
	// Merge in enumeration order. A panic re-raises at the position the
	// sequential run would have panicked (unless shipPanics hands it to
	// merge as data); an error stops the merge at the position the
	// sequential run would have returned it.
	var err error
	for i := range s.batch {
		v := &s.batch[i]
		if err != nil {
			break
		}
		if v.panicked != nil && !s.shipPanics {
			s.batch = s.batch[:0]
			panic(v.panicked)
		}
		err = s.merge(v)
	}
	s.batch = s.batch[:0]
	return err
}

// compareSafe runs compare, converting a panic into a pairVerdict
// field instead of unwinding the worker goroutine (which would crash
// the process — the candidate-level recover lives on another stack).
func (s *sweeper) compareSafe(v *pairVerdict) {
	defer func() {
		if r := recover(); r != nil {
			v.panicked = &pairPanic{val: r, stack: workerStack()}
		}
	}()
	s.compare(v)
}

func workerStack() []byte {
	buf := make([]byte, 8192)
	return buf[:runtime.Stack(buf, false)]
}

// pairWorkerCount resolves Options.PairWorkers: negative means one
// worker per available CPU, 0 means the sequential inline path.
func (o *Options) pairWorkerCount() int {
	if o.PairWorkers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.PairWorkers
}
