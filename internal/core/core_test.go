package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/xmltree"
)

// Fig. 2(a): the Matrix movie with @ID and @year; Table 1's key
// definitions must yield MT99 and 5MA (Sec. 3.1).
const matrixXML = `
<movie_database>
  <movies>
    <movie ID="5632" year="1999">
      <title>Matrix</title>
      <people>
        <person>Keanu Reeves</person>
        <person>Laurence Fishburne</person>
      </people>
    </movie>
  </movies>
</movie_database>`

func mustDoc(t *testing.T, s string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustValidate(t *testing.T, cfg *config.Config) *config.Config {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestGenerateKeysPaperExample(t *testing.T) {
	doc := mustDoc(t, matrixXML)
	cfg := mustValidate(t, config.Table1Movie())
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gk := kg.Tables["movie"]
	if gk == nil || len(gk.Rows) != 1 {
		t.Fatalf("GK_movie rows = %v", gk)
	}
	row := gk.Rows[0]
	if row.Keys[0] != "MT99" {
		t.Errorf("key1 = %q, want MT99", row.Keys[0])
	}
	if row.Keys[1] != "5MA" {
		t.Errorf("key2 = %q, want 5MA", row.Keys[1])
	}
	// OD values: title and @year (Table 1 uses paths 1 and 3).
	if len(row.OD) != 2 || row.OD[0][0] != "Matrix" || row.OD[1][0] != "1999" {
		t.Errorf("OD = %v", row.OD)
	}
	if kg.Duration <= 0 {
		t.Error("key generation duration not measured")
	}
}

func TestGKTableRowLookup(t *testing.T) {
	doc := mustDoc(t, matrixXML)
	cfg := mustValidate(t, config.Table1Movie())
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gk := kg.Tables["movie"]
	eid := gk.Rows[0].EID
	if gk.Row(eid) == nil {
		t.Error("Row lookup by EID failed")
	}
	if gk.Row(-5) != nil {
		t.Error("Row lookup for unknown EID should be nil")
	}
}

// movieConfig builds a two-level movie/person configuration used by
// the bottom-up tests: person is deduplicated first, movie similarity
// may then use person clusters.
func movieConfig(rule config.RuleKind) *config.Config {
	return &config.Config{
		Candidates: []config.Candidate{
			{
				Name:  "movie",
				XPath: "movie_database/movies/movie",
				Paths: []config.PathDef{{ID: 1, RelPath: "title/text()"}},
				OD:    []config.ODEntry{{PathID: 1, Relevance: 1}},
				Keys: []config.KeyDef{
					{Name: "title", Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "K1-K4"}}},
				},
				Rule:          rule,
				Threshold:     0.75,
				ODThreshold:   0.75,
				DescThreshold: 0.3,
				Window:        5,
			},
			{
				Name:  "person",
				XPath: "movie_database/movies/movie/people/person",
				Paths: []config.PathDef{{ID: 1, RelPath: "text()"}},
				OD:    []config.ODEntry{{PathID: 1, Relevance: 1}},
				Keys: []config.KeyDef{
					{Name: "name", Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "C1-C6"}}},
				},
				Threshold: 0.85,
				Window:    5,
			},
		},
	}
}

func TestProcessingOrderBottomUp(t *testing.T) {
	cfg := mustValidate(t, movieConfig(config.RuleEither))
	order := ProcessingOrder(cfg)
	if len(order) != 2 {
		t.Fatalf("order = %d candidates", len(order))
	}
	if order[0].Name != "person" || order[1].Name != "movie" {
		t.Errorf("order = %q then %q, want person then movie", order[0].Name, order[1].Name)
	}
}

func TestSchemaRelations(t *testing.T) {
	cfg := mustValidate(t, movieConfig(config.RuleEither))
	movie, person := cfg.Candidate("movie"), cfg.Candidate("person")
	if p := SchemaParent(cfg, person); p != movie {
		t.Errorf("SchemaParent(person) = %v", p)
	}
	if p := SchemaParent(cfg, movie); p != nil {
		t.Errorf("SchemaParent(movie) = %v, want nil", p)
	}
	ch := SchemaChildren(cfg, movie)
	if len(ch) != 1 || ch[0] != person {
		t.Errorf("SchemaChildren(movie) = %v", ch)
	}
}

func TestDescendantRegistration(t *testing.T) {
	doc := mustDoc(t, matrixXML)
	cfg := mustValidate(t, movieConfig(config.RuleEither))
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	movieRow := kg.Tables["movie"].Rows[0]
	if got := len(movieRow.Desc["person"]); got != 2 {
		t.Fatalf("movie registered %d person descendants, want 2", got)
	}
	for _, eid := range movieRow.Desc["person"] {
		if kg.Tables["person"].Row(eid) == nil {
			t.Errorf("descendant EID %d not in person GK table", eid)
		}
	}
}

// Fig. 2(b): two <movie> elements whose titles differ but which share
// two duplicate actors. Under the two-threshold rule, descendant
// cluster overlap alone classifies them as duplicates.
const sharedActorsXML = `
<movie_database>
  <movies>
    <movie>
      <title>Matrix</title>
      <people>
        <person>Keanu Reeves</person>
        <person>Laurence Fishburne</person>
        <person>Don Davis</person>
      </people>
    </movie>
    <movie>
      <title>The Threat of the Machines</title>
      <people>
        <person>Keanu Reeves</person>
        <person>Don Davies</person>
        <person>Hugo Weaving</person>
      </people>
    </movie>
  </movies>
</movie_database>`

func TestBottomUpDetectsViaDescendants(t *testing.T) {
	doc := mustDoc(t, sharedActorsXML)
	cfg := mustValidate(t, movieConfig(config.RuleEither))
	res, err := Run(doc, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Person clusters: Keanu Reeves x2 one cluster, Don Davis/Davies
	// one cluster, Fishburne and Weaving singletons => 4 clusters of 6.
	persons := res.Clusters["person"]
	if persons.Elements() != 6 {
		t.Fatalf("person elements = %d, want 6", persons.Elements())
	}
	if got := len(persons.NonSingletons()); got != 2 {
		t.Fatalf("person duplicate clusters = %d, want 2 (%s)", got, persons)
	}
	// Movie pair: OD similarity is low (different titles) but the
	// descendant overlap is 2 shared clusters / 4 total = 0.5 >= 0.3.
	movies := res.Clusters["movie"]
	if got := len(movies.NonSingletons()); got != 1 {
		t.Fatalf("movies not merged via descendants: %s", movies)
	}
}

func TestDescendantsDisabledMissesThem(t *testing.T) {
	doc := mustDoc(t, sharedActorsXML)
	cfg := mustValidate(t, movieConfig(config.RuleEither))
	res, err := Run(doc, cfg, Options{DisableDescendants: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Clusters["movie"].NonSingletons()); got != 0 {
		t.Fatalf("OD-only run merged movies with different titles: %s", res.Clusters["movie"])
	}
}

func TestPerCandidateDescendantsFlag(t *testing.T) {
	doc := mustDoc(t, sharedActorsXML)
	cfg := movieConfig(config.RuleEither)
	no := false
	cfg.Candidates[0].UseDescendants = &no
	mustValidate(t, cfg)
	res, err := Run(doc, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Clusters["movie"].NonSingletons()); got != 0 {
		t.Fatal("UseDescendants=false should disable descendant similarity")
	}
}

const typoMoviesXML = `
<movie_database>
  <movies>
    <movie><title>Mask of Zorro</title><people><person>Antonio Banderas</person></people></movie>
    <movie><title>Msk of Zorro</title><people><person>Antonio Banderas</person></people></movie>
    <movie><title>Twelve Monkeys</title><people><person>Bruce Willis</person></people></movie>
  </movies>
</movie_database>`

func TestCombinedRuleDetectsTypos(t *testing.T) {
	doc := mustDoc(t, typoMoviesXML)
	cfg := mustValidate(t, movieConfig(config.RuleCombined))
	res, err := Run(doc, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	movies := res.Clusters["movie"]
	dups := movies.NonSingletons()
	if len(dups) != 1 || len(dups[0].Members) != 2 {
		t.Fatalf("movie clusters:\n%s", movies)
	}
	// Twelve Monkeys must remain a singleton.
	if movies.Len() != 2 {
		t.Errorf("cluster count = %d, want 2", movies.Len())
	}
}

func TestStatsAccounting(t *testing.T) {
	doc := mustDoc(t, typoMoviesXML)
	cfg := mustValidate(t, movieConfig(config.RuleCombined))
	res, err := Run(doc, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ms := res.Stats.Candidates["movie"]
	if ms.Rows != 3 {
		t.Errorf("rows = %d, want 3", ms.Rows)
	}
	if ms.Comparisons == 0 || ms.Comparisons > 3 {
		t.Errorf("comparisons = %d, want in (0,3]", ms.Comparisons)
	}
	if ms.WindowPairs < ms.Comparisons {
		t.Errorf("window pairs %d < comparisons %d", ms.WindowPairs, ms.Comparisons)
	}
	if ms.DuplicatePairs != 1 {
		t.Errorf("duplicate pairs = %d, want 1", ms.DuplicatePairs)
	}
	if ms.Clusters != 2 || ms.NonSingleton != 1 {
		t.Errorf("clusters = %d/%d, want 2/1", ms.Clusters, ms.NonSingleton)
	}
	total := res.Stats
	if total.Comparisons < ms.Comparisons {
		t.Error("total comparisons below candidate comparisons")
	}
	if total.DuplicateDetection() != total.SlidingWindow+total.TransitiveClosure {
		t.Error("DD != SW + TC")
	}
}

func TestPairObserver(t *testing.T) {
	doc := mustDoc(t, typoMoviesXML)
	cfg := mustValidate(t, movieConfig(config.RuleCombined))
	var obs []PairObservation
	_, err := Run(doc, cfg, Options{PairObserver: func(p PairObservation) { obs = append(obs, p) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) == 0 {
		t.Fatal("no observations")
	}
	movieDups := 0
	for _, p := range obs {
		if p.A >= p.B {
			t.Errorf("observation pair not ordered: %+v", p)
		}
		if p.ODSim < 0 || p.ODSim > 1 {
			t.Errorf("od sim out of range: %+v", p)
		}
		if p.Duplicate && p.Candidate == "movie" {
			movieDups++
		}
	}
	if movieDups != 1 {
		t.Errorf("observed %d movie duplicate classifications, want 1", movieDups)
	}
}

// Multi-pass: a pair whose first key sorts it far apart is caught by
// the second key (Sec. 2.2's motivation for multiple keys).
func TestMultiPassRecoversBadFirstKey(t *testing.T) {
	// Titles differ in the first word so a title-prefix key separates
	// them; the year key brings them together.
	xml := `
<movie_database>
  <movies>
    <movie year="1984"><title>Amadeus</title></movie>
    <movie year="1999"><title>Matrix</title></movie>
    <movie year="1985"><title>Brazil</title></movie>
    <movie year="1999"><title>Zatrix</title></movie>
    <movie year="1986"><title>Castle</title></movie>
    <movie year="1987"><title>Dune Warriors</title></movie>
    <movie year="1988"><title>Solaris</title></movie>
    <movie year="1989"><title>Tron</title></movie>
    <movie year="1990"><title>Vertigo</title></movie>
  </movies>
</movie_database>`
	mk := func(keys []config.KeyDef) *config.Config {
		return &config.Config{Candidates: []config.Candidate{{
			Name:  "movie",
			XPath: "movie_database/movies/movie",
			Paths: []config.PathDef{
				{ID: 1, RelPath: "title/text()"},
				{ID: 2, RelPath: "@year"},
			},
			OD:        []config.ODEntry{{PathID: 1, Relevance: 1}},
			Keys:      keys,
			Threshold: 0.8,
			Window:    2,
		}}}
	}
	titleKey := config.KeyDef{Name: "title", Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "C1-C6"}}}
	yearKey := config.KeyDef{Name: "year", Parts: []config.KeyPart{{PathID: 2, Order: 1, Pattern: "D1-D4"}, {PathID: 1, Order: 2, Pattern: "C2,C3"}}}

	doc := mustDoc(t, xml)
	single, err := Run(doc, mustValidate(t, mk([]config.KeyDef{titleKey})), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(single.Clusters["movie"].NonSingletons()); got != 0 {
		t.Fatalf("single-pass title key should miss Matrix/Zatrix at window 2, got %d clusters", got)
	}
	multi, err := Run(doc, mustValidate(t, mk([]config.KeyDef{titleKey, yearKey})), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(multi.Clusters["movie"].NonSingletons()); got != 1 {
		t.Fatalf("multi-pass should find Matrix/Zatrix, got %d clusters:\n%s", got, multi.Clusters["movie"])
	}
}

// With a window as large as the table, SXNM degenerates to all-pairs
// comparison; the same duplicates must be found as with any larger
// window.
func TestWindowSaturation(t *testing.T) {
	doc := mustDoc(t, typoMoviesXML)
	cfg := movieConfig(config.RuleCombined)
	cfg.Candidates[0].Window = 50
	cfg.Candidates[1].Window = 50
	mustValidate(t, cfg)
	res, err := Run(doc, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ms := res.Stats.Candidates["movie"]
	if ms.Comparisons != 3 { // C(3,2)
		t.Errorf("saturated comparisons = %d, want 3", ms.Comparisons)
	}
	if got := len(res.Clusters["movie"].NonSingletons()); got != 1 {
		t.Errorf("duplicates = %d, want 1", got)
	}
}

func TestRuleBoth(t *testing.T) {
	doc := mustDoc(t, sharedActorsXML)
	cfg := movieConfig(config.RuleBoth)
	cfg.Candidates[0].ODThreshold = 0.2 // lenient OD...
	cfg.Candidates[0].DescThreshold = 0.9
	mustValidate(t, cfg)
	res, err := Run(doc, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// OD sim of the two titles is below 0.2? "Matrix" vs "The Threat
	// of the Machines" is far apart, so no duplicates either way; the
	// point is that a high desc threshold under RuleBoth blocks the
	// descendant-only match that RuleEither would accept.
	if got := len(res.Clusters["movie"].NonSingletons()); got != 0 {
		t.Fatalf("RuleBoth with desc threshold 0.9 should reject, got %d", got)
	}
}

func TestDetectMissingTable(t *testing.T) {
	cfg := mustValidate(t, movieConfig(config.RuleCombined))
	kg := &KeyGenResult{Tables: map[string]*GKTable{}}
	if _, err := Detect(kg, cfg, Options{}); err == nil {
		t.Fatal("Detect without GK tables should fail")
	}
}

func TestEmptyDocument(t *testing.T) {
	doc := mustDoc(t, `<movie_database><movies/></movie_database>`)
	cfg := mustValidate(t, movieConfig(config.RuleCombined))
	res, err := Run(doc, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters["movie"].Len() != 0 {
		t.Error("no movies expected")
	}
	if res.Stats.Comparisons != 0 {
		t.Error("no comparisons expected")
	}
}

func TestIsPlainPath(t *testing.T) {
	cases := []struct {
		p    string
		want bool
	}{
		{"a/b/c", true},
		{"a", true},
		{"//a", false},
		{"a/b[1]", false},
		{"a/*", false},
		{"a/@x", false},
		{"a/text()", false},
	}
	for _, c := range cases {
		if got := isPlainPath(c.p); got != c.want {
			t.Errorf("isPlainPath(%q) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestDescendantAxisCandidate(t *testing.T) {
	// Candidates may be addressed with //; matching falls back to
	// node-set resolution.
	cfg := &config.Config{Candidates: []config.Candidate{{
		Name:  "person",
		XPath: "//person",
		Paths: []config.PathDef{{ID: 1, RelPath: "text()"}},
		OD:    []config.ODEntry{{PathID: 1, Relevance: 1}},
		Keys: []config.KeyDef{
			{Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "C1-C6"}}},
		},
		Threshold: 0.85,
		Window:    4,
	}}}
	mustValidate(t, cfg)
	doc := mustDoc(t, sharedActorsXML)
	res, err := Run(doc, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters["person"].Elements() != 6 {
		t.Fatalf("person elements = %d, want 6", res.Clusters["person"].Elements())
	}
	if got := len(res.Clusters["person"].NonSingletons()); got != 2 {
		t.Errorf("person duplicate clusters = %d, want 2", got)
	}
}

func TestPackPair(t *testing.T) {
	if packPair(1, 2) != packPair(2, 1) {
		t.Error("packPair must be order-insensitive")
	}
	if packPair(1, 2) == packPair(1, 3) {
		t.Error("packPair must distinguish pairs")
	}
}
