//go:build smallshard

package core

// forcedShardCount under the smallshard tag asks for far more shards
// than any table has rows; the planner clamps it to one owned row per
// shard — the minimum legal shard size, maximizing halo overlap and
// boundary traffic. The entire existing test suite — engine,
// integration, differential — then doubles as a shard equivalence
// suite: `go test -tags=smallshard ./...` (the CI smallshard leg) must
// stay as green as the untagged run.
const forcedShardCount = 1 << 30
