package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/similarity"
)

// This file scales one key pass out across shards. The sorted GK order
// of a pass is split into contiguous owned ranges; each shard reads
// its range plus a halo of the preceding keep-1 rows (the maximum
// extent a window can look back, adaptive widening included) and runs
// the ordinary window sweep over it. Ownership is keyed by the current
// (right-hand) row of a pair: halo rows feed the ring for context but
// are never swept by the reading shard, so every window pair is
// enumerated by exactly one shard and the concatenation of the shard
// event streams, in shard order, is precisely the sequential pair
// order. The coordinator replays that concatenation one event at a
// time, applying the exact ordered bookkeeping of the sequential
// loop — WindowPairs, metric flush cadence, budget polls, compared-set
// dedup, comparison charges, merge — so clusters, Stats, checkpoints,
// PairObserver calls, and interrupted partial results are
// byte-identical to the unsharded engine.
//
// Shards pre-filter against a snapshot of the compared set taken at
// pass start. Within one pass each unordered row pair occurs at most
// once across all shards (each is keyed by a unique current-row
// index), so a pair absent from the snapshot cannot be inserted by a
// concurrent shard before its own replay: snapshot-seen and
// live-seen coincide, and the replay verifies that invariant.

const (
	// shardBatchEvents is how many pair events a shard buffers before
	// shipping them to the coordinator.
	shardBatchEvents = 1024
	// shardChanDepth bounds the batches a shard may run ahead of the
	// coordinator's replay position.
	shardChanDepth = 4
	// shardSpillFDBudget caps the file descriptors a sharded spilling
	// pass holds open at once: every in-flight shard's range reader
	// keeps all of the pass's run files open, so the in-flight window
	// shrinks as the run count grows (down to one shard at a time for
	// pathologically fragmented spills).
	shardSpillFDBudget = 4096
)

// errShardAbandoned tells a shard worker the coordinator stopped
// consuming (an earlier shard erred or the replay was interrupted).
// The worker unwinds silently; the coordinator already has its error.
var errShardAbandoned = errors.New("core: shard abandoned")

// shardCount resolves Options.Shards: negative means one shard per
// available CPU, 0 means the unsharded path.
func (o *Options) shardCount() int {
	if o.Shards < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Shards
}

// shardRange is one shard's slice of a pass's sorted row order.
type shardRange struct {
	index     int
	haloStart int // first row read, for window context only
	start     int // first row owned: pairs (j, i) with i in [start, end)
	end       int // one past the last owned row
}

// planShards splits n sorted rows into at most want contiguous owned
// ranges. The ranges partition [0, n) exactly — every row is owned by
// exactly one shard — and each halo reaches back keep-1 rows (clamped
// at 0), the widest lookback any window can make. want is clamped to
// [1, n] so every planned shard owns at least one row; n == 0 plans
// nothing.
func planShards(n, keep, want int) []shardRange {
	if n <= 0 {
		return nil
	}
	s := want
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	out := make([]shardRange, s)
	for i := 0; i < s; i++ {
		start, end := n*i/s, n*(i+1)/s
		halo := start - (keep - 1)
		if halo < 0 {
			halo = 0
		}
		out[i] = shardRange{index: i, haloStart: halo, start: start, end: end}
	}
	return out
}

// shardBatch is one message from a shard worker to the coordinator: a
// run of pair events in window order, and on the final batch (fin) the
// shard's outcome — its source error if it failed, and the count of
// halo pairs it observed but left to the owning shard.
type shardBatch struct {
	events      []pairVerdict
	fin         bool
	err         error
	haloDeduped int64
}

// shardEnv bundles the per-candidate state a sharded pass needs.
// Everything mutable (cstats, compared, budget charges, the merge
// closure's pair list and counters) is touched only by the
// coordinator's replay; workers read the immutable table, options, and
// the concurrency-safe similarity cache.
type shardEnv struct {
	t        *GKTable
	cand     *config.Candidate
	opts     Options
	cache    *similarity.Cache
	useDesc  bool
	w, keep  int
	spiller  *candSpiller
	order    []int // shared in-memory sort permutation; nil when spilling
	bud      *budget
	m        *obs.Metrics
	cstats   *CandidateStats
	compared map[uint64]struct{}
	flushObs func()
	merge    func(*pairVerdict) error
}

// replay applies one shard event with the sequential loop's exact
// ordered bookkeeping. Skip events replay only the enumeration half
// (WindowPairs, metric flush, budget poll, dedup); compute events
// additionally insert into the compared set, charge the comparison
// budget, and merge. A worker panic re-raises after the charge — the
// position the sequential run would have panicked, so an interruption
// tripping at the same pair still wins.
func (e *shardEnv) replay(v *pairVerdict) error {
	e.cstats.WindowPairs++
	if e.m != nil && e.cstats.WindowPairs&0xFFF == 0 {
		e.flushObs()
	}
	if err := e.bud.poll(e.cstats.WindowPairs); err != nil {
		return err
	}
	key := packPair(v.a.EID, v.b.EID)
	if _, seen := e.compared[key]; seen {
		if !v.skip {
			return fmt.Errorf("core: candidate %q: shard replay: pair (%d,%d) compared twice",
				e.cand.Name, v.a.EID, v.b.EID)
		}
		return nil
	}
	if v.skip {
		return fmt.Errorf("core: candidate %q: shard replay: pair (%d,%d) marked seen but never compared",
			e.cand.Name, v.a.EID, v.b.EID)
	}
	e.compared[key] = struct{}{}
	if err := e.bud.addComparison(); err != nil {
		return err
	}
	if v.panicked != nil {
		panic(v.panicked)
	}
	return e.merge(v)
}

// runShardedPass executes one key pass sharded. An interruption error
// (budget, deadline, cancellation) or hard error returns with the
// candidate state exactly as the sequential loop would leave it at the
// same point; the caller applies the usual interrupt or abort path.
func runShardedPass(env *shardEnv, pass, want int, swSpan, passSpan *obs.Span) error {
	n := len(env.t.Rows)
	shards := planShards(n, env.keep, want)

	// inFlight bounds how many shard workers run concurrently. Workers
	// start in shard order and the coordinator consumes in shard order,
	// so the active window always contains the shard being replayed —
	// no starvation, bounded sources, rings, and batch buffers.
	inFlight := runtime.GOMAXPROCS(0)
	if inFlight < 2 {
		inFlight = 2
	}

	// Resolve the pass's row order once, then hand each shard a reader
	// over its own extent: a range merge over the shared run files when
	// spilling, a sub-slice of the shared sort permutation in memory.
	var open func(sr shardRange) (rowSource, error)
	if env.spiller != nil {
		// The external sort does real I/O before the first pair is
		// enumerated; check the budget around it, as the sequential
		// spill path does.
		if env.bud.active {
			if err := env.bud.check(); err != nil {
				return err
			}
		}
		cfg, runs, err := env.spiller.runsFor(pass, swSpan, env.bud)
		if err != nil {
			return err
		}
		if c := shardSpillFDBudget / (len(runs) + 1); c < inFlight {
			inFlight = c
		}
		if inFlight < 1 {
			inFlight = 1
		}
		open = func(sr shardRange) (rowSource, error) {
			return env.spiller.rangeSource(cfg, runs, pass, int64(sr.haloStart), int64(sr.end))
		}
	} else {
		order := env.order
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return gkRowLess(&env.t.Rows[order[a]], &env.t.Rows[order[b]], pass)
		})
		open = func(sr shardRange) (rowSource, error) {
			return &memSource{t: env.t, order: order[sr.haloStart:sr.end]}, nil
		}
	}
	if len(shards) == 0 {
		return nil // empty table: no rows, no pairs
	}

	snapshot := make(map[uint64]struct{}, len(env.compared))
	for k := range env.compared {
		snapshot[k] = struct{}{}
	}

	done := make(chan struct{})
	chans := make([]chan shardBatch, len(shards))
	var wg sync.WaitGroup
	started := 0
	startNext := func() {
		if started >= len(shards) {
			return
		}
		sr := shards[started]
		ch := make(chan shardBatch, shardChanDepth)
		chans[started] = ch
		started++
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(ch)
			shardWorker(env, pass, sr, snapshot, open, ch, done)
		}()
	}
	for k := 0; k < inFlight; k++ {
		startNext()
	}
	// teardown stops and joins every started worker; idempotent so the
	// happy path can join explicitly while error returns and replay
	// panics fall through to the deferred call.
	torn := false
	teardown := func() {
		if torn {
			return
		}
		torn = true
		close(done)
		for _, ch := range chans[:started] {
			for range ch { //nolint:revive // drain so blocked senders unwind
			}
		}
		wg.Wait()
	}
	defer teardown()

	for si := range shards {
		sr := shards[si]
		sp := passSpan.Child(obs.SpanShard,
			obs.Int(obs.AttrShard, sr.index),
			obs.Int(obs.AttrShardStart, sr.start),
			obs.Int(obs.AttrShardEnd, sr.end),
			obs.Int(obs.AttrHaloRows, sr.start-sr.haloStart))
		finished := false
		for b := range chans[si] {
			for i := range b.events {
				if err := env.replay(&b.events[i]); err != nil {
					sp.End()
					return err
				}
			}
			if b.fin {
				if b.err != nil {
					sp.End()
					return b.err
				}
				if env.m != nil {
					env.m.ShardSweeps.Add(1)
					env.m.HaloPairsDeduped.Add(b.haloDeduped)
				}
				sp.SetAttr(obs.Int64(obs.AttrHaloDeduped, b.haloDeduped))
				finished = true
			}
		}
		sp.End()
		if !finished {
			return fmt.Errorf("core: candidate %q: shard %d of pass %d ended without a final batch",
				env.cand.Name, sr.index, pass)
		}
		// This shard is fully replayed; admit the next worker into the
		// in-flight window.
		startNext()
	}
	teardown()
	return nil
}

// shardWorker sweeps one shard's extent and streams the resulting pair
// events to the coordinator. It performs no ordered bookkeeping of its
// own: pairs already in the pass-start compared snapshot ship as skip
// events, everything else is compared (through the shard's own pair
// worker pool when configured) and shipped with its verdict. Panics in
// comparisons travel inside the verdict (shipPanics) and re-raise at
// their replay position. A hard source error discards buffered
// verdicts and ships only the error — exactly the sequential loop,
// which returns without draining its sweeper on a source error.
func shardWorker(env *shardEnv, pass int, sr shardRange, snapshot map[uint64]struct{}, open func(shardRange) (rowSource, error), out chan<- shardBatch, done <-chan struct{}) {
	send := func(b shardBatch) error {
		select {
		case out <- b:
			return nil
		case <-done:
			return errShardAbandoned
		}
	}
	var pending []pairVerdict
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		b := shardBatch{events: pending}
		pending = nil
		return send(b)
	}

	src, err := open(sr)
	if err != nil {
		_ = send(shardBatch{fin: true, err: err})
		return
	}
	defer src.close()

	ring := newRowRing(env.keep)
	sw := newSweeper(env.opts.pairWorkerCount(),
		func(v *pairVerdict) {
			if v.skip {
				return
			}
			v.odSim, v.descSim, v.hasDesc, v.dup, v.filtered, v.err =
				comparePair(env.t, v.a, v.b, env.useDesc, env.opts, env.cache)
		},
		func(v *pairVerdict) error {
			pending = append(pending, *v)
			if len(pending) >= shardBatchEvents {
				return flush()
			}
			return nil
		})
	sw.shipPanics = true

	var haloDeduped int64
	w := env.w
	i := sr.haloStart - 1
	for {
		row, rerr := src.next()
		if rerr != nil {
			pending = nil
			_ = send(shardBatch{fin: true, err: rerr})
			return
		}
		if row == nil {
			break
		}
		i++
		ring.push(i, row)
		if i < sr.start {
			// Halo row: its pairs are owned by the preceding shard.
			// Count the base-window pairs visible in this shard's read
			// extent so the dedup is observable in the report.
			lo := i - (w - 1)
			if lo < sr.haloStart {
				lo = sr.haloStart
			}
			haloDeduped += int64(i - lo)
			continue
		}
		if i == 0 {
			continue
		}
		lo := i - (w - 1)
		if lo < 0 {
			lo = 0
		}
		if env.cand.AdaptiveKeySim > 0 {
			lo = adaptiveLow(ring, row, i, lo, pass, env.cand)
		}
		for j := lo; j < i; j++ {
			v := pairVerdict{a: ring.at(j), b: row}
			if _, seen := snapshot[packPair(v.a.EID, v.b.EID)]; seen {
				v.skip = true
			}
			if err := sw.addVerdict(v); err != nil {
				return // abandoned mid-flush; coordinator is unwinding
			}
		}
	}
	if err := sw.finish(); err != nil {
		return
	}
	if err := flush(); err != nil {
		return
	}
	_ = send(shardBatch{fin: true, haloDeduped: haloDeduped})
}
