package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/runlimit"
	"repro/internal/xmltree"
)

// Limits bounds a run; see runlimit.Limits. The zero value is
// unlimited and reproduces the paper's behavior exactly.
type Limits = runlimit.Limits

// Typed interruption causes, re-exported for callers that already
// import core. Match with errors.Is/As.
var (
	ErrCanceled         = runlimit.ErrCanceled
	ErrDeadlineExceeded = runlimit.ErrDeadlineExceeded
	ErrLimitExceeded    = runlimit.ErrLimitExceeded
)

// LimitError names the breached limit and the observed value.
type LimitError = runlimit.LimitError

// Phases of a run, as reported in Incomplete.Phase.
const (
	PhaseKeyGen            = "key-generation"
	PhaseSlidingWindow     = "sliding-window"
	PhaseTransitiveClosure = "transitive-closure"
)

// Incomplete records how far an interrupted run got. It is attached to
// the partial Result a canceled, timed-out, or limit-breaching run
// returns, so no completed work is discarded.
type Incomplete struct {
	// Cause is the typed interruption: ErrCanceled,
	// ErrDeadlineExceeded, or a *LimitError (match with errors.Is/As).
	Cause error
	// Phase names the stage that was cut short: PhaseKeyGen,
	// PhaseSlidingWindow, or PhaseTransitiveClosure.
	Phase string
	// Completed lists the candidates whose cluster sets are final and
	// present in Result.Clusters, in processing order.
	Completed []string
	// Interrupted lists the candidates whose detection was cut short;
	// their clusters are absent. Candidates in neither list never
	// started.
	Interrupted []string
	// KeyPass is the zero-based key pass in progress when a sliding
	// window was interrupted, -1 when not applicable.
	KeyPass int
}

// PanicError reports a panic recovered inside a detection worker
// (Options.Parallel). The run's sibling workers are canceled and the
// panic surfaces as an ordinary error instead of crashing the caller.
type PanicError struct {
	Candidate string
	Value     any
	Stack     []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: candidate %q: panic: %v", e.Candidate, e.Value)
}

// isInterruption reports whether err is a graceful-degradation cause.
func isInterruption(err error) bool { return runlimit.IsInterruption(err) }

// interruptError carries the phase coordinates of an interruption from
// detectCandidate up to Detect, which turns them into an Incomplete.
type interruptError struct {
	cause error
	phase string
	pass  int // key pass, -1 when not applicable
}

func (e *interruptError) Error() string { return e.cause.Error() }
func (e *interruptError) Unwrap() error { return e.cause }

// defaultCheckEvery is the hot-loop iteration interval between
// cancellation/budget checks. At ~1µs per pair comparison this bounds
// the reaction latency to about a millisecond while keeping the check
// amortized to a fraction of a percent.
const defaultCheckEvery = 1024

// budget is the per-run cancellation and resource accounting shared by
// every phase (and every parallel worker) of one run. All methods are
// safe for concurrent use.
type budget struct {
	ctx         context.Context
	lim         Limits
	every       int
	active      bool // any cancellation source or comparison cap present
	comparisons atomic.Int64
}

func newBudget(ctx context.Context, lim Limits) *budget {
	b := &budget{ctx: ctx, lim: lim, every: lim.CheckEvery}
	if b.every <= 0 {
		b.every = defaultCheckEvery
	}
	// Uncancellable, unbounded runs (nil Done channel, no comparison
	// cap) skip polling entirely, so plain Run keeps zero overhead.
	b.active = ctx.Done() != nil || lim.MaxComparisons > 0
	return b
}

// poll checks for interruption every `every` iterations of a hot loop;
// n is the caller's running iteration counter.
func (b *budget) poll(n int) error {
	if !b.active || n%b.every != 0 {
		return nil
	}
	return b.check()
}

// check performs the interruption test immediately.
func (b *budget) check() error {
	if err := runlimit.ContextCause(b.ctx); err != nil {
		return err
	}
	if max := b.lim.MaxComparisons; max > 0 {
		if got := int(b.comparisons.Load()); got > max {
			return &LimitError{Limit: "max-comparisons", Max: max, Observed: got}
		}
	}
	return nil
}

// addComparison charges one pair comparison against the budget and
// reports the breach exactly when the cap is crossed.
func (b *budget) addComparison() error {
	if max := b.lim.MaxComparisons; max > 0 {
		if got := b.comparisons.Add(1); got > int64(max) {
			return &LimitError{Limit: "max-comparisons", Max: max, Observed: int(got)}
		}
	}
	return nil
}

// checkDocLimits enforces MaxDepth/MaxNodes on an already-materialized
// document, mirroring the parse-time checks for callers that hand Run
// an in-memory tree (generators, tests) rather than parsed bytes. Only
// walked when a cap is actually set.
func checkDocLimits(doc *xmltree.Document, lim Limits) error {
	if lim.MaxDepth <= 0 && lim.MaxNodes <= 0 {
		return nil
	}
	nodes, maxDepth := 0, 0
	var walk func(n *xmltree.Node, depth int)
	walk = func(n *xmltree.Node, depth int) {
		nodes++
		if n.Kind == xmltree.ElementNode {
			if depth > maxDepth {
				maxDepth = depth
			}
			for _, ch := range n.Children {
				walk(ch, depth+1)
			}
		}
	}
	walk(doc.Root, 1)
	if lim.MaxDepth > 0 && maxDepth > lim.MaxDepth {
		return &LimitError{Limit: "max-depth", Max: lim.MaxDepth, Observed: maxDepth}
	}
	if lim.MaxNodes > 0 && nodes > lim.MaxNodes {
		return &LimitError{Limit: "max-nodes", Max: lim.MaxNodes, Observed: nodes}
	}
	return nil
}

// PartialFromKeyGen wraps the tables of an interrupted key generation
// into a Result whose Incomplete names the cause, so callers composing
// the phases themselves (the facade's streaming entry point) degrade
// the same way Run does.
func PartialFromKeyGen(kg *KeyGenResult, cause error) *Result {
	res := &Result{
		Clusters: map[string]*cluster.ClusterSet{},
		Stats:    Stats{Candidates: map[string]*CandidateStats{}},
		Incomplete: &Incomplete{
			Cause:   cause,
			Phase:   PhaseKeyGen,
			KeyPass: -1,
		},
	}
	if kg != nil {
		res.Tables = kg.Tables
		res.Stats.KeyGen = kg.Duration
	}
	return res
}
