package core

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/xmltree"
)

// windowPairCount is the closed form for the number of window pairs a
// single pass produces over n rows with window w:
// sum_{i=1}^{n-1} min(i, w-1).
func windowPairCount(n, w int) int {
	total := 0
	for i := 1; i < n; i++ {
		k := w - 1
		if i < k {
			k = i
		}
		total += k
	}
	return total
}

// uniqueKeyDoc builds n movies with pairwise-distinct titles so all
// generated keys differ and no pair repeats across passes.
func uniqueKeyDoc(t testing.TB, n int) *xmltree.Document {
	t.Helper()
	var b strings.Builder
	b.WriteString("<movie_database><movies>")
	for i := 0; i < n; i++ {
		// Distinct consonant prefixes: Bxxx, Cxxx, ... via base-20
		// consonant encoding of i.
		fmt.Fprintf(&b, "<movie><title>%s</title></movie>", consonantName(i))
	}
	b.WriteString("</movies></movie_database>")
	doc, err := xmltree.ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// consonantName encodes i as a distinct consonant string.
func consonantName(i int) string {
	const alphabet = "BCDFGHJKLMNPQRSTVWXZ"
	name := make([]byte, 0, 6)
	for {
		name = append(name, alphabet[i%len(alphabet)])
		i /= len(alphabet)
		if i == 0 {
			break
		}
	}
	return string(name) + "AAAA" // padding vowels do not affect K keys
}

func singleKeyConfig(w int) *config.Config {
	return &config.Config{Candidates: []config.Candidate{{
		Name:  "movie",
		XPath: "movie_database/movies/movie",
		Paths: []config.PathDef{{ID: 1, RelPath: "title/text()"}},
		OD:    []config.ODEntry{{PathID: 1, Relevance: 1}},
		Keys: []config.KeyDef{
			{Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "K1-K6"}}},
		},
		Threshold: 0.99,
		Window:    w,
	}}}
}

// Property: with distinct keys and a single pass, the engine performs
// exactly the closed-form number of comparisons.
func TestWindowPairCountFormula(t *testing.T) {
	f := func(nRaw, wRaw uint8) bool {
		n := int(nRaw%40) + 2
		w := int(wRaw%10) + 2
		doc := uniqueKeyDoc(t, n)
		cfg := singleKeyConfig(w)
		if err := cfg.Validate(); err != nil {
			return false
		}
		res, err := Run(doc, cfg, Options{})
		if err != nil {
			return false
		}
		st := res.Stats.Candidates["movie"]
		return st.Comparisons == windowPairCount(n, w) &&
			st.WindowPairs == windowPairCount(n, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// With k identical key definitions, window pairs multiply by k but
// distinct comparisons stay the same (cross-pass dedup).
func TestMultiPassDedup(t *testing.T) {
	doc := uniqueKeyDoc(t, 30)
	cfg := singleKeyConfig(4)
	cfg.Candidates[0].Keys = append(cfg.Candidates[0].Keys,
		config.KeyDef{Name: "same", Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "K1-K6"}}},
		config.KeyDef{Name: "same2", Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "K1-K6"}}},
	)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(doc, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats.Candidates["movie"]
	want := windowPairCount(30, 4)
	if st.Comparisons != want {
		t.Errorf("comparisons = %d, want %d (deduped across passes)", st.Comparisons, want)
	}
	if st.WindowPairs != 3*want {
		t.Errorf("window pairs = %d, want %d", st.WindowPairs, 3*want)
	}
}
