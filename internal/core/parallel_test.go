package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/gen/freedb"
)

// The CD corpus has three same-depth leaf candidates (dtitle, artist,
// tracks/title) below disc, exercising real concurrency.
func cdConfig() *config.Config {
	return &config.Config{Candidates: []config.Candidate{
		{
			Name:  "disc",
			XPath: "cds/disc",
			Paths: []config.PathDef{
				{ID: 1, RelPath: "artist[1]/text()"},
				{ID: 2, RelPath: "dtitle[1]/text()"},
			},
			OD: []config.ODEntry{
				{PathID: 1, Relevance: 0.5},
				{PathID: 2, Relevance: 0.5},
			},
			Keys: []config.KeyDef{
				{Parts: []config.KeyPart{{PathID: 2, Order: 1, Pattern: "K1-K5"}}},
			},
			Rule:          config.RuleEither,
			ODThreshold:   0.85,
			DescThreshold: 0.5,
			Window:        5,
		},
		leafCand("dtitle", "cds/disc/dtitle"),
		leafCand("artist", "cds/disc/artist"),
		leafCand("track", "cds/disc/tracks/title"),
	}}
}

func leafCand(name, xp string) config.Candidate {
	return config.Candidate{
		Name:  name,
		XPath: xp,
		Paths: []config.PathDef{{ID: 1, RelPath: "text()"}},
		OD:    []config.ODEntry{{PathID: 1, Relevance: 1}},
		Keys: []config.KeyDef{
			{Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "C1-C6"}}},
		},
		Threshold: 0.9,
		Window:    5,
	}
}

func TestDetectionOrderGroups(t *testing.T) {
	cfg := mustValidate(t, cdConfig())
	doc := freedb.Generate(freedb.DefaultOptions(50, 3))
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	groups := DetectionOrder(kg, cfg)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2 (all leaves; disc)", len(groups))
	}
	if len(groups[0]) != 3 {
		t.Errorf("leaf group = %v, want track+dtitle+artist", names(groups[0]))
	}
	if len(groups[1]) != 1 || groups[1][0].Name != "disc" {
		t.Errorf("final group = %v, want disc", names(groups[1]))
	}
}

// A descendant-axis candidate nested below another candidate must be
// processed first even though its static path depth is shallower —
// the order derives from observed instances, not path syntax.
func TestDetectionOrderDescendantAxis(t *testing.T) {
	xml := `<movie_database><movies>
	  <movie><screenplay><author><person>X</person></author></screenplay></movie>
	</movies></movie_database>`
	doc := mustDoc(t, xml)
	cfg := &config.Config{Candidates: []config.Candidate{
		{
			Name:  "screenplay",
			XPath: "movie_database/movies/movie/screenplay",
			Paths: []config.PathDef{{ID: 1, RelPath: "author/person/text()"}},
			OD:    []config.ODEntry{{PathID: 1, Relevance: 1}},
			Keys: []config.KeyDef{
				{Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "C1-C4"}}},
			},
			Threshold: 0.9,
			Window:    3,
		},
		leafCand("person", "//person"),
	}}
	mustValidate(t, cfg)
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	groups := DetectionOrder(kg, cfg)
	if len(groups) != 2 || groups[0][0].Name != "person" || groups[1][0].Name != "screenplay" {
		var all [][]string
		for _, g := range groups {
			all = append(all, names(g))
		}
		t.Fatalf("order = %v, want [[person] [screenplay]]", all)
	}
}

// Self-nesting candidates (a type occurring inside itself) must not
// deadlock the ordering.
func TestDetectionOrderSelfNesting(t *testing.T) {
	doc := mustDoc(t, `<r><s>a<s>b</s></s></r>`)
	cfg := &config.Config{Candidates: []config.Candidate{leafCand("s", "//s")}}
	mustValidate(t, cfg)
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	groups := DetectionOrder(kg, cfg)
	if len(groups) != 1 || len(groups[0]) != 1 {
		t.Fatalf("groups = %v", groups)
	}
	if _, err := Detect(kg, cfg, Options{}); err != nil {
		t.Fatalf("self-nesting detection failed: %v", err)
	}
}

func names(cs []*config.Candidate) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Name
	}
	return out
}

func TestParallelMatchesSequential(t *testing.T) {
	doc := freedb.Generate(freedb.DefaultOptions(400, 7))
	seq, err := Run(doc, mustValidate(t, cdConfig()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(doc, mustValidate(t, cdConfig()), Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for name := range seq.Clusters {
		if seq.Clusters[name].String() != par.Clusters[name].String() {
			t.Errorf("candidate %q: parallel results differ", name)
		}
	}
	if seq.Stats.Comparisons != par.Stats.Comparisons {
		t.Errorf("comparisons differ: %d vs %d", seq.Stats.Comparisons, par.Stats.Comparisons)
	}
	if seq.Stats.DuplicatePairs != par.Stats.DuplicatePairs {
		t.Errorf("duplicate pairs differ: %d vs %d", seq.Stats.DuplicatePairs, par.Stats.DuplicatePairs)
	}
}

func TestParallelMissingTable(t *testing.T) {
	cfg := mustValidate(t, cdConfig())
	kg := &KeyGenResult{Tables: map[string]*GKTable{}}
	if _, err := Detect(kg, cfg, Options{Parallel: true}); err == nil {
		t.Fatal("missing tables should fail under parallel too")
	}
}
