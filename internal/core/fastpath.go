package core

import (
	"repro/internal/config"
	"repro/internal/similarity"
)

// This file is the threshold-aware comparison fast path behind
// Options.UseFilter (paper Sec. 5). The slow path normalizes and fully
// edit-distances every value pair of every window pair; the fast path
// runs a bound stack instead:
//
//	length ⊆ frequency sketch  →  banded edit  →  full edit
//
// 1. Per-row sketches (normalized string, rune length, 32-bin rune
//    histogram) are computed once per row — window pairs stop paying
//    strutil.Normalize and rune decoding per comparison.
// 2. Per field, the best sketch bound caps the best-match similarity;
//    the weighted optimistic fold over all fields prunes pairs whose
//    most favorable outcome still fails the classification rule.
// 3. Surviving pairs resolve fields one at a time (cheap non-edit
//    similarities first), re-testing after each: the optimistic fold
//    proves "cannot become a duplicate" (skip the rest, FilteredOut),
//    the pessimistic fold proves "cannot miss" (duplicate, stop early).
// 4. Edit fields run LevenshteinBounded with a band derived from the
//    classification threshold and the field's weight; a cut-off yields
//    a sound upper bound instead of an exact score.
// 5. If the bounds never force a verdict, the cut-off fields escalate
//    to full edit distance — the aggregate is then the slow path's
//    float64, bit for bit.
//
// Determinism contract (proven by the differential suite): duplicate
// verdicts, clusters, checkpoint streams, and the attempted-comparison
// count are byte-identical to the slow path; the only licensed
// difference is that PairObservation.ODSim reports a deterministic
// bound instead of the exact aggregate for pairs decided early (an
// upper bound for filtered pairs, a lower bound for short-circuited
// duplicates). Everything here is also bit-identical across SimCache
// on/off and PairWorkers settings: bounds depend only on the pair, and
// memoized scores are exact by the cache's purity contract.
//
// Soundness leans on two facts. decide() is monotone nondecreasing in
// odSim for every built-in rule, so deciding on an upper (lower) bound
// can only under- (over-) approximate "duplicate" — never flip it.
// And both folds replicate ODSimilarity's left-fold over the same
// field order with term-wise bounds; IEEE-754 +, *, / are monotone per
// operation, so the folded bounds hold even at ulp granularity (a
// reassociated sum would not be safe).

// Field classification for the staged evaluation.
const (
	fsAbsent   uint8 = iota // both sides missing: no weight, no term
	fsOneSided              // one side missing: weight, no term
	fsEdit                  // two-sided, edit measure: sketch + banded path
	fsOther                 // two-sided, other measure: trivial bound, direct compute
)

// maxStackFields keeps the per-pair scratch vectors off the heap for
// every realistic configuration.
const maxStackFields = 16

// comparePairFiltered evaluates one pair under the bound stack; the
// returned tuple plugs into comparePair's slot for the built-in rules.
func comparePairFiltered(t *GKTable, a, b *GKRow, descSim float64, hasDesc bool, cache *similarity.Cache) (odSim float64, dup, filtered bool, err error) {
	fields := t.fields
	if len(a.OD) != len(fields) || len(b.OD) != len(fields) {
		// Malformed rows: surface the identical mismatch error through
		// the slow path.
		odSim, err = cache.ODSimilarity(fields, a.OD, b.OD)
		return odSim, false, false, err
	}
	n := len(fields)
	var stBuf [maxStackFields]uint8
	var optBuf, pesBuf [maxStackFields]float64
	var st []uint8
	var opt, pes []float64
	if n <= maxStackFields {
		st, opt, pes = stBuf[:n], optBuf[:n], pesBuf[:n]
	} else {
		st, opt, pes = make([]uint8, n), make([]float64, n), make([]float64, n)
	}
	ska, skb := rowSketches(t, a), rowSketches(t, b)

	// Classify fields and seed the optimistic vector with the sketch
	// bound (edit fields) or the trivial bound 1 (everything else).
	// The pessimistic vector starts at 0.
	for i := range fields {
		va, vb := a.OD[i], b.OD[i]
		switch {
		case len(va) == 0 && len(vb) == 0:
			st[i] = fsAbsent
		case len(va) == 0 || len(vb) == 0:
			st[i] = fsOneSided
		case i < len(t.bounds) && t.bounds[i]:
			st[i] = fsEdit
			opt[i] = similarity.EditUpperBoundValues(fieldSketches(ska, i, va), fieldSketches(skb, i, vb))
		default:
			st[i] = fsOther
			opt[i] = 1
		}
	}
	dec := func(v float64) bool { return decide(t.Candidate, v, descSim, hasDesc) }

	// Cannot-miss pre-check: decide is monotone nondecreasing in odSim,
	// so a positive verdict at the all-zero lower bound already holds
	// for the exact aggregate (e.g. RuleEither satisfied by the
	// descendant similarity alone). The reported odSim is that bound.
	if dec(0) {
		return 0, true, false, nil
	}

	// Resolve fields one by one, re-testing the folds before each
	// computation; the first test (everything at its sketch/trivial
	// bound) is the classic upper-bound filter, now sketch-powered.
	need := -1.0 // lazily derived OD-level duplicate threshold
	resolve := func(i int) (float64, bool, bool, bool) {
		if o := foldOD(fields, st, opt); !dec(o) {
			return o, false, true, true // cannot reach the rule: filtered
		}
		if p := foldOD(fields, st, pes); dec(p) {
			return p, true, false, true // cannot miss: duplicate
		}
		f := fields[i]
		if st[i] == fsOther {
			v := similarity.BestMatch(cache, i, f.Sim, a.OD[i], b.OD[i])
			opt[i], pes[i] = v, v
			return 0, false, false, false
		}
		if need < 0 {
			need = odNeedThreshold(t.Candidate, descSim, hasDesc)
		}
		fn := fieldNeed(fields, st, opt, need, i)
		lo, hi := bestMatchEditBounded(cache, i, a.OD[i], b.OD[i],
			fieldSketches(ska, i, a.OD[i]), fieldSketches(skb, i, b.OD[i]), fn)
		opt[i], pes[i] = hi, lo
		return 0, false, false, false
	}
	// Cheap similarities first: an exact year/numeric/jaccard value
	// tightens both folds before any edit distance runs, so the edit
	// fields see the smallest possible band (or are skipped outright).
	for i := range fields {
		if st[i] == fsOther {
			if v, d, flt, done := resolve(i); done {
				return v, d, flt, nil
			}
		}
	}
	for i := range fields {
		if st[i] == fsEdit {
			if v, d, flt, done := resolve(i); done {
				return v, d, flt, nil
			}
		}
	}

	// All fields resolved. Fields whose banded runs were cut off hold
	// an interval [pes, opt]; if the bounds force a verdict, report the
	// deciding bound, otherwise escalate the cut-off fields to full
	// edit distance — the aggregate is then the slow path's, bit for
	// bit.
	exact := true
	for i := range fields {
		if st[i] == fsEdit && opt[i] != pes[i] {
			exact = false
			break
		}
	}
	if !exact {
		if o := foldOD(fields, st, opt); !dec(o) {
			return o, false, true, nil
		}
		if p := foldOD(fields, st, pes); dec(p) {
			return p, true, false, nil
		}
		for i := range fields {
			if st[i] == fsEdit && opt[i] != pes[i] {
				v := similarity.BestMatch(cache, i, fields[i].Sim, a.OD[i], b.OD[i])
				opt[i], pes[i] = v, v
			}
		}
	}
	odSim = foldOD(fields, st, pes)
	return odSim, dec(odSim), false, nil
}

// foldOD replicates ODSimilarity's aggregation — same field order,
// same weight accumulation, same one-sided/absent handling, same final
// division — over per-field values from val. With exact per-field
// values the result is bit-identical to the slow path; with term-wise
// bounds it is a sound bound on it (monotonicity of float64 +, *, /).
func foldOD(fields []similarity.ODField, st []uint8, val []float64) float64 {
	var sum, weight float64
	for i, f := range fields {
		switch st[i] {
		case fsAbsent:
		case fsOneSided:
			weight += f.Relevance
		default:
			weight += f.Relevance
			sum += f.Relevance * val[i]
		}
	}
	if weight == 0 {
		return 0
	}
	return sum / weight
}

// odNeedThreshold returns the smallest OD similarity at which decide
// could still classify the pair a duplicate — the threshold the banded
// edit path derives its cut-off band from. Heuristic by design: the
// band affects how much work is skipped, never the verdict (cut-off
// results come back as bounds and escalate when the verdict is open).
func odNeedThreshold(c *config.Candidate, descSim float64, hasDesc bool) float64 {
	switch c.Rule {
	case config.RuleEither, config.RuleBoth:
		// The descendant leg is settled before any field resolves: a
		// satisfied RuleEither leg fires the cannot-miss pre-check, a
		// failed RuleBoth leg fires the first optimistic fold.
		return c.ODThreshold
	default: // RuleCombined
		if !hasDesc {
			return c.Threshold
		}
		w := c.ODWeight
		if w < 0 {
			w = 0
		}
		if w > 1 {
			w = 1
		}
		if w == 0 {
			return 0 // verdict independent of odSim; settled by the pre-checks
		}
		return (c.Threshold - (1-w)*descSim) / w
	}
}

// fieldNeed translates the pair-level OD target into field i's own
// unit-similarity target, assuming every other field at its current
// optimistic value: scores at or below the target cannot flip the
// verdict, so the banded edit run may cut off there.
func fieldNeed(fields []similarity.ODField, st []uint8, opt []float64, need float64, i int) float64 {
	ri := fields[i].Relevance
	if ri <= 0 {
		return 0
	}
	var others, weight float64
	for j, f := range fields {
		if st[j] == fsAbsent {
			continue
		}
		weight += f.Relevance
		if j != i && st[j] != fsOneSided {
			others += f.Relevance * opt[j]
		}
	}
	fn := (need*weight - others) / ri
	if fn < 0 {
		return 0
	}
	if fn > 1 {
		return 1
	}
	return fn
}

// bestMatchEditBounded is bestMatch for an edit-measure field under a
// cut-off: value pairs whose sketch bound cannot raise the best match
// are skipped, the rest run editScore with the cut-off at
// max(best so far, need). Returns the exact best over the pairs scored
// exactly (lo) and the field-level upper bound (hi) — max of lo and
// the cut-off bounds. lo is the slow path's best match whenever
// lo == hi: skipped pairs were bounded at or below lo, and cut-off
// pairs at or below lo are equally unable to raise the slow maximum.
func bestMatchEditBounded(cache *similarity.Cache, field int, va, vb []string, ska, skb []similarity.ValueSketch, need float64) (lo, hi float64) {
	best, capHi := 0.0, 0.0
	for xi := range va {
		for yi := range vb {
			sx, sy := &ska[xi], &skb[yi]
			if u := similarity.EditUpperBoundSketch(sx, sy); u <= best {
				continue // cannot raise the best match
			}
			thr := best
			if need > thr {
				thr = need
			}
			v, exact := editScore(cache, field, va[xi], vb[yi], sx, sy, thr)
			if exact {
				if v > best {
					best = v
					if best == 1 {
						return 1, 1 // mirror bestMatch's early exit
					}
				}
			} else if v > capHi {
				capHi = v
			}
		}
	}
	hi = best
	if capHi > hi {
		hi = capHi
	}
	return best, hi
}

// editScore scores one value pair of an edit field under a cut-off
// threshold: scores above thr come back exact — bit-identical to
// NormalizedEdit on the raw values, since the sketch holds the same
// normalized strings, LevenshteinBounded equals Levenshtein within the
// band, and NormalizedEditFromDistance repeats the exact float ops —
// and scores at or below thr may come back as a sound upper bound with
// exact=false.
func editScore(cache *similarity.Cache, field int, x, y string, sx, sy *similarity.ValueSketch, thr float64) (v float64, exact bool) {
	m := sx.RuneLen
	if sy.RuneLen > m {
		m = sy.RuneLen
	}
	if m == 0 || (sx.RuneLen == sy.RuneLen && sx.Norm == sy.Norm) {
		return 1, true // NormalizedEdit's equal-or-empty rule
	}
	// Derive the band: d ≤ band covers every score above thr, because
	// sim = 1 − d/m. band ≥ m never cuts off (d never exceeds m).
	band := m
	if thr > 0 {
		band = int((1 - thr) * float64(m))
		if band < 0 {
			band = 0
		}
		if band > m {
			band = m
		}
	}
	if cv, ok := cache.Lookup(field, x, y); ok {
		// Memoized scores are always exact (cut-off results are never
		// inserted). Mirror what the banded run would have produced so
		// cache on/off stays bit-identical: the mapping d → 1 − d/m is
		// strictly decreasing, so "d > band" is exactly
		// "cv < score-at-band".
		if band >= m || cv >= similarity.NormalizedEditFromDistance(band, m) {
			return cv, true
		}
		return similarity.NormalizedEditFromDistance(band+1, m), false
	}
	d := similarity.LevenshteinBounded(sx.Norm, sy.Norm, band)
	if d > band {
		// Cut off: d ≥ band+1, so 1 − (band+1)/m bounds the true
		// similarity from above.
		return similarity.NormalizedEditFromDistance(band+1, m), false
	}
	v = similarity.NormalizedEditFromDistance(d, m)
	cache.Insert(field, x, y, v)
	return v, true
}

// sketchRow precomputes the per-value sketches of every edit-bounded
// OD field of one row. Idempotent; rows carry their sketches through
// struct copies (baselines, merges). Sketches are derived data — never
// serialized, always recomputed where rows are rebuilt (spill decode).
func (t *GKTable) sketchRow(r *GKRow) {
	r.odSketch = buildRowSketches(t, r)
	r.sketched = true
}

// ensureSketches prepares a resident table for the fast path; rows
// already sketched (an earlier Detect over the same tables) are kept.
// Runs before the sweep starts, so pair workers only ever read.
func ensureSketches(t *GKTable) {
	for i := range t.Rows {
		if !t.Rows[i].sketched {
			t.sketchRow(&t.Rows[i])
		}
	}
}

func buildRowSketches(t *GKTable, r *GKRow) [][]similarity.ValueSketch {
	var sk [][]similarity.ValueSketch
	for i, vals := range r.OD {
		if i < len(t.bounds) && t.bounds[i] && len(vals) > 0 {
			if sk == nil {
				sk = make([][]similarity.ValueSketch, len(r.OD))
			}
			sk[i] = similarity.SketchValues(vals)
		}
	}
	return sk
}

// rowSketches returns a row's precomputed sketches, building a
// detached copy for rows from a source that skipped preparation
// (defensive — rows are shared across pair workers, so never mutate
// here).
func rowSketches(t *GKTable, r *GKRow) [][]similarity.ValueSketch {
	if r.sketched {
		return r.odSketch
	}
	return buildRowSketches(t, r)
}

// fieldSketches returns the sketches of one field, sketching on the
// fly when the row-level slice lacks them (same defensive rule).
func fieldSketches(sk [][]similarity.ValueSketch, i int, vals []string) []similarity.ValueSketch {
	if i < len(sk) && sk[i] != nil {
		return sk[i]
	}
	return similarity.SketchValues(vals)
}
