package core

// Fuzz targets for the GK dump reader and its escaping, mirroring the
// robustness contract of ReadGK: arbitrary input must either load or
// fail with an error — never panic — and everything accepted must
// survive a write/read round trip. Seed corpora live under
// testdata/fuzz/.

import (
	"strings"
	"testing"

	"repro/internal/config"
)

func fuzzConfig(f *testing.F) *config.Config {
	f.Helper()
	cfg := movieConfig(config.RuleCombined)
	if err := cfg.Validate(); err != nil {
		f.Fatal(err)
	}
	return cfg
}

func FuzzReadGK(f *testing.F) {
	cfg := fuzzConfig(f)
	f.Add([]byte("#gk\tmovie\tkeys=1\tod=1\trows=1\n1\tK\tV\t\n"))
	f.Add([]byte("#gk\tmovie\tkeys=1\tod=1\n1\tSILEN\tSilent River\tperson=2,3\n2\tBROKE\tBroken Storm\t\n"))
	f.Add([]byte("#gk\tmovie\tkeys=1\tod=1\trows=2\n1\tK\tV\t\n"))
	f.Add([]byte("#gk\tnosuch\tkeys=1\tod=1\trows=0\n"))
	f.Add([]byte("1\tK\tV\t\n"))
	f.Add([]byte("#gk\tmovie\tkeys=1\tod=1\trows=1\n1\tK\ta|b%7Cc\tperson=1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		kg, err := ReadGK(strings.NewReader(string(data)), cfg)
		if err != nil {
			return // rejected cleanly
		}
		// Accepted input must survive a write/read round trip.
		var b strings.Builder
		if err := WriteGK(&b, kg); err != nil {
			t.Fatalf("WriteGK after accepting %q: %v", data, err)
		}
		if _, err := ReadGK(strings.NewReader(b.String()), cfg); err != nil {
			t.Fatalf("re-read of re-serialized dump: %v\ninput: %q\ndump: %q", err, data, b.String())
		}
	})
}

func FuzzGKEscape(f *testing.F) {
	f.Add("")
	f.Add("plain")
	f.Add("a\tb|c;d=e,f%g\nh")
	f.Add("100%")
	f.Add("%09%0A")
	f.Add("ünïcode\r\n")
	f.Fuzz(func(t *testing.T, s string) {
		esc := escapeGK(s)
		if got := unescapeGK(esc); got != s {
			t.Errorf("round trip %q -> %q -> %q", s, esc, got)
		}
		if strings.ContainsAny(esc, "\t\n\r|;=,") {
			t.Errorf("escaped %q = %q still contains structural characters", s, esc)
		}
	})
}
