package core

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/dataset"
	"repro/internal/gen/freedb"
)

// sortRowsByEID returns the table's rows ordered by element ID; the
// streaming generator appends rows at close time (postorder) while the
// DOM generator appends at visit time (preorder), so tables are
// compared as sets keyed by EID.
func sortRowsByEID(t *GKTable) []GKRow {
	rows := make([]GKRow, len(t.Rows))
	copy(rows, t.Rows)
	sort.Slice(rows, func(i, j int) bool { return rows[i].EID < rows[j].EID })
	return rows
}

func assertTablesEqual(t *testing.T, dom, stream *KeyGenResult, cfg *config.Config) {
	t.Helper()
	for _, cand := range cfg.Candidates {
		dt, st := dom.Tables[cand.Name], stream.Tables[cand.Name]
		if dt == nil || st == nil {
			t.Fatalf("%s: missing table (dom=%v stream=%v)", cand.Name, dt != nil, st != nil)
		}
		dr, sr := sortRowsByEID(dt), sortRowsByEID(st)
		if len(dr) != len(sr) {
			t.Fatalf("%s: row counts differ: dom=%d stream=%d", cand.Name, len(dr), len(sr))
		}
		for i := range dr {
			a, b := dr[i], sr[i]
			if a.EID != b.EID {
				t.Fatalf("%s[%d]: EIDs differ: %d vs %d", cand.Name, i, a.EID, b.EID)
			}
			if strings.Join(a.Keys, "\x00") != strings.Join(b.Keys, "\x00") {
				t.Errorf("%s eid %d: keys differ: %v vs %v", cand.Name, a.EID, a.Keys, b.Keys)
			}
			if len(a.OD) != len(b.OD) {
				t.Fatalf("%s eid %d: OD widths differ", cand.Name, a.EID)
			}
			for f := range a.OD {
				if strings.Join(a.OD[f], "\x00") != strings.Join(b.OD[f], "\x00") {
					t.Errorf("%s eid %d od %d: %v vs %v", cand.Name, a.EID, f, a.OD[f], b.OD[f])
				}
			}
			if len(a.Desc) != len(b.Desc) {
				t.Errorf("%s eid %d: desc type counts differ: %v vs %v", cand.Name, a.EID, a.Desc, b.Desc)
				continue
			}
			for name, eids := range a.Desc {
				got := b.Desc[name]
				if len(eids) != len(got) {
					t.Errorf("%s eid %d desc %s: %v vs %v", cand.Name, a.EID, name, eids, got)
					continue
				}
				for k := range eids {
					if eids[k] != got[k] {
						t.Errorf("%s eid %d desc %s: %v vs %v", cand.Name, a.EID, name, eids, got)
						break
					}
				}
			}
		}
	}
}

func TestStreamMatchesDOMMovies(t *testing.T) {
	doc, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: 150, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mustValidate(t, dataset.ScalabilityConfig(3))
	dom, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := GenerateKeysStream(strings.NewReader(doc.String()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, dom, stream, cfg)
}

func TestStreamMatchesDOMCDs(t *testing.T) {
	doc := freedb.Generate(freedb.DefaultOptions(200, 9))
	cfg := config.DataSet2(4)
	// Replace the cds/disc path config with nested candidates.
	mustValidate(t, cfg)
	dom, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := GenerateKeysStream(strings.NewReader(doc.String()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, dom, stream, cfg)
}

func TestStreamDetectionEndToEnd(t *testing.T) {
	doc := mustDoc(t, typoMoviesXML)
	cfg := mustValidate(t, movieConfig(config.RuleCombined))
	kg, err := GenerateKeysStream(strings.NewReader(typoMoviesXML), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(kg, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	domRes, err := Run(doc, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters["movie"].String() != domRes.Clusters["movie"].String() {
		t.Errorf("stream-fed detection differs:\n%s\nvs\n%s",
			res.Clusters["movie"], domRes.Clusters["movie"])
	}
}

func TestStreamRejectsNonPlainPaths(t *testing.T) {
	cfg := &config.Config{Candidates: []config.Candidate{leafCand("p", "//person")}}
	mustValidate(t, cfg)
	if _, err := GenerateKeysStream(strings.NewReader("<r/>"), cfg); err == nil {
		t.Fatal("descendant-axis candidate must be rejected")
	}
}

func TestStreamErrors(t *testing.T) {
	cfg := mustValidate(t, movieConfig(config.RuleCombined))
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"whitespace", "   "},
		{"unbalanced", "<a><b></a>"},
		{"truncated", "<movie_database><movies>"},
		{"garbage", "no xml <"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := GenerateKeysStream(strings.NewReader(c.in), cfg); err == nil {
				t.Errorf("GenerateKeysStream(%q) succeeded", c.in)
			}
		})
	}
}

func TestStreamMixedContentIDs(t *testing.T) {
	// Significant text outside candidates must consume IDs exactly as
	// the DOM numbering does.
	xmlStr := `<movie_database>stray<movies>more<movie><title>Silent River</title></movie></movies></movie_database>`
	doc := mustDoc(t, xmlStr)
	cfg := mustValidate(t, movieConfig(config.RuleCombined))
	dom, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := GenerateKeysStream(strings.NewReader(xmlStr), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dom.Tables["movie"].Rows[0].EID != stream.Tables["movie"].Rows[0].EID {
		t.Errorf("EIDs diverge with mixed content: dom=%d stream=%d",
			dom.Tables["movie"].Rows[0].EID, stream.Tables["movie"].Rows[0].EID)
	}
}
