package core

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/dataset"
	"repro/internal/gen/freedb"
	"repro/internal/xmltree"
)

// The differential suite is the proof behind Options.PairWorkers and
// Options.SimCache: every combination of worker count and cache state
// must reproduce the sequential, uncached run exactly — cluster sets,
// Stats (durations excluded — wall clock is the one thing that may
// change), the full checkpoint callback stream, and every
// PairObservation including its float64 similarities, compared with ==.

// pairWorkerMatrix is the worker axis from the issue: 0 = the plain
// sequential loop, 1 = the batching machinery on a single worker,
// 4/16 = real shard-boundary interleavings (16 > batch/shard sizes on
// these corpora, forcing tiny uneven shards).
var pairWorkerMatrix = []int{0, 1, 4, 16}

// runSnapshot is one Detect run reduced to its observable bytes.
type runSnapshot struct {
	clusters  map[string]string            // candidate → canonical cluster set
	stats     string                       // Stats with durations zeroed
	pairObs   map[string][]PairObservation // per candidate, in comparison order
	ckpt      map[string][]string          // per candidate checkpoint callbacks, in order
	doneOrder []string                     // CandidateDone sequence
}

// recordingCkpt serializes the Checkpointer callback stream. Progress
// is grouped per candidate (under Options.Parallel candidates
// interleave arbitrarily in real time, but each candidate's own
// sequence is part of the determinism contract); CandidateDone order
// is global — the engine emits it from the group merge loop, which is
// deterministic even for parallel groups.
type recordingCkpt struct {
	mu      sync.Mutex
	perCand map[string][]string
	done    []string
}

func newRecordingCkpt() *recordingCkpt {
	return &recordingCkpt{perCand: make(map[string][]string)}
}

func (r *recordingCkpt) KeysGenerated(kg *KeyGenResult) error { return nil }

func (r *recordingCkpt) Progress(candidate string, nextPass int, pairs []cluster.Pair) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.perCand[candidate] = append(r.perCand[candidate],
		fmt.Sprintf("progress next=%d pairs=%v", nextPass, pairs))
	return nil
}

func (r *recordingCkpt) CandidateDone(candidate string, cs *cluster.ClusterSet) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.perCand[candidate] = append(r.perCand[candidate], "done "+cs.String())
	r.done = append(r.done, candidate)
	return nil
}

// pairRecorder captures PairObservations grouped by candidate, in
// per-candidate order.
type pairRecorder struct {
	mu     sync.Mutex
	byCand map[string][]PairObservation
}

func (p *pairRecorder) observe(o PairObservation) {
	p.mu.Lock()
	p.byCand[o.Candidate] = append(p.byCand[o.Candidate], o)
	p.mu.Unlock()
}

// normalizeStats renders Stats with every duration zeroed — wall
// clock is the only field parallelism is allowed to change.
func normalizeStats(s Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "comparisons=%d filtered=%d dups=%d\n",
		s.Comparisons, s.FilteredOut, s.DuplicatePairs)
	names := make([]string, 0, len(s.Candidates))
	for name := range s.Candidates {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := *s.Candidates[name]
		c.SlidingWindow, c.TransitiveClosure = 0, 0
		fmt.Fprintf(&b, "%s: %+v\n", name, c)
	}
	return b.String()
}

func snapshotRun(t *testing.T, kg *KeyGenResult, cfg *config.Config, opts Options) runSnapshot {
	t.Helper()
	snap, _ := snapshotRunStats(t, kg, cfg, opts)
	return snap
}

// snapshotRunStats also hands back the raw Stats for suites that
// compare folded invariants (the filter axis) rather than the
// normalized string.
func snapshotRunStats(t *testing.T, kg *KeyGenResult, cfg *config.Config, opts Options) (runSnapshot, Stats) {
	t.Helper()
	rec := newRecordingCkpt()
	po := &pairRecorder{byCand: make(map[string][]PairObservation)}
	opts.Checkpointer = rec
	opts.PairObserver = po.observe
	res, err := Detect(kg, cfg, opts)
	if err != nil {
		t.Fatalf("Detect(workers=%d cache=%v parallel=%v): %v",
			opts.PairWorkers, opts.SimCache, opts.Parallel, err)
	}
	snap := runSnapshot{
		clusters:  make(map[string]string, len(res.Clusters)),
		stats:     normalizeStats(res.Stats),
		pairObs:   po.byCand,
		ckpt:      rec.perCand,
		doneOrder: rec.done,
	}
	for name, cs := range res.Clusters {
		snap.clusters[name] = cs.String()
	}
	return snap, res.Stats
}

func diffSnapshots(t *testing.T, label string, want, got runSnapshot) {
	t.Helper()
	if !reflect.DeepEqual(got.clusters, want.clusters) {
		t.Errorf("%s: cluster sets differ from sequential baseline\nwant %v\ngot  %v",
			label, want.clusters, got.clusters)
	}
	if got.stats != want.stats {
		t.Errorf("%s: Stats differ from sequential baseline\nwant:\n%s\ngot:\n%s",
			label, want.stats, got.stats)
	}
	if !reflect.DeepEqual(got.pairObs, want.pairObs) {
		t.Errorf("%s: pair observation streams differ from sequential baseline", label)
	}
	if !reflect.DeepEqual(got.ckpt, want.ckpt) {
		t.Errorf("%s: checkpoint callback streams differ\nwant %v\ngot  %v",
			label, want.ckpt, got.ckpt)
	}
	if !reflect.DeepEqual(got.doneOrder, want.doneOrder) {
		t.Errorf("%s: CandidateDone order differs: want %v, got %v",
			label, want.doneOrder, got.doneOrder)
	}
}

// differentialScenario is one (document, configuration, base options)
// triple the matrix runs over.
type differentialScenario struct {
	name string
	doc  *xmltree.Document
	cfg  *config.Config
	base Options
}

func differentialScenarios(t *testing.T) []differentialScenario {
	t.Helper()
	movies, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: 120, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cds, err := dataset.DataSet2(dataset.CDs2Options{Discs: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	adaptiveCfg := config.DataSet1(5)
	for i := range adaptiveCfg.Candidates {
		adaptiveCfg.Candidates[i].AdaptiveKeySim = 0.85
	}
	return []differentialScenario{
		// Single candidate, three keys: multi-pass revisits are the
		// cache's bread and butter.
		{name: "movies", doc: movies, cfg: mustValidate(t, config.DataSet1(5)), base: Options{}},
		// Nested candidates with descendants: the interned-set Def. 3
		// path, RuleEither, bottom-up ordering.
		{name: "cds", doc: cds, cfg: mustValidate(t, config.DataSet2(4)), base: Options{}},
		// Generated corpus with the upper-bound filter: the filtered
		// verdict path must merge identically too.
		{name: "freedb-filter", doc: freedb.Generate(freedb.DefaultOptions(40, 3)),
			cfg: mustValidate(t, cdConfig()), base: Options{UseFilter: true}},
		// Adaptive windows: worker shards see data-dependent window
		// extents.
		{name: "movies-adaptive", doc: movies, cfg: mustValidate(t, adaptiveCfg), base: Options{}},
	}
}

// TestDifferentialMatrix is the equivalence proof: PairWorkers ∈
// {0,1,4,16} × SimCache ∈ {off,on} (plus candidate-level Parallel
// composed on top) all reproduce the sequential uncached run
// observable-for-observable.
func TestDifferentialMatrix(t *testing.T) {
	for _, sc := range differentialScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			kg, err := GenerateKeys(sc.doc, sc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			baseline := snapshotRun(t, kg, sc.cfg, sc.base)
			for _, workers := range pairWorkerMatrix {
				for _, cache := range []bool{false, true} {
					if workers == 0 && !cache {
						continue // the baseline itself
					}
					opts := sc.base
					opts.PairWorkers = workers
					opts.SimCache = cache
					label := fmt.Sprintf("workers=%d cache=%v", workers, cache)
					diffSnapshots(t, label, baseline, snapshotRun(t, kg, sc.cfg, opts))
				}
			}
			// Candidate-level parallelism composed with both features,
			// plus a deliberately tiny cache to force evictions mid-run.
			opts := sc.base
			opts.Parallel = true
			opts.PairWorkers = 4
			opts.SimCache = true
			opts.SimCacheSize = 64
			diffSnapshots(t, "parallel+workers=4+tiny-cache", baseline, snapshotRun(t, kg, sc.cfg, opts))
		})
	}
}

// TestDifferentialInterrupted pins the interruption seam: a
// MaxComparisons budget trips at a deterministic enumeration point, so
// the partial result — completed clusters, Incomplete bookkeeping, and
// the best-effort checkpoint flush — must also be identical across the
// matrix. (Candidate-level Parallel is excluded: with concurrent
// candidates the budget is consumed in racy order by design.)
func TestDifferentialInterrupted(t *testing.T) {
	doc, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: 120, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mustValidate(t, config.DataSet1(5))
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	type partial struct {
		incomplete Incomplete
		ckpt       map[string][]string
		clusters   map[string]string
	}
	run := func(workers int, cache bool) partial {
		rec := newRecordingCkpt()
		opts := Options{
			PairWorkers:  workers,
			SimCache:     cache,
			Checkpointer: rec,
			Limits:       Limits{MaxComparisons: 700},
		}
		res, err := Detect(kg, cfg, opts)
		if err == nil {
			t.Fatalf("workers=%d: expected an interrupted run", workers)
		}
		if res == nil || res.Incomplete == nil {
			t.Fatalf("workers=%d: interrupted run returned no partial result", workers)
		}
		p := partial{incomplete: *res.Incomplete, ckpt: rec.perCand,
			clusters: make(map[string]string)}
		p.incomplete.Cause = nil // same typed cause, compared via the error above
		for name, cs := range res.Clusters {
			p.clusters[name] = cs.String()
		}
		return p
	}
	want := run(0, false)
	for _, workers := range pairWorkerMatrix[1:] {
		for _, cache := range []bool{false, true} {
			got := run(workers, cache)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("workers=%d cache=%v: interrupted snapshot differs\nwant %+v\ngot  %+v",
					workers, cache, want, got)
			}
		}
	}
}

// TestDifferentialStatsIgnoreCache double-checks the layering rule
// directly: cache counters live in obs metrics only, so Result.Stats
// must not change byte-for-byte when the cache is enabled.
func TestDifferentialStatsIgnoreCache(t *testing.T) {
	doc := freedb.Generate(freedb.DefaultOptions(30, 9))
	cfg := mustValidate(t, cdConfig())
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	without, err := Detect(kg, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	with, err := Detect(kg, cfg, Options{SimCache: true, SimCacheSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := normalizeStats(with.Stats), normalizeStats(without.Stats); got != want {
		t.Errorf("SimCache leaked into Stats:\nwithout:\n%s\nwith:\n%s", want, got)
	}
}

// foldedStats renders the Stats invariants that must survive the
// filter axis: the filter converts Comparisons into FilteredOut one
// for one, so the attempted-comparison sum, window pair counts, and
// every duplicate/cluster figure are filter-independent.
func foldedStats(s Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "attempted=%d dups=%d\n", s.Comparisons+s.FilteredOut, s.DuplicatePairs)
	names := make([]string, 0, len(s.Candidates))
	for name := range s.Candidates {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := s.Candidates[name]
		fmt.Fprintf(&b, "%s: rows=%d attempted=%d windowPairs=%d dups=%d clusters=%d nonSingleton=%d\n",
			name, c.Rows, c.Comparisons+c.FilteredOut, c.WindowPairs,
			c.DuplicatePairs, c.Clusters, c.NonSingleton)
	}
	return b.String()
}

// diffFilterSnapshots compares a filters-on run against the unfiltered
// baseline. Clusters, checkpoint streams, completion order, and the
// folded Stats must match exactly. Pair observations match field for
// field except ODSim, where the fast path's licensed deviation is a
// deterministic bound: an upper bound for filtered pairs, a lower
// bound for short-circuited duplicates, and the identical float64
// everywhere else.
func diffFilterSnapshots(t *testing.T, label string, slow, fast runSnapshot, slowStats, fastStats Stats) {
	t.Helper()
	if !reflect.DeepEqual(fast.clusters, slow.clusters) {
		t.Errorf("%s: cluster sets differ from unfiltered baseline\nwant %v\ngot  %v",
			label, slow.clusters, fast.clusters)
	}
	if want, got := foldedStats(slowStats), foldedStats(fastStats); got != want {
		t.Errorf("%s: folded Stats differ from unfiltered baseline\nwant:\n%s\ngot:\n%s",
			label, want, got)
	}
	if !reflect.DeepEqual(fast.ckpt, slow.ckpt) {
		t.Errorf("%s: checkpoint callback streams differ\nwant %v\ngot  %v",
			label, slow.ckpt, fast.ckpt)
	}
	if !reflect.DeepEqual(fast.doneOrder, slow.doneOrder) {
		t.Errorf("%s: CandidateDone order differs: want %v, got %v",
			label, slow.doneOrder, fast.doneOrder)
	}
	for cand, slowObs := range slow.pairObs {
		fastObs := fast.pairObs[cand]
		if len(fastObs) != len(slowObs) {
			t.Errorf("%s: %s: %d observations, want %d", label, cand, len(fastObs), len(slowObs))
			continue
		}
		for i, want := range slowObs {
			got := fastObs[i]
			if got.Candidate != want.Candidate || got.KeyIndex != want.KeyIndex ||
				got.A != want.A || got.B != want.B ||
				got.DescSim != want.DescSim || got.HasDesc != want.HasDesc ||
				got.Duplicate != want.Duplicate {
				t.Errorf("%s: %s[%d]: observation differs\nwant %+v\ngot  %+v", label, cand, i, want, got)
				continue
			}
			switch {
			case got.Filtered:
				if got.Duplicate {
					t.Errorf("%s: %s[%d]: filtered pair marked duplicate: %+v", label, cand, i, got)
				}
				if got.ODSim < want.ODSim {
					t.Errorf("%s: %s[%d]: filtered ODSim %v is not an upper bound of exact %v",
						label, cand, i, got.ODSim, want.ODSim)
				}
			case got.Duplicate:
				if got.ODSim > want.ODSim {
					t.Errorf("%s: %s[%d]: short-circuited ODSim %v is not a lower bound of exact %v",
						label, cand, i, got.ODSim, want.ODSim)
				}
			default:
				if got.ODSim != want.ODSim {
					t.Errorf("%s: %s[%d]: fully compared ODSim %v != exact %v",
						label, cand, i, got.ODSim, want.ODSim)
				}
			}
		}
	}
	for cand := range fast.pairObs {
		if _, ok := slow.pairObs[cand]; !ok {
			t.Errorf("%s: unexpected observations for candidate %s", label, cand)
		}
	}
}

// TestDifferentialFilterMatrix is the filter-axis equivalence proof:
// across every corpus, filters on × PairWorkers {0,4} × SimCache
// {off,on} must reproduce the unfiltered run's clusters, checkpoints,
// and folded Stats, with pair-level ODSim deviating only within the
// licensed bound semantics — and all filters-on variants must be
// bitwise identical to each other (the never-cache-capped-values and
// order-independence guarantees).
func TestDifferentialFilterMatrix(t *testing.T) {
	for _, sc := range differentialScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			kg, err := GenerateKeys(sc.doc, sc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			slowOpts := sc.base
			slowOpts.UseFilter = false
			slow, slowStats := snapshotRunStats(t, kg, sc.cfg, slowOpts)
			var fastBase *runSnapshot
			filteredTotal := 0
			for _, workers := range []int{0, 4} {
				for _, cache := range []bool{false, true} {
					opts := sc.base
					opts.UseFilter = true
					opts.PairWorkers = workers
					opts.SimCache = cache
					label := fmt.Sprintf("filter workers=%d cache=%v", workers, cache)
					got, gotStats := snapshotRunStats(t, kg, sc.cfg, opts)
					diffFilterSnapshots(t, label, slow, got, slowStats, gotStats)
					filteredTotal += gotStats.FilteredOut
					if fastBase == nil {
						base := got
						fastBase = &base
					} else {
						diffSnapshots(t, label+" vs filters-on baseline", *fastBase, got)
					}
				}
			}
			// The corpora are dirty enough that a working filter must
			// actually skip comparisons somewhere in the matrix.
			if filteredTotal == 0 {
				t.Errorf("filter never fired on %s: FilteredOut = 0 across the whole matrix", sc.name)
			}
		})
	}
}

// TestDifferentialFilterInterrupted pins the interruption seam across
// the filter axis: the MaxComparisons budget counts enumerated pairs
// before the filter sees them, so an interrupted filtered run must
// stop at the same pair and flush the identical partial state as the
// unfiltered run.
func TestDifferentialFilterInterrupted(t *testing.T) {
	doc, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: 120, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mustValidate(t, config.DataSet1(5))
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	type partial struct {
		incomplete Incomplete
		ckpt       map[string][]string
		clusters   map[string]string
	}
	run := func(useFilter bool, workers int, cache bool) partial {
		rec := newRecordingCkpt()
		opts := Options{
			UseFilter:    useFilter,
			PairWorkers:  workers,
			SimCache:     cache,
			Checkpointer: rec,
			Limits:       Limits{MaxComparisons: 700},
		}
		res, err := Detect(kg, cfg, opts)
		if err == nil {
			t.Fatalf("filter=%v workers=%d: expected an interrupted run", useFilter, workers)
		}
		if res == nil || res.Incomplete == nil {
			t.Fatalf("filter=%v workers=%d: interrupted run returned no partial result", useFilter, workers)
		}
		p := partial{incomplete: *res.Incomplete, ckpt: rec.perCand,
			clusters: make(map[string]string)}
		p.incomplete.Cause = nil
		for name, cs := range res.Clusters {
			p.clusters[name] = cs.String()
		}
		return p
	}
	want := run(false, 0, false)
	for _, workers := range []int{0, 4} {
		for _, cache := range []bool{false, true} {
			got := run(true, workers, cache)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("filter workers=%d cache=%v: interrupted snapshot differs\nwant %+v\ngot  %+v",
					workers, cache, want, got)
			}
		}
	}
}
