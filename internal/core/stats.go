package core

import (
	"encoding/json"
	"fmt"
)

// String renders the per-candidate measurements as one log-friendly
// line.
func (c *CandidateStats) String() string {
	return fmt.Sprintf("rows=%d comparisons=%d window_pairs=%d filtered_out=%d duplicate_pairs=%d clusters=%d non_singleton=%d sw=%v tc=%v",
		c.Rows, c.Comparisons, c.WindowPairs, c.FilteredOut, c.DuplicatePairs,
		c.Clusters, c.NonSingleton, c.SlidingWindow, c.TransitiveClosure)
}

// MarshalJSON emits the candidate stats with stable snake_case keys;
// durations appear both as nanosecond integers (for tooling) and as
// Go duration strings (for humans reading logs).
func (c *CandidateStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(map[string]any{
		"rows":                  c.Rows,
		"comparisons":           c.Comparisons,
		"window_pairs":          c.WindowPairs,
		"filtered_out":          c.FilteredOut,
		"duplicate_pairs":       c.DuplicatePairs,
		"clusters":              c.Clusters,
		"non_singleton":         c.NonSingleton,
		"sliding_window_ns":     int64(c.SlidingWindow),
		"sliding_window":        c.SlidingWindow.String(),
		"transitive_closure_ns": int64(c.TransitiveClosure),
		"transitive_closure":    c.TransitiveClosure.String(),
	})
}

// String renders the run-wide measurements as one log-friendly line:
// phase timings (CPU-summed and wall), then counters.
func (s *Stats) String() string {
	return fmt.Sprintf("kg=%v sw_cpu=%v tc_cpu=%v dd_cpu=%v detect_wall=%v comparisons=%d filtered_out=%d duplicate_pairs=%d candidates=%d",
		s.KeyGen, s.SlidingWindow, s.TransitiveClosure, s.DuplicateDetection(),
		s.DetectionWall, s.Comparisons, s.FilteredOut, s.DuplicatePairs, len(s.Candidates))
}

// MarshalJSON emits the aggregate stats with stable snake_case keys.
// Durations carry the same dual ns/string representation as
// CandidateStats; the per-candidate map is keyed by candidate name
// (encoding/json sorts map keys, so output is deterministic).
func (s *Stats) MarshalJSON() ([]byte, error) {
	return json.Marshal(map[string]any{
		"key_gen_ns":                 s.KeyGen.Nanoseconds(),
		"key_gen":                    s.KeyGen.String(),
		"sliding_window_cpu_ns":      s.SlidingWindow.Nanoseconds(),
		"sliding_window_cpu":         s.SlidingWindow.String(),
		"transitive_closure_cpu_ns":  s.TransitiveClosure.Nanoseconds(),
		"transitive_closure_cpu":     s.TransitiveClosure.String(),
		"duplicate_detection_cpu_ns": s.DuplicateDetection().Nanoseconds(),
		"duplicate_detection_cpu":    s.DuplicateDetection().String(),
		"detect_wall_ns":             s.DetectionWall.Nanoseconds(),
		"detect_wall":                s.DetectionWall.String(),
		"comparisons":                s.Comparisons,
		"filtered_out":               s.FilteredOut,
		"duplicate_pairs":            s.DuplicatePairs,
		"candidates":                 s.Candidates,
	})
}
