package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
)

func TestCandidateStatsString(t *testing.T) {
	c := &CandidateStats{
		Rows: 10, Comparisons: 40, WindowPairs: 45, FilteredOut: 5,
		DuplicatePairs: 3, Clusters: 7, NonSingleton: 2,
		SlidingWindow: 2 * time.Millisecond, TransitiveClosure: time.Millisecond,
	}
	s := c.String()
	for _, want := range []string{
		"rows=10", "comparisons=40", "window_pairs=45", "filtered_out=5",
		"duplicate_pairs=3", "clusters=7", "non_singleton=2", "sw=2ms", "tc=1ms",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestCandidateStatsMarshalJSON(t *testing.T) {
	c := &CandidateStats{
		Rows: 10, Comparisons: 40, WindowPairs: 45, FilteredOut: 5,
		DuplicatePairs: 3, Clusters: 7, NonSingleton: 2,
		SlidingWindow: 2 * time.Millisecond, TransitiveClosure: time.Millisecond,
	}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["rows"] != float64(10) || m["comparisons"] != float64(40) {
		t.Errorf("counts wrong: %v", m)
	}
	if m["sliding_window_ns"] != float64(2_000_000) || m["sliding_window"] != "2ms" {
		t.Errorf("durations wrong: %v", m)
	}
	if m["transitive_closure"] != "1ms" {
		t.Errorf("tc wrong: %v", m)
	}
}

func TestStatsStringAndJSON(t *testing.T) {
	s := &Stats{
		KeyGen:            3 * time.Millisecond,
		SlidingWindow:     4 * time.Millisecond,
		TransitiveClosure: time.Millisecond,
		DetectionWall:     2 * time.Millisecond,
		Comparisons:       100, FilteredOut: 20, DuplicatePairs: 9,
		Candidates: map[string]*CandidateStats{
			"movie": {Rows: 5, Comparisons: 100},
		},
	}
	str := s.String()
	for _, want := range []string{
		"kg=3ms", "sw_cpu=4ms", "tc_cpu=1ms", "dd_cpu=5ms", "detect_wall=2ms",
		"comparisons=100", "filtered_out=20", "duplicate_pairs=9", "candidates=1",
	} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q, missing %q", str, want)
		}
	}

	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["duplicate_detection_cpu_ns"] != float64(5_000_000) {
		t.Errorf("dd ns = %v, want 5e6", m["duplicate_detection_cpu_ns"])
	}
	if m["detect_wall"] != "2ms" {
		t.Errorf("detect_wall = %v", m["detect_wall"])
	}
	cands, ok := m["candidates"].(map[string]any)
	if !ok {
		t.Fatalf("candidates not a map: %T", m["candidates"])
	}
	movie, ok := cands["movie"].(map[string]any)
	if !ok || movie["rows"] != float64(5) {
		t.Errorf("nested candidate stats = %v", cands["movie"])
	}
}

// The marshalled form of a real run must decode without error and keep
// the headline counters intact.
func TestStatsJSONFromRun(t *testing.T) {
	cfg := mustValidate(t, movieConfig(config.RuleEither))
	doc := mustDoc(t, typoMoviesXML)
	res, err := Run(doc, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(&res.Stats)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if int(m["comparisons"].(float64)) != res.Stats.Comparisons {
		t.Errorf("comparisons: json %v vs %d", m["comparisons"], res.Stats.Comparisons)
	}
}
