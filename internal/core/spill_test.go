package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/config"
	"repro/internal/dataset"
	"repro/internal/extsort"
	"repro/internal/gen/freedb"
	"repro/internal/obs"
)

// The tests in this file are the proof behind Options.SpillThresholdRows:
// the external-sort spill path must reproduce the in-memory path
// observable-for-observable — clusters, Stats, pair observations,
// checkpoint streams, and interrupted partials — across thresholds,
// worker counts, and cache states.

// spillThresholds is the threshold axis: 1 = one row per run file (the
// maximal-spill stress shape), 7 = several uneven runs per pass, and a
// huge threshold = configured but never triggered.
var spillThresholds = []int{1, 7, 1 << 30}

// TestGKRowComparator pins the pass comparator the in-memory sort, the
// run-file writer, and the k-way merge all share: bytewise on the pass
// key, ties broken by EID, including empty keys and non-ASCII bytes
// (where bytewise and naive collation orders differ).
func TestGKRowComparator(t *testing.T) {
	row := func(eid int, keys ...string) *GKRow { return &GKRow{EID: eid, Keys: keys} }
	cases := []struct {
		name string
		a, b *GKRow
		pass int
		less bool // a < b
	}{
		{"distinct keys", row(1, "abc"), row(2, "abd"), 0, true},
		{"distinct keys reversed", row(1, "abd"), row(2, "abc"), 0, false},
		{"equal keys tie on EID", row(3, "same"), row(9, "same"), 0, true},
		{"equal keys tie on EID reversed", row(9, "same"), row(3, "same"), 0, false},
		{"empty key sorts first", row(5, ""), row(4, "a"), 0, true},
		{"both empty tie on EID", row(2, ""), row(7, ""), 0, true},
		{"prefix sorts first", row(1, "ab"), row(2, "abc"), 0, true},
		{"non-ASCII bytewise", row(1, "a"), row(2, "\xff"), 0, true},
		{"high byte beats multibyte rune", row(1, "é"), row(2, "\xff"), 0, true},
		{"second pass key decides", row(1, "z", "a"), row(2, "a", "b"), 1, true},
		{"second pass equal ties on EID", row(8, "z", "k"), row(4, "a", "k"), 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := gkRowLess(tc.a, tc.b, tc.pass); got != tc.less {
				t.Errorf("gkRowLess(%v, %v, pass %d) = %v, want %v", tc.a, tc.b, tc.pass, got, tc.less)
			}
			if tc.less && gkRowLess(tc.b, tc.a, tc.pass) {
				t.Errorf("comparator is not antisymmetric for %v / %v", tc.a, tc.b)
			}
		})
	}
}

// TestSpillSortMatchesStableSort cross-checks the external sort against
// sort.SliceStable under the exact comparator, over rows with heavy key
// duplication, empty keys, and non-ASCII bytes. The merged permutation
// must be identical — the root of the byte-identical claim.
func TestSpillSortMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	keys := []string{"", "a", "a", "ab", "\xff", "é", "zz", "\x00x"}
	var rows []GKRow
	for i := 0; i < 64; i++ {
		rows = append(rows, GKRow{
			EID:  i*3 + 1, // unique, unordered relative to keys
			Keys: []string{keys[rng.Intn(len(keys))]},
			OD:   [][]string{{fmt.Sprintf("v%d", i)}},
		})
	}
	want := make([]int, len(rows))
	order := make([]int, len(rows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return gkRowLess(&rows[order[a]], &rows[order[b]], 0) })
	for i, o := range order {
		want[i] = rows[o].EID
	}

	for _, threshold := range []int{1, 5, 64} {
		cfg := extsort.Config[*GKRow]{
			Dir:         t.TempDir(),
			Prefix:      "x",
			MaxInMemory: threshold,
			Encode:      func(dst []byte, r *GKRow) []byte { return appendGKRow(dst, r) },
			Decode:      decodeGKRow,
			Less:        func(a, b *GKRow) bool { return gkRowLess(a, b, 0) },
		}
		s, err := extsort.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rows {
			if err := s.Add(&rows[i]); err != nil {
				t.Fatal(err)
			}
		}
		it, _, err := s.Merge()
		if err != nil {
			t.Fatal(err)
		}
		var got []int
		for {
			r, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got = append(got, r.EID)
		}
		it.Close()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("threshold %d: merged EID order %v, want stable-sort order %v", threshold, got, want)
		}
	}
}

// TestSpillDifferentialMatrix is the headline equivalence proof:
// SpillThresholdRows ∈ {1,7,∞} × PairWorkers ∈ {0,4} × SimCache ∈
// {off,on} all reproduce the in-memory run exactly — cluster sets,
// Stats, every PairObservation, and the checkpoint callback stream.
func TestSpillDifferentialMatrix(t *testing.T) {
	for _, sc := range differentialScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			kg, err := GenerateKeys(sc.doc, sc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			baseline := snapshotRun(t, kg, sc.cfg, sc.base)
			for _, threshold := range spillThresholds {
				for _, workers := range []int{0, 4} {
					for _, cache := range []bool{false, true} {
						opts := sc.base
						opts.SpillThresholdRows = threshold
						opts.PairWorkers = workers
						opts.SimCache = cache
						label := fmt.Sprintf("spill=%d workers=%d cache=%v", threshold, workers, cache)
						diffSnapshots(t, label, baseline, snapshotRun(t, kg, sc.cfg, opts))
					}
				}
			}
		})
	}
}

// TestSpillDifferentialInterrupted pins the interruption seam under
// spilling: a MaxComparisons budget trips at the same enumeration point
// whether rows stream from memory or run files, so the partial result
// and checkpoint flush must match the in-memory interrupted run.
func TestSpillDifferentialInterrupted(t *testing.T) {
	doc, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: 120, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mustValidate(t, config.DataSet1(5))
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	type partial struct {
		incomplete Incomplete
		ckpt       map[string][]string
		clusters   map[string]string
	}
	run := func(threshold, workers int) partial {
		rec := newRecordingCkpt()
		opts := Options{
			SpillThresholdRows: threshold,
			PairWorkers:        workers,
			Checkpointer:       rec,
			Limits:             Limits{MaxComparisons: 700},
		}
		res, err := Detect(kg, cfg, opts)
		if err == nil {
			t.Fatalf("spill=%d workers=%d: expected an interrupted run", threshold, workers)
		}
		if res == nil || res.Incomplete == nil {
			t.Fatalf("spill=%d workers=%d: interrupted run returned no partial result", threshold, workers)
		}
		p := partial{incomplete: *res.Incomplete, ckpt: rec.perCand,
			clusters: make(map[string]string)}
		p.incomplete.Cause = nil
		for name, cs := range res.Clusters {
			p.clusters[name] = cs.String()
		}
		return p
	}
	want := run(0, 0) // in-memory sequential baseline
	for _, threshold := range spillThresholds {
		for _, workers := range []int{0, 4} {
			got := run(threshold, workers)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("spill=%d workers=%d: interrupted snapshot differs\nwant %+v\ngot  %+v",
					threshold, workers, want, got)
			}
		}
	}
}

// TestSpillRunReuse proves the checkpoint story: with a pinned SpillDir
// a second run over the same keys reuses the fingerprinted run files
// (verified while streaming) instead of re-sorting, and still produces
// the identical result.
func TestSpillRunReuse(t *testing.T) {
	doc := freedb.Generate(freedb.DefaultOptions(40, 3))
	cfg := mustValidate(t, cdConfig())
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	detect := func() (*Result, obs.Snapshot) {
		ob := obs.New()
		res, err := Detect(kg, cfg, Options{
			SpillThresholdRows: 1,
			SpillDir:           dir,
			Observer:           ob,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, ob.Metrics().Snapshot()
	}
	first, m1 := detect()
	if m1.SpillRuns == 0 || m1.SpillBytesWritten == 0 {
		t.Fatalf("first run did not spill: %+v", m1)
	}
	if m1.SpillRunsReused != 0 {
		t.Fatalf("first run cannot reuse anything, reused %d runs", m1.SpillRunsReused)
	}
	second, m2 := detect()
	if m2.SpillRunsReused == 0 {
		t.Fatalf("second run over the same dir reused nothing: %+v", m2)
	}
	if m2.SpillRuns != 0 || m2.SpillBytesWritten != 0 {
		t.Fatalf("second run re-sorted despite a full manifest: %+v", m2)
	}
	if m2.SpillBytesRead == 0 {
		t.Fatal("reused runs were not read back")
	}
	for name, cs := range first.Clusters {
		if second.Clusters[name].String() != cs.String() {
			t.Errorf("candidate %q: reused-run clusters diverge", name)
		}
	}
	if got, want := normalizeStats(second.Stats), normalizeStats(first.Stats); got != want {
		t.Errorf("reused-run Stats diverge:\nfirst:\n%s\nsecond:\n%s", want, got)
	}
}

// TestSpillFingerprintMismatchResorts makes sure reuse is conservative:
// different row content under the same SpillDir must re-sort, not adopt
// the stale runs.
func TestSpillFingerprintMismatchResorts(t *testing.T) {
	cfg := mustValidate(t, cdConfig())
	dir := t.TempDir()
	detect := func(seed int64) (*Result, obs.Snapshot) {
		doc := freedb.Generate(freedb.DefaultOptions(40, seed))
		kg, err := GenerateKeys(doc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ob := obs.New()
		res, err := Detect(kg, cfg, Options{
			SpillThresholdRows: 1, SpillDir: dir, Observer: ob,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, ob.Metrics().Snapshot()
	}
	detect(3)
	res, m := detect(4) // different corpus, same dir
	if m.SpillRunsReused != 0 {
		t.Fatalf("reused %d runs across different row content", m.SpillRunsReused)
	}
	if m.SpillRuns == 0 {
		t.Fatal("second corpus did not spill at all")
	}
	// And the result matches a cleanly spilled run of the same corpus.
	doc := freedb.Generate(freedb.DefaultOptions(40, 4))
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Detect(kg, cfg, Options{SpillThresholdRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	for name, cs := range clean.Clusters {
		if res.Clusters[name].String() != cs.String() {
			t.Errorf("candidate %q: clusters diverge after fingerprint mismatch", name)
		}
	}
}

// TestSpillWaivesMaxRows checks the limit downgrade: a table past
// MaxRows fails hard without a spill path and carries on with one.
func TestSpillWaivesMaxRows(t *testing.T) {
	doc := freedb.Generate(freedb.DefaultOptions(50, 3))
	cfg := mustValidate(t, cdConfig())

	_, err := RunContext(context.Background(), doc, cfg, Options{Limits: Limits{MaxRows: 10}})
	var le *LimitError
	if !errors.As(err, &le) || le.Limit != "max-rows" {
		t.Fatalf("without spill: want max-rows LimitError, got %v", err)
	}

	res, err := RunContext(context.Background(), doc, cfg, Options{
		Limits:             Limits{MaxRows: 10},
		SpillThresholdRows: 16,
	})
	if err != nil {
		t.Fatalf("with spill: MaxRows should be waived, got %v", err)
	}
	// The spilled run matches the unlimited one.
	want, err := RunContext(context.Background(), doc, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, cs := range want.Clusters {
		if res.Clusters[name].String() != cs.String() {
			t.Errorf("candidate %q: clusters diverge under waived MaxRows", name)
		}
	}
}

// TestSpillObservability checks the accounting contract: spill work
// shows up in metrics, the report's spill section, and spill spans —
// and never in Stats (proven byte-identical by the differential suite).
func TestSpillObservability(t *testing.T) {
	doc, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mustValidate(t, config.DataSet1(5))
	kg, err := GenerateKeys(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	ob := obs.New(col)
	if _, err := Detect(kg, cfg, Options{SpillThresholdRows: 1, Observer: ob}); err != nil {
		t.Fatal(err)
	}
	snap := ob.Metrics().Snapshot()
	if snap.SpillRuns == 0 || snap.SpillBytesWritten == 0 || snap.SpillBytesRead == 0 {
		t.Fatalf("spill counters missing from metrics: %+v", snap)
	}
	rep := col.Report(ob.Metrics())
	if rep.Spill == nil {
		t.Fatal("report has no spill section after a spilled run")
	}
	if rep.Spill.Runs != snap.SpillRuns || rep.Spill.BytesWritten != snap.SpillBytesWritten {
		t.Errorf("report spill section %+v disagrees with metrics %+v", rep.Spill, snap)
	}

	// An in-memory run reports no spill work at all.
	col2 := obs.NewCollector()
	ob2 := obs.New(col2)
	if _, err := Detect(kg, cfg, Options{Observer: ob2}); err != nil {
		t.Fatal(err)
	}
	if forcedSpillThreshold == 0 {
		if s := ob2.Metrics().Snapshot(); s.SpillRuns != 0 || s.SpillBytesWritten != 0 {
			t.Errorf("in-memory run counted spill work: %+v", s)
		}
		if rep2 := col2.Report(ob2.Metrics()); rep2.Spill != nil {
			t.Errorf("in-memory run produced a spill report section: %+v", rep2.Spill)
		}
	}
}

// TestSpillRowCodecRejects locks decode-time strictness: trailing
// bytes, truncations, and non-canonical descendant order are malformed,
// not best-effort rows.
func TestSpillRowCodecRejects(t *testing.T) {
	row := &GKRow{
		EID:  42,
		Keys: []string{"k1", ""},
		OD:   [][]string{{"a", "b"}, nil},
		Desc: map[string][]int{"track": {7, 9}, "artist": {1}},
	}
	enc := appendGKRow(nil, row)
	back, err := decodeGKRow(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, row) {
		t.Fatalf("round trip changed the row:\nin  %+v\nout %+v", row, back)
	}

	if _, err := decodeGKRow(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodeGKRow(enc[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
	// Desc written out of name order is non-canonical and must be
	// rejected: hand-build an encoding with names "b" then "a".
	swapped := appendGKRow(nil, &GKRow{EID: 1, Keys: []string{"x"}})
	swapped = swapped[:len(swapped)-1]         // drop the 0 desc count
	swapped = append(swapped, 2)               // two desc entries
	swapped = append(swapped, 1, 'b', 1, 1<<1) // name "b", one EID (zig-zag 1)
	swapped = append(swapped, 1, 'a', 1, 1<<1) // name "a" after "b": out of order
	if _, err := decodeGKRow(swapped); err == nil {
		t.Error("out-of-order descendant names accepted")
	}
}
