package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/extsort"
	"repro/internal/obs"
	"repro/internal/similarity"
)

// This file is the memory-bounded GK backend: candidates whose tables
// exceed Options.SpillThresholdRows sort each key pass with an
// external merge sort (internal/extsort) and stream the merged rows
// into the sliding window, so the sort working set is bounded by the
// threshold and the window only ever holds its own extent of decoded
// rows. The comparator, the enumeration order, and the decoded rows
// are exactly those of the in-memory path, which is what makes the
// differential suite's byte-identical claim hold.

// gkRowLess is THE sort order of one key pass — byte-wise comparison
// of the pass key with ties broken by element ID. EIDs are unique per
// table, so this is a total order: the in-memory sort, the run-file
// writer, and the k-way merge all produce the identical permutation.
func gkRowLess(a, b *GKRow, pass int) bool {
	if a.Keys[pass] != b.Keys[pass] {
		return a.Keys[pass] < b.Keys[pass]
	}
	return a.EID < b.EID
}

// rowSource feeds one key pass's sorted rows to the sliding window.
// next returns nil at the end of the stream; close releases any
// underlying run-file handles and may be called more than once.
type rowSource interface {
	next() (*GKRow, error)
	close() error
}

// memSource streams the resident table through a precomputed sort
// permutation — the in-memory path expressed as a rowSource.
type memSource struct {
	t     *GKTable
	order []int
	pos   int
}

func (m *memSource) next() (*GKRow, error) {
	if m.pos >= len(m.order) {
		return nil, nil
	}
	r := &m.t.Rows[m.order[m.pos]]
	m.pos++
	return r, nil
}

func (m *memSource) close() error { return nil }

// rowRing holds the last `keep` streamed rows indexed by absolute
// stream position — exactly the extent the window sweep may revisit.
// Rows referenced by in-flight pair batches stay alive through the
// batch's own pointers; the ring only bounds what the enumerator can
// still reach.
type rowRing struct {
	buf  []*GKRow
	mask int
}

func newRowRing(keep int) *rowRing {
	n := 1
	for n < keep {
		n <<= 1
	}
	return &rowRing{buf: make([]*GKRow, n), mask: n - 1}
}

func (r *rowRing) push(i int, row *GKRow) { r.buf[i&r.mask] = row }
func (r *rowRing) at(i int) *GKRow        { return r.buf[i&r.mask] }

// errMalformedRow rejects spilled row bytes that do not decode
// cleanly; it only ever surfaces wrapped in an extsort *CorruptError
// (the per-record CRC makes genuine corruption vanishingly unlikely to
// reach the decoder, but defense in depth is cheap).
var errMalformedRow = errors.New("malformed spilled GK row")

// appendGKRow encodes one GK row into dst. The encoding is canonical
// and injective over the row's observable fields: everything is
// length-prefixed, integers are zig-zag varints, and the descendant
// map is written in strictly increasing name order — equal rows encode
// to equal bytes and distinct rows to distinct bytes, which is what
// makes run-file fingerprints trustworthy across processes.
func appendGKRow(dst []byte, r *GKRow) []byte {
	dst = binary.AppendVarint(dst, int64(r.EID))
	dst = binary.AppendUvarint(dst, uint64(len(r.Keys)))
	for _, k := range r.Keys {
		dst = appendSpillString(dst, k)
	}
	dst = binary.AppendUvarint(dst, uint64(len(r.OD)))
	for _, vals := range r.OD {
		dst = binary.AppendUvarint(dst, uint64(len(vals)))
		for _, v := range vals {
			dst = appendSpillString(dst, v)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(r.Desc)))
	if len(r.Desc) > 0 {
		names := make([]string, 0, len(r.Desc))
		for name := range r.Desc {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			dst = appendSpillString(dst, name)
			eids := r.Desc[name]
			dst = binary.AppendUvarint(dst, uint64(len(eids)))
			for _, e := range eids {
				dst = binary.AppendVarint(dst, int64(e))
			}
		}
	}
	return dst
}

func appendSpillString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// spillDec decodes the encoding above with a sticky error; collection
// counts are bounded by the remaining bytes (every element costs at
// least one byte) so corrupt counts cannot drive allocations.
type spillDec struct {
	b   []byte
	off int
	err error
}

func (d *spillDec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.err = errMalformedRow
		return 0
	}
	d.off += n
	return v
}

func (d *spillDec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.err = errMalformedRow
		return 0
	}
	d.off += n
	return v
}

func (d *spillDec) count() int {
	v := d.uvarint()
	if d.err == nil && v > uint64(len(d.b)-d.off) {
		d.err = errMalformedRow
		return 0
	}
	return int(v)
}

func (d *spillDec) str() string {
	n := d.count()
	if d.err != nil {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// decodeGKRow rebuilds a row from its canonical encoding. Empty
// collections decode as nil (the canonical in-memory shape for
// everything detection observes through len), descendant names must be
// strictly increasing, and every byte must be consumed — so decode is
// the exact inverse of appendGKRow on encoder-produced bytes and
// rejects everything else.
func decodeGKRow(p []byte) (*GKRow, error) {
	d := &spillDec{b: p}
	r := &GKRow{EID: int(d.varint())}
	if n := d.count(); n > 0 {
		r.Keys = make([]string, n)
		for i := range r.Keys {
			r.Keys[i] = d.str()
		}
	}
	if n := d.count(); n > 0 {
		r.OD = make([][]string, n)
		for i := range r.OD {
			if m := d.count(); m > 0 {
				r.OD[i] = make([]string, m)
				for j := range r.OD[i] {
					r.OD[i][j] = d.str()
				}
			}
		}
	}
	if n := d.count(); n > 0 {
		r.Desc = make(map[string][]int, n)
		prev := ""
		for i := 0; i < n; i++ {
			name := d.str()
			if d.err == nil && i > 0 && name <= prev {
				d.err = errMalformedRow // non-canonical map order
			}
			prev = name
			var eids []int
			if m := d.count(); m > 0 {
				eids = make([]int, m)
				for j := range eids {
					eids[j] = int(d.varint())
				}
			}
			if d.err != nil {
				return nil, d.err
			}
			r.Desc[name] = eids
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(p) {
		return nil, errMalformedRow
	}
	return r, nil
}

// spillManifestName is the per-SpillDir index of reusable run files.
const spillManifestName = "spill-manifest.json"

// spillEntry records one (candidate, pass) external sort: the table
// fingerprint the runs were built from and the run files themselves.
// A later run with a matching fingerprint reuses the files (their
// checksums and footers are still verified while streaming) instead
// of re-sorting and re-writing.
type spillEntry struct {
	Candidate   string            `json:"candidate"`
	Pass        int               `json:"pass"`
	Rows        int               `json:"rows"`
	Fingerprint string            `json:"fingerprint"`
	Runs        []extsort.RunFile `json:"runs"`
}

type spillManifest struct {
	Version int                    `json:"version"`
	Entries map[string]*spillEntry `json:"entries"`
}

// spillState is the run-level spill context shared by all candidates:
// the directory (a private temp dir unless Options.SpillDir pins one),
// the filesystem, the manifest, and the obs counters. Parallel
// candidates share it, so the manifest is mutex-guarded.
type spillState struct {
	threshold int
	fs        extsort.FS
	m         *obs.Metrics

	mu      sync.Mutex
	dir     string
	temp    bool
	ready   bool
	initErr error
	man     spillManifest
}

func newSpillState(opts Options, m *obs.Metrics) *spillState {
	fs := opts.SpillFS
	if fs == nil {
		fs = extsort.OSFS()
	}
	return &spillState{threshold: opts.SpillThresholdRows, fs: fs, m: m, dir: opts.SpillDir}
}

// ensure lazily creates the spill directory and loads the manifest the
// first time any candidate actually spills, so runs whose tables all
// fit under the threshold touch no disk at all.
func (st *spillState) ensure() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.ready || st.initErr != nil {
		return st.initErr
	}
	if st.dir == "" {
		d, err := os.MkdirTemp("", "sxnm-spill-")
		if err != nil {
			st.initErr = fmt.Errorf("create spill dir: %w", err)
			return st.initErr
		}
		st.dir = d
		st.temp = true
	}
	if err := st.fs.MkdirAll(st.dir); err != nil {
		st.initErr = fmt.Errorf("create spill dir %s: %w", st.dir, err)
		return st.initErr
	}
	st.man = loadSpillManifest(st.fs, st.dir)
	st.sweepOrphans()
	st.ready = true
	return nil
}

// sweepOrphans removes run files in the spill directory that no
// manifest entry references — the leftovers of a process that was
// killed mid-sort, before its runs were recorded for reuse. Runs only
// when the filesystem can list directories (the real one can); called
// once per run, before this process writes any file, so it can never
// race with live sorts. Best-effort: a failed removal costs disk, not
// correctness.
func (st *spillState) sweepOrphans() {
	ls, ok := st.fs.(extsort.DirLister)
	if !ok {
		return
	}
	names, err := ls.ReadDir(st.dir)
	if err != nil {
		return
	}
	referenced := make(map[string]struct{})
	for _, ent := range st.man.Entries {
		for _, rf := range ent.Runs {
			referenced[rf.Name] = struct{}{}
		}
	}
	for _, name := range names {
		if !strings.HasSuffix(name, ".run") {
			continue
		}
		if _, ok := referenced[name]; ok {
			continue
		}
		_ = st.fs.Remove(filepath.Join(st.dir, name))
	}
}

// cleanup removes a private temp spill directory; a caller-provided
// SpillDir is kept so its fingerprinted runs survive for reuse.
func (st *spillState) cleanup() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.temp {
		os.RemoveAll(st.dir)
	}
}

func (st *spillState) lookup(key string) *spillEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.man.Entries[key]
}

// record stores an entry and rewrites the manifest. Persisting is
// best-effort: a failed write only costs reuse on the next run (the
// load path discards anything that does not parse), never correctness.
func (st *spillState) record(key string, ent *spillEntry) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.man.Entries == nil {
		st.man.Entries = make(map[string]*spillEntry)
	}
	st.man.Version = 1
	st.man.Entries[key] = ent
	data, err := json.Marshal(&st.man)
	if err != nil {
		return
	}
	f, err := st.fs.Create(filepath.Join(st.dir, spillManifestName))
	if err != nil {
		return
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	_ = werr
	_ = cerr
}

func loadSpillManifest(fs extsort.FS, dir string) spillManifest {
	var man spillManifest
	f, err := fs.Open(filepath.Join(dir, spillManifestName))
	if err != nil {
		return spillManifest{}
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return spillManifest{}
	}
	if json.Unmarshal(data, &man) != nil || man.Version != 1 {
		return spillManifest{}
	}
	return man
}

// candSpiller binds one candidate's table to the run-level spill
// state: the codec (with its decode-time validation and descendant
// resolution), the stable file prefix, and the memoized table
// fingerprint shared by all of the candidate's passes.
type candSpiller struct {
	st       *spillState
	t        *GKTable
	useDesc  bool
	clusters map[string]*cluster.ClusterSet
	cache    *similarity.Cache
	nKeys    int
	nOD      int
	prefix   string
	fp       string
	// sketch re-derives the fast-path value sketches per decoded row
	// (set when the run uses the threshold-aware filter); sketches are
	// detection-time state like descClusters, never serialized, so
	// spill fingerprints are unaffected.
	sketch bool
}

func newCandSpiller(st *spillState, t *GKTable, useDesc bool, clusters map[string]*cluster.ClusterSet, cache *similarity.Cache) *candSpiller {
	h := fnv.New64a()
	io.WriteString(h, t.Candidate.Name)
	return &candSpiller{
		st: st, t: t, useDesc: useDesc, clusters: clusters, cache: cache,
		nKeys:  len(t.Candidate.CompiledKeys()),
		nOD:    len(t.fields),
		prefix: fmt.Sprintf("c%016x", h.Sum64()),
	}
}

// fingerprint hashes the candidate's encoded rows in table order. The
// encoding is injective, so a fingerprint match means the run files on
// disk were built from byte-identical row content — pass order is
// irrelevant (runs differ per pass only in sort order, and each pass
// has its own manifest key).
func (c *candSpiller) fingerprint() string {
	if c.fp == "" {
		h := fnv.New64a()
		var scratch []byte
		var frame [binary.MaxVarintLen64]byte
		for i := range c.t.Rows {
			scratch = appendGKRow(scratch[:0], &c.t.Rows[i])
			n := binary.PutUvarint(frame[:], uint64(len(scratch)))
			h.Write(frame[:n])
			h.Write(scratch)
		}
		c.fp = fmt.Sprintf("%016x", h.Sum64())
	}
	return c.fp
}

// decodeRow rebuilds a streamed row and re-derives the detection-time
// fields — descendant cluster lists and interned sets — exactly as the
// resident path does, so a spilled row is observationally identical to
// the table row it was encoded from.
func (c *candSpiller) decodeRow(p []byte) (*GKRow, error) {
	r, err := decodeGKRow(p)
	if err != nil {
		return nil, err
	}
	if len(r.Keys) != c.nKeys || len(r.OD) != c.nOD {
		return nil, fmt.Errorf("row %d has %d keys and %d OD fields, candidate wants %d and %d",
			r.EID, len(r.Keys), len(r.OD), c.nKeys, c.nOD)
	}
	if c.useDesc {
		resolveRowDescClusters(r, c.clusters)
		if c.cache != nil {
			internRowDescSets(r, c.cache)
		}
	}
	if c.sketch {
		c.t.sketchRow(r)
	}
	return r, nil
}

func (c *candSpiller) config(pass int) extsort.Config[*GKRow] {
	return extsort.Config[*GKRow]{
		Dir:         c.st.dir,
		Prefix:      fmt.Sprintf("%s-p%d", c.prefix, pass),
		MaxInMemory: c.st.threshold,
		FS:          c.st.fs,
		Encode:      func(dst []byte, r *GKRow) []byte { return appendGKRow(dst, r) },
		Decode:      c.decodeRow,
		Less:        func(a, b *GKRow) bool { return gkRowLess(a, b, pass) },
	}
}

// wrapSpill contextualizes a spill error with the candidate and pass.
func (c *candSpiller) wrapSpill(pass int, err error) error {
	return fmt.Errorf("core: candidate %q: spill pass %d: %w", c.t.Candidate.Name, pass, err)
}

// runsFor resolves one key pass's sorted run files without committing
// to a single reader: fingerprinted runs from the manifest are reused
// when they open cleanly, anything else sorts and spills afresh. The
// sequential sweep opens one full merge over the result; the sharded
// sweep opens one range reader per shard over the same files, so the
// sort happens exactly once either way. Spill work is accounted to
// obs metrics and a spill span only — Stats never sees it, keeping
// spilled and in-memory Stats byte-identical.
func (c *candSpiller) runsFor(pass int, parent *obs.Span, bud *budget) (extsort.Config[*GKRow], []extsort.RunFile, error) {
	start := time.Now()
	if err := c.st.ensure(); err != nil {
		return extsort.Config[*GKRow]{}, nil, c.wrapSpill(pass, err)
	}
	cfg := c.config(pass)
	key := fmt.Sprintf("%s/p%d", c.prefix, pass)
	fp := c.fingerprint()

	var runs []extsort.RunFile
	reused := false
	if ent := c.st.lookup(key); ent != nil && ent.Fingerprint == fp && ent.Rows == len(c.t.Rows) {
		// Open-time failures (missing or stale files) fall back to a
		// fresh sort; corruption discovered while streaming, after this
		// point, is a hard typed error like any other read.
		if m, err := extsort.MergeRuns(cfg, ent.Runs); err == nil {
			m.Close()
			runs, reused = ent.Runs, true
		}
	}
	if runs == nil {
		srt, err := extsort.New(cfg)
		if err != nil {
			return cfg, nil, c.wrapSpill(pass, err)
		}
		for i := range c.t.Rows {
			// The sort spills to disk as it goes; poll so deadlines and
			// cancellation interrupt it at the usual cadence. The cause
			// is returned bare — the caller turns it into the same
			// graceful interruption as a budget breach in the pair loop.
			// Either way the abandoned sort's partial run files are
			// removed: they were never recorded in the manifest, so
			// nothing could ever reuse them.
			if bud != nil {
				if err := bud.poll(i + 1); err != nil {
					srt.Discard()
					return cfg, nil, err
				}
			}
			if err := srt.Add(&c.t.Rows[i]); err != nil {
				srt.Discard()
				return cfg, nil, c.wrapSpill(pass, err)
			}
		}
		runs, err = srt.Finish()
		if err != nil {
			srt.Discard()
			return cfg, nil, c.wrapSpill(pass, err)
		}
		c.st.record(key, &spillEntry{
			Candidate: c.t.Candidate.Name, Pass: pass, Rows: len(c.t.Rows),
			Fingerprint: fp, Runs: runs,
		})
	}
	var bytes int64
	for _, r := range runs {
		bytes += r.Bytes
	}
	if m := c.st.m; m != nil {
		if reused {
			m.SpillRunsReused.Add(int64(len(runs)))
		} else {
			m.SpillRuns.Add(int64(len(runs)))
			m.SpillBytesWritten.Add(bytes)
		}
		m.SpillWallNanos.Add(int64(time.Since(start)))
	}
	if sp := parent.Child(obs.SpanSpill,
		obs.String(obs.AttrCandidate, c.t.Candidate.Name),
		obs.Int(obs.AttrPass, pass),
		obs.Int(obs.AttrSpillRuns, len(runs)),
		obs.Int64(obs.AttrSpillBytes, bytes),
		obs.Bool(obs.AttrSpillReused, reused)); sp != nil {
		sp.End()
	}
	return cfg, runs, nil
}

// source externally sorts one key pass (or reuses fingerprinted runs
// from an earlier process) and returns the merged row stream.
func (c *candSpiller) source(pass int, parent *obs.Span, bud *budget) (rowSource, error) {
	cfg, runs, err := c.runsFor(pass, parent, bud)
	if err != nil {
		return nil, err
	}
	it, err := extsort.MergeRuns(cfg, runs)
	if err != nil {
		return nil, c.wrapSpill(pass, err)
	}
	return &spillSource{c: c, it: it}, nil
}

// rangeSource opens a row stream over the merged slice [lo, hi) of
// already-resolved runs — one shard's halo-plus-owned extent. Each
// shard holds its own iterator (and decodes its own row copies), so
// concurrent shards never share mutable state; decode-time derivation
// (descendant resolution, interning, sketches) is per-row and backed
// by concurrency-safe structures.
func (c *candSpiller) rangeSource(cfg extsort.Config[*GKRow], runs []extsort.RunFile, pass int, lo, hi int64) (rowSource, error) {
	it, err := extsort.MergeRunsRange(cfg, runs, lo, hi)
	if err != nil {
		return nil, c.wrapSpill(pass, err)
	}
	return &spillSource{c: c, it: it}, nil
}

// spillSource adapts the merge iterator to rowSource, wrapping errors
// with the candidate and flushing read-byte counts on close.
type spillSource struct {
	c      *candSpiller
	it     *extsort.Iterator[*GKRow]
	closed bool
}

func (s *spillSource) next() (*GKRow, error) {
	r, ok, err := s.it.Next()
	if err != nil {
		return nil, fmt.Errorf("core: candidate %q: spill: %w", s.c.t.Candidate.Name, err)
	}
	if !ok {
		return nil, nil
	}
	return r, nil
}

func (s *spillSource) close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if m := s.c.st.m; m != nil {
		m.SpillBytesRead.Add(s.it.BytesRead())
	}
	return s.it.Close()
}
