package similarity

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLevenshteinBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
		{"same", "same", 0},
		{"a", "b", 1},
		{"Matrix", "Martix", 2}, // transposition costs 2 in plain Levenshtein
		{"über", "uber", 1},     // rune-wise, not byte-wise
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinMetricProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	symmetric := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	if err := quick.Check(symmetric, cfg); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	identity := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(identity, cfg); err != nil {
		t.Errorf("identity: %v", err)
	}
	triangle := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(triangle, &quick.Config{MaxCount: 100}); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
	bounded := func(a, b string) bool {
		d := Levenshtein(a, b)
		la, lb := len([]rune(a)), len([]rune(b))
		lo := la - lb
		if lo < 0 {
			lo = -lo
		}
		hi := la
		if lb > hi {
			hi = lb
		}
		return d >= lo && d <= hi
	}
	if err := quick.Check(bounded, cfg); err != nil {
		t.Errorf("bounds: %v", err)
	}
}

func TestLevenshteinBoundedAgreesWithExact(t *testing.T) {
	f := func(a, b string, m uint8) bool {
		max := int(m % 8)
		exact := Levenshtein(a, b)
		got := LevenshteinBounded(a, b, max)
		if exact <= max {
			return got == exact
		}
		return got == max+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinBoundedFastPath(t *testing.T) {
	if got := LevenshteinBounded("short", "a much longer string entirely", 3); got != 4 {
		t.Errorf("length fast path = %d, want 4", got)
	}
	if got := LevenshteinBounded("", "", 0); got != 0 {
		t.Errorf("empty = %d, want 0", got)
	}
	if got := LevenshteinBounded("abc", "", 2); got != 3 {
		t.Errorf("one empty over bound = %d, want 3", got)
	}
}

func TestNormalizedEdit(t *testing.T) {
	if got := NormalizedEdit("Matrix", "matrix"); got != 1 {
		t.Errorf("case-insensitive: %v, want 1", got)
	}
	if got := NormalizedEdit("", ""); got != 1 {
		t.Errorf("both empty: %v, want 1", got)
	}
	if got := NormalizedEdit("abc", "xyz"); got != 0 {
		t.Errorf("disjoint: %v, want 0", got)
	}
	got := NormalizedEdit("Matrix", "Matrix Reloaded")
	if got <= 0 || got >= 1 {
		t.Errorf("partial: %v, want in (0,1)", got)
	}
}

func TestNormalizedEditRange(t *testing.T) {
	f := func(a, b string) bool {
		s := NormalizedEdit(a, b)
		return s >= 0 && s <= 1 && !math.IsNaN(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNumeric(t *testing.T) {
	if got := Numeric("100", "100"); got != 1 {
		t.Errorf("equal: %v", got)
	}
	if got := Numeric("100", "50"); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("half: %v, want 0.5", got)
	}
	if got := Numeric("0", "0"); got != 1 {
		t.Errorf("zeros: %v", got)
	}
	if got := Numeric("10", "-10"); got != 0 {
		t.Errorf("clamp: %v, want 0", got)
	}
	// Falls back to edit similarity on non-numeric input.
	if got := Numeric("abc", "abc"); got != 1 {
		t.Errorf("fallback equal: %v", got)
	}
}

func TestYearSim(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"1999", "1999", 1},
		{"1999", "2000", 0.8},
		{"1999", "2001", 0.5},
		{"1999", "2010", 0},
		{"", "", 1}, // falls back to edit on empty
	}
	for _, c := range cases {
		if got := YearSim(c.a, c.b); got != c.want {
			t.Errorf("YearSim(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaro(t *testing.T) {
	if got := Jaro("martha", "marhta"); math.Abs(got-0.944444) > 1e-4 {
		t.Errorf("Jaro(martha,marhta) = %v, want ~0.9444", got)
	}
	if got := Jaro("", ""); got != 1 {
		t.Errorf("both empty = %v", got)
	}
	if got := Jaro("abc", ""); got != 0 {
		t.Errorf("one empty = %v", got)
	}
	if got := Jaro("abc", "xyz"); got != 0 {
		t.Errorf("disjoint = %v", got)
	}
}

func TestJaroWinkler(t *testing.T) {
	if got := JaroWinkler("martha", "marhta"); math.Abs(got-0.961111) > 1e-4 {
		t.Errorf("JW(martha,marhta) = %v, want ~0.9611", got)
	}
	// Prefix boost: JW >= Jaro always.
	f := func(a, b string) bool {
		jw, j := JaroWinkler(a, b), Jaro(a, b)
		return jw >= j-1e-12 && jw <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTokenJaccard(t *testing.T) {
	if got := TokenJaccard("the matrix", "matrix the"); got != 1 {
		t.Errorf("order-insensitive: %v", got)
	}
	if got := TokenJaccard("a b", "b c"); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("partial: %v, want 1/3", got)
	}
	if got := TokenJaccard("", ""); got != 1 {
		t.Errorf("empty: %v", got)
	}
	if got := TokenJaccard("a", ""); got != 0 {
		t.Errorf("one empty: %v", got)
	}
}

func TestExact(t *testing.T) {
	if Exact("The Matrix", "the  MATRIX") != 1 {
		t.Error("normalized equal should be 1")
	}
	if Exact("a", "b") != 0 {
		t.Error("different should be 0")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"", "edit", "EDIT", "numeric", "year", "jaro", "jarowinkler", "jaccard", "exact"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
	if len(Names()) != 11 {
		t.Errorf("Names() = %v, want 11 entries", Names())
	}
}

func TestSymmetryOfAllRegistered(t *testing.T) {
	for _, name := range Names() {
		fn, _ := ByName(name)
		f := func(a, b string) bool {
			x, y := fn(a, b), fn(b, a)
			return math.Abs(x-y) < 1e-9 && x >= 0 && x <= 1
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
