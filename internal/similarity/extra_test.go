package similarity

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSoundexClassicCodes(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Robert", "R163"},
		{"Rupert", "R163"},
		{"Ashcraft", "A261"},
		{"Ashcroft", "A261"},
		{"Tymczak", "T522"},
		{"Pfister", "P236"},
		{"Honeyman", "H555"},
		{"", ""},
		{"123", ""},
		{"A", "A000"},
	}
	for _, c := range cases {
		if got := Soundex(c.in); got != c.want {
			t.Errorf("Soundex(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSoundexSim(t *testing.T) {
	if SoundexSim("Robert", "Rupert") != 1 {
		t.Error("Robert/Rupert should match")
	}
	if SoundexSim("Robert", "Zorro") != 0 {
		t.Error("Robert/Zorro should not match")
	}
	if SoundexSim("", "") != 1 {
		t.Error("both empty should be 1")
	}
}

func TestTrigram(t *testing.T) {
	if got := Trigram("night", "night"); got != 1 {
		t.Errorf("identical = %v", got)
	}
	if got := Trigram("", ""); got != 1 {
		t.Errorf("both empty = %v", got)
	}
	if got := Trigram("abc", ""); got != 0 {
		t.Errorf("one empty = %v", got)
	}
	sim := Trigram("The Matrix", "The Matrx")
	if sim <= 0.5 || sim >= 1 {
		t.Errorf("near-duplicate trigram sim = %v, want in (0.5,1)", sim)
	}
	if got := Trigram("xyz", "abc"); got != 0 {
		t.Errorf("disjoint = %v", got)
	}
}

func TestBigramVsTrigram(t *testing.T) {
	// Bigrams are more forgiving than trigrams on short strings.
	a, b := "cat", "cut"
	if Bigram(a, b) < Trigram(a, b) {
		t.Errorf("bigram %v < trigram %v", Bigram(a, b), Trigram(a, b))
	}
}

func TestMongeElkan(t *testing.T) {
	if got := MongeElkan("Keanu Reeves", "Reeves Keanu"); got != 1 {
		t.Errorf("token order should not matter: %v", got)
	}
	if got := MongeElkan("", ""); got != 1 {
		t.Errorf("both empty = %v", got)
	}
	if got := MongeElkan("a", ""); got != 0 {
		t.Errorf("one empty = %v", got)
	}
	partial := MongeElkan("Keanu Reeves", "Keanu Smith")
	if partial <= 0.4 || partial >= 1 {
		t.Errorf("partial = %v", partial)
	}
}

func TestExtraFunctionsRegistered(t *testing.T) {
	for _, name := range []string{"soundex", "trigram", "bigram", "mongeelkan"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
}

func TestExtraRangeAndSymmetry(t *testing.T) {
	for _, name := range []string{"soundex", "trigram", "bigram", "mongeelkan"} {
		fn, _ := ByName(name)
		f := func(a, b string) bool {
			x, y := fn(a, b), fn(b, a)
			return x >= 0 && x <= 1 && math.Abs(x-y) < 1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestEditUpperBound(t *testing.T) {
	cases := []struct {
		a, b string
	}{
		{"Matrix", "Matrix"},
		{"Matrix", "The Matrix Reloaded"},
		{"short", "a considerably longer string"},
		{"", ""},
		{"", "x"},
	}
	for _, c := range cases {
		ub := EditUpperBound(c.a, c.b)
		actual := NormalizedEdit(c.a, c.b)
		if ub < actual-1e-9 {
			t.Errorf("EditUpperBound(%q,%q) = %v below actual %v", c.a, c.b, ub, actual)
		}
	}
}

// Property: the upper bound never underestimates the true similarity.
func TestEditUpperBoundIsUpper(t *testing.T) {
	f := func(a, b string) bool {
		return EditUpperBound(a, b) >= NormalizedEdit(a, b)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestODUpperBound(t *testing.T) {
	fields := []ODField{
		{Relevance: 0.8, Sim: NormalizedEdit},
		{Relevance: 0.2, Sim: Numeric},
	}
	bounded := FieldBounds([]string{"edit", "numeric"})
	if !bounded[0] || bounded[1] {
		t.Fatalf("FieldBounds = %v", bounded)
	}
	a := [][]string{{"Matrix"}, {"136"}}
	b := [][]string{{"The Matrix Reloaded"}, {"90"}}
	ub := ODUpperBound(fields, bounded, a, b)
	actual, err := ODSimilarity(fields, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ub < actual-1e-9 {
		t.Errorf("OD upper bound %v below actual %v", ub, actual)
	}
	// Non-edit field contributes the trivial bound.
	if ub < 0.2/1.0 {
		t.Errorf("trivial bound missing: %v", ub)
	}
}

func TestODUpperBoundMissingFields(t *testing.T) {
	fields := []ODField{
		{Relevance: 0.5, Sim: NormalizedEdit},
		{Relevance: 0.5, Sim: NormalizedEdit},
	}
	bounded := FieldBounds([]string{"", ""})
	// Field 2 missing on both sides: renormalizes like ODSimilarity.
	ub := ODUpperBound(fields, bounded, [][]string{{"abc"}, nil}, [][]string{{"abc"}, nil})
	if ub != 1 {
		t.Errorf("renormalized bound = %v, want 1", ub)
	}
	// One side missing: contributes zero.
	ub = ODUpperBound(fields, bounded, [][]string{{"abc"}, {"x"}}, [][]string{{"abc"}, nil})
	if math.Abs(ub-0.5) > 1e-9 {
		t.Errorf("one-sided bound = %v, want 0.5", ub)
	}
	// Everything missing.
	if got := ODUpperBound(fields, bounded, [][]string{nil, nil}, [][]string{nil, nil}); got != 0 {
		t.Errorf("all missing = %v, want 0", got)
	}
}

// Property: ODUpperBound dominates ODSimilarity for edit-based configs.
func TestODUpperBoundDominates(t *testing.T) {
	fields := []ODField{
		{Relevance: 0.7, Sim: NormalizedEdit},
		{Relevance: 0.3, Sim: NormalizedEdit},
	}
	bounded := FieldBounds([]string{"edit", ""})
	f := func(a1, a2, b1, b2 string) bool {
		a := [][]string{{a1}, {a2}}
		b := [][]string{{b1}, {b2}}
		actual, err := ODSimilarity(fields, a, b)
		if err != nil {
			return false
		}
		return ODUpperBound(fields, bounded, a, b) >= actual-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
