package similarity

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the memo layer for the SXNM hot path. Multi-pass
// sliding windows revisit the same element pairs (different keys sort
// similar elements near each other again), and dirty corpora repeat
// literal values (the same title typo planted many times), so both the
// Def. 2 per-value similarity calls and the Def. 3 cluster-ID overlaps
// recompute identical inputs. Cache memoizes them.
//
// Determinism is the contract: every similarity Func is pure, so a
// memo hit returns the exact float64 the Func would have produced —
// the same inputs ran through the same IEEE-754 operations. Operands
// are NOT swapped into a canonical order (a Func is not required to be
// float-exact under argument swap), so (a,b) and (b,a) are distinct
// entries. Engine results are therefore byte-identical with the cache
// on or off; only CPU time and the CacheStats counters change.

// DefaultCacheSize is the value-pair entry capacity used when a
// non-positive size is given to NewCache. Entries are (field, a, b) →
// float64; at typical OD value lengths this is a few MB per candidate.
const DefaultCacheSize = 1 << 16

// cacheShards spreads the value-pair map over independently locked
// shards so PairWorkers goroutines rarely contend. Must be a power of
// two.
const cacheShards = 16

// SetID names an interned descendant cluster-ID multiset. Two rows
// whose descendant lists intern to the same SetID have exactly equal
// multisets, so their Def. 3 overlap is 1 without any counting. The
// zero SetID is always the empty multiset.
type SetID int32

// CacheStats are the counters a Cache accumulates; the engine flushes
// them into obs metrics and the run report. They never feed back into
// core.Stats — detection statistics stay identical with caching on or
// off.
type CacheStats struct {
	Hits      int64 // value-pair or overlap results served from memory
	Misses    int64 // results computed and inserted
	Evictions int64 // entries dropped to respect the capacity bound
	DescSets  int64 // distinct descendant multisets interned
}

// Cache memoizes similarity computations for one candidate's detection
// passes. It is safe for concurrent use by the pair workers; all
// methods on a nil Cache compute directly and count nothing.
//
// Two layers:
//   - value-pair scores: an LRU-bounded map from (OD field, value a,
//     value b) to the field's similarity Func result;
//   - descendant sets: cluster-ID multisets interned to SetIDs
//     (InternDesc) with a bounded memo of pairwise overlaps, so the
//     Def. 3 comparison of two rows degenerates to integer ID checks.
type Cache struct {
	shards [cacheShards]valueShard
	desc   descStore

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	descSets  atomic.Int64
}

// NewCache returns a cache holding at most size value-pair entries
// (DefaultCacheSize when size <= 0), split evenly across shards. The
// overlap memo is bounded by the same size.
func NewCache(size int) *Cache {
	if size <= 0 {
		size = DefaultCacheSize
	}
	per := size / cacheShards
	if per < 4 {
		per = 4
	}
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].init(per)
	}
	c.desc.init(size)
	// Reserve SetID 0 for the empty multiset so rows lacking a
	// descendant type compare against a well-known ID.
	if id := c.desc.intern(nil, &c.descSets); id != 0 {
		panic("similarity: empty descendant set not interned as SetID 0")
	}
	return c
}

// Stats returns the counters accumulated so far (zero for nil).
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		DescSets:  c.descSets.Load(),
	}
}

// Score returns sim(a, b), memoized under (field, a, b). field
// identifies which similarity Func the values belong to (the OD field
// index), keeping entries of different Funcs apart. A nil Cache
// computes directly.
func (c *Cache) Score(field int, sim Func, a, b string) float64 {
	if c == nil {
		return sim(a, b)
	}
	sh := &c.shards[pairShard(field, a, b)&(cacheShards-1)]
	k := valueKey{field: int32(field), a: a, b: b}
	if v, ok := sh.get(k); ok {
		c.hits.Add(1)
		return v
	}
	c.misses.Add(1)
	// Compute outside the shard lock: a concurrent duplicate compute is
	// benign (pure function, identical result) and far cheaper than
	// holding the lock across an edit-distance run.
	v := sim(a, b)
	c.evictions.Add(sh.put(k, v))
	return v
}

// Lookup returns the memoized score for (field, a, b) without
// computing on a miss — the probe the threshold-aware fast path uses
// before deciding between a banded and a full edit-distance run. A hit
// counts toward the hit statistics; a miss counts nothing (the miss is
// accounted by the Insert that follows a computation, and a cut-off
// banded run inserts nothing). Nil-safe: a nil Cache never hits.
func (c *Cache) Lookup(field int, a, b string) (float64, bool) {
	if c == nil {
		return 0, false
	}
	sh := &c.shards[pairShard(field, a, b)&(cacheShards-1)]
	if v, ok := sh.get(valueKey{field: int32(field), a: a, b: b}); ok {
		c.hits.Add(1)
		return v, true
	}
	return 0, false
}

// Insert memoizes an externally computed score under (field, a, b).
// The caller must only ever insert the exact value the field's
// similarity Func would produce for (a, b) — the purity contract all
// memo hits rely on. The fast path satisfies it by inserting only
// within-band edit scores, which are bit-identical to NormalizedEdit;
// cut-off (upper-bound) results are never inserted. Nil-safe no-op.
func (c *Cache) Insert(field int, a, b string, v float64) {
	if c == nil {
		return
	}
	c.misses.Add(1)
	sh := &c.shards[pairShard(field, a, b)&(cacheShards-1)]
	c.evictions.Add(sh.put(valueKey{field: int32(field), a: a, b: b}, v))
}

// ODSimilarity is the memoized equivalent of the package-level
// ODSimilarity: identical field iteration, weighting, and best-match
// early exit, with each value-pair score routed through the cache. A
// nil Cache delegates to the uncached implementation.
func (c *Cache) ODSimilarity(fields []ODField, a, b [][]string) (float64, error) {
	if c == nil {
		return ODSimilarity(fields, a, b)
	}
	if len(a) != len(fields) || len(b) != len(fields) {
		return 0, fmt.Errorf("similarity: OD value count mismatch: %d fields, %d/%d values", len(fields), len(a), len(b))
	}
	var sum, weight float64
	for i, f := range fields {
		va, vb := a[i], b[i]
		if len(va) == 0 && len(vb) == 0 {
			continue // both missing: field is uninformative
		}
		weight += f.Relevance
		if len(va) == 0 || len(vb) == 0 {
			continue // one side missing: counts as similarity 0
		}
		sum += f.Relevance * c.bestMatch(i, f.Sim, va, vb)
	}
	if weight == 0 {
		return 0, nil
	}
	return sum / weight, nil
}

// ODFieldSims is the memoized equivalent of the package-level
// ODFieldSims; see ODSimilarity for the equivalence argument.
func (c *Cache) ODFieldSims(fields []ODField, a, b [][]string) ([]float64, error) {
	if c == nil {
		return ODFieldSims(fields, a, b)
	}
	if len(a) != len(fields) || len(b) != len(fields) {
		return nil, fmt.Errorf("similarity: OD value count mismatch: %d fields, %d/%d values", len(fields), len(a), len(b))
	}
	out := make([]float64, len(fields))
	for i, f := range fields {
		va, vb := a[i], b[i]
		switch {
		case len(va) == 0 && len(vb) == 0:
			out[i] = FieldAbsent
		case len(va) == 0 || len(vb) == 0:
			out[i] = 0
		default:
			out[i] = c.bestMatch(i, f.Sim, va, vb)
		}
	}
	return out, nil
}

// bestMatch mirrors the uncached bestMatch exactly — same cross
// product order, same strict improvement test, same early exit at 1 —
// so the returned float is bit-identical to the uncached path.
func (c *Cache) bestMatch(field int, sim Func, va, vb []string) float64 {
	best := 0.0
	for _, x := range va {
		for _, y := range vb {
			if s := c.Score(field, sim, x, y); s > best {
				best = s
				if best == 1 {
					return 1
				}
			}
		}
	}
	return best
}

// InternDesc interns a descendant cluster-ID list as its canonical
// multiset and returns its SetID. Lists that are permutations of each
// other intern to the same ID. The input is not retained or modified.
func (c *Cache) InternDesc(list []int) SetID {
	if c == nil {
		return 0
	}
	return c.desc.intern(list, &c.descSets)
}

// OverlapIDs returns the Def. 3 multiset overlap of two interned sets.
// Equal IDs short-circuit to 1 (equal multisets by construction —
// including empty vs empty, where Overlap is vacuously 1); other pairs
// are memoized. The result is exactly Overlap applied to the interned
// multisets: overlap arithmetic is integer counting, unaffected by the
// canonical ordering.
func (c *Cache) OverlapIDs(x, y SetID) float64 {
	if x == y {
		c.hits.Add(1)
		return 1
	}
	if v, ok := c.desc.overlapGet(x, y); ok {
		c.hits.Add(1)
		return v
	}
	c.misses.Add(1)
	v := Overlap(c.desc.list(x), c.desc.list(y))
	c.evictions.Add(c.desc.overlapPut(x, y, v))
	return v
}

// valueKey identifies one memoized similarity computation. Using the
// struct itself as the map key makes collisions impossible by
// construction; AppendPairKey is the equivalent canonical byte
// encoding used for shard hashing and fuzzed for injectivity.
type valueKey struct {
	field int32
	a, b  string
}

// valueShard is one lock's worth of the value-pair LRU: a map into a
// slab of entries linked into a recency list by index. Slab storage
// keeps eviction allocation-free after warm-up.
type valueShard struct {
	mu         sync.Mutex
	m          map[valueKey]int32
	ents       []valueEntry
	head, tail int32 // recency list: head = most recent
	cap        int
}

type valueEntry struct {
	key        valueKey
	val        float64
	prev, next int32
}

func (s *valueShard) init(capacity int) {
	s.cap = capacity
	s.m = make(map[valueKey]int32, capacity)
	s.ents = make([]valueEntry, 0, capacity)
	s.head, s.tail = -1, -1
}

func (s *valueShard) get(k valueKey) (float64, bool) {
	s.mu.Lock()
	i, ok := s.m[k]
	if !ok {
		s.mu.Unlock()
		return 0, false
	}
	s.moveFront(i)
	v := s.ents[i].val
	s.mu.Unlock()
	return v, true
}

// put inserts k→v, evicting the least recently used entry when full,
// and returns the number of evictions (0 or 1).
func (s *valueShard) put(k valueKey, v float64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.m[k]; ok {
		// A concurrent worker computed the same pair first; the values
		// are identical (pure function), keep the existing entry.
		s.moveFront(i)
		return 0
	}
	var evicted int64
	var i int32
	if len(s.ents) < s.cap {
		i = int32(len(s.ents))
		s.ents = append(s.ents, valueEntry{})
	} else {
		i = s.tail
		s.detach(i)
		delete(s.m, s.ents[i].key)
		evicted = 1
	}
	s.ents[i] = valueEntry{key: k, val: v, prev: -1, next: -1}
	s.pushFront(i)
	s.m[k] = i
	return evicted
}

func (s *valueShard) moveFront(i int32) {
	if s.head == i {
		return
	}
	s.detach(i)
	s.pushFront(i)
}

func (s *valueShard) detach(i int32) {
	e := &s.ents[i]
	if e.prev >= 0 {
		s.ents[e.prev].next = e.next
	} else if s.head == i {
		s.head = e.next
	}
	if e.next >= 0 {
		s.ents[e.next].prev = e.prev
	} else if s.tail == i {
		s.tail = e.prev
	}
	e.prev, e.next = -1, -1
}

func (s *valueShard) pushFront(i int32) {
	e := &s.ents[i]
	e.prev, e.next = -1, s.head
	if s.head >= 0 {
		s.ents[s.head].prev = i
	}
	s.head = i
	if s.tail < 0 {
		s.tail = i
	}
}

// descStore interns descendant multisets and memoizes their pairwise
// overlaps. Interning is append-only; the overlap memo is cleared
// wholesale when it reaches capacity (overlap pairs are cheap to
// recompute and the clear keeps memory bounded without bookkeeping).
type descStore struct {
	mu         sync.Mutex
	ids        map[string]SetID
	lists      [][]int
	overlap    map[uint64]float64
	overlapCap int
}

func (d *descStore) init(capacity int) {
	d.ids = make(map[string]SetID)
	d.overlap = make(map[uint64]float64)
	d.overlapCap = capacity
}

func (d *descStore) intern(list []int, count *atomic.Int64) SetID {
	canon := make([]int, len(list))
	copy(canon, list)
	sort.Ints(canon)
	var buf []byte
	for _, id := range canon {
		buf = binary.AppendVarint(buf, int64(id))
	}
	key := string(buf)
	d.mu.Lock()
	if id, ok := d.ids[key]; ok {
		d.mu.Unlock()
		return id
	}
	id := SetID(len(d.lists))
	d.lists = append(d.lists, canon)
	d.ids[key] = id
	d.mu.Unlock()
	count.Add(1)
	return id
}

func (d *descStore) list(id SetID) []int {
	d.mu.Lock()
	l := d.lists[id]
	d.mu.Unlock()
	return l
}

func overlapKey(x, y SetID) uint64 {
	if x > y {
		x, y = y, x
	}
	return uint64(uint32(x))<<32 | uint64(uint32(y))
}

func (d *descStore) overlapGet(x, y SetID) (float64, bool) {
	d.mu.Lock()
	v, ok := d.overlap[overlapKey(x, y)]
	d.mu.Unlock()
	return v, ok
}

// overlapPut memoizes one overlap, returning how many entries were
// dropped to stay within the capacity bound.
func (d *descStore) overlapPut(x, y SetID, v float64) int64 {
	d.mu.Lock()
	var evicted int64
	if len(d.overlap) >= d.overlapCap {
		evicted = int64(len(d.overlap))
		d.overlap = make(map[uint64]float64)
	}
	d.overlap[overlapKey(x, y)] = v
	d.mu.Unlock()
	return evicted
}

// AppendPairKey appends the canonical byte encoding of a value-pair
// cache key to dst and returns the extended slice: varint(field),
// uvarint(len(a)), the bytes of a, uvarint(len(b)), the bytes of b.
// Length-prefixing makes the encoding injective — no choice of
// separator bytes inside the values (tabs, pipes, NULs, invalid UTF-8)
// can make two distinct (field, a, b) triples collide. FuzzPairKey
// proves the round trip through DecodePairKey.
func AppendPairKey(dst []byte, field int, a, b string) []byte {
	dst = binary.AppendVarint(dst, int64(field))
	dst = binary.AppendUvarint(dst, uint64(len(a)))
	dst = append(dst, a...)
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	dst = append(dst, b...)
	return dst
}

// DecodePairKey parses an encoding produced by AppendPairKey back into
// its (field, a, b) triple. Truncated, oversized, or trailing-garbage
// inputs return an error rather than a misparse.
func DecodePairKey(key []byte) (field int, a, b string, err error) {
	f, n := binary.Varint(key)
	if n <= 0 {
		return 0, "", "", fmt.Errorf("similarity: pair key: bad field varint")
	}
	key = key[n:]
	a, key, err = decodeLenPrefixed(key)
	if err != nil {
		return 0, "", "", fmt.Errorf("similarity: pair key: first value: %w", err)
	}
	b, key, err = decodeLenPrefixed(key)
	if err != nil {
		return 0, "", "", fmt.Errorf("similarity: pair key: second value: %w", err)
	}
	if len(key) != 0 {
		return 0, "", "", fmt.Errorf("similarity: pair key: %d trailing bytes", len(key))
	}
	return int(f), a, b, nil
}

func decodeLenPrefixed(key []byte) (string, []byte, error) {
	l, n := binary.Uvarint(key)
	if n <= 0 {
		return "", nil, fmt.Errorf("bad length uvarint")
	}
	key = key[n:]
	if l > uint64(len(key)) {
		return "", nil, fmt.Errorf("length %d exceeds %d remaining bytes", l, len(key))
	}
	return string(key[:l]), key[l:], nil
}

// pairShard hashes the canonical key encoding (computed incrementally,
// no allocation) with FNV-1a to pick a shard. Only distribution
// matters here; injectivity is the map key's job.
func pairShard(field int, a, b string) uint32 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(uint32(field)))
	mix(uint64(len(a)))
	for i := 0; i < len(a); i++ {
		h ^= uint64(a[i])
		h *= prime64
	}
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= prime64
	}
	return uint32(h ^ h>>32)
}
