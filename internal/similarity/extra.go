package similarity

import (
	"strings"

	"repro/internal/strutil"
)

// This file holds the similarity measures beyond the paper's defaults:
// phonetic (Soundex), q-gram, and token-level hybrids. They are
// registered under the same registry as the core functions so
// configurations can select them per OD path.

// Soundex returns the American Soundex code of s (letter + three
// digits, e.g. "Robert" -> "R163"). Non-letters are ignored; an empty
// or letterless input yields "".
func Soundex(s string) string {
	s = strutil.Normalize(s)
	var first rune
	var b strings.Builder
	prev := byte(0)
	for _, r := range s {
		if b.Len() == 3 {
			break
		}
		if r < 'A' || r > 'Z' {
			// Separators reset the adjacency rule so "AB CB" keeps
			// both B codes, matching common implementations.
			prev = 0
			continue
		}
		code := soundexCode(r)
		if first == 0 {
			first = r
			prev = code
			continue
		}
		switch {
		case code == 0:
			// H and W are transparent (the previous code survives);
			// vowels break the adjacency rule.
			if r != 'H' && r != 'W' {
				prev = 0
			}
		case code != prev:
			b.WriteByte('0' + code)
			prev = code
		default:
			// Same code as the previous letter: collapsed.
		}
	}
	if first == 0 {
		return ""
	}
	out := string(first) + b.String()
	for len(out) < 4 {
		out += "0"
	}
	return out
}

func soundexCode(r rune) byte {
	switch r {
	case 'B', 'F', 'P', 'V':
		return 1
	case 'C', 'G', 'J', 'K', 'Q', 'S', 'X', 'Z':
		return 2
	case 'D', 'T':
		return 3
	case 'L':
		return 4
	case 'M', 'N':
		return 5
	case 'R':
		return 6
	}
	return 0
}

// SoundexSim is 1 when both strings share a Soundex code, 0 otherwise
// (with empty-input conventions matching Exact).
func SoundexSim(a, b string) float64 {
	ca, cb := Soundex(a), Soundex(b)
	if ca == "" && cb == "" {
		return 1
	}
	if ca == cb {
		return 1
	}
	return 0
}

// qgrams returns the padded q-grams of the normalized string. Padding
// with q−1 sentinel runes weights the string boundaries, the standard
// construction.
func qgrams(s string, q int) []string {
	s = strutil.Normalize(s)
	if s == "" {
		return nil
	}
	pad := strings.Repeat("#", q-1)
	runes := []rune(pad + s + pad)
	if len(runes) < q {
		return []string{string(runes)}
	}
	out := make([]string, 0, len(runes)-q+1)
	for i := 0; i+q <= len(runes); i++ {
		out = append(out, string(runes[i:i+q]))
	}
	return out
}

// qgramOverlap computes the Dice coefficient over q-gram multisets:
// 2·|A∩B| / (|A|+|B|).
func qgramOverlap(a, b string, q int) float64 {
	ga, gb := qgrams(a, q), qgrams(b, q)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	count := make(map[string]int, len(ga))
	for _, g := range ga {
		count[g]++
	}
	inter := 0
	for _, g := range gb {
		if count[g] > 0 {
			count[g]--
			inter++
		}
	}
	return 2 * float64(inter) / float64(len(ga)+len(gb))
}

// Trigram is the Dice similarity over padded 3-grams; robust against
// transpositions and local edits, cheaper than edit distance on long
// strings.
func Trigram(a, b string) float64 {
	return qgramOverlap(a, b, 3)
}

// Bigram is the Dice similarity over padded 2-grams.
func Bigram(a, b string) float64 {
	return qgramOverlap(a, b, 2)
}

// MongeElkan computes the asymmetric Monge-Elkan token similarity with
// NormalizedEdit as the inner measure, symmetrized by averaging both
// directions: tokens of one string are matched to their most similar
// counterpart in the other.
func MongeElkan(a, b string) float64 {
	ta, tb := strutil.Fields(a), strutil.Fields(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	return (mongeElkanDir(ta, tb) + mongeElkanDir(tb, ta)) / 2
}

func mongeElkanDir(ta, tb []string) float64 {
	var sum float64
	for _, x := range ta {
		best := 0.0
		for _, y := range tb {
			if s := NormalizedEditRaw(x, y); s > best {
				best = s
				if best == 1 {
					break
				}
			}
		}
		sum += best
	}
	return sum / float64(len(ta))
}

func init() {
	registry["soundex"] = SoundexSim
	registry["trigram"] = Trigram
	registry["bigram"] = Bigram
	registry["mongeelkan"] = MongeElkan
}
