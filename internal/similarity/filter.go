package similarity

import "repro/internal/strutil"

// This file implements the comparison filter of the paper's Sec. 5
// ("filters are quite effective to avoid comparisons, especially with
// the edit distance operations", citing Weis & Naumann 2004): a cheap
// upper bound on the OD similarity that lets the engine skip the
// expensive edit-distance computation when even the most optimistic
// outcome could not classify the pair as a duplicate.

// EditUpperBound bounds NormalizedEdit from above using lengths only:
// the edit distance is at least the length difference, so
// sim <= 1 − |len(a)−len(b)| / max(len). O(n) (normalization) instead
// of O(n·m).
func EditUpperBound(a, b string) float64 {
	la := len([]rune(strutil.Normalize(a)))
	lb := len([]rune(strutil.Normalize(b)))
	if la == 0 && lb == 0 {
		return 1
	}
	m := la
	if lb > m {
		m = lb
	}
	d := la - lb
	if d < 0 {
		d = -d
	}
	return 1 - float64(d)/float64(m)
}

// ODUpperBound bounds ODSimilarity from above, using EditUpperBound
// for edit-based fields and the trivial bound 1 for every other
// similarity function. It mirrors ODSimilarity's weighting exactly
// (renormalization over present fields, zero for one-sided values),
// so ODUpperBound(...) >= ODSimilarity(...) always holds for
// configurations whose fields use the edit measure.
//
// bounded reports, per field, whether the field's function is the
// bounded edit measure; callers obtain it once per candidate from
// FieldBounds.
func ODUpperBound(fields []ODField, bounded []bool, a, b [][]string) float64 {
	var sum, weight float64
	for i, f := range fields {
		va, vb := a[i], b[i]
		if len(va) == 0 && len(vb) == 0 {
			continue
		}
		weight += f.Relevance
		if len(va) == 0 || len(vb) == 0 {
			continue
		}
		if i < len(bounded) && bounded[i] {
			best := 0.0
			for _, x := range va {
				for _, y := range vb {
					if u := EditUpperBound(x, y); u > best {
						best = u
					}
				}
			}
			sum += f.Relevance * best
		} else {
			sum += f.Relevance // trivial bound
		}
	}
	if weight == 0 {
		return 0
	}
	return sum / weight
}

// EditUpperBoundValues bounds the best-match similarity of one OD
// field (the bestMatch cross product) from above using precomputed
// sketches: the field's best match cannot exceed the best pairwise
// sketch bound. Never weaker than EditUpperBound on the same values —
// the histogram lower bound subsumes the length bound — and never
// below the exact best match (term-wise: EditUpperBoundSketch >=
// NormalizedEdit, and max is monotone).
func EditUpperBoundValues(ska, skb []ValueSketch) float64 {
	best := 0.0
	for i := range ska {
		for j := range skb {
			if u := EditUpperBoundSketch(&ska[i], &skb[j]); u > best {
				best = u
				if best >= 1 {
					return best
				}
			}
		}
	}
	return best
}

// FieldBounds reports, per configured OD similarity function name,
// whether the length-based upper bound applies (only the edit measure
// qualifies; all other functions get the trivial bound).
func FieldBounds(simNames []string) []bool {
	out := make([]bool, len(simNames))
	for i, name := range simNames {
		out[i] = name == "" || name == "edit"
	}
	return out
}
