// Package similarity implements the similarity measures of SXNM:
// string edit distance (the paper's φ^OD default), a numeric distance
// for numeric values, token- and set-overlap measures, the weighted
// object-description similarity of Definition 2, and the descendant
// cluster-overlap similarity of Definition 3.
//
// All similarities are normalized to [0, 1], where 1 means identical.
package similarity

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/strutil"
)

// Func is a normalized string similarity in [0,1].
type Func func(a, b string) float64

// Levenshtein returns the edit distance between a and b: the minimum
// number of single-rune insertions, deletions, and substitutions that
// transform one into the other.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	// Keep the shorter string in rb to bound the row length.
	if len(rb) > len(ra) {
		ra, rb = rb, ra
	}
	prev := make([]int, len(rb)+1)
	curr := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		curr[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			curr[j] = min3(prev[j]+1, curr[j-1]+1, prev[j-1]+cost)
		}
		prev, curr = curr, prev
	}
	return prev[len(rb)]
}

// LevenshteinBounded returns the edit distance if it is at most max,
// or max+1 otherwise. The banded computation makes window comparisons
// cheap when strings are clearly different; it is the default edit
// path under the threshold-aware filter, which derives max from the
// classification threshold and the field's weight (see
// core/fastpath.go). FuzzBoundSoundness pins the contract: exact
// whenever the true distance fits the band, max+1 beyond it.
func LevenshteinBounded(a, b string, max int) int {
	ra, rb := []rune(a), []rune(b)
	if abs(len(ra)-len(rb)) > max {
		return max + 1
	}
	if len(rb) > len(ra) {
		ra, rb = rb, ra
	}
	if len(rb) == 0 {
		if len(ra) > max {
			return max + 1
		}
		return len(ra)
	}
	const inf = math.MaxInt32
	prev := make([]int, len(rb)+1)
	curr := make([]int, len(rb)+1)
	for j := range prev {
		if j <= max {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= len(ra); i++ {
		lo := maxInt(1, i-max)
		hi := minInt(len(rb), i+max)
		curr[0] = i
		if i > max {
			curr[0] = inf
		}
		if lo > 1 {
			curr[lo-1] = inf
		}
		best := inf
		for j := lo; j <= hi; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			curr[j] = min3(safeInc(prev[j]), safeInc(curr[j-1]), prev[j-1]+cost)
			if curr[j] < best {
				best = curr[j]
			}
		}
		if hi < len(rb) {
			curr[hi+1] = inf
		}
		if best > max {
			return max + 1
		}
		prev, curr = curr, prev
	}
	d := prev[len(rb)]
	if d > max {
		return max + 1
	}
	return d
}

func safeInc(v int) int {
	if v >= math.MaxInt32 {
		return v
	}
	return v + 1
}

// NormalizedEdit is the paper's default φ^OD: 1 − d(a,b) / max(|a|,|b|)
// over case- and whitespace-normalized strings. Two empty strings are
// considered identical.
func NormalizedEdit(a, b string) float64 {
	a, b = strutil.Normalize(a), strutil.Normalize(b)
	if a == b {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	m := maxInt(la, lb)
	if m == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

// NormalizedEditRaw is NormalizedEdit without normalization; useful for
// case-sensitive comparisons and property tests of the raw metric.
func NormalizedEditRaw(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	m := maxInt(la, lb)
	if m == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

// Numeric compares two strings as numbers: sim = 1 − |x−y| / max(|x|,|y|),
// clamped to [0,1]. Non-numeric input falls back to NormalizedEdit, so
// Numeric is safe to configure for columns that are only usually
// numeric (years, lengths).
func Numeric(a, b string) float64 {
	x, errX := strconv.ParseFloat(strings.TrimSpace(a), 64)
	y, errY := strconv.ParseFloat(strings.TrimSpace(b), 64)
	if errX != nil || errY != nil {
		return NormalizedEdit(a, b)
	}
	if x == y {
		return 1
	}
	den := math.Max(math.Abs(x), math.Abs(y))
	if den == 0 {
		return 1
	}
	s := 1 - math.Abs(x-y)/den
	if s < 0 {
		return 0
	}
	return s
}

// YearSim compares two year strings: exact match 1, off-by-one 0.8,
// off-by-two 0.5, otherwise 0. Non-numeric input falls back to
// NormalizedEdit. This models the "numeric distance function for
// numerical values" the paper suggests as a domain-aware φ^OD.
func YearSim(a, b string) float64 {
	x, errX := strconv.Atoi(strings.TrimSpace(a))
	y, errY := strconv.Atoi(strings.TrimSpace(b))
	if errX != nil || errY != nil {
		return NormalizedEdit(a, b)
	}
	switch abs(x - y) {
	case 0:
		return 1
	case 1:
		return 0.8
	case 2:
		return 0.5
	}
	return 0
}

// Jaro returns the Jaro similarity of a and b.
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := maxInt(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := maxInt(0, i-window)
		hi := minInt(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if !matchB[j] && ra[i] == rb[j] {
				matchA[i], matchB[j] = true, true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler boosts Jaro similarity for strings sharing a prefix (up
// to 4 runes) with the standard scaling factor 0.1.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// TokenJaccard tokenizes both strings (normalized, whitespace-split)
// and returns |A∩B| / |A∪B| over the token sets.
func TokenJaccard(a, b string) float64 {
	ta, tb := strutil.Fields(a), strutil.Fields(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	set := make(map[string]uint8, len(ta)+len(tb))
	for _, t := range ta {
		set[t] |= 1
	}
	for _, t := range tb {
		set[t] |= 2
	}
	inter, union := 0, 0
	for _, m := range set {
		union++
		if m == 3 {
			inter++
		}
	}
	return float64(inter) / float64(union)
}

// Exact is 1 for equal normalized strings and 0 otherwise.
func Exact(a, b string) float64 {
	if strutil.Normalize(a) == strutil.Normalize(b) {
		return 1
	}
	return 0
}

// registry maps configuration names to similarity functions so configs
// can select φ^OD per path.
var registry = map[string]Func{
	"edit":        NormalizedEdit,
	"numeric":     Numeric,
	"year":        YearSim,
	"jaro":        Jaro,
	"jarowinkler": JaroWinkler,
	"jaccard":     TokenJaccard,
	"exact":       Exact,
}

// ByName resolves a configured similarity function name. The empty
// name resolves to "edit", the paper's default.
func ByName(name string) (Func, error) {
	if name == "" {
		name = "edit"
	}
	f, ok := registry[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("similarity: unknown function %q (have edit, numeric, year, jaro, jarowinkler, jaccard, exact)", name)
	}
	return f, nil
}

// Names lists the registered similarity function names.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	return out
}

func min3(a, b, c int) int { return minInt(a, minInt(b, c)) }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
