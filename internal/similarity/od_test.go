package similarity

import (
	"math"
	"testing"
	"testing/quick"
)

func TestODSimilarityWeighted(t *testing.T) {
	fields := []ODField{
		{Relevance: 0.8, Sim: NormalizedEdit},
		{Relevance: 0.2, Sim: NormalizedEdit},
	}
	// Identical values on both fields.
	s, err := ODSimilarity(fields, [][]string{{"Matrix"}, {"1999"}}, [][]string{{"Matrix"}, {"1999"}})
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Errorf("identical = %v, want 1", s)
	}
	// First field identical, second disjoint: 0.8·1 + 0.2·0 = 0.8.
	s, err = ODSimilarity(fields, [][]string{{"Matrix"}, {"1999"}}, [][]string{{"Matrix"}, {"xxxx"}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.8) > 1e-9 {
		t.Errorf("mixed = %v, want 0.8", s)
	}
}

func TestODSimilarityMissingBothSides(t *testing.T) {
	fields := []ODField{
		{Relevance: 0.5, Sim: NormalizedEdit},
		{Relevance: 0.5, Sim: NormalizedEdit},
	}
	// Second field missing on both sides: weight renormalizes, so the
	// matching first field alone gives 1.
	s, err := ODSimilarity(fields, [][]string{{"Matrix"}, nil}, [][]string{{"Matrix"}, nil})
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Errorf("renormalized = %v, want 1", s)
	}
}

func TestODSimilarityMissingOneSide(t *testing.T) {
	fields := []ODField{{Relevance: 1, Sim: NormalizedEdit}}
	s, err := ODSimilarity(fields, [][]string{{"Matrix"}}, [][]string{nil})
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Errorf("one-sided = %v, want 0", s)
	}
}

func TestODSimilarityAllMissing(t *testing.T) {
	fields := []ODField{{Relevance: 1, Sim: NormalizedEdit}}
	s, err := ODSimilarity(fields, [][]string{nil}, [][]string{nil})
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Errorf("all missing = %v, want 0", s)
	}
}

func TestODSimilarityMultiValueBestMatch(t *testing.T) {
	fields := []ODField{{Relevance: 1, Sim: NormalizedEdit}}
	s, err := ODSimilarity(fields,
		[][]string{{"Various", "Mozart"}},
		[][]string{{"Mozart"}})
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Errorf("best match = %v, want 1", s)
	}
}

func TestODSimilarityMismatch(t *testing.T) {
	fields := []ODField{{Relevance: 1, Sim: NormalizedEdit}}
	if _, err := ODSimilarity(fields, [][]string{}, [][]string{{"x"}}); err == nil {
		t.Error("expected error on value count mismatch")
	}
}

func TestOverlapPaperExample(t *testing.T) {
	// Fig. 2(b)/Table 2(b): e1's persons map to clusters {1,4,1}, e2's
	// to {4,1,8}. Multiset: inter = {1,4} (2), union = 4 -> 0.5.
	got := Overlap([]int{1, 4, 1}, []int{4, 1, 8})
	if math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Overlap = %v, want 0.5", got)
	}
}

func TestOverlapEdgeCases(t *testing.T) {
	if Overlap(nil, nil) != 1 {
		t.Error("both empty should be 1")
	}
	if Overlap([]int{1}, nil) != 0 {
		t.Error("one empty should be 0")
	}
	if Overlap([]int{1, 2}, []int{1, 2}) != 1 {
		t.Error("identical should be 1")
	}
	if Overlap([]int{1}, []int{2}) != 0 {
		t.Error("disjoint should be 0")
	}
	// Multiset semantics: duplicate IDs only count as many times as
	// they appear on both sides.
	got := Overlap([]int{1, 1, 1}, []int{1})
	if math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("multiset = %v, want 1/3", got)
	}
}

func TestOverlapProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	sym := func(a, b []int) bool {
		return math.Abs(Overlap(a, b)-Overlap(b, a)) < 1e-12
	}
	if err := quick.Check(sym, cfg); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	rng := func(a, b []int) bool {
		s := Overlap(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(rng, cfg); err != nil {
		t.Errorf("range: %v", err)
	}
	self := func(a []int) bool { return Overlap(a, a) == 1 }
	if err := quick.Check(self, cfg); err != nil {
		t.Errorf("self: %v", err)
	}
}

func TestAverage(t *testing.T) {
	if Average(nil) != 0 {
		t.Error("empty average should be 0")
	}
	if got := Average([]float64{0.2, 0.4, 0.6}); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("Average = %v, want 0.4", got)
	}
}

func TestWeightedAverage(t *testing.T) {
	got, err := WeightedAverage([]float64{1, 0}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("WeightedAverage = %v, want 0.75", got)
	}
	if _, err := WeightedAverage([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	got, err = WeightedAverage([]float64{1}, []float64{0})
	if err != nil || got != 0 {
		t.Errorf("zero weight = %v,%v want 0,nil", got, err)
	}
}

func TestCombine(t *testing.T) {
	// Leaf elements use OD alone.
	if got := Combine(0.7, 0.9, 0.5, false); got != 0.7 {
		t.Errorf("leaf = %v, want 0.7", got)
	}
	// Paper's average.
	if got := Combine(0.6, 0.8, 0.5, true); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("average = %v, want 0.7", got)
	}
	// Weight clamping.
	if got := Combine(1, 0, 2, true); got != 1 {
		t.Errorf("clamp high = %v, want 1", got)
	}
	if got := Combine(1, 0, -1, true); got != 0 {
		t.Errorf("clamp low = %v, want 0", got)
	}
}
