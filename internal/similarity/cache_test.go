package similarity

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// The cache's one promise: memoized results are the exact float64 the
// direct computation produces. Every equality in this file is ==, not
// approximate.

func TestCacheScoreMatchesDirect(t *testing.T) {
	c := NewCache(0)
	f := func(a, b string) bool {
		direct := NormalizedEdit(a, b)
		// Twice: once to fill (miss), once to hit.
		return c.Score(0, NormalizedEdit, a, b) == direct &&
			c.Score(0, NormalizedEdit, a, b) == direct
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected both hits and misses, got %+v", st)
	}
}

func TestCacheKeepsFieldsApart(t *testing.T) {
	c := NewCache(0)
	exact := c.Score(0, Exact, "abc", "abd")
	edit := c.Score(1, NormalizedEdit, "abc", "abd")
	if exact == edit {
		t.Fatalf("distinct fields collided: exact=%v edit=%v", exact, edit)
	}
	if got := c.Score(0, Exact, "abc", "abd"); got != exact {
		t.Fatalf("field 0 hit returned %v, want %v", got, exact)
	}
}

func TestCacheDoesNotCanonicalizeOperands(t *testing.T) {
	// An asymmetric (non-contractual, but permitted) Func must memoize
	// (a,b) and (b,a) separately.
	asym := func(a, b string) float64 { return float64(len(a)) / float64(len(a)+len(b)+1) }
	c := NewCache(0)
	ab, ba := c.Score(0, asym, "x", "yyy"), c.Score(0, asym, "yyy", "x")
	if ab == ba {
		t.Fatalf("asymmetric scores collapsed: %v", ab)
	}
	if got := c.Score(0, asym, "x", "yyy"); got != ab {
		t.Fatalf("hit returned %v, want %v", got, ab)
	}
}

func TestCacheODSimilarityMatchesDirect(t *testing.T) {
	fields := []ODField{
		{Relevance: 0.5, Sim: NormalizedEdit},
		{Relevance: 0.3, Sim: Jaro},
		{Relevance: 0.2, Sim: YearSim},
	}
	vals := []string{"", "alpha", "alphq", "1999", "2001", "béta", "beta"}
	rng := rand.New(rand.NewSource(11))
	pick := func() [][]string {
		od := make([][]string, len(fields))
		for i := range od {
			n := rng.Intn(3) // 0 = field absent
			for j := 0; j < n; j++ {
				od[i] = append(od[i], vals[rng.Intn(len(vals))])
			}
		}
		return od
	}
	c := NewCache(0)
	for i := 0; i < 500; i++ {
		a, b := pick(), pick()
		want, err := ODSimilarity(fields, a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.ODSimilarity(fields, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("cached ODSimilarity(%v, %v) = %v, direct = %v", a, b, got, want)
		}
		wantSims, err := ODFieldSims(fields, a, b)
		if err != nil {
			t.Fatal(err)
		}
		gotSims, err := c.ODFieldSims(fields, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotSims, wantSims) {
			t.Fatalf("cached ODFieldSims(%v, %v) = %v, direct = %v", a, b, gotSims, wantSims)
		}
	}
	if st := c.Stats(); st.Hits == 0 {
		t.Fatalf("500 rounds over 7 values produced no hits: %+v", st)
	}
}

func TestCacheODSimilarityMismatchError(t *testing.T) {
	c := NewCache(0)
	fields := []ODField{{Relevance: 1, Sim: Exact}}
	if _, err := c.ODSimilarity(fields, [][]string{{"a"}, {"b"}}, [][]string{{"a"}}); err == nil {
		t.Fatal("want value-count mismatch error")
	}
	if _, err := c.ODFieldSims(fields, [][]string{{"a"}, {"b"}}, [][]string{{"a"}}); err == nil {
		t.Fatal("want value-count mismatch error")
	}
}

func TestNilCacheComputesDirectly(t *testing.T) {
	var c *Cache
	if got, want := c.Score(0, Exact, "a", "a"), 1.0; got != want {
		t.Fatalf("nil Score = %v, want %v", got, want)
	}
	fields := []ODField{{Relevance: 1, Sim: Exact}}
	got, err := c.ODSimilarity(fields, [][]string{{"a"}}, [][]string{{"a"}})
	if err != nil || got != 1 {
		t.Fatalf("nil ODSimilarity = %v, %v", got, err)
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache counted: %+v", st)
	}
	if id := c.InternDesc([]int{1, 2}); id != 0 {
		t.Fatalf("nil InternDesc = %d", id)
	}
}

func TestCacheEviction(t *testing.T) {
	// Capacity 64 (4 per shard); stream far more distinct pairs.
	c := NewCache(64)
	for i := 0; i < 4096; i++ {
		c.Score(0, NormalizedEdit, string(rune('a'+i%26))+string(rune('a'+(i/26)%26)), "target")
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions after overflowing capacity: %+v", st)
	}
	// Correctness survives eviction: every lookup still equals direct.
	for i := 0; i < 100; i++ {
		a := string(rune('a'+i%26)) + "x"
		if got, want := c.Score(0, NormalizedEdit, a, "ax"), NormalizedEdit(a, "ax"); got != want {
			t.Fatalf("post-eviction Score(%q) = %v, want %v", a, got, want)
		}
	}
}

func TestInternDescCanonicalizes(t *testing.T) {
	c := NewCache(0)
	a := c.InternDesc([]int{3, 1, 2, 1})
	b := c.InternDesc([]int{1, 1, 2, 3})
	if a != b {
		t.Fatalf("permutations interned differently: %d vs %d", a, b)
	}
	if d := c.InternDesc([]int{1, 2, 3}); d == a {
		t.Fatalf("different multiset shared SetID %d", d)
	}
	if e := c.InternDesc(nil); e != 0 {
		t.Fatalf("empty multiset is SetID %d, want 0", e)
	}
	if e := c.InternDesc([]int{}); e != 0 {
		t.Fatalf("empty slice is SetID %d, want 0", e)
	}
	if st := c.Stats(); st.DescSets != 3 { // empty + two distinct
		t.Fatalf("DescSets = %d, want 3", st.DescSets)
	}
	// Interning must not mutate or retain the input.
	in := []int{9, 7, 8}
	c.InternDesc(in)
	if !reflect.DeepEqual(in, []int{9, 7, 8}) {
		t.Fatalf("InternDesc mutated its input: %v", in)
	}
}

func TestOverlapIDsMatchesOverlap(t *testing.T) {
	c := NewCache(0)
	rng := rand.New(rand.NewSource(5))
	lists := make([][]int, 20)
	ids := make([]SetID, 20)
	for i := range lists {
		n := rng.Intn(6)
		for j := 0; j < n; j++ {
			lists[i] = append(lists[i], rng.Intn(8))
		}
		ids[i] = c.InternDesc(lists[i])
	}
	for i := range lists {
		for j := range lists {
			want := Overlap(lists[i], lists[j])
			got := c.OverlapIDs(ids[i], ids[j])
			if got != want {
				t.Fatalf("OverlapIDs(%v, %v) = %v, want %v", lists[i], lists[j], got, want)
			}
			// And again, from the memo.
			if got2 := c.OverlapIDs(ids[i], ids[j]); got2 != want {
				t.Fatalf("memoized OverlapIDs(%v, %v) = %v, want %v", lists[i], lists[j], got2, want)
			}
		}
	}
	if got := c.OverlapIDs(0, 0); got != 1 {
		t.Fatalf("empty-vs-empty OverlapIDs = %v, want 1 (vacuous identity)", got)
	}
}

func TestCacheConcurrent(t *testing.T) {
	// Hammered under -race by `make test`: concurrent Score, intern,
	// and overlap must be safe and still exact.
	c := NewCache(128)
	words := []string{"movie", "movje", "artist", "artst", "track", "trakc", "x", ""}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				a, b := words[rng.Intn(len(words))], words[rng.Intn(len(words))]
				if got, want := c.Score(rng.Intn(3), NormalizedEdit, a, b), NormalizedEdit(a, b); got != want {
					t.Errorf("concurrent Score(%q, %q) = %v, want %v", a, b, got, want)
					return
				}
				l1 := []int{rng.Intn(4), rng.Intn(4)}
				l2 := []int{rng.Intn(4)}
				if got, want := c.OverlapIDs(c.InternDesc(l1), c.InternDesc(l2)), Overlap(sortedCopy(l1), sortedCopy(l2)); got != want {
					t.Errorf("concurrent OverlapIDs(%v, %v) = %v, want %v", l1, l2, got, want)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

func sortedCopy(in []int) []int {
	out := append([]int(nil), in...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestDecodePairKeyErrors(t *testing.T) {
	full := AppendPairKey(nil, 3, "ab", "cd")
	for cut := 0; cut < len(full); cut++ {
		if _, _, _, err := DecodePairKey(full[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", cut)
		}
	}
	if _, _, _, err := DecodePairKey(append(append([]byte(nil), full...), 0)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
	// Length prefix pointing past the buffer.
	bad := AppendPairKey(nil, 0, "", "")
	bad[1] = 200
	if _, _, _, err := DecodePairKey(bad); err == nil {
		t.Fatal("oversized length prefix decoded without error")
	}
}
