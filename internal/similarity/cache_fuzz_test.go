package similarity

import (
	"bytes"
	"testing"
)

// FuzzPairKey proves the canonical cache-key encoding injective: the
// encoding round-trips exactly, so two distinct (field, a, b) triples
// can never share a key — no choice of separator bytes, NULs, invalid
// UTF-8, or values that are prefixes of each other collides. The memo
// map itself keys on the struct (inherently collision-free); this
// encoding is the byte-level equivalent used for shard hashing and
// external key dumps, and must uphold the same guarantee.
func FuzzPairKey(f *testing.F) {
	f.Add(0, "", "")
	f.Add(1, "a\tb", "c|d")             // common separator bytes inside values
	f.Add(2, "a|b|c", "")               // value containing a would-be delimiter
	f.Add(3, "héllo", "wörld")          // multi-byte UTF-8
	f.Add(4, "\x00", "\x00\x00")        // NULs and NUL-prefix pairs
	f.Add(5, "\xff\xfe", "\xc3\x28")    // invalid UTF-8 sequences
	f.Add(6, "ab", "a")                 // one value a prefix of the other
	f.Add(7, "a", "ba")                 // boundary shift: ("a","ba") vs ("ab","a")
	f.Add(-8, "é", "é")                // negative field; NFC vs NFD forms
	f.Add(1<<20, "𝄞clef", "\U0010FFFF") // astral-plane runes
	f.Add(9, "same", "same")            // equal operands
	f.Fuzz(func(t *testing.T, field int, a, b string) {
		key := AppendPairKey(nil, field, a, b)
		f2, a2, b2, err := DecodePairKey(key)
		if err != nil {
			t.Fatalf("decode of freshly encoded key failed: %v", err)
		}
		if f2 != field || a2 != a || b2 != b {
			t.Fatalf("round trip mangled (%d, %q, %q) into (%d, %q, %q)", field, a, b, f2, a2, b2)
		}
		// Swapped operands are distinct triples and must encode
		// differently (the cache does not canonicalize operand order).
		if a != b {
			if bytes.Equal(key, AppendPairKey(nil, field, b, a)) {
				t.Fatalf("(%q, %q) and swapped collide", a, b)
			}
		}
		// Concatenation ambiguity: moving a boundary byte between the
		// values must change the encoding.
		if len(a) > 0 {
			shifted := AppendPairKey(nil, field, a[:len(a)-1], a[len(a)-1:]+b)
			if bytes.Equal(key, shifted) {
				t.Fatalf("boundary shift of (%q, %q) collides", a, b)
			}
		}
		// Appending to dst must leave the prefix intact.
		pre := []byte("prefix")
		ext := AppendPairKey(pre, field, a, b)
		if !bytes.HasPrefix(ext, pre) || !bytes.Equal(ext[len(pre):], key) {
			t.Fatalf("AppendPairKey disturbed its dst prefix")
		}
	})
}
