package similarity

import "fmt"

// ODField is one compared object-description entry: the extracted
// values of one relative path for an element, with the path's
// configured relevance and similarity function.
type ODField struct {
	Relevance float64
	Sim       Func
}

// ODSimilarity implements Definition 2 of the paper: the
// relevance-weighted sum of per-path similarities,
//
//	sim^OD(e1,e2) = Σ_i r_i · φ_i(od_{e1,i}, od_{e2,i}).
//
// The paper assumes relevancies sum to 1; we divide by the total weight
// of fields where at least one side has a value, so documents with
// optional fields still produce similarities in [0,1] (a pair missing a
// field on both sides neither helps nor hurts).
//
// a and b hold, per field, the values extracted for each element; a
// multi-valued path contributes the best pairwise value match.
func ODSimilarity(fields []ODField, a, b [][]string) (float64, error) {
	if len(a) != len(fields) || len(b) != len(fields) {
		return 0, fmt.Errorf("similarity: OD value count mismatch: %d fields, %d/%d values", len(fields), len(a), len(b))
	}
	var sum, weight float64
	for i, f := range fields {
		va, vb := a[i], b[i]
		if len(va) == 0 && len(vb) == 0 {
			continue // both missing: field is uninformative
		}
		weight += f.Relevance
		if len(va) == 0 || len(vb) == 0 {
			continue // one side missing: counts as similarity 0
		}
		sum += f.Relevance * bestMatch(f.Sim, va, vb)
	}
	if weight == 0 {
		return 0, nil
	}
	return sum / weight, nil
}

// FieldAbsent marks a field missing on both sides in ODFieldSims
// output; such fields are uninformative rather than dissimilar.
const FieldAbsent = -1

// ODFieldSims computes the per-field similarities underlying
// Definition 2 without aggregating them: the i-th entry is the best
// value match for field i, 0 when exactly one side lacks the field,
// and FieldAbsent when both do. Equational-theory rules
// (internal/rules) consume this vector.
func ODFieldSims(fields []ODField, a, b [][]string) ([]float64, error) {
	if len(a) != len(fields) || len(b) != len(fields) {
		return nil, fmt.Errorf("similarity: OD value count mismatch: %d fields, %d/%d values", len(fields), len(a), len(b))
	}
	out := make([]float64, len(fields))
	for i, f := range fields {
		va, vb := a[i], b[i]
		switch {
		case len(va) == 0 && len(vb) == 0:
			out[i] = FieldAbsent
		case len(va) == 0 || len(vb) == 0:
			out[i] = 0
		default:
			out[i] = bestMatch(f.Sim, va, vb)
		}
	}
	return out, nil
}

// BestMatch is the exported cache-dispatching best match of one OD
// field: the memoized path when c is non-nil, the direct computation
// otherwise — the same dispatch ODSimilarity performs internally, so
// the returned float is bit-identical to the aggregate's per-field
// term either way. The engine's threshold-aware fast path uses it to
// escalate a single field to an exact value.
func BestMatch(c *Cache, field int, sim Func, va, vb []string) float64 {
	if c == nil {
		return bestMatch(sim, va, vb)
	}
	return c.bestMatch(field, sim, va, vb)
}

// bestMatch returns the maximum similarity over the cross product of
// values; paths selecting multiple nodes (e.g. several <artist>
// children) match on their most similar pair.
func bestMatch(sim Func, va, vb []string) float64 {
	best := 0.0
	for _, x := range va {
		for _, y := range vb {
			if s := sim(x, y); s > best {
				best = s
				if best == 1 {
					return 1
				}
			}
		}
	}
	return best
}

// Overlap implements the paper's φ^desc: the ratio between the
// cardinalities of the intersection and the union of two cluster-ID
// lists (treated as multisets, so a movie with the same duplicated
// actor twice does not inflate similarity).
func Overlap(a, b []int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1 // vacuously identical descendant sets
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	count := make(map[int]int, len(a))
	for _, id := range a {
		count[id]++
	}
	inter := 0
	for _, id := range b {
		if count[id] > 0 {
			count[id]--
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Average aggregates per-descendant-type similarities — the paper's
// current agg() implementation. NaN-free: an empty slice yields 0.
func Average(sims []float64) float64 {
	if len(sims) == 0 {
		return 0
	}
	var sum float64
	for _, s := range sims {
		sum += s
	}
	return sum / float64(len(sims))
}

// WeightedAverage aggregates with per-type weights (the paper's
// proposed future extension of agg()). Weights need not sum to 1; zero
// total weight yields 0.
func WeightedAverage(sims, weights []float64) (float64, error) {
	if len(sims) != len(weights) {
		return 0, fmt.Errorf("similarity: %d sims but %d weights", len(sims), len(weights))
	}
	var sum, total float64
	for i, s := range sims {
		sum += s * weights[i]
		total += weights[i]
	}
	if total == 0 {
		return 0, nil
	}
	return sum / total, nil
}

// Combine merges OD and descendant similarity into sim^comb. The
// paper's implementation averages the two; odWeight generalizes that
// (odWeight=0.5 reproduces the paper). When an element has no
// descendants to compare (hasDesc=false), the OD similarity alone is
// used, matching the paper's leaf-node rule.
func Combine(odSim, descSim, odWeight float64, hasDesc bool) float64 {
	if !hasDesc {
		return odSim
	}
	if odWeight < 0 {
		odWeight = 0
	}
	if odWeight > 1 {
		odWeight = 1
	}
	return odWeight*odSim + (1-odWeight)*descSim
}
