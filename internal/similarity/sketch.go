package similarity

import "repro/internal/strutil"

// This file implements the precomputed per-value sketches behind the
// threshold-aware comparison fast path (paper Sec. 5: "filters are
// quite effective to avoid comparisons, especially with the edit
// distance operations"). A ValueSketch is computed once per OD value
// when a GK row is built; every later window comparison then gets
//
//   - the normalized string without re-running strutil.Normalize,
//   - the rune length for the classic length bound, and
//   - a 32-bin character-frequency histogram whose L1 mismatch lower-
//     bounds the edit distance where length alone cannot (anagram-like
//     values have equal lengths but disjoint histograms).
//
// Soundness contract (fuzzed by FuzzBoundSoundness): for any raw
// strings a, b,
//
//	EditUpperBoundSketch(Sketch(a), Sketch(b)) >= NormalizedEdit(a, b)
//
// bit-for-bit in float64 — the bound is 1 − dLB/m with an integer
// dLB <= d computed by the same division and subtraction the exact
// similarity uses, and IEEE-754 division and subtraction are monotone,
// so the inequality survives rounding.

// SketchBins is the histogram width. Normalized values are uppercase
// folded, so the Latin letters get a bin each, digits share four bins,
// and whitespace/other runes get one bin apiece; hashing distinct runes
// into one bin only merges counts, which weakens the bound but never
// breaks it.
const SketchBins = 32

// ValueSketch is the precomputed comparison state of one OD value.
type ValueSketch struct {
	// Norm is strutil.Normalize of the raw value — the exact string
	// NormalizedEdit would compare.
	Norm string
	// RuneLen is the rune count of Norm.
	RuneLen int
	// Hist counts Norm's runes per sketch bin.
	Hist [SketchBins]int32
}

// SketchValue computes the sketch of one raw OD value.
func SketchValue(raw string) ValueSketch {
	s := ValueSketch{Norm: strutil.Normalize(raw)}
	for _, r := range s.Norm {
		s.RuneLen++
		s.Hist[sketchBin(r)]++
	}
	return s
}

// SketchValues sketches a whole OD field (one sketch per value).
func SketchValues(raw []string) []ValueSketch {
	if len(raw) == 0 {
		return nil
	}
	out := make([]ValueSketch, len(raw))
	for i, v := range raw {
		out[i] = SketchValue(v)
	}
	return out
}

// sketchBin maps a normalized rune to its histogram bin.
func sketchBin(r rune) int {
	switch {
	case r >= 'A' && r <= 'Z':
		return int(r - 'A') // 0..25
	case r >= '0' && r <= '9':
		return 26 + int(r-'0')&3 // 26..29
	case r == ' ':
		return 30
	default:
		return 31
	}
}

// EditDistanceLowerBound returns an integer lower bound on the
// Levenshtein distance of the two normalized strings. Each edit
// operation changes at most one histogram count on each side, so the
// one-sided surpluses pos = Σ max(0, hA−hB) and neg = Σ max(0, hB−hA)
// are both lower bounds; their difference is the length difference, so
// max(pos, neg) subsumes the classic |len(a)−len(b)| bound.
func EditDistanceLowerBound(a, b *ValueSketch) int {
	var pos, neg int32
	for i := range a.Hist {
		if d := a.Hist[i] - b.Hist[i]; d > 0 {
			pos += d
		} else {
			neg -= d
		}
	}
	if pos >= neg {
		return int(pos)
	}
	return int(neg)
}

// NormalizedEditFromDistance maps an edit distance d over normalized
// strings of maximum rune length m to the similarity NormalizedEdit
// would report: 1 − d/m, computed with the identical float64 operation
// order, so plugging in the true distance reproduces the exact
// similarity bit-for-bit. It is strictly decreasing in d for any
// realistic m, which is what lets the fast path decide from a memoized
// exact score whether a banded computation would have been cut off.
func NormalizedEditFromDistance(d, m int) float64 {
	return 1 - float64(d)/float64(m)
}

// EditUpperBoundSketch bounds NormalizedEdit of the two underlying raw
// values from above using only the precomputed sketches: no
// normalization, no rune decoding, no edit distance — 32 integer
// subtractions and one division.
func EditUpperBoundSketch(a, b *ValueSketch) float64 {
	if a.RuneLen == 0 && b.RuneLen == 0 {
		return 1
	}
	m := a.RuneLen
	if b.RuneLen > m {
		m = b.RuneLen
	}
	return NormalizedEditFromDistance(EditDistanceLowerBound(a, b), m)
}
