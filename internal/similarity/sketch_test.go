package similarity

import (
	"math/rand"
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/strutil"
)

// This file is the bound-soundness harness for the threshold-aware
// fast path: every inequality the engine's filter relies on is checked
// bit-for-bit against the exact similarity functions, both on fuzzed
// raw bytes (FuzzBoundSoundness, wired into `make fuzz-short`) and on
// seeded randomized corpora with unicode and randomized OD field
// configurations (TestBoundSoundnessQuick).

// checkBoundSoundness is the shared property set: given any two raw
// strings, every bound the fast path uses must hold exactly.
func checkBoundSoundness(t *testing.T, a, b string, max int) {
	t.Helper()
	ska, skb := SketchValue(a), SketchValue(b)

	// Sketch round trip: the sketch holds exactly what NormalizedEdit
	// would compute from the raw value.
	if want := strutil.Normalize(a); ska.Norm != want {
		t.Fatalf("SketchValue(%q).Norm = %q, want %q", a, ska.Norm, want)
	}
	if want := utf8.RuneCountInString(ska.Norm); ska.RuneLen != want {
		t.Fatalf("SketchValue(%q).RuneLen = %d, want %d", a, ska.RuneLen, want)
	}
	var histSum int32
	for _, c := range ska.Hist {
		if c < 0 {
			t.Fatalf("SketchValue(%q) has negative bin count", a)
		}
		histSum += c
	}
	if int(histSum) != ska.RuneLen {
		t.Fatalf("SketchValue(%q) hist sums to %d, RuneLen %d", a, histSum, ska.RuneLen)
	}

	exact := NormalizedEdit(a, b)
	d := Levenshtein(ska.Norm, skb.Norm)

	// Frequency bound never over-estimates the edit distance…
	if lb := EditDistanceLowerBound(&ska, &skb); lb > d {
		t.Fatalf("EditDistanceLowerBound(%q, %q) = %d > Levenshtein %d", a, b, lb, d)
	}
	// …so the sketch similarity bound never under-estimates NormalizedEdit.
	if ub := EditUpperBoundSketch(&ska, &skb); ub < exact {
		t.Fatalf("EditUpperBoundSketch(%q, %q) = %v < NormalizedEdit %v", a, b, ub, exact)
	}
	// The legacy length-only bound stays sound too.
	if ub := EditUpperBound(a, b); ub < exact {
		t.Fatalf("EditUpperBound(%q, %q) = %v < NormalizedEdit %v", a, b, ub, exact)
	}

	// LevenshteinBounded agrees with the full distance whenever the
	// true distance fits the band, and reports max+1 otherwise.
	if max < 0 {
		max = 0
	}
	got := LevenshteinBounded(ska.Norm, skb.Norm, max)
	if d <= max && got != d {
		t.Fatalf("LevenshteinBounded(%q, %q, %d) = %d, want exact %d", ska.Norm, skb.Norm, max, got, d)
	}
	if d > max && got != max+1 {
		t.Fatalf("LevenshteinBounded(%q, %q, %d) = %d, want cut-off %d", ska.Norm, skb.Norm, max, got, max+1)
	}

	// The exact-similarity reconstruction the banded path uses: when
	// the normalized strings differ, NormalizedEdit is exactly
	// 1 − d/m in the same float64 operation order.
	if ska.Norm != skb.Norm {
		m := ska.RuneLen
		if skb.RuneLen > m {
			m = skb.RuneLen
		}
		if v := NormalizedEditFromDistance(d, m); v != exact {
			t.Fatalf("NormalizedEditFromDistance(%d, %d) = %v, NormalizedEdit(%q, %q) = %v", d, m, v, a, b, exact)
		}
	}
}

func FuzzBoundSoundness(f *testing.F) {
	f.Add("", "", uint8(0))
	f.Add("The Matrix", "The Martix", uint8(2))
	f.Add("ABBA", "BABA", uint8(1))       // anagram: length bound is blind, histogram is not
	f.Add("héllo wörld", "hello", uint8(3))
	f.Add("12345", "54321", uint8(0))
	f.Add("\xff\xfe", "\xef\xbf\xbd", uint8(1)) // invalid UTF-8 exercises rune replacement
	f.Fuzz(func(t *testing.T, a, b string, maxSeed uint8) {
		checkBoundSoundness(t, a, b, int(maxSeed))
	})
}

// randValue draws a value from a small alphabet so collisions (equal
// and near-equal strings) actually happen.
func randValue(rng *rand.Rand) string {
	alphabets := []string{
		"ab",
		"abc XYZ",
		"0123456789",
		"αβγδε",
		"日本語漢字",
		"aA 1!é́", // combining accents survive normalization
	}
	al := []rune(alphabets[rng.Intn(len(alphabets))])
	n := rng.Intn(12)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteRune(al[rng.Intn(len(al))])
	}
	return sb.String()
}

func randValues(rng *rand.Rand) []string {
	if rng.Intn(4) == 0 {
		return nil // field missing on this side
	}
	out := make([]string, 1+rng.Intn(3))
	for i := range out {
		out[i] = randValue(rng)
	}
	return out
}

// TestBoundSoundnessQuick is the deterministic quick-check twin of the
// fuzz target: seeded random values through the same property set,
// plus the field- and OD-level bounds across randomized configurations.
func TestBoundSoundnessQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		a, b := randValue(rng), randValue(rng)
		checkBoundSoundness(t, a, b, rng.Intn(8))
	}

	// Field-level: the sketch bound dominates the exact best match.
	for i := 0; i < 500; i++ {
		va, vb := randValues(rng), randValues(rng)
		if len(va) == 0 || len(vb) == 0 {
			continue
		}
		exact := 0.0
		for _, x := range va {
			for _, y := range vb {
				if s := NormalizedEdit(x, y); s > exact {
					exact = s
				}
			}
		}
		if ub := EditUpperBoundValues(SketchValues(va), SketchValues(vb)); ub < exact {
			t.Fatalf("EditUpperBoundValues(%q, %q) = %v < best match %v", va, vb, ub, exact)
		}
	}

	// OD-level across randomized configs: ODUpperBound dominates
	// ODSimilarity for any mix of edit and non-edit fields, weights,
	// and missing values.
	simNames := []string{"", "edit", "numeric", "year", "jaccard", "exact"}
	for i := 0; i < 500; i++ {
		n := 1 + rng.Intn(5)
		fields := make([]ODField, n)
		names := make([]string, n)
		a := make([][]string, n)
		b := make([][]string, n)
		for j := 0; j < n; j++ {
			names[j] = simNames[rng.Intn(len(simNames))]
			fn, err := ByName(names[j])
			if err != nil {
				t.Fatal(err)
			}
			fields[j] = ODField{Relevance: rng.Float64(), Sim: fn}
			a[j], b[j] = randValues(rng), randValues(rng)
		}
		exact, err := ODSimilarity(fields, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if ub := ODUpperBound(fields, FieldBounds(names), a, b); ub < exact {
			t.Fatalf("ODUpperBound = %v < ODSimilarity %v (fields %v, a=%q, b=%q)", ub, exact, names, a, b)
		}
	}
}

// TestLevenshteinBoundedEdges pins the banded implementation on the
// boundary shapes the fast path's band derivation produces.
func TestLevenshteinBoundedEdges(t *testing.T) {
	cases := []struct{ a, b string }{
		{"", ""},
		{"", "abc"},
		{"abc", ""},
		{"a", "a"},
		{"kitten", "sitting"},
		{"日本語", "日本誤"},
		{"αβγ", "αγβ"},
		{"résumé", "resume"},
		{"aaaaaaaaaa", "bbbbbbbbbb"},
		{"ab", "ba"},
	}
	for _, tc := range cases {
		d := Levenshtein(tc.a, tc.b)
		la, lb := utf8.RuneCountInString(tc.a), utf8.RuneCountInString(tc.b)
		// Sweep every band from 0 (pure cut-off test) past the length
		// sum (never cuts off): exact within the band, max+1 beyond it.
		for max := 0; max <= la+lb+1; max++ {
			got := LevenshteinBounded(tc.a, tc.b, max)
			want := d
			if d > max {
				want = max + 1
			}
			if got != want {
				t.Errorf("LevenshteinBounded(%q, %q, %d) = %d, want %d (true distance %d)",
					tc.a, tc.b, max, got, want, d)
			}
		}
	}
}

// TestNormalizedEditFromDistanceMonotone pins the strict monotonicity
// that lets editScore translate a memoized exact score back into
// "would the banded run have been cut off": for every realistic m, the
// mapping d → 1 − d/m must be strictly decreasing, i.e. injective over
// integer distances.
func TestNormalizedEditFromDistanceMonotone(t *testing.T) {
	for _, m := range []int{1, 2, 3, 7, 16, 64, 255, 1024, 65536} {
		prev := NormalizedEditFromDistance(0, m)
		if prev != 1 {
			t.Fatalf("NormalizedEditFromDistance(0, %d) = %v, want 1", m, prev)
		}
		for d := 1; d <= m; d++ {
			v := NormalizedEditFromDistance(d, m)
			if !(v < prev) {
				t.Fatalf("NormalizedEditFromDistance not strictly decreasing at d=%d, m=%d: %v >= %v", d, m, v, prev)
			}
			prev = v
		}
	}
}
