// Package rules implements the equational theory the paper's outlook
// (Sec. 5) envisions for SXNM: instead of comparing a single aggregated
// similarity against one threshold, a domain expert writes a boolean
// expression over the per-field similarities, e.g.
//
//	sim(1) >= 0.9 and (sim(3) >= 0.8 or desc >= 0.5)
//
// Terms:
//
//	sim(P)     similarity of the OD entry whose PATH id is P
//	od         the aggregated Definition-2 OD similarity
//	desc       the Definition-3 descendants similarity
//	present(P) true when both elements carry a value for PATH id P
//	hasdesc    true when descendant information is available
//
// Operators: >=, >, <=, <, ==, != on numeric terms; and/or/not (also
// &&, ||, !) on boolean expressions; parentheses group. Keywords are
// case-insensitive.
//
// A compiled rule binds to one candidate's configuration (it resolves
// PATH ids to field positions) and plugs into the engine via
// core.Options.FieldRule or the convenience Apply.
package rules

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/similarity"
)

// Rule is a compiled equational-theory expression for one candidate.
type Rule struct {
	candidate string
	expr      boolExpr
	fieldIdx  map[int]int // PATH id -> OD field index
	src       string
}

// String returns the rule source.
func (r *Rule) String() string { return r.src }

// Candidate returns the name of the candidate the rule is bound to.
func (r *Rule) Candidate() string { return r.candidate }

// evalContext carries one pair comparison's measurements.
type evalContext struct {
	fieldSims []float64
	fieldIdx  map[int]int
	odSim     float64
	descSim   float64
	hasDesc   bool
}

// Compile parses expr and binds it to the candidate. Unknown PATH ids
// and syntax errors are reported with positions.
func Compile(expr string, cand *config.Candidate) (*Rule, error) {
	fieldIdx := make(map[int]int, len(cand.OD))
	for i, od := range cand.OD {
		fieldIdx[od.PathID] = i
	}
	p := &parser{lex: newLexer(expr), fieldIdx: fieldIdx}
	e, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("rules: %q: %w", expr, err)
	}
	return &Rule{candidate: cand.Name, expr: e, fieldIdx: fieldIdx, src: expr}, nil
}

// MustCompile is Compile panicking on error, for fixtures and tests.
func MustCompile(expr string, cand *config.Candidate) *Rule {
	r, err := Compile(expr, cand)
	if err != nil {
		panic(err)
	}
	return r
}

// Evaluate decides one pair given per-field similarities (aligned with
// the candidate's OD entries), the aggregate OD similarity, and the
// descendant measurements.
func (r *Rule) Evaluate(fieldSims []float64, odSim, descSim float64, hasDesc bool) bool {
	return r.expr.eval(&evalContext{
		fieldSims: fieldSims,
		fieldIdx:  r.fieldIdx,
		odSim:     odSim,
		descSim:   descSim,
		hasDesc:   hasDesc,
	})
}

// FieldRule adapts the rule to core.Options.FieldRule. Candidates other
// than the rule's own fall back to their built-in threshold rules via
// fallback (pass nil to reject pairs of other candidates).
func (r *Rule) FieldRule(fallback func(c *config.Candidate, fieldSims []float64, descSim float64, hasDesc bool) bool) func(c *config.Candidate, fieldSims []float64, descSim float64, hasDesc bool) bool {
	return func(c *config.Candidate, fieldSims []float64, descSim float64, hasDesc bool) bool {
		if c.Name != r.candidate {
			if fallback != nil {
				return fallback(c, fieldSims, descSim, hasDesc)
			}
			return defaultDecide(c, fieldSims, descSim, hasDesc)
		}
		od := aggregate(c, fieldSims)
		return r.Evaluate(fieldSims, od, descSim, hasDesc)
	}
}

// RuleSet bundles one rule per candidate and adapts to the engine;
// candidates without a rule use their configured threshold rules.
type RuleSet struct {
	rules map[string]*Rule
}

// NewRuleSet compiles a map of candidate name to expression against
// the configuration.
func NewRuleSet(cfg *config.Config, exprs map[string]string) (*RuleSet, error) {
	rs := &RuleSet{rules: make(map[string]*Rule, len(exprs))}
	for name, expr := range exprs {
		cand := cfg.Candidate(name)
		if cand == nil {
			return nil, fmt.Errorf("rules: unknown candidate %q", name)
		}
		r, err := Compile(expr, cand)
		if err != nil {
			return nil, err
		}
		rs.rules[name] = r
	}
	return rs, nil
}

// Options returns engine options that evaluate the rule set.
func (rs *RuleSet) Options() core.Options {
	return core.Options{
		FieldRule: func(c *config.Candidate, fieldSims []float64, descSim float64, hasDesc bool) bool {
			if r, ok := rs.rules[c.Name]; ok {
				return r.Evaluate(fieldSims, aggregate(c, fieldSims), descSim, hasDesc)
			}
			return defaultDecide(c, fieldSims, descSim, hasDesc)
		},
	}
}

// aggregate folds field similarities into the Definition-2 weighted
// sum, mirroring the engine's renormalization over present fields.
func aggregate(c *config.Candidate, fieldSims []float64) float64 {
	var sum, weight float64
	for i, od := range c.OD {
		if i >= len(fieldSims) || fieldSims[i] == similarity.FieldAbsent {
			continue
		}
		weight += od.Relevance
		sum += od.Relevance * fieldSims[i]
	}
	if weight == 0 {
		return 0
	}
	return sum / weight
}

// defaultDecide reproduces the engine's built-in threshold rules for
// candidates without an equational rule.
func defaultDecide(c *config.Candidate, fieldSims []float64, descSim float64, hasDesc bool) bool {
	od := aggregate(c, fieldSims)
	switch c.Rule {
	case config.RuleEither:
		return od >= c.ODThreshold || (hasDesc && descSim >= c.DescThreshold)
	case config.RuleBoth:
		if od < c.ODThreshold {
			return false
		}
		return !hasDesc || descSim >= c.DescThreshold
	default:
		return similarity.Combine(od, descSim, c.ODWeight, hasDesc) >= c.Threshold
	}
}
