package rules

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/similarity"
)

// boolExpr is a compiled boolean expression node.
type boolExpr interface {
	eval(ctx *evalContext) bool
}

// numExpr is a compiled numeric term.
type numExpr interface {
	value(ctx *evalContext) float64
}

type andExpr struct{ l, r boolExpr }

func (e andExpr) eval(ctx *evalContext) bool { return e.l.eval(ctx) && e.r.eval(ctx) }

type orExpr struct{ l, r boolExpr }

func (e orExpr) eval(ctx *evalContext) bool { return e.l.eval(ctx) || e.r.eval(ctx) }

type notExpr struct{ e boolExpr }

func (e notExpr) eval(ctx *evalContext) bool { return !e.e.eval(ctx) }

// cmpExpr compares a numeric term against a constant.
type cmpExpr struct {
	term numExpr
	op   string
	num  float64
}

func (e cmpExpr) eval(ctx *evalContext) bool {
	v := e.term.value(ctx)
	switch e.op {
	case ">=":
		return v >= e.num
	case ">":
		return v > e.num
	case "<=":
		return v <= e.num
	case "<":
		return v < e.num
	case "==":
		return v == e.num
	case "!=":
		return v != e.num
	}
	return false
}

// simTerm reads the similarity of one OD field; an absent field (both
// sides missing) evaluates to 0 so comparisons behave predictably —
// use present(P) to branch on absence explicitly.
type simTerm struct{ idx int }

func (t simTerm) value(ctx *evalContext) float64 {
	if t.idx >= len(ctx.fieldSims) {
		return 0
	}
	v := ctx.fieldSims[t.idx]
	if v == similarity.FieldAbsent {
		return 0
	}
	return v
}

type odTerm struct{}

func (odTerm) value(ctx *evalContext) float64 { return ctx.odSim }

type descTerm struct{}

func (descTerm) value(ctx *evalContext) float64 {
	if !ctx.hasDesc {
		return 0
	}
	return ctx.descSim
}

// presentExpr is the boolean atom present(P).
type presentExpr struct{ idx int }

func (e presentExpr) eval(ctx *evalContext) bool {
	return e.idx < len(ctx.fieldSims) && ctx.fieldSims[e.idx] != similarity.FieldAbsent
}

// hasDescExpr is the boolean atom hasdesc.
type hasDescExpr struct{}

func (hasDescExpr) eval(ctx *evalContext) bool { return ctx.hasDesc }

// parser is a recursive-descent parser over the lexer's token stream.
type parser struct {
	lex      *lexer
	i        int
	fieldIdx map[int]int
}

func (p *parser) parse() (boolExpr, error) {
	if p.lex.err != nil {
		return nil, p.lex.err
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if tok := p.peek(); tok.kind != tokEOF {
		return nil, fmt.Errorf("position %d: unexpected %s", tok.pos, tok)
	}
	return e, nil
}

func (p *parser) peek() token { return p.lex.tokens[p.i] }

func (p *parser) next() token {
	t := p.lex.tokens[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) parseOr() (boolExpr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOr {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = orExpr{l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (boolExpr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokAnd {
		p.next()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = andExpr{l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseNot() (boolExpr, error) {
	if p.peek().kind == tokNot {
		p.next()
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return notExpr{e: inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (boolExpr, error) {
	tok := p.peek()
	switch tok.kind {
	case tokLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if closing := p.next(); closing.kind != tokRParen {
			return nil, fmt.Errorf("position %d: expected ')', got %s", closing.pos, closing)
		}
		return e, nil
	case tokIdent:
		return p.parseAtom()
	}
	return nil, fmt.Errorf("position %d: expected a term, got %s", tok.pos, tok)
}

// parseAtom handles sim(P)/od/desc comparisons and the boolean atoms
// present(P) and hasdesc.
func (p *parser) parseAtom() (boolExpr, error) {
	tok := p.next()
	name := strings.ToLower(tok.text)
	switch name {
	case "hasdesc":
		return hasDescExpr{}, nil
	case "present":
		idx, err := p.parseFieldRef(tok)
		if err != nil {
			return nil, err
		}
		return presentExpr{idx: idx}, nil
	case "sim":
		idx, err := p.parseFieldRef(tok)
		if err != nil {
			return nil, err
		}
		return p.parseComparison(simTerm{idx: idx})
	case "od":
		return p.parseComparison(odTerm{})
	case "desc":
		return p.parseComparison(descTerm{})
	}
	return nil, fmt.Errorf("position %d: unknown term %q (want sim(P), od, desc, present(P), hasdesc)", tok.pos, tok.text)
}

// parseFieldRef parses "(P)" after sim/present and resolves the PATH
// id to the OD field index.
func (p *parser) parseFieldRef(where token) (int, error) {
	if t := p.next(); t.kind != tokLParen {
		return 0, fmt.Errorf("position %d: %s needs a PATH id argument, got %s", where.pos, where.text, t)
	}
	numTok := p.next()
	if numTok.kind != tokNumber {
		return 0, fmt.Errorf("position %d: expected PATH id, got %s", numTok.pos, numTok)
	}
	pid, err := strconv.Atoi(numTok.text)
	if err != nil {
		return 0, fmt.Errorf("position %d: PATH id must be an integer, got %q", numTok.pos, numTok.text)
	}
	if t := p.next(); t.kind != tokRParen {
		return 0, fmt.Errorf("position %d: expected ')', got %s", t.pos, t)
	}
	idx, ok := p.fieldIdx[pid]
	if !ok {
		return 0, fmt.Errorf("position %d: PATH id %d is not in the candidate's object description", numTok.pos, pid)
	}
	return idx, nil
}

func (p *parser) parseComparison(term numExpr) (boolExpr, error) {
	opTok := p.next()
	if opTok.kind != tokOp {
		return nil, fmt.Errorf("position %d: expected comparison operator, got %s", opTok.pos, opTok)
	}
	numTok := p.next()
	if numTok.kind != tokNumber {
		return nil, fmt.Errorf("position %d: expected number, got %s", numTok.pos, numTok)
	}
	num, err := strconv.ParseFloat(numTok.text, 64)
	if err != nil {
		return nil, fmt.Errorf("position %d: malformed number %q", numTok.pos, numTok.text)
	}
	return cmpExpr{term: term, op: opTok.text, num: num}, nil
}
