package rules

import "testing"

// FuzzCompileRule checks the equational-theory compiler never panics
// and that accepted rules evaluate safely on arbitrary similarity
// vectors.
func FuzzCompileRule(f *testing.F) {
	f.Add("sim(1) >= 0.9", 0.5, 0.5, true)
	f.Add("od >= 0.8 and (desc > 0.3 or not present(3))", 1.0, 0.0, false)
	f.Add("hasdesc || sim(3) != 1", 0.2, 0.9, true)
	f.Add("((", 0.0, 0.0, false)
	f.Add("sim(1) >= 0.9 and", 0.0, 0.0, false)
	f.Add("not not not od < .5", 0.7, 0.1, true)
	f.Fuzz(func(t *testing.T, expr string, a, d float64, hasDesc bool) {
		cand := testCandidate()
		r, err := Compile(expr, cand)
		if err != nil {
			return
		}
		_ = r.Evaluate([]float64{a, a / 2}, a, d, hasDesc)
		_ = r.Evaluate(nil, a, d, hasDesc)
	})
}
