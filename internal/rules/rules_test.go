package rules

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/similarity"
	"repro/internal/xmltree"
)

// testCandidate has PATH ids 1 (title) and 3 (year) in its OD, like
// the paper's Table 1.
func testCandidate() *config.Candidate {
	cfg := config.Table1Movie()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return cfg.Candidate("movie")
}

func TestCompileValid(t *testing.T) {
	cand := testCandidate()
	valid := []string{
		"sim(1) >= 0.9",
		"od >= 0.8",
		"desc > 0.5",
		"sim(1) >= 0.9 and sim(3) >= 0.8",
		"sim(1) >= 0.9 or desc >= 0.5",
		"not sim(1) < 0.5",
		"(sim(1) >= 0.9 or sim(3) >= 0.8) and desc >= 0.3",
		"sim(1) >= 0.9 && sim(3) >= 0.8",
		"sim(1) >= 0.9 || !present(3)",
		"present(1) and hasdesc",
		"SIM(1) >= 0.9 AND OD >= 0.5",
		"sim(1) != 1",
		"sim(1) == 1",
		"sim(1) <= 0.3",
	}
	for _, expr := range valid {
		if _, err := Compile(expr, cand); err != nil {
			t.Errorf("Compile(%q): %v", expr, err)
		}
	}
}

func TestCompileInvalid(t *testing.T) {
	cand := testCandidate()
	invalid := []struct{ expr, want string }{
		{"", "expected a term"},
		{"sim(1)", "comparison operator"},
		{"sim(99) >= 0.9", "PATH id 99"},
		{"sim() >= 0.9", "expected PATH id"},
		{"sim(1 >= 0.9", "expected ')'"},
		{"bogus >= 0.9", "unknown term"},
		{"sim(1) >= ", "expected number"},
		{"sim(1) >= 0.9 extra", "unexpected"},
		{"(sim(1) >= 0.9", "expected ')'"},
		{"sim(1) = 0.9", "use '=='"},
		{"sim(1) >= 0.9 & od >= 1", "use '&&'"},
		{"sim(1) >= 0.9 | od >= 1", "use '||'"},
		{"sim(1) >= 0.9.9", "malformed number"},
		{"sim(1) >= 0.9 and $", "unexpected character"},
	}
	for _, c := range invalid {
		_, err := Compile(c.expr, cand)
		if err == nil {
			t.Errorf("Compile(%q) succeeded, want error %q", c.expr, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Compile(%q) error = %q, want substring %q", c.expr, err, c.want)
		}
	}
}

func TestEvaluate(t *testing.T) {
	cand := testCandidate() // OD: pid 1 -> idx 0, pid 3 -> idx 1
	cases := []struct {
		expr      string
		fieldSims []float64
		od, desc  float64
		hasDesc   bool
		want      bool
	}{
		{"sim(1) >= 0.9", []float64{0.95, 0.2}, 0, 0, false, true},
		{"sim(1) >= 0.9", []float64{0.85, 1}, 0, 0, false, false},
		{"sim(1) >= 0.9 and sim(3) >= 0.8", []float64{0.95, 0.85}, 0, 0, false, true},
		{"sim(1) >= 0.9 and sim(3) >= 0.8", []float64{0.95, 0.5}, 0, 0, false, false},
		{"sim(1) >= 0.9 or sim(3) >= 0.8", []float64{0.5, 0.85}, 0, 0, false, true},
		{"not sim(1) >= 0.9", []float64{0.5, 0}, 0, 0, false, true},
		{"od >= 0.8", nil, 0.85, 0, false, true},
		{"desc >= 0.5", nil, 0, 0.7, true, true},
		// desc without descendant info evaluates to 0.
		{"desc >= 0.5", nil, 0, 0.7, false, false},
		{"hasdesc", nil, 0, 0, true, true},
		{"hasdesc", nil, 0, 0, false, false},
		{"present(3)", []float64{1, 0.5}, 0, 0, false, true},
		{"present(3)", []float64{1, similarity.FieldAbsent}, 0, 0, false, false},
		// Absent fields read as similarity 0.
		{"sim(3) >= 0.1", []float64{1, similarity.FieldAbsent}, 0, 0, false, false},
		{"sim(3) < 0.1", []float64{1, similarity.FieldAbsent}, 0, 0, false, true},
		// Precedence: and binds tighter than or.
		{"sim(1) >= 0.9 or sim(1) >= 0.5 and sim(3) >= 0.9", []float64{0.6, 0.2}, 0, 0, false, false},
		{"(sim(1) >= 0.9 or sim(1) >= 0.5) and sim(3) <= 0.9", []float64{0.6, 0.2}, 0, 0, false, true},
		{"sim(1) == 1", []float64{1, 0}, 0, 0, false, true},
		{"sim(1) != 1", []float64{1, 0}, 0, 0, false, false},
	}
	for _, c := range cases {
		r := MustCompile(c.expr, cand)
		if got := r.Evaluate(c.fieldSims, c.od, c.desc, c.hasDesc); got != c.want {
			t.Errorf("Evaluate(%q, %v, od=%v, desc=%v, hasDesc=%v) = %v, want %v",
				c.expr, c.fieldSims, c.od, c.desc, c.hasDesc, got, c.want)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustCompile("nonsense", testCandidate())
}

func TestRuleAccessors(t *testing.T) {
	r := MustCompile("od >= 0.8", testCandidate())
	if r.String() != "od >= 0.8" {
		t.Errorf("String = %q", r.String())
	}
	if r.Candidate() != "movie" {
		t.Errorf("Candidate = %q", r.Candidate())
	}
}

const ruleTestXML = `
<movie_database>
  <movies>
    <movie year="1999"><title>Silent River</title></movie>
    <movie year="1901"><title>Silent Rivr</title></movie>
    <movie year="1999"><title>Broken Storm</title></movie>
  </movies>
</movie_database>`

func ruleTestConfig() *config.Config {
	return &config.Config{Candidates: []config.Candidate{{
		Name:  "movie",
		XPath: "movie_database/movies/movie",
		Paths: []config.PathDef{
			{ID: 1, RelPath: "title/text()"},
			{ID: 2, RelPath: "@year"},
		},
		OD: []config.ODEntry{
			{PathID: 1, Relevance: 0.5},
			{PathID: 2, Relevance: 0.5, SimFunc: "year"},
		},
		Keys: []config.KeyDef{
			{Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "K1-K4"}}},
		},
		Threshold: 0.95,
		Window:    5,
	}}}
}

func TestRuleSetEndToEnd(t *testing.T) {
	cfg := ruleTestConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.ParseString(ruleTestXML)
	if err != nil {
		t.Fatal(err)
	}
	// The built-in combined rule at 0.95 rejects the pair (year sim is
	// 0 for 1999 vs 1901); the equational rule accepts on title alone.
	plain, err := core.Run(doc, cfg, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(plain.Clusters["movie"].NonSingletons()); got != 0 {
		t.Fatalf("built-in rule should reject, found %d groups", got)
	}
	rs, err := NewRuleSet(cfg, map[string]string{"movie": "sim(1) >= 0.9"})
	if err != nil {
		t.Fatal(err)
	}
	ruled, err := core.Run(doc, cfg, rs.Options())
	if err != nil {
		t.Fatal(err)
	}
	dups := ruled.Clusters["movie"].NonSingletons()
	if len(dups) != 1 || len(dups[0].Members) != 2 {
		t.Fatalf("equational rule failed:\n%s", ruled.Clusters["movie"])
	}
}

func TestRuleSetUnknownCandidate(t *testing.T) {
	cfg := ruleTestConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRuleSet(cfg, map[string]string{"nosuch": "od >= 1"}); err == nil {
		t.Error("unknown candidate should fail")
	}
	if _, err := NewRuleSet(cfg, map[string]string{"movie": "garbage"}); err == nil {
		t.Error("bad expression should fail")
	}
}

func TestRuleSetFallbackToBuiltin(t *testing.T) {
	// Two candidates; only one gets a rule. The other must keep its
	// configured threshold behaviour.
	cfg := ruleTestConfig()
	cfg.Candidates = append(cfg.Candidates, config.Candidate{
		Name:  "title",
		XPath: "movie_database/movies/movie/title",
		Paths: []config.PathDef{{ID: 1, RelPath: "text()"}},
		OD:    []config.ODEntry{{PathID: 1, Relevance: 1}},
		Keys: []config.KeyDef{
			{Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "C1-C6"}}},
		},
		Threshold: 0.85,
		Window:    5,
	})
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.ParseString(ruleTestXML)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRuleSet(cfg, map[string]string{"movie": "sim(1) >= 0.99"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(doc, cfg, rs.Options())
	if err != nil {
		t.Fatal(err)
	}
	// movie rule is strict: no movie duplicates. title candidate uses
	// the built-in rule and still finds Silent River / Silent Rivr.
	if got := len(res.Clusters["movie"].NonSingletons()); got != 0 {
		t.Errorf("movie groups = %d, want 0", got)
	}
	if got := len(res.Clusters["title"].NonSingletons()); got != 1 {
		t.Errorf("title groups = %d, want 1:\n%s", got, res.Clusters["title"])
	}
}

func TestFieldRuleAdapter(t *testing.T) {
	cand := testCandidate()
	r := MustCompile("sim(1) >= 0.9", cand)
	fn := r.FieldRule(nil)
	if !fn(cand, []float64{0.95, 0}, 0, false) {
		t.Error("adapter should accept matching pair")
	}
	other := &config.Candidate{Name: "other", Rule: config.RuleCombined, Threshold: 0.5, ODWeight: 1,
		OD: []config.ODEntry{{PathID: 1, Relevance: 1}}}
	if !fn(other, []float64{0.9}, 0, false) {
		t.Error("other candidate should fall back to built-in rule (0.9 >= 0.5)")
	}
	if fn(other, []float64{0.2}, 0, false) {
		t.Error("fallback should reject below threshold")
	}
}
