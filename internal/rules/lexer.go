package rules

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates the lexical classes of the rule language.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokOp  // >= > <= < == !=
	tokAnd // and, &&
	tokOr  // or, ||
	tokNot // not, !
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of expression"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src    string
	pos    int
	tokens []token
	err    error
}

func newLexer(src string) *lexer {
	l := &lexer{src: src}
	l.run()
	return l
}

func (l *lexer) run() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == '>' || c == '<':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.emit(tokOp, l.src[l.pos:l.pos+2])
			} else {
				l.emit(tokOp, string(c))
			}
		case c == '=':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.emit(tokOp, "==")
			} else {
				l.fail("unexpected '='; use '=='")
				return
			}
		case c == '!':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.emit(tokOp, "!=")
			} else {
				l.emit(tokNot, "!")
			}
		case c == '&':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '&' {
				l.emit(tokAnd, "&&")
			} else {
				l.fail("unexpected '&'; use '&&'")
				return
			}
		case c == '|':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '|' {
				l.emit(tokOr, "||")
			} else {
				l.fail("unexpected '|'; use '||'")
				return
			}
		case c >= '0' && c <= '9' || c == '.':
			l.lexNumber()
		case unicode.IsLetter(rune(c)):
			l.lexIdent()
		default:
			l.fail(fmt.Sprintf("unexpected character %q", c))
			return
		}
		if l.err != nil {
			return
		}
	}
	l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
}

func (l *lexer) emit(kind tokenKind, text string) {
	l.tokens = append(l.tokens, token{kind: kind, text: text, pos: l.pos})
	l.pos += len(text)
}

func (l *lexer) fail(msg string) {
	l.err = fmt.Errorf("position %d: %s", l.pos, msg)
}

func (l *lexer) lexNumber() {
	start := l.pos
	dots := 0
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' {
			dots++
			if dots > 1 {
				l.fail("malformed number")
				return
			}
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	text := l.src[start:l.pos]
	if text == "." {
		l.fail("malformed number")
		return
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: text, pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
			break
		}
		l.pos++
	}
	word := l.src[start:l.pos]
	kind := tokIdent
	switch strings.ToLower(word) {
	case "and":
		kind = tokAnd
	case "or":
		kind = tokOr
	case "not":
		kind = tokNot
	}
	l.tokens = append(l.tokens, token{kind: kind, text: word, pos: start})
}
