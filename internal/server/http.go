package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/obs"
)

// HTTP surface:
//
//	POST   /v1/jobs               submit (202 + job id, typed 4xx on rejection)
//	GET    /v1/jobs/{id}          status + live partial stats
//	GET    /v1/jobs/{id}/clusters clusters of a done job (409 otherwise)
//	GET    /v1/jobs/{id}/events   SSE: journal replay + live tail (events.go)
//	DELETE /v1/jobs/{id}          cancel
//	GET    /v1/fleet              lease-derived who-owns-what view (events.go)
//	GET    /healthz               process liveness (always 200)
//	GET    /readyz                503 while draining
//	GET    /metrics               Prometheus text: daemon + engine counters
//	                              + latency histograms
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/clusters", s.handleClusters)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/fleet", s.handleFleet)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.writeMetrics(w); err != nil {
			s.cfg.Logf("metrics: %v", err)
		}
	})
	return mux
}

// writeMetrics renders the full /metrics payload: daemon counters,
// aggregated engine counters, the daemon latency histograms, and the
// per-phase engine histogram family. One function so tests can lint
// the exact exposition a scraper sees.
func (s *Server) writeMetrics(w io.Writer) error {
	if err := s.Met.WritePrometheus(w, s.aggregateSnapshot()); err != nil {
		return err
	}
	if err := s.Hist.QueueWait.WritePrometheus(w, "sxnmd_queue_wait_seconds",
		"Time jobs spend queued before a worker picks them up."); err != nil {
		return err
	}
	if err := s.Hist.Attempt.WritePrometheus(w, "sxnmd_attempt_duration_seconds",
		"Duration of individual engine attempts, successful or not."); err != nil {
		return err
	}
	if err := s.Hist.JobLatency.WritePrometheus(w, "sxnmd_job_duration_seconds",
		"End-to-end job latency from submission to terminal state."); err != nil {
		return err
	}
	return s.phases.WritePrometheus(w, "sxnmd_engine_phase_duration_seconds",
		"Engine phase (span) durations aggregated across all jobs.")
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, apiErr := DecodeJobRequest(body)
	if apiErr != nil {
		writeAPIError(w, apiErr)
		return
	}
	j, apiErr := s.Submit(req)
	if apiErr != nil {
		writeAPIError(w, apiErr)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, s.statusOf(j))
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeAPIError(w, &apiError{Status: http.StatusNotFound, Code: "unknown-job",
			Message: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, s.statusOf(j))
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeAPIError(w, &apiError{Status: http.StatusNotFound, Code: "unknown-job",
			Message: "no such job"})
		return
	}
	j.mu.Lock()
	state := j.state
	out := j.result
	j.mu.Unlock()
	if state != StateDone || out == nil {
		writeAPIError(w, &apiError{Status: http.StatusConflict, Code: "not-done",
			Message: fmt.Sprintf("job is %s; clusters exist only for done jobs", state)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":       j.id,
		"clusters": out.Clusters,
		"summary":  out.Summary,
	})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, changed := s.Cancel(r.PathValue("id"))
	if j == nil {
		writeAPIError(w, &apiError{Status: http.StatusNotFound, Code: "unknown-job",
			Message: "no such job"})
		return
	}
	code := http.StatusOK
	if changed {
		code = http.StatusAccepted
	}
	writeJSON(w, code, s.statusOf(j))
}

// JobStatus is the GET /v1/jobs/{id} (and POST response) body.
type JobStatus struct {
	ID        string             `json:"id"`
	Tenant    string             `json:"tenant"`
	State     JobState           `json:"state"`
	Attempts  int                `json:"attempts"`
	Resumed   bool               `json:"resumed,omitempty"`
	Submitted time.Time          `json:"submitted"`
	Started   *time.Time         `json:"started,omitempty"`
	Finished  *time.Time         `json:"finished,omitempty"`
	Error     *apiErrorJSON      `json:"error,omitempty"`
	Summary   []CandidateSummary `json:"summary,omitempty"`
	Stats     *obs.Snapshot      `json:"stats,omitempty"`
}

func (s *Server) statusOf(j *job) *JobStatus {
	snap := j.snapshot()
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &JobStatus{
		ID:        j.id,
		Tenant:    j.req.Tenant,
		State:     j.state,
		Attempts:  j.attempts,
		Resumed:   j.resumed,
		Submitted: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.errCode != "" {
		st.Error = &apiErrorJSON{Code: j.errCode, Message: j.errMsg}
	}
	if j.result != nil {
		st.Summary = j.result.Summary
		st.Attempts = j.result.Attempts
	}
	if snap != (obs.Snapshot{}) {
		st.Stats = &snap
	}
	return st
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeAPIError(w http.ResponseWriter, e *apiError) {
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds(e.RetryAfter)))
	}
	status := e.Status
	if status == 0 {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, map[string]any{"error": apiErrorJSON{Code: e.Code, Message: e.Message}})
}

// retryAfterSeconds converts a backpressure hint to whole seconds with
// bounded jitter (up to +25%, at least +0..1s): a fleet of clients
// rejected in the same instant must not all come back in the same
// instant. The result is always ≥ 1 and ≤ ceil(1.25·d)+1 seconds.
func retryAfterSeconds(d time.Duration) int {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs + rand.Intn(secs/4+2)
}
