package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	sxnm "repro"
)

// Shared fixture: the movie/person corpus of the checkpoint fault
// suite, expressed in the daemon's wire form (an XML config string
// plus an XML document string inside one JSON submission).

const testConfigXML = `
<sxnm-config window="4">
  <candidate name="movie" xpath="movie_database/movies/movie"
             rule="either" odThreshold="0.7" descThreshold="0.4">
    <path id="1" relPath="title/text()"/>
    <path id="2" relPath="@year"/>
    <od pid="1" relevance="0.8"/>
    <od pid="2" relevance="0.2" sim="year"/>
    <key name="title"><part pid="1" order="1" pattern="K1-K5"/></key>
    <key name="year">
      <part pid="2" order="1" pattern="D3,D4"/>
      <part pid="1" order="2" pattern="K1,K2"/>
    </key>
  </candidate>
  <candidate name="person" xpath="movie_database/movies/movie/people/person"
             threshold="0.85">
    <path id="1" relPath="text()"/>
    <od pid="1" relevance="1"/>
    <key name="name"><part pid="1" order="1" pattern="C1-C6"/></key>
  </candidate>
</sxnm-config>`

const testDocXML = `
<movie_database>
  <movies>
    <movie year="1999"><title>The Matrix</title><people><person>Keanu Reeves</person><person>Carrie-Anne Moss</person></people></movie>
    <movie year="1999"><title>Matrix, The</title><people><person>Keanu Reves</person><person>Carrie-Anne Moss</person></people></movie>
    <movie year="1998"><title>Mask of Zorro</title><people><person>Antonio Banderas</person></people></movie>
    <movie year="1999"><title>The Matrrix</title><people><person>Keanu Reeves</person></people></movie>
    <movie year="1998"><title>The Mask of Zorro</title><people><person>Antonio Bandera</person></people></movie>
    <movie year="1972"><title>The Godfather</title><people><person>Marlon Brando</person><person>Al Pacino</person></people></movie>
    <movie year="1972"><title>Godfather, The</title><people><person>Marlon Brando</person><person>Al Pacinno</person></people></movie>
    <movie year="1994"><title>Leon</title><people><person>Jean Reno</person></people></movie>
  </movies>
</movie_database>`

func testBody(t *testing.T, mutate func(map[string]any)) []byte {
	t.Helper()
	m := map[string]any{
		"config_xml":   testConfigXML,
		"document_xml": testDocXML,
	}
	if mutate != nil {
		mutate(m)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		SpoolDir:       t.TempDir(),
		Workers:        2,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  5 * time.Millisecond,
		Logf:           t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s
}

func postJob(t *testing.T, ts *httptest.Server, body []byte) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response from %s: %v", url, err)
	}
	return resp, out
}

// waitTerminal polls the job until it leaves queued/running.
func waitTerminal(t *testing.T, s *Server, id string) *job {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		j := s.Job(id)
		if j == nil {
			t.Fatalf("job %s vanished", id)
		}
		j.mu.Lock()
		st := j.state
		j.mu.Unlock()
		if st.Terminal() {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return nil
}

func errCode(t *testing.T, body map[string]any) string {
	t.Helper()
	e, _ := body["error"].(map[string]any)
	if e == nil {
		t.Fatalf("response has no error envelope: %v", body)
	}
	code, _ := e["code"].(string)
	return code
}

func TestSubmitRunAndFetchClusters(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJob(t, ts, testBody(t, nil))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %v", resp.StatusCode, body)
	}
	id, _ := body["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", body)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+id {
		t.Errorf("Location = %q", loc)
	}

	j := waitTerminal(t, s, id)
	resp, status := getJSON(t, ts.URL+"/v1/jobs/"+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status fetch = %d", resp.StatusCode)
	}
	if st := status["state"]; st != "done" {
		t.Fatalf("state = %v, error = %v", st, status["error"])
	}
	if status["summary"] == nil || status["stats"] == nil {
		t.Errorf("done status missing summary/stats: %v", status)
	}

	resp, clusters := getJSON(t, ts.URL+"/v1/jobs/"+id+"/clusters")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clusters fetch = %d", resp.StatusCode)
	}
	cm, _ := clusters["clusters"].(map[string]any)
	if cm["movie"] == nil || cm["person"] == nil {
		t.Fatalf("clusters missing candidates: %v", clusters)
	}

	// The spool holds the full durable record: job, outcome, report,
	// metrics (satellite: observability outputs on every terminal path).
	dir := s.spool.jobDir(id)
	for _, f := range []string{spoolJobFile, spoolOutcomeFile, spoolReportFile, spoolMetricsFile} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("spool missing %s: %v", f, err)
		}
	}
	_ = j
}

func TestTypedRejections(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxBodyBytes = 4096
		c.MaxLimits = sxnm.Limits{MaxComparisons: 100}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		body   []byte
		status int
		code   string
	}{
		{"malformed json", []byte("{nope"), 400, "malformed-request"},
		{"trailing garbage", append(testBody(t, nil), []byte("{}")...), 400, "malformed-request"},
		{"unknown field", []byte(`{"config_xml":"x","document_xml":"y","bogus":1}`), 400, "malformed-request"},
		{"missing config", testBody(t, func(m map[string]any) { delete(m, "config_xml") }), 400, "missing-config"},
		{"missing document", testBody(t, func(m map[string]any) { delete(m, "document_xml") }), 400, "missing-document"},
		{"bad tenant", testBody(t, func(m map[string]any) { m["tenant"] = "no spaces" }), 400, "invalid-tenant"},
		{"negative limits", testBody(t, func(m map[string]any) { m["limits"] = map[string]any{"timeout_ms": -1} }), 400, "invalid-limits"},
		{"invalid config xml", testBody(t, func(m map[string]any) { m["config_xml"] = "<config/>" }), 400, "invalid-config"},
		{"limits exceed budget", testBody(t, func(m map[string]any) {
			m["limits"] = map[string]any{"max_comparisons": 1000}
		}), 400, "limits-exceed-budget"},
		{"oversized body", testBody(t, func(m map[string]any) {
			m["document_xml"] = strings.Repeat("<a/>", 4096)
		}), 413, "body-too-large"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJob(t, ts, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (body %v)", resp.StatusCode, tc.status, body)
			}
			if code := errCode(t, body); code != tc.code {
				t.Errorf("code = %q, want %q", code, tc.code)
			}
		})
	}

	if got := s.Met.JobsAccepted.Load(); got != 0 {
		t.Errorf("rejected submissions were counted as accepted: %d", got)
	}
}

// blockingRunner returns a Runner that parks jobs until released; it
// honors cancellation/drain like the engine would (typed interruption).
func blockingRunner() (runner func(context.Context, *sxnm.Detector, *sxnm.Document, sxnm.CheckpointFS, string) (*sxnm.Result, error), release func()) {
	gate := make(chan struct{})
	return func(ctx context.Context, det *sxnm.Detector, doc *sxnm.Document, fsys sxnm.CheckpointFS, dir string) (*sxnm.Result, error) {
		select {
		case <-gate:
			return defaultRunner(ctx, det, doc, fsys, dir)
		case <-ctx.Done():
			return nil, sxnm.ErrCanceled
		}
	}, func() { close(gate) }
}

func TestAdmissionControl(t *testing.T) {
	runner, release := blockingRunner()
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueCap = 1
		c.PerTenantJobs = 2
		c.Runner = runner
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Job 1 occupies the single worker; wait for it to start so job 2
	// deterministically occupies the queue slot.
	_, b1 := postJob(t, ts, testBody(t, nil))
	id1, _ := b1["id"].(string)
	waitFor(t, func() bool { return s.Met.RunningJobs.Load() == 1 })

	_, b2 := postJob(t, ts, testBody(t, func(m map[string]any) { m["tenant"] = "other" }))
	id2, _ := b2["id"].(string)
	if id2 == "" {
		t.Fatalf("second submission rejected: %v", b2)
	}

	// Queue full → 429 queue-full with Retry-After.
	resp, body := postJob(t, ts, testBody(t, func(m map[string]any) { m["tenant"] = "third" }))
	if resp.StatusCode != http.StatusTooManyRequests || errCode(t, body) != "queue-full" {
		t.Fatalf("expected queue-full 429, got %d %v", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue-full reject lacks Retry-After")
	}
	if s.Met.RejectsFull.Load() != 1 {
		t.Errorf("RejectsFull = %d", s.Met.RejectsFull.Load())
	}

	release()
	waitTerminal(t, s, id1)
	waitTerminal(t, s, id2)

	// Per-tenant cap: 2 active jobs for one tenant, third rejected.
	runner2, release2 := blockingRunner()
	s2 := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueCap = 10
		c.PerTenantJobs = 2
		c.Runner = runner2
	})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer release2()

	for i := 0; i < 2; i++ {
		if resp, b := postJob(t, ts2, testBody(t, nil)); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d rejected: %v", i, b)
		}
	}
	resp, body = postJob(t, ts2, testBody(t, nil))
	if resp.StatusCode != http.StatusTooManyRequests || errCode(t, body) != "tenant-busy" {
		t.Fatalf("expected tenant-busy 429, got %d %v", resp.StatusCode, body)
	}
	// A different tenant still gets in.
	if resp, b := postJob(t, ts2, testBody(t, func(m map[string]any) { m["tenant"] = "other" })); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant rejected: %v", b)
	}
	if s2.Met.RejectsTenant.Load() != 1 {
		t.Errorf("RejectsTenant = %d", s2.Met.RejectsTenant.Load())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func TestCancelRunningAndQueued(t *testing.T) {
	runner, release := blockingRunner()
	defer release()
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueCap = 4
		c.Runner = runner
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, b1 := postJob(t, ts, testBody(t, nil))
	id1, _ := b1["id"].(string)
	waitFor(t, func() bool { return s.Met.RunningJobs.Load() == 1 })
	_, b2 := postJob(t, ts, testBody(t, nil))
	id2, _ := b2["id"].(string)

	// Cancel the queued job: terminal immediately, durable outcome.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id2, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel queued = %d", resp.StatusCode)
	}
	j2 := waitTerminal(t, s, id2)
	j2.mu.Lock()
	st2 := j2.state
	j2.mu.Unlock()
	if st2 != StateCanceled {
		t.Fatalf("queued job state = %s, want canceled", st2)
	}

	// Cancel the running job: its context is canceled, the runner
	// returns a typed interruption, and the job finishes canceled with
	// report/metrics files written (satellite: outputs on cancellation).
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id1, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	j1 := waitTerminal(t, s, id1)
	j1.mu.Lock()
	st1 := j1.state
	j1.mu.Unlock()
	if st1 != StateCanceled {
		t.Fatalf("running job state = %s, want canceled", st1)
	}
	for _, id := range []string{id1, id2} {
		out, err := s.spool.loadOutcome(id)
		if err != nil || out == nil || out.State != StateCanceled {
			t.Errorf("job %s: outcome = %+v, err %v", id, out, err)
		}
		for _, f := range []string{spoolReportFile, spoolMetricsFile} {
			if _, err := os.Stat(filepath.Join(s.spool.jobDir(id), f)); err != nil {
				t.Errorf("canceled job %s missing %s: %v", id, f, err)
			}
		}
	}
	if got := s.Met.JobsCanceled.Load(); got != 2 {
		t.Errorf("JobsCanceled = %d, want 2", got)
	}

	// Unknown job and double cancel.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/nope", nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown = %d", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id1, nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK { // already terminal: no-op
		t.Errorf("double cancel = %d", resp.StatusCode)
	}
}

func TestRetryTransientThenSucceed(t *testing.T) {
	var calls int
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.MaxAttempts = 3
		c.Runner = func(ctx context.Context, det *sxnm.Detector, doc *sxnm.Document, fsys sxnm.CheckpointFS, dir string) (*sxnm.Result, error) {
			calls++
			if calls <= 2 {
				return nil, fmt.Errorf("transient I/O glitch %d", calls)
			}
			return defaultRunner(ctx, det, doc, fsys, dir)
		}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, b := postJob(t, ts, testBody(t, nil))
	id, _ := b["id"].(string)
	j := waitTerminal(t, s, id)
	j.mu.Lock()
	st, attempts := j.state, j.attempts
	j.mu.Unlock()
	if st != StateDone {
		t.Fatalf("state = %s (err %s)", st, j.errMsg)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	if got := s.Met.Retries.Load(); got != 2 {
		t.Errorf("Retries = %d, want 2", got)
	}
}

func TestTransientExhaustedFails(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.MaxAttempts = 2
		c.Runner = func(ctx context.Context, det *sxnm.Detector, doc *sxnm.Document, fsys sxnm.CheckpointFS, dir string) (*sxnm.Result, error) {
			return nil, errors.New("disk unhappy")
		}
	})
	_, apiErr := s.Submit(mustRequest(t, nil))
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	var id string
	s.mu.Lock()
	for jid := range s.jobs {
		id = jid
	}
	s.mu.Unlock()
	j := waitTerminal(t, s, id)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateFailed || j.errCode != "transient-exhausted" {
		t.Fatalf("state = %s, code %q", j.state, j.errCode)
	}
	if j.attempts != 2 {
		t.Errorf("attempts = %d, want 2", j.attempts)
	}
}

func TestFailFastPaths(t *testing.T) {
	t.Run("invalid document", func(t *testing.T) {
		s := newTestServer(t, nil)
		j, apiErr := s.Submit(mustRequest(t, func(r *JobRequest) { r.DocumentXML = "<unclosed>" }))
		if apiErr != nil {
			t.Fatal(apiErr)
		}
		got := waitTerminal(t, s, j.id)
		got.mu.Lock()
		defer got.mu.Unlock()
		if got.state != StateFailed || got.errCode != "invalid-document" {
			t.Fatalf("state = %s code %q", got.state, got.errCode)
		}
		if got.attempts != 1 {
			t.Errorf("fail-fast fault was retried: attempts = %d", got.attempts)
		}
	})

	t.Run("budget breach", func(t *testing.T) {
		s := newTestServer(t, nil)
		j, apiErr := s.Submit(mustRequest(t, func(r *JobRequest) {
			r.Limits = &LimitsSpec{MaxComparisons: 1}
		}))
		if apiErr != nil {
			t.Fatal(apiErr)
		}
		got := waitTerminal(t, s, j.id)
		got.mu.Lock()
		defer got.mu.Unlock()
		if got.state != StateFailed || got.errCode != "limit-exceeded" {
			t.Fatalf("state = %s code %q (%s)", got.state, got.errCode, got.errMsg)
		}
		if got.attempts != 1 {
			t.Errorf("budget breach was retried: attempts = %d", got.attempts)
		}
	})

	t.Run("panic containment", func(t *testing.T) {
		s := newTestServer(t, func(c *Config) {
			c.Runner = func(ctx context.Context, det *sxnm.Detector, doc *sxnm.Document, fsys sxnm.CheckpointFS, dir string) (*sxnm.Result, error) {
				panic("engine bug")
			}
		})
		j, apiErr := s.Submit(mustRequest(t, nil))
		if apiErr != nil {
			t.Fatal(apiErr)
		}
		got := waitTerminal(t, s, j.id)
		got.mu.Lock()
		st, code := got.state, got.errCode
		got.mu.Unlock()
		if st != StateFailed || code != "panic" {
			t.Fatalf("state = %s code %q", st, code)
		}
		if s.Met.PanicsContained.Load() != 1 {
			t.Errorf("PanicsContained = %d", s.Met.PanicsContained.Load())
		}
		// The daemon survived: it still accepts and completes work.
		j2, apiErr := s.Submit(mustRequest(t, nil))
		if apiErr != nil {
			t.Fatal(apiErr)
		}
		_ = waitTerminal(t, s, j2.id)
	})
}

func mustRequest(t *testing.T, mutate func(*JobRequest)) *JobRequest {
	t.Helper()
	req := &JobRequest{ConfigXML: testConfigXML, DocumentXML: testDocXML}
	if mutate != nil {
		mutate(req)
	}
	if apiErr := req.validate(); apiErr != nil {
		t.Fatal(apiErr)
	}
	return req
}

func TestHealthReadyMetricsEndpoints(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %v %v", err, resp)
	}
	resp.Body.Close()

	_, b := postJob(t, ts, testBody(t, nil))
	id, _ := b["id"].(string)
	waitTerminal(t, s, id)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"sxnmd_jobs_accepted_total 1",
		"sxnmd_jobs_done_total 1",
		"sxnmd_queue_depth 0",
		"sxnmd_engine_comparisons_total",
		"sxnmd_engine_window_pairs_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestSharedSimCacheAcrossJobs(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Engine.SimCache = true
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 2; i++ {
		_, b := postJob(t, ts, testBody(t, nil))
		id, _ := b["id"].(string)
		ids = append(ids, id)
		waitTerminal(t, s, id)
	}
	first := s.Job(ids[0]).snapshot()
	second := s.Job(ids[1]).snapshot()
	if second.SimCacheHits <= first.SimCacheHits {
		t.Errorf("warm second job should hit the shared cache more: first %d hits, second %d",
			first.SimCacheHits, second.SimCacheHits)
	}
	// Determinism: identical clusters despite the warm cache.
	o1, _ := s.spool.loadOutcome(ids[0])
	o2, _ := s.spool.loadOutcome(ids[1])
	c1, _ := json.Marshal(o1.Clusters)
	c2, _ := json.Marshal(o2.Clusters)
	if !bytes.Equal(c1, c2) {
		t.Error("warm-cache run produced different clusters")
	}
	if s.pool.len() == 0 {
		t.Error("cache pool is empty after SimCache jobs")
	}
}
