//go:build !linux

package server

import "errors"

// osFreeBytes is unavailable off Linux; the threshold check is
// skipped and disk pressure is detected from ENOSPC + write probes
// alone.
func osFreeBytes(dir string) (uint64, error) {
	return 0, errors.New("server: free-space probe unsupported on this platform")
}
