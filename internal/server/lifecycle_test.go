package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	sxnm "repro"
	"repro/internal/checkpoint"
)

// Spool lifecycle coverage: TTL garbage collection, quarantine of
// corrupt entries, the disk-pressure admission gate, per-tenant rate
// limits, cancel-during-backoff, and Retry-After jitter bounds.

// GC must collect terminal jobs once their outcome is older than
// GCTTL — after which their id answers 404 — and must NEVER touch a
// job that is still active, no matter how long it runs.
func TestGCCollectsTerminalSparesActive(t *testing.T) {
	const gcTTL = 80 * time.Millisecond
	var calls atomic.Int64
	gate := make(chan struct{})
	runner := func(ctx context.Context, det *sxnm.Detector, doc *sxnm.Document, fsys sxnm.CheckpointFS, dir string) (*sxnm.Result, error) {
		if calls.Add(1) == 1 {
			return defaultRunner(ctx, det, doc, fsys, dir)
		}
		select {
		case <-gate:
			return defaultRunner(ctx, det, doc, fsys, dir)
		case <-ctx.Done():
			return nil, sxnm.ErrCanceled
		}
	}
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.GCTTL = gcTTL
		c.ReapInterval = 10 * time.Millisecond
		c.Runner = runner
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	jt, apiErr := s.Submit(mustRequest(t, nil))
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	waitTerminal(t, s, jt.id)

	ja, apiErr := s.Submit(mustRequest(t, func(r *JobRequest) { r.Tenant = "other" }))
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	waitFor(t, func() bool { return s.Met.RunningJobs.Load() == 1 })

	// Outlive several GC windows while ja is still running.
	waitFor(t, func() bool { return s.Met.JobsGCed.Load() >= 1 })
	time.Sleep(3 * gcTTL)

	// The terminal job is gone: memory, spool, and the API agree.
	if s.Job(jt.id) != nil {
		t.Error("GC'd job still registered in memory")
	}
	if _, err := os.Stat(s.spool.jobDir(jt.id)); !errors.Is(err, os.ErrNotExist) {
		t.Error("GC'd job's spool directory survived")
	}
	resp, body := getJSON(t, ts.URL+"/v1/jobs/"+jt.id)
	if resp.StatusCode != http.StatusNotFound || errCode(t, body) != "unknown-job" {
		t.Errorf("GC'd job answered %d %v, want 404 unknown-job", resp.StatusCode, body)
	}

	// The active job was never collected, and still finishes correctly.
	if s.Job(ja.id) == nil {
		t.Fatal("active job vanished during GC sweeps")
	}
	if _, err := os.Stat(s.spool.jobDir(ja.id)); err != nil {
		t.Fatalf("active job's spool directory: %v", err)
	}
	close(gate)
	rec := waitTerminal(t, s, ja.id)
	rec.mu.Lock()
	st := rec.state
	rec.mu.Unlock()
	if st != StateDone {
		t.Fatalf("active job finished as %s", st)
	}
	if got, want := clustersBytes(t, s, ja.id), referenceClusters(t); !bytes.Equal(got, want) {
		t.Error("job that survived GC sweeps produced different clusters")
	}
}

// Corrupt spool entries — an undecodable job.json, an outcome.json of
// torn bytes — must be moved into .quarantine with a typed reason; the
// daemon keeps serving.
func TestCorruptSpoolEntriesQuarantined(t *testing.T) {
	spoolDir := t.TempDir()
	sp, err := newSpool(spoolDir, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Entry 1: garbage job.json.
	if err := sp.fsys.MkdirAll(sp.jobDir("j-badjob")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sp.jobDir("j-badjob"), spoolJobFile), []byte(`{"id":"j-bad`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Entry 2: valid job.json, torn outcome.json.
	jb := &job{id: "j-badout", req: mustRequest(t, nil), submitted: time.Now().UTC()}
	if err := sp.admit(jb); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sp.jobDir("j-badout"), spoolOutcomeFile), []byte(`{"state":"do`), 0o644); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, func(c *Config) { c.SpoolDir = spoolDir })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if got := s.Met.JobsQuarantined.Load(); got != 2 {
		t.Fatalf("JobsQuarantined = %d, want 2", got)
	}
	for _, id := range []string{"j-badjob", "j-badout"} {
		if _, err := os.Stat(filepath.Join(spoolDir, id)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("corrupt entry %s still in the spool", id)
		}
		resp, _ := getJSON(t, ts.URL+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("quarantined %s answers %d, want 404", id, resp.StatusCode)
		}
	}
	qents, err := os.ReadDir(filepath.Join(spoolDir, spoolQuarantineDir))
	if err != nil || len(qents) != 2 {
		t.Fatalf("quarantine holds %d entries (%v), want 2", len(qents), err)
	}
	// Each quarantined entry records its typed reason.
	for _, ent := range qents {
		raw, err := os.ReadFile(filepath.Join(spoolDir, spoolQuarantineDir, ent.Name(), quarantineFile))
		if err != nil {
			t.Errorf("quarantine entry %s lacks a readable %s: %v", ent.Name(), quarantineFile, err)
			continue
		}
		if !bytes.Contains(raw, []byte("corrupt")) {
			t.Errorf("quarantine reason for %s does not name the corruption: %s", ent.Name(), raw)
		}
	}

	// The daemon is alive and well: a fresh job still runs to done.
	j, apiErr := s.Submit(mustRequest(t, nil))
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	rec := waitTerminal(t, s, j.id)
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.state != StateDone {
		t.Fatalf("post-quarantine job finished as %s", rec.state)
	}
}

// enospcFS delegates to the real filesystem but, while armed, fails
// every temp-file creation with ENOSPC — a full disk as admission
// sees it.
type enospcFS struct {
	checkpoint.FS
	armed *atomic.Bool
}

func (f enospcFS) CreateTemp(dir, pattern string) (checkpoint.File, error) {
	if f.armed.Load() {
		return nil, &os.PathError{Op: "createtemp", Path: dir, Err: syscall.ENOSPC}
	}
	return f.FS.CreateTemp(dir, pattern)
}

// A spool write failing with ENOSPC must flip admission to 507
// spool-disk-full with Retry-After; the gate reopens only after the
// reaper's durable write probe succeeds again.
func TestDiskPressureFromENOSPC(t *testing.T) {
	var armed atomic.Bool
	s := newTestServer(t, func(c *Config) {
		c.CheckpointFS = enospcFS{FS: checkpoint.OSFS(), armed: &armed}
		c.ReapInterval = 10 * time.Millisecond
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Healthy disk: a job goes through end to end.
	resp, _ := postJob(t, ts, testBody(t, nil))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("healthy submit: %d", resp.StatusCode)
	}

	armed.Store(true)
	resp, body := postJob(t, ts, testBody(t, nil))
	if resp.StatusCode != http.StatusInsufficientStorage || errCode(t, body) != "spool-disk-full" {
		t.Fatalf("ENOSPC submit: %d %v, want 507 spool-disk-full", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("507 lacks Retry-After")
	}
	if s.Met.DiskPressure.Load() != 1 {
		t.Error("ENOSPC did not raise the disk-pressure gauge")
	}
	// The gate now rejects before touching the disk at all.
	resp, body = postJob(t, ts, testBody(t, nil))
	if resp.StatusCode != http.StatusInsufficientStorage || errCode(t, body) != "spool-disk-full" {
		t.Fatalf("gated submit: %d %v", resp.StatusCode, body)
	}
	if got := s.Met.RejectsDisk.Load(); got < 2 {
		t.Errorf("RejectsDisk = %d, want ≥ 2", got)
	}

	// Space returns; the reaper's probe write reopens admission.
	armed.Store(false)
	waitFor(t, func() bool { return s.Met.DiskPressure.Load() == 0 })
	resp, body = postJob(t, ts, testBody(t, nil))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-recovery submit: %d %v", resp.StatusCode, body)
	}
}

// The statfs threshold path: free space below MinFreeBytes closes
// admission, recovery reopens it.
func TestDiskPressureFromFreeBytesThreshold(t *testing.T) {
	var free atomic.Uint64
	free.Store(1 << 30)
	s := newTestServer(t, func(c *Config) {
		c.MinFreeBytes = 1 << 20
		c.FreeBytes = func(string) (uint64, error) { return free.Load(), nil }
		c.ReapInterval = 10 * time.Millisecond
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	free.Store(1 << 10)
	waitFor(t, func() bool { return s.Met.DiskPressure.Load() == 1 })
	resp, body := postJob(t, ts, testBody(t, nil))
	if resp.StatusCode != http.StatusInsufficientStorage || errCode(t, body) != "spool-disk-full" {
		t.Fatalf("low-disk submit: %d %v", resp.StatusCode, body)
	}

	free.Store(1 << 30)
	waitFor(t, func() bool { return s.Met.DiskPressure.Load() == 0 })
	if resp, body := postJob(t, ts, testBody(t, nil)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-recovery submit: %d %v", resp.StatusCode, body)
	}
}

// Per-tenant token bucket: a tenant burning its burst gets 429
// tenant-rate-limited with Retry-After; other tenants are unaffected.
func TestTenantRateLimit(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.TenantRPS = 0.5
		c.TenantBurst = 2
		c.QueueCap = 100
		c.PerTenantJobs = 100
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		if resp, b := postJob(t, ts, testBody(t, nil)); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("burst submit %d: %d %v", i, resp.StatusCode, b)
		}
	}
	resp, body := postJob(t, ts, testBody(t, nil))
	if resp.StatusCode != http.StatusTooManyRequests || errCode(t, body) != "tenant-rate-limited" {
		t.Fatalf("over-rate submit: %d %v, want 429 tenant-rate-limited", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("rate-limit 429 lacks Retry-After")
	}
	if s.Met.RejectsRate.Load() != 1 {
		t.Errorf("RejectsRate = %d", s.Met.RejectsRate.Load())
	}
	// Another tenant's bucket is untouched.
	if resp, b := postJob(t, ts, testBody(t, func(m map[string]any) { m["tenant"] = "other" })); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant: %d %v", resp.StatusCode, b)
	}
}

// Token-bucket unit behavior under an injected clock: refill at rps,
// cap at burst, exact retry hints, idle-bucket pruning.
func TestRateLimiterRefillAndPrune(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	l := newRateLimiter(10, 1, clock)

	if ok, _ := l.allow("t"); !ok {
		t.Fatal("first token denied")
	}
	ok, wait := l.allow("t")
	if ok {
		t.Fatal("empty bucket allowed")
	}
	if wait <= 0 || wait > 100*time.Millisecond {
		t.Fatalf("retry hint %v, want (0, 100ms]", wait)
	}
	now = now.Add(100 * time.Millisecond)
	if ok, _ := l.allow("t"); !ok {
		t.Fatal("refilled token denied")
	}

	// Idle full buckets are pruned; active ones stay.
	now = now.Add(time.Hour)
	l.prune(10 * time.Minute)
	if l.len() != 0 {
		t.Fatalf("idle buckets not pruned: %d", l.len())
	}

	if l := newRateLimiter(0, 0, clock); l != nil {
		t.Fatal("rps=0 should disable the limiter")
	}
	var nilL *rateLimiter
	if ok, _ := nilL.allow("t"); !ok {
		t.Fatal("nil limiter must allow everything")
	}
}

// Satellite: a DELETE racing a retry backoff must take effect
// immediately — the backoff sleep is a cancellation point, not a
// blackout. The backoff here is 30s+; the test passes only if cancel
// cuts it short.
func TestCancelDuringRetryBackoff(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.MaxAttempts = 5
		c.RetryBaseDelay = 30 * time.Second
		c.RetryMaxDelay = 60 * time.Second
		c.Runner = func(context.Context, *sxnm.Detector, *sxnm.Document, sxnm.CheckpointFS, string) (*sxnm.Result, error) {
			return nil, fmt.Errorf("injected transient fault")
		}
	})
	j, apiErr := s.Submit(mustRequest(t, nil))
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	// The first attempt fails instantly; wait until the job is inside
	// its 30-second backoff sleep.
	waitFor(t, func() bool { return s.Met.Retries.Load() >= 1 })

	start := time.Now()
	if _, changed := s.Cancel(j.id); !changed {
		t.Fatal("cancel changed nothing")
	}
	rec := waitTerminal(t, s, j.id)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel during backoff took %v; the sleep is not honoring cancellation", elapsed)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.state != StateCanceled {
		t.Fatalf("state = %s, want canceled", rec.state)
	}
}

// Satellite: Retry-After jitter is bounded — never below the true
// wait, never more than ~25%+1s above it — and actually varies.
func TestRetryAfterJitterBounds(t *testing.T) {
	for _, d := range []time.Duration{500 * time.Millisecond, 5 * time.Second, time.Minute} {
		base := int(d / time.Second)
		if base < 1 {
			base = 1
		}
		seen := make(map[int]bool)
		for i := 0; i < 400; i++ {
			got := retryAfterSeconds(d)
			if got < base || got > base+base/4+1 {
				t.Fatalf("retryAfterSeconds(%v) = %d, want [%d, %d]", d, got, base, base+base/4+1)
			}
			seen[got] = true
		}
		if len(seen) < 2 {
			t.Errorf("retryAfterSeconds(%v) never jittered across 400 draws", d)
		}
	}
}

// A crash between MkdirAll and the job.json write leaves a dir the
// scan skips; the sweep ages it out after 10×LeaseTTL.
func TestAdmissionDebrisAgedOut(t *testing.T) {
	spoolDir := t.TempDir()
	debris := filepath.Join(spoolDir, "j-debris")
	if err := os.MkdirAll(debris, 0o755); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(debris, old, old); err != nil {
		t.Fatal(err)
	}
	newTestServer(t, func(c *Config) {
		c.SpoolDir = spoolDir
		c.LeaseTTL = 100 * time.Millisecond
	})
	if _, err := os.Stat(debris); !errors.Is(err, os.ErrNotExist) {
		t.Error("admission debris survived the startup sweep")
	}
}
