package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// GET /v1/jobs/{id}/events streams the job's journal as Server-Sent
// Events: every persisted event is replayed first, then the stream
// tails the journal live until the job reaches a terminal event. Each
// SSE frame carries the journal sequence number as its id, so a client
// that reconnects with Last-Event-ID resumes exactly where it stopped:
//
//	id: 3
//	event: attempt-start
//	data: {"schema":"sxnm/events/v1","seq":3,...}
//
// The tail is poll-based (Config.EventPollInterval) over the same
// readJournalLinesFrom primitive recovery uses: the read offset only
// ever advances past complete newline-terminated lines, so a torn
// in-progress append is simply re-read whole on the next poll, never
// emitted half-written.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.cfg.DisableJournal {
		writeAPIError(w, &apiError{Status: http.StatusConflict, Code: "journal-disabled",
			Message: "this daemon runs with the event journal disabled"})
		return
	}
	j := s.Job(id)
	if j == nil {
		writeAPIError(w, &apiError{Status: http.StatusNotFound, Code: "unknown-job",
			Message: "no such job"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeAPIError(w, &apiError{Status: http.StatusInternalServerError, Code: "streaming-unsupported",
			Message: "response writer cannot stream"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// A reconnecting client sends the last sequence it saw; everything
	// at or below it is filtered out of the replay.
	var lastSeq int64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			lastSeq = n
		}
	}

	var offset int64
	for {
		lines, next, rerr := s.spool.readJournalLinesFrom(id, offset)
		if rerr != nil && offset == 0 {
			s.cfg.Logf("job %s: event stream read: %v", id, rerr)
		}
		offset = next
		terminal := false
		for _, l := range lines {
			if l.Ev.Seq <= lastSeq {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", l.Ev.Seq, l.Ev.Type, l.Raw)
			lastSeq = l.Ev.Seq
			if l.Ev.Terminal() {
				terminal = true
			}
		}
		if len(lines) > 0 {
			flusher.Flush()
		}
		if terminal {
			return
		}
		// The finished event lands in the journal BEFORE the in-memory
		// state flips terminal, so "job terminal and the read above found
		// nothing new" means the timeline is fully delivered (or its tail
		// was lost to a best-effort append failure — either way there is
		// nothing left to wait for).
		j.mu.Lock()
		done := j.state.Terminal()
		j.mu.Unlock()
		if done && len(lines) == 0 {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.drainCtx.Done():
			return
		case <-time.After(s.cfg.EventPollInterval):
		}
	}
}

// FleetStatus is the GET /v1/fleet body: this daemon's own gauges plus
// a lease-derived view of every owner sharing the spool — which is the
// only ground truth a fleet has; there is no coordinator to ask.
type FleetStatus struct {
	Daemon DaemonStatus `json:"daemon"`
	Owners []FleetOwner `json:"owners"`
	Jobs   FleetJobs    `json:"jobs"`
}

// DaemonStatus describes the daemon answering the request.
type DaemonStatus struct {
	Owner          string `json:"owner"`
	QueueDepth     int64  `json:"queue_depth"`
	RunningJobs    int64  `json:"running_jobs"`
	Draining       bool   `json:"draining"`
	DiskPressure   bool   `json:"disk_pressure"`
	LeasesAcquired int64  `json:"leases_acquired"`
	LeaseTakeovers int64  `json:"lease_takeovers"`
	LeasesFenced   int64  `json:"leases_fenced"`
	JournalEvents  int64  `json:"journal_events"`
}

// FleetOwner aggregates the live leases held by one owner id.
type FleetOwner struct {
	Owner string `json:"owner"`
	// Self marks the answering daemon's own row.
	Self bool `json:"self,omitempty"`
	// Jobs is how many unfinished jobs this owner's leases cover.
	Jobs int `json:"jobs"`
	// MaxEpoch is the highest fencing epoch among them — how contested
	// this owner's work has been.
	MaxEpoch int64 `json:"max_epoch"`
	// NewestHeartbeat is the freshest heartbeat across its leases.
	NewestHeartbeat time.Time `json:"newest_heartbeat"`
	// Live is true while that heartbeat is within the lease TTL.
	Live bool `json:"live"`
	// Released counts leases the owner handed back (a clean drain).
	Released int `json:"released,omitempty"`
}

// FleetJobs are spool-wide job totals.
type FleetJobs struct {
	Total      int `json:"total"`
	Unfinished int `json:"unfinished"`
	Terminal   int `json:"terminal"`
	Unleased   int `json:"unleased,omitempty"`
	Corrupt    int `json:"corrupt,omitempty"`
}

// GET /v1/fleet reads the shared spool's lease files and answers who
// owns what right now. Any daemon on the spool returns the same
// owner/job view (modulo in-flight churn); only the daemon section is
// specific to the one asked.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	now := time.Now().UTC()
	st := FleetStatus{
		Daemon: DaemonStatus{
			Owner:          s.owner,
			QueueDepth:     s.Met.QueueDepth.Load(),
			RunningJobs:    s.Met.RunningJobs.Load(),
			Draining:       s.Draining(),
			DiskPressure:   s.diskLow.Load(),
			LeasesAcquired: s.Met.LeasesAcquired.Load(),
			LeaseTakeovers: s.Met.LeaseTakeovers.Load(),
			LeasesFenced:   s.Met.LeasesFenced.Load(),
			JournalEvents:  s.Met.JournalEvents.Load(),
		},
		Owners: []FleetOwner{},
	}
	entries, err := s.spool.scan()
	if err != nil {
		writeAPIError(w, &apiError{Status: http.StatusInternalServerError, Code: "spool-error",
			Message: fmt.Sprintf("scanning spool: %v", err)})
		return
	}
	owners := map[string]*FleetOwner{}
	for _, ent := range entries {
		st.Jobs.Total++
		if ent.rec == nil {
			st.Jobs.Corrupt++
			continue
		}
		if out, oerr := s.spool.loadOutcome(ent.id); oerr == nil && out != nil {
			st.Jobs.Terminal++
			continue
		}
		st.Jobs.Unfinished++
		lease, lerr := s.spool.loadLease(ent.id)
		if lerr != nil || lease == nil {
			st.Jobs.Unleased++
			continue
		}
		o := owners[lease.Owner]
		if o == nil {
			o = &FleetOwner{Owner: lease.Owner, Self: lease.Owner == s.owner}
			owners[lease.Owner] = o
		}
		o.Jobs++
		if lease.Epoch > o.MaxEpoch {
			o.MaxEpoch = lease.Epoch
		}
		if lease.Heartbeat.After(o.NewestHeartbeat) {
			o.NewestHeartbeat = lease.Heartbeat
		}
		if lease.Released {
			o.Released++
		}
		if !lease.Released && !lease.Expired(now, s.cfg.LeaseTTL) {
			o.Live = true
		}
	}
	for _, o := range owners {
		st.Owners = append(st.Owners, *o)
	}
	sortFleetOwners(st.Owners)
	writeJSON(w, http.StatusOK, st)
}

// sortFleetOwners orders the answering daemon first, then by owner id,
// so the view is stable across polls.
func sortFleetOwners(owners []FleetOwner) {
	for i := 1; i < len(owners); i++ {
		for k := i; k > 0 && fleetOwnerLess(owners[k], owners[k-1]); k-- {
			owners[k], owners[k-1] = owners[k-1], owners[k]
		}
	}
}

func fleetOwnerLess(a, b FleetOwner) bool {
	if a.Self != b.Self {
		return a.Self
	}
	return a.Owner < b.Owner
}
