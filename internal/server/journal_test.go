package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/checkpoint/faultfs"
)

func testJournalSpool(t *testing.T, fsys checkpoint.FS) *spool {
	t.Helper()
	sp, err := newSpool(t.TempDir(), fsys)
	if err != nil {
		t.Fatal(err)
	}
	// Admission creates the job dir before any journal append; the
	// journal tests skip admission, so stand the directory up here.
	if err := os.MkdirAll(sp.jobDir("j1"), 0o755); err != nil {
		t.Fatal(err)
	}
	return sp
}

func mustAppend(t *testing.T, jr *journal, ev JobEvent) {
	t.Helper()
	if err := jr.append(&ev); err != nil {
		t.Fatalf("append %s: %v", ev.Type, err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	sp := testJournalSpool(t, nil)
	jr := sp.openJournal("j1", 0)
	events := []JobEvent{
		{Job: "j1", Type: EventAdmitted, Owner: "d-a", Epoch: 1},
		{Job: "j1", Type: EventQueued, Owner: "d-a", Epoch: 1},
		{Job: "j1", Type: EventAttempt, Owner: "d-a", Epoch: 1, Attempt: 1},
		{Job: "j1", Type: EventRetry, Owner: "d-a", Epoch: 1, Attempt: 1, Cause: "io timeout"},
		{Job: "j1", Type: EventProgress, Progress: &JobProgress{CandidatesDone: 7, PassesDone: 1}},
		{Job: "j1", Type: EventFinished, State: StateDone, Attempt: 2},
	}
	for _, ev := range events {
		mustAppend(t, jr, ev)
	}
	f, err := os.Open(sp.journalPath("j1"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ParseJournal(f)
	if err != nil {
		t.Fatalf("ParseJournal: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("got %d events, want %d", len(got), len(events))
	}
	for i, ev := range got {
		if ev.Seq != int64(i+1) {
			t.Errorf("event %d: seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Schema != JournalSchema {
			t.Errorf("event %d: schema %q", i, ev.Schema)
		}
		if ev.Type != events[i].Type {
			t.Errorf("event %d: type %q, want %q", i, ev.Type, events[i].Type)
		}
		if ev.Time.IsZero() {
			t.Errorf("event %d: unstamped time", i)
		}
	}
	if got[3].Cause != "io timeout" {
		t.Errorf("retry cause %q", got[3].Cause)
	}
	if got[4].Progress == nil || got[4].Progress.CandidatesDone != 7 {
		t.Errorf("progress not round-tripped: %+v", got[4].Progress)
	}
	if got[5].State != StateDone || !got[5].Terminal() {
		t.Errorf("finished event: state %q terminal %v", got[5].State, got[5].Terminal())
	}
}

func TestJournalTornTailThenRepair(t *testing.T) {
	sp := testJournalSpool(t, nil)
	jr := sp.openJournal("j1", 0)
	mustAppend(t, jr, JobEvent{Job: "j1", Type: EventAdmitted})
	mustAppend(t, jr, JobEvent{Job: "j1", Type: EventQueued})
	mustAppend(t, jr, JobEvent{Job: "j1", Type: EventAttempt})

	// Tear the final line mid-frame, as a crash mid-append would.
	path := sp.journalPath("j1")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	lines, complete, serr := scanJournal(raw[:len(raw)-10])
	if !errors.Is(serr, ErrJournalTorn) {
		t.Fatalf("scan of torn file: err = %v, want ErrJournalTorn", serr)
	}
	if len(lines) != 2 {
		t.Fatalf("torn file yields %d events, want the 2 intact ones", len(lines))
	}
	if complete >= int64(len(raw)-10) {
		t.Fatalf("complete offset %d includes the torn tail", complete)
	}

	// A new appender (a restarted daemon) must repair the tail: its
	// first append starts with a newline that turns the torn frame into
	// one skippable corrupt line.
	jr2 := sp.openJournal("j1", 0)
	if !jr2.needRepair {
		t.Fatal("reopened journal did not detect the torn tail")
	}
	if jr2.nextSeq != 3 {
		t.Fatalf("reopened nextSeq = %d, want 3 (two decodable events)", jr2.nextSeq)
	}
	mustAppend(t, jr2, JobEvent{Job: "j1", Type: EventFinished, State: StateDone})

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, perr := ParseJournal(f)
	if !errors.Is(perr, ErrJournalCorrupt) {
		t.Fatalf("post-repair parse err = %v, want ErrJournalCorrupt for the dead frame", perr)
	}
	types := make([]string, len(got))
	for i, ev := range got {
		types[i] = ev.Type
	}
	want := []string{EventAdmitted, EventQueued, EventFinished}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("post-repair events %v, want %v", types, want)
	}
	if got[2].Seq != 3 {
		t.Fatalf("post-repair finished seq = %d, want 3", got[2].Seq)
	}
}

func TestJournalCorruptMidLine(t *testing.T) {
	sp := testJournalSpool(t, nil)
	jr := sp.openJournal("j1", 0)
	mustAppend(t, jr, JobEvent{Job: "j1", Type: EventAdmitted})
	mustAppend(t, jr, JobEvent{Job: "j1", Type: EventQueued})
	mustAppend(t, jr, JobEvent{Job: "j1", Type: EventFinished, State: StateDone})

	path := sp.journalPath("j1")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the second line's event body.
	first := bytes.IndexByte(raw, '\n')
	mut := append([]byte(nil), raw...)
	mut[first+20] ^= 0x01

	lines, _, serr := scanJournal(mut)
	if !errors.Is(serr, ErrJournalCorrupt) {
		t.Fatalf("scan err = %v, want ErrJournalCorrupt", serr)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d events around the corrupt line, want 2", len(lines))
	}
	if lines[0].Ev.Type != EventAdmitted || lines[1].Ev.Type != EventFinished {
		t.Fatalf("wrong survivors: %s, %s", lines[0].Ev.Type, lines[1].Ev.Type)
	}
}

func TestJournalRetentionCapDropsOnlyProgress(t *testing.T) {
	sp := testJournalSpool(t, nil)
	jr := sp.openJournal("j1", 400) // tiny cap: a few frames
	mustAppend(t, jr, JobEvent{Job: "j1", Type: EventAdmitted})
	mustAppend(t, jr, JobEvent{Job: "j1", Type: EventAttempt, Attempt: 1})

	var dropped int
	for i := 0; i < 50; i++ {
		err := jr.append(&JobEvent{Job: "j1", Type: EventProgress,
			Progress: &JobProgress{CandidatesDone: int64(i)}})
		if errors.Is(err, errJournalFull) {
			dropped++
		} else if err != nil {
			t.Fatalf("progress append %d: %v", i, err)
		}
	}
	if dropped == 0 {
		t.Fatal("cap never dropped a progress event")
	}
	// Lifecycle events must still land past the cap.
	mustAppend(t, jr, JobEvent{Job: "j1", Type: EventFinished, State: StateDone})

	f, err := os.Open(sp.journalPath("j1"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, perr := ParseJournal(f)
	if perr != nil {
		t.Fatalf("parse: %v", perr)
	}
	if got[len(got)-1].Type != EventFinished {
		t.Fatalf("last event %s, want finished past the cap", got[len(got)-1].Type)
	}
}

func TestJournalUnknownSchemaSkipped(t *testing.T) {
	sp := testJournalSpool(t, nil)
	jr := sp.openJournal("j1", 0)
	mustAppend(t, jr, JobEvent{Job: "j1", Type: EventAdmitted})

	// Hand-craft a valid frame of a future schema version and splice it
	// in; readers of v1 must skip it without error.
	body, err := json.Marshal(JobEvent{Schema: "sxnm/events/v9", Seq: 99, Job: "j1",
		Type: "hologram", Time: time.Unix(0, 0).UTC()})
	if err != nil {
		t.Fatal(err)
	}
	line := []byte(fmt.Sprintf("{\"e\":%s,\"crc\":\"%08x\"}\n", body, crc32.ChecksumIEEE(body)))
	path := sp.journalPath("j1")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(line); err != nil {
		t.Fatal(err)
	}
	f.Close()

	mustAppend(t, jr, JobEvent{Job: "j1", Type: EventFinished, State: StateDone})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines, _, serr := scanJournal(raw)
	if serr != nil {
		t.Fatalf("scan err = %v, want clean skip of the future frame", serr)
	}
	if len(lines) != 2 || lines[0].Ev.Type != EventAdmitted || lines[1].Ev.Type != EventFinished {
		t.Fatalf("unexpected surviving events: %+v", lines)
	}
}

func TestJournalAppendKilledAtEveryStep(t *testing.T) {
	// Learn the step budget of the workload: three appends.
	appendAll := func(jr *journal) []error {
		var errs []error
		for _, typ := range []string{EventAdmitted, EventAttempt, EventFinished} {
			ev := JobEvent{Job: "j1", Type: typ}
			errs = append(errs, jr.append(&ev))
		}
		return errs
	}
	counter := faultfs.New(checkpoint.OSFS())
	sp := testJournalSpool(t, counter)
	for _, err := range appendAll(sp.openJournal("j1", 0)) {
		if err != nil {
			t.Fatalf("uninjected append failed: %v", err)
		}
	}
	steps := counter.Steps()
	if steps < 12 { // 3 appends × (open + write + sync + close)
		t.Fatalf("suspiciously few steps (%d); appends are not going through the FS seam", steps)
	}

	for _, torn := range []bool{false, true} {
		for n := 1; n <= steps; n++ {
			fsys := faultfs.New(checkpoint.OSFS())
			sp, err := newSpool(t.TempDir(), fsys)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.MkdirAll(sp.jobDir("j1"), 0o755); err != nil {
				t.Fatal(err)
			}
			fsys.CrashAt(n, torn)
			var landed []string
			for i, err := range appendAll(sp.openJournal("j1", 0)) {
				if err == nil {
					landed = append(landed, []string{EventAdmitted, EventAttempt, EventFinished}[i])
				}
			}
			if !fsys.Crashed() {
				t.Fatalf("crash point %d (torn=%v) never fired in %d steps", n, torn, steps)
			}

			// Whatever the crash left behind must scan without panic into
			// either a clean prefix or a typed torn/corrupt error.
			raw, rerr := os.ReadFile(sp.journalPath("j1"))
			if rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
				t.Fatalf("crash at %d (torn=%v): read: %v", n, torn, rerr)
			}
			lines, complete, serr := scanJournal(raw)
			if serr != nil && !errors.Is(serr, ErrJournalTorn) && !errors.Is(serr, ErrJournalCorrupt) {
				t.Fatalf("crash at %d (torn=%v): untyped scan error %v", n, torn, serr)
			}
			if complete > int64(len(raw)) {
				t.Fatalf("crash at %d (torn=%v): complete offset %d > file size %d", n, torn, complete, len(raw))
			}
			// Every append the crashed generation saw succeed must be
			// readable: a synced frame survives the crash.
			if len(lines) < len(landed) {
				t.Fatalf("crash at %d (torn=%v): %d acknowledged appends but only %d readable",
					n, torn, len(landed), len(lines))
			}

			// Generation 2: a fresh daemon (healthy FS) over the same
			// spool reopens, repairs, and completes the timeline.
			sp2, err := newSpool(sp.root, nil)
			if err != nil {
				t.Fatal(err)
			}
			jr2 := sp2.openJournal("j1", 0)
			ev := JobEvent{Job: "j1", Type: EventFinished, State: StateDone}
			if err := jr2.append(&ev); err != nil {
				t.Fatalf("crash at %d (torn=%v): post-crash append: %v", n, torn, err)
			}
			raw, err = os.ReadFile(sp.journalPath("j1"))
			if err != nil {
				t.Fatal(err)
			}
			lines, _, serr = scanJournal(raw)
			if serr != nil && !errors.Is(serr, ErrJournalCorrupt) && !errors.Is(serr, ErrJournalTorn) {
				t.Fatalf("crash at %d (torn=%v): post-repair untyped error %v", n, torn, serr)
			}
			if len(lines) == 0 || lines[len(lines)-1].Ev.Type != EventFinished {
				t.Fatalf("crash at %d (torn=%v): post-repair tail is not the new finished event", n, torn)
			}
			for i := 1; i < len(lines); i++ {
				if lines[i].Ev.Seq <= lines[i-1].Ev.Seq {
					t.Fatalf("crash at %d (torn=%v): seqs not increasing: %d then %d",
						n, torn, lines[i-1].Ev.Seq, lines[i].Ev.Seq)
				}
			}
		}
	}
}

func TestJournalNilAndDisabledSafe(t *testing.T) {
	var jr *journal
	ev := JobEvent{Job: "x", Type: EventAdmitted}
	if err := jr.append(&ev); err != nil {
		t.Fatalf("nil journal append: %v", err)
	}
	var s Server
	s.journalAppend(nil, JobEvent{Type: EventAdmitted})
	s.journalAppend(&job{id: "x"}, JobEvent{Type: EventAdmitted}) // j.jr nil
}

func TestReadJournalLinesFromOffsets(t *testing.T) {
	sp := testJournalSpool(t, nil)
	jr := sp.openJournal("j1", 0)

	// Missing journal: no lines, offset unchanged, no error.
	lines, off, err := sp.readJournalLinesFrom("j1", 0)
	if err != nil || lines != nil || off != 0 {
		t.Fatalf("missing journal: lines=%v off=%d err=%v", lines, off, err)
	}

	mustAppend(t, jr, JobEvent{Job: "j1", Type: EventAdmitted})
	mustAppend(t, jr, JobEvent{Job: "j1", Type: EventQueued})
	lines, off, err = sp.readJournalLinesFrom("j1", 0)
	if err != nil || len(lines) != 2 {
		t.Fatalf("first read: %d lines, err %v", len(lines), err)
	}

	// Incremental read from the returned offset sees only new events.
	mustAppend(t, jr, JobEvent{Job: "j1", Type: EventFinished, State: StateDone})
	lines, off2, err := sp.readJournalLinesFrom("j1", off)
	if err != nil || len(lines) != 1 || lines[0].Ev.Type != EventFinished {
		t.Fatalf("incremental read: %d lines (err %v)", len(lines), err)
	}
	if off2 <= off {
		t.Fatalf("offset did not advance: %d then %d", off, off2)
	}
	// Reading again from the end is empty and stable.
	lines, off3, err := sp.readJournalLinesFrom("j1", off2)
	if err != nil || len(lines) != 0 || off3 != off2 {
		t.Fatalf("read at end: lines=%d off=%d err=%v", len(lines), off3, err)
	}
}

func FuzzScanJournal(f *testing.F) {
	sp, err := newSpool(f.TempDir(), nil)
	if err != nil {
		f.Fatal(err)
	}
	if err := os.MkdirAll(sp.jobDir("seed"), 0o755); err != nil {
		f.Fatal(err)
	}
	jr := sp.openJournal("seed", 0)
	for _, typ := range []string{EventAdmitted, EventProgress, EventFinished} {
		ev := JobEvent{Job: "seed", Type: typ, Time: time.Unix(0, 0).UTC()}
		if err := jr.append(&ev); err != nil {
			f.Fatal(err)
		}
	}
	seed, err := os.ReadFile(sp.journalPath("seed"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-7])
	f.Add([]byte(`{"e":{},"crc":"00000000"}` + "\n"))
	f.Add([]byte("\n\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		lines, complete, err := scanJournal(data)
		if complete < 0 || complete > int64(len(data)) {
			t.Fatalf("complete offset %d out of range [0,%d]", complete, len(data))
		}
		if err != nil && !errors.Is(err, ErrJournalTorn) && !errors.Is(err, ErrJournalCorrupt) {
			t.Fatalf("untyped error: %v", err)
		}
		for i, l := range lines {
			if l.Ev.Seq < 1 || l.Ev.Type == "" || l.Ev.Schema != JournalSchema {
				t.Fatalf("line %d violates decode invariants: %+v", i, l.Ev)
			}
		}
		// The complete prefix must rescan to the same events.
		again, c2, _ := scanJournal(data[:complete])
		if len(again) != len(lines) || c2 != complete {
			t.Fatalf("prefix rescan diverged: %d/%d events, %d/%d offset",
				len(again), len(lines), c2, complete)
		}
	})
}
