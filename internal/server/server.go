// Package server is the sxnmd daemon core: a bounded job queue with
// admission control in front of a worker pool running the SXNM engine,
// built so that losing the process never loses work. Every admitted
// job is spooled to disk before it is acknowledged; running jobs
// checkpoint through the engine's crash-safe checkpoint machinery; a
// drain (SIGTERM) interrupts in-flight jobs after their next
// checkpoint and leaves both them and the queue on disk, where the
// next daemon generation picks them up and finishes byte-identically.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"time"

	sxnm "repro"
)

// Config tunes a Server. The zero value is usable except for
// SpoolDir, which is required.
type Config struct {
	// SpoolDir is the daemon's durable root; see the spool layout in
	// spool.go. Required.
	SpoolDir string

	// QueueCap bounds the number of queued-but-not-running jobs; a
	// submission beyond it is rejected 429 with Retry-After. Default 64.
	QueueCap int
	// Workers is the number of concurrent job executors. Default 2.
	Workers int
	// PerTenantJobs caps one tenant's queued+running jobs. Default 4.
	PerTenantJobs int
	// MaxBodyBytes bounds the POST /v1/jobs body. Default 8 MiB.
	MaxBodyBytes int64

	// DefaultLimits apply to jobs that do not set their own; MaxLimits
	// is the per-job budget ceiling enforced at admission (zero fields
	// are unbounded dimensions).
	DefaultLimits sxnm.Limits
	MaxLimits     sxnm.Limits

	// MaxAttempts bounds how often one job is tried before a transient
	// fault becomes permanent. Default 3. Typed corrupt/config faults
	// and budget breaches never retry.
	MaxAttempts int
	// RetryBaseDelay seeds the exponential backoff between attempts
	// (doubled per retry, ±50% jitter, capped at RetryMaxDelay).
	// Defaults 100ms / 5s.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration

	// Engine carries the base run options applied to every job
	// (Parallel, PairWorkers, SimCache, SpillThresholdRows, ...).
	// Observer, SpillDir, and SimCacheFor are per-job and overwritten.
	Engine sxnm.Options

	// CacheEntries / CacheMaxDescSets bound the shared similarity cache
	// pool (see cachePool). Zero means defaults.
	CacheEntries     int
	CacheMaxDescSets int64

	// CheckpointFS, when set, routes all checkpoint I/O through it —
	// the fault-injection seam of the kill harness. Nil means the real
	// filesystem.
	CheckpointFS sxnm.CheckpointFS

	// Runner, when set, replaces the engine invocation itself (tests
	// inject faults and probes here). The default runs
	// det.RunCheckpointedFSContext over the job's spooled checkpoint
	// directory.
	Runner func(ctx context.Context, det *sxnm.Detector, doc *sxnm.Document, fsys sxnm.CheckpointFS, ckptDir string) (*sxnm.Result, error)

	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.QueueCap <= 0 {
		out.QueueCap = 64
	}
	if out.Workers <= 0 {
		out.Workers = 2
	}
	if out.PerTenantJobs <= 0 {
		out.PerTenantJobs = 4
	}
	if out.MaxBodyBytes <= 0 {
		out.MaxBodyBytes = 8 << 20
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 3
	}
	if out.RetryBaseDelay <= 0 {
		out.RetryBaseDelay = 100 * time.Millisecond
	}
	if out.RetryMaxDelay <= 0 {
		out.RetryMaxDelay = 5 * time.Second
	}
	if out.CheckpointFS == nil {
		out.CheckpointFS = sxnm.OSCheckpointFS()
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// Server is one daemon generation: it recovers the spool left by the
// previous generation at construction, serves the job API, and on
// Drain parks all unfinished work back into the spool.
type Server struct {
	cfg   Config
	spool *spool
	pool  *cachePool
	Met   Metrics
	agg   engineAgg

	drainCtx    context.Context
	cancelDrain context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	tenants  map[string]int // queued+running jobs per tenant
	queue    chan *job
	draining bool

	wg sync.WaitGroup
}

// New builds a Server over cfg.SpoolDir, re-enqueues every unfinished
// spooled job (oldest first), reloads finished outcomes for
// queryability, and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.SpoolDir == "" {
		return nil, fmt.Errorf("server: Config.SpoolDir is required")
	}
	c := cfg.withDefaults()
	sp, err := newSpool(c.SpoolDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     c,
		spool:   sp,
		pool:    newCachePool(c.CacheEntries, c.Engine.SimCacheSize, c.CacheMaxDescSets),
		jobs:    make(map[string]*job),
		tenants: make(map[string]int),
	}
	s.drainCtx, s.cancelDrain = context.WithCancel(context.Background())

	recovered, err := s.recover()
	if err != nil {
		return nil, err
	}
	// The queue channel must hold every recovered job plus a full
	// admission window; admission enforces QueueCap itself, so the
	// extra channel capacity is slack, not policy.
	s.queue = make(chan *job, c.QueueCap+len(recovered))
	for _, j := range recovered {
		s.enqueueLocked(j)
	}

	for i := 0; i < c.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s, nil
}

// recover replays the spool: finished jobs come back as queryable
// terminal records, unfinished ones are revalidated and readied for
// the queue (returned oldest first). A previously admitted job whose
// request no longer validates is finished as failed rather than
// crash-looping the daemon.
func (s *Server) recover() ([]*job, error) {
	recs, err := s.spool.scan()
	if err != nil {
		return nil, err
	}
	var pending []*job
	for _, rec := range recs {
		out, err := s.spool.loadOutcome(rec.ID)
		if err != nil {
			s.cfg.Logf("spool: job %s: unreadable outcome: %v", rec.ID, err)
			continue
		}
		j := s.newJob(rec.ID, rec.Request, rec.Submitted)
		if out != nil {
			j.state = out.State
			j.attempts = out.Attempts
			j.finished = out.FinishedAt
			j.result = out
			if out.Error != nil {
				j.errCode, j.errMsg = out.Error.Code, out.Error.Message
			}
			if out.Stats != nil {
				j.lastSnap = *out.Stats
			}
			s.jobs[j.id] = j
			continue
		}
		if apiErr := rec.Request.validate(); apiErr == nil {
			_, apiErr = rec.Request.CompileConfig()
			if apiErr == nil {
				j.limits, apiErr = effectiveLimits(rec.Request.Limits, s.cfg.DefaultLimits, s.cfg.MaxLimits)
			}
			if apiErr != nil {
				s.finishJob(j, StateFailed, apiErr, nil)
				continue
			}
		} else {
			s.finishJob(j, StateFailed, apiErr, nil)
			continue
		}
		j.resumed = true
		pending = append(pending, j)
	}
	if n := len(pending); n > 0 {
		s.cfg.Logf("spool: resuming %d unfinished job(s)", n)
	}
	s.Met.JobsResumed.Add(int64(len(pending)))
	return pending, nil
}

func (s *Server) newJob(id string, req *JobRequest, submitted time.Time) *job {
	col := sxnm.NewCollector()
	return &job{
		id:        id,
		req:       req,
		submitted: submitted,
		ob:        sxnm.NewObserver(col),
		col:       col,
		state:     StateQueued,
	}
}

// Submit admits one validated request: config compiled, limits checked
// against the budget ceiling, tenant and queue capacity enforced, the
// job spooled durably, then enqueued. Every rejection is a typed
// *apiError; Retry-After accompanies the capacity ones.
func (s *Server) Submit(req *JobRequest) (*job, *apiError) {
	if _, apiErr := req.CompileConfig(); apiErr != nil {
		return nil, apiErr
	}
	limits, apiErr := effectiveLimits(req.Limits, s.cfg.DefaultLimits, s.cfg.MaxLimits)
	if apiErr != nil {
		return nil, apiErr
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, &apiError{Status: http.StatusServiceUnavailable, Code: "draining",
			Message: "daemon is draining; submit to its successor", RetryAfter: 10 * time.Second}
	}
	if int(s.Met.QueueDepth.Load()) >= s.cfg.QueueCap {
		s.Met.RejectsFull.Add(1)
		s.mu.Unlock()
		return nil, &apiError{Status: http.StatusTooManyRequests, Code: "queue-full",
			Message: fmt.Sprintf("job queue is at capacity (%d)", s.cfg.QueueCap), RetryAfter: 5 * time.Second}
	}
	if s.tenants[req.Tenant] >= s.cfg.PerTenantJobs {
		s.Met.RejectsTenant.Add(1)
		s.mu.Unlock()
		return nil, &apiError{Status: http.StatusTooManyRequests, Code: "tenant-busy",
			Message: fmt.Sprintf("tenant %q already has %d active job(s)", req.Tenant, s.cfg.PerTenantJobs),
			RetryAfter: 5 * time.Second}
	}

	j := s.newJob(newJobID(), req, time.Now().UTC())
	j.limits = limits
	if err := s.spool.admit(j); err != nil {
		s.mu.Unlock()
		s.cfg.Logf("spool: admitting %s: %v", j.id, err)
		return nil, &apiError{Status: http.StatusInternalServerError, Code: "spool-error",
			Message: "persisting the job failed; nothing was admitted"}
	}
	s.enqueueLocked(j)
	s.Met.JobsAccepted.Add(1)
	s.mu.Unlock()
	return j, nil
}

// enqueueLocked registers j and places it on the queue. Callers hold
// s.mu, except New, which runs before any concurrency exists.
func (s *Server) enqueueLocked(j *job) {
	s.jobs[j.id] = j
	s.tenants[j.req.Tenant]++
	j.counted = true
	s.Met.QueueDepth.Add(1)
	s.queue <- j
}

// Job returns the in-memory record for id, or nil.
func (s *Server) Job(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Cancel flags the job; queued jobs finish as canceled immediately,
// running ones are interrupted at their next cooperative poll and
// finish as canceled with partial stats. Returns the job, whether the
// call changed anything, or nil if the id is unknown.
func (s *Server) Cancel(id string) (*job, bool) {
	j := s.Job(id)
	if j == nil {
		return nil, false
	}
	st := j.requestCancel()
	if st.Terminal() {
		return j, false
	}
	if st == StateQueued {
		// Finalize now; the worker that eventually pulls the job from
		// the channel skips terminal jobs. The spool keeps the record
		// with a canceled outcome.
		s.finishJob(j, StateCanceled, &apiError{Code: "canceled", Message: "canceled before running"}, nil)
	}
	s.Met.JobsCanceled.Add(1)
	return j, true
}

// Draining reports whether Drain has begun (readiness turns false).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully stops this generation: admission closes, running
// jobs are interrupted (their progress checkpoints durably and they
// return to queued on disk), queued jobs simply stay spooled, and the
// worker pool exits. After Drain returns, the spool is a complete
// to-do list for the next generation. ctx bounds the wait.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.Met.Draining.Store(1)
	s.mu.Unlock()

	s.cancelDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	}
}

// aggregateSnapshot sums the engine counters of finished jobs and all
// currently live observers.
func (s *Server) aggregateSnapshot() sxnm.MetricsSnapshot {
	s.mu.Lock()
	live := make([]sxnm.MetricsSnapshot, 0, len(s.jobs))
	for _, j := range s.jobs {
		j.mu.Lock()
		running := j.state == StateRunning
		j.mu.Unlock()
		if running {
			live = append(live, j.ob.Metrics().Snapshot())
		}
	}
	s.mu.Unlock()
	return s.agg.total(live...)
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to a
		// time-derived id rather than refusing service.
		return fmt.Sprintf("j-t%x", time.Now().UnixNano())
	}
	return "j-" + hex.EncodeToString(b[:])
}
