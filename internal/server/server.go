// Package server is the sxnmd daemon core: a bounded job queue with
// admission control in front of a worker pool running the SXNM engine,
// built so that losing the process never loses work. Every admitted
// job is spooled to disk before it is acknowledged; running jobs
// checkpoint through the engine's crash-safe checkpoint machinery; a
// drain (SIGTERM) interrupts in-flight jobs after their next
// checkpoint and leaves both them and the queue on disk.
//
// The spool is a SHARED substrate: any number of daemons may serve the
// same directory. Per-job lease files with fencing epochs (lease.go)
// arbitrate ownership; each daemon heartbeats the leases it holds and
// runs a reaper that takes over the queued and in-flight jobs of
// owners that stopped heartbeating, resuming them from their durable
// checkpoints. The reaper doubles as the spool's lifecycle manager:
// TTL garbage collection of terminal jobs, quarantine of corrupt
// entries, and the disk-pressure probe that gates admission.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	sxnm "repro"
	"repro/internal/obs"
)

// Config tunes a Server. The zero value is usable except for
// SpoolDir, which is required.
type Config struct {
	// SpoolDir is the daemon's durable root; see the spool layout in
	// spool.go. Required. Several daemons may share one SpoolDir.
	SpoolDir string

	// OwnerID names this daemon in lease files. It must be unique among
	// daemons sharing a spool; empty derives host-pid-random, which is.
	OwnerID string
	// LeaseTTL is how long a lease outlives its last heartbeat; a
	// silent owner's jobs are taken over after it. Default 15s.
	LeaseTTL time.Duration
	// HeartbeatInterval is the lease renewal cadence. Default LeaseTTL/3.
	HeartbeatInterval time.Duration
	// ReapInterval is the spool sweep cadence (takeovers, GC,
	// quarantine, disk probe). Default LeaseTTL/2.
	ReapInterval time.Duration
	// GCTTL removes a terminal job's spool directory once its outcome
	// is older than this; its id then answers 404. 0 disables GC.
	GCTTL time.Duration

	// QueueCap bounds the number of queued-but-not-running jobs; a
	// submission beyond it is rejected 429 with Retry-After. Default 64.
	QueueCap int
	// Workers is the number of concurrent job executors. Default 2.
	Workers int
	// PerTenantJobs caps one tenant's queued+running jobs. Default 4.
	PerTenantJobs int
	// TenantRPS adds a per-tenant token-bucket rate limit on
	// submissions (tokens/second); 0 disables it. TenantBurst is the
	// bucket size (default max(1, ceil(TenantRPS))).
	TenantRPS   float64
	TenantBurst int
	// MaxBodyBytes bounds the POST /v1/jobs body. Default 8 MiB.
	MaxBodyBytes int64
	// MinFreeBytes rejects admissions with 507 while the spool
	// filesystem has less free space than this. 0 disables the
	// threshold; ENOSPC during a spool write still trips the gate.
	MinFreeBytes int64
	// FreeBytes probes free space under a directory; nil uses the
	// platform statfs (tests inject fakes).
	FreeBytes func(dir string) (uint64, error)

	// DefaultLimits apply to jobs that do not set their own; MaxLimits
	// is the per-job budget ceiling enforced at admission (zero fields
	// are unbounded dimensions).
	DefaultLimits sxnm.Limits
	MaxLimits     sxnm.Limits

	// MaxAttempts bounds how often one job is tried before a transient
	// fault becomes permanent. Default 3. Typed corrupt/config faults
	// and budget breaches never retry.
	MaxAttempts int
	// RetryBaseDelay seeds the exponential backoff between attempts
	// (doubled per retry, ±50% jitter, capped at RetryMaxDelay).
	// Defaults 100ms / 5s.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration

	// Engine carries the base run options applied to every job
	// (Parallel, PairWorkers, SimCache, SpillThresholdRows, ...).
	// Observer, SpillDir, and SimCacheFor are per-job and overwritten.
	Engine sxnm.Options

	// CacheEntries / CacheMaxDescSets bound the shared similarity cache
	// pool (see cachePool). Zero means defaults.
	CacheEntries     int
	CacheMaxDescSets int64

	// CheckpointFS, when set, routes all checkpoint AND spool I/O
	// through it — the fault-injection seam of the kill harnesses.
	// Nil means the real filesystem.
	CheckpointFS sxnm.CheckpointFS

	// Runner, when set, replaces the engine invocation itself (tests
	// inject faults and probes here). The default runs
	// det.RunCheckpointedFSContext over the job's spooled checkpoint
	// directory.
	Runner func(ctx context.Context, det *sxnm.Detector, doc *sxnm.Document, fsys sxnm.CheckpointFS, ckptDir string) (*sxnm.Result, error)

	// DisableJournal turns off the per-job event journal
	// (journal.jsonl; see journal.go). On by default — the journal is
	// how a job's cross-daemon timeline stays reconstructible.
	DisableJournal bool
	// JournalMaxBytes soft-caps one job's journal: past it,
	// high-rate checkpoint-progress events are dropped (and counted)
	// while lifecycle events still append. 0 means 1 MiB; negative
	// means unbounded.
	JournalMaxBytes int64
	// EventPollInterval is the tail-poll cadence of the
	// GET /v1/jobs/{id}/events stream. Default 250ms.
	EventPollInterval time.Duration

	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.OwnerID == "" {
		out.OwnerID = defaultOwnerID()
	}
	if out.LeaseTTL <= 0 {
		out.LeaseTTL = 15 * time.Second
	}
	if out.HeartbeatInterval <= 0 {
		out.HeartbeatInterval = out.LeaseTTL / 3
	}
	if out.HeartbeatInterval < time.Millisecond {
		out.HeartbeatInterval = time.Millisecond
	}
	if out.ReapInterval <= 0 {
		out.ReapInterval = out.LeaseTTL / 2
	}
	if out.ReapInterval < time.Millisecond {
		out.ReapInterval = time.Millisecond
	}
	if out.QueueCap <= 0 {
		out.QueueCap = 64
	}
	if out.Workers <= 0 {
		out.Workers = 2
	}
	if out.PerTenantJobs <= 0 {
		out.PerTenantJobs = 4
	}
	if out.MaxBodyBytes <= 0 {
		out.MaxBodyBytes = 8 << 20
	}
	if out.FreeBytes == nil {
		out.FreeBytes = osFreeBytes
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 3
	}
	if out.RetryBaseDelay <= 0 {
		out.RetryBaseDelay = 100 * time.Millisecond
	}
	if out.RetryMaxDelay <= 0 {
		out.RetryMaxDelay = 5 * time.Second
	}
	if out.CheckpointFS == nil {
		out.CheckpointFS = sxnm.OSCheckpointFS()
	}
	if out.JournalMaxBytes == 0 {
		out.JournalMaxBytes = 1 << 20
	}
	if out.EventPollInterval <= 0 {
		out.EventPollInterval = 250 * time.Millisecond
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

func defaultOwnerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "sxnmd"
	}
	return fmt.Sprintf("%s-%d-%s", host, os.Getpid(), randSuffix()[:4])
}

// Server is one daemon generation: it claims what it can from the
// spool at construction, serves the job API, heartbeats its leases,
// reaps dead owners' work, and on Drain releases every lease it holds
// with all unfinished work parked back in the spool.
type Server struct {
	cfg     Config
	owner   string
	spool   *spool
	pool    *cachePool
	limiter *rateLimiter
	Met     Metrics
	Hist    ServerHistograms
	phases  *obs.PhaseHistograms
	agg     engineAgg

	diskLow atomic.Bool

	drainCtx    context.Context
	cancelDrain context.CancelFunc
	bgCtx       context.Context
	cancelBg    context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	tenants  map[string]int // queued+running jobs per tenant
	queue    chan *job
	draining bool

	wg   sync.WaitGroup
	bgWg sync.WaitGroup
}

// New builds a Server over cfg.SpoolDir, runs one synchronous spool
// sweep (claiming unowned unfinished jobs, reloading finished
// outcomes for queryability, quarantining corrupt entries), and
// starts the worker pool plus the heartbeat and reaper loops.
func New(cfg Config) (*Server, error) {
	if cfg.SpoolDir == "" {
		return nil, fmt.Errorf("server: Config.SpoolDir is required")
	}
	c := cfg.withDefaults()
	sp, err := newSpool(c.SpoolDir, c.CheckpointFS)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     c,
		owner:   c.OwnerID,
		spool:   sp,
		pool:    newCachePool(c.CacheEntries, c.Engine.SimCacheSize, c.CacheMaxDescSets),
		limiter: newRateLimiter(c.TenantRPS, c.TenantBurst, nil),
		phases:  obs.NewPhaseHistograms(),
		jobs:    make(map[string]*job),
		tenants: make(map[string]int),
		// Admission bounds the queue by the QueueDepth gauge, not the
		// channel; the extra capacity is slack for adopted jobs. A sweep
		// that finds the channel full releases the lease and retries
		// later, so adoption self-throttles to worker drain.
		queue: make(chan *job, c.QueueCap+1024),
	}
	s.drainCtx, s.cancelDrain = context.WithCancel(context.Background())
	s.bgCtx, s.cancelBg = context.WithCancel(context.Background())

	// Synchronous first pass: workers not started, no concurrency yet.
	// The disk check runs before any admission so a daemon started on a
	// full disk rejects from its very first request instead of accepting
	// jobs until the first reap cycle.
	s.diskPressureCheck()
	s.sweepSpool()

	for i := 0; i < c.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	s.bgWg.Add(2)
	go s.heartbeatLoop()
	go s.reaperLoop()
	return s, nil
}

// sweepSpool is one pass of the spool lifecycle: quarantine corrupt
// entries, GC expired terminal ones, register other daemons' finished
// jobs for queryability, and adopt unfinished jobs whose lease is
// absent, released, expired, corrupt, or a ghost of our own owner id.
func (s *Server) sweepSpool() {
	now := time.Now().UTC()
	entries, err := s.spool.scan()
	if err != nil {
		s.cfg.Logf("spool: sweep: %v", err)
		return
	}
	for _, ent := range entries {
		if s.activeInMemory(ent.id) {
			// A job this daemon is actively serving: only tidy lease
			// debris; never quarantine or reclaim under our own feet.
			s.spool.sweepLeaseDebris(ent.id, now, s.cfg.LeaseTTL)
			continue
		}
		if ent.rec == nil {
			s.quarantineEntry(ent.id, fmt.Sprintf("corrupt spool entry: %v", ent.err), now)
			continue
		}
		out, oerr := s.spool.loadOutcome(ent.id)
		if oerr != nil {
			s.quarantineEntry(ent.id, fmt.Sprintf("corrupt outcome: %v", oerr), now)
			continue
		}
		if out != nil {
			if s.cfg.GCTTL > 0 && now.Sub(out.FinishedAt) > s.cfg.GCTTL {
				s.gcJob(ent.id)
			} else {
				s.registerTerminal(ent.rec, out)
			}
			continue
		}
		s.adoptJob(ent, now)
	}
	s.spool.sweepAdmissionDebris(now, 10*s.cfg.LeaseTTL)
	s.limiter.prune(10 * time.Minute)
}

// activeInMemory reports whether this daemon currently tracks id as a
// non-terminal job it owns.
func (s *Server) activeInMemory(id string) bool {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return !j.state.Terminal()
}

// registerTerminal makes another generation's (or daemon's) finished
// job queryable from its spooled outcome.
func (s *Server) registerTerminal(rec *spooledJob, out *Outcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[rec.ID]; ok {
		return
	}
	j := s.newJob(rec.ID, rec.Request, rec.Submitted)
	j.state = out.State
	j.attempts = out.Attempts
	j.finished = out.FinishedAt
	j.finalized = true
	j.result = out
	if out.Error != nil {
		j.errCode, j.errMsg = out.Error.Code, out.Error.Message
	}
	if out.Stats != nil {
		j.lastSnap = *out.Stats
	}
	s.jobs[rec.ID] = j
}

// adoptJob tries to claim one unfinished spool entry and enqueue it.
func (s *Server) adoptJob(ent spoolEntry, now time.Time) {
	lease, lerr := s.spool.loadLease(ent.id)
	switch {
	case lerr == nil && lease == nil:
		// unleased: claimable
	case lerr != nil && errors.Is(lerr, errLeaseCorrupt):
		// corrupt lease: claimable (treated as expired)
	case lerr != nil:
		s.cfg.Logf("spool: job %s: reading lease: %v", ent.id, lerr)
		return
	case lease.Owner == s.owner, lease.Released, lease.Expired(now, s.cfg.LeaseTTL):
		// our own ghost, a clean hand-off, or a dead owner: claimable
	default:
		return // live lease held by another daemon
	}
	epoch, err := s.spool.takeoverLease(ent.id, s.owner, now, s.cfg.LeaseTTL)
	if errors.Is(err, errLeaseHeld) {
		return // a racing reaper won; rescan next tick
	}
	if err != nil {
		s.cfg.Logf("spool: job %s: lease takeover: %v", ent.id, err)
		return
	}
	if epoch > 1 {
		s.Met.LeaseTakeovers.Add(1)
	} else {
		s.Met.LeasesAcquired.Add(1)
	}

	j := s.newJob(ent.id, ent.rec.Request, ent.rec.Submitted)
	j.epoch = epoch
	j.resumed = true
	s.attachJournal(j)
	// The journal travels with the job directory, so this append lands
	// in the SAME file the previous owner wrote: the takeover is one
	// more entry in one continuous timeline. The fenced event for the
	// displaced owner is written here by the NEW owner — the fenced
	// daemon itself must never touch the spool again, so it cannot
	// record its own demise.
	takeover := JobEvent{Type: EventTakeover, Epoch: epoch}
	if lease != nil {
		takeover.PrevOwner, takeover.PrevEpoch = lease.Owner, lease.Epoch
	}
	s.journalAppend(j, takeover)
	if lease != nil && lease.Owner != s.owner && epoch > lease.Epoch {
		s.journalAppend(j, JobEvent{Type: EventFenced, Owner: lease.Owner, Epoch: lease.Epoch,
			Cause: fmt.Sprintf("lease expired; taken over by %s at epoch %d", s.owner, epoch)})
	}
	apiErr := ent.rec.Request.validate()
	if apiErr == nil {
		_, apiErr = ent.rec.Request.CompileConfig()
	}
	if apiErr == nil {
		j.limits, apiErr = effectiveLimits(ent.rec.Request.Limits, s.cfg.DefaultLimits, s.cfg.MaxLimits)
	}
	if apiErr != nil {
		// A previously admitted job whose request no longer validates is
		// finished as failed rather than crash-looping any daemon.
		s.finishJob(j, StateFailed, apiErr, nil)
		return
	}
	s.mu.Lock()
	ok := !s.draining && s.tryEnqueueLocked(j)
	s.mu.Unlock()
	if !ok {
		// No room this pass (or we are shutting down): hand the lease
		// back so any daemon — including us, later — can claim it.
		s.spool.renewLease(ent.id, s.owner, epoch, now, true)
		return
	}
	s.journalAppend(j, JobEvent{Type: EventQueued})
	s.Met.JobsResumed.Add(1)
	s.cfg.Logf("spool: adopted job %s (epoch %d, submitted %s)", ent.id, epoch, ent.rec.Submitted.Format(time.RFC3339))
}

// quarantineEntry moves a corrupt entry aside; the daemon stays up.
func (s *Server) quarantineEntry(id, reason string, now time.Time) {
	if !s.cfg.DisableJournal {
		// Written BEFORE the rename so the event travels with the
		// quarantined directory — the journal explains why it is there.
		s.appendEvent(s.spool.openJournal(id, s.cfg.JournalMaxBytes),
			JobEvent{Job: id, Type: EventQuarantined, Owner: s.owner, Cause: reason, Time: now})
	}
	if err := s.spool.quarantine(id, reason, now); err != nil {
		s.cfg.Logf("spool: job %s: quarantine failed: %v", id, err)
		return
	}
	s.mu.Lock()
	delete(s.jobs, id)
	s.mu.Unlock()
	s.Met.JobsQuarantined.Add(1)
	s.cfg.Logf("spool: quarantined job %s: %s", id, reason)
}

// gcJob removes an expired terminal job; its id answers 404 afterward.
func (s *Server) gcJob(id string) {
	if err := s.spool.remove(id); err != nil {
		s.cfg.Logf("spool: job %s: gc: %v", id, err)
		return
	}
	s.mu.Lock()
	delete(s.jobs, id)
	s.mu.Unlock()
	s.Met.JobsGCed.Add(1)
	s.cfg.Logf("spool: gc'd terminal job %s", id)
}

// heartbeatLoop renews every lease this daemon holds at
// HeartbeatInterval. A renewal that comes back fenced means a reaper
// legitimately took the job while we were silent: the job is flagged
// and its run context canceled; it will finalize locally without
// touching the spool.
func (s *Server) heartbeatLoop() {
	defer s.bgWg.Done()
	t := time.NewTicker(s.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-s.bgCtx.Done():
			return
		case <-t.C:
			s.renewOwnedLeases()
		}
	}
}

func (s *Server) renewOwnedLeases() {
	now := time.Now().UTC()
	s.mu.Lock()
	owned := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		j.mu.Lock()
		if !j.state.Terminal() && j.epoch > 0 && !j.fenced {
			owned = append(owned, j)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	for _, j := range owned {
		j.mu.Lock()
		epoch := j.epoch
		j.mu.Unlock()
		err := s.spool.renewLease(j.id, s.owner, epoch, now, false)
		switch {
		case errors.Is(err, errLeaseFenced):
			s.fenceJob(j)
		case err != nil:
			// Keep trying: if the disk stays dead the lease expires and
			// another daemon takes the job — exactly the intended failover.
			s.cfg.Logf("job %s: lease renewal: %v", j.id, err)
		}
	}
}

// fenceJob marks a job lost to a takeover and cancels its run. The
// worker finalizes it locally (finishFenced); nothing is written to
// the spool — the new owner's records are the truth now.
func (s *Server) fenceJob(j *job) {
	j.mu.Lock()
	if j.fenced || j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.fenced = true
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	s.cfg.Logf("job %s: lease fenced (epoch superseded); abandoning local attempt", j.id)
}

// reaperLoop periodically sweeps the spool and probes disk pressure.
func (s *Server) reaperLoop() {
	defer s.bgWg.Done()
	t := time.NewTicker(s.cfg.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-s.bgCtx.Done():
			return
		case <-t.C:
			s.diskPressureCheck()
			s.sweepSpool()
		}
	}
}

// diskPressureCheck maintains the admission gate: below MinFreeBytes
// (when configured) admission stays closed; a gate tripped by ENOSPC
// reopens only after a successful durable write probe.
func (s *Server) diskPressureCheck() {
	low := false
	if s.cfg.MinFreeBytes > 0 {
		if free, err := s.cfg.FreeBytes(s.spool.root); err == nil && free < uint64(s.cfg.MinFreeBytes) {
			low = true
		}
	}
	if !low && s.diskLow.Load() {
		if err := s.spool.probeWrite(); err != nil {
			low = true
		}
	}
	s.setDiskLow(low)
}

func (s *Server) setDiskLow(low bool) {
	s.diskLow.Store(low)
	if low {
		s.Met.DiskPressure.Store(1)
	} else {
		s.Met.DiskPressure.Store(0)
	}
}

func isDiskFull(err error) bool { return errors.Is(err, syscall.ENOSPC) }

func diskFullError() *apiError {
	return &apiError{Status: http.StatusInsufficientStorage, Code: "spool-disk-full",
		Message:    "spool filesystem is out of space; retry after the operator frees room",
		RetryAfter: 15 * time.Second}
}

func (s *Server) newJob(id string, req *JobRequest, submitted time.Time) *job {
	col := sxnm.NewCollector()
	j := &job{
		id:        id,
		req:       req,
		submitted: submitted,
		ob:        sxnm.NewObserver(col),
		col:       col,
		state:     StateQueued,
	}
	// Every job's spans also feed the daemon-wide phase histograms,
	// so /metrics exposes engine phase latency across all jobs.
	j.ob.AddSink(s.phases)
	return j
}

// attachJournal binds j to its spool journal (unless journaling is
// off) and routes the engine's checkpoint spans into it.
func (s *Server) attachJournal(j *job) {
	if s.cfg.DisableJournal {
		return
	}
	j.jr = s.spool.openJournal(j.id, s.cfg.JournalMaxBytes)
	j.ob.AddSink(&progressSink{s: s, j: j})
}

// Submit admits one validated request: config compiled, limits checked
// against the budget ceiling, disk pressure and the tenant token
// bucket consulted, tenant and queue capacity enforced, the job
// spooled durably and its lease claimed, then enqueued. Every
// rejection is a typed *apiError; Retry-After accompanies the
// capacity, rate, and disk ones.
func (s *Server) Submit(req *JobRequest) (*job, *apiError) {
	if _, apiErr := req.CompileConfig(); apiErr != nil {
		return nil, apiErr
	}
	limits, apiErr := effectiveLimits(req.Limits, s.cfg.DefaultLimits, s.cfg.MaxLimits)
	if apiErr != nil {
		return nil, apiErr
	}
	if s.diskLow.Load() {
		s.Met.RejectsDisk.Add(1)
		return nil, diskFullError()
	}
	if ok, wait := s.limiter.allow(req.Tenant); !ok {
		s.Met.RejectsRate.Add(1)
		return nil, &apiError{Status: http.StatusTooManyRequests, Code: "tenant-rate-limited",
			Message:    fmt.Sprintf("tenant %q exceeded its %.3g submissions/s budget", req.Tenant, s.cfg.TenantRPS),
			RetryAfter: wait}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, &apiError{Status: http.StatusServiceUnavailable, Code: "draining",
			Message: "daemon is draining; submit to its successor", RetryAfter: 10 * time.Second}
	}
	if int(s.Met.QueueDepth.Load()) >= s.cfg.QueueCap {
		s.Met.RejectsFull.Add(1)
		s.mu.Unlock()
		return nil, &apiError{Status: http.StatusTooManyRequests, Code: "queue-full",
			Message: fmt.Sprintf("job queue is at capacity (%d)", s.cfg.QueueCap), RetryAfter: 5 * time.Second}
	}
	if s.tenants[req.Tenant] >= s.cfg.PerTenantJobs {
		s.Met.RejectsTenant.Add(1)
		s.mu.Unlock()
		return nil, &apiError{Status: http.StatusTooManyRequests, Code: "tenant-busy",
			Message:    fmt.Sprintf("tenant %q already has %d active job(s)", req.Tenant, s.cfg.PerTenantJobs),
			RetryAfter: 5 * time.Second}
	}

	j := s.newJob(newJobID(), req, time.Now().UTC())
	j.limits = limits
	if err := s.spool.admit(j); err != nil {
		s.mu.Unlock()
		return nil, s.admissionWriteFailed(j, err, "spooling")
	}
	if err := s.spool.claimLease(j.id, s.owner, 1, time.Now().UTC()); err != nil {
		// Without a lease another daemon could adopt the job while we
		// also run it; rather than risk a double run, un-admit.
		s.spool.remove(j.id)
		s.mu.Unlock()
		return nil, s.admissionWriteFailed(j, err, "leasing")
	}
	j.epoch = 1
	s.Met.LeasesAcquired.Add(1)
	s.attachJournal(j)
	s.journalAppend(j, JobEvent{Type: EventAdmitted, Time: j.submitted})
	s.enqueueLocked(j)
	s.journalAppend(j, JobEvent{Type: EventQueued})
	s.Met.JobsAccepted.Add(1)
	s.mu.Unlock()
	return j, nil
}

// admissionWriteFailed maps a failed admission-time spool write to the
// right typed rejection, tripping the disk-pressure gate on ENOSPC.
func (s *Server) admissionWriteFailed(j *job, err error, what string) *apiError {
	s.cfg.Logf("spool: %s %s: %v", what, j.id, err)
	if isDiskFull(err) {
		s.setDiskLow(true)
		s.Met.RejectsDisk.Add(1)
		return diskFullError()
	}
	return &apiError{Status: http.StatusInternalServerError, Code: "spool-error",
		Message: "persisting the job failed; nothing was admitted"}
}

// enqueueLocked registers j and places it on the queue. Callers hold
// s.mu. Admission has already bounded QueueDepth below QueueCap, so
// the channel (QueueCap + slack) always has room here.
func (s *Server) enqueueLocked(j *job) {
	if !s.tryEnqueueLocked(j) {
		// Cannot happen while admission respects QueueCap; survive a
		// future accounting bug as a typed failure, not a deadlock.
		s.cfg.Logf("job %s: queue channel full at admission; failing", j.id)
		go s.finishJob(j, StateFailed, &apiError{Code: "queue-overflow",
			Message: "internal queue accounting overflow"}, nil)
		return
	}
}

func (s *Server) tryEnqueueLocked(j *job) bool {
	j.mu.Lock()
	j.enqueued = time.Now().UTC()
	j.mu.Unlock()
	select {
	case s.queue <- j:
	default:
		return false
	}
	s.jobs[j.id] = j
	s.tenants[j.req.Tenant]++
	j.counted = true
	s.Met.QueueDepth.Add(1)
	return true
}

// Job returns the in-memory record for id, or nil.
func (s *Server) Job(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Cancel flags the job; queued jobs finish as canceled immediately,
// running ones are interrupted at their next cooperative poll — a
// retry backoff sleep counts as one — and finish as canceled with
// partial stats. Returns the job, whether the call changed anything,
// or nil if the id is unknown.
func (s *Server) Cancel(id string) (*job, bool) {
	j := s.Job(id)
	if j == nil {
		return nil, false
	}
	st := j.requestCancel()
	if st.Terminal() {
		return j, false
	}
	if st == StateQueued {
		// Finalize now; the worker that eventually pulls the job from
		// the channel skips terminal jobs. The spool keeps the record
		// with a canceled outcome.
		s.finishJob(j, StateCanceled, &apiError{Code: "canceled", Message: "canceled before running"}, nil)
	}
	s.Met.JobsCanceled.Add(1)
	return j, true
}

// Draining reports whether Drain has begun (readiness turns false).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully stops this generation: admission closes, the
// heartbeat and reaper stop, running jobs are interrupted (their
// progress checkpoints durably and they return to queued on disk),
// queued jobs simply stay spooled, and every lease this daemon still
// holds is released so any surviving daemon adopts the work
// immediately instead of waiting out the TTL. ctx bounds the wait.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.Met.Draining.Store(1)
	s.mu.Unlock()

	s.cancelBg()
	s.cancelDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.bgWg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.releaseHeldLeases()
		return nil
	case <-ctx.Done():
		// Leases stay un-released; they expire after LeaseTTL, so the
		// work is still adopted — just not instantly.
		return fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	}
}

// releaseHeldLeases writes released=true into every lease this daemon
// still holds for non-terminal jobs (the queued ones a drain leaves
// behind; requeueJob already released the interrupted running ones).
func (s *Server) releaseHeldLeases() {
	now := time.Now().UTC()
	s.mu.Lock()
	held := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		j.mu.Lock()
		if !j.state.Terminal() && j.epoch > 0 && !j.fenced {
			held = append(held, j)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	for _, j := range held {
		j.mu.Lock()
		epoch := j.epoch
		j.mu.Unlock()
		if err := s.spool.renewLease(j.id, s.owner, epoch, now, true); err != nil && !errors.Is(err, errLeaseFenced) {
			s.cfg.Logf("job %s: releasing lease: %v", j.id, err)
		}
	}
}

// aggregateSnapshot sums the engine counters of finished jobs and all
// currently live observers.
func (s *Server) aggregateSnapshot() sxnm.MetricsSnapshot {
	s.mu.Lock()
	live := make([]sxnm.MetricsSnapshot, 0, len(s.jobs))
	for _, j := range s.jobs {
		j.mu.Lock()
		running := j.state == StateRunning
		j.mu.Unlock()
		if running {
			live = append(live, j.ob.Metrics().Snapshot())
		}
	}
	s.mu.Unlock()
	return s.agg.total(live...)
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to a
		// time-derived id rather than refusing service.
		return fmt.Sprintf("j-t%x", time.Now().UnixNano())
	}
	return "j-" + hex.EncodeToString(b[:])
}
