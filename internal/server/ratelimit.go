package server

import (
	"math"
	"sync"
	"time"
)

// rateLimiter is a per-tenant token bucket, complementing the
// concurrent-slot caps: PerTenantJobs bounds how much of the daemon a
// tenant can OCCUPY, the bucket bounds how fast it can SUBMIT. Each
// tenant accrues rps tokens per second up to burst; an admission
// spends one token or is rejected 429 with the exact wait until the
// next token (plus the response-layer jitter, so a rejected fleet
// does not come back in lockstep).
type rateLimiter struct {
	mu      sync.Mutex
	rps     float64
	burst   float64
	now     func() time.Time
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rps float64, burst int, now func() time.Time) *rateLimiter {
	if rps <= 0 {
		return nil // disabled
	}
	b := float64(burst)
	if b < 1 {
		b = math.Max(1, math.Ceil(rps)) // at least one full token
	}
	if now == nil {
		now = time.Now
	}
	return &rateLimiter{rps: rps, burst: b, now: now, buckets: make(map[string]*tokenBucket)}
}

// allow spends one token for tenant. When the bucket is dry it
// reports the wait until the next token becomes available.
func (l *rateLimiter) allow(tenant string) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[tenant]
	if b == nil {
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rps)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rps
	return false, time.Duration(need * float64(time.Second))
}

// prune drops buckets that refilled completely and sat idle — a
// long-lived daemon must not accumulate a bucket per tenant name it
// has ever seen. Called from the reaper loop.
func (l *rateLimiter) prune(idle time.Duration) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	for tenant, b := range l.buckets {
		full := b.tokens+now.Sub(b.last).Seconds()*l.rps >= l.burst
		if full && now.Sub(b.last) > idle {
			delete(l.buckets, tenant)
		}
	}
}

// len reports the live bucket count (tests).
func (l *rateLimiter) len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
