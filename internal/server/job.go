package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	sxnm "repro"
	"repro/internal/obs"
)

// JobState is the lifecycle position of one submitted job.
//
//	queued ──▶ running ──▶ done
//	  │           │    ├──▶ failed
//	  │           │    └──▶ canceled
//	  │           └──(drain)──▶ queued   (spooled; resumes after restart)
//	  └──(cancel)──▶ canceled
//
// A running job interrupted by a daemon drain goes back to queued: its
// progress is checkpointed and the next start — of this process or a
// restarted one — picks it up from the spool.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether a job in this state will never run again.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobRequest is the POST /v1/jobs body: the XML document to
// deduplicate, the SXNM configuration to do it with, and optional
// per-job resource limits. It doubles as the spooled on-disk form
// (job.json), which is what makes queued jobs survive a restart.
type JobRequest struct {
	// Tenant attributes the job for admission control; empty means
	// "default". Letters, digits, '-', '_', '.' only.
	Tenant string `json:"tenant,omitempty"`
	// ConfigXML is the SXNM configuration document (see config.Parse).
	ConfigXML string `json:"config_xml"`
	// DocumentXML is the XML document to deduplicate.
	DocumentXML string `json:"document_xml"`
	// Limits bounds the run; fields beyond the server's per-job budget
	// ceiling are rejected at admission.
	Limits *LimitsSpec `json:"limits,omitempty"`
}

// LimitsSpec is the wire form of runlimit.Limits. Zero fields mean
// "use the server default" (which may itself be unlimited).
type LimitsSpec struct {
	TimeoutMS      int64 `json:"timeout_ms,omitempty"`
	MaxDepth       int   `json:"max_depth,omitempty"`
	MaxNodes       int   `json:"max_nodes,omitempty"`
	MaxComparisons int   `json:"max_comparisons,omitempty"`
}

// apiError is an error with an HTTP rendering: status code, a stable
// machine-readable code, and a human message. RetryAfter > 0 adds a
// Retry-After header — the admission-control backpressure signal.
type apiError struct {
	Status     int           `json:"-"`
	Code       string        `json:"code"`
	Message    string        `json:"message"`
	RetryAfter time.Duration `json:"-"`
}

func (e *apiError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

func badRequest(code, format string, args ...any) *apiError {
	return &apiError{Status: http.StatusBadRequest, Code: code, Message: fmt.Sprintf(format, args...)}
}

// DecodeJobRequest reads and validates one job submission from r.
// Every rejection is a typed *apiError with a 4xx status: malformed
// JSON, unknown fields, oversized bodies (via http.MaxBytesReader),
// missing documents, bad tenant names, and negative limits all map to
// distinct codes. It does NOT compile the embedded config — the
// caller does, so config errors carry their own code.
func DecodeJobRequest(r io.Reader) (*JobRequest, *apiError) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, &apiError{Status: http.StatusRequestEntityTooLarge, Code: "body-too-large",
				Message: fmt.Sprintf("request body exceeds the %d-byte limit", mbe.Limit)}
		}
		return nil, badRequest("malformed-request", "decoding job request: %v", err)
	}
	// A second document in the stream is a smuggling attempt or a bug;
	// either way, refuse.
	if dec.More() {
		return nil, badRequest("malformed-request", "trailing data after job request")
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

func (r *JobRequest) validate() *apiError {
	if r.Tenant == "" {
		r.Tenant = "default"
	}
	if len(r.Tenant) > 64 {
		return badRequest("invalid-tenant", "tenant name longer than 64 bytes")
	}
	for _, c := range r.Tenant {
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.') {
			return badRequest("invalid-tenant", "tenant name may use letters, digits, '-', '_', and '.' only")
		}
	}
	if strings.TrimSpace(r.ConfigXML) == "" {
		return badRequest("missing-config", "config_xml is required")
	}
	if strings.TrimSpace(r.DocumentXML) == "" {
		return badRequest("missing-document", "document_xml is required")
	}
	if l := r.Limits; l != nil {
		if l.TimeoutMS < 0 || l.MaxDepth < 0 || l.MaxNodes < 0 || l.MaxComparisons < 0 {
			return badRequest("invalid-limits", "limits must be non-negative")
		}
	}
	return nil
}

// CompileConfig parses and validates the embedded SXNM configuration,
// mapping every failure to the typed invalid-config 4xx. The compiled
// form is discarded — workers re-parse at run time — but compiling at
// admission means a bad config is rejected before it occupies a queue
// slot.
func (r *JobRequest) CompileConfig() (*sxnm.Config, *apiError) {
	cfg, err := sxnm.LoadConfig(strings.NewReader(r.ConfigXML))
	if err != nil {
		return nil, badRequest("invalid-config", "%v", err)
	}
	if _, err := sxnm.New(cfg); err != nil {
		return nil, badRequest("invalid-config", "%v", err)
	}
	return cfg, nil
}

// effectiveLimits merges the request's limits over the server default
// and enforces the per-job budget ceiling: a requested value above a
// configured maximum is a typed 4xx (the tenant asked for more budget
// than it has), and an unlimited request inherits the ceiling.
func effectiveLimits(spec *LimitsSpec, def, max sxnm.Limits) (sxnm.Limits, *apiError) {
	lim := def
	if spec != nil {
		if spec.TimeoutMS > 0 {
			lim.Timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
		}
		if spec.MaxDepth > 0 {
			lim.MaxDepth = spec.MaxDepth
		}
		if spec.MaxNodes > 0 {
			lim.MaxNodes = spec.MaxNodes
		}
		if spec.MaxComparisons > 0 {
			lim.MaxComparisons = spec.MaxComparisons
		}
	}
	type bound struct {
		name     string
		req, max int64
		set      func(int64)
	}
	bounds := []bound{
		{"timeout_ms", int64(lim.Timeout / time.Millisecond), int64(max.Timeout / time.Millisecond),
			func(v int64) { lim.Timeout = time.Duration(v) * time.Millisecond }},
		{"max_depth", int64(lim.MaxDepth), int64(max.MaxDepth), func(v int64) { lim.MaxDepth = int(v) }},
		{"max_nodes", int64(lim.MaxNodes), int64(max.MaxNodes), func(v int64) { lim.MaxNodes = int(v) }},
		{"max_comparisons", int64(lim.MaxComparisons), int64(max.MaxComparisons), func(v int64) { lim.MaxComparisons = int(v) }},
	}
	for _, b := range bounds {
		if b.max <= 0 {
			continue // no ceiling configured for this dimension
		}
		if b.req > b.max {
			return sxnm.Limits{}, badRequest("limits-exceed-budget",
				"%s %d exceeds this server's per-job budget of %d", b.name, b.req, b.max)
		}
		if b.req == 0 {
			b.set(b.max) // unlimited request inherits the ceiling
		}
	}
	return lim, nil
}

// job is the server's in-memory record of one submission. The mutex
// guards the mutable lifecycle fields; the request, ID, and observer
// are immutable after creation.
type job struct {
	id        string
	req       *JobRequest
	limits    sxnm.Limits
	submitted time.Time

	// Observability: every job carries its own observer and report
	// collector so GET status can serve live partial stats and every
	// terminal transition — including drain and cancel — leaves a
	// report.json in the spool.
	ob  *sxnm.Observer
	col *sxnm.Collector
	// jr is the job's durable event journal appender (nil when
	// journaling is disabled); set before the job is enqueued.
	jr *journal

	mu        sync.Mutex
	state     JobState
	attempts  int
	enqueued  time.Time // last time the job entered the run queue
	started   time.Time
	finished  time.Time
	errCode   string
	errMsg    string
	epoch     int64 // lease fencing token (0 ⇒ constructed without a lease)
	fenced    bool  // lease lost to a takeover; no spool writes allowed
	resumed   bool  // re-enqueued from the spool by a restart
	cancelled bool  // DELETE received
	counted   bool  // holds a tenant-accounting slot (set at enqueue)
	finalized bool  // a finishJob claimed this job (exactly-once terminal)
	cancel    context.CancelFunc
	result    *Outcome
	lastSnap  obs.Snapshot // final engine counters once terminal/requeued
}

func (j *job) setState(s JobState) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// requestCancel flags the job and cancels its run context if one is
// live. Returns the state observed at the time of the call.
func (j *job) requestCancel() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.state
	if st.Terminal() {
		return st
	}
	j.cancelled = true
	if j.cancel != nil {
		j.cancel()
	}
	return st
}

func (j *job) isCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled
}

// snapshot returns the engine counters: live while the job runs, the
// final values after it stopped.
func (j *job) snapshot() obs.Snapshot {
	j.mu.Lock()
	terminal := j.state.Terminal()
	snap := j.lastSnap
	j.mu.Unlock()
	if terminal && snap != (obs.Snapshot{}) {
		return snap
	}
	return j.ob.Metrics().Snapshot()
}

// Outcome is the durable record of a finished job (outcome.json in
// the job's spool directory): how it ended, what it found, and the
// final engine counters. Restarts load it so finished jobs stay
// queryable across daemon generations.
type Outcome struct {
	State      JobState           `json:"state"`
	Attempts   int                `json:"attempts"`
	FinishedAt time.Time          `json:"finished_at"`
	Error      *apiErrorJSON      `json:"error,omitempty"`
	Summary    []CandidateSummary `json:"summary,omitempty"`
	Clusters   map[string][][]int `json:"clusters,omitempty"`
	Stats      *obs.Snapshot      `json:"stats,omitempty"`
}

// apiErrorJSON is the serializable slice of apiError.
type apiErrorJSON struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// CandidateSummary is one candidate's result row.
type CandidateSummary struct {
	Candidate    string `json:"candidate"`
	Elements     int    `json:"elements"`
	Clusters     int    `json:"clusters"`
	NonSingleton int    `json:"duplicate_groups"`
	Pairs        int    `json:"duplicate_pairs"`
}

// clustersOf flattens a result into the wire/spool cluster form: per
// candidate, clusters in ID order, members ascending — fully
// deterministic, so two runs over the same input serialize to
// identical bytes (the resume differential test depends on this).
func clustersOf(res *sxnm.Result) map[string][][]int {
	if res == nil {
		return nil
	}
	out := make(map[string][][]int, len(res.Clusters))
	for name, cs := range res.Clusters {
		groups := make([][]int, 0, len(cs.Clusters))
		for _, c := range cs.Clusters {
			groups = append(groups, c.Members)
		}
		out[name] = groups
	}
	return out
}

func summaryOf(res *sxnm.Result) []CandidateSummary {
	if res == nil {
		return nil
	}
	var out []CandidateSummary
	for _, s := range sxnm.Summarize(res) {
		out = append(out, CandidateSummary{
			Candidate:    s.Candidate,
			Elements:     s.Elements,
			Clusters:     s.Clusters,
			NonSingleton: s.NonSingleton,
			Pairs:        s.Pairs,
		})
	}
	return out
}
