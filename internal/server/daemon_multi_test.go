package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	sxnm "repro"
	"repro/internal/checkpoint"
	"repro/internal/checkpoint/faultfs"
)

// The multi-daemon acceptance harness. Two daemons share one spool:
// daemon A is "killed" (its heartbeats stop, its writes fail), daemon
// B's reaper must take its jobs over and finish them byte-identically
// to an uninterrupted run, and A — should it come back from the dead —
// must fence itself instead of writing.

// TestTwoDaemonTakeoverDifferential is the live form: A holds one
// running job (parked in a gated runner) and one queued job, then goes
// silent. B adopts both, finishes both identically to the reference.
// A's gate is then released so its zombie attempt completes compute —
// and must be fenced: outcome.json stays exactly B's bytes.
func TestTwoDaemonTakeoverDifferential(t *testing.T) {
	want := referenceClusters(t)
	spoolDir := t.TempDir()
	const ttl = 300 * time.Millisecond

	// Daemon A: one worker, its running job parked at a gate. The gated
	// runner computes in a throwaway directory, NOT the job's spooled
	// checkpoint dir, so after fencing we can assert A added zero bytes
	// to the shared spool.
	gate := make(chan struct{})
	var scratch atomic.Int64
	scratchRoot := t.TempDir()
	aRunner := func(ctx context.Context, det *sxnm.Detector, doc *sxnm.Document, fsys sxnm.CheckpointFS, dir string) (*sxnm.Result, error) {
		select {
		case <-gate:
			n := scratch.Add(1)
			return defaultRunner(ctx, det, doc, sxnm.OSCheckpointFS(), scratchRoot+"/"+strconv.FormatInt(n, 10))
		case <-ctx.Done():
			return nil, sxnm.ErrCanceled
		}
	}
	a := newTestServer(t, func(c *Config) {
		c.SpoolDir = spoolDir
		c.OwnerID = "daemon-a"
		c.Workers = 1
		c.LeaseTTL = ttl
		c.ReapInterval = time.Hour // A never reaps in this test
		c.Runner = aRunner
	})

	j1, apiErr := a.Submit(mustRequest(t, nil))
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	j2, apiErr := a.Submit(mustRequest(t, func(r *JobRequest) { r.Tenant = "other" }))
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	waitFor(t, func() bool { return a.Met.RunningJobs.Load() == 1 })

	// "Kill" A: stop its heartbeat and reaper. The worker goroutine
	// stays parked at the gate — a stalled process, exactly the failure
	// the lease TTL exists for.
	a.cancelBg()

	// Daemon B arrives, finds two unfinished jobs whose leases go
	// silent, and takes them over.
	b := newTestServer(t, func(c *Config) {
		c.SpoolDir = spoolDir
		c.OwnerID = "daemon-b"
		c.Workers = 2
		c.LeaseTTL = ttl
		c.ReapInterval = 25 * time.Millisecond
	})
	for _, id := range []string{j1.id, j2.id} {
		waitFor(t, func() bool { return b.Job(id) != nil })
		rec := waitTerminal(t, b, id)
		rec.mu.Lock()
		st := rec.state
		rec.mu.Unlock()
		if st != StateDone {
			t.Fatalf("job %s on daemon B: state %s", id, st)
		}
		if got := clustersBytes(t, b, id); !bytes.Equal(got, want) {
			t.Errorf("job %s: takeover clusters differ from reference\nwant %s\ngot  %s", id, want, got)
		}
	}
	if got := b.Met.LeaseTakeovers.Load(); got != 2 {
		t.Errorf("daemon B LeaseTakeovers = %d, want 2", got)
	}
	if got := b.Met.JobsResumed.Load(); got != 2 {
		t.Errorf("daemon B JobsResumed = %d, want 2", got)
	}

	// The journal travels with the job: j1's single file must hold the
	// full cross-daemon timeline — A's attempt, the takeover with the
	// epoch bump and ownership chain, A's fencing, and B's finish.
	evs := jobEvents(t, b, j1.id)
	var sawAttemptA, sawAttemptB bool
	var takeover, fenced, finished *JobEvent
	for i := range evs {
		ev := &evs[i]
		if i > 0 && ev.Seq <= evs[i-1].Seq {
			t.Errorf("journal seqs not increasing: %d then %d", evs[i-1].Seq, ev.Seq)
		}
		switch {
		case ev.Type == EventAttempt && ev.Owner == "daemon-a":
			sawAttemptA = true
			if ev.Epoch != 1 {
				t.Errorf("daemon A attempt at epoch %d, want 1", ev.Epoch)
			}
		case ev.Type == EventAttempt && ev.Owner == "daemon-b":
			sawAttemptB = true
			if ev.Epoch != 2 {
				t.Errorf("daemon B attempt at epoch %d, want 2", ev.Epoch)
			}
		case ev.Type == EventTakeover:
			takeover = ev
		case ev.Type == EventFenced:
			fenced = ev
		case ev.Type == EventFinished:
			finished = ev
		}
	}
	if !sawAttemptA || !sawAttemptB {
		t.Errorf("journal missing an owner's attempt: daemon-a=%v daemon-b=%v", sawAttemptA, sawAttemptB)
	}
	if takeover == nil {
		t.Error("journal has no lease-takeover event")
	} else if takeover.Owner != "daemon-b" || takeover.Epoch != 2 ||
		takeover.PrevOwner != "daemon-a" || takeover.PrevEpoch != 1 {
		t.Errorf("takeover event %+v, want daemon-b epoch 2 from daemon-a epoch 1", takeover)
	}
	if fenced == nil {
		t.Error("journal has no fenced event for the displaced owner")
	} else if fenced.Owner != "daemon-a" || fenced.Epoch != 1 {
		t.Errorf("fenced event names %s@%d, want daemon-a@1", fenced.Owner, fenced.Epoch)
	}
	if finished == nil || finished.Owner != "daemon-b" || finished.State != StateDone {
		t.Errorf("finished event %+v, want daemon-b done", finished)
	}

	// B is done: snapshot the durable truth for j1.
	outPath := spoolDir + "/" + j1.id + "/" + spoolOutcomeFile
	outBefore, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}

	// Resurrect A's parked attempt. It finishes its compute, then must
	// observe the epoch bump and fence itself: local failed
	// "lease-fenced", zero spool writes.
	close(gate)
	rec := waitTerminal(t, a, j1.id)
	rec.mu.Lock()
	st, code := rec.state, rec.errCode
	rec.mu.Unlock()
	if st != StateFailed || code != "lease-fenced" {
		t.Fatalf("zombie daemon A finished j1 as %s/%q, want failed/lease-fenced", st, code)
	}
	waitFor(t, func() bool { return a.Met.LeasesFenced.Load() >= 1 })
	outAfter, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(outBefore, outAfter) {
		t.Error("fenced daemon A mutated outcome.json")
	}
}

// TestTakeoverKilledAtEveryStep extends the kill-at-every-step
// invariant to the NEW durable surfaces: daemon A routes both spool
// and checkpoint I/O through one shared faultfs, so the injected crash
// hits admission writes, lease claims, heartbeats, checkpoint
// sections, and outcome/report writes alike — and everything after the
// crash point fails, exactly like a dead process. Daemon B (real
// filesystem) must then adopt whatever A durably left and reach a
// byte-identical result or a typed failure. Exhaustive over every step
// when DAEMON_MULTI_EXHAUSTIVE=1 (the `make daemon-multi` gate);
// strided otherwise to keep the tier-1 suite fast.
func TestTakeoverKilledAtEveryStep(t *testing.T) {
	want := referenceClusters(t)
	const ttl = 60 * time.Millisecond

	runGen := func(spoolDir string, fsys sxnm.CheckpointFS) (*Server, *job, error) {
		a, err := New(Config{
			SpoolDir:          spoolDir,
			OwnerID:           "daemon-a",
			Workers:           1,
			LeaseTTL:          ttl,
			HeartbeatInterval: time.Hour, // deterministic step count
			ReapInterval:      time.Hour,
			MaxAttempts:       2,
			RetryBaseDelay:    time.Millisecond,
			RetryMaxDelay:     2 * time.Millisecond,
			CheckpointFS:      fsys,
		})
		if err != nil {
			return nil, nil, err
		}
		j, apiErr := a.Submit(mustRequest(t, nil))
		if apiErr != nil {
			return a, nil, fmt.Errorf("%s", apiErr.Error())
		}
		return a, j, nil
	}

	// Learn the step count of one uninterrupted daemon-A lifecycle.
	counter := faultfs.New(checkpoint.OSFS())
	a, j, err := runGen(t.TempDir(), counter)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, a, j.id)
	drainSrv(t, a)
	steps := counter.Steps()
	if steps < 20 {
		t.Fatalf("suspiciously few steps (%d); the spool I/O seam is not being exercised", steps)
	}

	exhaustive := os.Getenv("DAEMON_MULTI_EXHAUSTIVE") == "1"
	testStep := func(n int) bool {
		if exhaustive {
			return true
		}
		// Always the first 25 (admission + lease claim + early
		// checkpoint I/O) and last 20 (outcome, report, metrics, lease
		// removal); every 5th in between.
		return n <= 25 || n > steps-20 || n%5 == 0
	}

	for _, torn := range []bool{false, true} {
		for n := 1; n <= steps; n++ {
			if !testStep(n) {
				continue
			}
			spoolDir := t.TempDir()
			fsys := faultfs.New(checkpoint.OSFS())
			fsys.CrashAt(n, torn)
			a, j, err := runGen(spoolDir, fsys)
			if err != nil {
				// The crash fired inside New or Submit; whatever debris
				// is on disk, daemon B below must cope with it.
				if a != nil {
					drainSrv(t, a)
				}
			} else {
				// A reaches a LOCAL terminal state (its writes fail, so
				// no durable outcome lands past the crash point).
				waitTerminal(t, a, j.id)
				drainSrv(t, a)
			}

			// Daemon B over the real filesystem adopts the wreckage.
			b, err := New(Config{
				SpoolDir:       spoolDir,
				OwnerID:        "daemon-b",
				Workers:        1,
				LeaseTTL:       ttl,
				ReapInterval:   15 * time.Millisecond,
				RetryBaseDelay: time.Millisecond,
				Logf: func(format string, args ...any) {
					t.Logf("crash@%d(torn=%v) B: "+format, append([]any{n, torn}, args...)...)
				},
			})
			if err != nil {
				t.Fatalf("crash at %d (torn=%v): daemon B failed to start: %v", n, torn, err)
			}
			sp, err := newSpool(spoolDir, nil)
			if err != nil {
				t.Fatal(err)
			}
			entries, err := sp.scan()
			if err != nil {
				t.Fatalf("crash at %d (torn=%v): scanning spool: %v", n, torn, err)
			}
			for _, ent := range entries {
				if ent.rec == nil {
					continue // corrupt entries are B's sweep's problem (quarantine)
				}
				id := ent.id
				waitFor(t, func() bool { return b.Job(id) != nil })
				rec := waitTerminal(t, b, id)
				rec.mu.Lock()
				st, code := rec.state, rec.errCode
				rec.mu.Unlock()
				switch st {
				case StateDone:
					out, oerr := sp.loadOutcome(id)
					if oerr != nil || out == nil {
						t.Fatalf("crash at %d (torn=%v): outcome unreadable: %v", n, torn, oerr)
					}
					got, _ := json.Marshal(out.Clusters)
					if !bytes.Equal(got, want) {
						t.Errorf("crash at %d (torn=%v): takeover clusters differ\nwant %s\ngot  %s", n, torn, want, got)
					}
				case StateFailed:
					if code == "" {
						t.Errorf("crash at %d (torn=%v): failed without a typed code", n, torn)
					}
				default:
					t.Errorf("crash at %d (torn=%v): terminal state %s", n, torn, st)
				}
				// Whatever the crash did to the journal, it reads back as
				// decodable events plus at most a typed torn/corrupt error —
				// and the decodable sequence stays strictly increasing.
				if raw, rerr := os.ReadFile(sp.journalPath(id)); rerr == nil {
					lines, _, serr := scanJournal(raw)
					if serr != nil && !errors.Is(serr, ErrJournalTorn) && !errors.Is(serr, ErrJournalCorrupt) {
						t.Errorf("crash at %d (torn=%v): untyped journal error: %v", n, torn, serr)
					}
					for i := 1; i < len(lines); i++ {
						if lines[i].Ev.Seq <= lines[i-1].Ev.Seq {
							t.Errorf("crash at %d (torn=%v): journal seqs not increasing", n, torn)
							break
						}
					}
				}
			}
			drainSrv(t, b)
		}
	}
}

func drainSrv(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
