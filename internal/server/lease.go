package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Lease protocol. The spool is shared state: N daemons may point at
// the same directory, and each unfinished job must have at most one
// owner at a time or two engines would race over one checkpoint
// directory. Ownership is a per-job lease file,
//
//	<spool>/<job-id>/lease.json
//	    {"job":"j-…","owner":"host-1234-ab12","epoch":3,
//	     "heartbeat":"2026-08-08T…Z","released":false}
//
// with three moving parts:
//
//   - Acquisition is exclusive-create via hard link: the contender
//     writes a unique temp file and links it to lease.json. link(2)
//     fails if the target exists, so exactly one contender wins even
//     across processes and NFS-style shared mounts.
//   - Renewal is the owner's heartbeat: re-read the lease, verify
//     (owner, epoch) still match, rewrite with a fresh timestamp via
//     the atomic tmp+rename. A lease whose heartbeat is older than
//     the TTL is dead capital: any daemon's reaper may take it over.
//   - Takeover bumps the epoch — the fencing token. The reaper
//     renames the stale lease aside (rename is atomic, so exactly one
//     reaper wins), confirms the renamed file is still the stale
//     lease it observed, then claims with epoch+1. A stale owner that
//     wakes up later re-reads the lease before every durable
//     mutation, sees an (owner, epoch) it does not hold, and fences
//     itself off: it abandons the job without writing.
//
// The safety argument is the standard lease one: a verify-then-write
// still races a concurrent takeover in the instant between the two,
// so correctness additionally assumes owners heartbeat at TTL/3 and
// reapers only move after a full TTL of silence — an owner would have
// to stall for ⅔·TTL between its own verify and write to lose the
// race. Crash-consistency of the lease file itself needs no such
// assumption: a torn lease decodes as corrupt, and a corrupt lease is
// treated exactly like an expired one (takeover, epoch restarts at 1;
// the ownership change alone fences the previous holder).

const spoolLeaseFile = "lease.json"

// leaseRecord is the on-disk lease.
type leaseRecord struct {
	Job       string    `json:"job"`
	Owner     string    `json:"owner"`
	Epoch     int64     `json:"epoch"`
	Heartbeat time.Time `json:"heartbeat"`
	Released  bool      `json:"released,omitempty"`
}

// Expired reports whether the lease's owner has been silent for
// longer than ttl as of now.
func (l *leaseRecord) Expired(now time.Time, ttl time.Duration) bool {
	return now.Sub(l.Heartbeat) > ttl
}

// Typed lease outcomes. errLeaseHeld is the benign "someone else owns
// it" result a reaper skips past; errLeaseFenced means OUR claimed
// (owner, epoch) no longer matches the file — the caller must abandon
// the job without mutating the spool.
var (
	errLeaseHeld    = errors.New("server: lease held by another owner")
	errLeaseFenced  = errors.New("server: lease fenced (owner or epoch superseded)")
	errLeaseCorrupt = errors.New("server: corrupt lease record")
)

// encodeLease renders the canonical lease bytes.
func encodeLease(rec *leaseRecord) []byte {
	data, _ := json.Marshal(rec) // no unmarshalable fields; cannot fail
	return append(data, '\n')
}

// decodeLease parses and validates one lease file. Anything that is
// not a complete, well-formed record — torn writes included — is a
// typed errLeaseCorrupt, which takeover treats like an expired lease.
func decodeLease(raw []byte) (*leaseRecord, error) {
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var rec leaseRecord
	if err := dec.Decode(&rec); err != nil {
		return nil, fmt.Errorf("%w: %v", errLeaseCorrupt, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data", errLeaseCorrupt)
	}
	if rec.Owner == "" || len(rec.Owner) > 256 {
		return nil, fmt.Errorf("%w: missing or oversized owner", errLeaseCorrupt)
	}
	if rec.Epoch < 1 {
		return nil, fmt.Errorf("%w: epoch %d < 1", errLeaseCorrupt, rec.Epoch)
	}
	if rec.Heartbeat.IsZero() {
		return nil, fmt.Errorf("%w: zero heartbeat", errLeaseCorrupt)
	}
	return &rec, nil
}

func (s *spool) leasePath(id string) string {
	return filepath.Join(s.jobDir(id), spoolLeaseFile)
}

// loadLease reads a job's lease: (nil, nil) when no lease exists,
// errLeaseCorrupt when one exists but does not decode.
func (s *spool) loadLease(id string) (*leaseRecord, error) {
	raw, err := os.ReadFile(s.leasePath(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return decodeLease(raw)
}

// writeLeaseTemp persists the encoded lease to a unique temp file in
// the job directory and returns its path.
func (s *spool) writeLeaseTemp(id string, rec *leaseRecord) (string, error) {
	tmp, err := s.fsys.CreateTemp(s.jobDir(id), spoolLeaseFile+".tmp*")
	if err != nil {
		return "", err
	}
	_, werr := tmp.Write(encodeLease(rec))
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		s.fsys.Remove(tmp.Name())
		return "", werr
	}
	return tmp.Name(), nil
}

// claimLease acquires an UNLEASED job exclusively: temp write + hard
// link. errLeaseHeld when a racer got there first.
func (s *spool) claimLease(id, owner string, epoch int64, now time.Time) error {
	tmp, err := s.writeLeaseTemp(id, &leaseRecord{Job: id, Owner: owner, Epoch: epoch, Heartbeat: now})
	if err != nil {
		return fmt.Errorf("server: claiming lease for %s: %w", id, err)
	}
	defer s.fsys.Remove(tmp)
	if err := s.fsys.Link(tmp, s.leasePath(id)); err != nil {
		if errors.Is(err, os.ErrExist) {
			return errLeaseHeld
		}
		return fmt.Errorf("server: claiming lease for %s: %w", id, err)
	}
	return s.fsys.SyncDir(s.jobDir(id))
}

// renewLease is the owner-only heartbeat (and, with released set, the
// clean hand-off a drain performs): verify we still hold the lease,
// then atomically rewrite it with a fresh timestamp. errLeaseFenced
// when ownership moved — the caller must stop touching this job.
func (s *spool) renewLease(id, owner string, epoch int64, now time.Time, released bool) error {
	cur, err := s.loadLease(id)
	if err != nil || cur == nil || cur.Owner != owner || cur.Epoch != epoch {
		return errLeaseFenced
	}
	tmp, err := s.writeLeaseTemp(id, &leaseRecord{Job: id, Owner: owner, Epoch: epoch, Heartbeat: now, Released: released})
	if err != nil {
		return fmt.Errorf("server: renewing lease for %s: %w", id, err)
	}
	if err := s.fsys.Rename(tmp, s.leasePath(id)); err != nil {
		s.fsys.Remove(tmp)
		return fmt.Errorf("server: renewing lease for %s: %w", id, err)
	}
	return s.fsys.SyncDir(s.jobDir(id))
}

// verifyLease checks that (owner, epoch) still hold the job. Called
// before every durable mutation; errLeaseFenced means a takeover
// happened and this daemon must not write.
func (s *spool) verifyLease(id, owner string, epoch int64) error {
	cur, err := s.loadLease(id)
	if err != nil || cur == nil || cur.Owner != owner || cur.Epoch != epoch {
		return errLeaseFenced
	}
	return nil
}

// removeLease drops the lease of a job that reached a terminal state;
// terminal jobs are identified by outcome.json, never by lease.
func (s *spool) removeLease(id string) {
	s.fsys.Remove(s.leasePath(id))
}

// takeoverLease claims a job whose lease is absent, released,
// expired, or corrupt, and returns the new epoch. errLeaseHeld means
// the lease is live (or a racing reaper won) — skip and rescan later.
//
// A non-expired lease held by the SAME owner id is also claimable: a
// restarted daemon with a pinned -spool-owner is the only legitimate
// holder of its own id, so waiting out its previous incarnation's TTL
// would be dead time (the epoch still bumps, fencing the ghost).
func (s *spool) takeoverLease(id, owner string, now time.Time, ttl time.Duration) (int64, error) {
	cur, err := s.loadLease(id)
	corrupt := err != nil && errors.Is(err, errLeaseCorrupt)
	if err != nil && !corrupt {
		return 0, err
	}
	if cur == nil && !corrupt {
		// Never leased (a pre-lease spool, or a crash between admission
		// and claim): fresh claim at epoch 1.
		if err := s.claimLease(id, owner, 1, now); err != nil {
			return 0, err
		}
		return 1, nil
	}
	if !corrupt && !cur.Released && !cur.Expired(now, ttl) && cur.Owner != owner {
		return 0, errLeaseHeld
	}

	// Move the stale lease aside. Rename is atomic, so of all racing
	// reapers exactly one owns the .reap file; the rest get ENOENT.
	reap := s.leasePath(id) + ".reap-" + randSuffix()
	if err := s.fsys.Rename(s.leasePath(id), reap); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, errLeaseHeld
		}
		return 0, err
	}
	// Confirm we reaped the lease we observed, not one a faster reaper
	// installed between our read and our rename. A decodable reap that
	// differs from what we saw is someone else's fresh lease: put it
	// back (exclusive link — if yet another claim landed in the gap,
	// the displaced owner fences itself at its next verify) and yield.
	// An undecodable reap stays claimable either way.
	if raw, rerr := os.ReadFile(reap); rerr == nil {
		if got, derr := decodeLease(raw); derr == nil {
			stillOurs := !corrupt && cur != nil && got.Owner == cur.Owner && got.Epoch == cur.Epoch
			if !stillOurs {
				s.fsys.Link(reap, s.leasePath(id))
				s.fsys.Remove(reap)
				return 0, errLeaseHeld
			}
		}
	}
	epoch := int64(1)
	if !corrupt && cur != nil {
		epoch = cur.Epoch + 1
	}
	if err := s.claimLease(id, owner, epoch, now); err != nil {
		s.fsys.Remove(reap)
		return 0, err
	}
	s.fsys.Remove(reap)
	return epoch, nil
}

// sweepLeaseDebris removes leftover .reap-/.tmp lease files a crashed
// takeover or renewal left in a job directory, once they are older
// than the TTL (so an in-flight takeover is never swept).
func (s *spool) sweepLeaseDebris(id string, now time.Time, ttl time.Duration) {
	ents, err := os.ReadDir(s.jobDir(id))
	if err != nil {
		return
	}
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, spoolLeaseFile+".") {
			continue
		}
		if info, err := ent.Info(); err == nil && now.Sub(info.ModTime()) > ttl {
			s.fsys.Remove(filepath.Join(s.jobDir(id), name))
		}
	}
}

func randSuffix() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}
