package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	sxnm "repro"
)

// The drain differential: a daemon drained mid-run and restarted over
// the same spool must finish every job — queued and in-flight alike —
// with clusters byte-identical to a daemon that was never interrupted.

// clustersBytes returns the canonical serialization of a finished
// job's clusters.
func clustersBytes(t *testing.T, s *Server, id string) []byte {
	t.Helper()
	out, err := s.spool.loadOutcome(id)
	if err != nil || out == nil {
		t.Fatalf("job %s: outcome missing (%v)", id, err)
	}
	if out.State != StateDone {
		t.Fatalf("job %s: state %s, error %+v", id, out.State, out.Error)
	}
	data, err := json.Marshal(out.Clusters)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// referenceClusters runs one job to completion on an uninterrupted
// daemon (spill path on, like the drained ones) and returns its
// canonical clusters.
func referenceClusters(t *testing.T) []byte {
	t.Helper()
	s := newTestServer(t, func(c *Config) {
		c.Engine.SpillThresholdRows = 1
	})
	j, apiErr := s.Submit(mustRequest(t, nil))
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	waitTerminal(t, s, j.id)
	return clustersBytes(t, s, j.id)
}

// assertNoOrphanRuns fails if a job's spill directory holds .run files
// its manifest does not reference (the satellite-1 leak definition,
// checked here after daemon-level interruptions).
func assertNoOrphanRuns(t *testing.T, s *Server, id string) {
	t.Helper()
	dir := s.spool.spillDir(id)
	referenced := make(map[string]struct{})
	if data, err := os.ReadFile(filepath.Join(dir, "spill-manifest.json")); err == nil {
		var man struct {
			Entries map[string]struct {
				Runs []struct {
					Name string `json:"name"`
				} `json:"runs"`
			} `json:"entries"`
		}
		if err := json.Unmarshal(data, &man); err == nil {
			for _, ent := range man.Entries {
				for _, rf := range ent.Runs {
					referenced[rf.Name] = struct{}{}
				}
			}
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return // never spilled
	}
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), ".run") {
			if _, ok := referenced[ent.Name()]; !ok {
				t.Errorf("job %s: orphaned run file %s", id, ent.Name())
			}
		}
	}
}

func TestDrainRestartDifferential(t *testing.T) {
	want := referenceClusters(t)
	spoolDir := t.TempDir()

	// Generation 1: one worker, so jobA runs and jobB stays queued.
	// jobA's runner parks until drain interrupts it, the way a long
	// engine run would be interrupted at its next cooperative poll.
	started := make(chan struct{})
	gen1, err := New(Config{
		SpoolDir: spoolDir,
		Workers:  1,
		Engine:   sxnm.Options{SpillThresholdRows: 1},
		Runner: func(ctx context.Context, det *sxnm.Detector, doc *sxnm.Document, fsys sxnm.CheckpointFS, dir string) (*sxnm.Result, error) {
			close(started)
			<-ctx.Done()
			return nil, sxnm.ErrCanceled
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	jobA, apiErr := gen1.Submit(mustRequest(t, nil))
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	<-started
	jobB, apiErr := gen1.Submit(mustRequest(t, func(r *JobRequest) { r.Tenant = "second" }))
	if apiErr != nil {
		t.Fatal(apiErr)
	}

	ts := httptest.NewServer(gen1.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := gen1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Drained daemon: not ready, rejects submissions with a typed 503.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	if _, apiErr := gen1.Submit(mustRequest(t, nil)); apiErr == nil || apiErr.Code != "draining" {
		t.Errorf("submit while draining: %+v, want code draining", apiErr)
	}

	// The interrupted job went back to queued — durably: no outcome —
	// and still left its partial run report behind (satellite:
	// observability outputs on drain).
	jobA.mu.Lock()
	stA := jobA.state
	jobA.mu.Unlock()
	if stA != StateQueued {
		t.Fatalf("in-flight job after drain = %s, want queued", stA)
	}
	if gen1.Met.JobsRequeued.Load() != 1 {
		t.Errorf("JobsRequeued = %d, want 1", gen1.Met.JobsRequeued.Load())
	}
	for _, id := range []string{jobA.id, jobB.id} {
		if out, err := gen1.spool.loadOutcome(id); err != nil || out != nil {
			t.Errorf("drained job %s has an outcome (%+v, %v); must stay resumable", id, out, err)
		}
	}
	if _, err := os.Stat(filepath.Join(gen1.spool.jobDir(jobA.id), spoolReportFile)); err != nil {
		t.Errorf("drained in-flight job left no report.json: %v", err)
	}

	// Generation 2 over the same spool: both jobs resume and complete.
	gen2, err := New(Config{
		SpoolDir:       spoolDir,
		Workers:        2,
		Engine:         sxnm.Options{SpillThresholdRows: 1},
		RetryBaseDelay: time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		gen2.Drain(ctx)
	}()
	if got := gen2.Met.JobsResumed.Load(); got != 2 {
		t.Fatalf("JobsResumed = %d, want 2", got)
	}
	for _, id := range []string{jobA.id, jobB.id} {
		j := waitTerminal(t, gen2, id)
		j.mu.Lock()
		st, resumed := j.state, j.resumed
		j.mu.Unlock()
		if st != StateDone {
			t.Fatalf("resumed job %s = %s (err %s)", id, st, j.errMsg)
		}
		if !resumed {
			t.Errorf("job %s not flagged resumed", id)
		}
		if got := clustersBytes(t, gen2, id); !bytes.Equal(got, want) {
			t.Errorf("job %s: resumed clusters differ from uninterrupted run\nwant %s\ngot  %s", id, want, got)
		}
		assertNoOrphanRuns(t, gen2, id)
	}
}

// A finished job's record survives a restart: the next generation
// serves its status and clusters from the spooled outcome.
func TestFinishedJobsSurviveRestart(t *testing.T) {
	spoolDir := t.TempDir()
	gen1, err := New(Config{SpoolDir: spoolDir, Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	j, apiErr := gen1.Submit(mustRequest(t, nil))
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	waitTerminal(t, gen1, j.id)
	want := clustersBytes(t, gen1, j.id)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	gen1.Drain(ctx)

	gen2, err := New(Config{SpoolDir: spoolDir, Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer gen2.Drain(ctx)
	if got := gen2.Met.JobsResumed.Load(); got != 0 {
		t.Errorf("finished job was re-enqueued: JobsResumed = %d", got)
	}
	ts := httptest.NewServer(gen2.Handler())
	defer ts.Close()
	resp, body := getJSON(t, ts.URL+"/v1/jobs/"+j.id)
	if resp.StatusCode != http.StatusOK || body["state"] != "done" {
		t.Fatalf("restarted status = %d %v", resp.StatusCode, body)
	}
	if got := clustersBytes(t, gen2, j.id); !bytes.Equal(got, want) {
		t.Error("restarted generation serves different clusters")
	}
}
