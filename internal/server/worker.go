package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"time"

	sxnm "repro"
	"repro/internal/extsort"
	"repro/internal/obs"
	"repro/internal/runlimit"
)

// Fault taxonomy. Every attempt ends in exactly one class:
//
//	success      → done
//	interruption → canceled (submitter asked), requeued (daemon is
//	               draining; progress is checkpointed, the spool keeps
//	               the job), or failed (the job burned its own budget)
//	permanent    → failed immediately: invalid config/document, a
//	               checkpoint for a different input, corrupt spill
//	               state, or a contained panic — retrying cannot help
//	transient    → retried with exponential backoff and jitter up to
//	               MaxAttempts; the checkpoint written by the failed
//	               attempt makes each retry incremental, not a redo
//
// permanentError wraps faults detected by the worker itself (parse
// failures, panics) so classification stays a single errors.As test.
type permanentError struct {
	code string
	err  error
}

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

func classifyPermanent(err error) (string, bool) {
	var pe *permanentError
	switch {
	case errors.As(err, &pe):
		return pe.code, true
	case errors.Is(err, sxnm.ErrCheckpointMismatch):
		return "checkpoint-mismatch", true
	case errors.Is(err, extsort.ErrCorrupt):
		return "corrupt-state", true
	}
	var panicErr *sxnm.PanicError
	if errors.As(err, &panicErr) {
		return "panic", true
	}
	return "", false
}

func budgetCode(err error) string {
	var le *sxnm.LimitError
	switch {
	case errors.Is(err, sxnm.ErrDeadlineExceeded):
		return "deadline-exceeded"
	case errors.As(err, &le), errors.Is(err, sxnm.ErrLimitExceeded):
		return "limit-exceeded"
	default:
		return "interrupted"
	}
}

func (s *Server) worker(i int) {
	defer s.wg.Done()
	for {
		// Drain has priority over the queue: a select with both
		// channels ready picks randomly, and pulling a queued job after
		// the drain started would run it against a dead context. Queued
		// jobs must stay parked in the spool for the next generation.
		select {
		case <-s.drainCtx.Done():
			return
		default:
		}
		select {
		case <-s.drainCtx.Done():
			return
		case j := <-s.queue:
			s.Met.QueueDepth.Add(-1)
			s.runJob(j)
		}
	}
}

// runJob drives one job to a terminal state or back into the spool.
func (s *Server) runJob(j *job) {
	if s.drainCtx.Err() != nil {
		// Drain won the race for this queue slot: don't start an
		// attempt that is born interrupted. The job stays queued, its
		// spool entry has no outcome, and the next generation resumes
		// it — exactly as if it had never been dequeued.
		return
	}
	ctx, cancel := context.WithCancel(s.drainCtx)
	defer cancel()

	j.mu.Lock()
	if j.state.Terminal() { // canceled while queued
		j.mu.Unlock()
		return
	}
	if j.fenced { // lost the lease while still queued
		j.mu.Unlock()
		s.finishFenced(j)
		return
	}
	j.state = StateRunning
	j.started = time.Now().UTC()
	j.cancel = cancel
	alreadyCancelled := j.cancelled
	enqueued := j.enqueued
	j.mu.Unlock()
	if !enqueued.IsZero() {
		s.Hist.QueueWait.Observe(time.Since(enqueued))
	}
	if alreadyCancelled {
		s.finishJob(j, StateCanceled, &apiError{Code: "canceled", Message: "canceled before running"}, nil)
		return
	}
	s.Met.RunningJobs.Add(1)
	defer s.Met.RunningJobs.Add(-1)

	for attempt := 1; ; attempt++ {
		if !s.stillOwns(j) {
			s.finishFenced(j)
			return
		}
		j.mu.Lock()
		j.attempts++
		total := j.attempts
		j.mu.Unlock()
		s.journalAppend(j, JobEvent{Type: EventAttempt, Attempt: total})

		attemptStart := time.Now()
		res, err := s.runAttempt(ctx, j)
		s.Hist.Attempt.Observe(time.Since(attemptStart))
		switch {
		case err == nil:
			s.finishJob(j, StateDone, nil, res)
			return

		case runlimit.IsInterruption(err):
			if j.isCancelled() {
				s.finishJob(j, StateCanceled, &apiError{Code: "canceled", Message: err.Error()}, nil)
				return
			}
			if s.drainCtx.Err() != nil {
				s.requeueJob(j)
				return
			}
			s.finishJob(j, StateFailed, &apiError{Code: budgetCode(err), Message: err.Error()}, nil)
			return

		default:
			if code, ok := classifyPermanent(err); ok {
				s.finishJob(j, StateFailed, &apiError{Code: code, Message: err.Error()}, nil)
				return
			}
			if attempt >= s.cfg.MaxAttempts {
				s.finishJob(j, StateFailed, &apiError{Code: "transient-exhausted",
					Message: fmt.Sprintf("gave up after %d attempt(s): %v", total, err)}, nil)
				return
			}
			s.Met.Retries.Add(1)
			s.journalAppend(j, JobEvent{Type: EventRetry, Attempt: total, Cause: err.Error()})
			s.cfg.Logf("job %s: attempt %d failed transiently, retrying: %v", j.id, attempt, err)
			if !s.sleepBackoff(ctx, attempt) {
				if j.isCancelled() {
					s.finishJob(j, StateCanceled, &apiError{Code: "canceled", Message: "canceled during retry backoff"}, nil)
				} else {
					s.requeueJob(j)
				}
				return
			}
		}
	}
}

// runAttempt executes one engine run over the job's spooled checkpoint
// directory, with panic containment: a panic anywhere in the engine is
// recovered into a permanent fault on this job, never a daemon crash.
func (s *Server) runAttempt(ctx context.Context, j *job) (res *sxnm.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.Met.PanicsContained.Add(1)
			err = &permanentError{code: "panic", err: fmt.Errorf("contained worker panic: %v", r)}
		}
	}()

	cfg, lerr := sxnm.LoadConfig(strings.NewReader(j.req.ConfigXML))
	if lerr != nil {
		return nil, &permanentError{code: "invalid-config", err: lerr}
	}
	opts := s.cfg.Engine
	opts.Observer = j.ob
	opts.Limits = j.limits
	if opts.SpillThresholdRows > 0 {
		opts.SpillDir = s.spool.spillDir(j.id)
	}
	if opts.SimCache {
		if fp, ferr := sxnm.ConfigFingerprint(cfg); ferr == nil {
			opts.SimCacheFor = s.pool.providerFor(fp)
		}
	}
	det, derr := sxnm.NewWithOptions(cfg, opts)
	if derr != nil {
		return nil, &permanentError{code: "invalid-config", err: derr}
	}
	doc, perr := sxnm.ParseXMLWithLimits(strings.NewReader(j.req.DocumentXML), j.limits)
	if perr != nil {
		if runlimit.IsInterruption(perr) {
			return nil, perr // parse-time depth/node budget breach
		}
		return nil, &permanentError{code: "invalid-document", err: perr}
	}
	runner := s.cfg.Runner
	if runner == nil {
		runner = defaultRunner
	}
	return runner(ctx, det, doc, s.cfg.CheckpointFS, s.spool.checkpointDir(j.id))
}

func defaultRunner(ctx context.Context, det *sxnm.Detector, doc *sxnm.Document, fsys sxnm.CheckpointFS, ckptDir string) (*sxnm.Result, error) {
	return det.RunCheckpointedFSContext(ctx, doc, fsys, ckptDir)
}

// sleepBackoff waits base·2^(attempt-1) with ±50% jitter, capped at
// RetryMaxDelay. Returns false when the wait was interrupted by drain
// or cancel.
func (s *Server) sleepBackoff(ctx context.Context, attempt int) bool {
	d := s.cfg.RetryBaseDelay << (attempt - 1)
	if d > s.cfg.RetryMaxDelay || d <= 0 {
		d = s.cfg.RetryMaxDelay
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d))) // [d/2, 3d/2)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// stillOwns re-checks the job's lease on disk before work that is
// about to mutate the spool. A definite mismatch means a reaper took
// the job over — this daemon must fence itself. Jobs constructed
// without a lease (epoch 0: direct test harness use) always pass.
func (s *Server) stillOwns(j *job) bool {
	j.mu.Lock()
	epoch, fenced := j.epoch, j.fenced
	j.mu.Unlock()
	if fenced {
		return false
	}
	if epoch == 0 {
		return true
	}
	return s.spool.verifyLease(j.id, s.owner, epoch) == nil
}

// finishFenced finalizes a job this daemon lost to a lease takeover:
// local state only — the new owner's spool records are the truth, so
// NOTHING is written to disk here. The tenant slot is released and the
// job reads as failed("lease-fenced") from this (stale) daemon.
func (s *Server) finishFenced(j *job) {
	j.mu.Lock()
	if j.finalized {
		j.mu.Unlock()
		return
	}
	j.finalized = true
	j.fenced = true
	j.state = StateFailed
	j.errCode = "lease-fenced"
	j.errMsg = "job taken over by another daemon; this daemon's attempt was abandoned without writes"
	j.finished = time.Now().UTC()
	cancel := j.cancel
	j.cancel = nil
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	s.releaseTenant(j)
	s.Met.LeasesFenced.Add(1)
	s.cfg.Logf("job %s: fenced; abandoned without spool writes", j.id)
}

// finishJob records a terminal state: outcome.json (durable terminal
// marker), report.json and metrics.prom (satellite observability —
// written on every stop path, not just success), the engine-counter
// aggregate, and the tenant slot release. The durable records are
// written BEFORE the in-memory state flips terminal, so anyone who
// observes a terminal job finds its spool complete; the finalized
// flag makes racing finishes (cancel-of-queued vs. worker pickup)
// exactly-once. The job's lease is re-verified first and removed
// after the outcome lands — a fenced job takes the no-write path.
func (s *Server) finishJob(j *job, state JobState, apiErr *apiError, res *sxnm.Result) {
	if !s.stillOwns(j) {
		s.finishFenced(j)
		return
	}
	snap := j.ob.Metrics().Snapshot()
	out := &Outcome{
		State:      state,
		FinishedAt: time.Now().UTC(),
	}
	if snap != (obs.Snapshot{}) {
		out.Stats = &snap
	}
	if apiErr != nil {
		out.Error = &apiErrorJSON{Code: apiErr.Code, Message: apiErr.Message}
	}
	if state == StateDone && res != nil {
		out.Summary = summaryOf(res)
		out.Clusters = clustersOf(res)
	}

	j.mu.Lock()
	if j.finalized {
		j.mu.Unlock()
		return
	}
	j.finalized = true
	out.Attempts = j.attempts
	j.mu.Unlock()

	// The terminal journal event lands BEFORE the in-memory state
	// flips (like outcome.json): whoever observes a terminal job can
	// already read its complete timeline.
	fin := JobEvent{Type: EventFinished, State: state, Attempt: out.Attempts, Progress: s.progressOf(j)}
	if apiErr != nil {
		fin.ErrorCode = apiErr.Code
	}
	s.journalAppend(j, fin)
	if err := s.spool.finish(j.id, out); err != nil {
		s.cfg.Logf("job %s: writing outcome: %v", j.id, err)
	} else {
		// Terminal jobs are identified by outcome.json; the lease has
		// done its work and would only confuse later reapers.
		s.spool.removeLease(j.id)
	}
	s.writeReports(j, snap)
	s.agg.add(snap)
	if !j.submitted.IsZero() {
		s.Hist.JobLatency.Observe(out.FinishedAt.Sub(j.submitted))
	}

	j.mu.Lock()
	j.state = state
	j.finished = out.FinishedAt
	if apiErr != nil {
		j.errCode, j.errMsg = apiErr.Code, apiErr.Message
	}
	j.lastSnap = snap
	j.result = out
	j.cancel = nil
	j.mu.Unlock()
	s.releaseTenant(j)
	switch state {
	case StateDone:
		s.Met.JobsDone.Add(1)
	case StateFailed:
		s.Met.JobsFailed.Add(1)
	}

	s.mu.Lock()
	if _, ok := s.jobs[j.id]; !ok {
		s.jobs[j.id] = j // recovery-path finishes register here
	}
	s.mu.Unlock()
}

// requeueJob parks an interrupted in-flight job back in the spool
// during a drain. No outcome.json is written — its absence is the
// resumable marker — but the run report and metrics of the partial
// attempt are (satellite: outputs on drain, not just completion).
// The lease is released so a surviving daemon adopts the job
// immediately instead of waiting out the TTL.
func (s *Server) requeueJob(j *job) {
	if !s.stillOwns(j) {
		s.finishFenced(j)
		return
	}
	snap := j.ob.Metrics().Snapshot()
	j.mu.Lock()
	j.state = StateQueued
	j.lastSnap = snap
	j.cancel = nil
	epoch := j.epoch
	j.mu.Unlock()
	s.journalAppend(j, JobEvent{Type: EventDrainPark, Cause: "drain", Progress: s.progressOf(j)})
	s.writeReports(j, snap)
	s.agg.add(snap)
	if epoch > 0 {
		if err := s.spool.renewLease(j.id, s.owner, epoch, time.Now().UTC(), true); err != nil && !errors.Is(err, errLeaseFenced) {
			s.cfg.Logf("job %s: releasing lease on requeue: %v", j.id, err)
		}
	}
	s.Met.JobsRequeued.Add(1)
	s.cfg.Logf("job %s: checkpointed and requeued by drain", j.id)
}

// releaseTenant frees the job's admission-control slot exactly once.
func (s *Server) releaseTenant(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.mu.Lock()
	counted := j.counted
	j.counted = false
	j.mu.Unlock()
	if counted {
		if n := s.tenants[j.req.Tenant]; n <= 1 {
			delete(s.tenants, j.req.Tenant)
		} else {
			s.tenants[j.req.Tenant] = n - 1
		}
	}
}

// writeReports persists the job's run report and final engine counters
// next to its spooled state, atomically.
func (s *Server) writeReports(j *job, snap obs.Snapshot) {
	dir := s.spool.jobDir(j.id)
	rep := j.col.Report(j.ob.Metrics())
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err == nil {
		if err := s.spool.writeFileAtomic(filepath.Join(dir, spoolReportFile), buf.Bytes()); err != nil {
			s.cfg.Logf("job %s: writing report: %v", j.id, err)
		}
	} else {
		s.cfg.Logf("job %s: rendering report: %v", j.id, err)
	}
	buf.Reset()
	if err := snap.WritePrometheus(&buf); err == nil {
		if err := s.spool.writeFileAtomic(filepath.Join(dir, spoolMetricsFile), buf.Bytes()); err != nil {
			s.cfg.Logf("job %s: writing metrics: %v", j.id, err)
		}
	}
}
