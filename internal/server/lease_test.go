package server

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/checkpoint/faultfs"
)

// Unit coverage for the lease protocol — the primitive the multi-daemon
// differential (daemon_multi_test.go) composes. Every property proven
// here is one the takeover harness relies on.

func leaseSpool(t *testing.T) *spool {
	t.Helper()
	sp, err := newSpool(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func mkJobDir(t *testing.T, sp *spool, id string) {
	t.Helper()
	if err := sp.fsys.MkdirAll(sp.jobDir(id)); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseCodec(t *testing.T) {
	now := time.Now().UTC().Truncate(time.Second)
	rec := &leaseRecord{Job: "j-1", Owner: "a-1", Epoch: 3, Heartbeat: now, Released: true}
	got, err := decodeLease(encodeLease(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got.Job != rec.Job || got.Owner != rec.Owner || got.Epoch != rec.Epoch ||
		!got.Heartbeat.Equal(rec.Heartbeat) || !got.Released {
		t.Fatalf("round trip mangled the record: %+v", got)
	}

	full := encodeLease(rec)
	bad := [][]byte{
		nil,
		[]byte("{"),
		full[:len(full)/2], // torn write
		append(append([]byte{}, full...), []byte(`{"job":"x"}`)...), // trailing data
		[]byte(`{"job":"j","owner":"","epoch":1,"heartbeat":"2026-01-01T00:00:00Z"}`),
		[]byte(`{"job":"j","owner":"a","epoch":0,"heartbeat":"2026-01-01T00:00:00Z"}`),
		[]byte(`{"job":"j","owner":"a","epoch":1}`), // zero heartbeat
		[]byte(`{"job":"j","owner":"a","epoch":1,"heartbeat":"2026-01-01T00:00:00Z","extra":1}`),
	}
	for i, raw := range bad {
		if _, err := decodeLease(raw); !errors.Is(err, errLeaseCorrupt) {
			t.Errorf("case %d: decodeLease(%q) = %v, want errLeaseCorrupt", i, raw, err)
		}
	}
}

func TestLeaseClaimIsExclusive(t *testing.T) {
	sp := leaseSpool(t)
	mkJobDir(t, sp, "j-1")
	now := time.Now().UTC()
	if err := sp.claimLease("j-1", "a", 1, now); err != nil {
		t.Fatal(err)
	}
	if err := sp.claimLease("j-1", "b", 1, now); !errors.Is(err, errLeaseHeld) {
		t.Fatalf("second claim = %v, want errLeaseHeld", err)
	}
	lease, err := sp.loadLease("j-1")
	if err != nil || lease == nil || lease.Owner != "a" || lease.Epoch != 1 {
		t.Fatalf("lease after racing claims: %+v, %v", lease, err)
	}
}

func TestLeaseRenewVerifyAndFence(t *testing.T) {
	sp := leaseSpool(t)
	mkJobDir(t, sp, "j-1")
	t0 := time.Now().UTC().Add(-time.Minute)
	if err := sp.claimLease("j-1", "a", 1, t0); err != nil {
		t.Fatal(err)
	}
	if err := sp.verifyLease("j-1", "a", 1); err != nil {
		t.Fatalf("owner fails its own verify: %v", err)
	}
	t1 := time.Now().UTC()
	if err := sp.renewLease("j-1", "a", 1, t1, false); err != nil {
		t.Fatal(err)
	}
	lease, _ := sp.loadLease("j-1")
	if lease == nil || !lease.Heartbeat.Equal(t1) {
		t.Fatalf("renewal did not refresh the heartbeat: %+v", lease)
	}
	// Anyone whose (owner, epoch) does not match is fenced.
	if err := sp.renewLease("j-1", "b", 1, t1, false); !errors.Is(err, errLeaseFenced) {
		t.Fatalf("foreign renew = %v, want errLeaseFenced", err)
	}
	if err := sp.renewLease("j-1", "a", 2, t1, false); !errors.Is(err, errLeaseFenced) {
		t.Fatalf("wrong-epoch renew = %v, want errLeaseFenced", err)
	}
	if err := sp.verifyLease("j-1", "b", 1); !errors.Is(err, errLeaseFenced) {
		t.Fatalf("foreign verify = %v, want errLeaseFenced", err)
	}
}

func TestLeaseTakeover(t *testing.T) {
	ttl := time.Minute
	now := time.Now().UTC()

	t.Run("absent lease claims epoch 1", func(t *testing.T) {
		sp := leaseSpool(t)
		mkJobDir(t, sp, "j-1")
		epoch, err := sp.takeoverLease("j-1", "b", now, ttl)
		if err != nil || epoch != 1 {
			t.Fatalf("takeover = (%d, %v), want (1, nil)", epoch, err)
		}
	})

	t.Run("live foreign lease is held", func(t *testing.T) {
		sp := leaseSpool(t)
		mkJobDir(t, sp, "j-1")
		if err := sp.claimLease("j-1", "a", 1, now); err != nil {
			t.Fatal(err)
		}
		if _, err := sp.takeoverLease("j-1", "b", now, ttl); !errors.Is(err, errLeaseHeld) {
			t.Fatalf("takeover of a live lease = %v, want errLeaseHeld", err)
		}
	})

	t.Run("expired lease bumps the epoch", func(t *testing.T) {
		sp := leaseSpool(t)
		mkJobDir(t, sp, "j-1")
		if err := sp.claimLease("j-1", "a", 4, now.Add(-2*ttl)); err != nil {
			t.Fatal(err)
		}
		epoch, err := sp.takeoverLease("j-1", "b", now, ttl)
		if err != nil || epoch != 5 {
			t.Fatalf("takeover = (%d, %v), want (5, nil)", epoch, err)
		}
		// The displaced owner is fenced by the ownership change alone.
		if err := sp.verifyLease("j-1", "a", 4); !errors.Is(err, errLeaseFenced) {
			t.Fatalf("old owner verify = %v, want errLeaseFenced", err)
		}
	})

	t.Run("released lease is claimable before expiry", func(t *testing.T) {
		sp := leaseSpool(t)
		mkJobDir(t, sp, "j-1")
		if err := sp.claimLease("j-1", "a", 2, now); err != nil {
			t.Fatal(err)
		}
		if err := sp.renewLease("j-1", "a", 2, now, true); err != nil {
			t.Fatal(err)
		}
		epoch, err := sp.takeoverLease("j-1", "b", now, ttl)
		if err != nil || epoch != 3 {
			t.Fatalf("takeover of released lease = (%d, %v), want (3, nil)", epoch, err)
		}
	})

	t.Run("corrupt lease restarts at epoch 1", func(t *testing.T) {
		sp := leaseSpool(t)
		mkJobDir(t, sp, "j-1")
		if err := os.WriteFile(sp.leasePath("j-1"), []byte(`{"job":"j-1","ow`), 0o644); err != nil {
			t.Fatal(err)
		}
		epoch, err := sp.takeoverLease("j-1", "b", now, ttl)
		if err != nil || epoch != 1 {
			t.Fatalf("takeover of corrupt lease = (%d, %v), want (1, nil)", epoch, err)
		}
	})

	t.Run("same owner reclaims its own live lease", func(t *testing.T) {
		sp := leaseSpool(t)
		mkJobDir(t, sp, "j-1")
		if err := sp.claimLease("j-1", "a", 1, now); err != nil {
			t.Fatal(err)
		}
		epoch, err := sp.takeoverLease("j-1", "a", now, ttl)
		if err != nil || epoch != 2 {
			t.Fatalf("pinned-owner restart takeover = (%d, %v), want (2, nil)", epoch, err)
		}
	})
}

func TestSweepLeaseDebris(t *testing.T) {
	sp := leaseSpool(t)
	mkJobDir(t, sp, "j-1")
	old := filepath.Join(sp.jobDir("j-1"), spoolLeaseFile+".reap-deadbeef")
	if err := os.WriteFile(old, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	stale := time.Now().Add(-time.Hour)
	if err := os.Chtimes(old, stale, stale); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(sp.jobDir("j-1"), spoolLeaseFile+".tmp123")
	if err := os.WriteFile(fresh, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	sp.sweepLeaseDebris("j-1", time.Now(), time.Minute)
	if _, err := os.Stat(old); !errors.Is(err, os.ErrNotExist) {
		t.Error("stale reap debris survived the sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh debris (possible in-flight takeover) was swept")
	}
}

// Satellite 1: writeFileAtomic must fsync the PARENT directory after
// the rename — and a crash (even a torn one) at that final sync must
// still leave a fully readable record, because the rename preceded it.
func TestWriteFileAtomicSyncsParentDirAfterRename(t *testing.T) {
	payload := bytes.Repeat([]byte("spool-record\n"), 64)

	// Learn the step sequence of one atomic write.
	counter := faultfs.New(checkpoint.OSFS())
	sp, err := newSpool(t.TempDir(), counter)
	if err != nil {
		t.Fatal(err)
	}
	before := counter.Steps()
	if err := sp.writeFileAtomic(filepath.Join(sp.root, "rec.json"), payload); err != nil {
		t.Fatal(err)
	}
	steps := counter.Steps() - before
	// CreateTemp, Write, Sync, Close, Rename, SyncDir — the dir sync
	// existing (and being last) is exactly the regression under test.
	if steps != 6 {
		t.Fatalf("writeFileAtomic performs %d steps, want 6 (is the post-rename SyncDir missing?)", steps)
	}

	for _, torn := range []bool{false, true} {
		for n := 1; n <= steps; n++ {
			fsys := faultfs.New(checkpoint.OSFS())
			sp, err := newSpool(t.TempDir(), fsys)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(sp.root, "rec.json")
			fsys.CrashAt(fsys.Steps()+n, torn)
			werr := sp.writeFileAtomic(path, payload)
			raw, rerr := os.ReadFile(path)
			switch {
			case errors.Is(rerr, os.ErrNotExist):
				// Crash before the rename: no record, no torn bytes. The
				// write must have reported the failure.
				if werr == nil {
					t.Errorf("crash at %d (torn=%v): write claimed success but left no record", n, torn)
				}
			case rerr != nil:
				t.Errorf("crash at %d (torn=%v): reading record: %v", n, torn, rerr)
			default:
				// Record present ⇒ it is the complete payload, never a tear.
				if !bytes.Equal(raw, payload) {
					t.Errorf("crash at %d (torn=%v): torn record (%d bytes)", n, torn, len(raw))
				}
			}
		}
	}

	// The specific satellite case, called out: crash exactly at the
	// post-rename directory sync — the record is already complete.
	fsys := faultfs.New(checkpoint.OSFS())
	sp2, err := newSpool(t.TempDir(), fsys)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(sp2.root, "rec.json")
	fsys.CrashAt(fsys.Steps()+steps, true)
	if err := sp2.writeFileAtomic(path, payload); err == nil {
		t.Fatal("crash at the final SyncDir was not reported")
	}
	raw, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(raw, payload) {
		t.Fatalf("record not fully readable after a crash at the post-rename dir sync: %v", err)
	}
}
