package server

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Metrics is the daemon's own counter set, exported at /metrics in
// Prometheus text format alongside an aggregate of the engine counters
// (internal/obs) across every job this process has run. All fields
// are atomics; the zero value is ready to use.
type Metrics struct {
	JobsAccepted    atomic.Int64 // admitted submissions
	JobsDone        atomic.Int64
	JobsFailed      atomic.Int64
	JobsCanceled    atomic.Int64
	JobsResumed     atomic.Int64 // jobs re-enqueued from the spool at startup
	JobsRequeued    atomic.Int64 // in-flight jobs checkpointed back to queued by a drain
	Retries         atomic.Int64 // job attempts restarted after a transient fault
	RejectsFull     atomic.Int64 // submissions rejected because the queue was full
	RejectsTenant   atomic.Int64 // submissions rejected by the per-tenant cap
	RejectsRate     atomic.Int64 // submissions rejected by the per-tenant token bucket
	RejectsDisk     atomic.Int64 // submissions rejected 507 by the disk-pressure gate
	PanicsContained atomic.Int64

	LeasesAcquired  atomic.Int64 // fresh epoch-1 lease claims (admission + adoption)
	LeaseTakeovers  atomic.Int64 // expired/released/corrupt leases taken over (epoch bumped)
	LeasesFenced    atomic.Int64 // local jobs abandoned after losing their lease
	JobsQuarantined atomic.Int64 // corrupt spool entries moved into .quarantine/
	JobsGCed        atomic.Int64 // terminal spool entries removed after GCTTL

	JournalEvents  atomic.Int64 // events appended to per-job journals
	JournalDropped atomic.Int64 // progress events dropped by the journal size cap
	JournalErrors  atomic.Int64 // journal appends that failed (logged, never fatal)

	QueueDepth   atomic.Int64 // gauge: jobs waiting for a worker
	RunningJobs  atomic.Int64 // gauge: jobs currently executing
	Draining     atomic.Int64 // gauge: 1 while the daemon drains
	DiskPressure atomic.Int64 // gauge: 1 while admission is closed for disk space
}

// ServerHistograms holds the daemon's latency distributions, exported
// as Prometheus histograms at /metrics. The zero value is ready to
// use; all observation paths are atomic.
type ServerHistograms struct {
	// QueueWait is submission-accepted (or requeue) to worker pickup.
	QueueWait obs.Histogram
	// Attempt is the duration of one engine attempt, successful or not.
	Attempt obs.Histogram
	// JobLatency is end-to-end: submission to terminal state.
	JobLatency obs.Histogram
}

type srvRow struct {
	name string
	kind string
	help string
	val  func(*Metrics) float64
}

var srvRows = []srvRow{
	{"sxnmd_jobs_accepted_total", "counter", "Job submissions admitted to the queue.", func(m *Metrics) float64 { return float64(m.JobsAccepted.Load()) }},
	{"sxnmd_jobs_done_total", "counter", "Jobs that completed successfully.", func(m *Metrics) float64 { return float64(m.JobsDone.Load()) }},
	{"sxnmd_jobs_failed_total", "counter", "Jobs that ended in a typed failure.", func(m *Metrics) float64 { return float64(m.JobsFailed.Load()) }},
	{"sxnmd_jobs_canceled_total", "counter", "Jobs canceled by their submitter.", func(m *Metrics) float64 { return float64(m.JobsCanceled.Load()) }},
	{"sxnmd_jobs_resumed_total", "counter", "Jobs re-enqueued from the spool at daemon startup.", func(m *Metrics) float64 { return float64(m.JobsResumed.Load()) }},
	{"sxnmd_jobs_requeued_total", "counter", "In-flight jobs checkpointed back to the queue by a drain.", func(m *Metrics) float64 { return float64(m.JobsRequeued.Load()) }},
	{"sxnmd_retries_total", "counter", "Job attempts restarted after a transient fault.", func(m *Metrics) float64 { return float64(m.Retries.Load()) }},
	{"sxnmd_admission_rejects_full_total", "counter", "Submissions rejected because the job queue was full.", func(m *Metrics) float64 { return float64(m.RejectsFull.Load()) }},
	{"sxnmd_admission_rejects_tenant_total", "counter", "Submissions rejected by the per-tenant concurrency cap.", func(m *Metrics) float64 { return float64(m.RejectsTenant.Load()) }},
	{"sxnmd_admission_rejects_rate_total", "counter", "Submissions rejected by the per-tenant token-bucket rate limit.", func(m *Metrics) float64 { return float64(m.RejectsRate.Load()) }},
	{"sxnmd_admission_rejects_disk_total", "counter", "Submissions rejected 507 by the disk-pressure gate.", func(m *Metrics) float64 { return float64(m.RejectsDisk.Load()) }},
	{"sxnmd_panics_contained_total", "counter", "Worker panics recovered without taking the daemon down.", func(m *Metrics) float64 { return float64(m.PanicsContained.Load()) }},
	{"sxnmd_leases_acquired_total", "counter", "Fresh epoch-1 job leases claimed by this daemon.", func(m *Metrics) float64 { return float64(m.LeasesAcquired.Load()) }},
	{"sxnmd_lease_takeovers_total", "counter", "Expired, released, or corrupt leases taken over from other owners.", func(m *Metrics) float64 { return float64(m.LeaseTakeovers.Load()) }},
	{"sxnmd_leases_fenced_total", "counter", "Local jobs abandoned after their lease was taken over.", func(m *Metrics) float64 { return float64(m.LeasesFenced.Load()) }},
	{"sxnmd_jobs_quarantined_total", "counter", "Corrupt spool entries moved into quarantine.", func(m *Metrics) float64 { return float64(m.JobsQuarantined.Load()) }},
	{"sxnmd_jobs_gced_total", "counter", "Terminal spool entries garbage-collected after their TTL.", func(m *Metrics) float64 { return float64(m.JobsGCed.Load()) }},
	{"sxnmd_journal_events_total", "counter", "Events appended to per-job event journals.", func(m *Metrics) float64 { return float64(m.JournalEvents.Load()) }},
	{"sxnmd_journal_dropped_total", "counter", "Progress events dropped by the journal size cap.", func(m *Metrics) float64 { return float64(m.JournalDropped.Load()) }},
	{"sxnmd_journal_errors_total", "counter", "Journal appends that failed; journaling is best-effort.", func(m *Metrics) float64 { return float64(m.JournalErrors.Load()) }},
	{"sxnmd_queue_depth", "gauge", "Jobs waiting for a worker.", func(m *Metrics) float64 { return float64(m.QueueDepth.Load()) }},
	{"sxnmd_running_jobs", "gauge", "Jobs currently executing.", func(m *Metrics) float64 { return float64(m.RunningJobs.Load()) }},
	{"sxnmd_draining", "gauge", "1 while the daemon is draining, 0 otherwise.", func(m *Metrics) float64 { return float64(m.Draining.Load()) }},
	{"sxnmd_disk_pressure", "gauge", "1 while admission is closed because the spool disk is full.", func(m *Metrics) float64 { return float64(m.DiskPressure.Load()) }},
}

// engineRow maps one aggregated obs.Snapshot counter onto a
// Prometheus sample under the sxnmd_engine_ prefix.
type engineRow struct {
	name string
	help string
	val  func(*obs.Snapshot) float64
}

var engineRows = []engineRow{
	{"sxnmd_engine_window_pairs_total", "Window pair slots visited across all jobs.", func(s *obs.Snapshot) float64 { return float64(s.WindowPairs) }},
	{"sxnmd_engine_comparisons_total", "Distinct similarity computations across all jobs.", func(s *obs.Snapshot) float64 { return float64(s.Comparisons) }},
	{"sxnmd_engine_duplicate_pairs_total", "Pairs classified duplicate across all jobs.", func(s *obs.Snapshot) float64 { return float64(s.DuplicatePairs) }},
	{"sxnmd_engine_sim_cache_hits_total", "Similarity results served from the shared memo layer.", func(s *obs.Snapshot) float64 { return float64(s.SimCacheHits) }},
	{"sxnmd_engine_sim_cache_misses_total", "Similarity results computed and memoized.", func(s *obs.Snapshot) float64 { return float64(s.SimCacheMisses) }},
	{"sxnmd_engine_gk_rows_total", "GK rows generated across all jobs.", func(s *obs.Snapshot) float64 { return float64(s.GKRows) }},
	{"sxnmd_engine_checkpoint_writes_total", "Checkpoint section writes across all jobs.", func(s *obs.Snapshot) float64 { return float64(s.CheckpointWrites) }},
	{"sxnmd_engine_checkpoint_bytes_total", "Bytes written to job checkpoints.", func(s *obs.Snapshot) float64 { return float64(s.CheckpointBytes) }},
	{"sxnmd_engine_spill_runs_total", "External-sort run files written across all jobs.", func(s *obs.Snapshot) float64 { return float64(s.SpillRuns) }},
	{"sxnmd_engine_spill_bytes_written_total", "Run-file bytes written by the spill path across all jobs.", func(s *obs.Snapshot) float64 { return float64(s.SpillBytesWritten) }},
	{"sxnmd_engine_resumed_candidates_total", "Candidates adopted from checkpoints instead of re-detected.", func(s *obs.Snapshot) float64 { return float64(s.ResumedCandidates) }},
	{"sxnmd_engine_resumed_pairs_total", "Duplicate pairs seeded from checkpoints.", func(s *obs.Snapshot) float64 { return float64(s.ResumedPairs) }},
}

// WritePrometheus renders the daemon counters plus the aggregated
// engine counters in the Prometheus text exposition format.
func (m *Metrics) WritePrometheus(w io.Writer, engine obs.Snapshot) error {
	for _, r := range srvRows {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n",
			r.name, r.help, r.name, r.kind, r.name, r.val(m)); err != nil {
			return err
		}
	}
	for _, r := range engineRows {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %v\n",
			r.name, r.help, r.name, r.name, r.val(&engine)); err != nil {
			return err
		}
	}
	return nil
}

// engineAgg accumulates the engine counters of finished job runs so
// the /metrics aggregate is monotonic even as job records are evicted
// from memory.
type engineAgg struct {
	mu  sync.Mutex
	sum obs.Snapshot
}

// add folds one job's final counters into the aggregate. Only the
// monotonic counter fields are summed; gauges and rates are
// per-job and stay out of the aggregate.
func (a *engineAgg) add(s obs.Snapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	addSnapshot(&a.sum, s)
}

func (a *engineAgg) total(live ...obs.Snapshot) obs.Snapshot {
	a.mu.Lock()
	sum := a.sum
	a.mu.Unlock()
	for _, s := range live {
		addSnapshot(&sum, s)
	}
	return sum
}

func addSnapshot(dst *obs.Snapshot, s obs.Snapshot) {
	dst.WindowPairs += s.WindowPairs
	dst.Comparisons += s.Comparisons
	dst.FilteredOut += s.FilteredOut
	dst.DuplicatePairs += s.DuplicatePairs
	dst.ODSimCalls += s.ODSimCalls
	dst.DescSimCalls += s.DescSimCalls
	dst.SimCacheHits += s.SimCacheHits
	dst.SimCacheMisses += s.SimCacheMisses
	dst.SimCacheEvictions += s.SimCacheEvictions
	dst.DescSetsInterned += s.DescSetsInterned
	dst.GKRows += s.GKRows
	dst.PassesDone += s.PassesDone
	dst.CandidatesDone += s.CandidatesDone
	dst.CheckpointWrites += s.CheckpointWrites
	dst.CheckpointBytes += s.CheckpointBytes
	dst.SpillRuns += s.SpillRuns
	dst.SpillRunsReused += s.SpillRunsReused
	dst.SpillBytesWritten += s.SpillBytesWritten
	dst.SpillBytesRead += s.SpillBytesRead
	dst.ResumedCandidates += s.ResumedCandidates
	dst.ResumedPairs += s.ResumedPairs
}
