package server

import (
	"container/list"
	"sync"

	"repro/internal/similarity"
)

// cachePool shares similarity memo caches across jobs. A cache's
// value-pair entries are keyed by OD field *index*, so a cache is only
// valid for runs of the same configuration — the pool therefore keys
// by (config fingerprint, candidate name) and a job only ever receives
// caches minted for its own config. Within that key, sharing across
// jobs is safe and deterministic: every similarity Func is pure, so a
// warm cache changes CPU time and hit counters, never results.
//
// Two bounds keep a long-lived daemon from accumulating state:
//   - an LRU over (config, candidate) entries, for config churn;
//   - per-cache rotation once the descendant-set intern table (the
//     one unbounded layer inside a Cache) exceeds maxDescSets — the
//     entry is replaced by a fresh cache, trading warmth for memory.
type cachePool struct {
	mu          sync.Mutex
	maxEntries  int
	maxDescSets int64
	cacheSize   int
	lru         *list.List // of *poolEntry, front = most recent
	byKey       map[poolKey]*list.Element
}

type poolKey struct {
	configFP  string
	candidate string
}

type poolEntry struct {
	key   poolKey
	cache *similarity.Cache
}

func newCachePool(maxEntries, cacheSize int, maxDescSets int64) *cachePool {
	if maxEntries <= 0 {
		maxEntries = 64
	}
	if maxDescSets <= 0 {
		maxDescSets = 1 << 20
	}
	return &cachePool{
		maxEntries:  maxEntries,
		maxDescSets: maxDescSets,
		cacheSize:   cacheSize,
		lru:         list.New(),
		byKey:       make(map[poolKey]*list.Element),
	}
}

// providerFor returns the Options.SimCacheFor hook for one job: a
// function handing each candidate the pooled cache for (configFP,
// candidate). Concurrent jobs with the same config share cache
// instances; similarity.Cache is concurrency-safe.
func (p *cachePool) providerFor(configFP string) func(candidate string) *similarity.Cache {
	return func(candidate string) *similarity.Cache {
		return p.get(poolKey{configFP: configFP, candidate: candidate})
	}
}

func (p *cachePool) get(key poolKey) *similarity.Cache {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.byKey[key]; ok {
		ent := el.Value.(*poolEntry)
		if ent.cache.Stats().DescSets > p.maxDescSets {
			ent.cache = similarity.NewCache(p.cacheSize)
		}
		p.lru.MoveToFront(el)
		return ent.cache
	}
	ent := &poolEntry{key: key, cache: similarity.NewCache(p.cacheSize)}
	p.byKey[key] = p.lru.PushFront(ent)
	for p.lru.Len() > p.maxEntries {
		oldest := p.lru.Back()
		p.lru.Remove(oldest)
		delete(p.byKey, oldest.Value.(*poolEntry).key)
	}
	return ent.cache
}

// len reports the live entry count (tests).
func (p *cachePool) len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}
