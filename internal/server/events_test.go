package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	sxnm "repro"
)

// parseSSE splits a raw SSE stream into (id, event, data) frames.
type sseFrame struct {
	id    string
	event string
	data  string
}

func parseSSE(t *testing.T, raw string) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	for _, line := range strings.Split(raw, "\n") {
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur != (sseFrame{}) {
				frames = append(frames, cur)
				cur = sseFrame{}
			}
		}
	}
	return frames
}

// lifecycleOf drops the high-rate checkpoint-progress events, leaving
// the lifecycle skeleton tests assert on.
func lifecycleOf(types []string) []string {
	var out []string
	for _, typ := range types {
		if typ != EventProgress {
			out = append(out, typ)
		}
	}
	return out
}

func eventTypes(frames []sseFrame) []string {
	types := make([]string, len(frames))
	for i, f := range frames {
		types[i] = f.event
	}
	return types
}

func jobEvents(t *testing.T, s *Server, id string) []JobEvent {
	t.Helper()
	f, err := os.Open(s.spool.journalPath(id))
	if err != nil {
		t.Fatalf("opening journal: %v", err)
	}
	defer f.Close()
	evs, perr := ParseJournal(f)
	if perr != nil {
		t.Fatalf("parsing journal: %v", perr)
	}
	return evs
}

// TestEventJournalLifecycle pins the happy-path timeline: a successful
// job's journal reads admitted → queued → attempt-start → finished,
// with owner, epoch, and strictly increasing sequence numbers.
func TestEventJournalLifecycle(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postJob(t, ts, testBody(t, nil))
	id, _ := body["id"].(string)
	waitTerminal(t, s, id)

	evs := jobEvents(t, s, id)
	var types []string
	var progress int
	for i, ev := range evs {
		types = append(types, ev.Type)
		if ev.Type == EventProgress {
			progress++
			if ev.Progress == nil {
				t.Errorf("event %d: progress event without a progress payload", i)
			}
		}
		if ev.Seq != int64(i+1) {
			t.Errorf("event %d: seq %d", i, ev.Seq)
		}
		if ev.Job != id {
			t.Errorf("event %d: job %q, want %q", i, ev.Job, id)
		}
		if ev.Owner == "" || ev.Epoch != 1 {
			t.Errorf("event %d: owner %q epoch %d", i, ev.Owner, ev.Epoch)
		}
	}
	want := []string{EventAdmitted, EventQueued, EventAttempt, EventFinished}
	if got := lifecycleOf(types); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("timeline %v, want %v", got, want)
	}
	if progress == 0 {
		t.Error("no checkpoint-progress events journaled for a checkpointed run")
	}
	fin := evs[len(evs)-1]
	if fin.State != StateDone || fin.Attempt != 1 {
		t.Errorf("finished event: state %q attempt %d", fin.State, fin.Attempt)
	}
	if s.Met.JournalEvents.Load() < int64(len(evs)) {
		t.Errorf("JournalEvents = %d < %d events on disk", s.Met.JournalEvents.Load(), len(evs))
	}
}

// TestEventJournalRetryCause pins that a transient failure leaves a
// retry event carrying its cause, and the finished event counts every
// attempt.
func TestEventJournalRetryCause(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, func(c *Config) {
		c.Runner = func(ctx context.Context, det *sxnm.Detector, doc *sxnm.Document, fsys sxnm.CheckpointFS, dir string) (*sxnm.Result, error) {
			if calls.Add(1) == 1 {
				return nil, errors.New("synthetic transient fault")
			}
			return defaultRunner(ctx, det, doc, fsys, dir)
		}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postJob(t, ts, testBody(t, nil))
	id, _ := body["id"].(string)
	waitTerminal(t, s, id)

	evs := jobEvents(t, s, id)
	var retries, attempts int
	for _, ev := range evs {
		switch ev.Type {
		case EventRetry:
			retries++
			if !strings.Contains(ev.Cause, "synthetic transient fault") {
				t.Errorf("retry cause %q", ev.Cause)
			}
		case EventAttempt:
			attempts++
		}
	}
	if retries != 1 || attempts != 2 {
		t.Fatalf("retries=%d attempts=%d, want 1 and 2", retries, attempts)
	}
	fin := evs[len(evs)-1]
	if fin.Type != EventFinished || fin.State != StateDone || fin.Attempt != 2 {
		t.Fatalf("finished event %+v", fin)
	}
}

// TestEventJournalDrainPark pins that draining with a job in flight
// journals a drain-park event — the timeline explains why the job
// stopped without finishing.
func TestEventJournalDrainPark(t *testing.T) {
	runner, release := blockingRunner()
	defer release()
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Runner = runner
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postJob(t, ts, testBody(t, nil))
	id, _ := body["id"].(string)
	waitFor(t, func() bool { return s.Met.RunningJobs.Load() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Drain(ctx)

	evs := jobEvents(t, s, id)
	last := evs[len(evs)-1]
	if last.Type != EventDrainPark || last.Cause != "drain" {
		t.Fatalf("last event after drain = %+v, want drain-park", last)
	}
}

func TestEventsSSEReplayFinishedJob(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postJob(t, ts, testBody(t, nil))
	id, _ := body["id"].(string)
	waitTerminal(t, s, id)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	// The stream must terminate on its own at the terminal event.
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	frames := parseSSE(t, string(raw))
	want := []string{EventAdmitted, EventQueued, EventAttempt, EventFinished}
	if got := lifecycleOf(eventTypes(frames)); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	for i, f := range frames {
		if f.id == "" || f.data == "" {
			t.Errorf("frame %d incomplete: %+v", i, f)
		}
		if !strings.Contains(f.data, `"schema":"`+JournalSchema+`"`) {
			t.Errorf("frame %d data lacks schema: %s", i, f.data)
		}
	}
	if frames[0].id != "1" {
		t.Errorf("first frame id %q, want 1", frames[0].id)
	}
}

func TestEventsSSELiveTail(t *testing.T) {
	runner, release := blockingRunner()
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Runner = runner
		c.EventPollInterval = 5 * time.Millisecond
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postJob(t, ts, testBody(t, nil))
	id, _ := body["id"].(string)
	waitFor(t, func() bool { return s.Met.RunningJobs.Load() == 1 })

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read the live stream frame by frame. The first three events exist
	// before release; the finished event only streams after it.
	events := make(chan string, 32)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if ev, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
				events <- ev
			}
		}
	}()
	var got []string
	next := func() string {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("stream ended early after %v", got)
			}
			got = append(got, ev)
			return ev
		case <-time.After(10 * time.Second):
			t.Fatalf("no event within 10s; got %v", got)
			return ""
		}
	}
	for _, want := range []string{EventAdmitted, EventQueued, EventAttempt} {
		if ev := next(); ev != want {
			t.Fatalf("event %v, want %s (so far %v)", ev, want, got)
		}
	}

	// Nothing else is journaled while the job is parked.
	select {
	case ev := <-events:
		t.Fatalf("unexpected event %q while job parked", ev)
	case <-time.After(50 * time.Millisecond):
	}

	release()
	// The released run streams its checkpoint progress live, then ends.
	for {
		if ev := next(); ev == EventFinished {
			break
		} else if ev != EventProgress {
			t.Fatalf("post-release event %q, want progress or finished", ev)
		}
	}
	// Terminal event closes the stream server-side.
	if ev, ok := <-events; ok {
		t.Fatalf("stream still open after terminal event; got %q", ev)
	}
}

func TestEventsSSELastEventIDResume(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postJob(t, ts, testBody(t, nil))
	id, _ := body["id"].(string)
	waitTerminal(t, s, id)

	req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	frames := parseSSE(t, string(raw))
	want := []string{EventAttempt, EventFinished}
	if got := lifecycleOf(eventTypes(frames)); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("resumed replay %v, want %v (events ≤2 must be filtered)", got, want)
	}
	if frames[0].id != "3" {
		t.Errorf("first resumed id %q, want 3", frames[0].id)
	}
}

func TestEventsJournalDisabled(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.DisableJournal = true })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postJob(t, ts, testBody(t, nil))
	id, _ := body["id"].(string)
	waitTerminal(t, s, id)

	// No journal file was written…
	if _, err := os.Stat(s.spool.journalPath(id)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("journal file exists with journaling disabled (stat err %v)", err)
	}
	// …and the stream endpoint refuses with the typed code.
	resp, b := getJSON(t, ts.URL+"/v1/jobs/"+id+"/events")
	if resp.StatusCode != http.StatusConflict || errCode(t, b) != "journal-disabled" {
		t.Fatalf("got %d %v, want 409 journal-disabled", resp.StatusCode, b)
	}
}

func TestEventsUnknownJob(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, b := getJSON(t, ts.URL+"/v1/jobs/nope/events")
	if resp.StatusCode != http.StatusNotFound || errCode(t, b) != "unknown-job" {
		t.Fatalf("got %d %v", resp.StatusCode, b)
	}
}

func TestFleetEndpoint(t *testing.T) {
	runner, release := blockingRunner()
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Runner = runner
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postJob(t, ts, testBody(t, nil))
	id, _ := body["id"].(string)
	waitFor(t, func() bool { return s.Met.RunningJobs.Load() == 1 })

	var st FleetStatus
	getTyped := func() {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/fleet")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fleet status %d", resp.StatusCode)
		}
		st = FleetStatus{}
		if err := jsonDecode(resp.Body, &st); err != nil {
			t.Fatal(err)
		}
	}

	getTyped()
	if st.Daemon.Owner != s.owner || st.Daemon.RunningJobs != 1 {
		t.Fatalf("daemon section %+v", st.Daemon)
	}
	if st.Jobs.Total != 1 || st.Jobs.Unfinished != 1 {
		t.Fatalf("job totals %+v", st.Jobs)
	}
	if len(st.Owners) != 1 {
		t.Fatalf("owners %+v", st.Owners)
	}
	o := st.Owners[0]
	if o.Owner != s.owner || !o.Self || o.Jobs != 1 || o.MaxEpoch != 1 || !o.Live {
		t.Fatalf("self owner row %+v", o)
	}

	release()
	waitTerminal(t, s, id)
	getTyped()
	if st.Jobs.Terminal != 1 || st.Jobs.Unfinished != 0 {
		t.Fatalf("post-finish totals %+v", st.Jobs)
	}
	if st.Daemon.JournalEvents == 0 {
		t.Error("daemon section reports zero journal events after a run")
	}
}

// TestDaemonMetricsLint runs a real job and then holds the daemon's
// whole /metrics exposition — counters, engine aggregate, and the four
// histogram families — to the Prometheus text-format linter.
func TestDaemonMetricsLint(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postJob(t, ts, testBody(t, nil))
	id, _ := body["id"].(string)
	waitTerminal(t, s, id)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := sxnm.LintPrometheus(raw); err != nil {
		t.Fatalf("daemon exposition does not lint: %v", err)
	}
	text := string(raw)
	for _, want := range []string{
		"sxnmd_journal_events_total",
		`sxnmd_queue_wait_seconds_bucket{le="+Inf"} 1`,
		`sxnmd_attempt_duration_seconds_count 1`,
		`sxnmd_job_duration_seconds_count 1`,
		"sxnmd_engine_phase_duration_seconds_bucket{phase=",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func jsonDecode(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}
