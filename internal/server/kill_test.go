package server

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	sxnm "repro"
	"repro/internal/checkpoint"
	"repro/internal/checkpoint/faultfs"
)

// The daemon acceptance harness: kill the daemon at EVERY durable I/O
// step of a job's run, restart it over the same spool, and require one
// of exactly two outcomes — the restarted daemon completes the job
// with clusters byte-identical to an uninterrupted run, or fails it
// with a typed error. Silent corruption and wrong answers are the
// outlawed third outcome.
//
// The "kill" is simulated at the same fidelity as the checkpoint
// layer's own crash suite: a faultfs that fails the n-th filesystem
// operation (optionally tearing the in-flight write) and everything
// after it, which is what a SIGKILL looks like to the checkpoint
// directory. The crashed attempt runs the exact engine call a worker
// makes (defaultRunner); the job is spooled first, as admission would
// have done, and outcome.json is never written — a killed process
// cannot write one — so recovery sees an unfinished job.

func killFixture(t *testing.T) (*sxnm.Detector, *sxnm.Document) {
	t.Helper()
	cfg, err := sxnm.LoadConfig(strings.NewReader(testConfigXML))
	if err != nil {
		t.Fatal(err)
	}
	det, err := sxnm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := sxnm.ParseXMLString(testDocXML)
	if err != nil {
		t.Fatal(err)
	}
	return det, doc
}

func TestDaemonKilledAtEveryStep(t *testing.T) {
	det, doc := killFixture(t)

	// Reference: an uninterrupted checkpointed run.
	ref, err := det.RunCheckpointed(doc, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(clustersOf(ref))
	if err != nil {
		t.Fatal(err)
	}

	// Learn how many filesystem steps one full run performs.
	counter := faultfs.New(checkpoint.OSFS())
	if _, err := det.RunCheckpointedFSContext(context.Background(), doc, counter, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	steps := counter.Steps()
	if steps < 10 {
		t.Fatalf("suspiciously few steps (%d); harness is not exercising the checkpoint path", steps)
	}

	for _, torn := range []bool{false, true} {
		for n := 1; n <= steps; n++ {
			spoolDir := t.TempDir()
			sp, err := newSpool(spoolDir, nil)
			if err != nil {
				t.Fatal(err)
			}
			const id = "j-kill"
			j := &job{
				id:        id,
				req:       &JobRequest{Tenant: "default", ConfigXML: testConfigXML, DocumentXML: testDocXML},
				submitted: time.Now().UTC(),
			}
			if err := sp.admit(j); err != nil {
				t.Fatal(err)
			}

			// Generation 1 runs the job and dies at step n.
			fsys := faultfs.New(checkpoint.OSFS())
			fsys.CrashAt(n, torn)
			_, runErr := defaultRunner(context.Background(), det, doc, fsys, sp.checkpointDir(id))
			if runErr == nil && !fsys.Crashed() {
				t.Fatalf("crash point %d (torn=%v) never fired within %d steps", n, torn, steps)
			}

			// Generation 2: a fresh daemon over the spool the "killed"
			// process left behind.
			srv, err := New(Config{
				SpoolDir:       spoolDir,
				Workers:        1,
				RetryBaseDelay: time.Millisecond,
			})
			if err != nil {
				t.Fatalf("crash at %d (torn=%v): restart: %v", n, torn, err)
			}
			if got := srv.Met.JobsResumed.Load(); got != 1 {
				t.Fatalf("crash at %d (torn=%v): JobsResumed = %d, want 1", n, torn, got)
			}
			rec := waitTerminal(t, srv, id)
			rec.mu.Lock()
			st, code, msg := rec.state, rec.errCode, rec.errMsg
			rec.mu.Unlock()
			switch st {
			case StateDone:
				out, err := srv.spool.loadOutcome(id)
				if err != nil || out == nil {
					t.Fatalf("crash at %d (torn=%v): outcome unreadable: %v", n, torn, err)
				}
				got, _ := json.Marshal(out.Clusters)
				if !bytes.Equal(got, want) {
					t.Errorf("crash at %d (torn=%v): resumed clusters differ\nwant %s\ngot  %s",
						n, torn, want, got)
				}
			case StateFailed:
				if code == "" {
					t.Errorf("crash at %d (torn=%v): failed without a typed code: %s", n, torn, msg)
				}
			default:
				t.Errorf("crash at %d (torn=%v): terminal state %s", n, torn, st)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			srv.Drain(ctx)
			cancel()
		}
	}
}

// A spooled job whose checkpoint belongs to a DIFFERENT document (an
// operator restored the wrong directory, or the spool was tampered
// with) must fail fast with the typed mismatch code — never retry,
// never silently mix state.
func TestRestartChecksCheckpointIdentity(t *testing.T) {
	det, _ := killFixture(t)
	otherDoc, err := sxnm.ParseXMLString(`<movie_database><movies>` +
		`<movie year="2001"><title>Amelie</title><people><person>Audrey Tautou</person></people></movie>` +
		`</movies></movie_database>`)
	if err != nil {
		t.Fatal(err)
	}

	spoolDir := t.TempDir()
	sp, err := newSpool(spoolDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	const id = "j-mismatch"
	j := &job{
		id:        id,
		req:       &JobRequest{Tenant: "default", ConfigXML: testConfigXML, DocumentXML: testDocXML},
		submitted: time.Now().UTC(),
	}
	if err := sp.admit(j); err != nil {
		t.Fatal(err)
	}
	// Plant a finished checkpoint of the wrong document in the job's
	// checkpoint directory.
	if _, err := det.RunCheckpointed(otherDoc, sp.checkpointDir(id)); err != nil {
		t.Fatal(err)
	}

	srv, err := New(Config{SpoolDir: spoolDir, Workers: 1, RetryBaseDelay: time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()
	rec := waitTerminal(t, srv, id)
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.state != StateFailed || rec.errCode != "checkpoint-mismatch" {
		t.Fatalf("state = %s code %q, want failed/checkpoint-mismatch", rec.state, rec.errCode)
	}
	if rec.attempts != 1 {
		t.Errorf("mismatch was retried: attempts = %d", rec.attempts)
	}
}
