package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/obs"
)

// The per-job event journal is the spool's flight recorder: one
// append-only JSONL file per job directory,
//
//	<spool>/<job-id>/journal.jsonl
//	    {"e":{"schema":"sxnm/events/v1","seq":1,...},"crc":"89abcdef"}
//	    {"e":{"schema":"sxnm/events/v1","seq":2,...},"crc":"0f1e2d3c"}
//
// recording every lifecycle transition the job goes through — across
// daemons. Because the file lives with the job, a lease takeover
// hands the new owner the old owner's history: the adopting daemon
// keeps appending to the same file, so the full fleet-wide timeline
// of a job is reconstructible from one place.
//
// Frame format: each line wraps the event JSON in {"e":…,"crc":…}
// where crc is the CRC-32 (IEEE) of the event's exact bytes, hex
// encoded. The checksum is over the raw inner bytes, so schema
// evolution inside the event never invalidates old frames, and a torn
// tail (a crash mid-append) is detected as such rather than decoded
// as garbage.
//
// Durability and crash-safety: every append goes through the
// checkpoint.FS seam (OpenAppend + one Write + Sync + Close), so the
// faultfs kill harness covers journal I/O like all other spool
// writes. A crash can tear at most the final line; the next opener
// detects the unterminated tail and starts its first append with a
// repair newline, turning the torn frame into one skippable corrupt
// line while every event before and after it stays readable. Journal
// writes are strictly best-effort: a failed append is logged and
// counted, never a job or daemon failure — outcome.json remains the
// source of truth, the journal is the explanation.
//
// Versioning rule: events carry Schema = JournalSchema
// ("sxnm/events/v1"). Readers MUST ignore frames whose schema they do
// not recognize (forward compatibility) and unknown fields within a
// known schema (the decoder here does not reject them). Writers may
// add fields freely under v1; removing or re-typing a field requires
// bumping to v2.

// JournalSchema identifies the journal event layout version.
const JournalSchema = "sxnm/events/v1"

const spoolJournalFile = "journal.jsonl"

// Journal event types. Each event carries the fields that make it
// reconstructible: owner+epoch on everything, attempt numbers and
// retry causes on the attempt track, prev owner/epoch on takeovers.
const (
	EventAdmitted    = "admitted"            // job durably spooled and leased
	EventQueued      = "queued"              // placed on a daemon's run queue
	EventAttempt     = "attempt-start"       // one engine attempt begins
	EventRetry       = "retry"               // transient fault; will re-attempt
	EventProgress    = "checkpoint-progress" // engine wrote a durable checkpoint
	EventDrainPark   = "drain-park"          // drain interrupted; parked resumable
	EventTakeover    = "lease-takeover"      // another daemon claimed the lease
	EventFenced      = "fenced"              // a previous owner was fenced off
	EventQuarantined = "quarantined"         // entry moved to .quarantine/
	EventFinished    = "finished"            // terminal: done, failed, or canceled
)

// JobEvent is one journal entry. Zero-valued optional fields are
// omitted from the wire form.
type JobEvent struct {
	Schema  string    `json:"schema"`
	Seq     int64     `json:"seq"`
	Time    time.Time `json:"time"`
	Job     string    `json:"job"`
	Type    string    `json:"type"`
	Owner   string    `json:"owner,omitempty"`
	Epoch   int64     `json:"epoch,omitempty"`
	Attempt int       `json:"attempt,omitempty"`
	// Cause explains retries, parks, and quarantines.
	Cause string `json:"cause,omitempty"`
	// State and ErrorCode qualify finished events.
	State     JobState `json:"state,omitempty"`
	ErrorCode string   `json:"error_code,omitempty"`
	// PrevOwner/PrevEpoch on lease-takeover and fenced events tie the
	// ownership chain together.
	PrevOwner string `json:"prev_owner,omitempty"`
	PrevEpoch int64  `json:"prev_epoch,omitempty"`
	// Progress snapshots the engine counters on checkpoint-progress,
	// drain-park, and finished events.
	Progress *JobProgress `json:"progress,omitempty"`
}

// JobProgress is the compact engine-progress slice carried by
// progress-bearing events.
type JobProgress struct {
	CandidatesDone   int64 `json:"candidates_done"`
	CandidatesTotal  int64 `json:"candidates_total,omitempty"`
	PassesDone       int64 `json:"passes_done"`
	DuplicatePairs   int64 `json:"duplicate_pairs"`
	CheckpointWrites int64 `json:"checkpoint_writes"`
	CheckpointBytes  int64 `json:"checkpoint_bytes,omitempty"`
}

// Terminal reports whether this event ends the job's timeline.
func (e *JobEvent) Terminal() bool {
	return e.Type == EventFinished || e.Type == EventQuarantined
}

// Typed journal read outcomes. Torn = the final line lacks its
// newline or fails its checksum (a crash mid-append); Corrupt = a
// mid-file line is damaged (bit rot, or a repaired tear). Both come
// back WITH every decodable event — the prefix is always usable.
var (
	ErrJournalTorn    = errors.New("server: torn journal tail")
	ErrJournalCorrupt = errors.New("server: corrupt journal record")
)

// errJournalFull is the internal signal that the retention cap
// dropped a droppable event.
var errJournalFull = errors.New("server: journal at retention cap")

// encodeEvent renders one framed journal line, newline-terminated.
func encodeEvent(ev *JobEvent) []byte {
	body, _ := json.Marshal(ev) // no unmarshalable fields; cannot fail
	return []byte(fmt.Sprintf("{\"e\":%s,\"crc\":\"%08x\"}\n", body, crc32.ChecksumIEEE(body)))
}

// journalLine is one decoded frame plus its raw inner bytes (which
// the SSE stream passes through verbatim).
type journalLine struct {
	Ev  JobEvent
	Raw []byte
}

// decodeJournalLine verifies and decodes one frame (without its
// trailing newline).
func decodeJournalLine(line []byte) (journalLine, error) {
	var frame struct {
		E   json.RawMessage `json:"e"`
		CRC string          `json:"crc"`
	}
	if err := json.Unmarshal(line, &frame); err != nil {
		return journalLine{}, fmt.Errorf("undecodable frame: %w", err)
	}
	if len(frame.E) == 0 {
		return journalLine{}, errors.New("frame without event")
	}
	var sum uint32
	if _, err := fmt.Sscanf(frame.CRC, "%08x", &sum); err != nil || len(frame.CRC) != 8 {
		return journalLine{}, errors.New("malformed checksum")
	}
	if got := crc32.ChecksumIEEE(frame.E); got != sum {
		return journalLine{}, fmt.Errorf("checksum mismatch (want %08x, got %08x)", sum, got)
	}
	var ev JobEvent
	if err := json.Unmarshal(frame.E, &ev); err != nil {
		return journalLine{}, fmt.Errorf("undecodable event: %w", err)
	}
	if ev.Seq < 1 || ev.Type == "" {
		return journalLine{}, errors.New("event missing seq or type")
	}
	return journalLine{Ev: ev, Raw: append([]byte(nil), frame.E...)}, nil
}

// scanJournal walks raw journal bytes and returns every decodable
// line, the offset just past the last complete (newline-terminated)
// line, and the typed error for whatever damage it found. Events of
// schemas this reader does not know are skipped, per the versioning
// rule. It never panics on any input.
func scanJournal(data []byte) (lines []journalLine, complete int64, err error) {
	pos := 0
	for pos < len(data) {
		nl := bytes.IndexByte(data[pos:], '\n')
		if nl < 0 {
			// Unterminated tail: a torn append. The prefix stands.
			if err == nil {
				err = fmt.Errorf("%w: %d unterminated byte(s) at offset %d", ErrJournalTorn, len(data)-pos, pos)
			}
			return lines, int64(pos), err
		}
		line := data[pos : pos+nl]
		pos += nl + 1
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		jl, derr := decodeJournalLine(line)
		if derr != nil {
			if err == nil {
				err = fmt.Errorf("%w: %v", ErrJournalCorrupt, derr)
			}
			continue
		}
		if jl.Ev.Schema != JournalSchema {
			continue // unknown version: ignore, do not fail
		}
		lines = append(lines, jl)
	}
	return lines, int64(pos), err
}

// ParseJournal decodes a journal stream into its events. The returned
// events are always the usable prefix/subset; err (ErrJournalTorn or
// ErrJournalCorrupt, wrapped with detail) reports damage.
func ParseJournal(r io.Reader) ([]JobEvent, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	lines, _, serr := scanJournal(data)
	events := make([]JobEvent, 0, len(lines))
	for _, l := range lines {
		events = append(events, l.Ev)
	}
	return events, serr
}

// journal is the append side, one per live job. Appends are
// serialized by mu; each opens, writes one synced line, and closes,
// so no descriptor outlives the append and a crash tears at most one
// frame. The struct is nil-safe: a nil journal (journaling disabled)
// swallows every append.
type journal struct {
	path     string
	fsys     checkpoint.FS
	maxBytes int64 // soft cap; ≤0 = unbounded

	mu         sync.Mutex
	nextSeq    int64
	size       int64
	needRepair bool // existing file ends without '\n' (torn tail)
}

func (s *spool) journalPath(id string) string {
	return filepath.Join(s.jobDir(id), spoolJournalFile)
}

// openJournal binds an appender to a job's journal, learning the next
// sequence number and tail state from whatever is on disk — including
// a previous owner's events, which is how a takeover continues the
// timeline instead of restarting it.
func (s *spool) openJournal(id string, maxBytes int64) *journal {
	jr := &journal{path: s.journalPath(id), fsys: s.fsys, maxBytes: maxBytes, nextSeq: 1}
	raw, err := os.ReadFile(jr.path)
	if err != nil {
		return jr // absent (the common case) or unreadable: start fresh
	}
	lines, _, _ := scanJournal(raw)
	for _, l := range lines {
		if l.Ev.Seq >= jr.nextSeq {
			jr.nextSeq = l.Ev.Seq + 1
		}
	}
	jr.size = int64(len(raw))
	jr.needRepair = len(raw) > 0 && raw[len(raw)-1] != '\n'
	return jr
}

// append stamps schema/seq/time onto ev and durably appends it.
// Returns errJournalFull when the retention cap drops a droppable
// event; any other error means the event did not land.
func (jr *journal) append(ev *JobEvent) error {
	if jr == nil {
		return nil
	}
	jr.mu.Lock()
	defer jr.mu.Unlock()
	ev.Schema = JournalSchema
	ev.Seq = jr.nextSeq
	if ev.Time.IsZero() {
		ev.Time = time.Now().UTC()
	}
	line := encodeEvent(ev)
	if jr.maxBytes > 0 && jr.size+int64(len(line)) > jr.maxBytes && ev.Type == EventProgress {
		// Over the cap, high-rate progress events yield; lifecycle
		// events keep appending so the timeline stays complete.
		return errJournalFull
	}
	f, err := jr.fsys.OpenAppend(jr.path)
	if err != nil {
		return err
	}
	if jr.needRepair {
		if _, err := f.Write([]byte("\n")); err != nil {
			f.Close()
			return err
		}
		jr.size++
		jr.needRepair = false
	}
	_, werr := f.Write(line)
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	jr.size += int64(len(line))
	jr.nextSeq++
	return nil
}

// journalAppend emits one event onto j's journal, filling in the
// common identity fields and keeping journal failures observational:
// logged and counted, never propagated into the job lifecycle.
func (s *Server) journalAppend(j *job, ev JobEvent) {
	if j == nil || j.jr == nil {
		return
	}
	ev.Job = j.id
	if ev.Owner == "" {
		ev.Owner = s.owner
	}
	if ev.Epoch == 0 {
		j.mu.Lock()
		ev.Epoch = j.epoch
		j.mu.Unlock()
	}
	s.appendEvent(j.jr, ev)
}

// appendEvent writes ev through jr with the server's error
// accounting; used directly for events not tied to a live job
// (quarantine).
func (s *Server) appendEvent(jr *journal, ev JobEvent) {
	err := jr.append(&ev)
	switch {
	case err == nil:
		s.Met.JournalEvents.Add(1)
	case errors.Is(err, errJournalFull):
		s.Met.JournalDropped.Add(1)
	default:
		s.Met.JournalErrors.Add(1)
		s.cfg.Logf("job %s: journal append (%s): %v", ev.Job, ev.Type, err)
	}
}

// progressOf compacts a job's live engine counters into the
// journal-sized progress slice.
func (s *Server) progressOf(j *job) *JobProgress {
	m := j.ob.Metrics()
	p := &JobProgress{
		CandidatesDone:   m.CandidatesDone.Load(),
		CandidatesTotal:  m.CandidatesTotal.Load(),
		PassesDone:       m.PassesDone.Load(),
		DuplicatePairs:   m.DuplicatePairs.Load(),
		CheckpointWrites: m.CheckpointWrites.Load(),
		CheckpointBytes:  m.CheckpointBytes.Load(),
	}
	if *p == (JobProgress{}) {
		return nil
	}
	return p
}

// progressSink forwards the engine's checkpoint spans into
// checkpoint-progress journal events: every time the run makes
// durable progress, the journal says how far it got — which is what
// makes a takeover's "resumed from where?" answerable after the fact.
type progressSink struct {
	s *Server
	j *job
}

// Emit implements obs.Sink. Only checkpoint spans are journaled, so
// the event rate tracks durable progress, not the hot loop.
func (p *progressSink) Emit(r obs.Record) {
	if r.Kind != "span" || r.Name != obs.SpanCheckpoint {
		return
	}
	j := p.j
	j.mu.Lock()
	fenced := j.fenced
	j.mu.Unlock()
	if fenced {
		// A fenced daemon writes NOTHING to the spool — the journal
		// included; the new owner's events are the truth now.
		return
	}
	pr := p.s.progressOf(j)
	if pr == nil {
		// Nothing measurable yet (the run's very first checkpoint): an
		// empty progress event would say nothing.
		return
	}
	p.s.journalAppend(j, JobEvent{Type: EventProgress, Progress: pr})
}

// readJournalLinesFrom reads and decodes the journal from a byte
// offset, returning the new lines, the offset just past the last
// complete line, and any damage error — the SSE tail loop's read
// primitive. A missing journal is (nil, offset, nil).
func (s *spool) readJournalLinesFrom(id string, offset int64) ([]journalLine, int64, error) {
	f, err := os.Open(s.journalPath(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, offset, nil
	}
	if err != nil {
		return nil, offset, err
	}
	defer f.Close()
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return nil, offset, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, offset, err
	}
	lines, complete, serr := scanJournal(data)
	return lines, offset + complete, serr
}
