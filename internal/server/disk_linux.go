//go:build linux

package server

import "syscall"

// osFreeBytes reports the free bytes available to unprivileged
// writers on the filesystem holding dir.
func osFreeBytes(dir string) (uint64, error) {
	var st syscall.Statfs_t
	if err := syscall.Statfs(dir, &st); err != nil {
		return 0, err
	}
	return st.Bavail * uint64(st.Bsize), nil
}
