package server

import (
	"errors"
	"strings"
	"testing"
	"time"

	sxnm "repro"
)

// FuzzJobConfigDecode throws arbitrary bytes at the admission path —
// JSON decode, request validation, and config compilation — and
// requires the daemon's contract: never panic, and reject with a typed
// 4xx (every rejection carries a stable code and a 400-range status).
func FuzzJobConfigDecode(f *testing.F) {
	f.Add(`{"config_xml":"` + jsonEscape(testConfigXML) + `","document_xml":"<a/>"}`)
	f.Add(`{"config_xml":"<sxnm-config/>","document_xml":"<a/>"}`)
	f.Add(`{}`)
	f.Add(`{"tenant":"../../etc","config_xml":"x","document_xml":"y"}`)
	f.Add(`{"config_xml":"x","document_xml":"y","limits":{"timeout_ms":-1}}`)
	f.Add(`{"config_xml":"x","document_xml":"y"}{"config_xml":"x","document_xml":"y"}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"config_xml":"<sxnm-config window=\"0\"><candidate name=\"m\" xpath=\"//m\"/></sxnm-config>","document_xml":"<a/>"}`)
	f.Add("\x00\xff\xfe")

	f.Fuzz(func(t *testing.T, body string) {
		req, apiErr := DecodeJobRequest(strings.NewReader(body))
		if apiErr != nil {
			if req != nil {
				t.Fatal("rejected request returned non-nil")
			}
			if apiErr.Status < 400 || apiErr.Status >= 500 {
				t.Fatalf("decode rejection status %d, want 4xx (code %s)", apiErr.Status, apiErr.Code)
			}
			if apiErr.Code == "" {
				t.Fatal("decode rejection without a code")
			}
			return
		}
		if cfg, cerr := req.CompileConfig(); cerr != nil {
			if cfg != nil {
				t.Fatal("rejected config returned non-nil")
			}
			if cerr.Status < 400 || cerr.Status >= 500 || cerr.Code == "" {
				t.Fatalf("config rejection %d/%q, want typed 4xx", cerr.Status, cerr.Code)
			}
		}
		ceiling := sxnm.Limits{Timeout: time.Second, MaxDepth: 64, MaxNodes: 1 << 16, MaxComparisons: 1 << 16}
		if _, lerr := effectiveLimits(req.Limits, sxnm.Limits{}, ceiling); lerr != nil {
			if lerr.Status < 400 || lerr.Status >= 500 || lerr.Code == "" {
				t.Fatalf("limits rejection %d/%q, want typed 4xx", lerr.Status, lerr.Code)
			}
		}
	})
}

func jsonEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`, "\t", `\t`)
	return r.Replace(s)
}

// FuzzLeaseDecode throws arbitrary bytes at the lease codec — the file
// every daemon sharing a spool trusts for mutual exclusion. Contract:
// never panic; anything that is not a complete well-formed record is
// the typed errLeaseCorrupt (which takeover treats as expired); and an
// accepted record survives an encode/decode round trip unchanged, so
// two daemons can never read the same lease bytes differently.
func FuzzLeaseDecode(f *testing.F) {
	f.Add([]byte(`{"job":"j-1","owner":"host-1-ab","epoch":1,"heartbeat":"2026-08-08T00:00:00Z"}`))
	f.Add([]byte(`{"job":"j-1","owner":"a","epoch":3,"heartbeat":"2026-08-08T00:00:00Z","released":true}`))
	f.Add(encodeLease(&leaseRecord{Job: "j", Owner: "o", Epoch: 9, Heartbeat: time.Date(2026, 8, 8, 1, 2, 3, 0, time.UTC)}))
	f.Add([]byte(`{"job":"j","owner":"a","ep`)) // torn write
	f.Add([]byte(`{"job":"j","owner":"","epoch":1,"heartbeat":"2026-08-08T00:00:00Z"}`))
	f.Add([]byte(`{"job":"j","owner":"a","epoch":0,"heartbeat":"2026-08-08T00:00:00Z"}`))
	f.Add([]byte(`{"job":"j","owner":"a","epoch":1}`))
	f.Add([]byte(`{}{}`))
	f.Add([]byte(nil))
	f.Add([]byte("\x00\xff\xfe"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		rec, err := decodeLease(raw)
		if err != nil {
			if rec != nil {
				t.Fatal("rejected lease returned non-nil")
			}
			if !errors.Is(err, errLeaseCorrupt) {
				t.Fatalf("lease rejection %v is not errLeaseCorrupt", err)
			}
			return
		}
		if rec.Owner == "" || len(rec.Owner) > 256 || rec.Epoch < 1 || rec.Heartbeat.IsZero() {
			t.Fatalf("decode accepted an invalid record: %+v", rec)
		}
		back, err := decodeLease(encodeLease(rec))
		if err != nil {
			t.Fatalf("re-encoded lease does not decode: %v", err)
		}
		if back.Job != rec.Job || back.Owner != rec.Owner || back.Epoch != rec.Epoch ||
			!back.Heartbeat.Equal(rec.Heartbeat) || back.Released != rec.Released {
			t.Fatalf("lease round trip drifted: %+v vs %+v", rec, back)
		}
	})
}
