package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// The spool is the daemon's durable state: one directory per job
// holding the submission itself, the run's checkpoint and spill
// state, and — once the job stops — its outcome and run report.
//
//	<spool>/<job-id>/
//	    job.json      the submission (written atomically at admission)
//	    checkpoint/   crash-safe engine checkpoint (RunCheckpointed)
//	    spill/        external-sort run files, pinned to the checkpoint
//	    outcome.json  terminal state + clusters + stats (absent ⇒ not finished)
//	    report.json   per-candidate per-pass run report (all stop paths)
//	    metrics.prom  final engine counters, Prometheus text format
//
// The invariant a restart relies on: a job directory with job.json
// but no outcome.json is unfinished work and is re-enqueued; its
// checkpoint directory carries whatever progress the previous
// process made, so the resumed run continues instead of restarting.

const (
	spoolJobFile     = "job.json"
	spoolOutcomeFile = "outcome.json"
	spoolReportFile  = "report.json"
	spoolMetricsFile = "metrics.prom"
	spoolCkptDir     = "checkpoint"
	spoolSpillDir    = "spill"
)

// spooledJob is the on-disk form of one admitted submission.
type spooledJob struct {
	ID        string      `json:"id"`
	Submitted time.Time   `json:"submitted"`
	Request   *JobRequest `json:"request"`
}

type spool struct {
	root string
}

func newSpool(root string) (*spool, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating spool: %w", err)
	}
	return &spool{root: root}, nil
}

func (s *spool) jobDir(id string) string      { return filepath.Join(s.root, id) }
func (s *spool) checkpointDir(id string) string { return filepath.Join(s.root, id, spoolCkptDir) }
func (s *spool) spillDir(id string) string    { return filepath.Join(s.root, id, spoolSpillDir) }

// admit persists a fresh submission. The job.json write is atomic
// (tmp + rename), so a crash mid-admission leaves either a complete
// record or a directory without job.json, which recovery skips.
func (s *spool) admit(j *job) error {
	dir := s.jobDir(j.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: spooling job %s: %w", j.id, err)
	}
	rec := spooledJob{ID: j.id, Submitted: j.submitted, Request: j.req}
	return writeJSONAtomic(filepath.Join(dir, spoolJobFile), rec)
}

// finish records a terminal outcome. Jobs requeued by a drain never
// reach here — the absence of outcome.json is what marks them
// resumable.
func (s *spool) finish(id string, out *Outcome) error {
	return writeJSONAtomic(filepath.Join(s.jobDir(id), spoolOutcomeFile), out)
}

// remove deletes a job's spool directory (cancel of a queued job, or
// administrative cleanup).
func (s *spool) remove(id string) error {
	return os.RemoveAll(s.jobDir(id))
}

// loadOutcome returns the terminal record, or nil if the job never
// finished (the resumable case).
func (s *spool) loadOutcome(id string) (*Outcome, error) {
	raw, err := os.ReadFile(filepath.Join(s.jobDir(id), spoolOutcomeFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out Outcome
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("server: corrupt outcome for job %s: %w", id, err)
	}
	return &out, nil
}

// scan reads every spooled job, oldest submission first. Entries
// without a readable job.json (crash mid-admission, stray files) are
// skipped rather than failing startup.
func (s *spool) scan() ([]*spooledJob, error) {
	ents, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("server: scanning spool: %w", err)
	}
	var jobs []*spooledJob
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(s.root, ent.Name(), spoolJobFile))
		if err != nil {
			continue
		}
		var rec spooledJob
		if err := json.Unmarshal(raw, &rec); err != nil || rec.ID != ent.Name() || rec.Request == nil {
			continue
		}
		jobs = append(jobs, &rec)
	}
	sort.Slice(jobs, func(i, k int) bool {
		if !jobs[i].Submitted.Equal(jobs[k].Submitted) {
			return jobs[i].Submitted.Before(jobs[k].Submitted)
		}
		return jobs[i].ID < jobs[k].ID
	})
	return jobs, nil
}

// writeJSONAtomic writes v as indented JSON via a temp file and
// rename, so readers never observe a torn document.
func writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("server: encoding %s: %w", filepath.Base(path), err)
	}
	data = append(data, '\n')
	return writeFileAtomic(path, data)
}

func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("server: writing %s: %w", filepath.Base(path), err)
	}
	_, werr := tmp.Write(data)
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: writing %s: %w", filepath.Base(path), werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: writing %s: %w", filepath.Base(path), err)
	}
	return nil
}
