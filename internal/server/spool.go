package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/checkpoint"
)

// The spool is the daemons' durable state: one directory per job
// holding the submission itself, the run's checkpoint and spill
// state, the job's ownership lease, and — once the job stops — its
// outcome and run report.
//
//	<spool>/<job-id>/
//	    job.json      the submission (written atomically at admission)
//	    lease.json    ownership: owner id + epoch + heartbeat (lease.go)
//	    checkpoint/   crash-safe engine checkpoint (RunCheckpointed)
//	    spill/        external-sort run files, pinned to the checkpoint
//	    outcome.json  terminal state + clusters + stats (absent ⇒ not finished)
//	    report.json   per-candidate per-pass run report (all stop paths)
//	    metrics.prom  final engine counters, Prometheus text format
//	<spool>/.quarantine/<job-id>-<nanos>/
//	    …             a corrupt entry, moved aside; quarantine.json says why
//
// The invariant recovery relies on: a job directory with job.json but
// no outcome.json is unfinished work; whichever daemon holds (or
// legitimately takes over) its lease resumes it from its checkpoint.
// Multiple daemons may share one spool — every claim goes through the
// lease protocol in lease.go, never through directory ownership.
//
// All spool writes flow through the checkpoint.FS seam, so the fault
// harness can crash a daemon at any spool I/O step exactly as it does
// for checkpoint I/O. Reads stay plain os reads, mirroring the
// checkpoint layer: recovery always happens over whatever bytes
// actually reached the disk.

const (
	spoolJobFile       = "job.json"
	spoolOutcomeFile   = "outcome.json"
	spoolReportFile    = "report.json"
	spoolMetricsFile   = "metrics.prom"
	spoolCkptDir       = "checkpoint"
	spoolSpillDir      = "spill"
	spoolQuarantineDir = ".quarantine"
	quarantineFile     = "quarantine.json"
)

// spooledJob is the on-disk form of one admitted submission.
type spooledJob struct {
	ID        string      `json:"id"`
	Submitted time.Time   `json:"submitted"`
	Request   *JobRequest `json:"request"`
}

type spool struct {
	root string
	fsys checkpoint.FS
}

func newSpool(root string, fsys checkpoint.FS) (*spool, error) {
	if fsys == nil {
		fsys = checkpoint.OSFS()
	}
	if err := fsys.MkdirAll(root); err != nil {
		return nil, fmt.Errorf("server: creating spool: %w", err)
	}
	return &spool{root: root, fsys: fsys}, nil
}

func (s *spool) jobDir(id string) string        { return filepath.Join(s.root, id) }
func (s *spool) checkpointDir(id string) string { return filepath.Join(s.root, id, spoolCkptDir) }
func (s *spool) spillDir(id string) string      { return filepath.Join(s.root, id, spoolSpillDir) }

// admit persists a fresh submission. The job.json write is atomic
// (tmp + rename + dir fsync), so a crash mid-admission leaves either
// a complete record or a directory without job.json, which the sweep
// eventually clears.
func (s *spool) admit(j *job) error {
	dir := s.jobDir(j.id)
	if err := s.fsys.MkdirAll(dir); err != nil {
		return fmt.Errorf("server: spooling job %s: %w", j.id, err)
	}
	rec := spooledJob{ID: j.id, Submitted: j.submitted, Request: j.req}
	return s.writeJSONAtomic(filepath.Join(dir, spoolJobFile), rec)
}

// finish records a terminal outcome. Jobs requeued by a drain never
// reach here — the absence of outcome.json is what marks them
// resumable.
func (s *spool) finish(id string, out *Outcome) error {
	return s.writeJSONAtomic(filepath.Join(s.jobDir(id), spoolOutcomeFile), out)
}

// remove deletes a job's spool directory (TTL garbage collection, or
// administrative cleanup).
func (s *spool) remove(id string) error {
	return s.fsys.RemoveAll(s.jobDir(id))
}

// quarantine moves a corrupt job directory into .quarantine/ and
// records the typed reason inside it. The move is a rename, so the
// bad entry disappears from the scan atomically; corruption costs the
// operator one directory to inspect, never a daemon crash.
func (s *spool) quarantine(id, reason string, now time.Time) error {
	qroot := filepath.Join(s.root, spoolQuarantineDir)
	if err := s.fsys.MkdirAll(qroot); err != nil {
		return fmt.Errorf("server: quarantining %s: %w", id, err)
	}
	dst := filepath.Join(qroot, fmt.Sprintf("%s-%d", id, now.UnixNano()))
	if err := s.fsys.Rename(s.jobDir(id), dst); err != nil {
		return fmt.Errorf("server: quarantining %s: %w", id, err)
	}
	s.fsys.SyncDir(s.root)
	// Best-effort: the move already isolated the entry; a crash before
	// the reason file leaves an unexplained-but-contained directory.
	s.writeJSONAtomic(filepath.Join(dst, quarantineFile), map[string]any{
		"job":            id,
		"reason":         reason,
		"quarantined_at": now,
	})
	return nil
}

// loadOutcome returns the terminal record, or nil if the job never
// finished (the resumable case). An unreadable outcome is a typed
// corruption error — the sweep quarantines those.
func (s *spool) loadOutcome(id string) (*Outcome, error) {
	raw, err := os.ReadFile(filepath.Join(s.jobDir(id), spoolOutcomeFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out Outcome
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("server: corrupt outcome for job %s: %w", id, err)
	}
	return &out, nil
}

// spoolEntry is one directory the scan classified.
type spoolEntry struct {
	id  string
	rec *spooledJob // nil ⇒ corrupt
	err error       // why rec is nil
}

// scan reads every spooled job, oldest submission first. Directories
// whose job.json exists but does not decode (or names a different
// job) come back as corrupt entries for the sweep to quarantine;
// directories with NO job.json at all (crash mid-admission) are
// skipped here and aged out by the sweep.
func (s *spool) scan() ([]spoolEntry, error) {
	ents, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("server: scanning spool: %w", err)
	}
	var out []spoolEntry
	for _, ent := range ents {
		if !ent.IsDir() || ent.Name()[0] == '.' {
			continue
		}
		id := ent.Name()
		raw, err := os.ReadFile(filepath.Join(s.root, id, spoolJobFile))
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			out = append(out, spoolEntry{id: id, err: fmt.Errorf("reading job.json: %w", err)})
			continue
		}
		var rec spooledJob
		if err := json.Unmarshal(raw, &rec); err != nil {
			out = append(out, spoolEntry{id: id, err: fmt.Errorf("decoding job.json: %w", err)})
			continue
		}
		if rec.ID != id || rec.Request == nil {
			out = append(out, spoolEntry{id: id, err: fmt.Errorf("job.json names %q, directory is %q", rec.ID, id)})
			continue
		}
		out = append(out, spoolEntry{id: id, rec: &rec})
	}
	sort.Slice(out, func(i, k int) bool {
		ri, rk := out[i].rec, out[k].rec
		switch {
		case ri == nil || rk == nil:
			return out[i].id < out[k].id
		case !ri.Submitted.Equal(rk.Submitted):
			return ri.Submitted.Before(rk.Submitted)
		default:
			return out[i].id < out[k].id
		}
	})
	return out, nil
}

// sweepAdmissionDebris removes job directories that never got a
// job.json (a crash between MkdirAll and the admission write) once
// they are older than ttl. scan skips these, so without this pass
// they would accumulate forever.
func (s *spool) sweepAdmissionDebris(now time.Time, ttl time.Duration) {
	ents, err := os.ReadDir(s.root)
	if err != nil {
		return
	}
	for _, ent := range ents {
		if !ent.IsDir() || ent.Name()[0] == '.' {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.root, ent.Name(), spoolJobFile)); !errors.Is(err, os.ErrNotExist) {
			continue
		}
		if info, err := ent.Info(); err == nil && now.Sub(info.ModTime()) > ttl {
			s.fsys.RemoveAll(filepath.Join(s.root, ent.Name()))
		}
	}
}

// probeWrite checks whether the spool can still take a small durable
// write — the recovery probe that clears the disk-pressure gate.
func (s *spool) probeWrite() error {
	tmp, err := s.fsys.CreateTemp(s.root, ".probe*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(make([]byte, 4096))
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	s.fsys.Remove(tmp.Name())
	return werr
}

// writeJSONAtomic writes v as indented JSON via a temp file and
// rename, so readers never observe a torn document.
func (s *spool) writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("server: encoding %s: %w", filepath.Base(path), err)
	}
	data = append(data, '\n')
	return s.writeFileAtomic(path, data)
}

// writeFileAtomic runs the temp-write/fsync/rename/dir-fsync
// sequence: after the rename, the PARENT directory is synced so the
// new directory entry itself survives power loss — the same contract
// the checkpoint layer keeps for its section files.
func (s *spool) writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := s.fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("server: writing %s: %w", filepath.Base(path), err)
	}
	_, werr := tmp.Write(data)
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		s.fsys.Remove(tmp.Name())
		return fmt.Errorf("server: writing %s: %w", filepath.Base(path), werr)
	}
	if err := s.fsys.Rename(tmp.Name(), path); err != nil {
		s.fsys.Remove(tmp.Name())
		return fmt.Errorf("server: writing %s: %w", filepath.Base(path), err)
	}
	if err := s.fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("server: syncing %s: %w", dir, err)
	}
	return nil
}
