package freedb

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gen/toxgene"
	"repro/internal/xmltree"
)

func TestGenerateCount(t *testing.T) {
	doc := Generate(DefaultOptions(500, 42))
	discs := doc.ElementsByPath("cds/disc")
	if len(discs) != 500 {
		t.Fatalf("discs = %d, want 500", len(discs))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultOptions(200, 7))
	b := Generate(DefaultOptions(200, 7))
	if a.String() != b.String() {
		t.Error("same seed must generate identical corpora")
	}
}

func TestDiscSchema(t *testing.T) {
	doc := Generate(DefaultOptions(300, 1))
	for _, d := range doc.ElementsByPath("cds/disc") {
		if _, ok := d.Attr(toxgene.GoldAttr); !ok {
			t.Fatal("disc without gold id")
		}
		if _, ok := d.Attr(CategoryAttr); !ok {
			t.Fatal("disc without category")
		}
		if d.FirstChildElement("artist") == nil {
			t.Fatal("disc without artist")
		}
		if d.FirstChildElement("dtitle") == nil {
			t.Fatal("disc without dtitle")
		}
		if tr := d.FirstChildElement("tracks"); tr != nil {
			for _, title := range tr.ChildElements("title") {
				if title.Text() == "" {
					t.Fatal("empty track title")
				}
				if _, ok := title.Attr(toxgene.GoldAttr); !ok {
					t.Fatal("track title without gold id")
				}
			}
		}
	}
}

func TestPlantedDuplicatesShareGold(t *testing.T) {
	opts := DefaultOptions(2000, 3)
	opts.DupRate = 0.1
	doc := Generate(opts)
	count := map[string]int{}
	for _, d := range doc.ElementsByPath("cds/disc") {
		g, _ := d.Attr(toxgene.GoldAttr)
		count[g]++
	}
	pairs := 0
	for _, c := range count {
		if c > 2 {
			t.Errorf("gold id repeated %d times, want at most 2", c)
		}
		if c == 2 {
			pairs++
		}
	}
	if pairs < 50 {
		t.Errorf("only %d duplicate pairs planted, expected many at rate 0.1", pairs)
	}
}

func TestCleanOptionsNoDuplicates(t *testing.T) {
	doc := Generate(CleanOptions(500, 5))
	seen := map[string]bool{}
	for _, d := range doc.ElementsByPath("cds/disc") {
		g, _ := d.Attr(toxgene.GoldAttr)
		if seen[g] {
			t.Fatalf("clean corpus contains duplicate gold %q", g)
		}
		seen[g] = true
	}
}

func TestSeriesPathology(t *testing.T) {
	opts := DefaultOptions(3000, 11)
	opts.SeriesRate = 0.1
	doc := Generate(opts)
	series := 0
	cdNumbered := 0
	for _, d := range doc.ElementsByPath("cds/disc") {
		cat, _ := d.Attr(CategoryAttr)
		if cat != CategorySeries {
			continue
		}
		series++
		title := d.FirstChildElement("dtitle").Text()
		if strings.Contains(title, "(CD") {
			cdNumbered++
		}
	}
	if series == 0 {
		t.Fatal("no series discs generated")
	}
	if cdNumbered != series {
		t.Errorf("series discs without (CDn) suffix: %d of %d", series-cdNumbered, series)
	}
}

func TestSeriesDiscsAreDistinctObjects(t *testing.T) {
	opts := DefaultOptions(2000, 13)
	opts.SeriesRate = 0.1
	opts.DupRate = 0
	doc := Generate(opts)
	seen := map[string]bool{}
	for _, d := range doc.ElementsByPath("cds/disc") {
		g, _ := d.Attr(toxgene.GoldAttr)
		if seen[g] {
			t.Fatal("series discs must have distinct gold ids")
		}
		seen[g] = true
	}
}

func TestUnreadablePathology(t *testing.T) {
	opts := DefaultOptions(3000, 17)
	opts.UnreadableRate = 0.1
	doc := Generate(opts)
	unreadable := 0
	for _, d := range doc.ElementsByPath("cds/disc") {
		cat, _ := d.Attr(CategoryAttr)
		if cat != CategoryUnreadable {
			continue
		}
		unreadable++
		artist := d.FirstChildElement("artist").Text()
		for _, r := range artist {
			if r != '?' && r != '#' && r != '*' && r != '~' && r != ' ' {
				t.Fatalf("unreadable artist contains readable rune %q: %s", r, artist)
			}
		}
	}
	if unreadable == 0 {
		t.Fatal("no unreadable discs generated")
	}
}

func TestDIDPresence(t *testing.T) {
	opts := DefaultOptions(3000, 19)
	opts.SeriesRate = 0.15
	opts.UnreadableRate = 0.1
	doc := Generate(opts)
	seriesTotal, seriesWithDID := 0, 0
	unreadableTotal, unreadableWithDID := 0, 0
	for _, d := range doc.ElementsByPath("cds/disc") {
		cat, _ := d.Attr(CategoryAttr)
		hasDID := d.FirstChildElement("did") != nil
		switch cat {
		case CategorySeries:
			seriesTotal++
			if hasDID {
				seriesWithDID++
			}
		case CategoryUnreadable:
			unreadableTotal++
			if hasDID {
				unreadableWithDID++
			}
		}
	}
	if seriesTotal == 0 || unreadableTotal == 0 {
		t.Fatal("missing pathology discs")
	}
	// FreeDB disc IDs come from track offsets: series discs keep them
	// (so the did-led key never sorts a series together) while
	// corrupted submissions usually lose them.
	if float64(seriesWithDID)/float64(seriesTotal) < 0.8 {
		t.Errorf("series discs with did: %d/%d, expected vast majority", seriesWithDID, seriesTotal)
	}
	if float64(unreadableWithDID)/float64(unreadableTotal) > 0.4 {
		t.Errorf("unreadable discs with did: %d/%d, expected few", unreadableWithDID, unreadableTotal)
	}
}

func TestTypoChangesStrings(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	changed := 0
	for i := 0; i < 100; i++ {
		if typo(r, "Silent River") != "Silent River" {
			changed++
		}
	}
	if changed < 90 {
		t.Errorf("typo changed only %d/100", changed)
	}
	if typo(r, "") != "" {
		t.Error("typo on empty string must be empty")
	}
}

func TestNodeIDsUnique(t *testing.T) {
	doc := Generate(DefaultOptions(500, 23))
	seen := map[int]bool{}
	doc.Root.Walk(func(n *xmltree.Node) bool {
		if seen[n.ID] {
			t.Fatalf("duplicate node id %d", n.ID)
		}
		seen[n.ID] = true
		return true
	})
}
