// Package freedb synthesizes a FreeDB-like CD corpus. The paper
// evaluates on data extracted from the FreeDB dump (Data sets 2 and 3);
// that dump cannot be shipped, so this generator produces discs with
// the same schema —
//
//	<disc>
//	  <did>…</did> <artist>…</artist> <dtitle>…</dtitle>
//	  <genre>…</genre> <year>…</year>
//	  <tracks><title>…</title>…</tracks>
//	</disc>
//
// — and, crucially, the corpus pathologies the paper's precision
// analysis identifies in Fig. 4(d):
//
//   - multi-disc series differing only in a single number, e.g.
//     "Christmas Songs (CD1)" vs. "Christmas Songs (CD2)", often by
//     various artists;
//   - discs whose text failed to enter the database in readable form
//     (Japanese/Russian mojibake), so only year and genre are usable;
//   - genuine duplicate submissions of the same CD, sometimes sharing
//     the FreeDB disc ID and sometimes not.
//
// Every disc carries a hidden gold identifier (duplicate submissions
// share it) and a Category attribute naming its pathology, which the
// evaluation harness uses for the false-positive taxonomy. SXNM reads
// neither attribute.
package freedb

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/gen/toxgene"
	"repro/internal/xmltree"
)

// CategoryAttr labels each disc with its pathology for the FP
// taxonomy of Fig. 4(d); values are CategoryNormal etc.
const CategoryAttr = "x-cat"

// Disc categories.
const (
	CategoryNormal     = "normal"
	CategorySeries     = "series"
	CategoryVarious    = "various"
	CategoryUnreadable = "unreadable"
)

// Options configure corpus synthesis. Rates are fractions of N and
// should sum to well below 1; the remainder are normal discs.
type Options struct {
	N    int
	Seed int64
	// DupRate is the fraction of discs that receive one genuine
	// duplicate submission (sharing the gold ID). The duplicate pair
	// counts toward N.
	DupRate float64
	// ShareDIDRate is the fraction of duplicate submissions that keep
	// the original's FreeDB disc ID (the rest get fresh IDs).
	ShareDIDRate float64
	// SeriesRate is the fraction of discs that belong to a multi-disc
	// series; each series emits 2–3 discs differing in "(CD n)".
	SeriesRate float64
	// UnreadableRate is the fraction of discs with mojibake text.
	UnreadableRate float64
	// MissingDIDRate / MissingYearRate / MissingGenreRate drop the
	// optional elements, matching FreeDB's patchy metadata. Series and
	// unreadable discs lose their did far more often (see source).
	MissingDIDRate   float64
	MissingYearRate  float64
	MissingGenreRate float64
	// TracksMin/TracksMax bound the per-disc track count.
	TracksMin, TracksMax int
}

// DefaultOptions returns the rates used by the Data set 3 experiments:
// mostly normal discs with a thin layer of genuine duplicates and the
// two dominant FP pathologies.
func DefaultOptions(n int, seed int64) Options {
	return Options{
		N:                n,
		Seed:             seed,
		DupRate:          0.03,
		ShareDIDRate:     0.6,
		SeriesRate:       0.008,
		UnreadableRate:   0.004,
		MissingDIDRate:   0.03,
		MissingYearRate:  0.25,
		MissingGenreRate: 0.2,
		TracksMin:        4,
		TracksMax:        14,
	}
}

// CleanOptions returns options for Data set 2's base corpus: distinct
// clean discs only (duplicates are added afterwards by the dirty
// generator, one per disc, as in the paper).
func CleanOptions(n int, seed int64) Options {
	o := DefaultOptions(n, seed)
	o.DupRate = 0
	o.SeriesRate = 0.02
	o.UnreadableRate = 0.01
	return o
}

// Generate synthesizes the corpus.
func Generate(opts Options) *xmltree.Document {
	if opts.N < 0 {
		panic("freedb: negative N")
	}
	if opts.TracksMax < opts.TracksMin {
		opts.TracksMax = opts.TracksMin
	}
	g := &generator{
		opts:   opts,
		r:      rand.New(rand.NewSource(opts.Seed)),
		titles: make(map[string]bool),
	}
	root := xmltree.NewElement("cds")
	for g.emitted < opts.N {
		g.emitDisc(root)
	}
	return xmltree.NewDocument(root)
}

type generator struct {
	opts    Options
	r       *rand.Rand
	emitted int
	goldSeq int
	trackID int
	titles  map[string]bool
	artists []string
}

func (g *generator) emitDisc(root *xmltree.Node) {
	r := g.r
	switch {
	case r.Float64() < g.opts.SeriesRate:
		g.emitSeries(root)
	case r.Float64() < g.opts.UnreadableRate:
		g.emitUnreadable(root)
	case r.Float64() < g.opts.DupRate:
		g.emitDuplicatePair(root)
	default:
		g.emitNormal(root)
	}
}

func (g *generator) emitNormal(root *xmltree.Node) {
	d := g.newDiscData(CategoryNormal)
	root.AppendChild(g.build(d))
	g.emitted++
}

// emitDuplicatePair emits a disc plus one genuine duplicate submission
// with small textual variations, sharing the gold ID.
func (g *generator) emitDuplicatePair(root *xmltree.Node) {
	d := g.newDiscData(CategoryNormal)
	root.AppendChild(g.build(d))
	g.emitted++
	if g.emitted >= g.opts.N {
		return
	}
	dup := d // copy
	// Resubmissions carry light edits: the artist is retyped more
	// often than the album title, and neither is usually mangled at
	// the start — so the title-led key keeps true duplicates adjacent,
	// and the did-led key contributes few detections of its own (the
	// paper's "multi-pass cumulates the false positives" asymmetry).
	dup.artist = typo(g.r, d.artist)
	if g.r.Float64() < 0.6 {
		dup.title = typoTail(g.r, d.title)
	}
	if g.r.Float64() >= g.opts.ShareDIDRate {
		dup.did = g.newDID()
	}
	dup.tracks = make([]track, len(d.tracks))
	for i, t := range d.tracks {
		dup.tracks[i] = track{gold: t.gold, title: typo(g.r, t.title)}
	}
	root.AppendChild(g.build(dup))
	g.emitted++
}

// emitSeries emits 2–3 discs of a multi-disc set: same artist (often
// "Various"), titles differing only in the disc number, distinct
// tracks, distinct gold IDs — the paper's dominant FP source.
func (g *generator) emitSeries(root *xmltree.Node) {
	r := g.r
	base := g.freshTitle()
	artist := g.artistName()
	cat := CategorySeries
	if r.Float64() < 0.6 {
		artist = "Various"
		cat = CategorySeries // various-ness is tracked via the artist text
	}
	genre := toxgene.Genres[r.Intn(len(toxgene.Genres))]
	year := g.yearValue()
	n := 2 + r.Intn(2)
	for i := 1; i <= n && g.emitted < g.opts.N; i++ {
		d := discData{
			gold:   g.newGold(),
			cat:    cat,
			did:    g.newDID(),
			artist: artist,
			title:  fmt.Sprintf("%s (CD%d)", base, i),
			genre:  genre,
			year:   year,
			tracks: g.newTracks(),
		}
		// FreeDB disc IDs are computed from track offsets and are
		// effectively always present; series discs get distinct ones,
		// so the did-led key never sorts a series together, while the
		// title-led key does (the paper's key-1-vs-key-2 asymmetry).
		if r.Float64() < g.opts.MissingDIDRate {
			d.did = ""
		}
		root.AppendChild(g.build(d))
		g.emitted++
	}
}

// emitUnreadable emits a disc whose text is mojibake; only year and
// genre carry signal, mirroring the paper's Japanese/Russian entries.
func (g *generator) emitUnreadable(root *xmltree.Node) {
	r := g.r
	// Each corrupted submission renders in one replacement glyph
	// (different source encodings corrupt differently), so only
	// same-family discs look alike — without this, transitive closure
	// would merge every unreadable disc into one giant false cluster.
	glyph := []byte{'?', '#', '*', '~'}[r.Intn(4)]
	d := discData{
		gold:   g.newGold(),
		cat:    CategoryUnreadable,
		artist: mojibake(r, glyph),
		title:  mojibake(r, glyph),
		genre:  toxgene.Genres[r.Intn(len(toxgene.Genres))],
		year:   g.yearValue(),
	}
	// Corrupted submissions usually lose their disc ID too, so pairs
	// of unreadable discs compare only on their (identical-looking)
	// replacement text.
	if r.Float64() < 0.15 {
		d.did = g.newDID()
	}
	k := g.opts.TracksMin + r.Intn(g.opts.TracksMax-g.opts.TracksMin+1)
	for i := 0; i < k; i++ {
		d.tracks = append(d.tracks, track{gold: g.newTrackGold(), title: mojibake(r, glyph)})
	}
	root.AppendChild(g.build(d))
	g.emitted++
}

type track struct {
	gold  string
	title string
}

type discData struct {
	gold   string
	cat    string
	did    string
	artist string
	title  string
	genre  string
	year   string
	tracks []track
}

func (g *generator) newDiscData(cat string) discData {
	r := g.r
	d := discData{
		gold:   g.newGold(),
		cat:    cat,
		did:    g.newDID(),
		artist: g.artistName(),
		title:  g.freshTitle(),
		genre:  toxgene.Genres[r.Intn(len(toxgene.Genres))],
		year:   g.yearValue(),
		tracks: g.newTracks(),
	}
	if r.Float64() < g.opts.MissingDIDRate {
		d.did = ""
	}
	if r.Float64() < g.opts.MissingYearRate {
		d.year = ""
	}
	if r.Float64() < g.opts.MissingGenreRate {
		d.genre = ""
	}
	return d
}

func (g *generator) build(d discData) *xmltree.Node {
	e := xmltree.NewElement("disc")
	e.SetAttr(toxgene.GoldAttr, d.gold)
	e.SetAttr(CategoryAttr, d.cat)
	appendText := func(name, value string) {
		if value == "" {
			return
		}
		c := xmltree.NewElement(name)
		c.SetText(value)
		e.AppendChild(c)
	}
	appendText("did", d.did)
	appendText("artist", d.artist)
	appendText("dtitle", d.title)
	appendText("genre", d.genre)
	appendText("year", d.year)
	if len(d.tracks) > 0 {
		tr := xmltree.NewElement("tracks")
		for _, t := range d.tracks {
			te := xmltree.NewElement("title")
			te.SetAttr(toxgene.GoldAttr, t.gold)
			te.SetText(t.title)
			tr.AppendChild(te)
		}
		e.AppendChild(tr)
	}
	return e
}

func (g *generator) newGold() string {
	g.goldSeq++
	return fmt.Sprintf("d%d", g.goldSeq)
}

func (g *generator) newTrackGold() string {
	g.trackID++
	return fmt.Sprintf("tr%d", g.trackID)
}

// newDID produces an 8-hex-digit FreeDB-style disc ID.
func (g *generator) newDID() string {
	return fmt.Sprintf("%08x", g.r.Uint32())
}

func (g *generator) yearValue() string {
	return fmt.Sprintf("%d", 1960+g.r.Intn(61))
}

// artistName draws a disc artist. Artists release multiple albums, so
// roughly half the discs reuse an artist seen before — which is what
// makes artist-led keys less precise than disc-ID keys (same-artist
// discs sort adjacently and have similar object descriptions), and
// what gives low OD thresholds their false positives in Fig. 6(a).
func (g *generator) artistName() string {
	r := g.r
	if r.Float64() < 0.06 {
		if r.Float64() < 0.5 {
			return "Various"
		}
		return "Various Artists"
	}
	if len(g.artists) > 0 && r.Float64() < 0.5 {
		return g.artists[r.Intn(len(g.artists))]
	}
	name := toxgene.FirstNames[r.Intn(len(toxgene.FirstNames))] + " " +
		toxgene.LastNames[r.Intn(len(toxgene.LastNames))]
	g.artists = append(g.artists, name)
	return name
}

// freshTitle samples a distinct album title.
func (g *generator) freshTitle() string {
	for attempt := 0; ; attempt++ {
		t := g.titleCandidate()
		if !g.titles[t] {
			g.titles[t] = true
			return t
		}
		if attempt > 200 {
			t = fmt.Sprintf("%s Vol. %d", t, len(g.titles))
			g.titles[t] = true
			return t
		}
	}
}

func (g *generator) titleCandidate() string {
	r := g.r
	adj := toxgene.TitleAdjectives[r.Intn(len(toxgene.TitleAdjectives))]
	n1 := toxgene.TitleNouns[r.Intn(len(toxgene.TitleNouns))]
	w := toxgene.TrackWords[r.Intn(len(toxgene.TrackWords))]
	switch r.Intn(4) {
	case 0:
		return fmt.Sprintf("%s %s", adj, n1)
	case 1:
		return fmt.Sprintf("%s of %s", w, n1)
	case 2:
		return fmt.Sprintf("The %s %s", adj, w)
	default:
		return fmt.Sprintf("%s and %s", n1, w)
	}
}

func (g *generator) newTracks() []track {
	r := g.r
	k := g.opts.TracksMin
	if g.opts.TracksMax > g.opts.TracksMin {
		k += r.Intn(g.opts.TracksMax - g.opts.TracksMin + 1)
	}
	out := make([]track, k)
	for i := range out {
		out[i] = track{gold: g.newTrackGold(), title: g.trackTitle()}
	}
	return out
}

// trackTitle composes a distinctive track title from three word pools;
// real track lists rarely repeat titles across unrelated albums, and
// the descendant similarity of Def. 3 depends on that distinctiveness
// (generic titles would cluster across discs and flood the overlap).
func (g *generator) trackTitle() string {
	r := g.r
	adj := toxgene.TitleAdjectives[r.Intn(len(toxgene.TitleAdjectives))]
	noun := toxgene.TitleNouns[r.Intn(len(toxgene.TitleNouns))]
	w := toxgene.TrackWords[r.Intn(len(toxgene.TrackWords))]
	switch r.Intn(4) {
	case 0:
		return fmt.Sprintf("%s %s", adj, w)
	case 1:
		return fmt.Sprintf("%s of %s", w, noun)
	case 2:
		return fmt.Sprintf("%s %s %s", adj, noun, w)
	default:
		return fmt.Sprintf("%s in the %s %s", w, adj, noun)
	}
}

// typoTail applies one light edit in the second half of the string,
// leaving key-prefix characters intact.
func typoTail(r *rand.Rand, s string) string {
	runes := []rune(s)
	if len(runes) < 4 {
		return s
	}
	half := len(runes) / 2
	p := half + r.Intn(len(runes)-half-1)
	switch r.Intn(3) {
	case 0:
		runes = append(runes[:p], runes[p+1:]...)
	case 1:
		runes = append(runes[:p], append([]rune{rune('a' + r.Intn(26))}, runes[p:]...)...)
	default:
		runes[p], runes[p+1] = runes[p+1], runes[p]
	}
	return string(runes)
}

// typo applies one or two light character errors — duplicate
// submissions differ by small edits, not the dirty generator's heavier
// pollution.
func typo(r *rand.Rand, s string) string {
	if s == "" {
		return s
	}
	runes := []rune(s)
	n := 1 + r.Intn(2)
	for i := 0; i < n && len(runes) > 1; i++ {
		p := r.Intn(len(runes) - 1)
		switch r.Intn(3) {
		case 0:
			runes = append(runes[:p], runes[p+1:]...)
		case 1:
			runes = append(runes[:p], append([]rune{rune('a' + r.Intn(26))}, runes[p:]...)...)
		default:
			runes[p], runes[p+1] = runes[p+1], runes[p]
		}
	}
	return string(runes)
}

// mojibake renders a short run of replacement characters, the way
// non-Latin submissions appear in a corrupted FreeDB dump. Runs of one
// glyph make two same-family unreadable discs look near-identical to a
// string similarity — the mechanism behind the paper's second
// false-positive class — while varying word counts and lengths keep
// dissimilar pairs apart.
func mojibake(r *rand.Rand, glyph byte) string {
	words := 1 + r.Intn(4)
	var b strings.Builder
	for w := 0; w < words; w++ {
		if w > 0 {
			b.WriteByte(' ')
		}
		k := 2 + r.Intn(9)
		for i := 0; i < k; i++ {
			b.WriteByte(glyph)
		}
	}
	return b.String()
}
