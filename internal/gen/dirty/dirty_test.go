package dirty

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen/toxgene"
	"repro/internal/xmltree"
)

func cleanMovies(t *testing.T, n int) *xmltree.Document {
	t.Helper()
	return toxgene.Movies(n, 42)
}

func TestPolluteCreatesDuplicates(t *testing.T) {
	clean := cleanMovies(t, 100)
	res, err := Pollute(clean, []Spec{{
		Path:   "movie_database/movies/movie",
		Prob:   1,
		Errors: DefaultErrors,
	}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.DuplicatesByPath["movie_database/movies/movie"]; got != 100 {
		t.Errorf("duplicates = %d, want 100", got)
	}
	movies := res.Doc.ElementsByPath("movie_database/movies/movie")
	if len(movies) != 200 {
		t.Errorf("dirty movie count = %d, want 200", len(movies))
	}
	// Gold IDs appear exactly twice each.
	count := map[string]int{}
	for _, m := range movies {
		g, ok := m.Attr(toxgene.GoldAttr)
		if !ok {
			t.Fatal("movie lost its gold id")
		}
		count[g]++
	}
	for g, c := range count {
		if c != 2 {
			t.Errorf("gold %q appears %d times, want 2", g, c)
		}
	}
}

func TestPolluteDoesNotModifyInput(t *testing.T) {
	clean := cleanMovies(t, 30)
	before := clean.String()
	if _, err := Pollute(clean, []Spec{{
		Path: "movie_database/movies/movie", Prob: 1, Errors: DefaultErrors,
	}}, 3); err != nil {
		t.Fatal(err)
	}
	if clean.String() != before {
		t.Error("Pollute mutated its input document")
	}
}

func TestPolluteProbability(t *testing.T) {
	clean := cleanMovies(t, 1000)
	res, err := Pollute(clean, []Spec{{
		Path: "movie_database/movies/movie", Prob: 0.2, Errors: DefaultErrors,
	}}, 11)
	if err != nil {
		t.Fatal(err)
	}
	got := res.DuplicatesByPath["movie_database/movies/movie"]
	if got < 120 || got > 280 {
		t.Errorf("20%% of 1000 should give ~200 duplicates, got %d", got)
	}
}

func TestPolluteMaxDups(t *testing.T) {
	clean := cleanMovies(t, 300)
	res, err := Pollute(clean, []Spec{{
		Path: "movie_database/movies/movie", Prob: 1, MaxDups: 2, Errors: DefaultErrors,
	}}, 13)
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, m := range res.Doc.ElementsByPath("movie_database/movies/movie") {
		g, _ := m.Attr(toxgene.GoldAttr)
		count[g]++
	}
	saw2, saw3 := false, false
	for g, c := range count {
		switch c {
		case 2:
			saw2 = true
		case 3:
			saw3 = true
		default:
			t.Errorf("gold %q appears %d times, want 2 or 3", g, c)
		}
	}
	if !saw2 || !saw3 {
		t.Error("MaxDups=2 should yield a mix of 1 and 2 duplicates")
	}
}

func TestPolluteNestedSpecs(t *testing.T) {
	clean := cleanMovies(t, 50)
	res, err := Pollute(clean, []Spec{
		{Path: "movie_database/movies/movie", Prob: 1, Errors: DefaultErrors},
		{Path: "movie_database/movies/movie/people/person", Prob: 0.5, Errors: DefaultErrors},
	}, 17)
	if err != nil {
		t.Fatal(err)
	}
	if res.DuplicatesByPath["movie_database/movies/movie/people/person"] == 0 {
		t.Error("person duplicates expected")
	}
	// Renumbering held: all IDs unique.
	seen := map[int]bool{}
	res.Doc.Root.Walk(func(n *xmltree.Node) bool {
		if seen[n.ID] {
			t.Fatalf("duplicate node id %d after pollution", n.ID)
		}
		seen[n.ID] = true
		return true
	})
}

func TestPolluteDeterministic(t *testing.T) {
	clean := cleanMovies(t, 40)
	specs := []Spec{{Path: "movie_database/movies/movie", Prob: 0.5, Errors: DefaultErrors}}
	a, err := Pollute(clean, specs, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Pollute(clean, specs, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.Doc.String() != b.Doc.String() {
		t.Error("Pollute not deterministic per seed")
	}
}

func TestPolluteErrors(t *testing.T) {
	clean := cleanMovies(t, 5)
	if _, err := Pollute(clean, []Spec{{Path: "a[[", Prob: 1}}, 1); err == nil {
		t.Error("bad path should fail")
	}
	if _, err := Pollute(clean, []Spec{{Path: "movie_database", Prob: 1}}, 1); err == nil {
		t.Error("duplicating the root should fail")
	}
	if _, err := Pollute(clean, []Spec{{Path: "movie_database/movies/movie", Prob: 1.5}}, 1); err == nil {
		t.Error("probability > 1 should fail")
	}
}

func TestPolluteStringTypos(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	m := ErrorModel{MinTypos: 1, MaxTypos: 1}
	changed := 0
	for i := 0; i < 100; i++ {
		if PolluteString("The Quiet Storm", m, r) != "The Quiet Storm" {
			changed++
		}
	}
	if changed < 90 {
		t.Errorf("expected nearly all strings changed, got %d/100", changed)
	}
	if PolluteString("", m, r) != "" {
		t.Error("empty string must stay empty")
	}
}

func TestPolluteStringSevere(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	m := ErrorModel{SevereProb: 1}
	s := "Matrix Reloaded"
	diffPrefix := 0
	for i := 0; i < 50; i++ {
		out := PolluteString(s, m, r)
		if len(out) >= 3 && out[:3] != s[:3] {
			diffPrefix++
		}
	}
	if diffPrefix < 45 {
		t.Errorf("severe pollution changed prefix only %d/50 times", diffPrefix)
	}
}

func TestPolluteStringWordSwap(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	m := ErrorModel{WordSwapProb: 1}
	swapped := false
	for i := 0; i < 20; i++ {
		if PolluteString("alpha beta", m, r) == "beta alpha" {
			swapped = true
		}
	}
	if !swapped {
		t.Error("word swap never occurred at probability 1")
	}
	if got := PolluteString("single", m, r); got != "single" {
		t.Errorf("single word should be unchanged, got %q", got)
	}
}

// Property: pollution never panics and keeps output bounded relative
// to input (each typo changes length by at most 1).
func TestPolluteStringBounds(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	m := ErrorModel{MinTypos: 1, MaxTypos: 3, WordSwapProb: 0.5, SevereProb: 0.3}
	f := func(s string) bool {
		out := PolluteString(s, m, r)
		lin, lout := len([]rune(s)), len([]rune(out))
		return lout >= lin-3 && lout <= lin+3+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGoldAttrNeverPolluted(t *testing.T) {
	clean := cleanMovies(t, 50)
	res, err := Pollute(clean, []Spec{{
		Path: "movie_database/movies/movie", Prob: 1,
		Errors: ErrorModel{MinTypos: 3, MaxTypos: 5, TypoProb: 1, DropAttrProb: 0.9},
	}}, 23)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Doc.ElementsByPath("movie_database/movies/movie") {
		if _, ok := m.Attr(toxgene.GoldAttr); !ok {
			t.Fatal("gold attribute dropped or polluted")
		}
	}
}
