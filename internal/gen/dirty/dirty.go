// Package dirty is this reproduction's stand-in for the "Dirty XML
// Data Generator" the paper uses (Sec. 4.1): it takes clean XML data
// and a set of duplication specifications — duplication probability,
// number of duplicates, and the errors to introduce — and produces
// dirty XML data. Duplicated elements keep their hidden gold
// identifiers so the evaluation harness can measure recall and
// precision, exactly as the paper uses the clean objects' unique IDs.
//
// The error model covers the operations the paper names (deleting,
// inserting, and swapping characters) plus token swaps, attribute and
// child drops, and an optional "severe pollution" mode that scrambles
// the beginning of a value, reproducing the paper's 5% of titles
// "polluted in such a way that their keys are sorted far apart".
package dirty

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/gen/toxgene"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// ErrorModel configures the pollution applied to each duplicate.
type ErrorModel struct {
	// MinTypos..MaxTypos character-level errors (delete, insert, or
	// swap, chosen uniformly) are applied to each polluted text value.
	MinTypos, MaxTypos int
	// TypoProb is the probability that a given text value is polluted
	// at all; 1 pollutes every value of the duplicate.
	TypoProb float64
	// WordSwapProb swaps two adjacent tokens of the value.
	WordSwapProb float64
	// DropAttrProb removes each (non-gold) attribute of the duplicate.
	DropAttrProb float64
	// DropChildProb removes each child element of the duplicate
	// (modelling missing optional data).
	DropChildProb float64
	// SevereProb replaces the first runes of the value with noise so
	// the generated key lands far away in sort order.
	SevereProb float64
	// PerElement overrides the model for the subtree rooted at
	// elements with the given name — e.g. polluting <did> identifiers
	// far more rarely than free text, as real-world resubmissions do.
	// Overrides do not nest: the override applies to the named
	// element's whole subtree.
	PerElement map[string]ErrorModel
}

// DefaultErrors is a moderate model: one to three typos on most
// values, occasional attribute loss.
var DefaultErrors = ErrorModel{
	MinTypos:      1,
	MaxTypos:      3,
	TypoProb:      0.8,
	WordSwapProb:  0.1,
	DropAttrProb:  0.05,
	DropChildProb: 0.02,
}

// Spec requests duplication of the elements selected by Path.
type Spec struct {
	// Path is the absolute path of the elements to duplicate.
	Path string
	// Prob is the per-element duplication probability (the paper's
	// dupProb).
	Prob float64
	// MaxDups caps the number of duplicates per selected element; each
	// selected element receives 1..MaxDups duplicates uniformly (the
	// paper's "each generating up to two duplicates"). Zero means 1.
	MaxDups int
	// Errors is the pollution model applied to each duplicate.
	Errors ErrorModel
}

// Result reports what Pollute did.
type Result struct {
	Doc *xmltree.Document
	// DuplicatesByPath counts the duplicates created per spec path.
	DuplicatesByPath map[string]int
}

// Pollute applies the duplication specs to a deep copy of doc and
// returns the dirty document (the input is never modified). Specs are
// applied in order, so duplicating a <movie> first and then <person>
// elements pollutes persons inside duplicated movies too, as the
// paper's scalability setup requires. The dirty document is
// renumbered; duplicates are inserted at random positions among their
// parent's children.
func Pollute(doc *xmltree.Document, specs []Spec, seed int64) (*Result, error) {
	r := rand.New(rand.NewSource(seed))
	dirty := xmltree.NewDocument(doc.Root.Clone())
	res := &Result{Doc: dirty, DuplicatesByPath: make(map[string]int, len(specs))}

	for _, spec := range specs {
		if spec.Prob < 0 || spec.Prob > 1 {
			return nil, fmt.Errorf("dirty: spec %q: probability %v outside [0,1]", spec.Path, spec.Prob)
		}
		p, err := xpath.Compile(spec.Path)
		if err != nil {
			return nil, fmt.Errorf("dirty: spec %q: %w", spec.Path, err)
		}
		targets := p.SelectDocument(dirty)
		maxDups := spec.MaxDups
		if maxDups < 1 {
			maxDups = 1
		}
		for _, e := range targets {
			if e.Parent == nil {
				return nil, fmt.Errorf("dirty: cannot duplicate root element via %q", spec.Path)
			}
			if r.Float64() >= spec.Prob {
				continue
			}
			n := 1 + r.Intn(maxDups)
			for d := 0; d < n; d++ {
				dup := e.Clone()
				polluteSubtree(dup, spec.Errors, r)
				pos := r.Intn(len(e.Parent.Children) + 1)
				e.Parent.InsertChildAt(pos, dup)
				res.DuplicatesByPath[spec.Path]++
			}
		}
	}
	dirty.Renumber()
	return res, nil
}

// polluteSubtree applies the error model to every text node and
// attribute in the subtree, and drops attributes/children per model.
func polluteSubtree(n *xmltree.Node, m ErrorModel, r *rand.Rand) {
	if n.Kind == xmltree.ElementNode {
		if override, ok := m.PerElement[n.Name]; ok {
			override.PerElement = nil
			polluteSubtree(n, override, r)
			return
		}
		// Attribute drops and pollution (gold IDs are never touched).
		kept := n.Attrs[:0]
		for _, a := range n.Attrs {
			if a.Name == toxgene.GoldAttr {
				kept = append(kept, a)
				continue
			}
			if m.DropAttrProb > 0 && r.Float64() < m.DropAttrProb {
				continue
			}
			if m.TypoProb > 0 && r.Float64() < m.TypoProb {
				a.Value = PolluteString(a.Value, m, r)
			}
			kept = append(kept, a)
		}
		n.Attrs = kept

		if m.DropChildProb > 0 {
			var keptCh []*xmltree.Node
			for _, c := range n.Children {
				if c.Kind == xmltree.ElementNode && r.Float64() < m.DropChildProb && len(n.Children) > 1 {
					continue
				}
				keptCh = append(keptCh, c)
			}
			n.Children = keptCh
		}
	}
	if n.Kind == xmltree.TextNode {
		if m.TypoProb > 0 && r.Float64() < m.TypoProb {
			n.Data = PolluteString(n.Data, m, r)
		}
		return
	}
	for _, c := range n.Children {
		polluteSubtree(c, m, r)
	}
}

// PolluteString applies the configured character errors to s.
func PolluteString(s string, m ErrorModel, r *rand.Rand) string {
	if s == "" {
		return s
	}
	runes := []rune(s)
	if m.SevereProb > 0 && r.Float64() < m.SevereProb {
		runes = severe(runes, r)
	}
	if m.WordSwapProb > 0 && r.Float64() < m.WordSwapProb {
		runes = []rune(swapWords(string(runes), r))
	}
	typos := m.MinTypos
	if m.MaxTypos > m.MinTypos {
		typos += r.Intn(m.MaxTypos - m.MinTypos + 1)
	}
	for i := 0; i < typos && len(runes) > 0; i++ {
		switch r.Intn(3) {
		case 0: // delete
			if len(runes) > 1 {
				p := r.Intn(len(runes))
				runes = append(runes[:p], runes[p+1:]...)
			}
		case 1: // insert
			p := r.Intn(len(runes) + 1)
			c := rune('a' + r.Intn(26))
			runes = append(runes[:p], append([]rune{c}, runes[p:]...)...)
		default: // swap adjacent
			if len(runes) > 1 {
				p := r.Intn(len(runes) - 1)
				runes[p], runes[p+1] = runes[p+1], runes[p]
			}
		}
	}
	return string(runes)
}

// severe replaces the first few runes with random letters, destroying
// the sort position of prefix-based keys.
func severe(runes []rune, r *rand.Rand) []rune {
	k := 3 + r.Intn(3)
	if k > len(runes) {
		k = len(runes)
	}
	out := make([]rune, len(runes))
	copy(out, runes)
	for i := 0; i < k; i++ {
		out[i] = rune('a' + r.Intn(26))
	}
	return out
}

// swapWords exchanges two adjacent whitespace-separated tokens.
func swapWords(s string, r *rand.Rand) string {
	fields := strings.Fields(s)
	if len(fields) < 2 {
		return s
	}
	p := r.Intn(len(fields) - 1)
	fields[p], fields[p+1] = fields[p+1], fields[p]
	return strings.Join(fields, " ")
}
