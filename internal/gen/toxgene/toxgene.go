// Package toxgene is this reproduction's stand-in for the ToXGene
// template-based XML generator the paper uses to produce clean data
// sets (Sec. 4.1). It provides a small declarative template model —
// element specs with child cardinalities, attribute generators, and
// text generators — driven by a seeded PRNG so every data set is
// reproducible, plus ready-made templates for the paper's movie schema
// (template_movies.go).
//
// Every generated object that experiments need to track carries a
// unique gold identifier in the GoldAttr attribute; SXNM never reads
// it (no configuration references it) while the evaluation harness
// uses it as ground truth, mirroring the paper's use of "unique IDs
// of the clean data objects".
package toxgene

import (
	"fmt"
	"math/rand"

	"repro/internal/xmltree"
)

// GoldAttr is the attribute carrying the hidden ground-truth object
// identity on generated elements.
const GoldAttr = "x-gold"

// TextGen produces a text value; implementations draw from the
// provided PRNG only, keeping generation deterministic per seed.
type TextGen func(r *rand.Rand) string

// AttrSpec generates one attribute. If Optional is non-zero the
// attribute is omitted with that probability (modelling the missing
// years the paper blames for badly sorted keys).
type AttrSpec struct {
	Name     string
	Gen      TextGen
	Optional float64
}

// ChildSpec nests a child element spec with a cardinality range.
type ChildSpec struct {
	Spec     *Spec
	Min, Max int
	// Optional is an extra probability of omitting the child entirely,
	// applied before the cardinality draw.
	Optional float64
}

// Spec describes one element type of a template.
type Spec struct {
	Name     string
	Attrs    []AttrSpec
	Children []ChildSpec
	Text     TextGen
	// Gold assigns the gold identifier; when non-nil the generated
	// element receives a GoldAttr attribute with its value.
	Gold func(seq int) string
}

// Generate materializes count instances of spec under a fresh root
// element with the given name, using a PRNG seeded with seed.
func Generate(rootName string, spec *Spec, count int, seed int64) *xmltree.Document {
	r := rand.New(rand.NewSource(seed))
	root := xmltree.NewElement(rootName)
	seq := newSequencer()
	for i := 0; i < count; i++ {
		root.AppendChild(instantiate(spec, r, seq))
	}
	return xmltree.NewDocument(root)
}

// GenerateInto appends count instances of spec to an existing parent;
// useful for templates whose root nests intermediate containers.
func GenerateInto(parent *xmltree.Node, spec *Spec, count int, r *rand.Rand) {
	seq := newSequencer()
	for i := 0; i < count; i++ {
		parent.AppendChild(instantiate(spec, r, seq))
	}
}

// sequencer hands out per-spec-name sequence numbers for gold IDs.
type sequencer struct{ next map[string]int }

func newSequencer() *sequencer { return &sequencer{next: make(map[string]int)} }

func (s *sequencer) take(name string) int {
	n := s.next[name]
	s.next[name] = n + 1
	return n
}

func instantiate(spec *Spec, r *rand.Rand, seq *sequencer) *xmltree.Node {
	e := xmltree.NewElement(spec.Name)
	if spec.Gold != nil {
		e.SetAttr(GoldAttr, spec.Gold(seq.take(spec.Name)))
	}
	for _, a := range spec.Attrs {
		if a.Optional > 0 && r.Float64() < a.Optional {
			continue
		}
		e.SetAttr(a.Name, a.Gen(r))
	}
	if spec.Text != nil {
		e.SetText(spec.Text(r))
	}
	for _, c := range spec.Children {
		if c.Optional > 0 && r.Float64() < c.Optional {
			continue
		}
		n := c.Min
		if c.Max > c.Min {
			n += r.Intn(c.Max - c.Min + 1)
		}
		for i := 0; i < n; i++ {
			e.AppendChild(instantiate(c.Spec, r, seq))
		}
	}
	return e
}

// Const returns a TextGen that always produces s.
func Const(s string) TextGen {
	return func(*rand.Rand) string { return s }
}

// Choice returns a TextGen drawing uniformly from options.
func Choice(options ...string) TextGen {
	if len(options) == 0 {
		panic("toxgene: Choice needs at least one option")
	}
	return func(r *rand.Rand) string { return options[r.Intn(len(options))] }
}

// IntRange returns a TextGen producing a decimal integer in [lo, hi].
func IntRange(lo, hi int) TextGen {
	if hi < lo {
		panic(fmt.Sprintf("toxgene: IntRange %d > %d", lo, hi))
	}
	return func(r *rand.Rand) string {
		return fmt.Sprintf("%d", lo+r.Intn(hi-lo+1))
	}
}

// Compose joins the outputs of several generators with sep.
func Compose(sep string, gens ...TextGen) TextGen {
	return func(r *rand.Rand) string {
		out := ""
		for i, g := range gens {
			if i > 0 {
				out += sep
			}
			out += g(r)
		}
		return out
	}
}

// Unique wraps a generator and suffixes a counter so that every
// produced value is distinct — used for titles, whose collisions would
// otherwise create accidental true duplicates in "clean" data.
func Unique(g TextGen) TextGen {
	n := 0
	return func(r *rand.Rand) string {
		n++
		return fmt.Sprintf("%s %d", g(r), n)
	}
}
