package toxgene

// Vocabulary for the synthetic generators. The lists are large enough
// that combinatorial sampling yields realistic, mostly-distinct values.

// FirstNames is a pool of person first names.
var FirstNames = []string{
	"James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael",
	"Linda", "William", "Elizabeth", "David", "Barbara", "Richard", "Susan",
	"Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Keanu",
	"Carrie", "Laurence", "Hugo", "Antonio", "Catherine", "Bruce", "Madeleine",
	"Harrison", "Sigourney", "Ridley", "Sofia", "Quentin", "Uma", "Samuel",
	"Scarlett", "Denzel", "Meryl", "Anthony", "Jodie", "Gary", "Natalie",
	"Morgan", "Angela", "Clint", "Diane", "Sean", "Audrey", "Peter", "Ingrid",
	"Marcello", "Giulietta", "Akira", "Toshiro", "Setsuko", "Jean", "Anna",
	"Klaus", "Hanna", "Pedro", "Penelope", "Javier", "Marion", "Vincent",
	"Juliette", "Daniel", "Kate", "Leonardo", "Cate", "Joaquin", "Rooney",
	"Adam", "Greta", "Wes", "Tilda", "Frances", "Ethan", "Julianne", "Oscar",
	"Viola", "Mahershala",
}

// LastNames is a pool of person last names.
var LastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
	"Reeves", "Moss", "Fishburne", "Weaving", "Banderas", "Zeta-Jones",
	"Willis", "Stowe", "Ford", "Weaver", "Scott", "Coppola", "Tarantino",
	"Thurman", "Jackson", "Johansson", "Washington", "Streep", "Hopkins",
	"Foster", "Oldman", "Portman", "Freeman", "Bassett", "Eastwood",
	"Keaton", "Connery", "Hepburn", "Lorre", "Bergman", "Mastroianni",
	"Masina", "Kurosawa", "Mifune", "Hara", "Gabin", "Karina", "Kinski",
	"Schygulla", "Almodovar", "Cruz", "Bardem", "Cotillard", "Cassel",
	"Binoche", "Day-Lewis", "Winslet", "DiCaprio", "Blanchett", "Phoenix",
	"Mara", "Driver", "Gerwig", "Anderson", "Swinton", "McDormand", "Hawke",
	"Moore", "Isaac", "Davis", "Ali",
}

// TitleAdjectives feed the synthetic movie- and album-title patterns.
var TitleAdjectives = []string{
	"Dark", "Silent", "Golden", "Broken", "Hidden", "Lost", "Eternal",
	"Crimson", "Frozen", "Burning", "Sacred", "Savage", "Gentle", "Wild",
	"Quiet", "Distant", "Forgotten", "Electric", "Hollow", "Iron",
	"Invisible", "Final", "First", "Last", "Scarlet", "Pale", "Emerald",
	"Wicked", "Brave", "Bitter", "Sweet", "Endless", "Ancient", "Modern",
	"Restless", "Velvet", "Rising", "Falling", "Shattered", "Luminous",
	"Midnight", "Northern", "Southern", "Western", "Stolen", "Secret",
	"Perfect", "Strange", "Glass", "Stone",
}

// TitleNouns feed the synthetic title patterns.
var TitleNouns = []string{
	"River", "Mountain", "City", "Ocean", "Forest", "Desert", "Island",
	"Shadow", "Light", "Storm", "Fire", "Rain", "Snow", "Wind", "Thunder",
	"Dream", "Memory", "Promise", "Secret", "Journey", "Voyage", "Return",
	"Escape", "Hunt", "Chase", "Game", "War", "Peace", "Love", "Betrayal",
	"Revenge", "Redemption", "Sacrifice", "Destiny", "Fortune", "Empire",
	"Kingdom", "Garden", "Harbor", "Bridge", "Tower", "Castle", "Temple",
	"Mirror", "Window", "Door", "Road", "Path", "Horizon", "Eclipse",
	"Dawn", "Dusk", "Night", "Winter", "Summer", "Autumn", "Spring",
	"Heart", "Soul", "Mind",
}

// Genres is the pool of CD genres (FreeDB's eleven categories plus a
// few common freeform ones).
var Genres = []string{
	"blues", "classical", "country", "data", "folk", "jazz", "misc",
	"newage", "reggae", "rock", "soundtrack", "pop", "electronic", "metal",
}

// ReviewSnippets feed <review> text nodes in the movie template.
var ReviewSnippets = []string{
	"A stunning achievement in modern cinema.",
	"The plot meanders but the performances shine.",
	"An unforgettable journey from start to finish.",
	"Beautifully shot, poorly paced.",
	"A masterclass in tension and atmosphere.",
	"The soundtrack alone is worth the ticket.",
	"Ambitious, flawed, and utterly compelling.",
	"A quiet film that rewards patience.",
	"Spectacular visuals anchored by a strong script.",
	"The ending divides audiences to this day.",
	"A genre classic that still holds up.",
	"Overlong, but the final act redeems it.",
}

// TrackWords feed synthetic track titles on CD discs.
var TrackWords = []string{
	"Intro", "Overture", "Prelude", "Interlude", "Reprise", "Finale",
	"Sunrise", "Moonlight", "Starlight", "Daybreak", "Nightfall", "Twilight",
	"Heartbeat", "Echoes", "Whispers", "Silence", "Noise", "Static",
	"Gravity", "Velocity", "Momentum", "Orbit", "Satellite", "Comet",
	"Roses", "Thorns", "Petals", "Branches", "Roots", "Leaves",
	"Highway", "Backstreet", "Avenue", "Boulevard", "Crossroads", "Detour",
	"Tides", "Waves", "Currents", "Undertow", "Driftwood", "Shoreline",
	"Embers", "Ashes", "Sparks", "Flames", "Smoke", "Lanterns",
}
