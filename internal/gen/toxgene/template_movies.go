package toxgene

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/similarity"
	"repro/internal/strutil"
	"repro/internal/xmltree"
)

// Movies generates the clean artificial movie database of Data set 1
// (Sec. 4.1): a movie_database/movies container holding n <movie>
// elements, each with year and length attributes, one or two <title>
// children, a <people> container with <person> children (one
// <lastname>, one or two <firstname> elements), and optional <review>
// children.
//
// Titles are sampled without replacement from a large combinatorial
// pattern space so that the clean data holds no accidental duplicates;
// gold identifiers (GoldAttr) mark movies, titles, and persons for the
// evaluation harness.
func Movies(n int, seed int64) *xmltree.Document {
	r := rand.New(rand.NewSource(seed))
	root := xmltree.NewElement("movie_database")
	movies := xmltree.NewElement("movies")
	root.AppendChild(movies)

	titles := newTitleSampler(r)
	movieSeq, titleSeq, personSeq := 0, 0, 0
	for i := 0; i < n; i++ {
		m := xmltree.NewElement("movie")
		m.SetAttr(GoldAttr, fmt.Sprintf("m%d", movieSeq))
		movieSeq++
		// ~3% of movies miss their year, feeding the paper's
		// observation that year-led keys sort badly on missing data.
		if r.Float64() >= 0.03 {
			m.SetAttr("year", fmt.Sprintf("%d", 1920+r.Intn(91)))
		}
		m.SetAttr("length", fmt.Sprintf("%d", 60+r.Intn(181)))

		primary := titles.next()
		nTitles := 1
		if r.Float64() < 0.2 { // alternate title
			nTitles = 2
		}
		for t := 0; t < nTitles; t++ {
			te := xmltree.NewElement("title")
			te.SetAttr(GoldAttr, fmt.Sprintf("t%d", titleSeq))
			titleSeq++
			if t == 0 {
				te.SetText(primary)
			} else {
				te.SetText(primary + ": " + TitleNouns[r.Intn(len(TitleNouns))])
			}
			m.AppendChild(te)
		}

		people := xmltree.NewElement("people")
		nPersons := 1 + r.Intn(5)
		for p := 0; p < nPersons; p++ {
			pe := xmltree.NewElement("person")
			pe.SetAttr(GoldAttr, fmt.Sprintf("p%d", personSeq))
			personSeq++
			nFirst := 1
			if r.Float64() < 0.15 {
				nFirst = 2
			}
			for f := 0; f < nFirst; f++ {
				fe := xmltree.NewElement("firstname")
				fe.SetText(FirstNames[r.Intn(len(FirstNames))])
				pe.AppendChild(fe)
			}
			le := xmltree.NewElement("lastname")
			le.SetText(LastNames[r.Intn(len(LastNames))])
			pe.AppendChild(le)
			people.AppendChild(pe)
		}
		m.AppendChild(people)

		nReviews := r.Intn(3)
		for v := 0; v < nReviews; v++ {
			re := xmltree.NewElement("review")
			re.SetText(ReviewSnippets[r.Intn(len(ReviewSnippets))])
			m.AppendChild(re)
		}
		movies.AppendChild(m)
	}
	return xmltree.NewDocument(root)
}

// titleSampler draws distinct titles from a combinatorial pattern
// space (~1M combinations). Beyond exact uniqueness it enforces a
// minimum edit separation between clean titles: pattern-generated
// titles share scaffolding ("The X of Y"), so without the separation
// the clean data would contain unnaturally many near-miss pairs
// ("The Fortune of Ocean" / "The Fortune of Voyage") that no
// similarity measure could tell from genuine duplicates. Real title
// populations are far sparser; see DESIGN.md. Candidates are bucketed
// by their K1-K4 consonant skeleton so each acceptance check only
// compares a handful of strings.
type titleSampler struct {
	r       *rand.Rand
	used    map[string]bool
	buckets map[string][]string // consonant-skeleton prefix -> normalized titles
	sigs    map[string][]string // one-word-dropped signature -> normalized titles
}

// maxCleanTitleSim is the highest normalized edit similarity allowed
// between two distinct clean titles.
const maxCleanTitleSim = 0.72

func newTitleSampler(r *rand.Rand) *titleSampler {
	return &titleSampler{
		r:       r,
		used:    make(map[string]bool),
		buckets: make(map[string][]string),
		sigs:    make(map[string][]string),
	}
}

func (s *titleSampler) next() string {
	for attempt := 0; ; attempt++ {
		t := s.candidate()
		if s.accept(t) {
			return t
		}
		if attempt > 500 {
			// Space nearly exhausted: disambiguate with a numeral
			// suffix (digits do not contribute to consonant keys).
			t = fmt.Sprintf("%s %d", t, len(s.used)+attempt)
			if s.accept(t) {
				return t
			}
		}
	}
}

func (s *titleSampler) accept(t string) bool {
	if s.used[t] {
		return false
	}
	norm := strutil.Normalize(t)
	// One-word substitutions of an accepted title ("Shadow and Light"
	// vs "Shadow and Night") share a dropped-word signature; reject
	// the candidate only when the colliding titles are genuinely
	// edit-similar, so dissimilar substitutions ("River of Storm" vs
	// "River of Light") keep the combinatorial capacity.
	sigs := dropWordSignatures(norm)
	for _, sig := range sigs {
		for _, prev := range s.sigs[sig] {
			if similarity.NormalizedEditRaw(norm, prev) >= maxCleanTitleSim {
				return false
			}
		}
	}
	bucket := skeleton(norm)
	for _, prev := range s.buckets[bucket] {
		if similarity.NormalizedEditRaw(norm, prev) >= maxCleanTitleSim {
			return false
		}
	}
	s.used[t] = true
	s.buckets[bucket] = append(s.buckets[bucket], norm)
	for _, sig := range sigs {
		s.sigs[sig] = append(s.sigs[sig], norm)
	}
	return true
}

// dropWordSignatures returns, for each word position, the title with
// that word replaced by a positional placeholder.
func dropWordSignatures(norm string) []string {
	words := strings.Fields(norm)
	if len(words) < 2 {
		return []string{norm}
	}
	out := make([]string, len(words))
	for i := range words {
		saved := words[i]
		words[i] = fmt.Sprintf("\x00%d", i)
		out[i] = strings.Join(words, " ")
		words[i] = saved
	}
	return out
}

// skeleton returns the first four consonants of the normalized title —
// the K1-K4 key prefix. Two titles similar enough to confuse the
// detector nearly always share it, so the separation check only needs
// to look inside one bucket.
func skeleton(norm string) string {
	cons := strutil.Consonants(norm)
	if len(cons) > 4 {
		cons = cons[:4]
	}
	return string(cons)
}

// candidate draws a title whose FIRST word varies over the whole
// vocabulary. Patterns that all begin with "The" would make the first
// two key consonants a constant "TH", collapsing thousands of titles
// onto the same K1-K5 key and defeating the sorted neighborhood (real
// title corpora do not share a two-letter prefix across the board).
func (s *titleSampler) candidate() string {
	adj := TitleAdjectives[s.r.Intn(len(TitleAdjectives))]
	n1 := TitleNouns[s.r.Intn(len(TitleNouns))]
	n2 := TitleNouns[s.r.Intn(len(TitleNouns))]
	w := TrackWords[s.r.Intn(len(TrackWords))]
	switch s.r.Intn(7) {
	case 0:
		return fmt.Sprintf("%s %s", adj, n1)
	case 1:
		return fmt.Sprintf("%s of %s", n1, n2)
	case 2:
		return fmt.Sprintf("%s and %s", n1, n2)
	case 3:
		return fmt.Sprintf("The %s %s", adj, n1)
	case 4:
		return fmt.Sprintf("%s %s %s", adj, n1, w)
	case 5:
		return fmt.Sprintf("%s of the %s %s", w, adj, n1)
	default:
		return fmt.Sprintf("%s in the %s", n1, n2)
	}
}
