package toxgene

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := &Spec{
		Name: "item",
		Text: Choice("a", "b", "c"),
		Attrs: []AttrSpec{
			{Name: "n", Gen: IntRange(1, 100)},
		},
	}
	d1 := Generate("root", spec, 20, 42)
	d2 := Generate("root", spec, 20, 42)
	if d1.String() != d2.String() {
		t.Error("same seed must produce identical documents")
	}
	d3 := Generate("root", spec, 20, 43)
	if d1.String() == d3.String() {
		t.Error("different seeds should produce different documents")
	}
}

func TestCardinalities(t *testing.T) {
	child := &Spec{Name: "c", Text: Const("x")}
	spec := &Spec{
		Name:     "p",
		Children: []ChildSpec{{Spec: child, Min: 2, Max: 4}},
	}
	doc := Generate("root", spec, 50, 7)
	for _, p := range doc.Root.ChildElements("p") {
		n := len(p.ChildElements("c"))
		if n < 2 || n > 4 {
			t.Fatalf("child count %d outside [2,4]", n)
		}
	}
}

func TestOptionalChildAndAttr(t *testing.T) {
	child := &Spec{Name: "c", Text: Const("x")}
	spec := &Spec{
		Name:     "p",
		Attrs:    []AttrSpec{{Name: "a", Gen: Const("v"), Optional: 0.5}},
		Children: []ChildSpec{{Spec: child, Min: 1, Max: 1, Optional: 0.5}},
	}
	doc := Generate("root", spec, 200, 11)
	withAttr, withChild := 0, 0
	ps := doc.Root.ChildElements("p")
	for _, p := range ps {
		if _, ok := p.Attr("a"); ok {
			withAttr++
		}
		if len(p.ChildElements("c")) > 0 {
			withChild++
		}
	}
	if withAttr == 0 || withAttr == len(ps) {
		t.Errorf("optional attr present on %d/%d, want strictly between", withAttr, len(ps))
	}
	if withChild == 0 || withChild == len(ps) {
		t.Errorf("optional child present on %d/%d", withChild, len(ps))
	}
}

func TestGoldSequencing(t *testing.T) {
	spec := &Spec{
		Name: "obj",
		Text: Const("x"),
		Gold: func(seq int) string { return "g" + string(rune('0'+seq%10)) },
	}
	doc := Generate("root", spec, 3, 1)
	objs := doc.Root.ChildElements("obj")
	for i, o := range objs {
		want := "g" + string(rune('0'+i))
		if got, _ := o.Attr(GoldAttr); got != want {
			t.Errorf("gold[%d] = %q, want %q", i, got, want)
		}
	}
}

func TestTextGenHelpers(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if Const("x")(r) != "x" {
		t.Error("Const broken")
	}
	for i := 0; i < 20; i++ {
		v := Choice("a", "b")(r)
		if v != "a" && v != "b" {
			t.Errorf("Choice produced %q", v)
		}
	}
	for i := 0; i < 50; i++ {
		v := IntRange(5, 7)(r)
		if v != "5" && v != "6" && v != "7" {
			t.Errorf("IntRange produced %q", v)
		}
	}
	if got := Compose("-", Const("a"), Const("b"))(r); got != "a-b" {
		t.Errorf("Compose = %q", got)
	}
	u := Unique(Const("t"))
	if u(r) == u(r) {
		t.Error("Unique must produce distinct values")
	}
}

func TestChoicePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Choice()
}

func TestIntRangePanicsInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	IntRange(5, 1)
}

func TestMoviesSchema(t *testing.T) {
	doc := Movies(100, 42)
	movies := doc.ElementsByPath("movie_database/movies/movie")
	if len(movies) != 100 {
		t.Fatalf("got %d movies, want 100", len(movies))
	}
	titlePath := xpath.MustCompile("title/text()")
	for _, m := range movies {
		if _, ok := m.Attr(GoldAttr); !ok {
			t.Fatal("movie without gold id")
		}
		if _, ok := m.Attr("length"); !ok {
			t.Fatal("movie without length")
		}
		if titlePath.First(m) == "" {
			t.Fatal("movie without title text")
		}
		people := m.FirstChildElement("people")
		if people == nil || len(people.ChildElements("person")) == 0 {
			t.Fatal("movie without persons")
		}
		for _, p := range people.ChildElements("person") {
			if p.FirstChildElement("lastname") == nil {
				t.Fatal("person without lastname")
			}
			if len(p.ChildElements("firstname")) == 0 {
				t.Fatal("person without firstname")
			}
		}
	}
}

func TestMoviesGoldUnique(t *testing.T) {
	doc := Movies(500, 1)
	seen := map[string]bool{}
	doc.Root.Walk(func(n *xmltree.Node) bool {
		if g, ok := n.Attr(GoldAttr); ok {
			if seen[g] {
				t.Fatalf("gold id %q repeated in clean data", g)
			}
			seen[g] = true
		}
		return true
	})
}

func TestMoviesTitlesDistinct(t *testing.T) {
	doc := Movies(2000, 3)
	titles := map[string]bool{}
	for _, m := range doc.ElementsByPath("movie_database/movies/movie") {
		primary := m.FirstChildElement("title").Text()
		if titles[primary] {
			t.Fatalf("clean data contains duplicate primary title %q", primary)
		}
		titles[primary] = true
	}
}

func TestMoviesSomeYearsMissing(t *testing.T) {
	doc := Movies(2000, 5)
	missing := 0
	for _, m := range doc.ElementsByPath("movie_database/movies/movie") {
		if _, ok := m.Attr("year"); !ok {
			missing++
		}
	}
	if missing == 0 {
		t.Error("expected some movies without year")
	}
	if missing > 200 {
		t.Errorf("too many missing years: %d/2000", missing)
	}
}

func TestMoviesDeterministic(t *testing.T) {
	a, b := Movies(50, 9), Movies(50, 9)
	if a.String() != b.String() {
		t.Error("Movies not deterministic per seed")
	}
	if !strings.Contains(a.String(), "<movie_database>") {
		t.Error("unexpected serialization")
	}
}
