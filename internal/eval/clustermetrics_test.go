package eval

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

// goldIndexFor builds a GoldIndex directly from eid->gold assignments.
func goldIndexFor(assign map[int]string) *GoldIndex {
	g := &GoldIndex{ByEID: map[int]string{}, Clusters: map[string][]int{}}
	for eid, id := range assign {
		g.ByEID[eid] = id
		g.Clusters[id] = append(g.Clusters[id], eid)
	}
	return g
}

func TestClusterLevelPerfect(t *testing.T) {
	g := goldIndexFor(map[int]string{1: "a", 2: "a", 3: "b"})
	cs := cluster.FromPairs([]int{1, 2, 3}, []cluster.Pair{{A: 1, B: 2}})
	m := ClusterLevelMetrics(g, cs)
	if m.Purity != 1 || m.InversePurity != 1 || m.F != 1 {
		t.Errorf("perfect clustering: %+v", m)
	}
	if m.ExactMatches != 2 {
		t.Errorf("exact matches = %d, want 2", m.ExactMatches)
	}
	if m.PredictedClusters != 2 || m.GoldClusters != 2 {
		t.Errorf("cluster counts: %+v", m)
	}
}

func TestClusterLevelOverMerged(t *testing.T) {
	// Everything merged into one cluster: purity suffers, inverse
	// purity is perfect.
	g := goldIndexFor(map[int]string{1: "a", 2: "a", 3: "b", 4: "b"})
	cs := cluster.FromPairs([]int{1, 2, 3, 4}, []cluster.Pair{
		{A: 1, B: 2}, {A: 2, B: 3}, {A: 3, B: 4},
	})
	m := ClusterLevelMetrics(g, cs)
	if math.Abs(m.Purity-0.5) > 1e-9 {
		t.Errorf("purity = %v, want 0.5", m.Purity)
	}
	if m.InversePurity != 1 {
		t.Errorf("inverse purity = %v, want 1", m.InversePurity)
	}
	if m.ExactMatches != 0 {
		t.Errorf("exact matches = %d, want 0", m.ExactMatches)
	}
}

func TestClusterLevelOverSplit(t *testing.T) {
	// Nothing merged: purity perfect, inverse purity suffers.
	g := goldIndexFor(map[int]string{1: "a", 2: "a", 3: "a", 4: "b"})
	cs := cluster.FromPairs([]int{1, 2, 3, 4}, nil)
	m := ClusterLevelMetrics(g, cs)
	if m.Purity != 1 {
		t.Errorf("purity = %v, want 1", m.Purity)
	}
	// Gold a (3 elements) majority cluster holds 1; gold b holds 1:
	// inverse purity = (1+1)/4.
	if math.Abs(m.InversePurity-0.5) > 1e-9 {
		t.Errorf("inverse purity = %v, want 0.5", m.InversePurity)
	}
	// Exactly the singleton {4} matches gold b.
	if m.ExactMatches != 1 {
		t.Errorf("exact matches = %d, want 1", m.ExactMatches)
	}
}

func TestClusterLevelGoldlessElements(t *testing.T) {
	// Elements without gold ids act as their own objects.
	g := goldIndexFor(map[int]string{1: "a", 2: "a"})
	cs := cluster.FromPairs([]int{1, 2, 7, 9}, []cluster.Pair{{A: 1, B: 2}, {A: 7, B: 9}})
	m := ClusterLevelMetrics(g, cs)
	// Cluster {7,9} mixes two singleton gold objects: purity
	// contribution 1 of 2.
	if math.Abs(m.Purity-0.75) > 1e-9 {
		t.Errorf("purity = %v, want 0.75", m.Purity)
	}
	if m.GoldClusters != 3 {
		t.Errorf("gold clusters = %d, want 3", m.GoldClusters)
	}
}

func TestClusterLevelEmpty(t *testing.T) {
	g := goldIndexFor(nil)
	cs := cluster.FromPairs(nil, nil)
	m := ClusterLevelMetrics(g, cs)
	if m.Purity != 0 || m.F != 0 {
		t.Errorf("empty metrics: %+v", m)
	}
}

func TestClusterLevelConsistentWithPairwise(t *testing.T) {
	// A perfect pairwise result implies perfect cluster-level scores.
	g := goldIndexFor(map[int]string{1: "x", 2: "x", 3: "y", 4: "y", 5: "z"})
	cs := cluster.FromPairs([]int{1, 2, 3, 4, 5},
		[]cluster.Pair{{A: 1, B: 2}, {A: 3, B: 4}})
	pm := PairwiseMetrics(g, cs)
	cm := ClusterLevelMetrics(g, cs)
	if pm.F1 == 1 && cm.F != 1 {
		t.Errorf("pairwise perfect but cluster-level F = %v", cm.F)
	}
}
