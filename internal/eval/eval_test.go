package eval

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/xmltree"
)

const goldXML = `
<cds>
  <disc x-gold="d1" x-cat="normal"><artist>A</artist></disc>
  <disc x-gold="d1" x-cat="normal"><artist>A</artist></disc>
  <disc x-gold="d2" x-cat="series"><artist>Various</artist></disc>
  <disc x-gold="d3" x-cat="series"><artist>Various</artist></disc>
  <disc x-gold="d4" x-cat="unreadable"><artist>????</artist></disc>
  <disc x-gold="d5" x-cat="unreadable"><artist>####</artist></disc>
  <disc x-gold="d6" x-cat="normal"><artist>B</artist></disc>
  <disc><artist>no gold</artist></disc>
</cds>`

func goldDoc(t *testing.T) (*xmltree.Document, *GoldIndex, []int) {
	t.Helper()
	doc, err := xmltree.ParseString(goldXML)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGold(doc, "cds/disc")
	if err != nil {
		t.Fatal(err)
	}
	discs := doc.ElementsByPath("cds/disc")
	eids := make([]int, len(discs))
	for i, d := range discs {
		eids[i] = d.ID
	}
	return doc, g, eids
}

func TestBuildGold(t *testing.T) {
	_, g, eids := goldDoc(t)
	if len(g.ByEID) != 7 {
		t.Errorf("ByEID size = %d, want 7 (gold-less disc excluded)", len(g.ByEID))
	}
	if len(g.Clusters["d1"]) != 2 {
		t.Errorf("d1 cluster = %v", g.Clusters["d1"])
	}
	if g.TruePairs() != 1 {
		t.Errorf("TruePairs = %d, want 1", g.TruePairs())
	}
	if !g.IsDuplicate(eids[0], eids[1]) {
		t.Error("first two discs should be gold duplicates")
	}
	if g.IsDuplicate(eids[0], eids[2]) {
		t.Error("d1 and d2 discs are not duplicates")
	}
	if g.IsDuplicate(eids[0], eids[7]) {
		t.Error("gold-less element cannot be a duplicate")
	}
}

func TestBuildGoldBadPath(t *testing.T) {
	doc, _ := xmltree.ParseString(goldXML)
	if _, err := BuildGold(doc, "[["); err == nil {
		t.Error("bad path should fail")
	}
}

func TestPairwiseMetricsPerfect(t *testing.T) {
	_, g, eids := goldDoc(t)
	cs := cluster.FromPairs(eids, []cluster.Pair{cluster.MakePair(eids[0], eids[1])})
	m := PairwiseMetrics(g, cs)
	if m.TP != 1 || m.FP != 0 || m.FN != 0 {
		t.Errorf("metrics = %+v", m)
	}
	if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
		t.Errorf("perfect run should be all 1s: %s", m)
	}
}

func TestPairwiseMetricsMixed(t *testing.T) {
	_, g, eids := goldDoc(t)
	// One true pair missed; one false pair detected.
	cs := cluster.FromPairs(eids, []cluster.Pair{cluster.MakePair(eids[2], eids[3])})
	m := PairwiseMetrics(g, cs)
	if m.TP != 0 || m.FP != 1 || m.FN != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Errorf("all-wrong run: %s", m)
	}
}

func TestPairwiseMetricsTransitiveFP(t *testing.T) {
	_, g, eids := goldDoc(t)
	// Chain d1,d1,d2: closure adds two FP pairs.
	cs := cluster.FromPairs(eids, []cluster.Pair{
		cluster.MakePair(eids[0], eids[1]),
		cluster.MakePair(eids[1], eids[2]),
	})
	m := PairwiseMetrics(g, cs)
	if m.TP != 1 || m.FP != 2 {
		t.Errorf("closure metrics = %+v", m)
	}
	want := 1.0 / 3.0
	if math.Abs(m.Precision-want) > 1e-9 {
		t.Errorf("precision = %v, want %v", m.Precision, want)
	}
}

func TestPairwiseMetricsEmptyDetection(t *testing.T) {
	_, g, eids := goldDoc(t)
	cs := cluster.FromPairs(eids, nil)
	m := PairwiseMetrics(g, cs)
	if m.Precision != 1 {
		t.Errorf("precision with no detections = %v, want 1", m.Precision)
	}
	if m.Recall != 0 {
		t.Errorf("recall = %v, want 0 (one pair missed)", m.Recall)
	}
}

func TestPairwiseMetricsNoGold(t *testing.T) {
	g := &GoldIndex{ByEID: map[int]string{}, Clusters: map[string][]int{}}
	cs := cluster.FromPairs([]int{1, 2}, nil)
	m := PairwiseMetrics(g, cs)
	if m.Precision != 1 || m.Recall != 1 {
		t.Errorf("clean data should score 1/1: %s", m)
	}
}

func TestClassifyFalsePositives(t *testing.T) {
	doc, g, eids := goldDoc(t)
	cs := cluster.FromPairs(eids, []cluster.Pair{
		cluster.MakePair(eids[0], eids[1]), // TP, not counted
		cluster.MakePair(eids[2], eids[3]), // series FP
		cluster.MakePair(eids[4], eids[5]), // unreadable FP
		cluster.MakePair(eids[0], eids[6]), // other FP (closure adds eids[1]-eids[6] too)
	})
	b := ClassifyFalsePositives(doc, g, cs)
	if b.Series != 1 {
		t.Errorf("series = %d, want 1", b.Series)
	}
	if b.Unreadable != 1 {
		t.Errorf("unreadable = %d, want 1", b.Unreadable)
	}
	if b.Other != 2 { // (0,6) and closure pair (1,6)
		t.Errorf("other = %d, want 2", b.Other)
	}
	if b.Total != 4 {
		t.Errorf("total = %d, want 4", b.Total)
	}
	s, u, o := b.Fractions()
	if math.Abs(s-0.25) > 1e-9 || math.Abs(u-0.25) > 1e-9 || math.Abs(o-0.5) > 1e-9 {
		t.Errorf("fractions = %v %v %v", s, u, o)
	}
}

func TestFractionsEmpty(t *testing.T) {
	s, u, o := (FPBreakdown{}).Fractions()
	if s != 0 || u != 0 || o != 0 {
		t.Error("empty breakdown should yield zero fractions")
	}
}

func TestVariousArtistCountsAsSeries(t *testing.T) {
	xmlStr := `<cds>
	  <disc x-gold="a" x-cat="normal"><artist>Various Artists</artist></disc>
	  <disc x-gold="b" x-cat="normal"><artist>Someone</artist></disc>
	</cds>`
	doc, err := xmltree.ParseString(xmlStr)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGold(doc, "cds/disc")
	if err != nil {
		t.Fatal(err)
	}
	discs := doc.ElementsByPath("cds/disc")
	cs := cluster.FromPairs([]int{discs[0].ID, discs[1].ID},
		[]cluster.Pair{cluster.MakePair(discs[0].ID, discs[1].ID)})
	b := ClassifyFalsePositives(doc, g, cs)
	if b.Series != 1 || b.Total != 1 {
		t.Errorf("breakdown = %+v, want various-artist pair classified as series", b)
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{TP: 1, FP: 2, FN: 3, Precision: 0.5, Recall: 0.25, F1: 0.333}
	s := m.String()
	if s == "" {
		t.Error("empty string")
	}
}
