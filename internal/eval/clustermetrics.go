package eval

import "repro/internal/cluster"

// ClusterMetrics complements the pairwise measures with cluster-level
// views of detection quality: purity (how homogeneous the predicted
// clusters are), inverse purity (how completely gold objects are
// covered by single predicted clusters), their harmonic mean, and
// exact-match counts.
type ClusterMetrics struct {
	// Purity is the fraction of elements whose predicted cluster's
	// majority gold identity matches their own.
	Purity float64
	// InversePurity is the fraction of elements whose gold cluster's
	// majority predicted cluster contains them.
	InversePurity float64
	// F is the harmonic mean of Purity and InversePurity.
	F float64
	// ExactMatches counts predicted clusters that coincide exactly
	// with a gold cluster (same member set), including singletons.
	ExactMatches int
	// PredictedClusters and GoldClusters are the partition sizes.
	PredictedClusters int
	GoldClusters      int
}

// ClusterLevelMetrics computes cluster-level quality for one candidate.
// Elements without gold identity are treated as singleton gold objects
// identified by their own element ID.
func ClusterLevelMetrics(g *GoldIndex, cs *cluster.ClusterSet) ClusterMetrics {
	var m ClusterMetrics
	total := cs.Elements()
	if total == 0 {
		return m
	}
	goldOf := func(eid int) string {
		if id, ok := g.ByEID[eid]; ok {
			return id
		}
		return "" // filled by caller-specific key below
	}

	// Build gold partition over exactly the elements the cluster set
	// covers (gold-less elements become their own objects).
	goldMembers := make(map[string][]int)
	keyOf := make(map[int]string, total)
	for _, c := range cs.Clusters {
		for _, eid := range c.Members {
			key := goldOf(eid)
			if key == "" {
				key = singletonKey(eid)
			}
			keyOf[eid] = key
			goldMembers[key] = append(goldMembers[key], eid)
		}
	}
	m.PredictedClusters = cs.Len()
	m.GoldClusters = len(goldMembers)

	// Purity: majority gold identity per predicted cluster.
	purer := 0
	for _, c := range cs.Clusters {
		counts := map[string]int{}
		for _, eid := range c.Members {
			counts[keyOf[eid]]++
		}
		purer += maxCount(counts)
	}
	m.Purity = float64(purer) / float64(total)

	// Inverse purity: majority predicted cluster per gold object.
	inv := 0
	for _, members := range goldMembers {
		counts := map[int]int{}
		for _, eid := range members {
			if cid, ok := cs.CID(eid); ok {
				counts[cid]++
			}
		}
		inv += maxCount(counts)
	}
	m.InversePurity = float64(inv) / float64(total)

	if m.Purity+m.InversePurity > 0 {
		m.F = 2 * m.Purity * m.InversePurity / (m.Purity + m.InversePurity)
	}

	// Exact matches: predicted cluster member sets equal to a gold set.
	goldSet := make(map[string]int, len(goldMembers)) // canonical member string -> 1
	for _, members := range goldMembers {
		goldSet[canonical(members)] = 1
	}
	for _, c := range cs.Clusters {
		if _, ok := goldSet[canonical(c.Members)]; ok {
			m.ExactMatches++
		}
	}
	return m
}

func singletonKey(eid int) string {
	// Element IDs are positive; prefix avoids collisions with real
	// gold identifiers.
	const digits = "0123456789"
	if eid == 0 {
		return "\x00:0"
	}
	buf := make([]byte, 0, 12)
	for v := eid; v > 0; v /= 10 {
		buf = append(buf, digits[v%10])
	}
	return "\x00:" + string(buf)
}

func maxCount[K comparable](counts map[K]int) int {
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	return best
}

// canonical renders a sorted member list (members of cluster.Set are
// already sorted ascending; gold member lists are sorted here).
func canonical(members []int) string {
	sorted := make([]int, len(members))
	copy(sorted, members)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := make([]byte, 0, len(sorted)*4)
	for _, m := range sorted {
		out = append(out, byte(m), byte(m>>8), byte(m>>16), byte(m>>24))
	}
	return string(out)
}
