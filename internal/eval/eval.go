// Package eval measures duplicate detection quality against the gold
// identities planted by the data generators: pairwise precision,
// recall, and f-measure (the paper's Experiment sets 1 and 3), plus
// the false-positive taxonomy used in the discussion of Fig. 4(d).
package eval

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/gen/freedb"
	"repro/internal/gen/toxgene"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// GoldIndex is the ground truth for one candidate: which elements
// (node IDs) represent which real-world object.
type GoldIndex struct {
	// ByEID maps a node ID to its gold object ID. Elements lacking a
	// gold attribute are absent and treated as unique objects.
	ByEID map[int]string
	// Clusters maps each gold ID to the node IDs carrying it.
	Clusters map[string][]int
}

// BuildGold collects the gold identities of all elements selected by
// the candidate path expression.
func BuildGold(doc *xmltree.Document, candidateXPath string) (*GoldIndex, error) {
	p, err := xpath.Compile(candidateXPath)
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	g := &GoldIndex{
		ByEID:    make(map[int]string),
		Clusters: make(map[string][]int),
	}
	for _, n := range p.SelectDocument(doc) {
		gold, ok := n.Attr(toxgene.GoldAttr)
		if !ok {
			continue
		}
		g.ByEID[n.ID] = gold
		g.Clusters[gold] = append(g.Clusters[gold], n.ID)
	}
	return g, nil
}

// IsDuplicate reports whether two elements are gold duplicates.
func (g *GoldIndex) IsDuplicate(a, b int) bool {
	ga, oka := g.ByEID[a]
	gb, okb := g.ByEID[b]
	return oka && okb && ga == gb
}

// TruePairs returns the number of gold duplicate pairs: the pairs an
// ideal detector would return.
func (g *GoldIndex) TruePairs() int {
	total := 0
	for _, eids := range g.Clusters {
		k := len(eids)
		total += k * (k - 1) / 2
	}
	return total
}

// Metrics holds pairwise quality measures.
type Metrics struct {
	TP, FP, FN int
	Precision  float64
	Recall     float64
	F1         float64
}

// String renders the metrics compactly for experiment tables.
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d fn=%d)",
		m.Precision, m.Recall, m.F1, m.TP, m.FP, m.FN)
}

// PairwiseMetrics compares the detected cluster set against the gold
// index: a true positive is a detected pair whose elements share a
// gold ID. Precision defaults to 1 when nothing was detected, and
// recall to 1 when no gold pairs exist, so clean-data runs report
// sensible values.
func PairwiseMetrics(g *GoldIndex, cs *cluster.ClusterSet) Metrics {
	var m Metrics
	detected := cs.DuplicatePairs()
	for _, p := range detected {
		if g.IsDuplicate(p.A, p.B) {
			m.TP++
		} else {
			m.FP++
		}
	}
	m.FN = g.TruePairs() - m.TP
	if m.FN < 0 {
		m.FN = 0
	}
	m.Precision = ratio(m.TP, m.TP+m.FP)
	m.Recall = ratio(m.TP, m.TP+m.FN)
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}

// FPBreakdown classifies false-positive pairs by corpus pathology,
// reproducing the taxonomy of the Fig. 4(d) discussion: CD-series /
// various-artist pairs, unreadable-text pairs, and everything else.
type FPBreakdown struct {
	Series     int
	Unreadable int
	Other      int
	Total      int
}

// Fractions returns the taxonomy shares in [0,1]; zero totals yield
// zeros.
func (b FPBreakdown) Fractions() (series, unreadable, other float64) {
	if b.Total == 0 {
		return 0, 0, 0
	}
	t := float64(b.Total)
	return float64(b.Series) / t, float64(b.Unreadable) / t, float64(b.Other) / t
}

// ClassifyFalsePositives inspects every detected non-gold pair and
// attributes it to a pathology. A pair counts as "unreadable" when
// either element is an unreadable-text disc, as "series" when either
// element belongs to a disc series or is a various-artists disc, and
// as "other" otherwise.
func ClassifyFalsePositives(doc *xmltree.Document, g *GoldIndex, cs *cluster.ClusterSet) FPBreakdown {
	idx := doc.IndexByID()
	var b FPBreakdown
	for _, p := range cs.DuplicatePairs() {
		if g.IsDuplicate(p.A, p.B) {
			continue
		}
		b.Total++
		na, nb := idx[p.A], idx[p.B]
		switch {
		case isUnreadable(na) || isUnreadable(nb):
			b.Unreadable++
		case isSeriesLike(na) || isSeriesLike(nb):
			b.Series++
		default:
			b.Other++
		}
	}
	return b
}

func isUnreadable(n *xmltree.Node) bool {
	if n == nil {
		return false
	}
	cat, _ := n.Attr(freedb.CategoryAttr)
	return cat == freedb.CategoryUnreadable
}

func isSeriesLike(n *xmltree.Node) bool {
	if n == nil {
		return false
	}
	if cat, _ := n.Attr(freedb.CategoryAttr); cat == freedb.CategorySeries {
		return true
	}
	if a := n.FirstChildElement("artist"); a != nil {
		if strings.HasPrefix(strings.ToLower(a.Text()), "various") {
			return true
		}
	}
	return false
}
