// Package tune implements the parameter calibration the paper leaves
// to a domain expert: "We experienced that performing duplicate
// detection both manually and automatically on a small sample can help
// determine suitable parameters values" (Sec. 3.4), and the outlook's
// plan to adapt DELPHI's threshold-learning technique (Sec. 5).
//
// Given a labelled sample — a document whose candidate elements carry
// gold identities — Tune sweeps thresholds (and optionally windows)
// for one candidate and reports the setting with the best f-measure,
// ready to be written back into the configuration.
package tune

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/xmltree"
)

// Options configure a tuning sweep.
type Options struct {
	// Candidate is the candidate to tune (its thresholds are swept;
	// all other candidates keep their configured values).
	Candidate string
	// Thresholds to try; empty means 0.50..0.95 step 0.05.
	Thresholds []float64
	// Windows to try; empty keeps the configured window.
	Windows []int
	// DescThresholds to try for RuleEither/RuleBoth candidates; empty
	// keeps the configured descendants threshold.
	DescThresholds []float64
	// Beta weighs recall vs precision in the objective (F_beta);
	// 0 means 1 (the plain f-measure the paper reports).
	Beta float64
}

func (o *Options) defaults() {
	if len(o.Thresholds) == 0 {
		for th := 0.50; th <= 0.951; th += 0.05 {
			o.Thresholds = append(o.Thresholds, float64(int(th*100+0.5))/100)
		}
	}
	if o.Beta == 0 {
		o.Beta = 1
	}
}

// Setting is one evaluated parameter combination.
type Setting struct {
	Threshold     float64
	DescThreshold float64
	Window        int
	Metrics       eval.Metrics
	Score         float64 // F_beta
}

// Result is the outcome of a sweep: every evaluated setting plus the
// best one.
type Result struct {
	Best     Setting
	Settings []Setting
}

// Tune sweeps the candidate's parameters over the labelled sample and
// returns the best setting by F_beta. The configuration is not
// modified; call Apply to write the best setting into a config.
func Tune(sample *xmltree.Document, cfg *config.Config, opts Options) (*Result, error) {
	opts.defaults()
	base := cfg.Candidate(opts.Candidate)
	if base == nil {
		return nil, fmt.Errorf("tune: unknown candidate %q", opts.Candidate)
	}
	gold, err := eval.BuildGold(sample, base.XPath)
	if err != nil {
		return nil, err
	}
	if gold.TruePairs() == 0 {
		return nil, fmt.Errorf("tune: sample carries no gold duplicate pairs for %q", opts.Candidate)
	}

	windows := opts.Windows
	if len(windows) == 0 {
		windows = []int{base.Window}
	}
	descThresholds := opts.DescThresholds
	if len(descThresholds) == 0 {
		descThresholds = []float64{base.DescThreshold}
	}

	res := &Result{}
	for _, w := range windows {
		for _, dth := range descThresholds {
			for _, th := range opts.Thresholds {
				trial, err := cloneConfig(cfg)
				if err != nil {
					return nil, err
				}
				c := trial.Candidate(opts.Candidate)
				if w > 0 {
					c.Window = w
				}
				switch c.Rule {
				case config.RuleEither, config.RuleBoth:
					c.ODThreshold = th
					c.DescThreshold = dth
				default:
					c.Threshold = th
				}
				if err := trial.Validate(); err != nil {
					return nil, fmt.Errorf("tune: threshold %.2f window %d: %w", th, w, err)
				}
				run, err := core.Run(sample, trial, core.Options{})
				if err != nil {
					return nil, err
				}
				m := eval.PairwiseMetrics(gold, run.Clusters[opts.Candidate])
				s := Setting{
					Threshold:     th,
					DescThreshold: dth,
					Window:        c.Window,
					Metrics:       m,
					Score:         fBeta(m, opts.Beta),
				}
				res.Settings = append(res.Settings, s)
				if s.Score > res.Best.Score {
					res.Best = s
				}
			}
		}
	}
	return res, nil
}

// fBeta computes the F_beta score from pairwise metrics.
func fBeta(m eval.Metrics, beta float64) float64 {
	b2 := beta * beta
	den := b2*m.Precision + m.Recall
	if den == 0 {
		return 0
	}
	return (1 + b2) * m.Precision * m.Recall / den
}

// Apply writes the best setting into the configuration's candidate
// (thresholds and window) and re-validates.
func Apply(cfg *config.Config, candidate string, best Setting) error {
	c := cfg.Candidate(candidate)
	if c == nil {
		return fmt.Errorf("tune: unknown candidate %q", candidate)
	}
	switch c.Rule {
	case config.RuleEither, config.RuleBoth:
		c.ODThreshold = best.Threshold
		c.DescThreshold = best.DescThreshold
	default:
		c.Threshold = best.Threshold
	}
	if best.Window > 0 {
		c.Window = best.Window
	}
	return cfg.Validate()
}

// cloneConfig deep-copies a configuration through its XML form, which
// guarantees the copy is independent of compiled state.
func cloneConfig(cfg *config.Config) (*config.Config, error) {
	return config.FromDocument(cfg.Document())
}
