package tune

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/xmltree"
)

func sample(t *testing.T) *xmltree.Document {
	t.Helper()
	doc, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestTuneFindsInteriorOptimum(t *testing.T) {
	doc := sample(t)
	cfg := config.DataSet1(6)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Tune(doc, cfg, Options{Candidate: "movie"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Settings) != 10 {
		t.Fatalf("settings = %d, want 10 thresholds", len(res.Settings))
	}
	if res.Best.Score <= 0 {
		t.Fatal("no best setting found")
	}
	// The optimum is interior: extreme thresholds (0.5 = everything
	// merges, 0.95 = nearly nothing) must score below the best.
	first := res.Settings[0]
	last := res.Settings[len(res.Settings)-1]
	if res.Best.Score < first.Score || res.Best.Score < last.Score {
		t.Errorf("best %.3f not above edges %.3f/%.3f", res.Best.Score, first.Score, last.Score)
	}
	// The best setting must actually achieve its reported metrics.
	if res.Best.Metrics.F1 < 0.7 {
		t.Errorf("best f-measure %.3f suspiciously low", res.Best.Metrics.F1)
	}
}

func TestTuneWindowSweep(t *testing.T) {
	doc := sample(t)
	cfg := config.DataSet1(2)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Tune(doc, cfg, Options{
		Candidate:  "movie",
		Thresholds: []float64{0.8},
		Windows:    []int{2, 8, 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Settings) != 3 {
		t.Fatalf("settings = %d, want 3 windows", len(res.Settings))
	}
	// Recall (and at stable precision, the score) grows with window.
	if res.Best.Window == 2 {
		t.Errorf("best window = 2; larger windows should score higher: %+v", res.Settings)
	}
}

func TestTuneEitherRule(t *testing.T) {
	doc, err := dataset.DataSet2(dataset.CDs2Options{Discs: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.DataSet2(4)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Tune(doc, cfg, Options{
		Candidate:      "disc",
		Thresholds:     []float64{0.55, 0.65, 0.8},
		DescThresholds: []float64{0.2, 0.6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Settings) != 6 {
		t.Fatalf("settings = %d, want 6", len(res.Settings))
	}
	if res.Best.Score <= 0.5 {
		t.Errorf("best score %.3f too low", res.Best.Score)
	}
}

func TestApply(t *testing.T) {
	cfg := config.DataSet1(4)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	best := Setting{Threshold: 0.85, Window: 9}
	if err := Apply(cfg, "movie", best); err != nil {
		t.Fatal(err)
	}
	c := cfg.Candidate("movie")
	if c.Threshold != 0.85 || c.Window != 9 {
		t.Errorf("applied = %.2f/%d", c.Threshold, c.Window)
	}
	if err := Apply(cfg, "nosuch", best); err == nil {
		t.Error("unknown candidate should fail")
	}
}

func TestApplyEitherRule(t *testing.T) {
	cfg := config.DataSet2(4)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Apply(cfg, "disc", Setting{Threshold: 0.7, DescThreshold: 0.25}); err != nil {
		t.Fatal(err)
	}
	c := cfg.Candidate("disc")
	if c.ODThreshold != 0.7 || c.DescThreshold != 0.25 {
		t.Errorf("applied = %.2f/%.2f", c.ODThreshold, c.DescThreshold)
	}
}

func TestTuneErrors(t *testing.T) {
	doc := sample(t)
	cfg := config.DataSet1(4)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Tune(doc, cfg, Options{Candidate: "nosuch"}); err == nil {
		t.Error("unknown candidate should fail")
	}
	// A sample without gold pairs is rejected.
	clean, err := xmltree.ParseString(`<movie_database><movies>
	  <movie x-gold="a"><title>Alpha</title></movie>
	  <movie x-gold="b"><title>Beta</title></movie>
	</movies></movie_database>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Tune(clean, cfg, Options{Candidate: "movie"}); err == nil {
		t.Error("gold-free sample should fail")
	}
}

func TestTunedSettingGeneralizes(t *testing.T) {
	// Tune on one sample, evaluate on a fresh one: the tuned threshold
	// should at least roughly carry over (within 0.1 f-measure).
	train := sample(t)
	cfg := config.DataSet1(8)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Tune(train, cfg, Options{Candidate: "movie"})
	if err != nil {
		t.Fatal(err)
	}
	applied := config.DataSet1(8)
	if err := applied.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Apply(applied, "movie", res.Best); err != nil {
		t.Fatal(err)
	}
	test, _, err := dataset.DataSet1(dataset.Movies1Options{Movies: 200, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	gold, err := eval.BuildGold(test, dataset.MoviePath)
	if err != nil {
		t.Fatal(err)
	}
	run, err := core.Run(test, applied, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := eval.PairwiseMetrics(gold, run.Clusters["movie"])
	if m.F1 < res.Best.Metrics.F1-0.1 {
		t.Errorf("tuned setting does not generalize: train F=%.3f test F=%.3f",
			res.Best.Metrics.F1, m.F1)
	}
}
