// Package checkpoint persists the durable state of an SXNM run to a
// run directory so an interrupted or crashed run resumes instead of
// restarting. The directory holds immutable section files — the GK
// tables in the core TSV format, one cluster-set file per completed
// candidate, and pass-level pair progress for the candidate in flight
// — plus a manifest naming each section with its SHA-256 and the
// config/document fingerprints the state belongs to.
//
// Every write is crash-safe: content goes to a temp file, is fsynced,
// and is renamed into place before the manifest (itself written the
// same way) starts referencing it. A valid checkpoint is therefore
// never overwritten with a partial one; a crash at any step leaves
// the previous manifest pointing at intact files, and recovery either
// resumes from it or — when nothing valid survives — falls back to a
// clean restart. Load rejects checkpoints whose fingerprints do not
// match the caller's config and document with a typed *MismatchError
// rather than silently mixing state across inputs.
package checkpoint

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/xmltree"
)

// Sentinel errors; match with errors.Is. Concrete mismatch and
// corruption details travel in *MismatchError and *CorruptError.
var (
	// ErrNoCheckpoint reports that the run directory holds no manifest.
	ErrNoCheckpoint = errors.New("checkpoint: no checkpoint present")
	// ErrMismatch is the errors.Is target of every *MismatchError.
	ErrMismatch = errors.New("checkpoint: checkpoint does not match")
	// ErrCorrupt is the errors.Is target of every *CorruptError.
	ErrCorrupt = errors.New("checkpoint: corrupt checkpoint")
)

// MismatchError reports a checkpoint that is intact but belongs to a
// different input: its format version, configuration fingerprint, or
// document fingerprint differs from the caller's. Resuming it would
// silently mix state across runs, so Load refuses.
type MismatchError struct {
	Field string // "format-version", "config", or "document"
	Want  string // the caller's value
	Got   string // the checkpoint's value
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("checkpoint: %s mismatch: checkpoint has %.16s…, run has %.16s…", e.Field, e.Got, e.Want)
}

// Is makes errors.Is(err, ErrMismatch) true for every MismatchError.
func (e *MismatchError) Is(target error) bool { return target == ErrMismatch }

// CorruptError reports checkpoint bytes that fail structural or
// checksum validation — a torn write, bit rot, or truncation. The
// safe recovery is a clean restart.
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("checkpoint: %s: %s", e.Path, e.Reason)
}

// Is makes errors.Is(err, ErrCorrupt) true for every CorruptError.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// ConfigFingerprint hashes the canonical serialization of a
// configuration; two configs fingerprint equal exactly when their
// candidate definitions (paths, ODs, keys, windows, thresholds) are
// identical.
func ConfigFingerprint(cfg *config.Config) (string, error) {
	h := sha256.New()
	if err := cfg.Document().Write(h, xmltree.WriteOptions{}); err != nil {
		return "", fmt.Errorf("checkpoint: fingerprint config: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// DocumentFingerprint hashes the canonical serialization of a parsed
// document, so the same bytes parsed twice (or semantically identical
// documents differing only in ignorable whitespace handling) resume
// each other's checkpoints.
func DocumentFingerprint(doc *xmltree.Document) (string, error) {
	h := sha256.New()
	if err := doc.Write(h, xmltree.WriteOptions{}); err != nil {
		return "", fmt.Errorf("checkpoint: fingerprint document: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// State is the durable progress recovered from a checkpoint.
type State struct {
	// Phase is PhaseKeyGen, PhaseDetect, or PhaseDone.
	Phase string
	// KeyGen holds the recovered GK tables; nil while Phase is
	// PhaseKeyGen (key generation must rerun from the document).
	KeyGen *core.KeyGenResult
	// Clusters are the completed candidates' cluster sets.
	Clusters map[string]*cluster.ClusterSet
	// Progress is the pass-level state of candidates cut short mid-way.
	Progress map[string]*core.CandidateProgress
}

// ResumeState converts the recovered state into the engine's resume
// input.
func (s *State) ResumeState() *core.ResumeState {
	return &core.ResumeState{Clusters: s.Clusters, Progress: s.Progress}
}

// Dir is an open checkpoint directory. It implements core.Checkpointer
// so it can be handed to the engine via Options.Checkpointer; all
// methods are safe for concurrent use (parallel detection workers
// flush progress concurrently).
type Dir struct {
	fsys FS
	path string

	mu      sync.Mutex
	man     manifest
	ob      *obs.Observer
	opBytes int64 // bytes written by the in-flight operation
}

// SetObserver attaches an observer: every subsequent checkpoint
// operation emits one SpanCheckpoint span (kind, bytes written) and
// bumps the CheckpointWrites/CheckpointBytes counters. Byte counting
// happens here, under d.mu, so concurrent detection workers never
// misattribute each other's writes. A nil or disabled observer turns
// observation off.
func (d *Dir) SetObserver(ob *obs.Observer) {
	if !ob.Enabled() {
		ob = nil
	}
	d.mu.Lock()
	d.ob = ob
	d.mu.Unlock()
}

// opSpan opens the span for one public checkpoint operation and
// resets the byte counter; the returned func closes it with the bytes
// the operation wrote (temp-file bytes of a failed write included,
// with the failure recorded). Callers hold d.mu.
func (d *Dir) opSpan(kind string) func(err error) {
	d.opBytes = 0
	if d.ob == nil {
		return func(error) {}
	}
	sp := d.ob.StartSpan(obs.SpanCheckpoint, obs.String(obs.AttrKind, kind))
	return func(err error) {
		sp.SetAttr(obs.Int64(obs.AttrBytes, d.opBytes))
		if err != nil {
			sp.SetAttr(obs.String(obs.AttrCause, err.Error()))
		}
		sp.End()
		if m := d.ob.Metrics(); m != nil {
			m.CheckpointWrites.Add(1)
			m.CheckpointBytes.Add(d.opBytes)
		}
	}
}

// countWriter tallies bytes passing through writeAtomic.
type countWriter struct {
	w io.Writer
	n *int64
}

func (c countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	*c.n += int64(n)
	return n, err
}

// Path returns the run directory.
func (d *Dir) Path() string { return d.path }

// Create initializes a fresh checkpoint in dir for a run with the
// given fingerprints, discarding any previous checkpoint state found
// there. The directory is created if missing.
func Create(fsys FS, dir, configFP, docFP string) (*Dir, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	d := &Dir{fsys: fsys, path: dir}
	// Sweep remnants of an earlier run first: a stale section file
	// could otherwise collide with a fresh sequence number.
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			name := e.Name()
			if name == manifestName || isSectionName(name) || strings.Contains(name, ".tmp-") {
				_ = fsys.Remove(filepath.Join(dir, name))
			}
		}
	}
	d.man = manifest{ConfigFP: configFP, DocFP: docFP, Phase: PhaseKeyGen}
	if err := d.writeManifest(); err != nil {
		return nil, err
	}
	return d, nil
}

// Load opens the checkpoint in dir and validates it end to end:
// manifest self-checksum, format version, config and document
// fingerprints, and every section file's SHA-256. On success it
// returns the Dir (positioned to keep appending progress) and the
// recovered State. Failures are typed: ErrNoCheckpoint when no
// manifest exists, *MismatchError for a checkpoint belonging to a
// different config/document, *CorruptError for damaged bytes.
func Load(fsys FS, dir string, cfg *config.Config, configFP, docFP string) (*Dir, *State, error) {
	manPath := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(manPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, ErrNoCheckpoint
		}
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	man, err := parseManifest(data)
	if err != nil {
		var me *MismatchError
		if errors.As(err, &me) {
			return nil, nil, me
		}
		return nil, nil, &CorruptError{Path: manPath, Reason: err.Error()}
	}
	if man.ConfigFP != configFP {
		return nil, nil, &MismatchError{Field: "config", Want: configFP, Got: man.ConfigFP}
	}
	if man.DocFP != docFP {
		return nil, nil, &MismatchError{Field: "document", Want: docFP, Got: man.DocFP}
	}

	st := &State{
		Phase:    man.Phase,
		Clusters: make(map[string]*cluster.ClusterSet),
		Progress: make(map[string]*core.CandidateProgress),
	}
	if man.GK != nil {
		data, err := readSection(dir, man.GK)
		if err != nil {
			return nil, nil, err
		}
		kg, err := core.ReadGK(bytes.NewReader(data), cfg)
		if err != nil {
			return nil, nil, &CorruptError{Path: filepath.Join(dir, man.GK.File), Reason: err.Error()}
		}
		st.KeyGen = kg
	}
	for _, cl := range man.Clusters {
		data, err := readSection(dir, &cl.section)
		if err != nil {
			return nil, nil, err
		}
		cs, err := parseClusters(data, cl.Candidate)
		if err != nil {
			return nil, nil, &CorruptError{Path: filepath.Join(dir, cl.File), Reason: err.Error()}
		}
		if err := checkCandidate(cfg, dir, &cl.section, cl.Candidate); err != nil {
			return nil, nil, err
		}
		st.Clusters[cl.Candidate] = cs
	}
	for _, ps := range man.Pairs {
		if _, done := st.Clusters[ps.Candidate]; done {
			continue // superseded by the candidate's final cluster set
		}
		data, err := readSection(dir, &ps.section)
		if err != nil {
			return nil, nil, err
		}
		pairs, err := parsePairs(data, ps.Candidate, ps.NextPass)
		if err != nil {
			return nil, nil, &CorruptError{Path: filepath.Join(dir, ps.File), Reason: err.Error()}
		}
		if err := checkCandidate(cfg, dir, &ps.section, ps.Candidate); err != nil {
			return nil, nil, err
		}
		if c := cfg.Candidate(ps.Candidate); ps.NextPass > len(c.CompiledKeys()) {
			return nil, nil, &CorruptError{Path: filepath.Join(dir, ps.File),
				Reason: fmt.Sprintf("next pass %d beyond %d keys", ps.NextPass, len(c.CompiledKeys()))}
		}
		st.Progress[ps.Candidate] = &core.CandidateProgress{NextPass: ps.NextPass, Pairs: pairs}
	}
	return &Dir{fsys: fsys, path: dir, man: *man}, st, nil
}

// checkCandidate rejects sections naming candidates absent from the
// configuration (unreachable when fingerprints match, but a defensive
// layer against hand-edited manifests).
func checkCandidate(cfg *config.Config, dir string, sec *section, name string) error {
	if cfg.Candidate(name) == nil {
		return &CorruptError{Path: filepath.Join(dir, sec.File),
			Reason: fmt.Sprintf("unknown candidate %q", name)}
	}
	return nil
}

// readSection reads a manifest-referenced file and verifies its
// SHA-256 before any parsing happens.
func readSection(dir string, sec *section) ([]byte, error) {
	path := filepath.Join(dir, sec.File)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, &CorruptError{Path: path, Reason: "missing section: " + err.Error()}
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != sec.SHA {
		return nil, &CorruptError{Path: path, Reason: "section checksum mismatch"}
	}
	return data, nil
}

// KeysGenerated persists the GK tables and moves the checkpoint into
// the detection phase. Implements core.Checkpointer.
func (d *Dir) KeysGenerated(kg *core.KeyGenResult) (err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	end := d.opSpan("gk")
	defer func() { end(err) }()
	sec, err := d.writeSection("gk", func(w io.Writer) error {
		return core.WriteGK(w, kg)
	})
	if err != nil {
		return err
	}
	old := d.man.GK
	d.man.GK = &sec
	d.man.Phase = PhaseDetect
	if err := d.writeManifest(); err != nil {
		return err
	}
	d.removeOld(old)
	return nil
}

// Progress persists pass-level progress for one candidate, replacing
// any earlier progress section. Implements core.Checkpointer.
func (d *Dir) Progress(candidate string, nextPass int, pairs []cluster.Pair) (err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	end := d.opSpan("pairs")
	defer func() { end(err) }()
	sec, err := d.writeSection("pairs", func(w io.Writer) error {
		return encodePairs(w, candidate, nextPass, pairs)
	})
	if err != nil {
		return err
	}
	old := d.man.dropPairs(candidate)
	d.man.Pairs = append(d.man.Pairs, pairsSection{Candidate: candidate, NextPass: nextPass, section: sec})
	if err := d.writeManifest(); err != nil {
		return err
	}
	if old != "" {
		d.removeOld(&section{File: old})
	}
	return nil
}

// CandidateDone persists a completed candidate's cluster set and
// drops its now-superseded progress section. Implements
// core.Checkpointer.
func (d *Dir) CandidateDone(candidate string, cs *cluster.ClusterSet) (err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.man.clustersFor(candidate) != nil {
		return nil // already durable (idempotent under retries)
	}
	end := d.opSpan("clusters")
	defer func() { end(err) }()
	sec, err := d.writeSection("clusters", func(w io.Writer) error {
		return encodeClusters(w, candidate, cs)
	})
	if err != nil {
		return err
	}
	oldPairs := d.man.dropPairs(candidate)
	d.man.Clusters = append(d.man.Clusters, clusterSection{Candidate: candidate, section: sec})
	if err := d.writeManifest(); err != nil {
		return err
	}
	if oldPairs != "" {
		d.removeOld(&section{File: oldPairs})
	}
	return nil
}

// Finish marks the run complete. A finished checkpoint still resumes
// (every candidate loads as completed), which makes re-running an
// already-done job idempotent.
func (d *Dir) Finish() (err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	end := d.opSpan("finish")
	defer func() { end(err) }()
	d.man.Phase = PhaseDone
	return d.writeManifest()
}

// writeSection writes one immutable section file crash-safely: a
// fresh sequence-numbered name, content through a temp file, fsync,
// rename, directory sync. The returned section carries the SHA-256 of
// the written bytes. Callers hold d.mu.
func (d *Dir) writeSection(kind string, encode func(io.Writer) error) (section, error) {
	d.man.Seq++
	final := fmt.Sprintf("s%05d-%s.tsv", d.man.Seq, kind)
	h := sha256.New()
	if err := d.writeAtomic(final, func(w io.Writer) error {
		return encode(io.MultiWriter(w, h))
	}); err != nil {
		return section{}, err
	}
	return section{File: final, SHA: hex.EncodeToString(h.Sum(nil))}, nil
}

// writeManifest atomically replaces the manifest with the current
// in-memory state. Callers hold d.mu.
func (d *Dir) writeManifest() error {
	data := encodeManifest(&d.man)
	return d.writeAtomic(manifestName, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// writeAtomic runs the temp-write/fsync/rename/dir-sync sequence for
// one file in the run directory.
func (d *Dir) writeAtomic(name string, write func(io.Writer) error) error {
	f, err := d.fsys.CreateTemp(d.path, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp := f.Name()
	bw := bufio.NewWriter(f)
	cw := countWriter{w: bw, n: &d.opBytes}
	fail := func(err error) error {
		f.Close()
		_ = d.fsys.Remove(tmp)
		return fmt.Errorf("checkpoint: %s: %w", name, err)
	}
	if err := write(cw); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		_ = d.fsys.Remove(tmp)
		return fmt.Errorf("checkpoint: %s: %w", name, err)
	}
	if err := d.fsys.Rename(tmp, filepath.Join(d.path, name)); err != nil {
		_ = d.fsys.Remove(tmp)
		return fmt.Errorf("checkpoint: %s: %w", name, err)
	}
	if err := d.fsys.SyncDir(d.path); err != nil {
		return fmt.Errorf("checkpoint: %s: %w", name, err)
	}
	return nil
}

// removeOld deletes a superseded section file. Purely cosmetic — the
// manifest no longer references it — so errors are ignored.
func (d *Dir) removeOld(sec *section) {
	if sec != nil && sec.File != "" {
		_ = d.fsys.Remove(filepath.Join(d.path, sec.File))
	}
}

// isSectionName reports whether name matches the writer's
// sequence-numbered section pattern (s00001-<kind>.tsv).
func isSectionName(name string) bool {
	if !strings.HasPrefix(name, "s") || !strings.HasSuffix(name, ".tsv") {
		return false
	}
	rest, _, ok := strings.Cut(name[1:], "-")
	if !ok {
		return false
	}
	_, err := strconv.Atoi(rest)
	return err == nil
}

// Cluster-set section format:
//
//	#cs	<candidate>	clusters=<n>
//	<cluster id>	<member>,<member>,…
//
// Cluster IDs are the canonical ones cluster.Build assigns (ordered by
// smallest member, starting at 1); parseClusters rebuilds through a
// union-find, so a recovered set is byte-identical to the original.

func encodeClusters(w io.Writer, candidate string, cs *cluster.ClusterSet) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#cs\t%s\tclusters=%d\n", escapeField(candidate), cs.Len())
	for _, c := range cs.Clusters {
		bw.WriteString(strconv.Itoa(c.ID))
		for i, m := range c.Members {
			if i == 0 {
				bw.WriteByte('\t')
			} else {
				bw.WriteByte(',')
			}
			bw.WriteString(strconv.Itoa(m))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

func parseClusters(data []byte, candidate string) (*cluster.ClusterSet, error) {
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) == 0 {
		return nil, errors.New("empty cluster section")
	}
	h := strings.Split(lines[0], "\t")
	if len(h) != 3 || h[0] != "#cs" {
		return nil, errors.New("malformed cluster header")
	}
	if unescapeField(h[1]) != candidate {
		return nil, fmt.Errorf("cluster section for %q, manifest says %q", unescapeField(h[1]), candidate)
	}
	n, err := headerInt(h[2], "clusters")
	if err != nil || n != len(lines)-1 {
		return nil, fmt.Errorf("cluster count mismatch (header %s, %d rows)", h[2], len(lines)-1)
	}
	uf := cluster.NewUnionFind()
	seen := make(map[int]bool)
	for i, line := range lines[1:] {
		_, members, ok := strings.Cut(line, "\t")
		if !ok || members == "" {
			return nil, fmt.Errorf("cluster row %d: malformed", i+1)
		}
		first := -1
		for _, ms := range strings.Split(members, ",") {
			m, err := strconv.Atoi(ms)
			if err != nil {
				return nil, fmt.Errorf("cluster row %d: bad member %q", i+1, ms)
			}
			if seen[m] {
				return nil, fmt.Errorf("cluster row %d: member %d in two clusters", i+1, m)
			}
			seen[m] = true
			uf.Add(m)
			if first < 0 {
				first = m
			} else {
				uf.Union(first, m)
			}
		}
	}
	return cluster.Build(uf), nil
}

// Pair-progress section format:
//
//	#pairs	<candidate>	next=<pass>	n=<count>
//	<a>	<b>

func encodePairs(w io.Writer, candidate string, nextPass int, pairs []cluster.Pair) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#pairs\t%s\tnext=%d\tn=%d\n", escapeField(candidate), nextPass, len(pairs))
	for _, p := range pairs {
		fmt.Fprintf(bw, "%d\t%d\n", p.A, p.B)
	}
	return bw.Flush()
}

func parsePairs(data []byte, candidate string, nextPass int) ([]cluster.Pair, error) {
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) == 0 {
		return nil, errors.New("empty pairs section")
	}
	h := strings.Split(lines[0], "\t")
	if len(h) != 4 || h[0] != "#pairs" {
		return nil, errors.New("malformed pairs header")
	}
	if unescapeField(h[1]) != candidate {
		return nil, fmt.Errorf("pairs section for %q, manifest says %q", unescapeField(h[1]), candidate)
	}
	next, err := headerInt(h[2], "next")
	if err != nil || next != nextPass {
		return nil, fmt.Errorf("pairs pass mismatch (header %s, manifest %d)", h[2], nextPass)
	}
	n, err := headerInt(h[3], "n")
	if err != nil || n != len(lines)-1 {
		return nil, fmt.Errorf("pairs count mismatch (header %s, %d rows)", h[3], len(lines)-1)
	}
	pairs := make([]cluster.Pair, 0, n)
	for i, line := range lines[1:] {
		as, bs, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("pairs row %d: malformed", i+1)
		}
		a, err1 := strconv.Atoi(as)
		b, err2 := strconv.Atoi(bs)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("pairs row %d: bad pair %q", i+1, line)
		}
		pairs = append(pairs, cluster.MakePair(a, b))
	}
	return pairs, nil
}

func headerInt(s, key string) (int, error) {
	rest, ok := strings.CutPrefix(s, key+"=")
	if !ok {
		return 0, fmt.Errorf("missing %s=", key)
	}
	return strconv.Atoi(rest)
}
