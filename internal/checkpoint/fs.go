package checkpoint

import (
	"io"
	"os"
	"path/filepath"
)

// FS abstracts the mutating file operations a checkpoint directory
// performs — exactly the steps where a crash can lose or tear data.
// Production code uses OSFS; the fault-injection harness
// (internal/checkpoint/faultfs) wraps it to simulate a crash at every
// individual step. Reads are not abstracted: recovery always happens
// in a fresh process over whatever bytes actually reached the disk.
type FS interface {
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(dir string) error
	// CreateTemp creates a new temporary file in dir; the caller
	// writes, syncs, closes, and renames it into place.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file (used only for best-effort cleanup of
	// superseded sections; a crash here is harmless).
	Remove(name string) error
	// RemoveAll deletes a whole directory tree (spool garbage
	// collection and quarantine cleanup).
	RemoveAll(path string) error
	// Link creates newname as a hard link to oldname, failing if
	// newname already exists — the exclusive-create primitive the
	// spool's lease protocol uses for mutual exclusion.
	Link(oldname, newname string) error
	// OpenAppend opens name for appending, creating it if absent —
	// the journal primitive: callers append one record, sync, and
	// close, so a crash can tear at most the final record.
	OpenAppend(name string) (File, error)
	// SyncDir flushes the directory entry metadata so a completed
	// rename survives power loss.
	SyncDir(dir string) error
}

// File is the writable handle returned by FS.CreateTemp.
type File interface {
	io.Writer
	// Sync flushes the file contents to stable storage.
	Sync() error
	Close() error
	// Name returns the file's path.
	Name() string
}

// OSFS returns the real operating-system implementation of FS.
func OSFS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) RemoveAll(path string) error { return os.RemoveAll(path) }

func (osFS) Link(oldname, newname string) error { return os.Link(oldname, newname) }

func (osFS) OpenAppend(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	// Some filesystems refuse fsync on directories; the rename itself
	// is still atomic there, so degrade silently rather than failing
	// the checkpoint.
	_ = d.Sync()
	return d.Close()
}
