package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// The manifest is the checkpoint's single source of truth: a small
// line-oriented TSV file naming the run's fingerprints, phase, and
// every section file with its SHA-256. It is rewritten atomically
// (temp + fsync + rename) after each durable step; section files are
// immutable once renamed into place, so a crash anywhere leaves the
// previous manifest pointing at intact files. A trailing self-checksum
// line detects torn or corrupted manifest bytes.
//
// Format (version 1):
//
//	#sxnm-checkpoint	v1
//	seq	<n>
//	config	<sha256 hex>
//	document	<sha256 hex>
//	phase	<key-generation|detection|done>
//	gk	<file>	<sha256 hex>
//	clusters	<candidate>	<file>	<sha256 hex>
//	pairs	<candidate>	<next pass>	<file>	<sha256 hex>
//	#checksum	<sha256 hex of all preceding bytes>
//
// Candidate names are percent-escaped (tab, newline, carriage return,
// percent); section file names are bare basenames inside the run
// directory.

const (
	manifestName  = "manifest.tsv"
	manifestMagic = "#sxnm-checkpoint"
	formatVersion = 1
)

// Phases recorded in the manifest.
const (
	// PhaseKeyGen: key generation has not completed; only the
	// fingerprints are durable and a resume restarts from scratch.
	PhaseKeyGen = "key-generation"
	// PhaseDetect: the GK tables are durable and detection is under
	// way; a resume skips key generation and completed candidates.
	PhaseDetect = "detection"
	// PhaseDone: every candidate's cluster set is durable.
	PhaseDone = "done"
)

type section struct {
	File string
	SHA  string
}

type clusterSection struct {
	Candidate string
	section
}

type pairsSection struct {
	Candidate string
	NextPass  int
	section
}

type manifest struct {
	Seq      int // highest section sequence number handed out
	ConfigFP string
	DocFP    string
	Phase    string
	GK       *section
	Clusters []clusterSection
	Pairs    []pairsSection
}

// clustersFor returns the completed-candidate section, or nil.
func (m *manifest) clustersFor(candidate string) *clusterSection {
	for i := range m.Clusters {
		if m.Clusters[i].Candidate == candidate {
			return &m.Clusters[i]
		}
	}
	return nil
}

// dropPairs removes the in-progress section for candidate, returning
// the file it referenced ("" if none).
func (m *manifest) dropPairs(candidate string) string {
	for i := range m.Pairs {
		if m.Pairs[i].Candidate == candidate {
			old := m.Pairs[i].File
			m.Pairs = append(m.Pairs[:i], m.Pairs[i+1:]...)
			return old
		}
	}
	return ""
}

func encodeManifest(m *manifest) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\tv%d\n", manifestMagic, formatVersion)
	fmt.Fprintf(&b, "seq\t%d\n", m.Seq)
	fmt.Fprintf(&b, "config\t%s\n", m.ConfigFP)
	fmt.Fprintf(&b, "document\t%s\n", m.DocFP)
	fmt.Fprintf(&b, "phase\t%s\n", m.Phase)
	if m.GK != nil {
		fmt.Fprintf(&b, "gk\t%s\t%s\n", m.GK.File, m.GK.SHA)
	}
	for _, c := range m.Clusters {
		fmt.Fprintf(&b, "clusters\t%s\t%s\t%s\n", escapeField(c.Candidate), c.File, c.SHA)
	}
	for _, p := range m.Pairs {
		fmt.Fprintf(&b, "pairs\t%s\t%d\t%s\t%s\n", escapeField(p.Candidate), p.NextPass, p.File, p.SHA)
	}
	body := b.String()
	sum := sha256.Sum256([]byte(body))
	return []byte(body + "#checksum\t" + hex.EncodeToString(sum[:]) + "\n")
}

// parseManifest validates and decodes manifest bytes. Any deviation —
// truncation, a flipped byte, unknown directives, malformed fields —
// is a structural corruption error; it never panics on arbitrary
// input (fuzzed by FuzzParseManifest).
func parseManifest(data []byte) (*manifest, error) {
	corrupt := func(format string, args ...any) (*manifest, error) {
		return nil, fmt.Errorf("manifest: "+format, args...)
	}
	text := string(data)
	// The self-checksum line covers everything before it; verify first
	// so all later diagnostics run on bytes known to be intact.
	idx := strings.LastIndex(text, "#checksum\t")
	if idx < 0 || !strings.HasSuffix(text, "\n") {
		return corrupt("missing checksum trailer (torn write?)")
	}
	body, trailer := text[:idx], text[idx:]
	wantSum := strings.TrimSuffix(strings.TrimPrefix(trailer, "#checksum\t"), "\n")
	if !isHexDigest(wantSum) {
		return corrupt("malformed checksum trailer")
	}
	sum := sha256.Sum256([]byte(body))
	if hex.EncodeToString(sum[:]) != wantSum {
		return corrupt("checksum mismatch")
	}

	m := &manifest{}
	seen := map[string]bool{}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) == 0 || lines[0] != manifestMagic+"\tv"+strconv.Itoa(formatVersion) {
		f := strings.SplitN(lines[0], "\t", 2)
		if len(f) == 2 && f[0] == manifestMagic {
			return nil, &MismatchError{Field: "format-version",
				Want: "v" + strconv.Itoa(formatVersion), Got: f[1]}
		}
		return corrupt("bad magic line")
	}
	candidates := map[string]bool{}
	for lineNo, line := range lines[1:] {
		f := strings.Split(line, "\t")
		bad := func(why string) (*manifest, error) {
			return corrupt("line %d: %s", lineNo+2, why)
		}
		switch f[0] {
		case "seq", "config", "document", "phase":
			if len(f) != 2 {
				return bad("want 2 fields")
			}
			if seen[f[0]] {
				return bad("duplicate " + f[0])
			}
			seen[f[0]] = true
			switch f[0] {
			case "seq":
				n, err := strconv.Atoi(f[1])
				if err != nil || n < 0 {
					return bad("malformed seq")
				}
				m.Seq = n
			case "config":
				if !isHexDigest(f[1]) {
					return bad("malformed config fingerprint")
				}
				m.ConfigFP = f[1]
			case "document":
				if !isHexDigest(f[1]) {
					return bad("malformed document fingerprint")
				}
				m.DocFP = f[1]
			case "phase":
				if f[1] != PhaseKeyGen && f[1] != PhaseDetect && f[1] != PhaseDone {
					return bad("unknown phase " + strconv.Quote(f[1]))
				}
				m.Phase = f[1]
			}
		case "gk":
			if len(f) != 3 || m.GK != nil {
				return bad("malformed or duplicate gk section")
			}
			if !isSectionFile(f[1]) || !isHexDigest(f[2]) {
				return bad("malformed gk section")
			}
			m.GK = &section{File: f[1], SHA: f[2]}
		case "clusters":
			if len(f) != 4 || !isSectionFile(f[2]) || !isHexDigest(f[3]) {
				return bad("malformed clusters section")
			}
			name := unescapeField(f[1])
			if candidates["c:"+name] {
				return bad("duplicate clusters section for " + strconv.Quote(name))
			}
			candidates["c:"+name] = true
			m.Clusters = append(m.Clusters, clusterSection{Candidate: name, section: section{File: f[2], SHA: f[3]}})
		case "pairs":
			if len(f) != 5 || !isSectionFile(f[3]) || !isHexDigest(f[4]) {
				return bad("malformed pairs section")
			}
			name := unescapeField(f[1])
			pass, err := strconv.Atoi(f[2])
			if err != nil || pass < 0 {
				return bad("malformed pairs pass")
			}
			if candidates["p:"+name] {
				return bad("duplicate pairs section for " + strconv.Quote(name))
			}
			candidates["p:"+name] = true
			m.Pairs = append(m.Pairs, pairsSection{Candidate: name, NextPass: pass, section: section{File: f[3], SHA: f[4]}})
		default:
			return bad("unknown directive " + strconv.Quote(f[0]))
		}
	}
	for _, key := range []string{"seq", "config", "document", "phase"} {
		if !seen[key] {
			return corrupt("missing %s line", key)
		}
	}
	if m.Phase != PhaseKeyGen && m.GK == nil {
		return corrupt("phase %s without gk section", m.Phase)
	}
	return m, nil
}

func isHexDigest(s string) bool {
	if len(s) != 2*sha256.Size {
		return false
	}
	_, err := hex.DecodeString(s)
	return err == nil
}

// isSectionFile accepts only the bare file names the writer generates,
// so a tampered manifest cannot point reads outside the run directory.
func isSectionFile(s string) bool {
	if s == "" || s == "." || s == ".." {
		return false
	}
	return !strings.ContainsAny(s, "/\\\x00")
}

// escapeField percent-escapes the characters that carry structure in
// the manifest (and the percent itself).
func escapeField(s string) string {
	if !strings.ContainsAny(s, "\t\n\r%") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\t', '\n', '\r', '%':
			fmt.Fprintf(&b, "%%%02X", s[i])
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func unescapeField(s string) string {
	if !strings.ContainsRune(s, '%') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '%' && i+2 < len(s) {
			if v, err := strconv.ParseUint(s[i+1:i+3], 16, 8); err == nil {
				b.WriteByte(byte(v))
				i += 2
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
