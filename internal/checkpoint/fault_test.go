package checkpoint_test

// The crash-recovery invariant test: a checkpointed run is killed at
// every single I/O step the checkpoint layer performs — temp-file
// creation, each write (clean and torn), fsync, close, rename,
// directory sync, removal — and recovered in a "fresh process" (a
// plain-OS reload of whatever bytes survived). The recovered clusters
// must be byte-identical to an uninterrupted run every time; a crash
// may cost progress (clean restart) but can never produce wrong
// output. This is the acceptance criterion of the checkpoint design.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/checkpoint/faultfs"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/xmltree"
)

// faultCorpus mirrors the in-package test corpus: nested candidates,
// multi-key movie detection, duplicates at both levels.
const faultCorpusXML = `
<movie_database>
  <movies>
    <movie year="1999"><title>The Matrix</title><people><person>Keanu Reeves</person><person>Carrie-Anne Moss</person></people></movie>
    <movie year="1999"><title>Matrix, The</title><people><person>Keanu Reves</person><person>Carrie-Anne Moss</person></people></movie>
    <movie year="1998"><title>Mask of Zorro</title><people><person>Antonio Banderas</person></people></movie>
    <movie year="1999"><title>The Matrrix</title><people><person>Keanu Reeves</person></people></movie>
    <movie year="1998"><title>The Mask of Zorro</title><people><person>Antonio Bandera</person></people></movie>
    <movie year="1972"><title>The Godfather</title><people><person>Marlon Brando</person><person>Al Pacino</person></people></movie>
    <movie year="1972"><title>Godfather, The</title><people><person>Marlon Brando</person><person>Al Pacinno</person></people></movie>
    <movie year="1994"><title>Leon</title><people><person>Jean Reno</person></people></movie>
  </movies>
</movie_database>`

func faultConfig(t *testing.T) *config.Config {
	t.Helper()
	cfg := &config.Config{
		Candidates: []config.Candidate{
			{
				Name:  "movie",
				XPath: "movie_database/movies/movie",
				Paths: []config.PathDef{
					{ID: 1, RelPath: "title/text()"},
					{ID: 2, RelPath: "@year"},
				},
				OD: []config.ODEntry{
					{PathID: 1, Relevance: 0.8},
					{PathID: 2, Relevance: 0.2, SimFunc: "year"},
				},
				Keys: []config.KeyDef{
					{Name: "title", Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "K1-K5"}}},
					{Name: "year", Parts: []config.KeyPart{
						{PathID: 2, Order: 1, Pattern: "D3,D4"},
						{PathID: 1, Order: 2, Pattern: "K1,K2"},
					}},
				},
				Rule:          config.RuleEither,
				ODThreshold:   0.7,
				DescThreshold: 0.4,
				Window:        4,
			},
			{
				Name:      "person",
				XPath:     "movie_database/movies/movie/people/person",
				Paths:     []config.PathDef{{ID: 1, RelPath: "text()"}},
				OD:        []config.ODEntry{{PathID: 1, Relevance: 1}},
				Keys:      []config.KeyDef{{Name: "name", Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "C1-C6"}}}},
				Threshold: 0.85,
				Window:    4,
			},
		},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestCrashRecoveryAtEveryStep(t *testing.T) {
	cfg := faultConfig(t)
	doc, err := xmltree.ParseString(faultCorpusXML)
	if err != nil {
		t.Fatal(err)
	}
	cfgFP, err := checkpoint.ConfigFingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	docFP, err := checkpoint.DocumentFingerprint(doc)
	if err != nil {
		t.Fatal(err)
	}

	ref, err := core.Run(doc, cfg, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := renderClusters(ref)

	// One crash-free run under the counting FS learns how many I/O
	// steps a full checkpointed run performs.
	run := func(fsys checkpoint.FS, dir string) (*core.Result, error) {
		d, err := checkpoint.Create(fsys, dir, cfgFP, docFP)
		if err != nil {
			return nil, err
		}
		res, err := core.RunContext(context.Background(), doc, cfg,
			core.Options{Checkpointer: d})
		if err != nil {
			return res, err
		}
		return res, d.Finish()
	}
	counter := faultfs.New(checkpoint.OSFS())
	if _, err := run(counter, t.TempDir()); err != nil {
		t.Fatalf("crash-free run: %v", err)
	}
	steps := counter.Steps()
	if steps < 20 {
		t.Fatalf("only %d I/O steps; the corpus exercises too little of the checkpoint layer", steps)
	}
	t.Logf("full checkpointed run = %d I/O steps", steps)

	// recover reloads the surviving bytes exactly as a fresh process
	// would (healthy OS filesystem, plain reads) and continues to
	// completion — resuming when a valid checkpoint exists, restarting
	// clean otherwise. Returns the clusters plus whether state survived.
	recover := func(t *testing.T, dir string) (string, bool) {
		t.Helper()
		d, st, err := checkpoint.Load(checkpoint.OSFS(), dir, cfg, cfgFP, docFP)
		switch {
		case err == nil:
		case errors.Is(err, checkpoint.ErrNoCheckpoint), errors.Is(err, checkpoint.ErrCorrupt):
			res, rerr := run(checkpoint.OSFS(), dir)
			if rerr != nil {
				t.Fatalf("clean restart after %v: %v", err, rerr)
			}
			return renderClusters(res), false
		default:
			t.Fatalf("load after crash: %v", err)
		}
		opts := core.Options{Checkpointer: d}
		resumedState := st.KeyGen != nil || len(st.Clusters) > 0 || len(st.Progress) > 0
		var res *core.Result
		if st.KeyGen == nil {
			res, err = core.RunContext(context.Background(), doc, cfg, opts)
		} else {
			opts.Resume = st.ResumeState()
			res, err = core.DetectContext(context.Background(), st.KeyGen, cfg, opts)
		}
		if err != nil {
			t.Fatalf("resume after crash: %v", err)
		}
		if err := d.Finish(); err != nil {
			t.Fatalf("finish after crash: %v", err)
		}
		return renderClusters(res), resumedState
	}

	for _, torn := range []bool{false, true} {
		torn := torn
		name := "clean"
		if torn {
			name = "torn"
		}
		t.Run(name, func(t *testing.T) {
			resumed, restarted, completed := 0, 0, 0
			for at := 1; at <= steps; at++ {
				dir := t.TempDir()
				fsys := faultfs.New(checkpoint.OSFS())
				fsys.CrashAt(at, torn)
				_, runErr := run(fsys, dir)
				if !fsys.Crashed() {
					t.Fatalf("crash at step %d never fired (run err: %v)", at, runErr)
				}
				if runErr == nil {
					// The crash hit only post-completion bookkeeping
					// (e.g. cleanup of a superseded section); the run's
					// own result already stood.
					completed++
				}
				got, fromState := recover(t, dir)
				if got != want {
					t.Errorf("%s crash at step %d/%d: recovered clusters differ\ngot:\n%s\nwant:\n%s",
						name, at, steps, got, want)
				}
				if fromState {
					resumed++
				} else {
					restarted++
				}
			}
			t.Logf("%s crashes: %d steps — %d resumed from checkpoint, %d clean restarts, %d finished anyway",
				name, steps, resumed, restarted, completed)
			if resumed == 0 {
				t.Error("no crash point resumed from checkpoint state; the resume path went untested")
			}
			if restarted == 0 {
				t.Error("no crash point forced a clean restart; the fallback path went untested")
			}
		})
	}
}

func renderClusters(res *core.Result) string {
	s := ""
	for _, name := range []string{"movie", "person"} {
		cs := res.Clusters[name]
		if cs == nil {
			return fmt.Sprintf("missing cluster set %q", name)
		}
		s += "== " + name + " ==\n" + cs.String()
	}
	return s
}
