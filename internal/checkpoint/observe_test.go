package checkpoint

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// A checkpointed run with an observer attached must account for every
// durable write: one SpanCheckpoint span per operation, with the
// bytes/writes counters matching the emitted spans exactly.
func TestCheckpointObservation(t *testing.T) {
	cfg, doc := corpusConfig(t), corpusDoc(t)
	cfgFP, docFP := fingerprints(t, cfg, doc)

	ring := obs.NewRing(1 << 12)
	col := obs.NewCollector()
	ob := obs.New(ring, col)

	d, err := Create(OSFS(), t.TempDir(), cfgFP, docFP)
	if err != nil {
		t.Fatal(err)
	}
	d.SetObserver(ob)
	if _, err := core.RunContext(context.Background(), doc, cfg,
		core.Options{Checkpointer: d, Observer: ob}); err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}

	kinds := map[string]int{}
	var spanBytes, spans int64
	for _, r := range ring.Records() {
		if r.Name != obs.SpanCheckpoint {
			continue
		}
		spans++
		spanBytes += r.AttrInt(obs.AttrBytes)
		kinds[r.AttrString(obs.AttrKind)]++
	}
	if kinds["gk"] != 1 || kinds["finish"] != 1 {
		t.Errorf("operation kinds = %v", kinds)
	}
	if kinds["clusters"] != len(cfg.Candidates) {
		t.Errorf("cluster writes = %d, want %d", kinds["clusters"], len(cfg.Candidates))
	}
	if spanBytes <= 0 {
		t.Fatal("no bytes attributed to checkpoint writes")
	}

	m := ob.Metrics()
	if m.CheckpointWrites.Load() != spans {
		t.Errorf("CheckpointWrites = %d, spans = %d", m.CheckpointWrites.Load(), spans)
	}
	if m.CheckpointBytes.Load() != spanBytes {
		t.Errorf("CheckpointBytes = %d, span sum = %d", m.CheckpointBytes.Load(), spanBytes)
	}

	rep := col.Report(m)
	if rep.Checkpoint == nil || rep.Checkpoint.Writes != spans || rep.Checkpoint.Bytes != spanBytes {
		t.Errorf("report checkpoint = %+v, want %d writes / %d bytes", rep.Checkpoint, spans, spanBytes)
	}
}

// SetObserver with a disabled observer must turn accounting off.
func TestCheckpointObserverDisabled(t *testing.T) {
	cfg, doc := corpusConfig(t), corpusDoc(t)
	cfgFP, docFP := fingerprints(t, cfg, doc)
	ring := obs.NewRing(16)
	ob := obs.New(ring)
	ob.SetEnabled(false)

	d, err := Create(OSFS(), t.TempDir(), cfgFP, docFP)
	if err != nil {
		t.Fatal(err)
	}
	d.SetObserver(ob)
	if _, err := core.RunContext(context.Background(), doc, cfg,
		core.Options{Checkpointer: d}); err != nil {
		t.Fatal(err)
	}
	if got := len(ring.Records()); got != 0 {
		t.Errorf("disabled observer saw %d records", got)
	}
	if ob.Metrics().CheckpointWrites.Load() != 0 {
		t.Error("disabled observer counted writes")
	}
}
