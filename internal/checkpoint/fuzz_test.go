package checkpoint

// Fuzz target for the checkpoint manifest reader: arbitrary bytes must
// parse or fail with an error — never panic — and every accepted
// manifest must survive an encode/parse round trip unchanged. Seed
// corpus lives under testdata/fuzz/FuzzParseManifest.

import (
	"reflect"
	"strings"
	"testing"
)

func FuzzParseManifest(f *testing.F) {
	fp := strings.Repeat("ab", 32)
	valid := encodeManifest(&manifest{
		Seq:      3,
		ConfigFP: fp,
		DocFP:    fp,
		Phase:    PhaseDetect,
		GK:       &section{File: "s00001-gk.tsv", SHA: fp},
		Clusters: []clusterSection{{Candidate: "movie", section: section{File: "s00002-clusters.tsv", SHA: fp}}},
		Pairs:    []pairsSection{{Candidate: "person", NextPass: 1, section: section{File: "s00003-pairs.tsv", SHA: fp}}},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                     // torn write
	f.Add([]byte("#sxnm-checkpoint\tv1\n"))                         // no checksum
	f.Add([]byte("#sxnm-checkpoint\tv99\n#checksum\t" + fp + "\n")) // future version
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseManifest(data)
		if err != nil {
			return // rejected cleanly
		}
		again, err := parseManifest(encodeManifest(m))
		if err != nil {
			t.Fatalf("re-parse of re-encoded manifest: %v\ninput: %q", err, data)
		}
		if !reflect.DeepEqual(m, again) {
			t.Errorf("manifest changed across encode/parse:\nfirst:  %+v\nsecond: %+v", m, again)
		}
	})
}
