package checkpoint

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/xmltree"
)

// The test corpus: nested movie/person candidates with duplicates at
// both levels, two movie keys (multi-pass), so checkpoints cover the
// bottom-up order, pass progress, and descendant cluster reuse.
const corpusXML = `
<movie_database>
  <movies>
    <movie year="1999"><title>The Matrix</title><people><person>Keanu Reeves</person><person>Carrie-Anne Moss</person></people></movie>
    <movie year="1999"><title>Matrix, The</title><people><person>Keanu Reves</person><person>Carrie-Anne Moss</person></people></movie>
    <movie year="1998"><title>Mask of Zorro</title><people><person>Antonio Banderas</person></people></movie>
    <movie year="1999"><title>The Matrrix</title><people><person>Keanu Reeves</person></people></movie>
    <movie year="1998"><title>The Mask of Zorro</title><people><person>Antonio Bandera</person></people></movie>
    <movie year="1972"><title>The Godfather</title><people><person>Marlon Brando</person><person>Al Pacino</person></people></movie>
    <movie year="1972"><title>Godfather, The</title><people><person>Marlon Brando</person><person>Al Pacinno</person></people></movie>
    <movie year="1994"><title>Leon</title><people><person>Jean Reno</person></people></movie>
  </movies>
</movie_database>`

func corpusConfig(t *testing.T) *config.Config {
	t.Helper()
	cfg := &config.Config{
		Candidates: []config.Candidate{
			{
				Name:  "movie",
				XPath: "movie_database/movies/movie",
				Paths: []config.PathDef{
					{ID: 1, RelPath: "title/text()"},
					{ID: 2, RelPath: "@year"},
				},
				OD: []config.ODEntry{
					{PathID: 1, Relevance: 0.8},
					{PathID: 2, Relevance: 0.2, SimFunc: "year"},
				},
				Keys: []config.KeyDef{
					{Name: "title", Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "K1-K5"}}},
					{Name: "year", Parts: []config.KeyPart{
						{PathID: 2, Order: 1, Pattern: "D3,D4"},
						{PathID: 1, Order: 2, Pattern: "K1,K2"},
					}},
				},
				Rule:          config.RuleEither,
				ODThreshold:   0.7,
				DescThreshold: 0.4,
				Window:        4,
			},
			{
				Name:      "person",
				XPath:     "movie_database/movies/movie/people/person",
				Paths:     []config.PathDef{{ID: 1, RelPath: "text()"}},
				OD:        []config.ODEntry{{PathID: 1, Relevance: 1}},
				Keys:      []config.KeyDef{{Name: "name", Parts: []config.KeyPart{{PathID: 1, Order: 1, Pattern: "C1-C6"}}}},
				Threshold: 0.85,
				Window:    4,
			},
		},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

func corpusDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(corpusXML)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func fingerprints(t *testing.T, cfg *config.Config, doc *xmltree.Document) (string, string) {
	t.Helper()
	cfgFP, err := ConfigFingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	docFP, err := DocumentFingerprint(doc)
	if err != nil {
		t.Fatal(err)
	}
	return cfgFP, docFP
}

// clustersString canonically renders cluster sets for byte-identity
// comparisons across runs.
func clustersString(m map[string]*cluster.ClusterSet) string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "== %s ==\n%s", name, m[name].String())
	}
	return b.String()
}

// referenceClusters runs the corpus uninterrupted, without any
// checkpointing, and returns the canonical cluster rendering.
func referenceClusters(t *testing.T) string {
	t.Helper()
	res, err := core.Run(corpusDoc(t), corpusConfig(t), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("reference run: %d cluster sets", len(res.Clusters))
	}
	dups := 0
	for _, cs := range res.Clusters {
		dups += len(cs.NonSingletons())
	}
	if dups == 0 {
		t.Fatal("reference run found no duplicates; corpus is too easy")
	}
	return clustersString(res.Clusters)
}

// runCheckpointed performs one fresh checkpointed run over the corpus
// through the given FS, as the facade would.
func runCheckpointed(fsys FS, dir string, cfg *config.Config, doc *xmltree.Document,
	cfgFP, docFP string, lim core.Limits) (*core.Result, error) {
	d, err := Create(fsys, dir, cfgFP, docFP)
	if err != nil {
		return nil, err
	}
	res, err := core.RunContext(context.Background(), doc, cfg, core.Options{Limits: lim, Checkpointer: d})
	if err != nil {
		return res, err
	}
	return res, d.Finish()
}

// resumeRun loads the checkpoint in dir and continues it to
// completion, falling back to a clean restart when nothing valid
// survives — the recovery policy the facade implements.
func resumeRun(t *testing.T, fsys FS, dir string, cfg *config.Config, doc *xmltree.Document,
	cfgFP, docFP string) *core.Result {
	t.Helper()
	d, st, err := Load(fsys, dir, cfg, cfgFP, docFP)
	switch {
	case err == nil:
	case errors.Is(err, ErrNoCheckpoint), errors.Is(err, ErrCorrupt):
		res, rerr := runCheckpointed(fsys, dir, cfg, doc, cfgFP, docFP, core.Limits{})
		if rerr != nil {
			t.Fatalf("clean restart after %v: %v", err, rerr)
		}
		return res
	default:
		t.Fatalf("load: %v", err)
	}
	opts := core.Options{Checkpointer: d}
	var res *core.Result
	if st.KeyGen == nil {
		res, err = core.RunContext(context.Background(), doc, cfg, opts)
	} else {
		opts.Resume = st.ResumeState()
		res, err = core.DetectContext(context.Background(), st.KeyGen, cfg, opts)
	}
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	return res
}

func TestCheckpointedRunMatchesPlainRun(t *testing.T) {
	cfg, doc := corpusConfig(t), corpusDoc(t)
	cfgFP, docFP := fingerprints(t, cfg, doc)
	dir := t.TempDir()
	res, err := runCheckpointed(OSFS(), dir, cfg, doc, cfgFP, docFP, core.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := clustersString(res.Clusters), referenceClusters(t); got != want {
		t.Errorf("checkpointed clusters differ:\n%s\nwant:\n%s", got, want)
	}
	// The finished checkpoint reloads as a complete, resumable state.
	_, st, err := Load(OSFS(), dir, cfg, cfgFP, docFP)
	if err != nil {
		t.Fatalf("load finished checkpoint: %v", err)
	}
	if st.Phase != PhaseDone {
		t.Errorf("phase = %q, want %q", st.Phase, PhaseDone)
	}
	if got := clustersString(st.Clusters); got != referenceClusters(t) {
		t.Errorf("recovered clusters differ:\n%s", got)
	}
	if len(st.Progress) != 0 {
		t.Errorf("finished checkpoint still has progress sections: %v", st.Progress)
	}
}

// TestResumeAfterEveryInterruption interrupts the run at every
// possible comparison count and resumes each time, asserting the
// recovered clusters are byte-identical to an uninterrupted run —
// the acceptance invariant for graceful (non-crash) interruptions.
func TestResumeAfterEveryInterruption(t *testing.T) {
	cfg, doc := corpusConfig(t), corpusDoc(t)
	cfgFP, docFP := fingerprints(t, cfg, doc)
	want := referenceClusters(t)

	full, err := core.Run(doc, cfg, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := full.Stats.Comparisons
	if total < 10 {
		t.Fatalf("corpus yields only %d comparisons; too few interruption points", total)
	}
	resumedWithProgress := 0
	// A cap of total comparisons never trips, so sweep strictly below.
	for cap := 1; cap < total; cap++ {
		dir := t.TempDir()
		lim := core.Limits{MaxComparisons: cap, CheckEvery: 1}
		res, err := runCheckpointed(OSFS(), dir, cfg, doc, cfgFP, docFP, lim)
		if err == nil {
			t.Fatalf("cap %d: run unexpectedly completed", cap)
		}
		if !errors.Is(err, core.ErrLimitExceeded) {
			t.Fatalf("cap %d: %v", cap, err)
		}
		if res == nil || res.Incomplete == nil {
			t.Fatalf("cap %d: no partial result", cap)
		}
		_, st, lerr := Load(OSFS(), dir, cfg, cfgFP, docFP)
		if lerr != nil {
			t.Fatalf("cap %d: load: %v", cap, lerr)
		}
		if len(st.Progress) > 0 {
			resumedWithProgress++
		}
		resumed := resumeRun(t, OSFS(), dir, cfg, doc, cfgFP, docFP)
		if got := clustersString(resumed.Clusters); got != want {
			t.Errorf("cap %d: resumed clusters differ:\n%s\nwant:\n%s", cap, got, want)
		}
	}
	if resumedWithProgress == 0 {
		t.Error("no interruption left mid-candidate pass progress; resume path untested")
	}
}

func TestLoadRejectsMismatchedFingerprints(t *testing.T) {
	cfg, doc := corpusConfig(t), corpusDoc(t)
	cfgFP, docFP := fingerprints(t, cfg, doc)
	dir := t.TempDir()
	if _, err := runCheckpointed(OSFS(), dir, cfg, doc, cfgFP, docFP, core.Limits{}); err != nil {
		t.Fatal(err)
	}

	otherCfg := corpusConfig(t)
	otherCfg.Candidates[0].Window = 9
	otherFP, err := ConfigFingerprint(otherCfg)
	if err != nil {
		t.Fatal(err)
	}
	if otherFP == cfgFP {
		t.Fatal("window change did not alter the config fingerprint")
	}
	_, _, lerr := Load(OSFS(), dir, otherCfg, otherFP, docFP)
	var me *MismatchError
	if !errors.As(lerr, &me) || me.Field != "config" {
		t.Errorf("config mismatch: got %v", lerr)
	}
	if !errors.Is(lerr, ErrMismatch) {
		t.Errorf("mismatch error does not match ErrMismatch: %v", lerr)
	}

	otherDoc, err := xmltree.ParseString(strings.Replace(corpusXML, "Leon", "Heat", 1))
	if err != nil {
		t.Fatal(err)
	}
	otherDocFP, err := DocumentFingerprint(otherDoc)
	if err != nil {
		t.Fatal(err)
	}
	_, _, lerr = Load(OSFS(), dir, cfg, cfgFP, otherDocFP)
	if !errors.As(lerr, &me) || me.Field != "document" {
		t.Errorf("document mismatch: got %v", lerr)
	}
}

func TestLoadRejectsCorruptBytes(t *testing.T) {
	cfg, doc := corpusConfig(t), corpusDoc(t)
	cfgFP, docFP := fingerprints(t, cfg, doc)

	setup := func(t *testing.T) string {
		dir := t.TempDir()
		if _, err := runCheckpointed(OSFS(), dir, cfg, doc, cfgFP, docFP, core.Limits{}); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	loadErr := func(dir string) error {
		_, _, err := Load(OSFS(), dir, cfg, cfgFP, docFP)
		return err
	}

	t.Run("missing", func(t *testing.T) {
		if err := loadErr(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
			t.Errorf("want ErrNoCheckpoint, got %v", err)
		}
	})
	t.Run("torn-manifest", func(t *testing.T) {
		dir := setup(t)
		path := filepath.Join(dir, manifestName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := loadErr(dir); !errors.Is(err, ErrCorrupt) {
			t.Errorf("torn manifest: want ErrCorrupt, got %v", err)
		}
	})
	t.Run("flipped-byte-everywhere", func(t *testing.T) {
		dir := setup(t)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			path := filepath.Join(dir, e.Name())
			orig, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for _, pos := range []int{0, len(orig) / 2, len(orig) - 1} {
				flipped := append([]byte(nil), orig...)
				flipped[pos] ^= 0x20
				if err := os.WriteFile(path, flipped, 0o644); err != nil {
					t.Fatal(err)
				}
				if err := loadErr(dir); !errors.Is(err, ErrCorrupt) {
					t.Errorf("%s byte %d flipped: want ErrCorrupt, got %v", e.Name(), pos, err)
				}
			}
			if err := os.WriteFile(path, orig, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		// Restored bytes load cleanly again.
		if err := loadErr(dir); err != nil {
			t.Errorf("restored checkpoint no longer loads: %v", err)
		}
	})
	t.Run("missing-section", func(t *testing.T) {
		dir := setup(t)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		removed := false
		for _, e := range entries {
			if isSectionName(e.Name()) {
				if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
					t.Fatal(err)
				}
				removed = true
				break
			}
		}
		if !removed {
			t.Fatal("no section file found")
		}
		if err := loadErr(dir); !errors.Is(err, ErrCorrupt) {
			t.Errorf("missing section: want ErrCorrupt, got %v", err)
		}
	})
	t.Run("clean-restart-after-corruption", func(t *testing.T) {
		dir := setup(t)
		path := filepath.Join(dir, manifestName)
		if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		res := resumeRun(t, OSFS(), dir, cfg, doc, cfgFP, docFP)
		if got := clustersString(res.Clusters); got != referenceClusters(t) {
			t.Errorf("clean restart clusters differ:\n%s", got)
		}
	})
}

// TestParallelCheckpointedRun exercises the concurrent Progress /
// CandidateDone paths under -race and confirms result identity.
func TestParallelCheckpointedRun(t *testing.T) {
	cfg, doc := corpusConfig(t), corpusDoc(t)
	cfgFP, docFP := fingerprints(t, cfg, doc)
	dir := t.TempDir()
	d, err := Create(OSFS(), dir, cfgFP, docFP)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunContext(context.Background(), doc, cfg,
		core.Options{Parallel: true, Checkpointer: d})
	if err != nil {
		t.Fatal(err)
	}
	if got := clustersString(res.Clusters); got != referenceClusters(t) {
		t.Errorf("parallel checkpointed clusters differ:\n%s", got)
	}
}

func TestFieldEscapeRoundTrip(t *testing.T) {
	for _, s := range []string{"", "plain", "tab\tand\nnewline", "100%", "%09", "a%b\rc", "ünïcode"} {
		if got := unescapeField(escapeField(s)); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}
