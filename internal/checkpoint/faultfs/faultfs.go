// Package faultfs is a fault-injection filesystem for the checkpoint
// layer: it wraps a real checkpoint.FS and simulates a process crash
// at any chosen I/O step. Each mutating operation — directory
// creation, temp-file creation, every write, fsync, close, rename,
// hard link, directory sync, and removal — counts as one step; when the
// configured step is reached the operation fails with ErrCrash and
// every subsequent operation fails too, exactly as if the process had
// died there. Optionally the crashing step, when it is a write, first
// delivers half its bytes, modeling a torn write.
//
// The crash-recovery invariant test iterates the crash point over
// every step of a checkpointed run and asserts that recovery (resume
// or clean restart) always reproduces the uninterrupted clusters.
package faultfs

import (
	"errors"
	"sync"

	"repro/internal/checkpoint"
)

// ErrCrash is the error every operation at or after the injected
// crash point returns.
var ErrCrash = errors.New("faultfs: injected crash")

// FS wraps an inner checkpoint.FS with step counting and crash
// injection. Safe for concurrent use.
type FS struct {
	inner checkpoint.FS

	mu      sync.Mutex
	step    int  // operations attempted so far
	crashAt int  // 1-based step that crashes; 0 = never
	torn    bool // deliver half the bytes of a crashing write
	crashed bool
}

// New returns a counting FS that never crashes until CrashAt is set.
func New(inner checkpoint.FS) *FS { return &FS{inner: inner} }

// CrashAt arms the injector: the n-th operation (1-based) fails with
// ErrCrash, as does everything after it. With torn set, a crashing
// write first persists the first half of its payload.
func (f *FS) CrashAt(n int, torn bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = n
	f.torn = torn
}

// Steps returns the number of operations attempted so far; run once
// without a crash point to learn how many steps a workload performs.
func (f *FS) Steps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.step
}

// Crashed reports whether the injected crash has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// begin accounts one operation; it reports whether the operation must
// fail, and whether this is the very step that crashes (so a torn
// write can emit partial bytes).
func (f *FS) begin() (dead, firing bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return true, false
	}
	f.step++
	if f.crashAt > 0 && f.step >= f.crashAt {
		f.crashed = true
		return true, true
	}
	return false, false
}

func (f *FS) MkdirAll(dir string) error {
	if dead, _ := f.begin(); dead {
		return ErrCrash
	}
	return f.inner.MkdirAll(dir)
}

func (f *FS) CreateTemp(dir, pattern string) (checkpoint.File, error) {
	if dead, _ := f.begin(); dead {
		return nil, ErrCrash
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	if dead, _ := f.begin(); dead {
		return ErrCrash
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	if dead, _ := f.begin(); dead {
		return ErrCrash
	}
	return f.inner.Remove(name)
}

func (f *FS) RemoveAll(path string) error {
	if dead, _ := f.begin(); dead {
		return ErrCrash
	}
	return f.inner.RemoveAll(path)
}

func (f *FS) Link(oldname, newname string) error {
	if dead, _ := f.begin(); dead {
		return ErrCrash
	}
	return f.inner.Link(oldname, newname)
}

func (f *FS) OpenAppend(name string) (checkpoint.File, error) {
	if dead, _ := f.begin(); dead {
		return nil, ErrCrash
	}
	inner, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

func (f *FS) SyncDir(dir string) error {
	if dead, _ := f.begin(); dead {
		return ErrCrash
	}
	return f.inner.SyncDir(dir)
}

type file struct {
	fs    *FS
	inner checkpoint.File
}

func (w *file) Write(p []byte) (int, error) {
	dead, firing := w.fs.begin()
	if dead {
		if firing && w.fs.torn && len(p) > 1 {
			// Torn write: half the payload reaches the disk before the
			// "power loss". The temp file is left behind exactly as a
			// real crash would leave it.
			n, _ := w.inner.Write(p[:len(p)/2])
			return n, ErrCrash
		}
		return 0, ErrCrash
	}
	return w.inner.Write(p)
}

func (w *file) Sync() error {
	if dead, _ := w.fs.begin(); dead {
		return ErrCrash
	}
	return w.inner.Sync()
}

func (w *file) Close() error {
	// Closing is accounted but still performed even "after the crash":
	// the OS closes every descriptor of a dead process, and leaking
	// them would break test cleanup on platforms with open-file locks.
	dead, _ := w.fs.begin()
	err := w.inner.Close()
	if dead {
		return ErrCrash
	}
	return err
}

func (w *file) Name() string { return w.inner.Name() }
