package xpath

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

// Hardening tests: compile fuzzing, deep selections, large fan-out.

// Property: Compile never panics, and successful compiles produce a
// path that evaluates without panicking on a small document.
func TestCompileNeverPanics(t *testing.T) {
	doc, err := xmltree.ParseString(`<a><b c="1"><d>x</d></b><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	f := func(expr string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		p, err := Compile(expr)
		if err != nil {
			return true
		}
		_ = p.SelectValues(doc.Root)
		_ = p.SelectNodes(doc.Root)
		_ = p.SelectDocument(doc)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDeepPathSelection(t *testing.T) {
	const depth = 200
	var b, path strings.Builder
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, "<l%d>", i)
		if i > 0 {
			path.WriteString("/")
		}
		fmt.Fprintf(&path, "l%d", i)
	}
	b.WriteString("leaf")
	for i := depth - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "</l%d>", i)
	}
	doc, err := xmltree.ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	p := MustCompile(path.String() + "/text()")
	vals := p.SelectDocument(doc)
	if len(vals) != 1 {
		t.Fatalf("deep selection = %v", vals)
	}
	if vals[0].Text() != "leaf" {
		t.Errorf("leaf text = %q", vals[0].Text())
	}
}

func TestLargeFanOutSelection(t *testing.T) {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 20000; i++ {
		fmt.Fprintf(&b, "<e>%d</e>", i)
	}
	b.WriteString("</r>")
	doc, err := xmltree.ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	vals := MustCompile("e/text()").SelectValues(doc.Root)
	if len(vals) != 20000 {
		t.Fatalf("fan-out values = %d", len(vals))
	}
	if vals[19999] != "19999" {
		t.Errorf("last value = %q", vals[19999])
	}
	// High positional predicate.
	if got := MustCompile("e[20000]/text()").First(doc.Root); got != "19999" {
		t.Errorf("e[20000] = %q", got)
	}
	if got := MustCompile("e[20001]/text()").SelectValues(doc.Root); got != nil {
		t.Errorf("e[20001] = %v", got)
	}
}

func TestDescendantAxisOnRecursiveStructure(t *testing.T) {
	// Elements nested inside same-named elements.
	doc, err := xmltree.ParseString(`<s><s><s>deep</s></s></s>`)
	if err != nil {
		t.Fatal(err)
	}
	nodes := MustCompile("//s").SelectDocument(doc)
	if len(nodes) != 3 {
		t.Errorf("//s on recursive structure = %d, want 3", len(nodes))
	}
}

func TestPathOverTextHeavyDocument(t *testing.T) {
	doc, err := xmltree.ParseString(`<r>aaa<x>1</x>bbb<x>2</x>ccc</r>`)
	if err != nil {
		t.Fatal(err)
	}
	vals := MustCompile("x/text()").SelectValues(doc.Root)
	if len(vals) != 2 || vals[0] != "1" || vals[1] != "2" {
		t.Errorf("values = %v", vals)
	}
	// text() of the context with mixed content.
	if got := MustCompile("text()").First(doc.Root); got != "aaabbbccc" {
		t.Errorf("context text = %q", got)
	}
}

func TestSelectDocumentDoesNotMutate(t *testing.T) {
	doc, err := xmltree.ParseString(`<a><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	before := doc.String()
	_ = MustCompile("//b").SelectDocument(doc)
	_ = MustCompile("a/b").SelectDocument(doc)
	if doc.String() != before {
		t.Error("selection mutated the document")
	}
	if doc.Root.Parent != nil {
		t.Error("descendant-axis selection attached a parent to the root")
	}
}
