package xpath

import (
	"testing"

	"repro/internal/xmltree"
)

const movieXML = `
<movie_database>
  <movies>
    <movie year="1999" length="136">
      <title>Matrix</title>
      <people>
        <person>Keanu Reeves</person>
        <person>Carrie-Anne Moss</person>
        <person>Don Davis</person>
      </people>
    </movie>
    <movie year="1998">
      <title>Mask of Zorro</title>
      <people>
        <person>Antonio Banderas</person>
      </people>
    </movie>
  </movies>
</movie_database>`

func doc(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(movieXML)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func firstMovie(t *testing.T) *xmltree.Node {
	t.Helper()
	return doc(t).ElementsByPath("movie_database/movies/movie")[0]
}

func TestCompileValid(t *testing.T) {
	valid := []string{
		"title/text()",
		"@year",
		"people/person[1]/text()",
		"movie_database/movies/movie",
		"//movie",
		"text()",
		"*",
		"*/text()",
		"/movie_database/movies",
		"a[12]/b[3]/@id",
	}
	for _, expr := range valid {
		if _, err := Compile(expr); err != nil {
			t.Errorf("Compile(%q) failed: %v", expr, err)
		}
	}
}

func TestCompileInvalid(t *testing.T) {
	invalid := []string{
		"",
		"   ",
		"a//b",
		"a/text()/b",
		"@year/title",
		"a[b]",
		"a[0]",
		"a[-1]",
		"a[1",
		"@",
		"a/@",
		"a[1]extra[",
	}
	for _, expr := range invalid {
		if _, err := Compile(expr); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", expr)
		}
	}
}

func TestIsValuePath(t *testing.T) {
	cases := []struct {
		expr string
		want bool
	}{
		{"title/text()", true},
		{"@year", true},
		{"a/b/@c", true},
		{"movie_database/movies/movie", false},
		{"text()", true},
	}
	for _, c := range cases {
		if got := MustCompile(c.expr).IsValuePath(); got != c.want {
			t.Errorf("IsValuePath(%q) = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestTextValue(t *testing.T) {
	m := firstMovie(t)
	if got := MustCompile("title/text()").First(m); got != "Matrix" {
		t.Errorf("title/text() = %q", got)
	}
}

func TestAttrValue(t *testing.T) {
	m := firstMovie(t)
	if got := MustCompile("@year").First(m); got != "1999" {
		t.Errorf("@year = %q", got)
	}
	if got := MustCompile("@missing").SelectValues(m); got != nil {
		t.Errorf("@missing = %v, want nil", got)
	}
}

func TestPositionalPredicate(t *testing.T) {
	m := firstMovie(t)
	if got := MustCompile("people/person[1]/text()").First(m); got != "Keanu Reeves" {
		t.Errorf("person[1] = %q", got)
	}
	if got := MustCompile("people/person[3]/text()").First(m); got != "Don Davis" {
		t.Errorf("person[3] = %q", got)
	}
	if got := MustCompile("people/person[4]/text()").SelectValues(m); got != nil {
		t.Errorf("person[4] = %v, want nil", got)
	}
}

func TestPredicatePerParent(t *testing.T) {
	d, err := xmltree.ParseString(`<r><g><x>a</x><x>b</x></g><g><x>c</x></g></r>`)
	if err != nil {
		t.Fatal(err)
	}
	vals := MustCompile("g/x[2]/text()").SelectValues(d.Root)
	if len(vals) != 1 || vals[0] != "b" {
		t.Errorf("x[2] per parent = %v, want [b]", vals)
	}
	first := MustCompile("g/x[1]/text()").SelectValues(d.Root)
	if len(first) != 2 || first[0] != "a" || first[1] != "c" {
		t.Errorf("x[1] per parent = %v, want [a c]", first)
	}
}

func TestMultipleValues(t *testing.T) {
	m := firstMovie(t)
	got := MustCompile("people/person/text()").SelectValues(m)
	want := []string{"Keanu Reeves", "Carrie-Anne Moss", "Don Davis"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("value[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestBareElementPathYieldsText(t *testing.T) {
	m := firstMovie(t)
	if got := MustCompile("title").First(m); got != "Matrix" {
		t.Errorf("bare title = %q", got)
	}
}

func TestTextOfContext(t *testing.T) {
	d, err := xmltree.ParseString(`<t>hello</t>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := MustCompile("text()").First(d.Root); got != "hello" {
		t.Errorf("text() = %q", got)
	}
}

func TestWildcard(t *testing.T) {
	m := firstMovie(t)
	nodes := MustCompile("*").SelectNodes(m)
	if len(nodes) != 2 { // title, people
		t.Errorf("* selected %d nodes, want 2", len(nodes))
	}
}

func TestSelectDocumentAbsolute(t *testing.T) {
	d := doc(t)
	movies := MustCompile("movie_database/movies/movie").SelectDocument(d)
	if len(movies) != 2 {
		t.Fatalf("absolute path selected %d, want 2", len(movies))
	}
	if movies[0].FirstChildElement("title").Text() != "Matrix" {
		t.Error("wrong first movie")
	}
	// Root-only path selects the root.
	if got := MustCompile("movie_database").SelectDocument(d); len(got) != 1 || got[0] != d.Root {
		t.Errorf("root path = %v", got)
	}
	// Wrong root name selects nothing.
	if got := MustCompile("other/movies/movie").SelectDocument(d); got != nil {
		t.Errorf("wrong root = %v, want nil", got)
	}
}

func TestSelectDocumentDescendant(t *testing.T) {
	d := doc(t)
	persons := MustCompile("//person").SelectDocument(d)
	if len(persons) != 4 {
		t.Errorf("//person selected %d, want 4", len(persons))
	}
	vals := MustCompile("//title/text()").SelectDocument(d)
	if len(vals) != 2 {
		t.Errorf("//title selected %d, want 2", len(vals))
	}
}

func TestDescendantFromContext(t *testing.T) {
	m := firstMovie(t)
	got := MustCompile("//person/text()").SelectValues(m)
	if len(got) != 3 {
		t.Errorf("//person from movie = %v, want 3 values", got)
	}
}

func TestSelectNodesMissing(t *testing.T) {
	m := firstMovie(t)
	if got := MustCompile("nosuch/child").SelectNodes(m); got != nil {
		t.Errorf("missing path = %v, want nil", got)
	}
}

func TestEmptyTextSkipped(t *testing.T) {
	d, err := xmltree.ParseString(`<r><a></a><a>x</a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	vals := MustCompile("a/text()").SelectValues(d.Root)
	if len(vals) != 1 || vals[0] != "x" {
		t.Errorf("vals = %v, want [x]", vals)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile should panic on bad input")
		}
	}()
	MustCompile("[[[")
}

func TestStringReturnsSource(t *testing.T) {
	const expr = "people/person[1]/text()"
	if got := MustCompile(expr).String(); got != expr {
		t.Errorf("String() = %q, want %q", got, expr)
	}
}

func TestAttributePredicate(t *testing.T) {
	d, err := xmltree.ParseString(`<r>
	  <person role="actor">Keanu</person>
	  <person role="director">Lana</person>
	  <person>Anon</person>
	</r>`)
	if err != nil {
		t.Fatal(err)
	}
	got := MustCompile(`person[@role='actor']/text()`).SelectValues(d.Root)
	if len(got) != 1 || got[0] != "Keanu" {
		t.Errorf("actor filter = %v", got)
	}
	got = MustCompile(`person[@role="director"]/text()`).SelectValues(d.Root)
	if len(got) != 1 || got[0] != "Lana" {
		t.Errorf("director filter = %v", got)
	}
	if got := MustCompile(`person[@role='writer']/text()`).SelectValues(d.Root); got != nil {
		t.Errorf("writer filter = %v, want nil", got)
	}
	// Elements missing the attribute never match.
	nodes := MustCompile(`person[@role='']`).SelectNodes(d.Root)
	if len(nodes) != 0 {
		t.Errorf("empty-value filter matched %d nodes", len(nodes))
	}
	// Descendant axis with filter.
	nodes = MustCompile(`//person[@role='actor']`).SelectDocument(d)
	if len(nodes) != 1 {
		t.Errorf("descendant filter = %d nodes", len(nodes))
	}
}

func TestAttributePredicateErrors(t *testing.T) {
	for _, expr := range []string{
		`person[@role]`,
		`person[@role=actor]`,
		`person[@='x']`,
		`person[@ro le='x']`,
		`person[@role='x"]`,
	} {
		if _, err := Compile(expr); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", expr)
		}
	}
}
