// Package xpath implements the small XPath subset SXNM configurations
// use to address data inside XML documents:
//
//	title/text()              text of the <title> child
//	@year                     an attribute of the context element
//	people/person[1]/text()   positional predicates (1-based)
//	movie_database/movies/movie   absolute candidate paths
//	//movie                   descendant search from the root
//	text()                    text of the context element itself
//	*                         any-element wildcard step
//
// Paths are compiled once (Compile) and then evaluated many times
// against xmltree nodes. The subset is deliberately exactly what the
// paper's configuration tables (Tables 1 and 3) require, plus the `//`
// and `*` conveniences.
package xpath

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/xmltree"
)

// StepKind discriminates the three step types of the subset.
type StepKind int

const (
	// ChildStep selects element children by name (or any, for "*").
	ChildStep StepKind = iota
	// TextStep selects the text content of the context element.
	TextStep
	// AttrStep selects an attribute value of the context element.
	AttrStep
)

// Step is one component of a compiled path.
type Step struct {
	Kind  StepKind
	Name  string // element name for ChildStep ("*" = any); attribute name for AttrStep
	Index int    // 1-based positional predicate; 0 selects all matches
	// FilterAttr/FilterValue implement the attribute-equality
	// predicate name[@attr='value']; empty FilterAttr means none.
	FilterAttr  string
	FilterValue string
}

// Path is a compiled path expression.
type Path struct {
	// Descendant marks a leading "//": the first child step matches at
	// any depth below the context node.
	Descendant bool
	Steps      []Step
	src        string
}

// String returns the original source expression.
func (p *Path) String() string { return p.src }

// IsValuePath reports whether the path ends in text() or @attr and
// therefore yields string values rather than elements.
func (p *Path) IsValuePath() bool {
	if len(p.Steps) == 0 {
		return false
	}
	k := p.Steps[len(p.Steps)-1].Kind
	return k == TextStep || k == AttrStep
}

// Compile parses a path expression. It returns an error describing the
// offending token for anything outside the supported subset.
func Compile(expr string) (*Path, error) {
	src := expr
	p := &Path{src: src}
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return nil, fmt.Errorf("xpath: empty expression")
	}
	if strings.HasPrefix(expr, "//") {
		p.Descendant = true
		expr = expr[2:]
	} else if strings.HasPrefix(expr, "/") {
		// Treat a single leading slash as an absolute path from the
		// document root, which our evaluator models as evaluating
		// against the root element itself.
		expr = expr[1:]
	}
	if expr == "" {
		return nil, fmt.Errorf("xpath: %q: no steps", src)
	}
	for i, raw := range strings.Split(expr, "/") {
		step, err := parseStep(raw)
		if err != nil {
			return nil, fmt.Errorf("xpath: %q: step %d: %w", src, i+1, err)
		}
		if len(p.Steps) > 0 {
			last := p.Steps[len(p.Steps)-1]
			if last.Kind != ChildStep {
				return nil, fmt.Errorf("xpath: %q: %s must be the final step", src, kindName(last.Kind))
			}
		}
		p.Steps = append(p.Steps, step)
	}
	return p, nil
}

// MustCompile is Compile for statically known expressions; it panics on
// error and is intended for fixtures and tests.
func MustCompile(expr string) *Path {
	p, err := Compile(expr)
	if err != nil {
		panic(err)
	}
	return p
}

func kindName(k StepKind) string {
	switch k {
	case TextStep:
		return "text()"
	case AttrStep:
		return "attribute"
	default:
		return "child"
	}
}

func parseStep(raw string) (Step, error) {
	raw = strings.TrimSpace(raw)
	switch {
	case raw == "":
		return Step{}, fmt.Errorf("empty step (double slash inside path?)")
	case raw == "text()":
		return Step{Kind: TextStep}, nil
	case strings.HasPrefix(raw, "@"):
		name := raw[1:]
		if name == "" || strings.ContainsAny(name, "[]/@() ") {
			return Step{}, fmt.Errorf("invalid attribute name %q", raw)
		}
		return Step{Kind: AttrStep, Name: name}, nil
	}
	name := raw
	index := 0
	filterAttr, filterValue := "", ""
	if i := strings.IndexByte(raw, '['); i >= 0 {
		if !strings.HasSuffix(raw, "]") {
			return Step{}, fmt.Errorf("unterminated predicate in %q", raw)
		}
		name = raw[:i]
		pred := strings.TrimSpace(raw[i+1 : len(raw)-1])
		if strings.HasPrefix(pred, "@") {
			var err error
			filterAttr, filterValue, err = parseAttrPredicate(pred)
			if err != nil {
				return Step{}, fmt.Errorf("predicate in %q: %w", raw, err)
			}
		} else {
			n, err := strconv.Atoi(pred)
			if err != nil || n < 1 {
				return Step{}, fmt.Errorf("predicate must be a positive integer or @attr='value', got %q", pred)
			}
			index = n
		}
	}
	if name == "" {
		return Step{}, fmt.Errorf("missing element name in %q", raw)
	}
	if strings.ContainsAny(name, "[]/@() ") && name != "*" {
		return Step{}, fmt.Errorf("invalid element name %q", name)
	}
	return Step{Kind: ChildStep, Name: name, Index: index, FilterAttr: filterAttr, FilterValue: filterValue}, nil
}

// parseAttrPredicate parses @attr='value' (single or double quotes).
func parseAttrPredicate(pred string) (attr, value string, err error) {
	eq := strings.IndexByte(pred, '=')
	if eq < 0 {
		return "", "", fmt.Errorf("expected @attr='value', got %q", pred)
	}
	attr = strings.TrimSpace(pred[1:eq])
	if attr == "" || strings.ContainsAny(attr, "[]/@() ") {
		return "", "", fmt.Errorf("invalid attribute name in %q", pred)
	}
	v := strings.TrimSpace(pred[eq+1:])
	if len(v) < 2 || (v[0] != '\'' && v[0] != '"') || v[len(v)-1] != v[0] {
		return "", "", fmt.Errorf("attribute value must be quoted in %q", pred)
	}
	return attr, v[1 : len(v)-1], nil
}

// SelectNodes evaluates p against ctx and returns the selected element
// nodes. Paths ending in text() or @attr select the element the final
// value belongs to (i.e. the element whose text/attribute would be
// read); use SelectValues for the strings themselves.
func (p *Path) SelectNodes(ctx *xmltree.Node) []*xmltree.Node {
	cur := []*xmltree.Node{ctx}
	for i, s := range p.Steps {
		if s.Kind != ChildStep {
			return cur // final value step: keep owning elements
		}
		var next []*xmltree.Node
		matches := func(c *xmltree.Node) bool {
			if c.Kind != xmltree.ElementNode || (s.Name != "*" && c.Name != s.Name) {
				return false
			}
			if s.FilterAttr != "" {
				v, ok := c.Attr(s.FilterAttr)
				if !ok || v != s.FilterValue {
					return false
				}
			}
			return true
		}
		for _, n := range cur {
			if i == 0 && p.Descendant {
				n.Walk(func(d *xmltree.Node) bool {
					if d != n && matches(d) {
						next = append(next, d)
					}
					return true
				})
				continue
			}
			for _, c := range n.Children {
				if matches(c) {
					next = append(next, c)
				}
			}
		}
		if s.Index > 0 {
			// Positional predicate applies per parent context in
			// standard XPath; our flat collection applies it per parent
			// by grouping on Parent pointers.
			next = nthPerParent(next, s.Index)
		}
		cur = next
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// nthPerParent keeps, for each distinct parent, the idx-th (1-based)
// node of the slice, preserving document order.
func nthPerParent(nodes []*xmltree.Node, idx int) []*xmltree.Node {
	count := make(map[*xmltree.Node]int, 8)
	var out []*xmltree.Node
	for _, n := range nodes {
		count[n.Parent]++
		if count[n.Parent] == idx {
			out = append(out, n)
		}
	}
	return out
}

// SelectValues evaluates p against ctx and returns string values:
// element text for text() paths, attribute values for @attr paths, and
// element text for bare element paths (a convenience so configurations
// may write "title" to mean "title/text()").
func (p *Path) SelectValues(ctx *xmltree.Node) []string {
	nodes := p.SelectNodes(ctx)
	if len(nodes) == 0 {
		return nil
	}
	last := p.Steps[len(p.Steps)-1]
	var out []string
	switch last.Kind {
	case AttrStep:
		for _, n := range nodes {
			if v, ok := n.Attr(last.Name); ok {
				out = append(out, v)
			}
		}
	default: // TextStep or bare element path
		for _, n := range nodes {
			if t := n.Text(); t != "" {
				out = append(out, t)
			}
		}
	}
	return out
}

// First returns the first selected value, or "" if the path selects
// nothing.
func (p *Path) First(ctx *xmltree.Node) string {
	vals := p.SelectValues(ctx)
	if len(vals) == 0 {
		return ""
	}
	return vals[0]
}

// SelectDocument evaluates an absolute path against a document. The
// first step must match the root element name (or use //).
func (p *Path) SelectDocument(d *xmltree.Document) []*xmltree.Node {
	if len(p.Steps) == 0 {
		return nil
	}
	if p.Descendant {
		return p.SelectNodes(wrapRoot(d))
	}
	first := p.Steps[0]
	if first.Kind != ChildStep || (first.Name != "*" && first.Name != d.Root.Name) {
		return nil
	}
	if len(p.Steps) == 1 {
		return []*xmltree.Node{d.Root}
	}
	rest := &Path{Steps: p.Steps[1:], src: p.src}
	return rest.SelectNodes(d.Root)
}

// wrapRoot returns a detached synthetic parent for descendant-axis
// evaluation over the document root. The root keeps its real parent
// (nil) because Walk never consults it.
func wrapRoot(d *xmltree.Document) *xmltree.Node {
	w := xmltree.NewElement("#document")
	w.Children = []*xmltree.Node{d.Root}
	return w
}
