package xpath

import "testing"

// FuzzCompile checks the path compiler never panics and that compiled
// paths evaluate safely.
func FuzzCompile(f *testing.F) {
	for _, s := range []string{
		"title/text()", "@year", "a/b[3]/@id", "//movie", "*",
		"person[@role='actor']/text()", "a[@x=\"y\"]", "", "[", "a[",
		"a//b", "text()/x", "a[@='v']", "a[0]", "a[99999999999999999999]",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		p, err := Compile(expr)
		if err != nil {
			return
		}
		if p.String() != expr {
			t.Fatalf("String() = %q, want input %q", p.String(), expr)
		}
	})
}
