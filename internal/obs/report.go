package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Attribute keys used by the engine's spans and events. The Collector
// keys its report assembly off these; custom sinks may use them too.
const (
	AttrCandidate      = "candidate"
	AttrRows           = "rows"
	AttrWindow         = "window"
	AttrKeys           = "keys"
	AttrPass           = "pass"
	AttrWindowPairs    = "window_pairs"
	AttrComparisons    = "comparisons"
	AttrFilteredOut    = "filtered_out"
	AttrDuplicatePairs = "duplicate_pairs"
	AttrClusters       = "clusters"
	AttrNonSingleton   = "non_singleton"
	AttrSWNanos        = "sw_ns"
	AttrTCNanos        = "tc_ns"
	AttrHeapBytes      = "heap_bytes"
	AttrResumed        = "resumed"
	AttrResumedPairs   = "resumed_pairs"
	AttrCompleted      = "completed"
	AttrNextPass       = "next_pass"
	AttrInterrupted    = "interrupted"
	AttrKind           = "kind"
	AttrBytes          = "bytes"
	AttrPhase          = "phase"
	AttrCause          = "cause"
	AttrStream         = "stream"

	// Similarity memo counters, set on candidate spans when
	// Options.SimCache is enabled.
	AttrSimCacheHits      = "sim_cache_hits"
	AttrSimCacheMisses    = "sim_cache_misses"
	AttrSimCacheEvictions = "sim_cache_evictions"

	// External-sort spill attributes, set on SpanSpill spans.
	AttrSpillRuns   = "spill_runs"
	AttrSpillBytes  = "spill_bytes"
	AttrSpillReused = "spill_reused"

	// Sharded-sweep attributes, set on SpanShard spans: the shard's
	// index, its owned row range [start, end), the number of halo rows
	// prepended for window context, and the halo pairs it skipped as
	// another shard's property.
	AttrShard       = "shard"
	AttrShardStart  = "shard_start"
	AttrShardEnd    = "shard_end"
	AttrHaloRows    = "halo_rows"
	AttrHaloDeduped = "halo_deduped"
)

// ReportSchema identifies the report.json layout version.
const ReportSchema = "sxnm/report/v1"

// PassReport is the per-key-pass slice of one candidate's work. The
// counters are deltas for that pass alone.
type PassReport struct {
	Pass           int     `json:"pass"`
	WindowPairs    int64   `json:"window_pairs"`
	Comparisons    int64   `json:"comparisons"`
	FilteredOut    int64   `json:"filtered_out"`
	DuplicatePairs int64   `json:"duplicate_pairs"`
	DurationMS     float64 `json:"duration_ms"`
	HeapInUse      int64   `json:"heap_in_use_bytes,omitempty"`
}

// CandidateReport aggregates one candidate's detection.
type CandidateReport struct {
	Name    string `json:"name"`
	Rows    int    `json:"rows"`
	Window  int    `json:"window,omitempty"`
	Keys    int    `json:"keys,omitempty"`
	Resumed bool   `json:"resumed,omitempty"`
	// ResumedFromPass is the key pass a mid-candidate resume restarted
	// at (0 = started fresh or adopted whole).
	ResumedFromPass     int          `json:"resumed_from_pass,omitempty"`
	Interrupted         bool         `json:"interrupted,omitempty"`
	WindowPairs         int64        `json:"window_pairs"`
	Comparisons         int64        `json:"comparisons"`
	FilteredOut         int64        `json:"filtered_out"`
	DuplicatePairs      int64        `json:"duplicate_pairs"`
	Clusters            int64        `json:"clusters"`
	NonSingleton        int64        `json:"non_singleton"`
	SimCacheHits        int64        `json:"sim_cache_hits,omitempty"`
	SimCacheMisses      int64        `json:"sim_cache_misses,omitempty"`
	SimCacheEvictions   int64        `json:"sim_cache_evictions,omitempty"`
	SlidingWindowMS     float64      `json:"sliding_window_ms"`
	TransitiveClosureMS float64      `json:"transitive_closure_ms"`
	WallMS              float64      `json:"wall_ms"`
	Passes              []PassReport `json:"passes,omitempty"`
}

// CheckpointReport summarizes durable-progress I/O.
type CheckpointReport struct {
	Writes int64 `json:"writes"`
	Bytes  int64 `json:"bytes"`
}

// ResumeReport records provenance of recovered work, so a report from
// a resumed run is distinguishable from a cold one.
type ResumeReport struct {
	CompletedCandidates int64 `json:"completed_candidates"`
	SeededPairs         int64 `json:"seeded_pairs"`
	// NextPass maps candidates that resumed mid-detection to the key
	// pass they restarted at.
	NextPass map[string]int `json:"next_pass,omitempty"`
}

// SpillReport summarizes the external-sort spill path's disk I/O;
// present only when a run actually spilled (or reused spilled runs).
type SpillReport struct {
	Runs         int64   `json:"runs"`
	RunsReused   int64   `json:"runs_reused"`
	BytesWritten int64   `json:"bytes_written"`
	BytesRead    int64   `json:"bytes_read"`
	WallSeconds  float64 `json:"wall_seconds"`
}

// ShardReport summarizes the sharded sliding-window path; present only
// when detection ran with Options.Shards enabled.
type ShardReport struct {
	// ShardCount is the configured shard count (post-resolution: a
	// negative option resolves to the CPU count).
	ShardCount int64 `json:"shard_count"`
	// ShardSweeps counts per-shard sweep executions across all passes.
	ShardSweeps int64 `json:"shard_sweeps"`
	// HaloPairsDeduped counts window pairs that fell wholly inside a
	// shard's halo and were skipped as another shard's property.
	HaloPairsDeduped int64 `json:"halo_pairs_deduped"`
}

// InterruptReport records a run cut short.
type InterruptReport struct {
	Phase string `json:"phase"`
	Cause string `json:"cause"`
}

// Totals are the run-wide counters; on a complete run they match
// core's Result.Stats exactly (interrupted candidates, whose partial
// work core discards from Stats, are excluded here too).
type Totals struct {
	WindowPairs    int64 `json:"window_pairs"`
	Comparisons    int64 `json:"comparisons"`
	FilteredOut    int64 `json:"filtered_out"`
	DuplicatePairs int64 `json:"duplicate_pairs"`
	Clusters       int64 `json:"clusters"`
	NonSingleton   int64 `json:"non_singleton"`
}

// Report is the machine-readable run summary emitted as report.json
// (and committed as BENCH_*.json baselines). Identification fields
// (fingerprints, input, args) are filled by the caller; everything
// else comes from the Collector and Metrics.
type Report struct {
	Schema            string    `json:"schema"`
	GeneratedAt       time.Time `json:"generated_at"`
	ConfigFingerprint string    `json:"config_fingerprint,omitempty"`
	DocFingerprint    string    `json:"doc_fingerprint,omitempty"`
	Input             string    `json:"input,omitempty"`
	Label             string    `json:"label,omitempty"`

	ParseMS                float64 `json:"parse_ms,omitempty"`
	KeyGenMS               float64 `json:"key_gen_ms"`
	DetectWallMS           float64 `json:"detect_wall_ms"`
	SlidingWindowCPUMS     float64 `json:"sliding_window_cpu_ms"`
	TransitiveClosureCPUMS float64 `json:"transitive_closure_cpu_ms"`

	Totals Totals `json:"totals"`
	// FilterHitRate is FilteredOut / (Comparisons + FilteredOut) over
	// Totals — the same attempted-comparison denominator the metrics
	// snapshot and Stats use (DESIGN.md §11), so report and engine
	// Stats agree exactly.
	FilterHitRate float64 `json:"filter_hit_rate"`
	// SimCacheHitRate is the fraction of memo lookups served from
	// memory when Options.SimCache is on (0 when the cache is off —
	// no lookups happen at all).
	SimCacheHitRate float64 `json:"sim_cache_hit_rate"`
	PeakHeapBytes   int64   `json:"peak_heap_bytes,omitempty"`

	Resume      *ResumeReport     `json:"resume,omitempty"`
	Checkpoint  *CheckpointReport `json:"checkpoint,omitempty"`
	Spill       *SpillReport      `json:"spill,omitempty"`
	Sharding    *ShardReport      `json:"sharding,omitempty"`
	Interrupted *InterruptReport  `json:"interrupted,omitempty"`

	// PhaseLatency digests the duration distribution of every span
	// kind the run emitted (p50/p90/p99), keyed by span name — the
	// per-phase latency view the averages above cannot give.
	PhaseLatency map[string]LatencySummary `json:"phase_latency,omitempty"`

	Candidates []CandidateReport `json:"candidates"`
	Metrics    Snapshot          `json:"metrics"`
}

// WriteJSON writes the report, indented, to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Collector is a Sink that assembles a Report from the engine's
// well-known spans and events. Attach it alongside (or instead of)
// trace sinks; after the run, Report() returns the assembled summary.
// Safe for concurrent emission.
type Collector struct {
	mu          sync.Mutex
	parse       time.Duration
	keyGen      time.Duration
	detectWall  time.Duration
	candidates  map[string]*CandidateReport
	order       []string // emission order of candidate spans
	passes      map[string][]PassReport
	checkpoint  CheckpointReport
	resume      *ResumeReport
	interrupted *InterruptReport
	phases      *PhaseHistograms
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		candidates: make(map[string]*CandidateReport),
		passes:     make(map[string][]PassReport),
		phases:     NewPhaseHistograms(),
	}
}

// Emit implements Sink.
func (c *Collector) Emit(r Record) {
	c.phases.Emit(r)
	c.mu.Lock()
	defer c.mu.Unlock()
	switch r.Name {
	case SpanParse:
		c.parse += r.Dur
	case SpanKeyGen:
		c.keyGen += r.Dur
	case SpanDetect:
		c.detectWall += r.Dur
	case SpanPass:
		name := r.AttrString(AttrCandidate)
		c.passes[name] = append(c.passes[name], PassReport{
			Pass:           int(r.AttrInt(AttrPass)),
			WindowPairs:    r.AttrInt(AttrWindowPairs),
			Comparisons:    r.AttrInt(AttrComparisons),
			FilteredOut:    r.AttrInt(AttrFilteredOut),
			DuplicatePairs: r.AttrInt(AttrDuplicatePairs),
			DurationMS:     ms(r.Dur),
			HeapInUse:      r.AttrInt(AttrHeapBytes),
		})
	case SpanCandidate:
		name := r.AttrString(AttrCandidate)
		cr := &CandidateReport{
			Name:                name,
			Rows:                int(r.AttrInt(AttrRows)),
			Window:              int(r.AttrInt(AttrWindow)),
			Keys:                int(r.AttrInt(AttrKeys)),
			Resumed:             r.AttrBool(AttrResumed),
			ResumedFromPass:     int(r.AttrInt(AttrNextPass)),
			Interrupted:         r.AttrBool(AttrInterrupted),
			WindowPairs:         r.AttrInt(AttrWindowPairs),
			Comparisons:         r.AttrInt(AttrComparisons),
			FilteredOut:         r.AttrInt(AttrFilteredOut),
			DuplicatePairs:      r.AttrInt(AttrDuplicatePairs),
			Clusters:            r.AttrInt(AttrClusters),
			NonSingleton:        r.AttrInt(AttrNonSingleton),
			SlidingWindowMS:     ms(time.Duration(r.AttrInt(AttrSWNanos))),
			TransitiveClosureMS: ms(time.Duration(r.AttrInt(AttrTCNanos))),
			WallMS:              ms(r.Dur),
			SimCacheHits:        r.AttrInt(AttrSimCacheHits),
			SimCacheMisses:      r.AttrInt(AttrSimCacheMisses),
			SimCacheEvictions:   r.AttrInt(AttrSimCacheEvictions),
		}
		if _, seen := c.candidates[name]; !seen {
			c.order = append(c.order, name)
		}
		c.candidates[name] = cr
	case SpanCheckpoint:
		c.checkpoint.Writes++
		c.checkpoint.Bytes += r.AttrInt(AttrBytes)
	case EventResume:
		c.resume = &ResumeReport{
			CompletedCandidates: r.AttrInt(AttrCompleted),
			SeededPairs:         r.AttrInt(AttrResumedPairs),
		}
	case EventInterrupted:
		c.interrupted = &InterruptReport{
			Phase: r.AttrString(AttrPhase),
			Cause: r.AttrString(AttrCause),
		}
	}
}

// Report assembles the collected spans into a Report. Pass the run's
// Metrics to include the final snapshot and peak heap; nil is fine.
func (c *Collector) Report(m *Metrics) *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := &Report{
		Schema:       ReportSchema,
		GeneratedAt:  time.Now().UTC(),
		ParseMS:      ms(c.parse),
		KeyGenMS:     ms(c.keyGen),
		DetectWallMS: ms(c.detectWall),
		Checkpoint:   nil,
		Resume:       c.resume,
		Interrupted:  c.interrupted,
		Metrics:      m.Snapshot(),
	}
	rep.PeakHeapBytes = rep.Metrics.PeakHeap
	if c.checkpoint.Writes > 0 {
		cp := c.checkpoint
		rep.Checkpoint = &cp
	}
	if s := &rep.Metrics; s.SpillRuns+s.SpillRunsReused+s.SpillBytesWritten+s.SpillBytesRead > 0 {
		rep.Spill = &SpillReport{
			Runs:         s.SpillRuns,
			RunsReused:   s.SpillRunsReused,
			BytesWritten: s.SpillBytesWritten,
			BytesRead:    s.SpillBytesRead,
			WallSeconds:  s.SpillWallSeconds,
		}
	}
	if s := &rep.Metrics; s.ShardCount > 0 {
		rep.Sharding = &ShardReport{
			ShardCount:       s.ShardCount,
			ShardSweeps:      s.ShardSweeps,
			HaloPairsDeduped: s.HaloPairsDeduped,
		}
	}
	for _, name := range c.order {
		cr := *c.candidates[name]
		passes := append([]PassReport(nil), c.passes[name]...)
		sort.Slice(passes, func(i, j int) bool { return passes[i].Pass < passes[j].Pass })
		cr.Passes = passes
		rep.Candidates = append(rep.Candidates, cr)
		if cr.Interrupted {
			// core discards interrupted candidates' partial counters
			// from Result.Stats; keep the totals aligned with it.
			continue
		}
		rep.SlidingWindowCPUMS += cr.SlidingWindowMS
		rep.TransitiveClosureCPUMS += cr.TransitiveClosureMS
		rep.Totals.WindowPairs += cr.WindowPairs
		rep.Totals.Comparisons += cr.Comparisons
		rep.Totals.FilteredOut += cr.FilteredOut
		rep.Totals.DuplicatePairs += cr.DuplicatePairs
		rep.Totals.Clusters += cr.Clusters
		rep.Totals.NonSingleton += cr.NonSingleton
	}
	sort.Slice(rep.Candidates, func(i, j int) bool { return rep.Candidates[i].Name < rep.Candidates[j].Name })
	if attempted := rep.Totals.Comparisons + rep.Totals.FilteredOut; attempted > 0 {
		rep.FilterHitRate = float64(rep.Totals.FilteredOut) / float64(attempted)
	}
	rep.SimCacheHitRate = rep.Metrics.SimCacheHitRate
	if s := c.phases.Summaries(); len(s) > 0 {
		rep.PhaseLatency = s
	}
	if c.resume != nil {
		if np := c.resumeNextPass(); len(np) > 0 {
			rep.Resume.NextPass = np
		}
	}
	return rep
}

// resumeNextPass extracts mid-candidate resume points recorded on
// candidate spans. Callers hold c.mu.
func (c *Collector) resumeNextPass() map[string]int {
	out := map[string]int{}
	for name, cr := range c.candidates {
		if cr.ResumedFromPass > 0 {
			out[name] = cr.ResumedFromPass
		}
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
