// Package obs is the observability layer of the SXNM engine: a
// lightweight, dependency-free span/event tracing API, monotonic run
// metrics, and machine-readable run reports. It exists because the
// paper's own evaluation (Sec. 5) reasons about window/blocking
// trade-offs in terms of comparisons, filtered pairs, and per-phase
// runtimes — numbers an operator of a long-running deployment needs
// live, not post-hoc.
//
// The package is built for the engine's hot path: every entry point is
// safe on a nil *Observer (a nil receiver is a no-op), tracing is
// guarded by an atomic enabled flag so an engine run without any sink
// attached costs a pointer test per phase, and all counters are plain
// atomics. Span emission may happen from concurrent candidate workers,
// so sinks must be safe for concurrent use (every sink in this package
// is).
package obs

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// Well-known span and event names emitted by the engine. The Collector
// sink interprets these to assemble a Report; external sinks may treat
// them as opaque strings.
const (
	// SpanParse covers reading and materializing the input document
	// (emitted by callers that own the parse, e.g. cmd/sxnm).
	SpanParse = "parse"
	// SpanKeyGen covers the key generation phase (Sec. 3.3).
	SpanKeyGen = "keygen"
	// SpanDetect covers the whole duplicate detection phase across all
	// candidates; its duration is wall-clock even under parallelism.
	SpanDetect = "detect"
	// SpanCandidate covers one candidate's detection end to end.
	SpanCandidate = "candidate"
	// SpanSlidingWindow covers all key passes of one candidate.
	SpanSlidingWindow = "sliding-window"
	// SpanPass covers a single key pass (sort + window slide).
	SpanPass = "pass"
	// SpanTransitiveClosure covers the union-find closure of one
	// candidate's duplicate pairs.
	SpanTransitiveClosure = "transitive-closure"
	// SpanCheckpoint covers one durable checkpoint write.
	SpanCheckpoint = "checkpoint"
	// SpanSpill covers one external-sort spill (or manifest reuse) of a
	// candidate's GK rows for a single key pass.
	SpanSpill = "spill-sort"
	// SpanShard covers one shard's share of a sharded sliding-window
	// pass: its owned row range plus the halo prefix it reads for
	// window context.
	SpanShard = "shard"
	// EventResume records that a run was seeded with recovered state.
	EventResume = "resume"
	// EventInterrupted records a run cut short by cancellation, a
	// deadline, or a resource limit.
	EventInterrupted = "interrupted"
)

// Attr is one key/value attribute attached to a span or event. Values
// are restricted to JSON-friendly scalars (string, int64, float64,
// bool) by the constructors.
type Attr struct {
	Key   string `json:"k"`
	Value any    `json:"v"`
}

// UnmarshalJSON restores the constructor types on the way back in:
// integral JSON numbers decode to int64, fractional ones to float64,
// so a trace round-tripped through JSONL compares equal to the
// original records.
func (a *Attr) UnmarshalJSON(data []byte) error {
	var raw struct {
		Key   string          `json:"k"`
		Value json.RawMessage `json:"v"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	a.Key = raw.Key
	if len(raw.Value) == 0 {
		a.Value = nil
		return nil
	}
	switch raw.Value[0] {
	case '"':
		var s string
		if err := json.Unmarshal(raw.Value, &s); err != nil {
			return err
		}
		a.Value = s
	case 't', 'f':
		var b bool
		if err := json.Unmarshal(raw.Value, &b); err != nil {
			return err
		}
		a.Value = b
	case 'n':
		a.Value = nil
	default:
		var num json.Number
		if err := json.Unmarshal(raw.Value, &num); err != nil {
			return err
		}
		if i, err := num.Int64(); err == nil {
			a.Value = i
		} else {
			f, err := num.Float64()
			if err != nil {
				return err
			}
			a.Value = f
		}
	}
	return nil
}

// String makes a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int makes an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: int64(v)} }

// Int64 makes a 64-bit integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float makes a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool makes a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Record is one finished span or point event as delivered to sinks.
// Spans are emitted once, at End, with their measured duration; events
// have zero duration. Records are immutable after emission.
type Record struct {
	Kind   string        `json:"kind"` // "span" or "event"
	Name   string        `json:"name"`
	ID     int64         `json:"id"`
	Parent int64         `json:"parent,omitempty"` // 0 = no parent
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"` // 0 for events
	Attrs  []Attr        `json:"attrs,omitempty"`
}

// Attr returns the value of the named attribute and whether it is set.
// When a key was set more than once, the latest value wins.
func (r *Record) Attr(key string) (any, bool) {
	for i := len(r.Attrs) - 1; i >= 0; i-- {
		if r.Attrs[i].Key == key {
			return r.Attrs[i].Value, true
		}
	}
	return nil, false
}

// AttrInt returns the named attribute as an int64 (0 when absent or
// not an integer).
func (r *Record) AttrInt(key string) int64 {
	v, _ := r.Attr(key)
	n, _ := v.(int64)
	return n
}

// AttrString returns the named attribute as a string ("" when absent).
func (r *Record) AttrString(key string) string {
	v, _ := r.Attr(key)
	s, _ := v.(string)
	return s
}

// AttrBool returns the named attribute as a bool (false when absent).
func (r *Record) AttrBool(key string) bool {
	v, _ := r.Attr(key)
	b, _ := v.(bool)
	return b
}

// Sink receives finished spans and events. Emit may be called from
// concurrent goroutines (the engine runs candidates in parallel) and
// must not retain the record's Attrs slice beyond the call unless it
// copies it — the engine never mutates a record after emission, but
// sinks that buffer should still treat records as values.
type Sink interface {
	Emit(r Record)
}

// Observer carries one run's tracing and metrics state. The zero value
// is not usable; construct with New. All methods are safe on a nil
// receiver, so engine code threads an optional *Observer without
// guards. Attach sinks before the run starts; AddSink is safe
// concurrently but records emitted before attachment are lost.
type Observer struct {
	enabled atomic.Bool
	tracing atomic.Bool // at least one sink attached
	nextID  atomic.Int64
	mu      sync.RWMutex
	sinks   []Sink
	metrics Metrics
}

// New returns an enabled Observer with the given sinks attached.
func New(sinks ...Sink) *Observer {
	o := &Observer{}
	o.enabled.Store(true)
	for _, s := range sinks {
		o.AddSink(s)
	}
	return o
}

// Enabled reports whether the observer collects anything at all. The
// engine checks it once per run and treats a disabled observer exactly
// like a nil one.
func (o *Observer) Enabled() bool { return o != nil && o.enabled.Load() }

// SetEnabled flips the atomic master switch. Disabling an observer
// mid-run stops new spans and metric updates at the next phase
// boundary; it does not retract anything already emitted.
func (o *Observer) SetEnabled(v bool) {
	if o != nil {
		o.enabled.Store(v)
	}
}

// AddSink attaches a sink. Safe for concurrent use.
func (o *Observer) AddSink(s Sink) {
	if o == nil || s == nil {
		return
	}
	o.mu.Lock()
	o.sinks = append(o.sinks, s)
	o.mu.Unlock()
	o.tracing.Store(true)
}

// Metrics returns the observer's metric set, nil for a nil observer.
func (o *Observer) Metrics() *Metrics {
	if o == nil {
		return nil
	}
	return &o.metrics
}

// Span is an in-flight span handle. A nil *Span (returned when tracing
// is off) absorbs SetAttr/Child/Event/End calls for free, so
// instrumentation sites need no conditionals.
type Span struct {
	o      *Observer
	id     int64
	parent int64
	name   string
	start  time.Time
	mu     sync.Mutex // SetAttr may race with itself across helpers
	attrs  []Attr
	ended  atomic.Bool
}

// StartSpan opens a root span. Returns nil when tracing is off (no
// sink attached or observer disabled/nil).
func (o *Observer) StartSpan(name string, attrs ...Attr) *Span {
	return o.startSpan(0, name, attrs)
}

func (o *Observer) startSpan(parent int64, name string, attrs []Attr) *Span {
	if o == nil || !o.enabled.Load() || !o.tracing.Load() {
		return nil
	}
	return &Span{
		o:      o,
		id:     o.nextID.Add(1),
		parent: parent,
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
}

// Event emits a point event with no duration.
func (o *Observer) Event(name string, attrs ...Attr) {
	if o == nil || !o.enabled.Load() || !o.tracing.Load() {
		return
	}
	o.emit(Record{
		Kind:  "event",
		Name:  name,
		ID:    o.nextID.Add(1),
		Start: time.Now(),
		Attrs: attrs,
	})
}

func (o *Observer) emit(r Record) {
	o.mu.RLock()
	sinks := o.sinks
	o.mu.RUnlock()
	for _, s := range sinks {
		s.Emit(r)
	}
}

// Child opens a sub-span of s. On a nil span it degrades to a nil
// span, keeping the chain allocation-free when tracing is off.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.o.startSpan(s.id, name, attrs)
}

// Event emits a point event parented to s.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.o.emit(Record{
		Kind:   "event",
		Name:   name,
		ID:     s.o.nextID.Add(1),
		Parent: s.id,
		Start:  time.Now(),
		Attrs:  attrs,
	})
}

// SetAttr appends attributes to the span. Later values for the same
// key win in the accessor helpers of Record.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// End finishes the span and emits it to every sink. End is idempotent:
// only the first call emits.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.mu.Lock()
	attrs := s.attrs
	s.mu.Unlock()
	s.o.emit(Record{
		Kind:   "span",
		Name:   s.name,
		ID:     s.id,
		Parent: s.parent,
		Start:  s.start,
		Dur:    time.Since(s.start),
		Attrs:  attrs,
	})
}
