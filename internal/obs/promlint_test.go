package obs

import (
	"strings"
	"testing"
)

func TestLintPrometheusAccepts(t *testing.T) {
	cases := map[string]string{
		"counter": "# HELP a_total things\n# TYPE a_total counter\na_total 3\n",
		"gauge with labels": "# HELP g stuff\n# TYPE g gauge\n" +
			"g{job=\"x\",quote=\"sa\\\"y\"} 1.5\ng{job=\"y\"} 2\n",
		"histogram": "# HELP h_seconds lat\n# TYPE h_seconds histogram\n" +
			"h_seconds_bucket{le=\"0.1\"} 1\nh_seconds_bucket{le=\"1\"} 3\nh_seconds_bucket{le=\"+Inf\"} 4\n" +
			"h_seconds_sum 2.5\nh_seconds_count 4\n",
		"labeled histogram": "# HELP h lat\n# TYPE h histogram\n" +
			"h_bucket{phase=\"a\",le=\"1\"} 1\nh_bucket{phase=\"a\",le=\"+Inf\"} 1\nh_sum{phase=\"a\"} 0.5\nh_count{phase=\"a\"} 1\n" +
			"h_bucket{phase=\"b\",le=\"1\"} 0\nh_bucket{phase=\"b\",le=\"+Inf\"} 2\nh_sum{phase=\"b\"} 9\nh_count{phase=\"b\"} 2\n",
		"timestamped":     "# HELP t x\n# TYPE t counter\nt 1 1700000000000\n",
		"free comment":    "# just a comment\n# HELP a x\n# TYPE a counter\na 1\n",
		"empty histogram": "# HELP h x\n# TYPE h histogram\n",
		"special values":  "# HELP v x\n# TYPE v gauge\nv{k=\"a\"} +Inf\nv{k=\"b\"} NaN\n",
	}
	for name, in := range cases {
		if err := LintPrometheus([]byte(in)); err != nil {
			t.Errorf("%s: unexpected lint error: %v", name, err)
		}
	}
}

func TestLintPrometheusRejects(t *testing.T) {
	cases := map[string]struct {
		in   string
		want string
	}{
		"empty":               {"", "empty"},
		"no trailing newline": {"# HELP a x\n# TYPE a counter\na 1", "newline"},
		"sample before meta":  {"a 1\n# HELP a x\n# TYPE a counter\n", "before HELP/TYPE"},
		"missing TYPE":        {"# HELP a x\na 1\n", "before HELP/TYPE"},
		"duplicate HELP":      {"# HELP a x\n# HELP a y\n# TYPE a counter\na 1\n", "duplicate HELP"},
		"duplicate sample":    {"# HELP a x\n# TYPE a counter\na 1\na 2\n", "duplicate sample"},
		"interleaved families": {
			"# HELP a x\n# TYPE a counter\na 1\n# HELP b y\n# TYPE b counter\nb 1\na{l=\"v\"} 2\n",
			"contiguous"},
		"bad metric name":     {"# HELP 0a x\n# TYPE 0a counter\n0a 1\n", "invalid metric name"},
		"bad label name":      {"# HELP a x\n# TYPE a counter\na{0l=\"v\"} 1\n", "invalid label name"},
		"bad value":           {"# HELP a x\n# TYPE a counter\na one\n", "unparseable value"},
		"bad TYPE kind":       {"# HELP a x\n# TYPE a enum\na 1\n", "unknown TYPE"},
		"unterminated labels": {"# HELP a x\n# TYPE a counter\na{l=\"v\" 1\n", "unterminated"},
		"hist le not ascending": {
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"0.5\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
			"not ascending"},
		"hist not cumulative": {
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
			"cumulative"},
		"hist missing inf": {
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"+Inf"},
		"hist count mismatch": {
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 2\n",
			"_count"},
		"hist missing sum": {
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
			"_sum"},
		"hist bucket no le": {
			"# HELP h x\n# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n",
			"without le"},
	}
	for name, c := range cases {
		err := LintPrometheus([]byte(c.in))
		if err == nil {
			t.Errorf("%s: lint accepted invalid exposition", name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, c.want)
		}
	}
}

// TestLintPrometheusOverRealExporters pins the contract: the actual
// exposition of the engine's own metrics must lint.
func TestLintPrometheusOverRealExporters(t *testing.T) {
	var m Metrics
	m.Comparisons.Add(7)
	m.SampleHeap()
	var sb strings.Builder
	if err := m.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if err := LintPrometheus([]byte(sb.String())); err != nil {
		t.Fatalf("engine exporter does not lint: %v", err)
	}
}
