package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Progress periodically renders one-line run summaries (phase
// progress, comparisons/sec, ETA from pair counts) from a Metrics set
// to a writer — the CLI's -progress implementation.
//
// TTY awareness: when the writer is an interactive terminal the line
// is redrawn in place (carriage return, no newline) at the configured
// interval; when it is not (logs, CI, a pipe), lines are appended at
// a much lower frequency so log files stay readable. Quiet TTY
// detection never errors: a writer that is not an *os.File is treated
// as non-interactive.
type Progress struct {
	w        io.Writer
	m        *Metrics
	tty      bool
	interval time.Duration

	mu    sync.Mutex
	stop  chan struct{}
	done  chan struct{}
	wrote bool
}

// Interval defaults: redraw fast on a TTY, append slowly elsewhere.
const (
	ttyInterval    = 500 * time.Millisecond
	nonTTYInterval = 5 * time.Second
)

// NewProgress returns a progress printer over m writing to w. The
// reporting interval adapts to whether w is an interactive terminal;
// pass interval > 0 to override.
func NewProgress(w io.Writer, m *Metrics, interval time.Duration) *Progress {
	p := &Progress{w: w, m: m, tty: isTTY(w)}
	p.interval = interval
	if p.interval <= 0 {
		if p.tty {
			p.interval = ttyInterval
		} else {
			p.interval = nonTTYInterval
		}
	}
	return p
}

// isTTY reports whether w is an interactive character device.
func isTTY(w io.Writer) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	fi, err := f.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}

// Start launches the reporting goroutine. Call Stop to end it; Stop
// prints a final line so the last state is always visible.
func (p *Progress) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go p.loop(p.stop, p.done)
}

// Stop ends the reporting goroutine, printing one final summary line
// (newline-terminated even on a TTY).
func (p *Progress) Stop() {
	p.mu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	p.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (p *Progress) loop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			p.render(true)
			return
		case <-t.C:
			p.render(false)
		}
	}
}

// render writes one progress line. On a TTY intermediate lines end
// with \r so they overwrite each other; the final line (and every
// non-TTY line) ends with \n.
func (p *Progress) render(final bool) {
	s := p.m.Snapshot()
	line := FormatProgress(s)
	if p.tty && !final {
		fmt.Fprintf(p.w, "\r\x1b[K%s", line)
		p.wrote = true
		return
	}
	if p.tty && p.wrote {
		// Clear the in-place line before the terminal newline-terminated one.
		fmt.Fprint(p.w, "\r\x1b[K")
	}
	fmt.Fprintln(p.w, line)
}

// FormatProgress renders one human-readable progress line from a
// snapshot: phase counts, pair progress with ETA, throughput, memory.
func FormatProgress(s Snapshot) string {
	line := fmt.Sprintf("sxnm: candidates %d/%d passes %d", s.CandidatesDone, s.CandidatesTotal, s.PassesDone)
	if s.ExpectedWindowPairs > 0 {
		frac := float64(s.WindowPairs) / float64(s.ExpectedWindowPairs)
		if frac > 1 {
			frac = 1 // adaptive windows can overshoot the estimate
		}
		line += fmt.Sprintf(" | pairs %s/%s (%.0f%%)", countStr(s.WindowPairs), countStr(s.ExpectedWindowPairs), frac*100)
		if eta, ok := etaFrom(s, frac); ok {
			line += fmt.Sprintf(" eta %s", eta)
		}
	} else {
		line += fmt.Sprintf(" | pairs %s", countStr(s.WindowPairs))
	}
	line += fmt.Sprintf(" | %s cmp (%.0f/s) | %d dups | heap %s",
		countStr(s.Comparisons), s.ComparisonsPerSec, s.DuplicatePairs, byteStr(s.HeapInUse))
	return line
}

// etaFrom projects the remaining wall time from the pair-count
// fraction and elapsed time. Needs a meaningful fraction and a second
// of signal to avoid wild early estimates.
func etaFrom(s Snapshot, frac float64) (time.Duration, bool) {
	if frac <= 0.001 || frac >= 1 || s.ElapsedSeconds < 0.5 {
		return 0, false
	}
	rem := s.ElapsedSeconds * (1 - frac) / frac
	return time.Duration(rem * float64(time.Second)).Round(time.Second), true
}

func countStr(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.2fG", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

func byteStr(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
