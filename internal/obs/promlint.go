package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintPrometheus validates a Prometheus text-exposition payload
// (format v0.0.4) the way a scraper would: every family declares
// HELP and TYPE before its first sample, samples of one family are
// contiguous, no family is declared twice, names and labels are
// syntactically valid, every value parses, the payload ends with a
// newline, and histogram families have ascending le buckets ending in
// +Inf whose count matches _count. It is the shared contract test for
// every exporter in this repo (CLI -metrics, daemon /metrics), so the
// two can never drift apart in format.
func LintPrometheus(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("promlint: empty exposition")
	}
	if data[len(data)-1] != '\n' {
		return fmt.Errorf("promlint: exposition does not end with a newline")
	}
	families := map[string]*promFamily{}
	var current string // family whose contiguous block we are inside
	seenSamples := map[string]bool{}
	// histogram bookkeeping: per family, per label-set-sans-le, the
	// bucket series and the _count value.
	type histSeries struct {
		les    []float64
		counts []float64
		count  float64
		hasCnt bool
		hasSum bool
	}
	hists := map[string]map[string]*histSeries{}

	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseMetaLine(line)
			if err != nil {
				return fmt.Errorf("promlint: line %d: %w", lineNo, err)
			}
			if kind == "" {
				continue // free-form comment
			}
			f := families[name]
			if f == nil {
				f = &promFamily{}
				families[name] = f
			}
			switch kind {
			case "HELP":
				if f.help != "" {
					return fmt.Errorf("promlint: line %d: duplicate HELP for %s", lineNo, name)
				}
				f.help = rest
			case "TYPE":
				if f.typ != "" {
					return fmt.Errorf("promlint: line %d: duplicate TYPE for %s", lineNo, name)
				}
				if f.sampled {
					return fmt.Errorf("promlint: line %d: TYPE for %s after its samples", lineNo, name)
				}
				f.typ = rest
			}
			current = name
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("promlint: line %d: %w", lineNo, err)
		}
		fam := sampleFamily(name, families)
		f := families[fam]
		if f == nil || f.typ == "" || f.help == "" {
			return fmt.Errorf("promlint: line %d: sample %s before HELP/TYPE for %s", lineNo, name, fam)
		}
		if fam != current {
			return fmt.Errorf("promlint: line %d: sample %s outside its family's contiguous block (in %s)", lineNo, name, current)
		}
		key := name + "{" + canonicalLabels(labels) + "}"
		if seenSamples[key] {
			return fmt.Errorf("promlint: line %d: duplicate sample %s", lineNo, key)
		}
		seenSamples[key] = true
		f.sampled = true

		if f.typ == "histogram" {
			hs := hists[fam]
			if hs == nil {
				hs = map[string]*histSeries{}
				hists[fam] = hs
			}
			series := canonicalLabels(dropLabel(labels, "le"))
			s := hs[series]
			if s == nil {
				s = &histSeries{}
				hs[series] = s
			}
			switch {
			case name == fam+"_bucket":
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("promlint: line %d: %s_bucket without le label", lineNo, fam)
				}
				lf, err := parseLE(le)
				if err != nil {
					return fmt.Errorf("promlint: line %d: %w", lineNo, err)
				}
				s.les = append(s.les, lf)
				s.counts = append(s.counts, value)
			case name == fam+"_sum":
				s.hasSum = true
			case name == fam+"_count":
				s.count = value
				s.hasCnt = true
			default:
				return fmt.Errorf("promlint: line %d: sample %s in histogram family %s", lineNo, name, fam)
			}
		}
	}

	for fam, hs := range hists {
		keys := make([]string, 0, len(hs))
		for k := range hs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, series := range keys {
			s := hs[series]
			if len(s.les) == 0 {
				return fmt.Errorf("promlint: histogram %s{%s} has no buckets", fam, series)
			}
			for i := 1; i < len(s.les); i++ {
				if s.les[i] <= s.les[i-1] {
					return fmt.Errorf("promlint: histogram %s{%s} le not ascending", fam, series)
				}
				if s.counts[i] < s.counts[i-1] {
					return fmt.Errorf("promlint: histogram %s{%s} bucket counts not cumulative", fam, series)
				}
			}
			if !math.IsInf(s.les[len(s.les)-1], 1) {
				return fmt.Errorf("promlint: histogram %s{%s} missing +Inf bucket", fam, series)
			}
			if !s.hasSum || !s.hasCnt {
				return fmt.Errorf("promlint: histogram %s{%s} missing _sum or _count", fam, series)
			}
			if s.count != s.counts[len(s.counts)-1] {
				return fmt.Errorf("promlint: histogram %s{%s} _count %v != +Inf bucket %v", fam, series, s.count, s.counts[len(s.counts)-1])
			}
		}
	}
	return nil
}

// parseMetaLine handles "# HELP name text" / "# TYPE name kind".
// Other comments return an empty kind.
func parseMetaLine(line string) (kind, name, rest string, err error) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 || fields[0] != "#" {
		return "", "", "", nil
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 4 || fields[3] == "" {
			return "", "", "", fmt.Errorf("malformed HELP line %q", line)
		}
		if !validMetricName(fields[2]) {
			return "", "", "", fmt.Errorf("invalid metric name %q", fields[2])
		}
		return "HELP", fields[2], fields[3], nil
	case "TYPE":
		if len(fields) != 4 {
			return "", "", "", fmt.Errorf("malformed TYPE line %q", line)
		}
		if !validMetricName(fields[2]) {
			return "", "", "", fmt.Errorf("invalid metric name %q", fields[2])
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return "", "", "", fmt.Errorf("unknown TYPE %q", fields[3])
		}
		return "TYPE", fields[2], fields[3], nil
	}
	return "", "", "", nil
}

// parseSampleLine decodes `name{l1="v1",...} value [timestamp]`.
func parseSampleLine(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexByte(rest, ' ')
	if brace >= 0 && (sp < 0 || brace < sp) {
		name = rest[:brace]
		end := strings.IndexByte(rest[brace:], '}')
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err = parseLabels(rest[brace+1 : brace+end])
		if err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimLeft(rest[brace+end+1:], " ")
	} else {
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("sample without value in %q", line)
		}
		name = rest[:sp]
		rest = strings.TrimLeft(rest[sp:], " ")
	}
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q in %q", fields[0], line)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("unparseable timestamp %q in %q", fields[1], line)
		}
	}
	return name, labels, value, nil
}

// parseLabels decodes `k1="v1",k2="v2"`; values may contain the
// standard \", \\, \n escapes.
func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label in %q", s)
		}
		key := s[:eq]
		if !validLabelName(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", key)
		}
		s = s[1:]
		var b strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case '"', '\\':
					b.WriteByte(s[i])
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %q", s[i], key)
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			b.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("duplicate label %q", key)
		}
		out[key] = b.String()
		s = strings.TrimPrefix(s, ",")
	}
	return out, nil
}

// sampleFamily maps a sample name to the family that declared it:
// histogram samples use the base name (_bucket/_sum/_count suffixes),
// everything else is its own family.
func sampleFamily(name string, families map[string]*promFamily) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if f := families[base]; f != nil && (f.typ == "histogram" || f.typ == "summary") {
				return base
			}
		}
	}
	return name
}

// promFamily is the metadata LintPrometheus tracks per metric family.
type promFamily struct {
	help, typ string
	sampled   bool
}

func canonicalLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+strconv.Quote(labels[k]))
	}
	return strings.Join(parts, ",")
}

func dropLabel(labels map[string]string, name string) map[string]string {
	if _, ok := labels[name]; !ok {
		return labels
	}
	out := make(map[string]string, len(labels)-1)
	for k, v := range labels {
		if k != name {
			out[k] = v
		}
	}
	return out
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("unparseable le %q", s)
	}
	return v, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
