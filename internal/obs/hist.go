package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a fixed log-bucket latency histogram in the same
// zero-dependency, atomics-only style as Metrics: Observe is a couple
// of atomic adds, safe from any goroutine, and a zero Histogram is
// ready to use. Buckets double from 1µs; everything past ~76h lands
// in the +Inf bucket. The fixed layout keeps Prometheus exposition
// stable across daemons, which is what makes the per-phase families
// aggregable fleet-wide.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sumNS  atomic.Int64
	maxNS  atomic.Int64
}

// histBuckets is the bucket count including the final +Inf bucket.
// Bucket i (i < histBuckets-1) holds observations ≤ 1µs·2^i.
const histBuckets = 40

// histBucketNS returns the inclusive upper bound of bucket i in
// nanoseconds, or math.MaxInt64 for the +Inf bucket.
func histBucketNS(i int) int64 {
	if i >= histBuckets-1 {
		return math.MaxInt64
	}
	return int64(1000) << uint(i)
}

// histBucketOf maps a duration in nanoseconds to its bucket index.
func histBucketOf(ns int64) int {
	if ns <= 1000 {
		return 0
	}
	idx := bits.Len64(uint64(ns-1) / 1000)
	if idx > histBuckets-1 {
		return histBuckets - 1
	}
	return idx
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[histBucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		max := h.maxNS.Load()
		if ns <= max || h.maxNS.CompareAndSwap(max, ns) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) by linear
// interpolation inside the owning bucket; observations in the +Inf
// bucket are capped at the recorded maximum. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := 0; i < histBuckets; i++ {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) < rank {
			cum += n
			continue
		}
		max := h.maxNS.Load()
		if i == histBuckets-1 {
			return time.Duration(max)
		}
		lo := int64(0)
		if i > 0 {
			lo = histBucketNS(i - 1)
		}
		hi := histBucketNS(i)
		if hi > max {
			hi = max
		}
		if hi < lo {
			hi = lo
		}
		frac := (rank - float64(cum)) / float64(n)
		return time.Duration(float64(lo) + frac*float64(hi-lo))
	}
	return time.Duration(h.maxNS.Load())
}

// LatencySummary is the report-friendly digest of a Histogram.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Summary computes count, mean, p50/p90/p99, and max in milliseconds.
func (h *Histogram) Summary() LatencySummary {
	if h == nil || h.count.Load() == 0 {
		return LatencySummary{}
	}
	s := LatencySummary{
		Count: h.count.Load(),
		P50MS: ms(h.Quantile(0.50)),
		P90MS: ms(h.Quantile(0.90)),
		P99MS: ms(h.Quantile(0.99)),
		MaxMS: ms(time.Duration(h.maxNS.Load())),
	}
	s.MeanMS = ms(time.Duration(h.sumNS.Load() / s.Count))
	return s
}

// WritePrometheus renders the histogram as one Prometheus histogram
// family (cumulative _bucket series with le in seconds, then _sum and
// _count). name must be a valid metric name, conventionally ending in
// _seconds.
func (h *Histogram) WritePrometheus(w io.Writer, name, help string) error {
	if err := writeHistHeader(w, name, help); err != nil {
		return err
	}
	return h.writePromSeries(w, name, "")
}

// writePromSeries emits the _bucket/_sum/_count samples with the given
// extra label (e.g. `phase="pass"`), without the HELP/TYPE header, so
// several label sets can share one family.
func (h *Histogram) writePromSeries(w io.Writer, name, label string) error {
	var cum int64
	var sum float64
	var count int64
	if h != nil {
		count = h.count.Load()
		sum = time.Duration(h.sumNS.Load()).Seconds()
	}
	for i := 0; i < histBuckets; i++ {
		if h != nil {
			cum += h.counts[i].Load()
		}
		le := "+Inf"
		if i < histBuckets-1 {
			le = strconv.FormatFloat(time.Duration(histBucketNS(i)).Seconds(), 'g', -1, 64)
		}
		sep := ""
		if label != "" {
			sep = label + ","
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, sep, le, cum); err != nil {
			return err
		}
	}
	lbl := ""
	if label != "" {
		lbl = "{" + label + "}"
	}
	_, err := fmt.Fprintf(w, "%s_sum%s %v\n%s_count%s %d\n", name, lbl, sum, name, lbl, count)
	return err
}

func writeHistHeader(w io.Writer, name, help string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	return err
}

// PhaseHistograms is a Sink that folds every completed span's duration
// into a per-phase Histogram keyed by the span name (parse, key_gen,
// pass, candidate, …). Attach it to an Observer to get engine phase
// latency distributions for free; a daemon shares one instance across
// jobs to aggregate fleet-visible phase latencies.
type PhaseHistograms struct {
	mu sync.Mutex
	m  map[string]*Histogram
}

// NewPhaseHistograms returns an empty phase-latency set.
func NewPhaseHistograms() *PhaseHistograms {
	return &PhaseHistograms{m: make(map[string]*Histogram)}
}

// Emit implements Sink: span records feed their phase's histogram,
// point events are ignored.
func (p *PhaseHistograms) Emit(r Record) {
	if p == nil || r.Kind != "span" {
		return
	}
	p.Hist(r.Name).Observe(r.Dur)
}

// Hist returns the named phase's histogram, creating it on first use.
func (p *PhaseHistograms) Hist(phase string) *Histogram {
	p.mu.Lock()
	defer p.mu.Unlock()
	h := p.m[phase]
	if h == nil {
		h = &Histogram{}
		p.m[phase] = h
	}
	return h
}

// Phases returns the recorded phase names, sorted.
func (p *PhaseHistograms) Phases() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.m))
	for k := range p.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Summaries digests every phase for report.json.
func (p *PhaseHistograms) Summaries() map[string]LatencySummary {
	if p == nil {
		return nil
	}
	out := make(map[string]LatencySummary)
	for _, phase := range p.Phases() {
		out[phase] = p.Hist(phase).Summary()
	}
	return out
}

// WritePrometheus renders every phase as one labeled Prometheus
// histogram family: name_bucket{phase="...",le="..."} etc.
func (p *PhaseHistograms) WritePrometheus(w io.Writer, name, help string) error {
	if err := writeHistHeader(w, name, help); err != nil {
		return err
	}
	if p == nil {
		return nil
	}
	for _, phase := range p.Phases() {
		if err := p.Hist(phase).writePromSeries(w, name, fmt.Sprintf("phase=%q", phase)); err != nil {
			return err
		}
	}
	return nil
}
