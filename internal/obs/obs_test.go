package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilObserverIsNoOp(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Error("nil observer reports enabled")
	}
	o.SetEnabled(true)
	o.AddSink(NewRing(1))
	o.Event("x")
	if o.Metrics() != nil {
		t.Error("nil observer returned metrics")
	}
	sp := o.StartSpan("root")
	if sp != nil {
		t.Fatal("nil observer returned a span")
	}
	// The nil span chain must also absorb everything.
	sp.SetAttr(Int("a", 1))
	sp.Event("e")
	child := sp.Child("c")
	child.End()
	sp.End()
}

func TestObserverWithoutSinksEmitsNothing(t *testing.T) {
	o := New()
	if !o.Enabled() {
		t.Fatal("New() observer should be enabled")
	}
	if sp := o.StartSpan("root"); sp != nil {
		t.Error("span handed out with no sink attached")
	}
}

func TestSpanHierarchyAndAttrs(t *testing.T) {
	ring := NewRing(16)
	o := New(ring)
	root := o.StartSpan("detect", Int("n", 2))
	child := root.Child("candidate", String(AttrCandidate, "movie"))
	child.SetAttr(Int(AttrComparisons, 7))
	child.End()
	child.End() // idempotent: must not emit twice
	root.End()

	recs := ring.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	// Children end first.
	if recs[0].Name != "candidate" || recs[1].Name != "detect" {
		t.Fatalf("order = %s, %s", recs[0].Name, recs[1].Name)
	}
	if recs[0].Parent != recs[1].ID {
		t.Error("child span not parented to root")
	}
	if recs[0].AttrString(AttrCandidate) != "movie" || recs[0].AttrInt(AttrComparisons) != 7 {
		t.Errorf("attrs = %v", recs[0].Attrs)
	}
	if recs[1].Kind != "span" || recs[1].Dur <= 0 {
		t.Errorf("root record = %+v", recs[1])
	}
}

func TestLatestAttrWins(t *testing.T) {
	r := Record{Attrs: []Attr{Int("x", 1), Int("x", 2)}}
	if r.AttrInt("x") != 2 {
		t.Errorf("AttrInt = %d, want latest value 2", r.AttrInt("x"))
	}
	if _, ok := r.Attr("missing"); ok {
		t.Error("missing attr reported present")
	}
}

func TestDisabledObserverStopsEmission(t *testing.T) {
	ring := NewRing(4)
	o := New(ring)
	o.SetEnabled(false)
	if o.Enabled() {
		t.Fatal("still enabled")
	}
	o.StartSpan("x").End()
	o.Event("y")
	if got := len(ring.Records()); got != 0 {
		t.Errorf("disabled observer emitted %d records", got)
	}
}

func TestRingOverflow(t *testing.T) {
	ring := NewRing(3)
	o := New(ring)
	for i := 0; i < 5; i++ {
		o.Event(fmt.Sprintf("e%d", i))
	}
	recs := ring.Records()
	if len(recs) != 3 {
		t.Fatalf("retained = %d, want 3", len(recs))
	}
	// Oldest first, keeping the most recent three.
	for i, want := range []string{"e2", "e3", "e4"} {
		if recs[i].Name != want {
			t.Errorf("recs[%d] = %s, want %s", i, recs[i].Name, want)
		}
	}
	if ring.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", ring.Dropped())
	}
}

func TestConcurrentEmission(t *testing.T) {
	ring := NewRing(4096)
	col := NewCollector()
	o := New(ring, col)
	m := o.Metrics()

	const workers = 8
	const spansPer = 50
	var wg sync.WaitGroup
	root := o.StartSpan("detect")
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < spansPer; i++ {
				sp := root.Child(SpanCandidate, String(AttrCandidate, fmt.Sprintf("c%d-%d", w, i)))
				sp.SetAttr(Int(AttrComparisons, 1))
				sp.Event("tick")
				m.Comparisons.Add(1)
				m.SampleHeap()
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()

	recs := ring.Records()
	want := workers*spansPer*2 + 1 // span + event each, plus root
	if len(recs) != want {
		t.Fatalf("records = %d, want %d", len(recs), want)
	}
	if m.Comparisons.Load() != workers*spansPer {
		t.Errorf("comparisons = %d", m.Comparisons.Load())
	}
	rep := col.Report(m)
	if len(rep.Candidates) != workers*spansPer {
		t.Errorf("collector candidates = %d", len(rep.Candidates))
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	o := New(j)
	sp := o.StartSpan("keygen", Int(AttrRows, 42), String("note", "hi"),
		Float("ratio", 0.5), Bool(AttrInterrupted, false))
	sp.End()
	o.Event(EventResume, Int64(AttrResumedPairs, 7))
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}

	recs, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("parsed %d records", len(recs))
	}
	if recs[0].Name != "keygen" || recs[0].Kind != "span" {
		t.Errorf("rec0 = %+v", recs[0])
	}
	// Attr types must survive the trip: int64 stays int64, float stays
	// float64, bool stays bool.
	if v, _ := recs[0].Attr(AttrRows); v != int64(42) {
		t.Errorf("rows attr = %v (%T), want int64(42)", v, v)
	}
	if v, _ := recs[0].Attr("ratio"); v != 0.5 {
		t.Errorf("ratio attr = %v (%T)", v, v)
	}
	if v, _ := recs[0].Attr(AttrInterrupted); v != false {
		t.Errorf("bool attr = %v (%T)", v, v)
	}
	if recs[1].AttrInt(AttrResumedPairs) != 7 {
		t.Errorf("event attr = %v", recs[1].Attrs)
	}
	if !reflect.DeepEqual(recs[0].Attrs, []Attr{
		Int(AttrRows, 42), String("note", "hi"), Float("ratio", 0.5), Bool(AttrInterrupted, false),
	}) {
		t.Errorf("attrs after round trip = %#v", recs[0].Attrs)
	}
}

// errWriter fails after n successful writes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	w.n--
	return len(p), nil
}

func TestJSONLStickyError(t *testing.T) {
	j := NewJSONL(&errWriter{n: 0})
	o := New(j)
	// Overflow the 4KiB bufio buffer so the write error surfaces.
	big := strings.Repeat("x", 2048)
	for i := 0; i < 8; i++ {
		o.Event("e", String("pad", big))
	}
	if j.Err() == nil && j.Flush() == nil {
		t.Fatal("write error not surfaced")
	}
	// Further emission must not panic or block.
	o.Event("after")
	if err := j.Flush(); err == nil {
		t.Error("sticky error cleared")
	}
}

func TestMetricsSnapshotAndRates(t *testing.T) {
	var m Metrics
	m.MarkStart()
	m.Comparisons.Store(300)
	m.FilteredOut.Store(100)
	m.WindowPairs.Store(400)
	time.Sleep(10 * time.Millisecond)
	s := m.Snapshot()
	if s.Comparisons != 300 || s.FilteredOut != 100 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.FilterHitRate != 0.25 {
		t.Errorf("filter hit rate = %v, want 0.25", s.FilterHitRate)
	}
	if s.ElapsedSeconds <= 0 || s.ComparisonsPerSec <= 0 {
		t.Errorf("rates not derived: %+v", s)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"comparisons":300`)) {
		t.Errorf("snapshot json = %s", b)
	}
}

func TestNilMetricsMethods(t *testing.T) {
	var m *Metrics
	m.MarkStart()
	m.SampleHeap()
	if m.Elapsed() != 0 {
		t.Error("nil metrics elapsed != 0")
	}
	if s := m.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil metrics snapshot = %+v", s)
	}
	if err := m.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
}

func TestSampleHeapTracksPeak(t *testing.T) {
	var m Metrics
	m.SampleHeap()
	if m.HeapInUse.Load() <= 0 {
		t.Fatal("heap sample is zero")
	}
	if m.PeakHeap.Load() < m.HeapInUse.Load() {
		t.Error("peak below current")
	}
	// Peak must never decrease.
	m.HeapInUse.Store(0)
	peak := m.PeakHeap.Load()
	m.SampleHeap()
	if m.PeakHeap.Load() < peak {
		t.Error("peak decreased")
	}
}

func TestWritePrometheus(t *testing.T) {
	var m Metrics
	m.Comparisons.Store(12)
	m.DuplicatePairs.Store(3)
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP sxnm_comparisons_total",
		"# TYPE sxnm_comparisons_total counter",
		"sxnm_comparisons_total 12",
		"sxnm_duplicate_pairs_total 3",
		"# TYPE sxnm_heap_in_use_bytes gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
	// Every row renders a HELP/TYPE/sample triple.
	if got := strings.Count(out, "# HELP "); got != len(promRows) {
		t.Errorf("HELP lines = %d, want %d", got, len(promRows))
	}
}

func TestPublishExpvarRepublish(t *testing.T) {
	var m1, m2 Metrics
	m1.Comparisons.Store(1)
	m2.Comparisons.Store(2)
	m1.PublishExpvar("sxnm_test")
	m2.PublishExpvar("sxnm_test") // must not panic, must re-point
	var got Snapshot
	// expvar renders via the holder's String.
	s := expvarString(t, "sxnm_test")
	if err := json.Unmarshal([]byte(s), &got); err != nil {
		t.Fatalf("expvar value %q: %v", s, err)
	}
	if got.Comparisons != 2 {
		t.Errorf("expvar shows %d comparisons, want the republished 2", got.Comparisons)
	}
}

func expvarString(t *testing.T, name string) string {
	t.Helper()
	v := expvar.Get(name)
	if v == nil {
		t.Fatalf("expvar %q not published", name)
	}
	return v.String()
}

func TestCollectorReport(t *testing.T) {
	col := NewCollector()
	o := New(col)

	kg := o.StartSpan(SpanKeyGen, Int(AttrRows, 10))
	kg.End()
	det := o.StartSpan(SpanDetect)
	cand := det.Child(SpanCandidate, String(AttrCandidate, "movie"),
		Int(AttrRows, 10), Int(AttrWindow, 5), Int(AttrKeys, 2))
	p0 := cand.Child(SpanPass, String(AttrCandidate, "movie"), Int(AttrPass, 0))
	p0.SetAttr(Int(AttrWindowPairs, 30), Int(AttrComparisons, 20), Int(AttrDuplicatePairs, 2))
	p0.End()
	p1 := cand.Child(SpanPass, String(AttrCandidate, "movie"), Int(AttrPass, 1))
	p1.SetAttr(Int(AttrWindowPairs, 25), Int(AttrComparisons, 15), Int(AttrDuplicatePairs, 1))
	p1.End()
	cand.SetAttr(Int(AttrWindowPairs, 55), Int(AttrComparisons, 35),
		Int(AttrFilteredOut, 5), Int(AttrDuplicatePairs, 3),
		Int(AttrClusters, 7), Int(AttrNonSingleton, 2),
		Int64(AttrSWNanos, int64(4*time.Millisecond)),
		Int64(AttrTCNanos, int64(time.Millisecond)))
	cand.End()
	o.Event(SpanCheckpoint, Int(AttrBytes, 128))
	det.End()

	rep := col.Report(o.Metrics())
	if rep.Schema != ReportSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.Candidates) != 1 {
		t.Fatalf("candidates = %d", len(rep.Candidates))
	}
	cr := rep.Candidates[0]
	if cr.Name != "movie" || cr.Rows != 10 || cr.Window != 5 || cr.Keys != 2 {
		t.Errorf("candidate header = %+v", cr)
	}
	if len(cr.Passes) != 2 || cr.Passes[0].Pass != 0 || cr.Passes[1].Pass != 1 {
		t.Fatalf("passes = %+v", cr.Passes)
	}
	if cr.Passes[0].WindowPairs != 30 || cr.Passes[1].Comparisons != 15 {
		t.Errorf("pass deltas = %+v", cr.Passes)
	}
	if rep.Totals.Comparisons != 35 || rep.Totals.DuplicatePairs != 3 || rep.Totals.Clusters != 7 {
		t.Errorf("totals = %+v", rep.Totals)
	}
	if rep.FilterHitRate != 5.0/40.0 {
		t.Errorf("filter hit rate = %v", rep.FilterHitRate)
	}
	if rep.SlidingWindowCPUMS != 4 || rep.TransitiveClosureCPUMS != 1 {
		t.Errorf("cpu sums = %v / %v", rep.SlidingWindowCPUMS, rep.TransitiveClosureCPUMS)
	}
	if rep.Checkpoint == nil || rep.Checkpoint.Writes != 1 || rep.Checkpoint.Bytes != 128 {
		t.Errorf("checkpoint = %+v", rep.Checkpoint)
	}
	if rep.KeyGenMS < 0 || rep.DetectWallMS <= 0 {
		t.Errorf("phase times = %v / %v", rep.KeyGenMS, rep.DetectWallMS)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report.json does not parse: %v", err)
	}
	if back.Totals != rep.Totals {
		t.Errorf("totals after round trip = %+v", back.Totals)
	}
}

func TestCollectorExcludesInterruptedFromTotals(t *testing.T) {
	col := NewCollector()
	o := New(col)
	done := o.StartSpan(SpanCandidate, String(AttrCandidate, "a"),
		Int(AttrComparisons, 10), Int(AttrDuplicatePairs, 1))
	done.End()
	cut := o.StartSpan(SpanCandidate, String(AttrCandidate, "b"),
		Int(AttrComparisons, 99), Bool(AttrInterrupted, true))
	cut.End()
	rep := col.Report(nil)
	if rep.Totals.Comparisons != 10 {
		t.Errorf("totals include interrupted candidate: %+v", rep.Totals)
	}
	if len(rep.Candidates) != 2 {
		t.Errorf("interrupted candidate missing from listing: %d", len(rep.Candidates))
	}
	for _, cr := range rep.Candidates {
		if cr.Name == "b" && !cr.Interrupted {
			t.Error("interrupted flag lost")
		}
	}
}

func TestCollectorResumeProvenance(t *testing.T) {
	col := NewCollector()
	o := New(col)
	o.Event(EventResume, Int(AttrCompleted, 2), Int64(AttrResumedPairs, 40))
	mid := o.StartSpan(SpanCandidate, String(AttrCandidate, "movie"),
		Bool(AttrResumed, false), Int(AttrNextPass, 1))
	mid.End()
	rep := col.Report(nil)
	if rep.Resume == nil {
		t.Fatal("resume provenance missing")
	}
	if rep.Resume.CompletedCandidates != 2 || rep.Resume.SeededPairs != 40 {
		t.Errorf("resume = %+v", rep.Resume)
	}
	if rep.Resume.NextPass["movie"] != 1 {
		t.Errorf("next pass map = %v", rep.Resume.NextPass)
	}
}

func TestFormatProgress(t *testing.T) {
	s := Snapshot{
		CandidatesDone: 1, CandidatesTotal: 3, PassesDone: 4,
		WindowPairs: 500, ExpectedWindowPairs: 1000,
		Comparisons: 400, ComparisonsPerSec: 100,
		DuplicatePairs: 7, HeapInUse: 2 << 20,
		ElapsedSeconds: 4,
	}
	line := FormatProgress(s)
	for _, want := range []string{
		"candidates 1/3", "passes 4", "(50%)", "eta 4s", "400 cmp (100/s)", "7 dups", "2.0MiB",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line %q missing %q", line, want)
		}
	}
	// Without an estimate the line omits percent and ETA.
	s.ExpectedWindowPairs = 0
	line = FormatProgress(s)
	if strings.Contains(line, "%") || strings.Contains(line, "eta") {
		t.Errorf("estimate-free line still has percent/eta: %q", line)
	}
}

func TestProgressWriterLifecycle(t *testing.T) {
	var buf bytes.Buffer
	var m Metrics
	m.MarkStart()
	p := NewProgress(&buf, &m, time.Millisecond)
	p.Start()
	p.Start() // double start is a no-op
	time.Sleep(10 * time.Millisecond)
	p.Stop()
	p.Stop() // double stop is a no-op
	out := buf.String()
	if !strings.Contains(out, "sxnm: candidates") {
		t.Errorf("no progress lines: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("final line not newline-terminated")
	}
}
