package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Ring is a bounded in-memory sink that keeps the most recent records,
// dropping the oldest on overflow. It is the test- and debug-friendly
// sink: cheap, allocation-stable, and inspectable after a run.
type Ring struct {
	mu      sync.Mutex
	buf     []Record
	next    int // next write position
	full    bool
	dropped int64
}

// NewRing returns a ring holding at most capacity records. A
// non-positive capacity is rounded up to 1.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Record, capacity)}
}

// Emit implements Sink.
func (r *Ring) Emit(rec Record) {
	r.mu.Lock()
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Records returns the retained records, oldest first.
func (r *Ring) Records() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Record, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Record, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dropped returns how many records were evicted by overflow.
func (r *Ring) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// JSONL streams every record to w as one JSON object per line — the
// run-scale sink: constant memory, parseable with any JSON tooling,
// and append-friendly. Writes are buffered; call Flush (or Close)
// before reading the output. The first write error is sticky and
// reported by Err/Flush/Close; subsequent records are dropped rather
// than blocking the run.
type JSONL struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer // non-nil when the writer should be closed by Close
	err error
}

// NewJSONL returns a JSONL sink writing to w. When w is also an
// io.Closer, Close closes it.
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Emit implements Sink.
func (j *JSONL) Emit(rec Record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.bw.Write(data); err != nil {
		j.err = err
		return
	}
	if err := j.bw.WriteByte('\n'); err != nil {
		j.err = err
	}
}

// Flush drains the buffer and returns the sticky error, if any.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.bw.Flush()
	return j.err
}

// Close flushes and, when the underlying writer is closable, closes
// it. The first error wins.
func (j *JSONL) Close() error {
	err := j.Flush()
	j.mu.Lock()
	c := j.c
	j.c = nil
	j.mu.Unlock()
	if c != nil {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Err returns the sticky write/encode error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ParseJSONL decodes records previously written by a JSONL sink —
// the round-trip used by tests and by report tooling that re-reads a
// trace file.
func ParseJSONL(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, rec)
	}
}
