package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Ring is a bounded in-memory sink that keeps the most recent records,
// dropping the oldest on overflow. It is the test- and debug-friendly
// sink: cheap, allocation-stable, and inspectable after a run.
type Ring struct {
	mu      sync.Mutex
	buf     []Record
	next    int // next write position
	full    bool
	dropped int64
}

// NewRing returns a ring holding at most capacity records. A
// non-positive capacity is rounded up to 1.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Record, capacity)}
}

// Emit implements Sink.
func (r *Ring) Emit(rec Record) {
	r.mu.Lock()
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Records returns the retained records, oldest first.
func (r *Ring) Records() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Record, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Record, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dropped returns how many records were evicted by overflow.
func (r *Ring) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// JSONL streams every record to w as one JSON object per line — the
// run-scale sink: constant memory, parseable with any JSON tooling,
// and append-friendly. Writes are buffered; call Flush (or Close)
// before reading the output. The first write error is sticky and
// reported by Err/Flush/Close; subsequent records are dropped rather
// than blocking the run.
type JSONL struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer // non-nil when the writer should be closed by Close
	err error
}

// NewJSONL returns a JSONL sink writing to w. When w is also an
// io.Closer, Close closes it.
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Emit implements Sink.
func (j *JSONL) Emit(rec Record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.bw.Write(data); err != nil {
		j.err = err
		return
	}
	if err := j.bw.WriteByte('\n'); err != nil {
		j.err = err
	}
}

// Flush drains the buffer and returns the sticky error, if any.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.bw.Flush()
	return j.err
}

// Close flushes and, when the underlying writer is closable, closes
// it. The first error wins.
func (j *JSONL) Close() error {
	err := j.Flush()
	j.mu.Lock()
	c := j.c
	j.c = nil
	j.mu.Unlock()
	if c != nil {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Err returns the sticky write/encode error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// RotatingJSONL is a JSONL sink bound to a file path with size-capped
// rotation: when appending a record would push the active file past
// maxBytes, the file is rotated (path → path.1 → path.2 …) and a
// fresh one started, keeping at most keep rotated segments. It exists
// for long-running daemons with -trace, where an unbounded trace file
// would eventually fill the disk. Rotation never loses the record
// that triggered it, and the sink reopens an existing file in append
// mode so restarts keep extending it.
type RotatingJSONL struct {
	mu       sync.Mutex
	path     string
	maxBytes int64 // ≤0 = never rotate
	keep     int   // rotated segments retained; ≤0 = discard on rotate
	f        *os.File
	bw       *bufio.Writer
	size     int64
	err      error
}

// NewRotatingJSONL opens (or creates) path for appending with the
// given rotation policy.
func NewRotatingJSONL(path string, maxBytes int64, keep int) (*RotatingJSONL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &RotatingJSONL{
		path:     path,
		maxBytes: maxBytes,
		keep:     keep,
		f:        f,
		bw:       bufio.NewWriter(f),
		size:     info.Size(),
	}, nil
}

// Emit implements Sink. The first I/O error is sticky, like JSONL.
func (r *RotatingJSONL) Emit(rec Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		r.err = err
		return
	}
	n := int64(len(data)) + 1
	if r.maxBytes > 0 && r.size > 0 && r.size+n > r.maxBytes {
		if r.err = r.rotateLocked(); r.err != nil {
			return
		}
	}
	if _, err := r.bw.Write(data); err != nil {
		r.err = err
		return
	}
	if err := r.bw.WriteByte('\n'); err != nil {
		r.err = err
		return
	}
	r.size += n
}

// rotateLocked shifts the segment chain up and opens a fresh active
// file. Callers hold r.mu.
func (r *RotatingJSONL) rotateLocked() error {
	if err := r.bw.Flush(); err != nil {
		return err
	}
	if err := r.f.Close(); err != nil {
		return err
	}
	if r.keep <= 0 {
		os.Remove(r.path)
	} else {
		os.Remove(fmt.Sprintf("%s.%d", r.path, r.keep))
		for i := r.keep - 1; i >= 1; i-- {
			os.Rename(fmt.Sprintf("%s.%d", r.path, i), fmt.Sprintf("%s.%d", r.path, i+1))
		}
		if err := os.Rename(r.path, r.path+".1"); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	f, err := os.OpenFile(r.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	r.f = f
	r.bw = bufio.NewWriter(f)
	r.size = 0
	return nil
}

// Flush drains the buffer and returns the sticky error, if any.
func (r *RotatingJSONL) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	r.err = r.bw.Flush()
	return r.err
}

// Close flushes and closes the active file. The first error wins.
func (r *RotatingJSONL) Close() error {
	err := r.Flush()
	r.mu.Lock()
	f := r.f
	r.f = nil
	r.mu.Unlock()
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Err returns the sticky write/encode error, if any.
func (r *RotatingJSONL) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// ParseJSONL decodes records previously written by a JSONL sink —
// the round-trip used by tests and by report tooling that re-reads a
// trace file.
func ParseJSONL(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, rec)
	}
}
