package obs

import (
	"bytes"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestHistBucketLayout(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{1, 0},
		{1000, 0}, // exactly 1µs stays in bucket 0
		{1001, 1}, // first value past 1µs
		{2000, 1}, // 2µs boundary inclusive
		{2001, 2},
		{4000, 2},
		{int64(time.Millisecond), 10},
		{int64(time.Second), 20},
		{math.MaxInt64, histBuckets - 1},
	}
	for _, c := range cases {
		if got := histBucketOf(c.ns); got != c.want {
			t.Errorf("histBucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Bucket bounds must be strictly ascending up to +Inf.
	for i := 1; i < histBuckets-1; i++ {
		if histBucketNS(i) <= histBucketNS(i-1) {
			t.Fatalf("bucket bound %d not ascending", i)
		}
	}
	if histBucketNS(histBuckets-1) != math.MaxInt64 {
		t.Fatalf("last bucket is not +Inf")
	}
	// Every boundary value must land in the bucket whose bound it is.
	for i := 0; i < histBuckets-1; i++ {
		if got := histBucketOf(histBucketNS(i)); got != i {
			t.Errorf("bound of bucket %d maps to bucket %d", i, got)
		}
	}
}

func TestHistogramQuantilesAndSummary(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zero")
	}
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	// Log buckets are coarse: allow a factor-of-two window around the
	// exact quantile, which is what the interpolation guarantees.
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.90, 900 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want/2 || got > c.want*2 {
			t.Errorf("Quantile(%.2f) = %v, want within 2x of %v", c.q, got, c.want)
		}
	}
	s := h.Summary()
	if s.Count != 1000 || s.MaxMS != 1000 {
		t.Errorf("summary count/max = %d/%.0f, want 1000/1000", s.Count, s.MaxMS)
	}
	if s.MeanMS < 400 || s.MeanMS > 600 {
		t.Errorf("mean %.1fms implausible for a uniform 1..1000ms load", s.MeanMS)
	}
	if !(s.P50MS <= s.P90MS && s.P90MS <= s.P99MS && s.P99MS <= s.MaxMS) {
		t.Errorf("quantiles not monotone: %+v", s)
	}
}

func TestHistogramNilAndNegativeSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram should be inert")
	}
	if s := h.Summary(); s.Count != 0 {
		t.Fatal("nil summary should be zero")
	}
	var real Histogram
	real.Observe(-time.Second)
	if real.Count() != 1 {
		t.Fatal("negative observation should count as zero, not be dropped")
	}
}

func TestHistogramInfBucketCappedAtMax(t *testing.T) {
	var h Histogram
	huge := time.Duration(math.MaxInt64 / 2)
	h.Observe(huge)
	if got := h.Quantile(0.99); got != huge {
		t.Fatalf("+Inf-bucket quantile = %v, want the recorded max %v", got, huge)
	}
}

func TestHistogramPrometheusLints(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * 100 * time.Microsecond)
	}
	var buf bytes.Buffer
	if err := h.WritePrometheus(&buf, "x_seconds", "test histogram"); err != nil {
		t.Fatal(err)
	}
	if err := LintPrometheus(buf.Bytes()); err != nil {
		t.Fatalf("exposition does not lint: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), `x_seconds_bucket{le="+Inf"} 100`) {
		t.Errorf("missing +Inf bucket with full count:\n%s", buf.String())
	}
}

func TestPhaseHistograms(t *testing.T) {
	p := NewPhaseHistograms()
	p.Emit(Record{Kind: "span", Name: "pass", Dur: 10 * time.Millisecond})
	p.Emit(Record{Kind: "span", Name: "pass", Dur: 20 * time.Millisecond})
	p.Emit(Record{Kind: "span", Name: "parse", Dur: time.Millisecond})
	p.Emit(Record{Kind: "event", Name: "ignored"})
	if got := p.Phases(); len(got) != 2 || got[0] != "parse" || got[1] != "pass" {
		t.Fatalf("phases = %v", got)
	}
	if n := p.Hist("pass").Count(); n != 2 {
		t.Fatalf("pass count = %d, want 2", n)
	}
	sums := p.Summaries()
	if sums["parse"].Count != 1 {
		t.Fatalf("summaries = %+v", sums)
	}
	var buf bytes.Buffer
	if err := p.WritePrometheus(&buf, "phase_seconds", "per-phase"); err != nil {
		t.Fatal(err)
	}
	if err := LintPrometheus(buf.Bytes()); err != nil {
		t.Fatalf("phase exposition does not lint: %v\n%s", err, buf.String())
	}
	for _, want := range []string{`phase="pass"`, `phase="parse"`, "phase_seconds_count{phase=\"pass\"} 2"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, buf.String())
		}
	}
	// A nil PhaseHistograms is inert and still renders an empty family.
	var nilP *PhaseHistograms
	nilP.Emit(Record{Kind: "span", Name: "x"})
	if nilP.Phases() != nil || nilP.Summaries() != nil {
		t.Fatal("nil PhaseHistograms should report nothing")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

// TestSampleHeapPlausible pins the satellite fix: with several MB
// demonstrably live, SampleHeap must record a same-order value, never
// a degenerate one (the bug this guards against recorded 1 byte).
func TestSampleHeapPlausible(t *testing.T) {
	ballast := make([][]byte, 8)
	for i := range ballast {
		ballast[i] = make([]byte, 1<<20)
		ballast[i][0] = byte(i)
	}
	var m Metrics
	m.SampleHeap()
	got := m.HeapInUse.Load()
	if got < 1<<20 {
		t.Fatalf("HeapInUse = %d bytes with ≥8MiB live; heap sampling is broken", got)
	}
	if m.PeakHeap.Load() < got {
		t.Fatalf("PeakHeap %d < HeapInUse %d", m.PeakHeap.Load(), got)
	}
	runtime.KeepAlive(ballast)
}
