package obs

import (
	"expvar"
	"fmt"
	"io"
	"runtime"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the run's live counter and gauge set. All fields are
// updated atomically; the engine batches hot-loop increments and
// flushes deltas at pass boundaries and every few thousand window
// pairs, so a Snapshot taken mid-run is at most a flush interval
// stale. Counters are monotonic within one run; gauges
// (heap, expected pairs) are point-in-time.
type Metrics struct {
	// Sliding-window counters.
	WindowPairs    atomic.Int64 // window pair slots visited (incl. repeats)
	Comparisons    atomic.Int64 // distinct similarity computations
	FilteredOut    atomic.Int64 // comparisons skipped by the upper-bound filter
	DuplicatePairs atomic.Int64 // distinct pairs classified duplicate
	ODSimCalls     atomic.Int64 // object-description similarity invocations
	DescSimCalls   atomic.Int64 // descendant similarity invocations

	// Phase progress.
	GKRows          atomic.Int64 // rows across all GK tables
	PassesDone      atomic.Int64
	CandidatesDone  atomic.Int64
	CandidatesTotal atomic.Int64 // gauge, set at detection start

	// Similarity memo layer (Options.SimCache). Hits count value-pair
	// and descendant-overlap results served from memory, including the
	// interned set-ID fast path; misses count computed-and-inserted
	// results; evictions count entries dropped to the capacity bound.
	SimCacheHits      atomic.Int64
	SimCacheMisses    atomic.Int64
	SimCacheEvictions atomic.Int64
	DescSetsInterned  atomic.Int64 // distinct descendant multisets interned

	// Gauges sampled per pass.
	HeapInUse atomic.Int64 // bytes, sampled via runtime/metrics
	PeakHeap  atomic.Int64 // high-water mark of HeapInUse samples

	// Work estimate for progress/ETA: remaining window pair slots at
	// detection start (fixed windows; adaptive extension can exceed it).
	ExpectedWindowPairs atomic.Int64

	// Checkpointing.
	CheckpointWrites atomic.Int64
	CheckpointBytes  atomic.Int64

	// External-sort spill path (Options.SpillThresholdRows). Runs count
	// sorted run files written; reused counts sorts satisfied from the
	// on-disk manifest without re-sorting; bytes cover the run-file
	// payloads in each direction; wall time is the cumulative sort+spill
	// duration (merge streaming is accounted to the sliding window).
	SpillRuns         atomic.Int64
	SpillRunsReused   atomic.Int64
	SpillBytesWritten atomic.Int64
	SpillBytesRead    atomic.Int64
	SpillWallNanos    atomic.Int64

	// Sharded sliding-window path (Options.Shards). ShardCount is the
	// resolved shard count gauge (0 = unsharded); sweeps count per-shard
	// sweep executions across passes; halo dedup counts window pairs a
	// shard skipped because they fall wholly inside its halo and belong
	// to the preceding shard.
	ShardCount       atomic.Int64
	ShardSweeps      atomic.Int64
	HaloPairsDeduped atomic.Int64

	// Resume provenance.
	ResumedCandidates atomic.Int64 // candidates adopted from a checkpoint
	ResumedPairs      atomic.Int64 // duplicate pairs seeded from a checkpoint

	startOnce sync.Once
	start     time.Time
}

// MarkStart pins the rate baseline; the engine calls it when detection
// begins. Subsequent calls are no-ops.
func (m *Metrics) MarkStart() {
	if m == nil {
		return
	}
	m.startOnce.Do(func() { m.start = time.Now() })
}

// Elapsed returns the time since MarkStart (0 before it).
func (m *Metrics) Elapsed() time.Duration {
	if m == nil || m.start.IsZero() {
		return 0
	}
	return time.Since(m.start)
}

// SampleHeap reads the live heap size from runtime/metrics (far
// cheaper than runtime.ReadMemStats — no stop-the-world) and updates
// the HeapInUse gauge and PeakHeap high-water mark. If the
// runtime/metrics sample comes back unsupported or implausibly small
// — a renamed metric on a future runtime would otherwise freeze the
// gauge at a bogus value for every pass — it falls back to
// runtime.ReadMemStats, which cannot be absent.
func (m *Metrics) SampleHeap() {
	if m == nil {
		return
	}
	v := liveHeapBytes()
	if v < heapSampleFloor {
		var st runtime.MemStats
		runtime.ReadMemStats(&st)
		v = int64(st.HeapInuse)
	}
	if v <= 0 {
		return
	}
	m.HeapInUse.Store(v)
	for {
		peak := m.PeakHeap.Load()
		if v <= peak || m.PeakHeap.CompareAndSwap(peak, v) {
			break
		}
	}
}

const heapMetric = "/memory/classes/heap/objects:bytes"

// heapSampleFloor is the smallest live-heap reading taken at face
// value: a Go process's runtime alone keeps far more than 64 KiB
// live, so anything below it means the sample failed, not that the
// heap is tiny.
const heapSampleFloor = 64 << 10

func liveHeapBytes() int64 {
	sample := []metrics.Sample{{Name: heapMetric}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return int64(sample[0].Value.Uint64())
}

// Snapshot is a consistent-enough point-in-time copy of Metrics with
// the derived rates the issue tracker dashboards want precomputed. It
// marshals cleanly to JSON and renders to Prometheus text format.
type Snapshot struct {
	WindowPairs         int64   `json:"window_pairs"`
	Comparisons         int64   `json:"comparisons"`
	FilteredOut         int64   `json:"filtered_out"`
	DuplicatePairs      int64   `json:"duplicate_pairs"`
	ODSimCalls          int64   `json:"od_sim_calls"`
	DescSimCalls        int64   `json:"desc_sim_calls"`
	SimCacheHits        int64   `json:"sim_cache_hits"`
	SimCacheMisses      int64   `json:"sim_cache_misses"`
	SimCacheEvictions   int64   `json:"sim_cache_evictions"`
	DescSetsInterned    int64   `json:"desc_sets_interned"`
	GKRows              int64   `json:"gk_rows"`
	PassesDone          int64   `json:"passes_done"`
	CandidatesDone      int64   `json:"candidates_done"`
	CandidatesTotal     int64   `json:"candidates_total"`
	HeapInUse           int64   `json:"heap_in_use_bytes"`
	PeakHeap            int64   `json:"peak_heap_bytes"`
	ExpectedWindowPairs int64   `json:"expected_window_pairs"`
	CheckpointWrites    int64   `json:"checkpoint_writes"`
	CheckpointBytes     int64   `json:"checkpoint_bytes"`
	SpillRuns           int64   `json:"spill_runs"`
	SpillRunsReused     int64   `json:"spill_runs_reused"`
	SpillBytesWritten   int64   `json:"spill_bytes_written"`
	SpillBytesRead      int64   `json:"spill_bytes_read"`
	SpillWallSeconds    float64 `json:"spill_wall_seconds"`
	ShardCount          int64   `json:"shard_count"`
	ShardSweeps         int64   `json:"shard_sweeps"`
	HaloPairsDeduped    int64   `json:"halo_pairs_deduped"`
	ResumedCandidates   int64   `json:"resumed_candidates"`
	ResumedPairs        int64   `json:"resumed_pairs"`
	ElapsedSeconds      float64 `json:"elapsed_seconds"`
	ComparisonsPerSec   float64 `json:"comparisons_per_sec"`
	FilterHitRate       float64 `json:"filter_hit_rate"`
	SimCacheHitRate     float64 `json:"sim_cache_hit_rate"`
}

// Snapshot copies the current values and computes derived rates.
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	s := Snapshot{
		WindowPairs:         m.WindowPairs.Load(),
		Comparisons:         m.Comparisons.Load(),
		FilteredOut:         m.FilteredOut.Load(),
		DuplicatePairs:      m.DuplicatePairs.Load(),
		ODSimCalls:          m.ODSimCalls.Load(),
		DescSimCalls:        m.DescSimCalls.Load(),
		SimCacheHits:        m.SimCacheHits.Load(),
		SimCacheMisses:      m.SimCacheMisses.Load(),
		SimCacheEvictions:   m.SimCacheEvictions.Load(),
		DescSetsInterned:    m.DescSetsInterned.Load(),
		GKRows:              m.GKRows.Load(),
		PassesDone:          m.PassesDone.Load(),
		CandidatesDone:      m.CandidatesDone.Load(),
		CandidatesTotal:     m.CandidatesTotal.Load(),
		HeapInUse:           m.HeapInUse.Load(),
		PeakHeap:            m.PeakHeap.Load(),
		ExpectedWindowPairs: m.ExpectedWindowPairs.Load(),
		CheckpointWrites:    m.CheckpointWrites.Load(),
		CheckpointBytes:     m.CheckpointBytes.Load(),
		SpillRuns:           m.SpillRuns.Load(),
		SpillRunsReused:     m.SpillRunsReused.Load(),
		SpillBytesWritten:   m.SpillBytesWritten.Load(),
		SpillBytesRead:      m.SpillBytesRead.Load(),
		SpillWallSeconds:    time.Duration(m.SpillWallNanos.Load()).Seconds(),
		ShardCount:          m.ShardCount.Load(),
		ShardSweeps:         m.ShardSweeps.Load(),
		HaloPairsDeduped:    m.HaloPairsDeduped.Load(),
		ResumedCandidates:   m.ResumedCandidates.Load(),
		ResumedPairs:        m.ResumedPairs.Load(),
		ElapsedSeconds:      m.Elapsed().Seconds(),
	}
	// Both rates share the attempted-comparison denominator
	// (Comparisons + FilteredOut, the pairs the sweep enumerated):
	// throughput then measures pairs resolved per second whether the
	// filter skipped them or not, and filter_hit_rate is the fraction
	// of that same stream the filter absorbed. DESIGN.md §11 pins the
	// definitions; TestReportMatchesStats pins them against Stats.
	attempted := s.Comparisons + s.FilteredOut
	if s.ElapsedSeconds > 0 {
		s.ComparisonsPerSec = float64(attempted) / s.ElapsedSeconds
	}
	if attempted > 0 {
		s.FilterHitRate = float64(s.FilteredOut) / float64(attempted)
	}
	if lookups := s.SimCacheHits + s.SimCacheMisses; lookups > 0 {
		s.SimCacheHitRate = float64(s.SimCacheHits) / float64(lookups)
	}
	return s
}

// promRow describes one exported Prometheus sample.
type promRow struct {
	name string
	kind string // counter | gauge
	help string
	val  func(*Snapshot) float64
}

var promRows = []promRow{
	{"sxnm_window_pairs_total", "counter", "Window pair slots visited, including repeats across passes.", func(s *Snapshot) float64 { return float64(s.WindowPairs) }},
	{"sxnm_comparisons_total", "counter", "Distinct similarity computations.", func(s *Snapshot) float64 { return float64(s.Comparisons) }},
	{"sxnm_filtered_out_total", "counter", "Comparisons skipped by the OD upper-bound filter.", func(s *Snapshot) float64 { return float64(s.FilteredOut) }},
	{"sxnm_duplicate_pairs_total", "counter", "Distinct pairs classified duplicate before transitive closure.", func(s *Snapshot) float64 { return float64(s.DuplicatePairs) }},
	{"sxnm_od_sim_calls_total", "counter", "Object-description similarity invocations.", func(s *Snapshot) float64 { return float64(s.ODSimCalls) }},
	{"sxnm_desc_sim_calls_total", "counter", "Descendant similarity invocations.", func(s *Snapshot) float64 { return float64(s.DescSimCalls) }},
	{"sxnm_sim_cache_hits_total", "counter", "Similarity results served from the memo layer.", func(s *Snapshot) float64 { return float64(s.SimCacheHits) }},
	{"sxnm_sim_cache_misses_total", "counter", "Similarity results computed and inserted into the memo layer.", func(s *Snapshot) float64 { return float64(s.SimCacheMisses) }},
	{"sxnm_sim_cache_evictions_total", "counter", "Memo entries dropped to respect the cache capacity.", func(s *Snapshot) float64 { return float64(s.SimCacheEvictions) }},
	{"sxnm_desc_sets_interned_total", "counter", "Distinct descendant cluster-ID multisets interned.", func(s *Snapshot) float64 { return float64(s.DescSetsInterned) }},
	{"sxnm_gk_rows_total", "counter", "Rows across all GK tables after key generation.", func(s *Snapshot) float64 { return float64(s.GKRows) }},
	{"sxnm_passes_done_total", "counter", "Completed key passes.", func(s *Snapshot) float64 { return float64(s.PassesDone) }},
	{"sxnm_candidates_done_total", "counter", "Completed candidates.", func(s *Snapshot) float64 { return float64(s.CandidatesDone) }},
	{"sxnm_candidates_total", "gauge", "Candidates configured for this run.", func(s *Snapshot) float64 { return float64(s.CandidatesTotal) }},
	{"sxnm_heap_in_use_bytes", "gauge", "Live heap bytes, sampled per pass.", func(s *Snapshot) float64 { return float64(s.HeapInUse) }},
	{"sxnm_peak_heap_bytes", "gauge", "High-water mark of the per-pass heap samples.", func(s *Snapshot) float64 { return float64(s.PeakHeap) }},
	{"sxnm_expected_window_pairs", "gauge", "Window pair slots expected at detection start.", func(s *Snapshot) float64 { return float64(s.ExpectedWindowPairs) }},
	{"sxnm_checkpoint_writes_total", "counter", "Durable checkpoint section writes.", func(s *Snapshot) float64 { return float64(s.CheckpointWrites) }},
	{"sxnm_checkpoint_bytes_total", "counter", "Bytes written to the checkpoint directory.", func(s *Snapshot) float64 { return float64(s.CheckpointBytes) }},
	{"sxnm_spill_runs_total", "counter", "Sorted run files written by the external-sort spill path.", func(s *Snapshot) float64 { return float64(s.SpillRuns) }},
	{"sxnm_spill_runs_reused_total", "counter", "Spill sorts satisfied from the on-disk run manifest.", func(s *Snapshot) float64 { return float64(s.SpillRunsReused) }},
	{"sxnm_spill_bytes_written_total", "counter", "Run-file payload bytes written by the spill path.", func(s *Snapshot) float64 { return float64(s.SpillBytesWritten) }},
	{"sxnm_spill_bytes_read_total", "counter", "Run-file payload bytes streamed back during merges.", func(s *Snapshot) float64 { return float64(s.SpillBytesRead) }},
	{"sxnm_spill_wall_seconds", "counter", "Cumulative wall time spent sorting and spilling runs.", func(s *Snapshot) float64 { return s.SpillWallSeconds }},
	{"sxnm_shard_count", "gauge", "Resolved shard count for the sharded sliding-window path (0 = unsharded).", func(s *Snapshot) float64 { return float64(s.ShardCount) }},
	{"sxnm_shard_sweeps_total", "counter", "Per-shard sweep executions across all key passes.", func(s *Snapshot) float64 { return float64(s.ShardSweeps) }},
	{"sxnm_halo_pairs_deduped_total", "counter", "Window pairs skipped as halo duplicates owned by a neighboring shard.", func(s *Snapshot) float64 { return float64(s.HaloPairsDeduped) }},
	{"sxnm_resumed_candidates_total", "counter", "Candidates adopted from a checkpoint instead of re-detected.", func(s *Snapshot) float64 { return float64(s.ResumedCandidates) }},
	{"sxnm_resumed_pairs_total", "counter", "Duplicate pairs seeded from a checkpoint.", func(s *Snapshot) float64 { return float64(s.ResumedPairs) }},
	{"sxnm_comparisons_per_second", "gauge", "Attempted-comparison throughput (computed + filtered) since detection start.", func(s *Snapshot) float64 { return s.ComparisonsPerSec }},
	{"sxnm_filter_hit_rate", "gauge", "Fraction of attempted comparisons (computed + filtered) the filter skipped.", func(s *Snapshot) float64 { return s.FilterHitRate }},
	{"sxnm_sim_cache_hit_rate", "gauge", "Fraction of memo lookups served from memory.", func(s *Snapshot) float64 { return s.SimCacheHitRate }},
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (v0.0.4), one HELP/TYPE/sample triple per metric.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, r := range promRows {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n",
			r.name, r.help, r.name, r.kind, r.name, r.val(&s)); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders the current metric values; see
// Snapshot.WritePrometheus.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	return m.Snapshot().WritePrometheus(w)
}

// expvarMu serializes the published-name check; expvar.Publish panics
// on duplicates, and repeated runs in one process (tests, servers)
// should republish the latest observer instead of crashing.
var expvarMu sync.Mutex

// PublishExpvar exposes the metric set under the given expvar name
// (e.g. "sxnm"), replacing a previously published metric set of the
// same name. The value rendered at /debug/vars is the JSON Snapshot.
func (m *Metrics) PublishExpvar(name string) {
	if m == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	f := expvar.Func(func() any { return m.Snapshot() })
	if v := expvar.Get(name); v != nil {
		// Already published (an earlier run in this process): expvar
		// offers no replace, so re-point the existing holder when it is
		// ours, or leave the foreign variable alone.
		if h, ok := v.(*expvarHolder); ok {
			h.set(f)
		}
		return
	}
	h := &expvarHolder{}
	h.set(f)
	expvar.Publish(name, h)
}

// expvarHolder is an expvar.Var whose target can be swapped, working
// around expvar's publish-once semantics.
type expvarHolder struct {
	mu sync.Mutex
	v  expvar.Var
}

func (h *expvarHolder) set(v expvar.Var) {
	h.mu.Lock()
	h.v = v
	h.mu.Unlock()
}

func (h *expvarHolder) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.v == nil {
		return "null"
	}
	return h.v.String()
}
