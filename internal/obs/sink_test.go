package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func rotRecord(i int) Record {
	return Record{Kind: "event", Name: fmt.Sprintf("rec-%04d", i)}
}

func readSegment(t *testing.T, path string) []Record {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("opening %s: %v", path, err)
	}
	defer f.Close()
	recs, err := ParseJSONL(f)
	if err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	return recs
}

func TestRotatingJSONLRotatesAndKeepsN(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	// Each record is ~40 bytes; cap at ~3 records per segment.
	r, err := NewRotatingJSONL(path, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	const total = 20
	for i := 0; i < total; i++ {
		r.Emit(rotRecord(i))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Active file + exactly `keep` rotated segments; path.3 must not
	// exist (the chain is capped).
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Fatalf("segment beyond keep=2 exists (stat err %v)", err)
	}
	var all []Record
	for _, p := range []string{path + ".2", path + ".1", path} {
		segment := readSegment(t, p)
		if len(segment) == 0 {
			t.Fatalf("segment %s is empty", p)
		}
		all = append(all, segment...)
	}
	// The retained window is a contiguous, in-order suffix of what was
	// emitted: no record lost or reordered inside the kept segments.
	want := total - len(all)
	for i, rec := range all {
		if rec.Name != rotRecord(want+i).Name {
			t.Fatalf("record %d = %s, want %s (kept window not contiguous)",
				i, rec.Name, rotRecord(want+i).Name)
		}
	}
	// No individual segment may exceed the cap.
	for _, p := range []string{path + ".2", path + ".1"} {
		if info, err := os.Stat(p); err != nil || info.Size() > 128 {
			t.Errorf("segment %s size %d exceeds cap (err %v)", p, info.Size(), err)
		}
	}
}

func TestRotatingJSONLKeepZeroDiscards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	r, err := NewRotatingJSONL(path, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		r.Emit(rotRecord(i))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Fatalf("keep=0 left a rotated segment behind (stat err %v)", err)
	}
	if recs := readSegment(t, path); len(recs) == 0 {
		t.Fatal("active file empty after keep=0 rotation")
	}
}

func TestRotatingJSONLNeverRotatesUncapped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	r, err := NewRotatingJSONL(path, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		r.Emit(rotRecord(i))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Fatal("maxBytes=0 rotated anyway")
	}
	if recs := readSegment(t, path); len(recs) != 100 {
		t.Fatalf("uncapped file holds %d records, want 100", len(recs))
	}
}

// TestRotatingJSONLReopenAppends pins restart behavior: reopening an
// existing trace file extends it, and the inherited size counts toward
// the rotation cap.
func TestRotatingJSONLReopenAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	r, err := NewRotatingJSONL(path, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.Emit(rotRecord(0))
	r.Emit(rotRecord(1))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := NewRotatingJSONL(path, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2.Emit(rotRecord(2))
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	recs := readSegment(t, path)
	if len(recs) != 3 || recs[0].Name != "rec-0000" || recs[2].Name != "rec-0002" {
		t.Fatalf("reopened file holds %d records: %+v", len(recs), recs)
	}

	// A reopen whose inherited size already busts a tighter cap rotates
	// on the first emit instead of growing forever.
	r3, err := NewRotatingJSONL(path, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	r3.Emit(rotRecord(3))
	if err := r3.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("inherited oversize file did not rotate: %v", err)
	}
	if recs := readSegment(t, path); len(recs) != 1 || recs[0].Name != "rec-0003" {
		t.Fatalf("post-rotation active file: %+v", recs)
	}
}
